// Ablation: how sensitive is SOLH to the hash range d'?
//
// DESIGN.md calls out Eq. (5) (d' = (m+2)/3) as the paper's key design
// choice over OLH's LDP-optimal d' = e^ε + 1. This bench sweeps d' at
// fixed ε_c on the IPUMS-shaped workload and prints both the analytic
// variance (Proposition 6) and the simulated MSE, marking the Eq. (5)
// optimum — the curve should be convex with its minimum at the mark.
//
// Flags: --epsc=0.5, --reps=10, --scale=1.0.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "dp/amplification.h"
#include "ldp/fast_sim.h"
#include "ldp/local_hash.h"
#include "util/stats.h"

using namespace shuffledp;
using bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double eps_c = flags.GetDouble("epsc", 0.5);
  const int reps = static_cast<int>(flags.GetU64("reps", 10));
  const double scale = flags.GetDouble("scale", 1.0);
  const double delta = 1e-9;

  data::Dataset ds = data::MakeSyntheticIpums(20200802, scale);
  const uint64_t n = ds.user_count();
  const uint64_t d = ds.domain_size;
  auto counts = ds.ValueCounts();
  auto truth = ds.Frequencies();
  std::vector<uint64_t> eval(d);
  for (uint64_t v = 0; v < d; ++v) eval[v] = v;

  const uint64_t d_star = dp::OptimalSolhDPrime(eps_c, n, delta);
  std::printf("== Ablation: SOLH variance vs d' (eps_c=%.2f, n=%llu, "
              "Eq.5 optimum d'=%llu) ==\n\n",
              eps_c, static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(d_star));
  std::printf("%10s %14s %14s %8s\n", "d'", "analytic var", "simulated MSE",
              "");

  Rng rng(5);
  std::vector<uint64_t> sweep;
  for (uint64_t f : {8u, 4u, 2u}) sweep.push_back(std::max<uint64_t>(2, d_star / f));
  sweep.push_back(d_star);
  for (uint64_t f : {2u, 4u, 8u}) sweep.push_back(d_star * f);

  for (uint64_t d_prime : sweep) {
    auto oracle = ldp::MakeSolhFixedDPrime(eps_c, n, d, d_prime, delta);
    if (!oracle.ok()) continue;
    double analytic = dp::SolhVarianceCentral(eps_c, n, d_prime, delta);
    RunningStat mse;
    for (int t = 0; t < reps; ++t) {
      auto est = ldp::FastSimulateEstimateAt(**oracle, counts, n, 0, eval,
                                             &rng);
      mse.Add(MeanSquaredErrorAt(truth, est, eval));
    }
    std::printf("%10llu %14.3e %14.3e %8s\n",
                static_cast<unsigned long long>(d_prime), analytic,
                mse.mean(), d_prime == d_star ? "<- Eq.5" : "");
  }

  // Contrast with OLH's LDP-optimal choice at the amplified local eps.
  double eps_l = dp::InverseSolhEpsLocal(eps_c, n, d_star, delta);
  std::printf("\nAmplified local eps at the optimum: eps_l = %.3f "
              "(OLH's LDP rule would pick d' = e^eps_l + 1 = %.0f)\n",
              eps_l, std::exp(eps_l) + 1.0);
  return 0;
}

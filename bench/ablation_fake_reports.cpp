// Ablation: the fake-report budget n_r (PEOS §VI design choice).
//
// Sweeps n_r at fixed central target ε_c and prints, per Corollary 8:
//   * ε_s — privacy against colluding users (improves with n_r),
//   * the admissible local ε_l (grows with n_r: blanket shifts to fakes),
//   * the optimal d' (grows with n_r; see the paper-typo note in
//     EXPERIMENTS.md),
//   * the predicted and simulated estimator variance.
//
// Flags: --epsc=0.5, --reps=10, --scale=1.0.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "dp/amplification.h"
#include "ldp/estimator.h"
#include "ldp/fast_sim.h"
#include "ldp/local_hash.h"
#include "util/stats.h"

using namespace shuffledp;
using bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double eps_c = flags.GetDouble("epsc", 0.5);
  const int reps = static_cast<int>(flags.GetU64("reps", 10));
  const double scale = flags.GetDouble("scale", 1.0);
  const double delta = 1e-9;

  data::Dataset ds = data::MakeSyntheticIpums(20200802, scale);
  const uint64_t n = ds.user_count();
  const uint64_t d = ds.domain_size;
  auto counts = ds.ValueCounts();
  auto truth = ds.Frequencies();
  std::vector<uint64_t> eval(d);
  for (uint64_t v = 0; v < d; ++v) eval[v] = v;

  std::printf("== Ablation: PEOS fake reports n_r (eps_c=%.2f, n=%llu) ==\n\n",
              eps_c, static_cast<unsigned long long>(n));
  std::printf("%10s %10s %10s %8s %14s %14s\n", "n_r", "eps_s", "eps_l",
              "d'", "predicted var", "simulated MSE");

  Rng rng(9);
  for (uint64_t n_r : {uint64_t{0}, n / 100, n / 20, n / 10, n / 4, n / 2,
                       n}) {
    auto oracle = ldp::MakePeosSolh(eps_c, n, n_r, d, delta);
    if (!oracle.ok()) continue;
    uint64_t d_prime = (*oracle)->report_domain();
    double eps_l = (*oracle)->epsilon_local();
    double eps_s =
        n_r == 0 ? std::numeric_limits<double>::infinity()
                 : dp::PeosEpsAgainstUsers(n_r, d_prime, delta);
    double predicted =
        dp::LocalHashVarianceLocal(eps_l, n + n_r, d_prime) *
        std::pow(static_cast<double>(n + n_r) / static_cast<double>(n), 2);

    RunningStat mse;
    ldp::SupportProbs probs = (*oracle)->support_probs();
    probs.q_fake = (*oracle)->OrdinalFakeSupportProb();
    for (int t = 0; t < reps; ++t) {
      auto supports =
          ldp::FastSimulateSupports(probs, counts, n, n_r, &rng);
      auto est = ldp::CalibrateEstimatesOrdinal(**oracle, supports, n, n_r);
      mse.Add(MeanSquaredErrorAt(truth, est, eval));
    }
    std::printf("%10llu %10.3f %10.3f %8llu %14.3e %14.3e\n",
                static_cast<unsigned long long>(n_r), eps_s, eps_l,
                static_cast<unsigned long long>(d_prime), predicted,
                mse.mean());
  }

  std::printf(
      "\nReading: at fixed eps_c, fake reports strictly improve utility\n"
      "(cheap blanket) while also bounding eps_s against colluding users —\n"
      "the reason PEOS dominates plain shuffling in the paper's Table II/III\n"
      "setting. The cost is protocol bandwidth, not estimator accuracy.\n");
  return 0;
}

// Shared helpers for the reproduction benchmarks: tiny flag parsing and
// table printing so every bench binary reads the same way.

#ifndef SHUFFLEDP_BENCH_BENCH_UTIL_H_
#define SHUFFLEDP_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace shuffledp {
namespace bench {

/// Parses "--name=value" style flags; missing flags keep their defaults.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  uint64_t GetU64(const std::string& name, uint64_t def) const {
    std::string v = Raw(name);
    return v.empty() ? def : std::strtoull(v.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double def) const {
    std::string v = Raw(name);
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  std::string GetString(const std::string& name, const std::string& def) const {
    std::string v = Raw(name);
    return v.empty() ? def : v;
  }

  bool GetBool(const std::string& name, bool def) const {
    for (const auto& a : args_) {
      if (a == "--" + name) return true;
      if (a == "--no" + name) return false;
    }
    std::string v = Raw(name);
    if (v.empty()) return def;
    return v == "1" || v == "true" || v == "yes";
  }

 private:
  std::string Raw(const std::string& name) const {
    std::string prefix = "--" + name + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return "";
  }

  std::vector<std::string> args_;
};

/// Prints a row of right-aligned scientific-notation cells after a label.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& cells, int width = 11) {
  std::printf("%-10s", label.c_str());
  for (double c : cells) std::printf(" %*.3e", width, c);
  std::printf("\n");
}

inline void PrintHeader(const std::string& label,
                        const std::vector<std::string>& cols,
                        int width = 11) {
  std::printf("%-10s", label.c_str());
  for (const auto& c : cols) std::printf(" %*s", width, c.c_str());
  std::printf("\n");
}

}  // namespace bench
}  // namespace shuffledp

#endif  // SHUFFLEDP_BENCH_BENCH_UTIL_H_

// Multi-endpoint ingest scaling: aggregate throughput of a partitioned
// collection fleet behind the merge-of-supports coordinator.
//
// For each partition count P in {1, 2, 4} the bench starts P loopback
// CollectionServers sharing one PartitionMap, pre-routes a fixed report
// stream into per-partition frame payloads (routing cost is client-side
// and identical at every P, so it stays outside the timed section), then
// measures wall time from the first frame to the merged, calibrated
// round result:
//
//   P sender threads --kBatch*--> endpoint p   (one connection each)
//        |  kWatermark flush barrier (all batches in the queues)
//   coordinator --kFinish--> every endpoint, merge + calibrate
//
// Endpoint consumers run serial (no pool): the per-endpoint consumer
// thread is precisely the bottleneck domain partitioning removes, so
// rows/s should scale with P until parse/socket overhead dominates.
// The scaling is real parallelism across consumer threads — on a host
// with fewer cores than endpoints the fleet time-shares and the curve
// flattens, which is why the JSON records "cores" next to the rows.
// Rows land in BENCH_distributed.json via run_benches.sh.
//
// A round-close latency section (healthy vs one slowed endpoint), a
// durable-store recovery section (restart → round resumed, see
// RunRecovery), and a C10K section land in the same JSON.
//
// The C10K section is the event-driven server's reason to exist: one
// endpoint holds ≥10k concurrent loopback connections with sustained
// ingest spread across all of them. The file-descriptor budget forces
// two processes (server + 10k client sockets each need ~10k fds), so
// the bench re-executes itself (/proc/self/exe --c10k_client) as the
// connection-holder child and coordinates over pipes: the child
// reports CONNECTED, the parent verifies the server really holds that
// many, times the ingest window to the watermark, closes the round
// while every connection is still up, and pins the estimates bitwise
// against a single-connection run of the identical report stream.
//
// Flags: --n=1000000, --d=1024, --solh_n=200000, --solh_d=256,
// --dprime=16, --eps=3.0, --batch=4096, --close_rounds, --degraded_delay_ms,
// --recover_repeats, --c10k_conns=10000, --c10k_n=120000, --c10k_batch=8,
// --smoke, --json=PATH.

#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "service/coordinator.h"
#include "service/fault_injection.h"
#include "service/partition.h"
#include "service/transport.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace shuffledp;
using bench::Flags;

namespace {

struct Row {
  std::string oracle;
  std::string mode;
  uint32_t partitions = 0;
  uint64_t n = 0;
  uint64_t d = 0;
  double wall_s = 0.0;
  double rows_per_s = 0.0;
};

// Pre-encoded producer batches (ordinals), identical for every P.
std::vector<std::vector<uint64_t>> EncodeBatches(
    const ldp::ScalarFrequencyOracle& oracle, uint64_t n, size_t batch) {
  Rng rng(0xD15C0);
  std::vector<std::vector<uint64_t>> batches;
  for (uint64_t lo = 0; lo < n; lo += batch) {
    const uint64_t hi = std::min(n, lo + batch);
    std::vector<uint64_t> ordinals;
    ordinals.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      ordinals.push_back(oracle.PackOrdinal(
          oracle.Encode(rng.UniformU64(oracle.domain_size()), &rng)));
    }
    batches.push_back(std::move(ordinals));
  }
  return batches;
}

Result<Row> RunFleet(const ldp::ScalarFrequencyOracle& oracle,
                     service::PartitionMode mode, uint32_t partitions,
                     const std::vector<std::vector<uint64_t>>& batches,
                     uint64_t n, size_t batch_size) {
  SHUFFLEDP_ASSIGN_OR_RETURN(
      service::PartitionMap map,
      service::PartitionMap::Create(oracle, mode, partitions));

  // Route outside the timed section: per-partition producer batch lists.
  std::vector<std::vector<std::vector<uint64_t>>> routed(partitions);
  for (auto& r : routed) r.resize(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    auto groups = map.Route(b, batches[b]);
    for (uint32_t p = 0; p < partitions; ++p) {
      routed[p][b] = std::move(groups[p]);
    }
  }

  std::vector<std::unique_ptr<service::CollectionServer>> servers;
  std::vector<service::EndpointAddress> endpoints;
  for (uint32_t p = 0; p < partitions; ++p) {
    service::CollectionServerOptions options;
    options.partition_map = map;
    options.partition_id = p;
    options.streaming.batch_size = batch_size;
    SHUFFLEDP_ASSIGN_OR_RETURN(auto server,
                               service::CollectionServer::Start(oracle,
                                                                options));
    endpoints.push_back({"127.0.0.1", server->port()});
    servers.push_back(std::move(server));
  }

  // Sender connections handshake before the clock starts.
  std::vector<std::unique_ptr<service::CollectorClient>> senders;
  for (uint32_t p = 0; p < partitions; ++p) {
    SHUFFLEDP_ASSIGN_OR_RETURN(
        auto client,
        service::CollectorClient::Connect(endpoints[p].host,
                                          endpoints[p].port));
    SHUFFLEDP_RETURN_NOT_OK(client->Hello(map, p).status());
    senders.push_back(std::move(client));
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(
      auto routing,
      service::PartitionRoutingClient::Connect(oracle, map, endpoints));
  service::MergeCoordinator coordinator(oracle, routing.get());

  WallTimer timer;
  std::vector<std::thread> threads;
  std::vector<Status> sender_status(partitions, Status::OK());
  for (uint32_t p = 0; p < partitions; ++p) {
    threads.emplace_back([&, p] {
      for (size_t b = 0; b < routed[p].size(); ++b) {
        Status st = senders[p]->SendOrdinals(0, oracle, routed[p][b]);
        if (!st.ok()) {
          sender_status[p] = st;
          return;
        }
      }
      // Flush barrier: the reply certifies every batch on this
      // connection reached the collector queue.
      auto watermark = senders[p]->QueryWatermark();
      if (!watermark.ok()) sender_status[p] = watermark.status();
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : sender_status) SHUFFLEDP_RETURN_NOT_OK(st);
  SHUFFLEDP_ASSIGN_OR_RETURN(
      service::RoundResult merged,
      coordinator.FinishRound(0, n, 0, service::Calibration::kStandard));

  Row row;
  row.oracle = oracle.Name();
  row.mode = mode == service::PartitionMode::kByValue ? "by-value"
                                                      : "by-client";
  row.partitions = partitions;
  row.n = n;
  row.d = oracle.domain_size();
  row.wall_s = timer.ElapsedSeconds();
  row.rows_per_s = static_cast<double>(n) / row.wall_s;
  if (merged.reports_decoded + merged.reports_invalid != n) {
    return Status::Internal("distributed bench lost rows");
  }
  return row;
}

struct CloseRow {
  std::string scenario;  // "healthy" | "degraded"
  uint32_t partitions = 0;
  uint32_t rounds = 0;
  uint64_t delay_ms = 0;  // injected per-recv stall on the slow endpoint
  double close_p50_ms = 0.0;
  double close_p99_ms = 0.0;
};

double PercentileMs(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const size_t idx = static_cast<size_t>(q * (samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

// Round-close latency over repeated rounds, optionally with one slow
// endpoint (seeded per-recv delays injected on partition 1): the
// coordinator's pipelined close means the fleet's close latency is the
// slowest endpoint's, and this row quantifies exactly that degradation.
// The timed section is FinishRound only — sends happen before the clock.
Result<CloseRow> RunRoundClose(const ldp::ScalarFrequencyOracle& oracle,
                               uint32_t partitions, uint32_t rounds,
                               size_t batch_size, uint64_t delay_ms) {
  SHUFFLEDP_ASSIGN_OR_RETURN(
      service::PartitionMap map,
      service::PartitionMap::Create(oracle, service::PartitionMode::kByValue,
                                    partitions));
  std::vector<std::unique_ptr<service::CollectionServer>> servers;
  std::vector<service::EndpointAddress> endpoints;
  for (uint32_t p = 0; p < partitions; ++p) {
    service::CollectionServerOptions options;
    options.partition_map = map;
    options.partition_id = p;
    options.streaming.batch_size = batch_size;
    SHUFFLEDP_ASSIGN_OR_RETURN(auto server,
                               service::CollectionServer::Start(oracle,
                                                                options));
    endpoints.push_back({"127.0.0.1", server->port()});
    servers.push_back(std::move(server));
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(
      auto routing,
      service::PartitionRoutingClient::Connect(oracle, map, endpoints));
  service::MergeCoordinator coordinator(oracle, routing.get());

  service::FaultInjector injector(0xBE7C);
  if (delay_ms > 0) {
    service::FaultRule slow;
    slow.op = service::FaultOp::kRecv;
    slow.port = endpoints[1].port;
    slow.action = service::FaultAction::DelayMs(delay_ms);
    injector.AddRule(slow);
    service::SetFaultInjector(&injector);
  }

  Rng rng(0xC105E);
  std::vector<double> close_ms;
  for (uint32_t r = 0; r < rounds; ++r) {
    uint64_t sent = 0;
    for (uint64_t b = 0; b < 4; ++b) {
      std::vector<uint64_t> ordinals;
      ordinals.reserve(batch_size);
      for (size_t i = 0; i < batch_size; ++i) {
        ordinals.push_back(oracle.PackOrdinal(
            oracle.Encode(rng.UniformU64(oracle.domain_size()), &rng)));
      }
      sent += ordinals.size();
      Status st = routing->SendBatch(r, b, ordinals);
      if (!st.ok()) {
        service::SetFaultInjector(nullptr);
        return st;
      }
    }
    WallTimer timer;
    auto merged =
        coordinator.FinishRound(r, sent, 0, service::Calibration::kStandard);
    if (!merged.ok()) {
      service::SetFaultInjector(nullptr);
      return merged.status();
    }
    close_ms.push_back(timer.ElapsedSeconds() * 1e3);
  }
  service::SetFaultInjector(nullptr);

  CloseRow row;
  row.scenario = delay_ms > 0 ? "degraded" : "healthy";
  row.partitions = partitions;
  row.rounds = rounds;
  row.delay_ms = delay_ms;
  row.close_p50_ms = PercentileMs(close_ms, 0.50);
  row.close_p99_ms = PercentileMs(close_ms, 0.99);
  return row;
}

struct RecoveryRow {
  uint32_t rounds_finalized = 0;  // rounds retained in the store at the kill
  uint64_t live_batches = 0;      // durable batches of the in-flight round
  size_t batch_size = 0;
  double recover_p50_ms = 0.0;
  double recover_p99_ms = 0.0;
};

// Restart-to-resumed latency of the durable round store: a single
// endpoint finalizes `rounds` rounds and is killed with a live round
// mid-flight, then restarted with recover=true. The timed section is
// the full resume path — store open (WAL scan + segment load), replay
// of every retained finalized round, live-round restore, and the first
// kQuery answers confirming the endpoint serves history (finalized
// result) and the resume point (live watermark) again.
Result<RecoveryRow> RunRecovery(const ldp::ScalarFrequencyOracle& oracle,
                                uint32_t rounds, uint64_t live_batches,
                                uint32_t repeats, size_t batch_size) {
  const std::string dir = "/tmp/shuffledp_bench_round_store";
  Rng rng(0xFA57);
  std::vector<double> recover_ms;
  RecoveryRow row;
  for (uint32_t rep = 0; rep < repeats; ++rep) {
    if (std::system(("rm -rf '" + dir + "'").c_str()) != 0) {
      return Status::Internal("cannot clear bench store dir");
    }
    service::CollectionServerOptions options;
    options.streaming.batch_size = batch_size;
    options.streaming.round_store.dir = dir;

    auto make_batch = [&] {
      std::vector<uint64_t> ordinals;
      ordinals.reserve(batch_size);
      for (size_t i = 0; i < batch_size; ++i) {
        ordinals.push_back(oracle.PackOrdinal(
            oracle.Encode(rng.UniformU64(oracle.domain_size()), &rng)));
      }
      return ordinals;
    };

    {
      SHUFFLEDP_ASSIGN_OR_RETURN(
          auto server, service::CollectionServer::Start(oracle, options));
      SHUFFLEDP_ASSIGN_OR_RETURN(
          auto client,
          service::CollectorClient::Connect("127.0.0.1", server->port()));
      for (uint32_t r = 0; r < rounds; ++r) {
        for (uint64_t b = 0; b < 4; ++b) {
          SHUFFLEDP_RETURN_NOT_OK(client->SendOrdinals(r, oracle,
                                                       make_batch()));
        }
        SHUFFLEDP_RETURN_NOT_OK(
            client
                ->FinishRound(r, 4 * batch_size, 0,
                              service::Calibration::kStandard)
                .status());
      }
      for (uint64_t b = 0; b < live_batches; ++b) {
        SHUFFLEDP_RETURN_NOT_OK(client->SendOrdinals(rounds, oracle,
                                                     make_batch()));
      }
      // Accept barrier; the server's shutdown drain then makes every
      // accepted batch durable, so the recovered watermark is exact.
      for (int spin = 0; spin < 4000; ++spin) {
        SHUFFLEDP_ASSIGN_OR_RETURN(service::RoundQuery live,
                                   client->QueryRound(rounds));
        if (live.watermark >= live_batches) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      server->Shutdown();
    }

    WallTimer timer;
    {
      service::CollectionServerOptions recover_options = options;
      recover_options.recover = true;
      SHUFFLEDP_ASSIGN_OR_RETURN(
          auto server,
          service::CollectionServer::Start(oracle, recover_options));
      SHUFFLEDP_ASSIGN_OR_RETURN(
          auto client,
          service::CollectorClient::Connect("127.0.0.1", server->port()));
      SHUFFLEDP_ASSIGN_OR_RETURN(service::RoundQuery finalized,
                                 client->QueryRound(rounds - 1));
      SHUFFLEDP_ASSIGN_OR_RETURN(service::RoundQuery live,
                                 client->QueryRound(rounds));
      if (finalized.status != service::RoundStatus::kFinalized ||
          live.watermark != live_batches) {
        return Status::Internal("bench recovery resumed at the wrong point");
      }
    }
    recover_ms.push_back(timer.ElapsedSeconds() * 1e3);
  }
  if (std::system(("rm -rf '" + dir + "'").c_str()) != 0) {
    return Status::Internal("cannot clear bench store dir");
  }
  row.rounds_finalized = rounds;
  row.live_batches = live_batches;
  row.batch_size = batch_size;
  row.recover_p50_ms = PercentileMs(recover_ms, 0.50);
  row.recover_p99_ms = PercentileMs(recover_ms, 0.99);
  return row;
}

struct C10kRow {
  uint64_t connections = 0;  // connections the child held
  uint64_t held_peak = 0;    // accepted - closed observed on the server
  uint64_t n = 0;
  uint64_t d = 0;
  size_t batch = 0;
  double wall_s = 0.0;        // CONNECTED -> watermark == all batches
  double rows_per_s = 0.0;
  bool bitwise_match = false;  // estimates == single-connection run
};

// The identical report stream for the single-connection reference and
// the 10k-connection run: seeded, so both processes (parent and the
// re-executed child) encode byte-identical ordinals.
std::vector<std::vector<uint64_t>> EncodeC10kBatches(
    const ldp::ScalarFrequencyOracle& oracle, uint64_t n, size_t batch) {
  Rng rng(0xC10C);
  std::vector<std::vector<uint64_t>> batches;
  for (uint64_t lo = 0; lo < n; lo += batch) {
    const uint64_t hi = std::min(n, lo + batch);
    std::vector<uint64_t> ordinals;
    ordinals.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      ordinals.push_back(oracle.PackOrdinal(
          oracle.Encode(rng.UniformU64(oracle.domain_size()), &rng)));
    }
    batches.push_back(std::move(ordinals));
  }
  return batches;
}

// Child process: hold `conns` connections to the parent's endpoint and
// stream the seeded batches round-robin across all of them, then wait
// for the parent's teardown line so every socket stays open through the
// parent's round close.
int RunC10kClient(const Flags& flags) {
  const uint16_t port = static_cast<uint16_t>(flags.GetU64("c10k_port", 0));
  uint64_t conns = flags.GetU64("c10k_conns", 10000);
  const uint64_t n = flags.GetU64("c10k_n", 120000);
  const uint64_t d = flags.GetU64("d", 256);
  const double eps = flags.GetDouble("eps", 3.0);
  const size_t batch = flags.GetU64("c10k_batch", 8);
  if (port == 0) {
    std::fprintf(stderr, "c10k client: missing --c10k_port\n");
    return 1;
  }
  // Leave headroom under the fd ceiling for stdio, epoll-side fds, and
  // whatever the runtime holds open.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur > 512 && conns > nofile.rlim_cur - 512) {
    conns = nofile.rlim_cur - 512;
  }

  ldp::Grr grr(eps, d);
  std::vector<std::unique_ptr<service::CollectorClient>> clients;
  clients.reserve(conns);
  for (uint64_t i = 0; i < conns; ++i) {
    auto client = service::CollectorClient::Connect("127.0.0.1", port);
    if (!client.ok()) {
      std::fprintf(stderr, "c10k client: connect %llu failed: %s\n",
                   static_cast<unsigned long long>(i),
                   client.status().ToString().c_str());
      return 1;
    }
    clients.push_back(std::move(*client));
  }
  std::printf("CONNECTED %llu\n", static_cast<unsigned long long>(conns));
  std::fflush(stdout);

  const auto batches = EncodeC10kBatches(grr, n, batch);
  for (size_t b = 0; b < batches.size(); ++b) {
    Status st = clients[b % clients.size()]->SendOrdinals(0, grr, batches[b]);
    if (!st.ok()) {
      std::fprintf(stderr, "c10k client: send %zu failed: %s\n", b,
                   st.ToString().c_str());
      return 1;
    }
  }
  std::printf("SENT %llu\n",
              static_cast<unsigned long long>(batches.size()));
  std::fflush(stdout);

  // Hold every connection until the parent has closed the round.
  char line[64];
  if (std::fgets(line, sizeof(line), stdin) == nullptr) return 1;
  return 0;
}

Result<C10kRow> RunC10k(uint64_t conns, uint64_t n, uint64_t d, double eps,
                        size_t batch) {
  ldp::Grr grr(eps, d);
  const auto batches = EncodeC10kBatches(grr, n, batch);

  // Reference: the same stream over one connection. Supports are sums,
  // so connection count must not change a single bit of the estimates.
  std::vector<double> reference;
  {
    service::CollectionServerOptions options;
    SHUFFLEDP_ASSIGN_OR_RETURN(auto server,
                               service::CollectionServer::Start(grr, options));
    SHUFFLEDP_ASSIGN_OR_RETURN(
        auto client,
        service::CollectorClient::Connect("127.0.0.1", server->port()));
    for (const auto& ordinals : batches) {
      SHUFFLEDP_RETURN_NOT_OK(client->SendOrdinals(0, grr, ordinals));
    }
    SHUFFLEDP_RETURN_NOT_OK(client->QueryWatermark().status());
    SHUFFLEDP_ASSIGN_OR_RETURN(
        service::RemoteRoundResult result,
        client->FinishRound(0, n, 0, service::Calibration::kStandard));
    reference = std::move(result.estimates);
  }

  service::CollectionServerOptions options;
  options.listen_backlog = 4096;
  SHUFFLEDP_ASSIGN_OR_RETURN(auto server,
                             service::CollectionServer::Start(grr, options));
  // The parent's own control connection dials before the child floods
  // the accept queue.
  SHUFFLEDP_ASSIGN_OR_RETURN(
      auto control,
      service::CollectorClient::Connect("127.0.0.1", server->port()));

  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    return Status::Internal("c10k: pipe failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) return Status::Internal("c10k: fork failed");
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    const std::string port_arg =
        "--c10k_port=" + std::to_string(server->port());
    const std::string conns_arg = "--c10k_conns=" + std::to_string(conns);
    const std::string n_arg = "--c10k_n=" + std::to_string(n);
    const std::string d_arg = "--d=" + std::to_string(d);
    const std::string eps_arg = "--eps=" + std::to_string(eps);
    const std::string batch_arg = "--c10k_batch=" + std::to_string(batch);
    const char* argv[] = {"bench_distributed_throughput",
                          "--c10k_client=true",
                          port_arg.c_str(),
                          conns_arg.c_str(),
                          n_arg.c_str(),
                          d_arg.c_str(),
                          eps_arg.c_str(),
                          batch_arg.c_str(),
                          nullptr};
    ::execv("/proc/self/exe", const_cast<char* const*>(argv));
    std::_Exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  FILE* child_out = ::fdopen(from_child[0], "r");
  if (child_out == nullptr) return Status::Internal("c10k: fdopen failed");

  auto fail = [&](const std::string& why) -> Status {
    ::kill(pid, SIGKILL);
    int wait_status = 0;
    ::waitpid(pid, &wait_status, 0);
    std::fclose(child_out);
    ::close(to_child[1]);
    return Status::Internal("c10k: " + why);
  };

  char line[128];
  unsigned long long connected = 0;
  if (std::fgets(line, sizeof(line), child_out) == nullptr ||
      std::sscanf(line, "CONNECTED %llu", &connected) != 1) {
    return fail("child never reported CONNECTED");
  }
  // The server must actually hold them all (plus the control
  // connection) before the ingest window counts.
  uint64_t held = 0;
  for (int spin = 0; spin < 12000; ++spin) {
    service::CollectionServerStats stats = server->stats();
    held = stats.connections_accepted - stats.connections_closed;
    if (held >= connected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (held < connected) {
    return fail("server holds " + std::to_string(held) + " of " +
                std::to_string(connected) + " connections");
  }

  WallTimer timer;
  unsigned long long sent = 0;
  if (std::fgets(line, sizeof(line), child_out) == nullptr ||
      std::sscanf(line, "SENT %llu", &sent) != 1) {
    return fail("child never reported SENT");
  }
  // Watermark flush barrier over the whole fleet of connections: every
  // batch the child pushed has been offered to the collector.
  uint64_t watermark = 0;
  for (int spin = 0; spin < 120000 && watermark < sent; ++spin) {
    auto mark = control->QueryWatermark();
    if (!mark.ok()) return fail("watermark: " + mark.status().ToString());
    watermark = *mark;
    if (watermark < sent) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (watermark < sent) return fail("ingest never drained");
  const double wall_s = timer.ElapsedSeconds();

  // Close the round while all 10k connections are still open.
  auto result = control->FinishRound(0, n, 0, service::Calibration::kStandard);
  if (!result.ok()) return fail("finish: " + result.status().ToString());

  (void)!::write(to_child[1], "DONE\n", 5);
  int wait_status = 0;
  ::waitpid(pid, &wait_status, 0);
  std::fclose(child_out);
  ::close(to_child[1]);
  if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
    return Status::Internal("c10k: child exited abnormally");
  }

  C10kRow row;
  row.connections = connected;
  row.held_peak = held;
  row.n = n;
  row.d = d;
  row.batch = batch;
  row.wall_s = wall_s;
  row.rows_per_s = static_cast<double>(n) / wall_s;
  row.bitwise_match = result->estimates == reference;
  if (!row.bitwise_match) {
    return Status::Internal(
        "c10k: estimates diverge from the single-connection run");
  }
  return row;
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows,
               const std::vector<CloseRow>& close_rows,
               const std::vector<RecoveryRow>& recovery_rows,
               const std::vector<C10kRow>& c10k_rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"distributed_throughput\",\n");
  std::fprintf(f, "  \"cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"oracle\": \"%s\", \"mode\": \"%s\", \"partitions\": %u, "
        "\"n\": %llu, \"d\": %llu, \"wall_s\": %.6f, "
        "\"rows_per_s\": %.1f}%s\n",
        r.oracle.c_str(), r.mode.c_str(), r.partitions,
        static_cast<unsigned long long>(r.n),
        static_cast<unsigned long long>(r.d), r.wall_s, r.rows_per_s,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"round_close\": [\n");
  for (size_t i = 0; i < close_rows.size(); ++i) {
    const CloseRow& r = close_rows[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"partitions\": %u, \"rounds\": %u, "
        "\"recv_delay_ms\": %llu, \"close_p50_ms\": %.3f, "
        "\"close_p99_ms\": %.3f}%s\n",
        r.scenario.c_str(), r.partitions, r.rounds,
        static_cast<unsigned long long>(r.delay_ms), r.close_p50_ms,
        r.close_p99_ms, i + 1 < close_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"recovery\": [\n");
  for (size_t i = 0; i < recovery_rows.size(); ++i) {
    const RecoveryRow& r = recovery_rows[i];
    std::fprintf(
        f,
        "    {\"rounds_finalized\": %u, \"live_batches\": %llu, "
        "\"batch_size\": %zu, \"recover_p50_ms\": %.3f, "
        "\"recover_p99_ms\": %.3f}%s\n",
        r.rounds_finalized, static_cast<unsigned long long>(r.live_batches),
        r.batch_size, r.recover_p50_ms, r.recover_p99_ms,
        i + 1 < recovery_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"c10k\": [\n");
  for (size_t i = 0; i < c10k_rows.size(); ++i) {
    const C10kRow& r = c10k_rows[i];
    std::fprintf(
        f,
        "    {\"connections\": %llu, \"held_peak\": %llu, \"n\": %llu, "
        "\"d\": %llu, \"batch\": %zu, \"wall_s\": %.6f, "
        "\"rows_per_s\": %.1f, \"bitwise_match\": %s}%s\n",
        static_cast<unsigned long long>(r.connections),
        static_cast<unsigned long long>(r.held_peak),
        static_cast<unsigned long long>(r.n),
        static_cast<unsigned long long>(r.d), r.batch, r.wall_s,
        r.rows_per_s, r.bitwise_match ? "true" : "false",
        i + 1 < c10k_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetBool("c10k_client", false)) return RunC10kClient(flags);
  const bool smoke = flags.GetBool("smoke", false);
  const uint64_t n = flags.GetU64("n", smoke ? 60000 : 1000000);
  const uint64_t d = flags.GetU64("d", smoke ? 256 : 1024);
  const uint64_t solh_n = flags.GetU64("solh_n", smoke ? 20000 : 200000);
  const uint64_t solh_d = flags.GetU64("solh_d", 256);
  const uint64_t dprime = flags.GetU64("dprime", 16);
  const double eps = flags.GetDouble("eps", 3.0);
  const size_t batch = flags.GetU64("batch", 4096);
  const std::string json = flags.GetString("json", "");

  ldp::Grr grr(eps, d);
  ldp::LocalHash solh(eps, solh_d, dprime, "SOLH");
  auto grr_batches = EncodeBatches(grr, n, batch);
  auto solh_batches = EncodeBatches(solh, solh_n, batch);

  std::vector<Row> rows;
  std::printf("%-6s %-10s %10s %12s %10s %14s\n", "oracle", "mode",
              "partitions", "n", "wall_s", "rows/s");
  for (uint32_t partitions : {1u, 2u, 4u}) {
    auto grr_row = RunFleet(grr, service::PartitionMode::kByValue,
                            partitions, grr_batches, n, batch);
    if (!grr_row.ok()) {
      std::fprintf(stderr, "grr fleet failed: %s\n",
                   grr_row.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*grr_row);
    auto solh_row = RunFleet(solh, service::PartitionMode::kByClient,
                             partitions, solh_batches, solh_n, batch);
    if (!solh_row.ok()) {
      std::fprintf(stderr, "solh fleet failed: %s\n",
                   solh_row.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*solh_row);
    for (const Row* r : {&*grr_row, &*solh_row}) {
      std::printf("%-6s %-10s %10u %12llu %10.3f %14.0f\n",
                  r->oracle.c_str(), r->mode.c_str(), r->partitions,
                  static_cast<unsigned long long>(r->n), r->wall_s,
                  r->rows_per_s);
    }
  }

  // Round-close latency with a healthy fleet vs. one endpoint whose
  // socket reads are artificially slowed — the "degraded fleet" row.
  // Close latency (not ingest throughput) is what a slow endpoint
  // hurts first, because FinishRound serializes on the slowest drain.
  const uint32_t close_rounds =
      static_cast<uint32_t>(flags.GetU64("close_rounds", smoke ? 20 : 50));
  const uint64_t degraded_delay_ms = flags.GetU64("degraded_delay_ms", 5);
  std::vector<CloseRow> close_rows;
  std::printf("\n%-10s %10s %8s %14s %14s %14s\n", "scenario", "partitions",
              "rounds", "recv_delay_ms", "close_p50_ms", "close_p99_ms");
  for (uint64_t delay_ms : {uint64_t{0}, degraded_delay_ms}) {
    auto close_row = RunRoundClose(grr, 2, close_rounds, batch, delay_ms);
    if (!close_row.ok()) {
      std::fprintf(stderr, "round-close bench failed: %s\n",
                   close_row.status().ToString().c_str());
      return 1;
    }
    close_rows.push_back(*close_row);
    std::printf("%-10s %10u %8u %14llu %14.3f %14.3f\n",
                close_row->scenario.c_str(), close_row->partitions,
                close_row->rounds,
                static_cast<unsigned long long>(close_row->delay_ms),
                close_row->close_p50_ms, close_row->close_p99_ms);
  }

  // Restart-to-resumed latency of the durable round store: how long a
  // killed endpoint takes to serve its history and resume point again.
  const uint32_t recover_repeats = static_cast<uint32_t>(
      flags.GetU64("recover_repeats", smoke ? 5 : 20));
  std::vector<RecoveryRow> recovery_rows;
  {
    auto recovery_row = RunRecovery(grr, /*rounds=*/2, /*live_batches=*/4,
                                    recover_repeats, batch);
    if (!recovery_row.ok()) {
      std::fprintf(stderr, "recovery bench failed: %s\n",
                   recovery_row.status().ToString().c_str());
      return 1;
    }
    recovery_rows.push_back(*recovery_row);
    std::printf("\n%-10s %16s %12s %16s %16s\n", "scenario",
                "rounds_finalized", "live_batches", "recover_p50_ms",
                "recover_p99_ms");
    std::printf("%-10s %16u %12llu %16.3f %16.3f\n", "recovery",
                recovery_row->rounds_finalized,
                static_cast<unsigned long long>(recovery_row->live_batches),
                recovery_row->recover_p50_ms, recovery_row->recover_p99_ms);
  }

  // C10K: one endpoint, ≥10k held connections, sustained ingest,
  // bitwise-equal estimates. Needs an fd ceiling above ~10.5k in the
  // child; RunC10kClient clamps to RLIMIT_NOFILE minus headroom, so a
  // constrained host reports the connections it actually held.
  const uint64_t c10k_conns = flags.GetU64("c10k_conns", 10000);
  const uint64_t c10k_n = flags.GetU64("c10k_n", 120000);
  const size_t c10k_batch = flags.GetU64("c10k_batch", 8);
  std::vector<C10kRow> c10k_rows;
  {
    auto c10k = RunC10k(c10k_conns, c10k_n, /*d=*/256, eps, c10k_batch);
    if (!c10k.ok()) {
      std::fprintf(stderr, "c10k bench failed: %s\n",
                   c10k.status().ToString().c_str());
      return 1;
    }
    c10k_rows.push_back(*c10k);
    std::printf("\n%-12s %10s %12s %10s %14s %8s\n", "connections", "held",
                "n", "wall_s", "rows/s", "bitwise");
    std::printf("%-12llu %10llu %12llu %10.3f %14.0f %8s\n",
                static_cast<unsigned long long>(c10k->connections),
                static_cast<unsigned long long>(c10k->held_peak),
                static_cast<unsigned long long>(c10k->n), c10k->wall_s,
                c10k->rows_per_s, c10k->bitwise_match ? "yes" : "no");
  }

  if (!json.empty() &&
      !WriteJson(json, rows, close_rows, recovery_rows, c10k_rows)) {
    std::fprintf(stderr, "cannot write %s\n", json.c_str());
    return 1;
  }
  return 0;
}

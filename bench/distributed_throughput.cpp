// Multi-endpoint ingest scaling: aggregate throughput of a partitioned
// collection fleet behind the merge-of-supports coordinator.
//
// For each partition count P in {1, 2, 4} the bench starts P loopback
// CollectionServers sharing one PartitionMap, pre-routes a fixed report
// stream into per-partition frame payloads (routing cost is client-side
// and identical at every P, so it stays outside the timed section), then
// measures wall time from the first frame to the merged, calibrated
// round result:
//
//   P sender threads --kBatch*--> endpoint p   (one connection each)
//        |  kWatermark flush barrier (all batches in the queues)
//   coordinator --kFinish--> every endpoint, merge + calibrate
//
// Endpoint consumers run serial (no pool): the per-endpoint consumer
// thread is precisely the bottleneck domain partitioning removes, so
// rows/s should scale with P until parse/socket overhead dominates.
// The scaling is real parallelism across consumer threads — on a host
// with fewer cores than endpoints the fleet time-shares and the curve
// flattens, which is why the JSON records "cores" next to the rows.
// Rows land in BENCH_distributed.json via run_benches.sh.
//
// Flags: --n=1000000, --d=1024, --solh_n=200000, --solh_d=256,
// --dprime=16, --eps=3.0, --batch=4096, --smoke, --json=PATH.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "service/coordinator.h"
#include "service/partition.h"
#include "service/transport.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace shuffledp;
using bench::Flags;

namespace {

struct Row {
  std::string oracle;
  std::string mode;
  uint32_t partitions = 0;
  uint64_t n = 0;
  uint64_t d = 0;
  double wall_s = 0.0;
  double rows_per_s = 0.0;
};

// Pre-encoded producer batches (ordinals), identical for every P.
std::vector<std::vector<uint64_t>> EncodeBatches(
    const ldp::ScalarFrequencyOracle& oracle, uint64_t n, size_t batch) {
  Rng rng(0xD15C0);
  std::vector<std::vector<uint64_t>> batches;
  for (uint64_t lo = 0; lo < n; lo += batch) {
    const uint64_t hi = std::min(n, lo + batch);
    std::vector<uint64_t> ordinals;
    ordinals.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      ordinals.push_back(oracle.PackOrdinal(
          oracle.Encode(rng.UniformU64(oracle.domain_size()), &rng)));
    }
    batches.push_back(std::move(ordinals));
  }
  return batches;
}

Result<Row> RunFleet(const ldp::ScalarFrequencyOracle& oracle,
                     service::PartitionMode mode, uint32_t partitions,
                     const std::vector<std::vector<uint64_t>>& batches,
                     uint64_t n, size_t batch_size) {
  SHUFFLEDP_ASSIGN_OR_RETURN(
      service::PartitionMap map,
      service::PartitionMap::Create(oracle, mode, partitions));

  // Route outside the timed section: per-partition producer batch lists.
  std::vector<std::vector<std::vector<uint64_t>>> routed(partitions);
  for (auto& r : routed) r.resize(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    auto groups = map.Route(b, batches[b]);
    for (uint32_t p = 0; p < partitions; ++p) {
      routed[p][b] = std::move(groups[p]);
    }
  }

  std::vector<std::unique_ptr<service::CollectionServer>> servers;
  std::vector<service::EndpointAddress> endpoints;
  for (uint32_t p = 0; p < partitions; ++p) {
    service::CollectionServerOptions options;
    options.partition_map = map;
    options.partition_id = p;
    options.streaming.batch_size = batch_size;
    SHUFFLEDP_ASSIGN_OR_RETURN(auto server,
                               service::CollectionServer::Start(oracle,
                                                                options));
    endpoints.push_back({"127.0.0.1", server->port()});
    servers.push_back(std::move(server));
  }

  // Sender connections handshake before the clock starts.
  std::vector<std::unique_ptr<service::CollectorClient>> senders;
  for (uint32_t p = 0; p < partitions; ++p) {
    SHUFFLEDP_ASSIGN_OR_RETURN(
        auto client,
        service::CollectorClient::Connect(endpoints[p].host,
                                          endpoints[p].port));
    SHUFFLEDP_RETURN_NOT_OK(client->Hello(map, p).status());
    senders.push_back(std::move(client));
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(
      auto routing,
      service::PartitionRoutingClient::Connect(oracle, map, endpoints));
  service::MergeCoordinator coordinator(oracle, routing.get());

  WallTimer timer;
  std::vector<std::thread> threads;
  std::vector<Status> sender_status(partitions, Status::OK());
  for (uint32_t p = 0; p < partitions; ++p) {
    threads.emplace_back([&, p] {
      for (size_t b = 0; b < routed[p].size(); ++b) {
        Status st = senders[p]->SendOrdinals(0, oracle, routed[p][b]);
        if (!st.ok()) {
          sender_status[p] = st;
          return;
        }
      }
      // Flush barrier: the reply certifies every batch on this
      // connection reached the collector queue.
      auto watermark = senders[p]->QueryWatermark();
      if (!watermark.ok()) sender_status[p] = watermark.status();
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : sender_status) SHUFFLEDP_RETURN_NOT_OK(st);
  SHUFFLEDP_ASSIGN_OR_RETURN(
      service::RoundResult merged,
      coordinator.FinishRound(0, n, 0, service::Calibration::kStandard));

  Row row;
  row.oracle = oracle.Name();
  row.mode = mode == service::PartitionMode::kByValue ? "by-value"
                                                      : "by-client";
  row.partitions = partitions;
  row.n = n;
  row.d = oracle.domain_size();
  row.wall_s = timer.ElapsedSeconds();
  row.rows_per_s = static_cast<double>(n) / row.wall_s;
  if (merged.reports_decoded + merged.reports_invalid != n) {
    return Status::Internal("distributed bench lost rows");
  }
  return row;
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"distributed_throughput\",\n");
  std::fprintf(f, "  \"cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"oracle\": \"%s\", \"mode\": \"%s\", \"partitions\": %u, "
        "\"n\": %llu, \"d\": %llu, \"wall_s\": %.6f, "
        "\"rows_per_s\": %.1f}%s\n",
        r.oracle.c_str(), r.mode.c_str(), r.partitions,
        static_cast<unsigned long long>(r.n),
        static_cast<unsigned long long>(r.d), r.wall_s, r.rows_per_s,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const uint64_t n = flags.GetU64("n", smoke ? 60000 : 1000000);
  const uint64_t d = flags.GetU64("d", smoke ? 256 : 1024);
  const uint64_t solh_n = flags.GetU64("solh_n", smoke ? 20000 : 200000);
  const uint64_t solh_d = flags.GetU64("solh_d", 256);
  const uint64_t dprime = flags.GetU64("dprime", 16);
  const double eps = flags.GetDouble("eps", 3.0);
  const size_t batch = flags.GetU64("batch", 4096);
  const std::string json = flags.GetString("json", "");

  ldp::Grr grr(eps, d);
  ldp::LocalHash solh(eps, solh_d, dprime, "SOLH");
  auto grr_batches = EncodeBatches(grr, n, batch);
  auto solh_batches = EncodeBatches(solh, solh_n, batch);

  std::vector<Row> rows;
  std::printf("%-6s %-10s %10s %12s %10s %14s\n", "oracle", "mode",
              "partitions", "n", "wall_s", "rows/s");
  for (uint32_t partitions : {1u, 2u, 4u}) {
    auto grr_row = RunFleet(grr, service::PartitionMode::kByValue,
                            partitions, grr_batches, n, batch);
    if (!grr_row.ok()) {
      std::fprintf(stderr, "grr fleet failed: %s\n",
                   grr_row.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*grr_row);
    auto solh_row = RunFleet(solh, service::PartitionMode::kByClient,
                             partitions, solh_batches, solh_n, batch);
    if (!solh_row.ok()) {
      std::fprintf(stderr, "solh fleet failed: %s\n",
                   solh_row.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*solh_row);
    for (const Row* r : {&*grr_row, &*solh_row}) {
      std::printf("%-6s %-10s %10u %12llu %10.3f %14.0f\n",
                  r->oracle.c_str(), r->mode.c_str(), r->partitions,
                  static_cast<unsigned long long>(r->n), r->wall_s,
                  r->rows_per_s);
    }
  }
  if (!json.empty() && !WriteJson(json, rows)) {
    std::fprintf(stderr, "cannot write %s\n", json.c_str());
    return 1;
  }
  return 0;
}

// Figure 3 reproduction: MSE of every method vs the central target ε_c on
// the IPUMS-shaped workload (n = 602,325, d = 915, δ = 10^-9).
//
// Methods: Base (uniform guess), OLH and Had (plain LDP at ε_l = ε_c),
// Lap (central DP lower bound), SH (GRR+shuffle), SOLH (this paper), AUE,
// RAP, RAP_R. Expected shape (paper §VII-B): SH flat/terrible below its
// amplification threshold (~0.675 here), shuffle methods ~3 orders of
// magnitude below the LDP methods, Lap ~2 orders below the shuffle
// methods, RAP_R best among the shuffle methods (it is RAP at 2ε_c).
//
// Flags: --scale=1.0 (dataset scale), --reps=20, --delta=1e-9.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/methods.h"
#include "data/datasets.h"
#include "util/stats.h"

using namespace shuffledp;
using bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const int reps = static_cast<int>(flags.GetU64("reps", 20));
  const double delta = flags.GetDouble("delta", 1e-9);

  data::Dataset ds = data::MakeSyntheticIpums(20200802, scale);
  const uint64_t n = ds.user_count();
  const uint64_t d = ds.domain_size;
  auto counts = ds.ValueCounts();
  auto truth = ds.Frequencies();
  std::vector<uint64_t> eval_all(d);
  for (uint64_t v = 0; v < d; ++v) eval_all[v] = v;

  std::printf("== Figure 3: MSE vs eps_c, IPUMS-shaped (n=%llu, d=%llu, "
              "delta=%.0e, reps=%d) ==\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(d), delta, reps);

  auto methods = core::AllMethods();
  std::vector<std::string> names;
  for (auto m : methods) names.emplace_back(core::MethodName(m));
  bench::PrintHeader("eps_c", names);

  Rng rng(42);
  for (double eps_c = 0.1; eps_c <= 1.001; eps_c += 0.1) {
    std::vector<double> row;
    for (auto method : methods) {
      RunningStat mse;
      for (int t = 0; t < reps; ++t) {
        auto est = core::RunUtilityTrial(method, counts, n, eps_c, delta,
                                         eval_all, &rng);
        if (!est.ok()) {
          std::fprintf(stderr, "trial failed: %s\n",
                       est.status().ToString().c_str());
          return 1;
        }
        mse.Add(MeanSquaredErrorAt(truth, *est, eval_all));
      }
      row.push_back(mse.mean());
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", eps_c);
    bench::PrintRow(label, row);
  }

  std::printf("\nAnalytic variance predictions (cross-check; MSE ~ "
              "prediction for unbiased methods):\n");
  bench::PrintHeader("eps_c", names);
  for (double eps_c = 0.1; eps_c <= 1.001; eps_c += 0.1) {
    std::vector<double> row;
    for (auto method : methods) {
      auto var = core::PredictVariance(method, n, d, eps_c, delta);
      row.push_back(var.ok() ? *var : 0.0);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", eps_c);
    bench::PrintRow(label, row);
  }
  return 0;
}

// Figure 4 reproduction: succinct-histogram (TreeHist) precision on the
// AOL-shaped workload — identify the top-32 most frequent 48-bit strings
// in 6 rounds of 8 bits.
//
// LDP methods (OLH, Had) split users into 6 groups at ε_l = ε_c per user;
// shuffle methods (SH, SOLH, AUE, RAP, RAP_R) and Lap use all users each
// round with ε_c/6 and δ/6 per round (the paper's better strategy).
//
// Flags: --scale=1.0, --reps=5, --topk=32.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/methods.h"
#include "data/datasets.h"
#include "hist/tree_hist.h"
#include "util/stats.h"

using namespace shuffledp;
using bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const int reps = static_cast<int>(flags.GetU64("reps", 5));
  const size_t top_k = flags.GetU64("topk", 32);
  const double delta = 1e-9;
  const unsigned rounds = 6;

  data::Dataset ds = data::MakeSyntheticAol(20200802, scale);
  auto truth = ds.TopK(top_k);

  std::printf("== Figure 4: succinct histogram precision, AOL-shaped "
              "(n=%llu, 48-bit strings, top-%zu, reps=%d) ==\n\n",
              static_cast<unsigned long long>(ds.user_count()), top_k, reps);

  const std::vector<core::Method> methods = {
      core::Method::kOlh, core::Method::kHad,  core::Method::kLap,
      core::Method::kSh,  core::Method::kSolh, core::Method::kAue,
      core::Method::kRap, core::Method::kRapRemoval};
  std::vector<std::string> names;
  for (auto m : methods) names.emplace_back(core::MethodName(m));
  bench::PrintHeader("eps_c", names, 8);

  Rng rng(123);
  for (double eps_c = 0.2; eps_c <= 1.001; eps_c += 0.2) {
    std::vector<double> row;
    for (auto method : methods) {
      const bool ldp = !core::IsShuffleMethod(method) &&
                       method != core::Method::kLap;
      // LDP: groups at full ε; shuffle/central: everyone at ε/rounds.
      double eps_round = ldp ? eps_c : eps_c / rounds;
      double delta_round = ldp ? delta : delta / rounds;
      auto estimator =
          core::MakeRoundEstimator(method, eps_round, delta_round);
      if (!estimator.ok()) {
        row.push_back(-1);
        continue;
      }
      hist::TreeHistConfig config;
      config.total_bits = 48;
      config.bits_per_round = 8;
      config.top_k = top_k;
      config.split_users = ldp;

      RunningStat precision;
      for (int t = 0; t < reps; ++t) {
        auto result = hist::RunTreeHist(ds.values, config, *estimator, &rng);
        if (!result.ok()) {
          std::fprintf(stderr, "TreeHist failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        precision.Add(TopKPrecision(result->heavy_hitters, truth));
      }
      row.push_back(precision.mean());
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", eps_c);
    std::printf("%-10s", label);
    for (double p : row) std::printf(" %8.3f", p);
    std::printf("\n");
  }

  std::printf("\nExpected shape (paper SVII-C): all shuffle methods except "
              "SH beat the LDP TreeHist;\nSOLH also allows non-interactive "
              "execution (users can upload all prefixes at once).\n");
  return 0;
}

// Microbenchmarks (google-benchmark) for every cryptographic and
// mechanism primitive on the PEOS / SS critical paths — the per-operation
// numbers behind Table III.

#include <benchmark/benchmark.h>

#include "crypto/aes.h"
#include "crypto/bigint.h"
#include "crypto/ecies.h"
#include "crypto/montgomery.h"
#include "crypto/paillier.h"
#include "crypto/secret_sharing.h"
#include "crypto/secure_random.h"
#include "crypto/sha256.h"
#include "ldp/grr.h"
#include "ldp/hadamard.h"
#include "ldp/local_hash.h"
#include "util/hash.h"
#include "util/rng.h"

namespace {

using namespace shuffledp;
using namespace shuffledp::crypto;

SecureRandom& Srng() {
  static SecureRandom* rng = new SecureRandom(uint64_t{1});
  return *rng;
}

void BM_XxHash64_8B(benchmark::State& state) {
  uint64_t key = 0x1234567890ABCDEFULL;
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(XxHash64(&key, sizeof(key), seed++));
  }
}
BENCHMARK(BM_XxHash64_8B);

void BM_Sha256_64B(benchmark::State& state) {
  Bytes data(64, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_64B_Portable(benchmark::State& state) {
  SetShaBackend(ShaBackend::kPortable);
  Bytes data(64, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  SetShaBackend(BestShaBackend());
}
BENCHMARK(BM_Sha256_64B_Portable);

void BM_Aes128_EncryptBlock(benchmark::State& state) {
  Aes128 aes(std::array<uint8_t, 16>{});
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_Aes128_EncryptBlock);

void BM_Aes128_EncryptBlock_Portable(benchmark::State& state) {
  SetAesBackend(AesBackend::kPortable);
  Aes128 aes(std::array<uint8_t, 16>{});
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
  SetAesBackend(BestAesBackend());
}
BENCHMARK(BM_Aes128_EncryptBlock_Portable);

void BM_Aes128_Ctr4KiB(benchmark::State& state) {
  std::array<uint8_t, 16> key{};
  std::array<uint8_t, 12> nonce{};
  Bytes data(4096, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AesCtrCrypt(key, nonce, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Aes128_Ctr4KiB);

void BM_BigInt_ModMul(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = BigInt::RandomWithBits(bits, &Srng());
  BigInt a = BigInt::RandomBelow(m, &Srng());
  BigInt b = BigInt::RandomBelow(m, &Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ModMul(b, m));
  }
}
BENCHMARK(BM_BigInt_ModMul)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_BigInt_ModExp(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = BigInt::RandomWithBits(bits, &Srng());
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  BigInt a = BigInt::RandomBelow(m, &Srng());
  BigInt e = BigInt::RandomWithBits(bits / 2, &Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ModExp(e, m));
  }
}
BENCHMARK(BM_BigInt_ModExp)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

struct PaillierFixture {
  PaillierKeyPair kp;
  RandomizerPool* pool;
  PaillierFixture() {
    auto k = PaillierGenerateKeyPair(1024, &Srng());
    kp = std::move(k).value();
    pool = new RandomizerPool(kp.pub, 16, &Srng());
  }
};

PaillierFixture& Paillier() {
  static PaillierFixture* f = new PaillierFixture();
  return *f;
}

void BM_Paillier_EncryptExact(benchmark::State& state) {
  auto& f = Paillier();
  uint64_t m = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kp.pub.EncryptU64(m++, &Srng()));
  }
}
BENCHMARK(BM_Paillier_EncryptExact)->Unit(benchmark::kMillisecond);

void BM_Paillier_EncryptPooled(benchmark::State& state) {
  auto& f = Paillier();
  uint64_t m = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.pool->EncryptFastU64(m++, &Srng()));
  }
}
BENCHMARK(BM_Paillier_EncryptPooled);

void BM_Paillier_Decrypt(benchmark::State& state) {
  auto& f = Paillier();
  auto c = f.kp.pub.EncryptU64(123456, &Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kp.priv.Decrypt(*c));
  }
}
BENCHMARK(BM_Paillier_Decrypt)->Unit(benchmark::kMillisecond);

void BM_Paillier_HomomorphicAdd(benchmark::State& state) {
  auto& f = Paillier();
  auto c1 = f.kp.pub.EncryptU64(1, &Srng());
  auto c2 = f.kp.pub.EncryptU64(2, &Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kp.pub.Add(*c1, *c2));
  }
}
BENCHMARK(BM_Paillier_HomomorphicAdd);

void BM_Paillier_EncryptFixedBase(benchmark::State& state) {
  // DJN short-exponent fixed-base randomizers (fresh mask per call).
  auto& f = Paillier();
  RandomizerPool pool(f.kp.pub, 2, &Srng(),
                      RandomizerPool::Mode::kFixedBase);
  uint64_t m = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.EncryptFastU64(m++, &Srng()));
  }
}
BENCHMARK(BM_Paillier_EncryptFixedBase)->Unit(benchmark::kMicrosecond);

void BM_Paillier_DecryptPacked(benchmark::State& state) {
  // Packed share recovery at the PEOS Table-III layout (SOLH d'=16:
  // ell = 36, r = 3: slot = 39); per-row cost = time / items.
  auto& f = Paillier();
  const unsigned ell = 36, slot_bits = 39;
  const uint64_t mask = (uint64_t{1} << ell) - 1;
  const size_t count = f.kp.priv.PackedSlotCapacity(slot_bits);
  std::vector<PaillierCiphertext> cs(count);
  for (size_t i = 0; i < count; ++i) {
    cs[i] = *f.kp.pub.EncryptU64((0x9E3779B97F4A7C15ULL * i) & mask,
                                 &Srng());
  }
  std::vector<uint64_t> out(count);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kp.priv.DecryptPackedMod2Ell(
        cs.data(), count, slot_bits, ell, out.data()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count));
}
BENCHMARK(BM_Paillier_DecryptPacked)->Unit(benchmark::kMillisecond);

void BM_Mont_MulRaw(benchmark::State& state) {
  // One fused-CIOS Montgomery multiply on the allocation-free kernel.
  const size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = BigInt::RandomWithBits(bits, &Srng());
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  MontgomeryCtx::Scratch scratch(*ctx);
  const size_t n = ctx->limbs();
  std::vector<uint64_t> a(n), out(n);
  ctx->ToMontInto(BigInt::RandomBelow(m, &Srng()), a.data(), &scratch);
  out = a;
  for (auto _ : state) {
    ctx->MulInto(out.data(), a.data(), out.data(), &scratch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Mont_MulRaw)->Arg(1024)->Arg(2048)->Arg(3072);

void BM_Mont_SqrRaw(benchmark::State& state) {
  // The dedicated squaring kernel (the modexp ladder's dominant op).
  const size_t bits = static_cast<size_t>(state.range(0));
  BigInt m = BigInt::RandomWithBits(bits, &Srng());
  if (!m.IsOdd()) m = m.Add(BigInt(1));
  auto ctx = MontgomeryCtx::Create(m);
  MontgomeryCtx::Scratch scratch(*ctx);
  const size_t n = ctx->limbs();
  std::vector<uint64_t> out(n);
  ctx->ToMontInto(BigInt::RandomBelow(m, &Srng()), out.data(), &scratch);
  for (auto _ : state) {
    ctx->SqrInto(out.data(), out.data(), &scratch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Mont_SqrRaw)->Arg(1024)->Arg(2048)->Arg(3072);

// --- Interleaved batch kernels vs the scalar rows above ---------------
// Per-lane cost is time/items (items = iterations * k), so these rows
// divide directly against BM_Mont_MulRaw/SqrRaw at the same width.

struct BatchBench {
  MontgomeryCtx ctx;
  MontgomeryCtx::Scratch scratch;
  std::vector<std::vector<uint64_t>> lanes;
  std::vector<const uint64_t*> in;
  std::vector<uint64_t*> out;

  BatchBench(size_t bits, size_t k)
      : ctx(MakeCtx(bits)), scratch(ctx) {
    scratch.EnsureLanes(ctx, std::min(k, MontgomeryCtx::kMaxBatchLanes));
    const size_t n = ctx.limbs();
    lanes.assign(k, std::vector<uint64_t>(n));
    for (auto& lane : lanes) {
      ctx.ToMontInto(BigInt::RandomBelow(ctx.modulus(), &Srng()),
                     lane.data(), &scratch);
    }
    for (auto& lane : lanes) {
      in.push_back(lane.data());
      out.push_back(lane.data());  // in-place, the production shape
    }
  }

  static MontgomeryCtx MakeCtx(size_t bits) {
    BigInt m = BigInt::RandomWithBits(bits, &Srng());
    if (!m.IsOdd()) m = m.Add(BigInt(1));
    return std::move(MontgomeryCtx::Create(m)).value();
  }
};

void RunMulBatch(benchmark::State& state, MontBackend backend) {
  const size_t bits = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  // SetMontBackend returns the backend actually selected, not the previous
  // one — capture the active backend first or the restore below is a no-op
  // and a portable-pinned row poisons every later benchmark in the process.
  const MontBackend prev = ActiveMontBackend();
  if (SetMontBackend(backend) != backend) {
    SetMontBackend(prev);
    state.SkipWithError("backend unavailable on this host");
    return;
  }
  BatchBench b(bits, k);
  for (auto _ : state) {
    b.ctx.MulManyInto(k, b.in.data(), b.in.data(), b.out.data(),
                      &b.scratch);
    benchmark::DoNotOptimize(b.lanes[0].data());
  }
  SetMontBackend(prev);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(k));
}

void RunSqrBatch(benchmark::State& state, MontBackend backend) {
  const size_t bits = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const MontBackend prev = ActiveMontBackend();  // see RunMulBatch
  if (SetMontBackend(backend) != backend) {
    SetMontBackend(prev);
    state.SkipWithError("backend unavailable on this host");
    return;
  }
  BatchBench b(bits, k);
  for (auto _ : state) {
    b.ctx.SqrManyInto(k, b.in.data(), b.out.data(), &b.scratch);
    benchmark::DoNotOptimize(b.lanes[0].data());
  }
  SetMontBackend(prev);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(k));
}

void BM_Mont_MulBatch(benchmark::State& state) {
  RunMulBatch(state, BestMontBackend());
}
BENCHMARK(BM_Mont_MulBatch)
    ->Args({1024, 4})->Args({1024, 8})->Args({2048, 4})->Args({2048, 8});

void BM_Mont_MulBatch_Portable(benchmark::State& state) {
  RunMulBatch(state, MontBackend::kPortable);
}
BENCHMARK(BM_Mont_MulBatch_Portable)->Args({2048, 4})->Args({2048, 8});

void BM_Mont_SqrBatch(benchmark::State& state) {
  RunSqrBatch(state, BestMontBackend());
}
BENCHMARK(BM_Mont_SqrBatch)
    ->Args({1024, 4})->Args({1024, 8})->Args({2048, 4})->Args({2048, 8});

void BM_Mont_SqrBatch_Portable(benchmark::State& state) {
  RunSqrBatch(state, MontBackend::kPortable);
}
BENCHMARK(BM_Mont_SqrBatch_Portable)->Args({2048, 4})->Args({2048, 8});

// --- Constant-time tier overhead --------------------------------------

void BM_Mont_CtMul(benchmark::State& state) {
  // Divide against BM_Mont_MulRaw at the same width for the branchless-
  // correction overhead.
  const size_t bits = static_cast<size_t>(state.range(0));
  BatchBench b(bits, 1);
  for (auto _ : state) {
    b.ctx.CtMulInto(b.in[0], b.in[0], b.out[0], &b.scratch);
    benchmark::DoNotOptimize(b.lanes[0].data());
  }
}
BENCHMARK(BM_Mont_CtMul)->Arg(1024)->Arg(2048);

void BM_Mont_ModExp(benchmark::State& state) {
  // Variable-time sliding-window ladder at the CRT-decryption shape
  // (modulus p^2, exponent p-1: half the modulus width).
  const size_t bits = static_cast<size_t>(state.range(0));
  BatchBench b(bits, 1);
  BigInt base = BigInt::RandomBelow(b.ctx.modulus(), &Srng());
  BigInt e = BigInt::RandomWithBits(bits / 2, &Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.ctx.ModExp(base, e));
  }
}
BENCHMARK(BM_Mont_ModExp)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_Mont_CtModExp(benchmark::State& state) {
  // Fixed-window always-multiply ladder, same shape as BM_Mont_ModExp:
  // the ratio of the two rows is the price of the ct contract.
  const size_t bits = static_cast<size_t>(state.range(0));
  BatchBench b(bits, 1);
  BigInt base = BigInt::RandomBelow(b.ctx.modulus(), &Srng());
  BigInt e = BigInt::RandomWithBits(bits / 2, &Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.ctx.CtModExp(base, e));
  }
}
BENCHMARK(BM_Mont_CtModExp)
    ->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_Mont_CtModExpMany8(benchmark::State& state) {
  // The batched ct ladder (shared exponent, 8 lanes) — the packed-CRT
  // decryption exponentiation shape; per-lane cost = time / items.
  const size_t bits = static_cast<size_t>(state.range(0));
  const size_t k = 8;
  BatchBench b(bits, k);
  BigInt e = BigInt::RandomWithBits(bits / 2, &Srng());
  for (auto _ : state) {
    b.ctx.CtModExpManyInto(k, b.in.data(), e, 0, b.out.data(), &b.scratch);
    benchmark::DoNotOptimize(b.lanes[0].data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(k));
}
BENCHMARK(BM_Mont_CtModExpMany8)
    ->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_Paillier_DecryptPackedBatch(benchmark::State& state) {
  // Multi-group batched share recovery (8 pack groups per lane block)
  // at the Table-III layout; per-row cost = time / items, divide
  // against BM_Paillier_DecryptPacked for the interleave win.
  auto& f = Paillier();
  const unsigned ell = 36, slot_bits = 39;
  const uint64_t mask = (uint64_t{1} << ell) - 1;
  const size_t cap = f.kp.priv.PackedSlotCapacity(slot_bits);
  const size_t count = cap * MontgomeryCtx::kMaxBatchLanes;
  std::vector<PaillierCiphertext> cs(count);
  for (size_t i = 0; i < count; ++i) {
    cs[i] = *f.kp.pub.EncryptU64((0x9E3779B97F4A7C15ULL * i) & mask,
                                 &Srng());
  }
  std::vector<uint64_t> out(count);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kp.priv.DecryptPackedMod2EllBatch(
        cs.data(), count, slot_bits, ell, out.data()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count));
}
BENCHMARK(BM_Paillier_DecryptPackedBatch)->Unit(benchmark::kMillisecond);

void BM_P256_ScalarBaseMult(benchmark::State& state) {
  Scalar256 k = P256::RandomScalar(&Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(P256::ScalarBaseMult(k));
    k[0]++;
  }
}
BENCHMARK(BM_P256_ScalarBaseMult)->Unit(benchmark::kMicrosecond);

// The seed implementation (double-and-add ladder), kept as the "before"
// number for the comb / wNAF speedups.
void BM_P256_ScalarBaseMult_Reference(benchmark::State& state) {
  Scalar256 k = P256::RandomScalar(&Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(P256::ScalarBaseMultReference(k));
    k[0]++;
  }
}
BENCHMARK(BM_P256_ScalarBaseMult_Reference)->Unit(benchmark::kMicrosecond);

void BM_P256_ScalarBaseMultBatch64(benchmark::State& state) {
  std::vector<Scalar256> ks(64);
  for (auto& k : ks) k = P256::RandomScalar(&Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(P256::ScalarBaseMultBatch(ks));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_P256_ScalarBaseMultBatch64)->Unit(benchmark::kMicrosecond);

void BM_P256_ScalarMult(benchmark::State& state) {
  P256Point p = P256::ScalarBaseMult(P256::RandomScalar(&Srng()));
  Scalar256 k = P256::RandomScalar(&Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(P256::ScalarMult(k, p));
    k[0]++;
  }
}
BENCHMARK(BM_P256_ScalarMult)->Unit(benchmark::kMicrosecond);

void BM_P256_ScalarMult_Reference(benchmark::State& state) {
  P256Point p = P256::ScalarBaseMult(P256::RandomScalar(&Srng()));
  Scalar256 k = P256::RandomScalar(&Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(P256::ScalarMultReference(k, p));
    k[0]++;
  }
}
BENCHMARK(BM_P256_ScalarMult_Reference)->Unit(benchmark::kMicrosecond);

void BM_P256_PrecomputedMult(benchmark::State& state) {
  P256Precomputed pre(P256::ScalarBaseMult(P256::RandomScalar(&Srng())));
  Scalar256 k = P256::RandomScalar(&Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pre.Mult(k));
    k[0]++;
  }
}
BENCHMARK(BM_P256_PrecomputedMult)->Unit(benchmark::kMicrosecond);

void BM_Ecies_Encrypt32B(benchmark::State& state) {
  auto kp = EciesGenerateKeyPair(&Srng());
  Bytes msg(32, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EciesEncrypt(kp.public_key, msg, &Srng()));
  }
}
BENCHMARK(BM_Ecies_Encrypt32B)->Unit(benchmark::kMicrosecond);

// Batched report encryption (64 reports to one recipient); the per-report
// cost is the iteration time divided by 64 (see items_per_second).
void BM_Ecies_EncryptBatch64x32B(benchmark::State& state) {
  auto kp = EciesGenerateKeyPair(&Srng());
  std::vector<Bytes> msgs(64, Bytes(32, 0x5A));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EciesEncryptBatch(kp.public_key, msgs, &Srng()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Ecies_EncryptBatch64x32B)->Unit(benchmark::kMicrosecond);

void BM_Ecies_Decrypt32B(benchmark::State& state) {
  auto kp = EciesGenerateKeyPair(&Srng());
  Bytes blob = EciesEncrypt(kp.public_key, Bytes(32, 0x5A), &Srng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EciesDecrypt(kp.private_key, blob));
  }
}
BENCHMARK(BM_Ecies_Decrypt32B)->Unit(benchmark::kMicrosecond);

void BM_SecretShare_Split(benchmark::State& state) {
  const size_t r = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitShares2Ell(0xDEADBEEF, r, 64, &Srng()));
  }
}
BENCHMARK(BM_SecretShare_Split)->Arg(3)->Arg(7);

void BM_Oracle_Encode(benchmark::State& state) {
  Rng rng(7);
  ldp::LocalHash solh(4.0, 42178, 64, "SOLH");
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solh.Encode(v++ % 42178, &rng));
  }
}
BENCHMARK(BM_Oracle_Encode);

void BM_Oracle_SupportScan(benchmark::State& state) {
  // Server-side cost: one support test (the O(n d) aggregation kernel).
  Rng rng(8);
  ldp::LocalHash solh(4.0, 42178, 64, "SOLH");
  auto report = solh.Encode(5, &rng);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solh.Supports(report, v++ % 42178));
  }
}
BENCHMARK(BM_Oracle_SupportScan);

void BM_Grr_Encode(benchmark::State& state) {
  Rng rng(9);
  ldp::Grr grr(1.0, 915);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grr.Encode(v++ % 915, &rng));
  }
}
BENCHMARK(BM_Grr_Encode);

void BM_Binomial_LargeN(benchmark::State& state) {
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Binomial(1000000, 0.001));
  }
}
BENCHMARK(BM_Binomial_LargeN);

}  // namespace

BENCHMARK_MAIN();

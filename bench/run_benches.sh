#!/usr/bin/env bash
# Runs the perf-trajectory benchmarks and writes the JSON artifacts at the
# repo root:
#   BENCH_micro_crypto.json  - google-benchmark output of bench_micro_crypto
#                              (includes *_Reference / *_Portable rows, i.e.
#                              the seed "before" numbers next to the fast
#                              paths)
#   BENCH_table3.json        - measured Table III rows from
#                              bench_table3_overhead
#   BENCH_streaming.json     - streaming-vs-monolithic server ingestion rows
#                              from bench_streaming_throughput (batched
#                              pipeline vs the seed's single-pass collect)
#   BENCH_distributed.json   - aggregate ingest throughput of a partitioned
#                              endpoint fleet (1/2/4 partitions behind the
#                              merge-of-supports coordinator), round-close
#                              latency (healthy vs degraded), durable
#                              round-store recovery time (restart -> round
#                              resumed), and the C10K row (one event-driven
#                              endpoint holding >=10k loopback connections
#                              with sustained ingest; needs `ulimit -n`
#                              above ~10.5k) from bench_distributed_throughput
#
# Usage: bench/run_benches.sh [BUILD_DIR] [--smoke]
#   --smoke: CI-sized inputs (small n everywhere) to verify the benches
#            still run; the JSON artifacts are only meaningful from a full
#            (non-smoke) run.
# Also reachable as `cmake --build build --target run_benches`.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    --*)
      echo "unknown flag: $arg" >&2
      echo "usage: bench/run_benches.sh [BUILD_DIR] [--smoke]" >&2
      exit 2
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

# Default filter keeps the hot-path crypto benchmarks (incl. the Paillier
# and Montgomery-kernel suite behind the PEOS server cost); pass
# MICRO_FILTER='' for everything.
MICRO_FILTER="${MICRO_FILTER-P256|Ecies|Aes|Sha256|XxHash|Paillier|Mont|BigInt_Mod}"
TABLE3_N="${TABLE3_N:-2000}"
STREAMING_FLAGS=""
# Generous wall-clock budget for the --smoke table3 run (seconds): a smoke
# run that cannot finish inside it means a pathological modexp/crypto
# regression, and the job should fail rather than hang. No budget on full
# runs (0 = disabled).
SMOKE_TABLE3_BUDGET="${SMOKE_TABLE3_BUDGET:-600}"
# Throughput floor for the --smoke streaming SOLH row (rows/s at the
# default d'): the vectorized support kernels ingest well over 1M rows/s
# on one AVX2 core and ~450k rows/s on the portable backend; the old
# per-pair scalar scan managed ~140k rows/s. A smoke run under the floor
# means the bulk-kernel path regressed (or stopped being routed) and the
# job should fail. 0 disables. No budget on full runs.
SMOKE_SOLH_MIN_RATE="${SMOKE_SOLH_MIN_RATE:-300000}"
TABLE3_TIMEOUT=()
if [[ "$SMOKE" == "1" ]]; then
  TABLE3_N=300
  STREAMING_FLAGS="--smoke --solh_min_rate=$SMOKE_SOLH_MIN_RATE"
  if [[ "$SMOKE_TABLE3_BUDGET" != "0" ]] && command -v timeout >/dev/null; then
    TABLE3_TIMEOUT=(timeout "$SMOKE_TABLE3_BUDGET")
  fi
fi

MICRO_TIME_FLAG=""
if [[ "$SMOKE" == "1" ]]; then
  # Plain-double form: works on both pre- and post-1.8 google-benchmark.
  MICRO_TIME_FLAG="--benchmark_min_time=0.01"
fi
if [[ -x "$BUILD_DIR/bench_micro_crypto" ]]; then
  "$BUILD_DIR/bench_micro_crypto" \
    ${MICRO_FILTER:+--benchmark_filter="$MICRO_FILTER"} \
    ${MICRO_TIME_FLAG:+"$MICRO_TIME_FLAG"} \
    --benchmark_out="$ROOT/BENCH_micro_crypto.json" \
    --benchmark_out_format=json
else
  echo "bench_micro_crypto not built (google-benchmark missing); skipping"
fi

${TABLE3_TIMEOUT[@]+"${TABLE3_TIMEOUT[@]}"} \
  "$BUILD_DIR/bench_table3_overhead" --n="$TABLE3_N" \
  --json="$ROOT/BENCH_table3.json"

"$BUILD_DIR/bench_streaming_throughput" $STREAMING_FLAGS \
  --json="$ROOT/BENCH_streaming.json"

"$BUILD_DIR/bench_distributed_throughput" $STREAMING_FLAGS \
  --json="$ROOT/BENCH_distributed.json"

echo "wrote $ROOT/BENCH_micro_crypto.json, $ROOT/BENCH_table3.json, $ROOT/BENCH_streaming.json and $ROOT/BENCH_distributed.json"

#!/usr/bin/env bash
# Runs the perf-trajectory benchmarks and writes the JSON artifacts at the
# repo root:
#   BENCH_micro_crypto.json  - google-benchmark output of bench_micro_crypto
#                              (includes *_Reference / *_Portable rows, i.e.
#                              the seed "before" numbers next to the fast
#                              paths)
#   BENCH_table3.json        - measured Table III rows from
#                              bench_table3_overhead
#
# Usage: bench/run_benches.sh [BUILD_DIR] (default: build)
# Also reachable as `cmake --build build --target run_benches`.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

# Default filter keeps the hot-path crypto benchmarks (the Paillier /
# BigInt suite takes minutes and is unchanged by the EC/AES work); pass
# MICRO_FILTER='' for everything.
MICRO_FILTER="${MICRO_FILTER-P256|Ecies|Aes|Sha256|XxHash}"
TABLE3_N="${TABLE3_N:-2000}"

"$BUILD_DIR/bench_micro_crypto" \
  ${MICRO_FILTER:+--benchmark_filter="$MICRO_FILTER"} \
  --benchmark_out="$ROOT/BENCH_micro_crypto.json" \
  --benchmark_out_format=json

"$BUILD_DIR/bench_table3_overhead" --n="$TABLE3_N" \
  --json="$ROOT/BENCH_table3.json"

echo "wrote $ROOT/BENCH_micro_crypto.json and $ROOT/BENCH_table3.json"

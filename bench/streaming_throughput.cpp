// Streaming-vs-monolithic server ingestion throughput.
//
// The seed repo collected every report into one in-memory vector and then
// aggregated it in a single pass; the service layer replaces that with the
// sharded streaming pipeline (src/service/). This bench measures both
// architectures on the same inputs and writes the rows run_benches.sh
// tracks as BENCH_streaming.json:
//
//   *-plain  rows: n pre-encoded reports (default n = 10^6, d = 1024 — the
//            ROADMAP scale target), server-side aggregation only. SOLH
//            runs at several hash ranges (d' = 2, the --dprime default,
//            and a non-power-of-2) since the support kernels take
//            different modulo paths per shape.
//   *-ecies  rows: enc_n ECIES-encrypted reports (default 20,000), so the
//            decrypt stage dominates and the pipeline's decode fan-out +
//            overlap shows up.
//   hash-kernel rows: the raw bulk support kernel (no pipeline, no
//            decode) on the active backend and on the forced-scalar
//            reference — the two bound what aggregation can do.
//
// Every row carries the decode/support-eval split from StreamingStats and
// the support-kernel backend that produced it.
//
// Flags: --n=1000000, --enc_n=20000, --d=1024, --dprime=16, --eps=3.0,
// --batch=4096, --queue=64, --shards=0 (auto), --smoke (tiny sizes for CI),
// --json=PATH, --solh_min_rate=0 (rows/s; exit nonzero when the streaming
// SOLH row at the default d' falls under it — the smoke-job regression
// budget).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "crypto/ecies.h"
#include "crypto/secure_random.h"
#include "ldp/estimator.h"
#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "ldp/support_kernels.h"
#include "service/streaming_collector.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace shuffledp;
using bench::Flags;

namespace {

struct Row {
  std::string mode;
  std::string oracle;
  std::string backend;  // support-kernel backend the row aggregated on
  uint64_t n = 0;
  uint64_t d = 0;
  uint64_t dprime = 0;  // report domain (d for GRR)
  double wall_s = 0.0;
  double rows_per_s = 0.0;
  double decode_s = 0.0;        // pipeline rows only
  double support_eval_s = 0.0;  // pipeline rows only
  uint64_t rows_aggregated = 0;
  uint64_t backpressure_waits = 0;
  uint64_t queue_high_water = 0;
};

std::vector<ldp::LdpReport> EncodeAll(const ldp::ScalarFrequencyOracle& oracle,
                                      uint64_t n, Rng* rng) {
  std::vector<ldp::LdpReport> reports;
  reports.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    reports.push_back(oracle.Encode(i % oracle.domain_size(), rng));
  }
  return reports;
}

const char* ActiveBackendName() {
  return ldp::SupportBackendName(ldp::ActiveSupportBackend());
}

Row RunMonolithicPlain(const ldp::ScalarFrequencyOracle& oracle,
                       const std::vector<ldp::LdpReport>& reports,
                       ThreadPool* pool) {
  WallTimer timer;
  auto supports = ldp::SupportCountsFullDomain(oracle, reports, pool);
  auto estimates =
      ldp::CalibrateEstimates(oracle, supports, reports.size(), 0);
  Row row;
  row.mode = "monolithic-plain";
  row.oracle = oracle.Name();
  row.backend = ActiveBackendName();
  row.n = reports.size();
  row.d = oracle.domain_size();
  row.dprime = oracle.report_domain();
  row.wall_s = timer.ElapsedSeconds();
  row.rows_per_s = static_cast<double>(reports.size()) / row.wall_s;
  // Keep the estimate alive so the whole pass cannot be optimized out.
  if (estimates.empty()) std::printf("unexpected empty estimate\n");
  return row;
}

Row RunStreamingPlain(const ldp::ScalarFrequencyOracle& oracle,
                      const std::vector<ldp::LdpReport>& reports,
                      const service::StreamingOptions& opts) {
  service::StreamingCollector collector(oracle, opts);
  WallTimer timer;
  auto offer = collector.OfferReports(reports);
  auto round = collector.FinishRound(reports.size(), 0,
                                     service::Calibration::kStandard);
  Row row;
  row.mode = "streaming-plain";
  row.oracle = oracle.Name();
  row.backend = ActiveBackendName();
  row.n = reports.size();
  row.d = oracle.domain_size();
  row.dprime = oracle.report_domain();
  row.wall_s = timer.ElapsedSeconds();
  row.rows_per_s = static_cast<double>(reports.size()) / row.wall_s;
  if (!offer.ok() || !round.ok()) {
    std::fprintf(stderr, "streaming-plain failed: %s\n",
                 (!offer.ok() ? offer : round.status()).ToString().c_str());
    return row;
  }
  row.decode_s = round->stats.decode_seconds;
  row.support_eval_s = round->stats.support_eval_seconds;
  row.rows_aggregated = round->stats.rows_aggregated;
  row.backpressure_waits = round->stats.backpressure_waits;
  row.queue_high_water = round->stats.queue_high_water;
  return row;
}

/// Raw bulk-kernel row: no pipeline, no decode — just
/// AccumulateLocalHashSupports over the whole batch × domain. `backend`
/// is installed for the duration of the measurement.
Row RunHashKernel(const ldp::LocalHash& oracle,
                  const std::vector<ldp::LdpReport>& reports,
                  ldp::SupportBackend backend) {
  const ldp::SupportBackend saved = ldp::ActiveSupportBackend();
  const ldp::SupportBackend installed = ldp::SetSupportBackend(backend);
  const uint64_t d = oracle.domain_size();
  std::vector<uint64_t> counts(d, 0);
  WallTimer timer;
  oracle.AccumulateSupports(reports.data(), reports.size(), 0, d,
                            counts.data());
  Row row;
  row.wall_s = timer.ElapsedSeconds();
  row.mode = "hash-kernel";
  row.oracle = oracle.Name();
  row.backend = ldp::SupportBackendName(installed);
  row.n = reports.size();
  row.d = d;
  row.dprime = oracle.report_domain();
  row.rows_per_s = static_cast<double>(reports.size()) / row.wall_s;
  row.rows_aggregated = reports.size();
  row.support_eval_s = row.wall_s;
  ldp::SetSupportBackend(saved);
  uint64_t sum = 0;
  for (uint64_t c : counts) sum += c;
  if (sum == 0) std::printf("unexpected zero support mass\n");
  return row;
}

std::vector<Bytes> EncryptAll(const ldp::ScalarFrequencyOracle& oracle,
                              const std::vector<ldp::LdpReport>& reports,
                              const crypto::P256Point& server_pub,
                              crypto::SecureRandom* rng, ThreadPool* pool) {
  std::vector<Bytes> payloads(reports.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    ByteWriter w(16);
    w.PutU64(ldp::PackReport(reports[i]));
    w.PutU64(rng->NextU64());
    payloads[i] = w.Release();
  }
  (void)oracle;
  return crypto::EciesEncryptBatch(server_pub, payloads, rng, pool);
}

Row RunMonolithicEcies(const ldp::ScalarFrequencyOracle& oracle,
                       const std::vector<Bytes>& blobs,
                       const crypto::Scalar256& priv, ThreadPool* pool) {
  WallTimer timer;
  std::vector<ldp::LdpReport> reports(blobs.size());
  pool->ParallelFor(0, blobs.size(), [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      auto payload = crypto::EciesDecrypt(priv, blobs[i]);
      if (!payload.ok()) continue;
      ByteReader reader(*payload);
      auto packed = reader.GetU64();
      if (packed.ok()) reports[i] = ldp::UnpackReport(*packed);
    }
  });
  auto supports = ldp::SupportCountsFullDomain(oracle, reports, pool);
  Row row;
  row.mode = "monolithic-ecies";
  row.oracle = oracle.Name();
  row.backend = ActiveBackendName();
  row.n = blobs.size();
  row.d = oracle.domain_size();
  row.dprime = oracle.report_domain();
  row.wall_s = timer.ElapsedSeconds();
  row.rows_per_s = static_cast<double>(blobs.size()) / row.wall_s;
  if (supports.empty()) std::printf("unexpected empty supports\n");
  return row;
}

Row RunStreamingEcies(const ldp::ScalarFrequencyOracle& oracle,
                      std::vector<Bytes> blobs, const crypto::Scalar256& priv,
                      const service::StreamingOptions& opts) {
  service::StreamingCollector collector(oracle, opts);
  const uint64_t n = blobs.size();
  auto shared = std::make_shared<std::vector<Bytes>>(std::move(blobs));
  WallTimer timer;
  Status offer = collector.OfferIndexed(
      n, [shared, priv](uint64_t row_index) -> Result<service::DecodedRow> {
        SHUFFLEDP_ASSIGN_OR_RETURN(
            Bytes payload, crypto::EciesDecrypt(priv, (*shared)[row_index]));
        service::DecodedRow row;
        ByteReader reader(payload);
        auto packed = reader.GetU64();
        if (!packed.ok()) return row;
        row.report = ldp::UnpackReport(*packed);
        row.valid = true;
        return row;
      });
  auto round = collector.FinishRound(n, 0, service::Calibration::kStandard);
  Row row;
  row.mode = "streaming-ecies";
  row.oracle = oracle.Name();
  row.backend = ActiveBackendName();
  row.n = n;
  row.d = oracle.domain_size();
  row.dprime = oracle.report_domain();
  row.wall_s = timer.ElapsedSeconds();
  row.rows_per_s = static_cast<double>(n) / row.wall_s;
  if (!offer.ok() || !round.ok()) {
    std::fprintf(stderr, "streaming-ecies failed: %s\n",
                 (!offer.ok() ? offer : round.status()).ToString().c_str());
    return row;
  }
  row.decode_s = round->stats.decode_seconds;
  row.support_eval_s = round->stats.support_eval_seconds;
  row.rows_aggregated = round->stats.rows_aggregated;
  row.backpressure_waits = round->stats.backpressure_waits;
  row.queue_high_water = round->stats.queue_high_water;
  return row;
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows,
               unsigned threads) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"streaming_throughput\",\n");
  std::fprintf(f, "  \"threads\": %u,\n  \"rows\": [\n", threads);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"oracle\": \"%s\", \"backend\": \"%s\", "
        "\"n\": %llu, \"d\": %llu, \"dprime\": %llu, \"wall_s\": %.6f, "
        "\"rows_per_s\": %.1f, \"decode_s\": %.6f, "
        "\"support_eval_s\": %.6f, \"rows_aggregated\": %llu, "
        "\"backpressure_waits\": %llu, \"queue_high_water\": %llu}%s\n",
        r.mode.c_str(), r.oracle.c_str(), r.backend.c_str(),
        static_cast<unsigned long long>(r.n),
        static_cast<unsigned long long>(r.d),
        static_cast<unsigned long long>(r.dprime), r.wall_s, r.rows_per_s,
        r.decode_s, r.support_eval_s,
        static_cast<unsigned long long>(r.rows_aggregated),
        static_cast<unsigned long long>(r.backpressure_waits),
        static_cast<unsigned long long>(r.queue_high_water),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const uint64_t n = flags.GetU64("n", smoke ? 50000 : 1000000);
  const uint64_t enc_n = flags.GetU64("enc_n", smoke ? 2000 : 20000);
  const uint64_t d = flags.GetU64("d", 1024);
  const uint64_t d_prime = flags.GetU64("dprime", 16);
  const double eps = flags.GetDouble("eps", 3.0);
  const std::string json_path = flags.GetString("json", "");
  const double solh_min_rate = flags.GetDouble("solh_min_rate", 0.0);

  ThreadPool& pool = GlobalThreadPool();
  service::StreamingOptions opts;
  opts.batch_size = flags.GetU64("batch", 4096);
  opts.queue_capacity = flags.GetU64("queue", 64);
  opts.num_shards = static_cast<uint32_t>(flags.GetU64("shards", 0));
  opts.pool = &pool;

  std::printf("streaming_throughput: n=%llu enc_n=%llu d=%llu threads=%u "
              "batch=%zu queue=%zu support_backend=%s\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(enc_n),
              static_cast<unsigned long long>(d), pool.num_threads(),
              opts.batch_size, opts.queue_capacity, ActiveBackendName());

  std::vector<Row> rows;
  Rng rng(20260729);
  double solh_stream_rate = 0.0;

  // Plain rows: GRR (histogram fast path) and SOLH (hash support scan)
  // at several hash ranges — d' = 2 (smallest), the default (power of
  // two), and a non-power-of-2 (magic-modulo path).
  {
    ldp::Grr grr(eps, d);
    auto reports = EncodeAll(grr, n, &rng);
    rows.push_back(RunMonolithicPlain(grr, reports, &pool));
    rows.push_back(RunStreamingPlain(grr, reports, opts));
  }
  const uint64_t solh_dprimes[] = {2, d_prime, 19};
  for (uint64_t dp : solh_dprimes) {
    ldp::LocalHash solh(eps, d, dp, "SOLH");
    auto reports = EncodeAll(solh, n, &rng);
    if (dp == d_prime) {
      rows.push_back(RunMonolithicPlain(solh, reports, &pool));
    }
    rows.push_back(RunStreamingPlain(solh, reports, opts));
    if (dp == d_prime) solh_stream_rate = rows.back().rows_per_s;
    if (dp == d_prime) {
      // Raw kernel rows on the same inputs: best backend vs the
      // forced-scalar per-pair reference.
      rows.push_back(RunHashKernel(solh, reports,
                                   ldp::BestSupportBackend()));
      const uint64_t scalar_n = std::min<uint64_t>(reports.size(),
                                                   smoke ? 20000 : 100000);
      std::vector<ldp::LdpReport> head(reports.begin(),
                                       reports.begin() + scalar_n);
      rows.push_back(
          RunHashKernel(solh, head, ldp::SupportBackend::kScalar));
    }
  }

  // Encrypted rows: the decrypt stage dominates.
  {
    ldp::Grr grr(eps, d);
    crypto::SecureRandom sec(uint64_t{42});
    auto kp = crypto::EciesGenerateKeyPair(&sec);
    auto reports = EncodeAll(grr, enc_n, &rng);
    auto blobs = EncryptAll(grr, reports, kp.public_key, &sec, &pool);
    rows.push_back(RunMonolithicEcies(grr, blobs, kp.private_key, &pool));
    rows.push_back(
        RunStreamingEcies(grr, std::move(blobs), kp.private_key, opts));
  }

  std::printf("\n%-18s %-6s %-9s %9s %5s %6s %9s %13s %9s %9s %6s %5s\n",
              "mode", "oracle", "backend", "n", "d", "d'", "wall_s",
              "rows_per_s", "decode_s", "supp_s", "waits", "hwm");
  for (const Row& r : rows) {
    std::printf(
        "%-18s %-6s %-9s %9llu %5llu %6llu %9.3f %13.0f %9.3f %9.3f "
        "%6llu %5llu\n",
        r.mode.c_str(), r.oracle.c_str(), r.backend.c_str(),
        static_cast<unsigned long long>(r.n),
        static_cast<unsigned long long>(r.d),
        static_cast<unsigned long long>(r.dprime), r.wall_s, r.rows_per_s,
        r.decode_s, r.support_eval_s,
        static_cast<unsigned long long>(r.backpressure_waits),
        static_cast<unsigned long long>(r.queue_high_water));
  }

  if (!json_path.empty()) {
    if (!WriteJson(json_path, rows, pool.num_threads())) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (solh_min_rate > 0.0 && solh_stream_rate < solh_min_rate) {
    std::fprintf(stderr,
                 "FAIL: streaming SOLH d'=%llu ingest %.0f rows/s under "
                 "the %.0f rows/s budget\n",
                 static_cast<unsigned long long>(d_prime), solh_stream_rate,
                 solh_min_rate);
    return 1;
  }
  return 0;
}

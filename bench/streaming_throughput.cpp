// Streaming-vs-monolithic server ingestion throughput.
//
// The seed repo collected every report into one in-memory vector and then
// aggregated it in a single pass; the service layer replaces that with the
// sharded streaming pipeline (src/service/). This bench measures both
// architectures on the same inputs and writes the rows run_benches.sh
// tracks as BENCH_streaming.json:
//
//   *-plain  rows: n pre-encoded reports (default n = 10^6, d = 1024 — the
//            ROADMAP scale target), server-side aggregation only.
//   *-ecies  rows: enc_n ECIES-encrypted reports (default 20,000), so the
//            decrypt stage dominates and the pipeline's decode fan-out +
//            overlap shows up.
//
// Flags: --n=1000000, --enc_n=20000, --d=1024, --dprime=16, --eps=3.0,
// --batch=4096, --queue=64, --shards=0 (auto), --smoke (tiny sizes for CI),
// --json=PATH.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "crypto/ecies.h"
#include "crypto/secure_random.h"
#include "ldp/estimator.h"
#include "ldp/grr.h"
#include "ldp/local_hash.h"
#include "service/streaming_collector.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace shuffledp;
using bench::Flags;

namespace {

struct Row {
  std::string mode;
  std::string oracle;
  uint64_t n = 0;
  uint64_t d = 0;
  double wall_s = 0.0;
  double rows_per_s = 0.0;
  uint64_t backpressure_waits = 0;
  uint64_t queue_high_water = 0;
};

std::vector<ldp::LdpReport> EncodeAll(const ldp::ScalarFrequencyOracle& oracle,
                                      uint64_t n, Rng* rng) {
  std::vector<ldp::LdpReport> reports;
  reports.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    reports.push_back(oracle.Encode(i % oracle.domain_size(), rng));
  }
  return reports;
}

Row RunMonolithicPlain(const ldp::ScalarFrequencyOracle& oracle,
                       const std::vector<ldp::LdpReport>& reports,
                       ThreadPool* pool) {
  WallTimer timer;
  auto supports = ldp::SupportCountsFullDomain(oracle, reports, pool);
  auto estimates =
      ldp::CalibrateEstimates(oracle, supports, reports.size(), 0);
  Row row;
  row.mode = "monolithic-plain";
  row.oracle = oracle.Name();
  row.n = reports.size();
  row.d = oracle.domain_size();
  row.wall_s = timer.ElapsedSeconds();
  row.rows_per_s = static_cast<double>(reports.size()) / row.wall_s;
  // Keep the estimate alive so the whole pass cannot be optimized out.
  if (estimates.empty()) std::printf("unexpected empty estimate\n");
  return row;
}

Row RunStreamingPlain(const ldp::ScalarFrequencyOracle& oracle,
                      const std::vector<ldp::LdpReport>& reports,
                      const service::StreamingOptions& opts) {
  service::StreamingCollector collector(oracle, opts);
  WallTimer timer;
  auto offer = collector.OfferReports(reports);
  auto round = collector.FinishRound(reports.size(), 0,
                                     service::Calibration::kStandard);
  Row row;
  row.mode = "streaming-plain";
  row.oracle = oracle.Name();
  row.n = reports.size();
  row.d = oracle.domain_size();
  row.wall_s = timer.ElapsedSeconds();
  row.rows_per_s = static_cast<double>(reports.size()) / row.wall_s;
  if (!offer.ok() || !round.ok()) {
    std::fprintf(stderr, "streaming-plain failed: %s\n",
                 (!offer.ok() ? offer : round.status()).ToString().c_str());
    return row;
  }
  row.backpressure_waits = round->stats.backpressure_waits;
  row.queue_high_water = round->stats.queue_high_water;
  return row;
}

std::vector<Bytes> EncryptAll(const ldp::ScalarFrequencyOracle& oracle,
                              const std::vector<ldp::LdpReport>& reports,
                              const crypto::P256Point& server_pub,
                              crypto::SecureRandom* rng, ThreadPool* pool) {
  std::vector<Bytes> payloads(reports.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    ByteWriter w(16);
    w.PutU64(ldp::PackReport(reports[i]));
    w.PutU64(rng->NextU64());
    payloads[i] = w.Release();
  }
  (void)oracle;
  return crypto::EciesEncryptBatch(server_pub, payloads, rng, pool);
}

Row RunMonolithicEcies(const ldp::ScalarFrequencyOracle& oracle,
                       const std::vector<Bytes>& blobs,
                       const crypto::Scalar256& priv, ThreadPool* pool) {
  WallTimer timer;
  std::vector<ldp::LdpReport> reports(blobs.size());
  pool->ParallelFor(0, blobs.size(), [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      auto payload = crypto::EciesDecrypt(priv, blobs[i]);
      if (!payload.ok()) continue;
      ByteReader reader(*payload);
      auto packed = reader.GetU64();
      if (packed.ok()) reports[i] = ldp::UnpackReport(*packed);
    }
  });
  auto supports = ldp::SupportCountsFullDomain(oracle, reports, pool);
  Row row;
  row.mode = "monolithic-ecies";
  row.oracle = oracle.Name();
  row.n = blobs.size();
  row.d = oracle.domain_size();
  row.wall_s = timer.ElapsedSeconds();
  row.rows_per_s = static_cast<double>(blobs.size()) / row.wall_s;
  if (supports.empty()) std::printf("unexpected empty supports\n");
  return row;
}

Row RunStreamingEcies(const ldp::ScalarFrequencyOracle& oracle,
                      std::vector<Bytes> blobs, const crypto::Scalar256& priv,
                      const service::StreamingOptions& opts) {
  service::StreamingCollector collector(oracle, opts);
  const uint64_t n = blobs.size();
  auto shared = std::make_shared<std::vector<Bytes>>(std::move(blobs));
  WallTimer timer;
  Status offer = collector.OfferIndexed(
      n, [shared, priv](uint64_t row_index) -> Result<service::DecodedRow> {
        SHUFFLEDP_ASSIGN_OR_RETURN(
            Bytes payload, crypto::EciesDecrypt(priv, (*shared)[row_index]));
        service::DecodedRow row;
        ByteReader reader(payload);
        auto packed = reader.GetU64();
        if (!packed.ok()) return row;
        row.report = ldp::UnpackReport(*packed);
        row.valid = true;
        return row;
      });
  auto round = collector.FinishRound(n, 0, service::Calibration::kStandard);
  Row row;
  row.mode = "streaming-ecies";
  row.oracle = oracle.Name();
  row.n = n;
  row.d = oracle.domain_size();
  row.wall_s = timer.ElapsedSeconds();
  row.rows_per_s = static_cast<double>(n) / row.wall_s;
  if (!offer.ok() || !round.ok()) {
    std::fprintf(stderr, "streaming-ecies failed: %s\n",
                 (!offer.ok() ? offer : round.status()).ToString().c_str());
    return row;
  }
  row.backpressure_waits = round->stats.backpressure_waits;
  row.queue_high_water = round->stats.queue_high_water;
  return row;
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows,
               unsigned threads) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"streaming_throughput\",\n");
  std::fprintf(f, "  \"threads\": %u,\n  \"rows\": [\n", threads);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"oracle\": \"%s\", \"n\": %llu, "
        "\"d\": %llu, \"wall_s\": %.6f, \"rows_per_s\": %.1f, "
        "\"backpressure_waits\": %llu, \"queue_high_water\": %llu}%s\n",
        r.mode.c_str(), r.oracle.c_str(),
        static_cast<unsigned long long>(r.n),
        static_cast<unsigned long long>(r.d), r.wall_s, r.rows_per_s,
        static_cast<unsigned long long>(r.backpressure_waits),
        static_cast<unsigned long long>(r.queue_high_water),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const uint64_t n = flags.GetU64("n", smoke ? 50000 : 1000000);
  const uint64_t enc_n = flags.GetU64("enc_n", smoke ? 2000 : 20000);
  const uint64_t d = flags.GetU64("d", 1024);
  const uint64_t d_prime = flags.GetU64("dprime", 16);
  const double eps = flags.GetDouble("eps", 3.0);
  const std::string json_path = flags.GetString("json", "");

  ThreadPool& pool = GlobalThreadPool();
  service::StreamingOptions opts;
  opts.batch_size = flags.GetU64("batch", 4096);
  opts.queue_capacity = flags.GetU64("queue", 64);
  opts.num_shards = static_cast<uint32_t>(flags.GetU64("shards", 0));
  opts.pool = &pool;

  std::printf("streaming_throughput: n=%llu enc_n=%llu d=%llu threads=%u "
              "batch=%zu queue=%zu\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(enc_n),
              static_cast<unsigned long long>(d), pool.num_threads(),
              opts.batch_size, opts.queue_capacity);

  std::vector<Row> rows;
  Rng rng(20260729);

  // Plain rows: GRR (histogram fast path) and SOLH (hash support scan).
  {
    ldp::Grr grr(eps, d);
    auto reports = EncodeAll(grr, n, &rng);
    rows.push_back(RunMonolithicPlain(grr, reports, &pool));
    rows.push_back(RunStreamingPlain(grr, reports, opts));
  }
  {
    ldp::LocalHash solh(eps, d, d_prime, "SOLH");
    auto reports = EncodeAll(solh, n, &rng);
    rows.push_back(RunMonolithicPlain(solh, reports, &pool));
    rows.push_back(RunStreamingPlain(solh, reports, opts));
  }

  // Encrypted rows: the decrypt stage dominates.
  {
    ldp::Grr grr(eps, d);
    crypto::SecureRandom sec(uint64_t{42});
    auto kp = crypto::EciesGenerateKeyPair(&sec);
    auto reports = EncodeAll(grr, enc_n, &rng);
    auto blobs = EncryptAll(grr, reports, kp.public_key, &sec, &pool);
    rows.push_back(RunMonolithicEcies(grr, blobs, kp.private_key, &pool));
    rows.push_back(
        RunStreamingEcies(grr, std::move(blobs), kp.private_key, opts));
  }

  std::printf("\n%-18s %-6s %10s %6s %10s %14s %8s %6s\n", "mode", "oracle",
              "n", "d", "wall_s", "rows_per_s", "waits", "hwm");
  for (const Row& r : rows) {
    std::printf("%-18s %-6s %10llu %6llu %10.3f %14.0f %8llu %6llu\n",
                r.mode.c_str(), r.oracle.c_str(),
                static_cast<unsigned long long>(r.n),
                static_cast<unsigned long long>(r.d), r.wall_s, r.rows_per_s,
                static_cast<unsigned long long>(r.backpressure_waits),
                static_cast<unsigned long long>(r.queue_high_water));
  }

  if (!json_path.empty()) {
    if (!WriteJson(json_path, rows, pool.num_threads())) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

// Table I reproduction: privacy-amplification bound comparison.
//
// For a sweep of local ε_l, prints the amplified central ε_c under the
// three prior bounds (EFMRTT'19, CSUZZ'19, BBGN'19) and the paper's
// Theorems 2 (unary) and 3 (SOLH), at the paper's scale (n = 10^6,
// δ = 10^-9). "-" marks parameter ranges where a bound's validity
// condition fails (the method falls back to ε_c = ε_l).

#include <cstdio>

#include "bench/bench_util.h"
#include "dp/amplification.h"

using shuffledp::bench::Flags;
namespace dp = shuffledp::dp;

namespace {

void PrintCell(const dp::AmplificationBound& b) {
  if (b.amplified) {
    std::printf(" %10.4f", b.eps_c);
  } else {
    std::printf(" %10s", "-");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t n = flags.GetU64("n", 1000000);
  const double delta = flags.GetDouble("delta", 1e-9);
  const uint64_t d = flags.GetU64("d", 915);
  const uint64_t d_prime = flags.GetU64("dprime", 64);

  std::printf("== Table I: amplified eps_c per bound ==\n");
  std::printf("n=%llu delta=%.0e d=%llu (BBGN) d'=%llu (SOLH)\n\n",
              static_cast<unsigned long long>(n), delta,
              static_cast<unsigned long long>(d),
              static_cast<unsigned long long>(d_prime));
  std::printf("%10s %10s %10s %10s %10s %10s\n", "eps_l", "EFMRTT19",
              "CSUZZ19", "BBGN19", "Unary(T2)", "SOLH(T3)");

  for (double eps_l : {0.1, 0.25, 0.4, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    std::printf("%10.2f", eps_l);
    PrintCell(dp::AmplifyEfmrtt19(eps_l, n, delta));
    PrintCell(dp::AmplifyCsuzz19(eps_l, n, delta));
    PrintCell(dp::AmplifyBbgn19(eps_l, n, d, delta));
    PrintCell(dp::AmplifyUnary(eps_l, n, delta));
    PrintCell(dp::AmplifySolh(eps_l, n, d_prime, delta));
    std::printf("\n");
  }

  std::printf(
      "\nNote: SOLH's bound depends on d' (not the input domain d), which\n"
      "is the mechanism's whole advantage on large domains (paper SIV-B).\n");
  return 0;
}

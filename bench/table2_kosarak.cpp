// Table II reproduction: SOLH vs RAP_R on the Kosarak-shaped workload
// (n = 10^6, d = 42,178), with SOLH's d' sensitivity.
//
// Rows (as in the paper):
//   * the optimal d' chosen by Eq. (5) at each ε_c,
//   * MSE of SOLH at the optimal d',
//   * MSE of SOLH at fixed sub-optimal d' in {10, 100, 1000},
//   * MSE of RAP_R (best utility, but Θ(d) = ~5 KB per report vs 8 B).
//
// Flags: --scale=1.0, --reps=10, --eval=4000 (MSE sample size; 0 = full).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/methods.h"
#include "data/datasets.h"
#include "dp/amplification.h"
#include "ldp/fast_sim.h"
#include "ldp/local_hash.h"
#include "ldp/unary.h"
#include "util/stats.h"

using namespace shuffledp;
using bench::Flags;

namespace {

double SolhMseTrial(const ldp::LocalHash& oracle,
                    const std::vector<uint64_t>& counts, uint64_t n,
                    const std::vector<double>& truth,
                    const std::vector<uint64_t>& eval, Rng* rng) {
  auto est = ldp::FastSimulateEstimateAt(oracle, counts, n, 0, eval, rng);
  double sum = 0;
  for (size_t j = 0; j < eval.size(); ++j) {
    double dv = est[j] - truth[eval[j]];
    sum += dv * dv;
  }
  return sum / static_cast<double>(eval.size());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const int reps = static_cast<int>(flags.GetU64("reps", 10));
  const uint64_t eval_size = flags.GetU64("eval", 4000);
  const double delta = 1e-9;

  data::Dataset ds = data::MakeSyntheticKosarak(20200802, scale);
  const uint64_t n = ds.user_count();
  const uint64_t d = ds.domain_size;
  auto counts = ds.ValueCounts();
  auto truth = ds.Frequencies();

  Rng rng(77);
  std::vector<uint64_t> eval;
  if (eval_size == 0 || eval_size >= d) {
    eval.resize(d);
    for (uint64_t v = 0; v < d; ++v) eval[v] = v;
  } else {
    eval = rng.SampleWithoutReplacement(d, eval_size);
  }

  const std::vector<double> eps_values = {0.2, 0.4, 0.6, 0.8};

  std::printf("== Table II: SOLH vs RAP_R, Kosarak-shaped (n=%llu, "
              "d=%llu, reps=%d, MSE over %zu sampled values) ==\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(d), reps, eval.size());

  std::printf("%-18s", "eps_c");
  for (double e : eps_values) std::printf(" %11.1f", e);
  std::printf("\n");

  // Row 1: optimal d'.
  std::printf("%-18s", "d' (SOLH)");
  for (double e : eps_values) {
    std::printf(" %11llu", static_cast<unsigned long long>(
                               dp::OptimalSolhDPrime(e, n, delta)));
  }
  std::printf("\n");

  // SOLH with optimal and fixed d'.
  auto solh_row = [&](const char* label, uint64_t fixed_d_prime) {
    std::printf("%-18s", label);
    for (double eps_c : eps_values) {
      uint64_t d_prime = fixed_d_prime == 0
                             ? dp::OptimalSolhDPrime(eps_c, n, delta)
                             : fixed_d_prime;
      auto oracle = ldp::MakeSolhFixedDPrime(eps_c, n, d, d_prime, delta);
      if (!oracle.ok()) {
        std::printf(" %11s", "err");
        continue;
      }
      RunningStat mse;
      for (int t = 0; t < reps; ++t) {
        mse.Add(SolhMseTrial(**oracle, counts, n, truth, eval, &rng));
      }
      std::printf(" %11.3e", mse.mean());
    }
    std::printf("\n");
  };
  solh_row("SOLH (optimal)", 0);
  solh_row("SOLH (d'=10)", 10);
  solh_row("SOLH (d'=100)", 100);
  solh_row("SOLH (d'=1000)", 1000);

  // RAP_R.
  std::printf("%-18s", "RAP_R");
  for (double eps_c : eps_values) {
    RunningStat mse;
    for (int t = 0; t < reps; ++t) {
      auto est = core::RunUtilityTrial(core::Method::kRapRemoval, counts, n,
                                       eps_c, delta, eval, &rng);
      if (!est.ok()) break;
      double sum = 0;
      for (size_t j = 0; j < eval.size(); ++j) {
        double dv = (*est)[j] - truth[eval[j]];
        sum += dv * dv;
      }
      mse.Add(sum / static_cast<double>(eval.size()));
    }
    std::printf(" %11.3e", mse.mean());
  }
  std::printf("\n");

  ldp::UnaryEncoding rapr(1.0, d, ldp::UnaryEncoding::Semantics::kRemoval);
  std::printf(
      "\nCommunication per report: SOLH = 8 B, RAP_R = %zu B (~%.1f KB)\n",
      rapr.ReportBytes(), rapr.ReportBytes() / 1024.0);
  return 0;
}

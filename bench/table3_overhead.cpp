// Table III reproduction: computation and communication overhead of SS
// (sequential shuffle, onion encryption) vs PEOS, for r = 3 and r = 7
// shufflers.
//
// The paper measures n = 10^6 users on Xeon servers with 32 threads; this
// bench runs the *real protocols* at a configurable n (default 4,000) and
// prints (a) the measured per-role costs, (b) a linear extrapolation of
// compute to n = 10^6 (all protocol phases are linear in the number of
// reports), and (c) communication at n = 10^6 from the exact per-report
// byte counts. Per-user rows are n-independent and directly comparable to
// the paper. See EXPERIMENTS.md for the measured-vs-paper discussion.
//
// Flags: --n=4000, --paillier_bits=1024, --exactcrypto (disable the
// randomizer pool; DESIGN.md §4 item 5), --fakes=0 (paper ignores n_r),
// --json=PATH (additionally dump the measured rows as JSON, used by
// bench/run_benches.sh to track the perf trajectory across PRs).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "crypto/aes.h"
#include "crypto/sha256.h"
#include "data/datasets.h"
#include "ldp/local_hash.h"
#include "shuffle/peos.h"
#include "shuffle/sequential_shuffle.h"
#include "util/thread_pool.h"

using namespace shuffledp;
using bench::Flags;

namespace {

struct Row {
  const char* protocol;
  uint32_t r;
  shuffle::CostReport costs;
};

void PrintTable(const std::vector<Row>& rows, uint64_t n) {
  const double scale_to_paper = 1e6 / static_cast<double>(n);
  std::printf("%-22s", "Metric");
  for (const auto& row : rows) {
    char head[32];
    std::snprintf(head, sizeof(head), "%s r=%u", row.protocol, row.r);
    std::printf(" %12s", head);
  }
  std::printf("\n");

  auto print_metric = [&](const char* name, auto getter) {
    std::printf("%-22s", name);
    for (const auto& row : rows) std::printf(" %12.3f", getter(row.costs));
    std::printf("\n");
  };
  std::printf("-- measured at n=%llu --\n",
              static_cast<unsigned long long>(n));
  print_metric("User comp. (ms)", [](const shuffle::CostReport& c) {
    return c.user_comp_ms_per_user;
  });
  print_metric("User comm. (Byte)", [](const shuffle::CostReport& c) {
    return static_cast<double>(c.user_comm_bytes_per_user);
  });
  print_metric("Aux comp. (s)", [](const shuffle::CostReport& c) {
    return c.aux_comp_seconds;
  });
  print_metric("Aux comm. (MB)", [](const shuffle::CostReport& c) {
    return c.aux_comm_mb_per_shuffler;
  });
  print_metric("Server comp. (s)", [](const shuffle::CostReport& c) {
    return c.server_comp_seconds;
  });
  print_metric("Server comm. (MB)", [](const shuffle::CostReport& c) {
    return c.server_comm_mb;
  });

  std::printf("-- linear extrapolation to n=10^6 (paper's scale) --\n");
  print_metric("Aux comp. (s)", [&](const shuffle::CostReport& c) {
    return c.aux_comp_seconds * scale_to_paper;
  });
  print_metric("Aux comm. (MB)", [&](const shuffle::CostReport& c) {
    return c.aux_comm_mb_per_shuffler * scale_to_paper;
  });
  print_metric("Server comp. (s)", [&](const shuffle::CostReport& c) {
    return c.server_comp_seconds * scale_to_paper;
  });
  print_metric("Server comm. (MB)", [&](const shuffle::CostReport& c) {
    return c.server_comm_mb * scale_to_paper;
  });
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows,
               uint64_t n, unsigned threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"n\": %llu,\n  \"threads\": %u,\n",
               static_cast<unsigned long long>(n), threads);
  std::fprintf(f, "  \"aes_backend\": \"%s\",\n  \"sha_backend\": \"%s\",\n",
               crypto::AesBackendName(crypto::ActiveAesBackend()),
               crypto::ShaBackendName(crypto::ActiveShaBackend()));
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& c = rows[i].costs;
    std::fprintf(
        f,
        "    {\"protocol\": \"%s\", \"r\": %u, "
        "\"user_comp_ms_per_user\": %.6f, \"user_comm_bytes_per_user\": %llu, "
        "\"aux_comp_seconds\": %.6f, \"aux_comm_mb_per_shuffler\": %.6f, "
        "\"server_comp_seconds\": %.6f, \"server_comm_mb\": %.6f}%s\n",
        rows[i].protocol, rows[i].r, c.user_comp_ms_per_user,
        static_cast<unsigned long long>(c.user_comm_bytes_per_user),
        c.aux_comp_seconds, c.aux_comm_mb_per_shuffler, c.server_comp_seconds,
        c.server_comm_mb, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t n = flags.GetU64("n", 3000);
  const uint64_t fakes = flags.GetU64("fakes", 0);
  const size_t paillier_bits = flags.GetU64("paillier_bits", 1024);
  const bool exact_crypto = flags.GetBool("exactcrypto", false);

  // The paper fixes the report at 64 bits and uses SOLH; d' = 16 on an
  // IPUMS-sized domain gives a representative oracle.
  const uint64_t d = 915;
  ldp::LocalHash oracle(4.0, d, 16, "SOLH");
  data::Dataset ds = data::MakeZipfDataset("bench", n, d, 1.0, 20200802);

  ThreadPool pool(ThreadPool::DefaultNumThreads());
  std::printf("== Table III: SS vs PEOS overhead (n=%llu, fakes=%llu, "
              "Paillier %zu-bit, %s, %u threads) ==\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(fakes), paillier_bits,
              exact_crypto ? "exact crypto" : "randomizer pool",
              pool.num_threads());
  std::printf("== crypto backends: AES=%s SHA=%s; SS onion encryption uses "
              "the batched ECIES path ==\n\n",
              crypto::AesBackendName(crypto::ActiveAesBackend()),
              crypto::ShaBackendName(crypto::ActiveShaBackend()));

  std::vector<Row> rows;
  crypto::SecureRandom rng(uint64_t{31337});

  for (uint32_t r : {3u, 7u}) {
    shuffle::SequentialShuffleConfig ss;
    ss.num_shufflers = r;
    ss.fake_reports_total = fakes;
    ss.pool = &pool;
    auto result = shuffle::RunSequentialShuffle(oracle, ds.values, ss, &rng);
    if (!result.ok()) {
      std::fprintf(stderr, "SS r=%u failed: %s\n", r,
                   result.status().ToString().c_str());
      return 1;
    }
    rows.push_back({"SS", r, result->costs});
  }
  for (uint32_t r : {3u, 7u}) {
    shuffle::PeosConfig peos;
    peos.num_shufflers = r;
    peos.fake_reports = fakes;
    peos.paillier_bits = paillier_bits;
    peos.use_randomizer_pool = !exact_crypto;
    peos.pool = &pool;
    auto result = shuffle::RunPeos(oracle, ds.values, peos, &rng);
    if (!result.ok()) {
      std::fprintf(stderr, "PEOS r=%u failed: %s\n", r,
                   result.status().ToString().c_str());
      return 1;
    }
    rows.push_back({"PEOS", r, result->costs});
  }

  PrintTable(rows, n);

  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    if (!WriteJson(json_path, rows, n, pool.num_threads())) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf(
      "\nExpected shape (paper Table III): PEOS aux computation is orders\n"
      "of magnitude below SS (no per-report public-key peeling), while\n"
      "PEOS communication is higher and grows faster with r (C(r, r/2+1)\n"
      "oblivious-shuffle rounds, each shipping the AHE column).\n");
  return 0;
}

// Partitioned collection fleet demo.
//
// Boots P loopback CollectionServers that share one PartitionMap (each
// owns a slice of the value domain, or a round-robin share of the
// clients), fans a report population across them through the
// partition-routing client, and closes the round through the
// MergeCoordinator: raw per-partition supports are gathered, merged in
// partition order, and only then calibrated. The identical dataset then
// runs through the single-node CollectStreaming path; the two must agree
// bitwise — the property the distributed e2e test pins. Exits non-zero
// on any mismatch, so CI can drive it as a process-level check.
//
//   ./example_distributed_collection 120000 64 3
//
// See docs/ARCHITECTURE.md (partition/coordinator tier) and
// docs/WIRE_FORMAT.md (kHello handshake, partition header field).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "core/shuffle_dp.h"
#include "service/coordinator.h"
#include "service/transport.h"
#include "util/rng.h"

using namespace shuffledp;

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120000;
  const uint64_t d = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const uint32_t partitions =
      argc > 3 ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10)) : 3;

  core::PrivacyGoals goals;  // ε₁=0.5, ε₂=2, ε₃=8, δ=1e-9
  core::ShuffleDpCollector::Options options;
  options.streaming.batch_size = 4096;
  auto collector = core::ShuffleDpCollector::Create(goals, n, d, options);
  if (!collector.ok()) {
    std::fprintf(stderr, "planner failed: %s\n",
                 collector.status().ToString().c_str());
    return 1;
  }
  const auto& oracle = (*collector)->oracle();

  // GRR routes by value range; SOLH reports support the whole domain, so
  // its fleet partitions by client instead.
  const service::PartitionMode mode = (*collector)->plan().use_grr
                                          ? service::PartitionMode::kByValue
                                          : service::PartitionMode::kByClient;
  auto map = service::PartitionMap::Create(oracle, mode, partitions);
  if (!map.ok()) {
    std::fprintf(stderr, "partition map failed: %s\n",
                 map.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\nfleet: %s\n", (*collector)->plan().ToString().c_str(),
              map->ToString().c_str());

  std::vector<uint64_t> values(n);
  Rng data_rng(7);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = data_rng.Bernoulli(0.10) ? 0 : 1 + data_rng.UniformU64(d - 1);
  }

  std::vector<std::unique_ptr<service::CollectionServer>> servers;
  std::vector<service::EndpointAddress> endpoints;
  for (uint32_t p = 0; p < partitions; ++p) {
    service::CollectionServerOptions server_options;
    server_options.streaming = options.streaming;
    server_options.partition_map = *map;
    server_options.partition_id = p;
    auto server = service::CollectionServer::Start(oracle, server_options);
    if (!server.ok()) {
      std::fprintf(stderr, "endpoint %u start failed: %s\n", p,
                   server.status().ToString().c_str());
      return 1;
    }
    std::printf("endpoint %u: 127.0.0.1:%u owns %s slice [%llu, %llu)\n", p,
                (*server)->port(),
                mode == service::PartitionMode::kByValue ? "value"
                                                         : "client",
                static_cast<unsigned long long>(map->SliceOf(p).lo),
                static_cast<unsigned long long>(map->SliceOf(p).hi));
    endpoints.push_back({"127.0.0.1", (*server)->port()});
    servers.push_back(std::move(*server));
  }

  auto routing =
      service::PartitionRoutingClient::Connect(oracle, *map, endpoints);
  if (!routing.ok()) {
    std::fprintf(stderr, "fleet handshake failed: %s\n",
                 routing.status().ToString().c_str());
    return 1;
  }
  service::MergeCoordinator coordinator(oracle, routing->get());

  Rng distributed_rng(1234);
  auto merged = (*collector)->CollectDistributed(
      values, &distributed_rng, routing->get(), &coordinator, 0);
  if (!merged.ok()) {
    std::fprintf(stderr, "distributed round failed: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "fleet:     f̂(0)=%.4f (true 0.10)  decoded=%llu invalid=%llu\n",
      merged->estimates[0],
      static_cast<unsigned long long>(merged->reports_decoded),
      static_cast<unsigned long long>(merged->reports_invalid));

  // Same seed through the single-node pipeline; must agree bitwise.
  Rng local_rng(1234);
  auto local = (*collector)->CollectStreaming(values, &local_rng);
  if (!local.ok()) {
    std::fprintf(stderr, "single-node round failed: %s\n",
                 local.status().ToString().c_str());
    return 1;
  }
  std::printf("1-node:    f̂(0)=%.4f  pipeline: %s\n", local->estimates[0],
              local->stats.ToString().c_str());

  const bool identical =
      merged->supports == local->supports &&
      merged->estimates.size() == local->estimates.size() &&
      std::memcmp(merged->estimates.data(), local->estimates.data(),
                  merged->estimates.size() * sizeof(double)) == 0;
  std::printf("%u-endpoint fleet vs single node: %s\n", partitions,
              identical ? "bitwise identical" : "MISMATCH");
  return identical ? 0 : 1;
}

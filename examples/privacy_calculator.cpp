// Privacy calculator: explore the amplification landscape for your own
// deployment parameters before running anything.
//
// Prints, for a given (n, d, δ):
//   * the ε_l -> ε_c amplification curves (Table I bounds + Theorems 2/3),
//   * SH's amplification threshold on this domain,
//   * the SOLH configuration (d', ε_l) for a range of central targets,
//   * a full PEOS plan for three-adversary goals.
//
// Usage:  ./build/examples/privacy_calculator [--n=602325] [--d=915]
//         [--delta=1e-9] [--eps1=0.5] [--eps2=2] [--eps3=8]

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/planner.h"
#include "dp/amplification.h"

using namespace shuffledp;
using bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t n = flags.GetU64("n", 602325);
  const uint64_t d = flags.GetU64("d", 915);
  const double delta = flags.GetDouble("delta", 1e-9);

  std::printf("deployment: n=%llu users, domain d=%llu, delta=%.0e\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(d), delta);

  double threshold = std::sqrt(14.0 * std::log(2.0 / delta) *
                               static_cast<double>(d) /
                               static_cast<double>(n - 1));
  std::printf("SH (GRR+shuffle) amplification threshold on this domain: "
              "eps_c > %.3f\n", threshold);
  std::printf("below it, GRR gains nothing from shuffling — use SOLH.\n\n");

  std::printf("SOLH configuration per central target:\n");
  std::printf("%8s %8s %10s %14s\n", "eps_c", "d'", "eps_l", "pred. var");
  for (double eps_c : {0.1, 0.2, 0.5, 1.0}) {
    uint64_t d_prime = dp::OptimalSolhDPrime(eps_c, n, delta);
    double eps_l = dp::InverseSolhEpsLocal(eps_c, n, d_prime, delta);
    double var = dp::SolhVarianceCentral(eps_c, n, d_prime, delta);
    std::printf("%8.2f %8llu %10.3f %14.3e\n", eps_c,
                static_cast<unsigned long long>(d_prime), eps_l, var);
  }

  core::PrivacyGoals goals;
  goals.eps_server = flags.GetDouble("eps1", 0.5);
  goals.eps_users = flags.GetDouble("eps2", 2.0);
  goals.eps_local = flags.GetDouble("eps3", 8.0);
  goals.delta = delta;
  std::printf("\nPEOS plan for goals (eps1=%.2f vs server, eps2=%.2f vs "
              "colluding users, eps3=%.2f LDP floor):\n",
              goals.eps_server, goals.eps_users, goals.eps_local);
  auto plan = core::PlanPeos(goals, n, d);
  if (plan.ok()) {
    std::printf("  %s\n", plan->ToString().c_str());
  } else {
    std::printf("  infeasible: %s\n", plan.status().ToString().c_str());
  }
  return 0;
}

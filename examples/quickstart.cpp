// Quickstart: collect a differentially-private histogram with PEOS.
//
// This is the 60-second tour of the public API:
//   1. state your privacy goals against the three adversaries,
//   2. let the planner pick the mechanism (GRR vs SOLH), the local budget
//      ε_l, the hash range d', and the fake-report count n_r,
//   3. run the full cryptographic protocol (secret sharing + Paillier +
//      encrypted oblivious shuffle) and read off the histogram.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/shuffle_dp.h"
#include "data/datasets.h"
#include "util/thread_pool.h"

using namespace shuffledp;

int main() {
  // A small synthetic workload: 5,000 users, 32 possible values, Zipf.
  const uint64_t n = 5000, d = 32;
  data::Dataset dataset = data::MakeZipfDataset("quickstart", n, d, 1.2,
                                                /*seed=*/2020);

  // 1. Privacy goals (paper §VI-D): ε₁ vs the server, ε₂ vs the server
  //    colluding with other users, ε₃ vs the server colluding with more
  //    than half the shufflers (plain LDP floor).
  core::PrivacyGoals goals;
  goals.eps_server = 1.0;
  goals.eps_users = 4.0;
  goals.eps_local = 8.0;
  goals.delta = 1e-6;

  // 2. Plan + build the collector.
  ThreadPool pool;
  core::ShuffleDpCollector::Options options;
  options.num_shufflers = 3;
  options.paillier_bits = 512;  // demo-size key; use >= 2048 in production
  options.pool = &pool;
  auto collector = core::ShuffleDpCollector::Create(goals, n, d, options);
  if (!collector.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 collector.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n\n", (*collector)->plan().ToString().c_str());

  // 3. Run the real protocol.
  crypto::SecureRandom rng;
  auto result = (*collector)->Collect(dataset.values, &rng);
  if (!result.ok()) {
    std::fprintf(stderr, "collection failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  auto truth = dataset.Frequencies();
  std::printf("%6s %12s %12s\n", "value", "true freq", "estimate");
  for (uint64_t v = 0; v < 8; ++v) {
    std::printf("%6llu %12.4f %12.4f\n", static_cast<unsigned long long>(v),
                truth[v], result->estimates[v]);
  }
  std::printf("...\ndecoded %llu reports (%llu fake-padding drops), "
              "protocol costs: %s\n",
              static_cast<unsigned long long>(result->reports_decoded),
              static_cast<unsigned long long>(result->reports_invalid),
              result->costs.ToString().c_str());
  return 0;
}

// Networked collection endpoint demo.
//
// Boots a loopback CollectionServer (the TCP endpoint in
// src/service/transport.h), streams an LDP report population to it
// through a CollectorClient — length-prefixed CRC-guarded frames, the
// same bytes a real deployment would put on the wire — and closes the
// round for calibrated estimates. The identical dataset then runs
// through the in-process CollectStreaming path; the two must agree
// bitwise, which is the property the endpoint e2e test pins.
//
//   ./example_remote_collection 200000 1024
//
// See docs/ARCHITECTURE.md for the pipeline and docs/WIRE_FORMAT.md for
// the frame layout.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/shuffle_dp.h"
#include "service/transport.h"
#include "util/rng.h"

using namespace shuffledp;

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  const uint64_t d = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;

  core::PrivacyGoals goals;  // ε₁=0.5, ε₂=2, ε₃=8, δ=1e-9
  core::ShuffleDpCollector::Options options;
  options.streaming.batch_size = 8192;
  auto collector = core::ShuffleDpCollector::Create(goals, n, d, options);
  if (!collector.ok()) {
    std::fprintf(stderr, "planner failed: %s\n",
                 collector.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n", (*collector)->plan().ToString().c_str());

  // Zipf-ish population: value 0 held by 10% of users, the rest uniform.
  std::vector<uint64_t> values(n);
  Rng data_rng(7);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = data_rng.Bernoulli(0.10) ? 0 : 1 + data_rng.UniformU64(d - 1);
  }

  // Server side: ephemeral loopback port, ingestion knobs shared with the
  // in-process run below.
  service::CollectionServerOptions server_options;
  server_options.streaming = options.streaming;
  auto server =
      service::CollectionServer::Start((*collector)->oracle(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("endpoint listening on 127.0.0.1:%u (round %llu)\n",
              (*server)->port(),
              static_cast<unsigned long long>((*server)->round_id()));

  auto client = service::CollectorClient::Connect("127.0.0.1",
                                                  (*server)->port());
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  Rng remote_rng(1234);
  auto remote = (*collector)->CollectRemote(values, &remote_rng, client->get(),
                                            (*server)->round_id());
  if (!remote.ok()) {
    std::fprintf(stderr, "remote round failed: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  std::printf("remote:    f̂(0)=%.4f (true 0.10)  decoded=%llu invalid=%llu\n",
              remote->estimates[0],
              static_cast<unsigned long long>(remote->reports_decoded),
              static_cast<unsigned long long>(remote->reports_invalid));

  // Same seed through the in-process pipeline; must agree bitwise.
  Rng local_rng(1234);
  auto local = (*collector)->CollectStreaming(values, &local_rng);
  if (!local.ok()) {
    std::fprintf(stderr, "in-process round failed: %s\n",
                 local.status().ToString().c_str());
    return 1;
  }
  std::printf("in-proc:   f̂(0)=%.4f  pipeline: %s\n", local->estimates[0],
              local->stats.ToString().c_str());

  const bool identical =
      remote->supports == local->supports &&
      remote->estimates.size() == local->estimates.size() &&
      std::memcmp(remote->estimates.data(), local->estimates.data(),
                  remote->estimates.size() * sizeof(double)) == 0;
  std::printf("wire path vs in-process: %s\n",
              identical ? "bitwise identical" : "MISMATCH");
  return identical ? 0 : 1;
}

// Streaming collection service demo.
//
// Simulates a server ingesting LDP reports from a large user population
// through the sharded streaming pipeline (src/service/): bounded queue
// with backpressure, batched decode, domain-sharded support counting, and
// multi-round (windowed) collection. Run it at the paper's IPUMS-like
// scale with:
//
//   ./example_streaming_service 1000000 1024
//
// It prints per-round estimates for the heavy hitter plus the pipeline's
// throughput/backpressure report.

#include <cstdio>
#include <cstdlib>

#include "core/shuffle_dp.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace shuffledp;

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  const uint64_t d = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;
  const int rounds = 3;

  core::PrivacyGoals goals;  // ε₁=0.5, ε₂=2, ε₃=8, δ=1e-9
  core::ShuffleDpCollector::Options options;
  options.streaming.batch_size = 8192;
  options.streaming.queue_capacity = 32;
  auto collector = core::ShuffleDpCollector::Create(goals, n, d, options);
  if (!collector.ok()) {
    std::fprintf(stderr, "planner failed: %s\n",
                 collector.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n", (*collector)->plan().ToString().c_str());

  // Zipf-ish population: value 0 held by 10% of users, the rest uniform.
  std::vector<uint64_t> values(n);
  Rng data_rng(7);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = data_rng.Bernoulli(0.10) ? 0 : 1 + data_rng.UniformU64(d - 1);
  }

  Rng rng(1234);
  for (int round = 0; round < rounds; ++round) {
    auto result = (*collector)->CollectStreaming(values, &rng);
    if (!result.ok()) {
      std::fprintf(stderr, "round %d failed: %s\n", round,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "round %d: f̂(0)=%.4f (true 0.10)  decoded=%llu invalid=%llu\n",
        round, result->estimates[0],
        static_cast<unsigned long long>(result->reports_decoded),
        static_cast<unsigned long long>(result->reports_invalid));
    std::printf("         pipeline: %s\n", result->stats.ToString().c_str());
  }
  return 0;
}

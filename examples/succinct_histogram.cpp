// Heavy hitters over a huge string domain (the paper's §VII-C case
// study): find the most frequent 48-bit search queries with TreeHist,
// comparing the plain LDP estimator against the shuffle-model SOLH
// estimator at the same central privacy level.
//
// Build & run:  ./build/examples/succinct_histogram

#include <cstdio>

#include "core/methods.h"
#include "data/datasets.h"
#include "hist/tree_hist.h"
#include "util/stats.h"

using namespace shuffledp;

namespace {

void RunOne(const char* label, core::Method method, bool split_users,
            double eps_round, double delta_round,
            const data::Dataset& ds, const std::vector<uint64_t>& truth) {
  auto estimator = core::MakeRoundEstimator(method, eps_round, delta_round);
  if (!estimator.ok()) {
    std::fprintf(stderr, "%s: %s\n", label,
                 estimator.status().ToString().c_str());
    return;
  }
  hist::TreeHistConfig config;
  config.total_bits = 48;
  config.bits_per_round = 8;
  config.top_k = 10;
  config.split_users = split_users;
  Rng rng(99);
  auto result = hist::RunTreeHist(ds.values, config, *estimator, &rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", label,
                 result.status().ToString().c_str());
    return;
  }
  std::printf("%-18s precision@10 = %.2f   found:", label,
              TopKPrecision(result->heavy_hitters, truth));
  for (size_t i = 0; i < 3 && i < result->heavy_hitters.size(); ++i) {
    std::printf(" %012llx",
                static_cast<unsigned long long>(result->heavy_hitters[i]));
  }
  std::printf(" ...\n");
}

}  // namespace

int main() {
  const double eps_c = 1.0, delta = 1e-9;
  const unsigned rounds = 6;

  // AOL-shaped workload at 20% scale (~100k users, 48-bit queries).
  data::Dataset ds = data::MakeSyntheticAol(11, 0.2);
  auto truth = ds.TopK(10);
  std::printf("searching for the top-10 of %llu queries "
              "(%llu users, eps_c=%.1f)\n",
              static_cast<unsigned long long>(ds.TopK(1000000).size()),
              static_cast<unsigned long long>(ds.user_count()), eps_c);
  std::printf("true top-3:");
  for (int i = 0; i < 3; ++i) {
    std::printf(" %012llx", static_cast<unsigned long long>(truth[i]));
  }
  std::printf("\n\n");

  // LDP TreeHist: users split into 6 groups, each reporting once at ε_c.
  RunOne("LDP (OLH)", core::Method::kOlh, /*split_users=*/true, eps_c,
         delta, ds, truth);
  // Shuffle TreeHist: all users each round at ε_c/6, δ/6.
  RunOne("Shuffle (SOLH)", core::Method::kSolh, /*split_users=*/false,
         eps_c / rounds, delta / rounds, ds, truth);
  RunOne("Shuffle (RAP_R)", core::Method::kRapRemoval, false,
         eps_c / rounds, delta / rounds, ds, truth);
  RunOne("Central (Lap)", core::Method::kLap, false, eps_c / rounds,
         delta / rounds, ds, truth);

  std::printf(
      "\nSOLH keeps TreeHist non-interactive: a user's 8-byte report per\n"
      "round encodes any prefix, so all rounds can be uploaded at once\n"
      "(unary encodings would need up to 2^48 bits; paper §VII-C).\n");
  return 0;
}

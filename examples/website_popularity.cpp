// Scenario from the paper's §V-C: a server measures website popularity;
// a malicious shuffler wants to promote a target website by poisoning
// the data collection.
//
// This example runs the same attack against both protocols:
//   * SS (sequential shuffle): the malicious shuffler draws its fake
//     reports from a point mass on the target site. The spot check
//     cannot see it (fakes are legitimate!) and the target's estimated
//     popularity inflates massively.
//   * PEOS: the malicious shuffler can only bias its own *shares* of the
//     fake reports; one honest shuffler's uniform share re-randomizes
//     every fake, so the attack is neutralized by construction.
//
// Build & run:  ./build/examples/website_popularity

#include <cstdio>

#include "crypto/secure_random.h"
#include "data/datasets.h"
#include "ldp/grr.h"
#include "shuffle/peos.h"
#include "shuffle/sequential_shuffle.h"

using namespace shuffledp;

int main() {
  const uint64_t n = 4000;      // users
  const uint64_t d = 16;        // websites
  const uint64_t target = 13;   // the site the attacker promotes
  const uint64_t fakes = 2000;  // n_r

  // Zipf popularity: site 0 most popular; the target is unpopular.
  data::Dataset ds = data::MakeZipfDataset("sites", n, d, 1.3, 7);
  auto truth = ds.Frequencies();
  ldp::Grr oracle(4.0, d);
  crypto::SecureRandom rng;

  std::printf("true popularity:   site0=%.3f  target(site%llu)=%.4f\n\n",
              truth[0], static_cast<unsigned long long>(target),
              truth[target]);

  // --- Attack on SS ---------------------------------------------------------
  shuffle::SequentialShuffleConfig ss;
  ss.num_shufflers = 3;
  ss.fake_reports_total = fakes;
  ss.spot_check_dummies = 50;
  ss.poison_target_value = target;
  ss.behaviours = {shuffle::ShufflerBehaviour::kBiasedFakes,
                   shuffle::ShufflerBehaviour::kHonest,
                   shuffle::ShufflerBehaviour::kHonest};
  auto ss_result = shuffle::RunSequentialShuffle(oracle, ds.values, ss, &rng);
  if (!ss_result.ok()) {
    std::fprintf(stderr, "SS failed: %s\n",
                 ss_result.status().ToString().c_str());
    return 1;
  }
  std::printf("SS under attack:   target estimate = %.4f (true %.4f)  "
              "spot check: %s\n",
              ss_result->estimates[target], truth[target],
              ss_result->spot_check_passed ? "PASSED (attack undetected!)"
                                           : "failed");

  // --- Same attack on PEOS --------------------------------------------------
  shuffle::PeosConfig peos;
  peos.num_shufflers = 3;
  peos.fake_reports = fakes;
  peos.paillier_bits = 512;
  peos.poison_target_packed = target;
  peos.behaviours = {shuffle::PeosShufflerBehaviour::kBiasedFakeShares,
                     shuffle::PeosShufflerBehaviour::kHonest,
                     shuffle::PeosShufflerBehaviour::kHonest};
  auto peos_result = shuffle::RunPeos(oracle, ds.values, peos, &rng);
  if (!peos_result.ok()) {
    std::fprintf(stderr, "PEOS failed: %s\n",
                 peos_result.status().ToString().c_str());
    return 1;
  }
  std::printf("PEOS under attack: target estimate = %.4f (true %.4f)  "
              "— bias masked by honest shufflers' shares\n",
              peos_result->estimates[target], truth[target]);

  std::printf("\nSummary: SS lets one malicious shuffler inflate the target "
              "by ~%.0f%%;\nPEOS bounds the same adversary to statistical "
              "noise (paper §VI-A2).\n",
              100.0 * (ss_result->estimates[target] - truth[target]) /
                  std::max(truth[target], 1e-9));
  return 0;
}

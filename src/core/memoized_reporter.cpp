#include "core/memoized_reporter.h"

#include <cmath>
#include <cstring>

#include "util/hash.h"

namespace shuffledp {
namespace core {

uint64_t MemoizedReporter::ConfigHash(
    const ldp::ScalarFrequencyOracle& oracle) {
  // Identity of a configuration: mechanism name, ε_l (bit pattern),
  // domain and report-domain sizes.
  uint64_t h = XxHash64(oracle.Name(), 0x5EED);
  double eps = oracle.epsilon_local();
  uint64_t eps_bits;
  static_assert(sizeof(eps) == sizeof(eps_bits));
  std::memcpy(&eps_bits, &eps, sizeof(eps_bits));
  h = XxHash64(&eps_bits, sizeof(eps_bits), h);
  uint64_t dims[2] = {oracle.domain_size(), oracle.report_domain()};
  return XxHash64(dims, sizeof(dims), h);
}

ldp::LdpReport MemoizedReporter::Report(
    const ldp::ScalarFrequencyOracle& oracle, uint64_t value) {
  Key key{ConfigHash(oracle), value};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  ldp::LdpReport report = oracle.Encode(value, rng_);
  cache_.emplace(key, report);
  return report;
}

}  // namespace core
}  // namespace shuffledp

// Report memoization (paper §V-C): "users need to remember their report
// to avoid averaging attacks."
//
// If a collection round is re-run (e.g., a shuffler denied service and
// the server restarts the protocol), a user who re-randomizes leaks a
// fresh independent sample of their value each time; averaging k reports
// shrinks the effective noise by sqrt(k) and eventually reveals the
// value. The standard defense (RAPPOR's "permanent randomized response")
// is to memoize: one perturbed report per (value, oracle configuration),
// replayed verbatim on every re-run.

#ifndef SHUFFLEDP_CORE_MEMOIZED_REPORTER_H_
#define SHUFFLEDP_CORE_MEMOIZED_REPORTER_H_

#include <cstdint>
#include <unordered_map>

#include "ldp/frequency_oracle.h"
#include "util/rng.h"

namespace shuffledp {
namespace core {

/// Client-side wrapper that memoizes one report per value.
///
/// The cache key includes the oracle's identity parameters (ε_l and the
/// report domain), so a *reconfigured* collection (different privacy
/// budget) legitimately draws a fresh report while a *re-run* of the same
/// collection replays the old one.
class MemoizedReporter {
 public:
  /// `rng` must outlive the reporter.
  explicit MemoizedReporter(Rng* rng) : rng_(rng) {}

  /// Returns the memoized report for (oracle configuration, value),
  /// encoding it on first use.
  ldp::LdpReport Report(const ldp::ScalarFrequencyOracle& oracle,
                        uint64_t value);

  /// Number of distinct (configuration, value) entries cached.
  size_t cache_size() const { return cache_.size(); }

  /// Drops all memoized reports (e.g., after the user's value changes
  /// epoch — the deployment-level knob RAPPOR calls "instantaneous"
  /// randomness is out of scope here).
  void Clear() { cache_.clear(); }

 private:
  struct Key {
    uint64_t config_hash;
    uint64_t value;
    bool operator==(const Key& o) const {
      return config_hash == o.config_hash && value == o.value;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.config_hash * 0x9E3779B97F4A7C15ULL ^
                                 k.value);
    }
  };

  static uint64_t ConfigHash(const ldp::ScalarFrequencyOracle& oracle);

  Rng* rng_;
  std::unordered_map<Key, ldp::LdpReport, KeyHash> cache_;
};

}  // namespace core
}  // namespace shuffledp

#endif  // SHUFFLEDP_CORE_MEMOIZED_REPORTER_H_

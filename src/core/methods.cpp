#include "core/methods.h"

#include <memory>

#include "dp/amplification.h"
#include "dp/laplace.h"
#include "ldp/aue.h"
#include "ldp/fast_sim.h"
#include "ldp/grr.h"
#include "ldp/hadamard.h"
#include "ldp/local_hash.h"
#include "ldp/unary.h"

namespace shuffledp {
namespace core {

std::vector<Method> AllMethods() {
  return {Method::kBase, Method::kOlh, Method::kHad,
          Method::kLap,  Method::kSh,  Method::kSolh,
          Method::kAue,  Method::kRap, Method::kRapRemoval};
}

const char* MethodName(Method method) {
  switch (method) {
    case Method::kBase:
      return "Base";
    case Method::kOlh:
      return "OLH";
    case Method::kHad:
      return "Had";
    case Method::kLap:
      return "Lap";
    case Method::kSh:
      return "SH";
    case Method::kSolh:
      return "SOLH";
    case Method::kAue:
      return "AUE";
    case Method::kRap:
      return "RAP";
    case Method::kRapRemoval:
      return "RAP_R";
  }
  return "?";
}

bool IsShuffleMethod(Method method) {
  switch (method) {
    case Method::kSh:
    case Method::kSolh:
    case Method::kAue:
    case Method::kRap:
    case Method::kRapRemoval:
      return true;
    default:
      return false;
  }
}

namespace {

// Unary-style trial shared by RAP / RAP_R.
Result<std::vector<double>> UnaryTrial(
    const std::vector<uint64_t>& value_counts, uint64_t n, double eps_c,
    double delta, const std::vector<uint64_t>& eval_points, Rng* rng) {
  double eps_l = dp::InverseUnaryEpsLocal(eps_c, n, delta);
  ldp::UnaryEncoding ue(eps_l, value_counts.size(),
                        ldp::UnaryEncoding::Semantics::kReplacement);
  auto cols = ldp::FastSimulateUnaryColumns(ue.p(), ue.q(), value_counts, n,
                                            eval_points, rng);
  std::vector<double> est(eval_points.size());
  const double nd = static_cast<double>(n);
  for (size_t j = 0; j < eval_points.size(); ++j) {
    est[j] = (static_cast<double>(cols[j]) / nd - ue.q()) / (ue.p() - ue.q());
  }
  return est;
}

}  // namespace

Result<std::vector<double>> RunUtilityTrial(
    Method method, const std::vector<uint64_t>& value_counts, uint64_t n,
    double eps_c, double delta, const std::vector<uint64_t>& eval_points,
    Rng* rng) {
  const uint64_t d = value_counts.size();
  if (d < 2) return Status::InvalidArgument("domain too small");
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (eps_c <= 0.0) return Status::InvalidArgument("eps must be positive");

  switch (method) {
    case Method::kBase: {
      return std::vector<double>(eval_points.size(),
                                 1.0 / static_cast<double>(d));
    }
    case Method::kOlh: {
      auto oracle = ldp::MakeOlh(eps_c, d);
      return ldp::FastSimulateEstimateAt(*oracle, value_counts, n, 0,
                                         eval_points, rng);
    }
    case Method::kHad: {
      ldp::HadamardResponse oracle(eps_c, d);
      return ldp::FastSimulateEstimateAt(oracle, value_counts, n, 0,
                                         eval_points, rng);
    }
    case Method::kLap: {
      const double scale = 2.0 / (eps_c * static_cast<double>(n));
      std::vector<double> est(eval_points.size());
      for (size_t j = 0; j < eval_points.size(); ++j) {
        double truth = static_cast<double>(value_counts[eval_points[j]]) /
                       static_cast<double>(n);
        est[j] = truth + rng->Laplace(scale);
      }
      return est;
    }
    case Method::kSh: {
      double eps_l = dp::InverseGrrEpsLocal(eps_c, n, d, delta);
      ldp::Grr oracle(eps_l, d);
      return ldp::FastSimulateEstimateAt(oracle, value_counts, n, 0,
                                         eval_points, rng);
    }
    case Method::kSolh: {
      auto oracle = ldp::MakeSolh(eps_c, n, d, delta);
      if (!oracle.ok()) return oracle.status();
      return ldp::FastSimulateEstimateAt(**oracle, value_counts, n, 0,
                                         eval_points, rng);
    }
    case Method::kAue: {
      ldp::Aue aue(eps_c, n, d, delta);
      auto cols = ldp::FastSimulateAueColumns(aue.gamma(), value_counts, n,
                                              eval_points, rng);
      std::vector<double> est(eval_points.size());
      for (size_t j = 0; j < eval_points.size(); ++j) {
        est[j] = static_cast<double>(cols[j]) / static_cast<double>(n) -
                 aue.gamma();
      }
      return est;
    }
    case Method::kRap: {
      return UnaryTrial(value_counts, n, eps_c, delta, eval_points, rng);
    }
    case Method::kRapRemoval: {
      // Removal-LDP semantics are worth a factor 2 in ε (paper §IV-B4).
      return UnaryTrial(value_counts, n, 2.0 * eps_c, delta, eval_points,
                        rng);
    }
  }
  return Status::InvalidArgument("unknown method");
}

Result<double> PredictVariance(Method method, uint64_t n, uint64_t d,
                               double eps_c, double delta) {
  switch (method) {
    case Method::kBase:
      return Status::InvalidArgument("Base has no variance prediction");
    case Method::kOlh: {
      auto oracle = ldp::MakeOlh(eps_c, d);
      return dp::LocalHashVarianceLocal(eps_c, n, oracle->report_domain());
    }
    case Method::kHad:
      return dp::LocalHashVarianceLocal(eps_c, n, 2);
    case Method::kLap:
      return dp::LaplaceVariance(eps_c, n);
    case Method::kSh:
      return dp::ShGrrVarianceCentral(eps_c, n, d, delta);
    case Method::kSolh: {
      uint64_t d_prime = dp::OptimalSolhDPrime(eps_c, n, delta);
      double eps_l = dp::InverseSolhEpsLocal(eps_c, n, d_prime, delta);
      if (eps_l <= eps_c) {
        // No amplification: plain LDP local hashing with d' = 2.
        return dp::LocalHashVarianceLocal(eps_c, n, 2);
      }
      return dp::SolhVarianceCentral(eps_c, n, d_prime, delta);
    }
    case Method::kAue:
      return dp::AueVarianceCentral(eps_c, n, delta);
    case Method::kRap:
      return dp::RapVarianceCentral(eps_c, n, delta);
    case Method::kRapRemoval:
      return dp::RapRemovalVarianceCentral(eps_c, n, delta);
  }
  return Status::InvalidArgument("unknown method");
}

Result<hist::RoundEstimator> MakeRoundEstimator(Method method,
                                                double eps_round,
                                                double delta_round) {
  if (eps_round <= 0.0 || delta_round <= 0.0) {
    return Status::InvalidArgument("round budget must be positive");
  }
  if (method == Method::kBase) {
    return Status::InvalidArgument("Base cannot drive TreeHist");
  }
  Method m = method;
  double eps = eps_round;
  double delta = delta_round;
  return hist::RoundEstimator(
      [m, eps, delta](const std::vector<uint64_t>& candidate_counts,
                      uint64_t n_round, Rng* rng) -> std::vector<double> {
        // The candidate list (+ dummy bucket) is the round's domain.
        const size_t num_candidates = candidate_counts.size() - 1;
        auto est = RunUtilityTrial(m, candidate_counts, n_round, eps, delta,
                                   [&] {
                                     std::vector<uint64_t> all(
                                         candidate_counts.size());
                                     for (size_t i = 0; i < all.size(); ++i) {
                                       all[i] = i;
                                     }
                                     return all;
                                   }(),
                                   rng);
        if (!est.ok()) {
          // Estimators inside TreeHist cannot propagate Status; an
          // all-zero vector keeps the traversal alive and visibly fails
          // precision metrics instead of crashing.
          return std::vector<double>(num_candidates, 0.0);
        }
        est->resize(num_candidates);  // drop the dummy estimate
        return std::move(est).value();
      });
}

}  // namespace core
}  // namespace shuffledp

// Method registry for the paper's evaluation: one entry per competitor in
// §VII (Figures 3/4, Table II), with a uniform interface for utility
// trials so every benchmark and example drives the same code path.

#ifndef SHUFFLEDP_CORE_METHODS_H_
#define SHUFFLEDP_CORE_METHODS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hist/tree_hist.h"
#include "util/rng.h"
#include "util/status.h"

namespace shuffledp {
namespace core {

/// The evaluation's competitors (paper §VII-A).
enum class Method {
  kBase,        ///< outputs 1/d for everything (random-guess baseline)
  kOlh,         ///< LDP local hashing, optimal d' (Wang et al. '17)
  kHad,         ///< LDP Hadamard response (Acharya et al. '19)
  kLap,         ///< central-DP Laplace (lower bound)
  kSh,          ///< GRR + shuffle amplification (Balle et al. '19)
  kSolh,        ///< this paper: shuffler-optimal local hashing
  kAue,         ///< Balcer-Cheu appended unary encoding
  kRap,         ///< unary encoding (RAPPOR) + shuffle (Theorem 2)
  kRapRemoval,  ///< removal-LDP unary [31]; == RAP at 2 ε_c
};

/// All methods in the paper's plotting order.
std::vector<Method> AllMethods();

/// Display name ("SOLH", "RAP_R", ...).
const char* MethodName(Method method);

/// True for methods that use the shuffler (privacy target is central ε_c).
bool IsShuffleMethod(Method method);

/// One utility trial: frequency estimates at `eval_points` for the
/// dataset summarized by `value_counts` (true per-value counts, n users),
/// at privacy target ε_c (interpreted as ε_l for the LDP methods and as
/// the central ε for Lap). Uses the fast aggregate simulation (DESIGN.md
/// §5), so Kosarak-scale trials run in O(|eval_points|).
Result<std::vector<double>> RunUtilityTrial(
    Method method, const std::vector<uint64_t>& value_counts, uint64_t n,
    double eps_c, double delta, const std::vector<uint64_t>& eval_points,
    Rng* rng);

/// Analytic per-value variance prediction for the same configuration
/// (used by EXPERIMENTS.md cross-checks and the ablation benches).
/// Returns an error for kBase (no meaningful prediction).
Result<double> PredictVariance(Method method, uint64_t n, uint64_t d,
                               double eps_c, double delta);

/// Builds a TreeHist round estimator for `method` with the per-round
/// budget (ε_round, δ_round) over a round-local candidate domain.
Result<hist::RoundEstimator> MakeRoundEstimator(Method method,
                                                double eps_round,
                                                double delta_round);

}  // namespace core
}  // namespace shuffledp

#endif  // SHUFFLEDP_CORE_METHODS_H_

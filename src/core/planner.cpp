#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "dp/amplification.h"
#include "util/math.h"

namespace shuffledp {
namespace core {

std::string PeosPlan::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s eps_l=%.4f d'=%llu n_r=%llu | achieved: eps_c=%.4f eps_s=%.4f "
      "eps_l=%.4f | predicted variance=%.3e",
      use_grr ? "GRR" : "SOLH", eps_l,
      static_cast<unsigned long long>(d_prime),
      static_cast<unsigned long long>(n_r), eps_server_achieved,
      eps_users_achieved, eps_local_achieved, predicted_variance);
  return buf;
}

namespace {

// Evaluates one (FO, n_r) candidate; returns false if infeasible.
bool EvaluateCandidate(const PrivacyGoals& goals, uint64_t n, uint64_t d,
                       bool use_grr, uint64_t n_r, PeosPlan* out) {
  // Ordinal fake domain: the group the fake shares live in.
  uint64_t report_domain;
  uint64_t fake_domain;
  if (use_grr) {
    report_domain = d;
    fake_domain = NextPow2(d);
  } else {
    uint64_t d_prime =
        std::max<uint64_t>(2, dp::PeosOptimalDPrime(goals.eps_server, n, n_r,
                                                    goals.delta));
    d_prime = NextPow2(d_prime);
    report_domain = d_prime;
    fake_domain = d_prime;
  }

  // ε₂: privacy against colluding users comes from the fakes alone. The
  // fake blanket per value is Bin(n_r, 1/fake_domain).
  if (n_r == 0) return false;
  double eps_users =
      dp::PeosEpsAgainstUsers(n_r, fake_domain, goals.delta);
  if (eps_users > goals.eps_users) return false;

  // ε_l: the largest local budget meeting ε₁ given the fakes, capped by
  // the ε₃ requirement.
  double eps_l = dp::PeosInverseEpsLocal(goals.eps_server, n, n_r,
                                         report_domain, goals.delta);
  if (std::isinf(eps_l)) eps_l = goals.eps_local;
  eps_l = std::min(eps_l, goals.eps_local);
  if (eps_l <= 0.0) return false;

  // Re-check ε₁ with the capped ε_l (capping only helps).
  double eps_server = dp::PeosEpsAgainstServer(eps_l, n, n_r, report_domain,
                                               goals.delta);
  if (eps_server > goals.eps_server * (1.0 + 1e-9)) return false;

  // Predicted variance (§VI-C): the base-oracle variance over n + n_r
  // reports, scaled by the dilution factor squared.
  double base_var;
  if (use_grr) {
    base_var = dp::GrrVarianceLocal(eps_l, n + n_r, d);
  } else {
    base_var = dp::LocalHashVarianceLocal(eps_l, n + n_r, report_domain);
  }
  double scale = static_cast<double>(n + n_r) / static_cast<double>(n);
  double variance = base_var * scale * scale;

  out->use_grr = use_grr;
  out->eps_l = eps_l;
  out->d_prime = report_domain;
  out->n_r = n_r;
  out->fake_domain = fake_domain;
  out->eps_server_achieved = eps_server;
  out->eps_users_achieved = eps_users;
  out->eps_local_achieved = eps_l;
  out->predicted_variance = variance;
  return true;
}

}  // namespace

Result<PeosPlan> PlanPeos(const PrivacyGoals& goals, uint64_t n, uint64_t d,
                          uint64_t max_n_r) {
  if (n < 2) return Status::InvalidArgument("planner: need n >= 2");
  if (d < 2) return Status::InvalidArgument("planner: need d >= 2");
  if (goals.eps_server <= 0.0 || goals.eps_users <= 0.0 ||
      goals.eps_local <= 0.0 || goals.delta <= 0.0 || goals.delta >= 1.0) {
    return Status::InvalidArgument("planner: privacy goals out of range");
  }
  if (goals.eps_server > goals.eps_local) {
    return Status::InvalidArgument(
        "planner: eps_server > eps_local is vacuous (LDP already stronger)");
  }
  if (max_n_r == 0) max_n_r = 4 * n;

  PeosPlan best;
  bool found = false;

  // Geometric sweep over n_r, refined around the best coarse value.
  std::vector<uint64_t> grid;
  for (double x = 16.0; x <= static_cast<double>(max_n_r); x *= 1.25) {
    grid.push_back(static_cast<uint64_t>(x));
  }
  grid.push_back(max_n_r);

  for (bool use_grr : {false, true}) {
    for (uint64_t n_r : grid) {
      PeosPlan candidate;
      if (!EvaluateCandidate(goals, n, d, use_grr, n_r, &candidate)) {
        continue;
      }
      if (!found ||
          candidate.predicted_variance < best.predicted_variance) {
        best = candidate;
        found = true;
      }
    }
  }

  if (!found) {
    return Status::FailedPrecondition(
        "planner: no PEOS configuration satisfies the privacy goals "
        "(eps_users may require more fake reports than max_n_r)");
  }
  return best;
}

}  // namespace core
}  // namespace shuffledp

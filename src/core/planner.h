// PEOS parameter planner (paper §VI-D "Choosing Parameters").
//
// Given the desired privacy levels against the three adversaries,
//   ε₁ vs Adv   (the server; central DP via shuffling + fakes),
//   ε₂ vs Adv_u (server colluding with all other users; fake blanket only),
//   ε₃ vs Adv_a (server colluding with > ⌊r/2⌋ shufflers; plain LDP),
// plus (δ, n, d), the planner numerically searches the number of fake
// reports n_r and the local budget ε_l (and, for SOLH, the hash range d')
// that satisfy all three constraints with minimal estimator variance, and
// picks GRR vs SOLH by comparing their optima.

#ifndef SHUFFLEDP_CORE_PLANNER_H_
#define SHUFFLEDP_CORE_PLANNER_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace shuffledp {
namespace core {

/// The three-adversary privacy requirement.
struct PrivacyGoals {
  double eps_server = 0.5;   ///< ε₁ vs Adv
  double eps_users = 2.0;    ///< ε₂ vs Adv_u
  double eps_local = 8.0;    ///< ε₃ vs Adv_a (LDP floor)
  double delta = 1e-9;
};

/// A concrete PEOS configuration chosen by the planner.
struct PeosPlan {
  bool use_grr = false;       ///< false => SOLH
  double eps_l = 0.0;         ///< local budget actually used
  uint64_t d_prime = 0;       ///< hash range (power of two; = d for GRR)
  uint64_t n_r = 0;           ///< fake reports
  uint64_t fake_domain = 0;   ///< ordinal fake domain 2^B driving ε₂/ε_c

  double eps_server_achieved = 0.0;
  double eps_users_achieved = 0.0;
  double eps_local_achieved = 0.0;
  double predicted_variance = 0.0;

  std::string ToString() const;
};

/// Searches for the variance-optimal PEOS configuration meeting `goals`.
/// Returns FailedPrecondition when no configuration satisfies all three
/// constraints (e.g., ε₂ so small that n_r would have to exceed max_n_r).
Result<PeosPlan> PlanPeos(const PrivacyGoals& goals, uint64_t n, uint64_t d,
                          uint64_t max_n_r = 0 /* default: 4n */);

}  // namespace core
}  // namespace shuffledp

#endif  // SHUFFLEDP_CORE_PLANNER_H_

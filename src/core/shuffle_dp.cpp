#include "core/shuffle_dp.h"

#include <algorithm>
#include <memory>

#include "ldp/estimator.h"
#include "ldp/fast_sim.h"
#include "ldp/grr.h"
#include "ldp/local_hash.h"

namespace shuffledp {
namespace core {

Result<std::unique_ptr<ShuffleDpCollector>> ShuffleDpCollector::Create(
    const PrivacyGoals& goals, uint64_t n, uint64_t domain_size,
    const Options& options) {
  SHUFFLEDP_ASSIGN_OR_RETURN(PeosPlan plan, PlanPeos(goals, n, domain_size));

  std::unique_ptr<ldp::ScalarFrequencyOracle> oracle;
  if (plan.use_grr) {
    oracle = std::make_unique<ldp::Grr>(plan.eps_l, domain_size);
  } else {
    oracle = std::make_unique<ldp::LocalHash>(plan.eps_l, domain_size,
                                              plan.d_prime, "PEOS-SOLH");
  }
  return std::unique_ptr<ShuffleDpCollector>(new ShuffleDpCollector(
      plan, n, domain_size, options, std::move(oracle)));
}

Result<shuffle::PeosResult> ShuffleDpCollector::Collect(
    const std::vector<uint64_t>& values, crypto::SecureRandom* rng) const {
  shuffle::PeosConfig config;
  config.num_shufflers = options_.num_shufflers;
  config.fake_reports = plan_.n_r;
  config.paillier_bits = options_.paillier_bits;
  config.use_randomizer_pool = options_.use_randomizer_pool;
  config.streaming = options_.streaming;
  // Default to the shared process pool (sized by SHUFFLEDP_THREADS) so the
  // full-crypto path is parallel out of the box; Options::pool overrides.
  config.pool = options_.pool != nullptr ? options_.pool : &GlobalThreadPool();
  return shuffle::RunPeos(*oracle_, values, config, rng);
}

Status ShuffleDpCollector::StreamEncodedBatches(
    const std::vector<uint64_t>& values, Rng* rng, uint64_t skip_batches,
    const std::function<Status(std::vector<uint64_t>&&)>& sink) const {
  const uint64_t n = values.size();
  const size_t batch_size = std::max<size_t>(1, options_.streaming.batch_size);
  const unsigned bits = oracle_->PackedBits();
  uint64_t batch_index = 0;

  // User reports: encoded batch by batch on the producer side while the
  // consumer counts earlier batches. Seeds derive from the batch start
  // index, so the stream is reproducible for any pool size — and any
  // batch suffix can be replayed verbatim after a crash (skip_batches).
  const uint64_t base_seed = rng->NextU64();
  for (uint64_t lo = 0; lo < n; lo += batch_size, ++batch_index) {
    if (batch_index < skip_batches) continue;
    const uint64_t hi = std::min<uint64_t>(n, lo + batch_size);
    Rng batch_rng(base_seed ^ (lo * 0x9E3779B97F4A7C15ULL));
    std::vector<uint64_t> ordinals;
    ordinals.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      ordinals.push_back(
          oracle_->PackOrdinal(oracle_->Encode(values[i], &batch_rng)));
    }
    SHUFFLEDP_RETURN_NOT_OK(sink(std::move(ordinals)));
  }

  // Fake blanket: n_r uniform ordinals, decoded through the same path the
  // PEOS server uses (padding ordinals drop as invalid rows).
  const uint64_t fake_seed = rng->NextU64();
  for (uint64_t lo = 0; lo < plan_.n_r; lo += batch_size, ++batch_index) {
    if (batch_index < skip_batches) continue;
    const uint64_t hi = std::min<uint64_t>(plan_.n_r, lo + batch_size);
    Rng batch_rng(fake_seed ^ (lo * 0x9E3779B97F4A7C15ULL + 1));
    std::vector<uint64_t> ordinals;
    ordinals.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      ordinals.push_back(bits >= 64
                             ? batch_rng.NextU64()
                             : batch_rng.UniformU64(uint64_t{1} << bits));
    }
    SHUFFLEDP_RETURN_NOT_OK(sink(std::move(ordinals)));
  }
  return Status::OK();
}

Result<service::RoundResult> ShuffleDpCollector::CollectStreaming(
    const std::vector<uint64_t>& values, Rng* rng) const {
  const uint64_t n = values.size();
  if (n == 0) return Status::InvalidArgument("CollectStreaming: empty dataset");

  service::StreamingOptions stream_opts = options_.streaming;
  stream_opts.pool =
      options_.pool != nullptr ? options_.pool : &GlobalThreadPool();
  service::StreamingCollector collector(*oracle_, stream_opts);

  const ldp::ScalarFrequencyOracle* oracle_ptr = oracle_.get();
  SHUFFLEDP_RETURN_NOT_OK(StreamEncodedBatches(
      values, rng, /*skip_batches=*/0,
      [&collector, oracle_ptr](std::vector<uint64_t>&& batch) {
        auto ordinals =
            std::make_shared<std::vector<uint64_t>>(std::move(batch));
        service::ReportBatch report_batch;
        report_batch.count = ordinals->size();
        report_batch.decode =
            [ordinals, oracle_ptr](uint64_t i) -> Result<service::DecodedRow> {
          service::DecodedRow row;
          auto rep = oracle_ptr->UnpackOrdinal((*ordinals)[i]);
          if (!rep.ok()) return row;  // padding ordinal: dropped as invalid
          row.report = *rep;
          row.valid = true;
          return row;
        };
        return collector.Offer(std::move(report_batch));
      }));

  return collector.FinishRound(n, plan_.n_r, service::Calibration::kOrdinal);
}

Result<service::RemoteRoundResult> ShuffleDpCollector::CollectRemote(
    const std::vector<uint64_t>& values, Rng* rng,
    service::CollectorClient* client, uint64_t round_id,
    uint64_t skip_batches) const {
  const uint64_t n = values.size();
  if (n == 0) return Status::InvalidArgument("CollectRemote: empty dataset");
  if (client == nullptr) {
    return Status::InvalidArgument("CollectRemote: null client");
  }

  // Same deterministic producer as CollectStreaming, but each batch ships
  // to the endpoint as a kBatch frame instead of an in-process Offer —
  // which is why the loopback e2e can demand bitwise-identical estimates
  // from the two paths.
  const ldp::ScalarFrequencyOracle* oracle_ptr = oracle_.get();
  SHUFFLEDP_RETURN_NOT_OK(StreamEncodedBatches(
      values, rng, skip_batches,
      [client, oracle_ptr, round_id](std::vector<uint64_t>&& batch) {
        return client->SendOrdinals(round_id, *oracle_ptr, batch);
      }));

  return client->FinishRound(round_id, n, plan_.n_r,
                             service::Calibration::kOrdinal);
}

Result<service::RoundResult> ShuffleDpCollector::CollectDistributed(
    const std::vector<uint64_t>& values, Rng* rng,
    service::PartitionRoutingClient* routing,
    service::MergeCoordinator* coordinator, uint64_t round_id) const {
  const uint64_t n = values.size();
  if (n == 0) {
    return Status::InvalidArgument("CollectDistributed: empty dataset");
  }
  if (routing == nullptr || coordinator == nullptr) {
    return Status::InvalidArgument(
        "CollectDistributed: null routing client or coordinator");
  }

  // Same deterministic producer as CollectStreaming/CollectRemote; the
  // routing client fans each batch across the owning endpoints (and
  // honors per-endpoint replay floors for crash recovery). skip_batches
  // stays 0 here: skipping is per endpoint, not per producer batch.
  uint64_t batch_index = 0;
  SHUFFLEDP_RETURN_NOT_OK(StreamEncodedBatches(
      values, rng, /*skip_batches=*/0,
      [routing, round_id, &batch_index](std::vector<uint64_t>&& batch) {
        return routing->SendBatch(round_id, batch_index++, batch);
      }));

  return coordinator->FinishRound(round_id, n, plan_.n_r,
                                  service::Calibration::kOrdinal);
}

Result<std::vector<double>> ShuffleDpCollector::SimulateCollect(
    const std::vector<uint64_t>& value_counts, uint64_t n, Rng* rng) const {
  if (value_counts.size() != domain_size_) {
    return Status::InvalidArgument("value_counts has wrong domain size");
  }
  // Fake reports reconstruct to uniform ordinal values; their support
  // probability is the oracle's ordinal fake rate.
  ldp::SupportProbs probs = oracle_->support_probs();
  probs.q_fake = oracle_->OrdinalFakeSupportProb();
  auto supports = ldp::FastSimulateSupports(probs, value_counts, n,
                                            plan_.n_r, rng);
  return ldp::CalibrateEstimatesOrdinal(*oracle_, supports, n, plan_.n_r);
}

}  // namespace core
}  // namespace shuffledp

#include "core/shuffle_dp.h"

#include <algorithm>
#include <memory>

#include "ldp/estimator.h"
#include "ldp/fast_sim.h"
#include "ldp/grr.h"
#include "ldp/local_hash.h"

namespace shuffledp {
namespace core {

Result<std::unique_ptr<ShuffleDpCollector>> ShuffleDpCollector::Create(
    const PrivacyGoals& goals, uint64_t n, uint64_t domain_size,
    const Options& options) {
  SHUFFLEDP_ASSIGN_OR_RETURN(PeosPlan plan, PlanPeos(goals, n, domain_size));

  std::unique_ptr<ldp::ScalarFrequencyOracle> oracle;
  if (plan.use_grr) {
    oracle = std::make_unique<ldp::Grr>(plan.eps_l, domain_size);
  } else {
    oracle = std::make_unique<ldp::LocalHash>(plan.eps_l, domain_size,
                                              plan.d_prime, "PEOS-SOLH");
  }
  return std::unique_ptr<ShuffleDpCollector>(new ShuffleDpCollector(
      plan, n, domain_size, options, std::move(oracle)));
}

Result<shuffle::PeosResult> ShuffleDpCollector::Collect(
    const std::vector<uint64_t>& values, crypto::SecureRandom* rng) const {
  shuffle::PeosConfig config;
  config.num_shufflers = options_.num_shufflers;
  config.fake_reports = plan_.n_r;
  config.paillier_bits = options_.paillier_bits;
  config.use_randomizer_pool = options_.use_randomizer_pool;
  config.streaming = options_.streaming;
  // Default to the shared process pool (sized by SHUFFLEDP_THREADS) so the
  // full-crypto path is parallel out of the box; Options::pool overrides.
  config.pool = options_.pool != nullptr ? options_.pool : &GlobalThreadPool();
  return shuffle::RunPeos(*oracle_, values, config, rng);
}

Result<service::RoundResult> ShuffleDpCollector::CollectStreaming(
    const std::vector<uint64_t>& values, Rng* rng) const {
  const uint64_t n = values.size();
  if (n == 0) return Status::InvalidArgument("CollectStreaming: empty dataset");

  service::StreamingOptions stream_opts = options_.streaming;
  stream_opts.pool =
      options_.pool != nullptr ? options_.pool : &GlobalThreadPool();
  service::StreamingCollector collector(*oracle_, stream_opts);
  const size_t batch_size = std::max<size_t>(1, stream_opts.batch_size);

  // User reports: encoded batch by batch on the producer side while the
  // collector's consumer counts earlier batches. Seeds derive from the
  // batch start index, so the stream is reproducible for any pool size.
  const uint64_t base_seed = rng->NextU64();
  for (uint64_t lo = 0; lo < n; lo += batch_size) {
    const uint64_t hi = std::min<uint64_t>(n, lo + batch_size);
    Rng batch_rng(base_seed ^ (lo * 0x9E3779B97F4A7C15ULL));
    std::vector<ldp::LdpReport> reports;
    reports.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      reports.push_back(oracle_->Encode(values[i], &batch_rng));
    }
    SHUFFLEDP_RETURN_NOT_OK(
        collector.Offer(service::MakePlainBatch(std::move(reports))));
  }

  // Fake blanket: n_r uniform ordinals, decoded through the same path the
  // PEOS server uses (padding ordinals drop as invalid rows).
  const unsigned bits = oracle_->PackedBits();
  const uint64_t fake_seed = rng->NextU64();
  for (uint64_t lo = 0; lo < plan_.n_r; lo += batch_size) {
    const uint64_t hi = std::min<uint64_t>(plan_.n_r, lo + batch_size);
    Rng batch_rng(fake_seed ^ (lo * 0x9E3779B97F4A7C15ULL + 1));
    auto ordinals = std::make_shared<std::vector<uint64_t>>();
    ordinals->reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      ordinals->push_back(bits >= 64
                              ? batch_rng.NextU64()
                              : batch_rng.UniformU64(uint64_t{1} << bits));
    }
    service::ReportBatch batch;
    batch.count = ordinals->size();
    const ldp::ScalarFrequencyOracle* oracle_ptr = oracle_.get();
    batch.decode = [ordinals,
                    oracle_ptr](uint64_t i) -> Result<service::DecodedRow> {
      service::DecodedRow row;
      auto rep = oracle_ptr->UnpackOrdinal((*ordinals)[i]);
      if (!rep.ok()) return row;  // padding ordinal: dropped as invalid
      row.report = *rep;
      row.valid = true;
      return row;
    };
    SHUFFLEDP_RETURN_NOT_OK(collector.Offer(std::move(batch)));
  }

  return collector.FinishRound(n, plan_.n_r, service::Calibration::kOrdinal);
}

Result<std::vector<double>> ShuffleDpCollector::SimulateCollect(
    const std::vector<uint64_t>& value_counts, uint64_t n, Rng* rng) const {
  if (value_counts.size() != domain_size_) {
    return Status::InvalidArgument("value_counts has wrong domain size");
  }
  // Fake reports reconstruct to uniform ordinal values; their support
  // probability is the oracle's ordinal fake rate.
  ldp::SupportProbs probs = oracle_->support_probs();
  probs.q_fake = oracle_->OrdinalFakeSupportProb();
  auto supports = ldp::FastSimulateSupports(probs, value_counts, n,
                                            plan_.n_r, rng);
  return ldp::CalibrateEstimatesOrdinal(*oracle_, supports, n, plan_.n_r);
}

}  // namespace core
}  // namespace shuffledp

#include "core/shuffle_dp.h"

#include "ldp/estimator.h"
#include "ldp/fast_sim.h"
#include "ldp/grr.h"
#include "ldp/local_hash.h"

namespace shuffledp {
namespace core {

Result<std::unique_ptr<ShuffleDpCollector>> ShuffleDpCollector::Create(
    const PrivacyGoals& goals, uint64_t n, uint64_t domain_size,
    const Options& options) {
  SHUFFLEDP_ASSIGN_OR_RETURN(PeosPlan plan, PlanPeos(goals, n, domain_size));

  std::unique_ptr<ldp::ScalarFrequencyOracle> oracle;
  if (plan.use_grr) {
    oracle = std::make_unique<ldp::Grr>(plan.eps_l, domain_size);
  } else {
    oracle = std::make_unique<ldp::LocalHash>(plan.eps_l, domain_size,
                                              plan.d_prime, "PEOS-SOLH");
  }
  return std::unique_ptr<ShuffleDpCollector>(new ShuffleDpCollector(
      plan, n, domain_size, options, std::move(oracle)));
}

Result<shuffle::PeosResult> ShuffleDpCollector::Collect(
    const std::vector<uint64_t>& values, crypto::SecureRandom* rng) const {
  shuffle::PeosConfig config;
  config.num_shufflers = options_.num_shufflers;
  config.fake_reports = plan_.n_r;
  config.paillier_bits = options_.paillier_bits;
  config.use_randomizer_pool = options_.use_randomizer_pool;
  // Default to the shared process pool (sized by SHUFFLEDP_THREADS) so the
  // full-crypto path is parallel out of the box; Options::pool overrides.
  config.pool = options_.pool != nullptr ? options_.pool : &GlobalThreadPool();
  return shuffle::RunPeos(*oracle_, values, config, rng);
}

Result<std::vector<double>> ShuffleDpCollector::SimulateCollect(
    const std::vector<uint64_t>& value_counts, uint64_t n, Rng* rng) const {
  if (value_counts.size() != domain_size_) {
    return Status::InvalidArgument("value_counts has wrong domain size");
  }
  // Fake reports reconstruct to uniform ordinal values; their support
  // probability is the oracle's ordinal fake rate.
  ldp::SupportProbs probs = oracle_->support_probs();
  probs.q_fake = oracle_->OrdinalFakeSupportProb();
  auto supports = ldp::FastSimulateSupports(probs, value_counts, n,
                                            plan_.n_r, rng);
  return ldp::CalibrateEstimatesOrdinal(*oracle_, supports, n, plan_.n_r);
}

}  // namespace core
}  // namespace shuffledp

// Public facade: one object that plans, runs, and estimates a PEOS
// histogram collection — the API a downstream user adopts.
//
// Quickstart:
//
//   core::PrivacyGoals goals;                 // ε₁=0.5, ε₂=2, ε₃=8, δ=1e-9
//   auto collector = core::ShuffleDpCollector::Create(
//       goals, /*n=*/users.size(), /*domain=*/915, /*shufflers=*/3);
//   auto result = collector->Collect(users, &secure_rng);   // full crypto
//   // or: collector->SimulateCollect(counts, n, &rng);     // fast stats
//
// Collect() executes the real protocol (secret sharing, Paillier, EOS);
// SimulateCollect() draws from the identical output distribution in O(d)
// (DESIGN.md §5) for utility studies.

#ifndef SHUFFLEDP_CORE_SHUFFLE_DP_H_
#define SHUFFLEDP_CORE_SHUFFLE_DP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/planner.h"
#include "crypto/secure_random.h"
#include "ldp/frequency_oracle.h"
#include "service/coordinator.h"
#include "service/streaming_collector.h"
#include "service/transport.h"
#include "shuffle/peos.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace core {

/// High-level PEOS histogram collector.
class ShuffleDpCollector {
 public:
  /// Protocol knobs beyond the privacy plan.
  struct Options {
    uint32_t num_shufflers = 3;
    size_t paillier_bits = 1024;
    bool use_randomizer_pool = true;
    ThreadPool* pool = nullptr;
    /// Server-side streaming ingestion knobs (batch size, queue
    /// capacity, shard count); the pool field is ignored in favor of
    /// `pool` above.
    service::StreamingOptions streaming;
  };

  /// Plans parameters for (goals, n, d) and builds the collector.
  static Result<std::unique_ptr<ShuffleDpCollector>> Create(
      const PrivacyGoals& goals, uint64_t n, uint64_t domain_size,
      const Options& options);
  static Result<std::unique_ptr<ShuffleDpCollector>> Create(
      const PrivacyGoals& goals, uint64_t n, uint64_t domain_size) {
    return Create(goals, n, domain_size, Options{});
  }

  /// The chosen plan (for logging / EXPERIMENTS.md).
  const PeosPlan& plan() const { return plan_; }

  /// The configured frequency oracle.
  const ldp::ScalarFrequencyOracle& oracle() const { return *oracle_; }

  /// Runs the full cryptographic protocol over the users' true values.
  Result<shuffle::PeosResult> Collect(const std::vector<uint64_t>& values,
                                      crypto::SecureRandom* rng) const;

  /// Statistically-exact fast path: returns frequency estimates drawn
  /// from the same distribution as Collect()'s, given the true per-value
  /// counts.
  Result<std::vector<double>> SimulateCollect(
      const std::vector<uint64_t>& value_counts, uint64_t n,
      Rng* rng) const;

  /// Crypto-free streaming collection: encodes the users' reports in
  /// deterministic fixed-size chunks, streams them — plus the plan's n_r
  /// uniform ordinal fake reports — through a service::StreamingCollector
  /// in batches, and calibrates exactly like Collect's server side.
  /// Distribution-identical to SimulateCollect while exercising the real
  /// ingestion pipeline (queue, backpressure, domain-sharded counting),
  /// so utility studies run at n = 10^6+ without the crypto cost.
  Result<service::RoundResult> CollectStreaming(
      const std::vector<uint64_t>& values, Rng* rng) const;

  /// Networked variant of CollectStreaming: the same deterministic
  /// producer encodes the users' reports plus the plan's fake blanket,
  /// but every batch ships to a remote collection endpoint
  /// (service::CollectionServer) through `client` as a kBatch frame for
  /// `round_id`, and the round closes with a kFinish frame. Because the
  /// endpoint feeds the identical StreamingCollector pipeline, estimates
  /// are bitwise identical to CollectStreaming under the same `rng` seed.
  /// `skip_batches` resumes a crash-recovered round: batches below the
  /// endpoint's consumed-batch watermark are not resent.
  Result<service::RemoteRoundResult> CollectRemote(
      const std::vector<uint64_t>& values, Rng* rng,
      service::CollectorClient* client, uint64_t round_id,
      uint64_t skip_batches = 0) const;

  /// Partition-aware variant of CollectRemote: the same deterministic
  /// producer, but every batch fans out across a fleet of partitioned
  /// endpoints through `routing` (one kBatch frame per endpoint per
  /// producer batch — the slice of ordinals it owns), and the round
  /// closes through `coordinator`, which gathers raw per-partition
  /// supports, merges them in partition order, and calibrates the merged
  /// vector. Because integer supports compose losslessly and the
  /// calibration runs once over the merged population, the result is
  /// bitwise identical to single-node CollectStreaming under the same
  /// `rng` seed — for any partition count and either partition mode.
  /// Per-endpoint replay floors set on `routing` (SetSkipBatches) make
  /// single-endpoint crash recovery exact without re-sending batches the
  /// surviving endpoints already consumed.
  Result<service::RoundResult> CollectDistributed(
      const std::vector<uint64_t>& values, Rng* rng,
      service::PartitionRoutingClient* routing,
      service::MergeCoordinator* coordinator, uint64_t round_id) const;

 private:
  /// Shared producer of CollectStreaming/CollectRemote: slices users +
  /// fake blanket into batch_size batches of packed ordinals (seeded per
  /// batch start index, so any suffix replays bit-identically) and hands
  /// each to `sink`. The first `skip_batches` batches are skipped without
  /// being encoded — per-batch seeding makes later batches independent of
  /// them.
  Status StreamEncodedBatches(
      const std::vector<uint64_t>& values, Rng* rng, uint64_t skip_batches,
      const std::function<Status(std::vector<uint64_t>&&)>& sink) const;
  ShuffleDpCollector(PeosPlan plan, uint64_t n, uint64_t domain_size,
                     Options options,
                     std::unique_ptr<ldp::ScalarFrequencyOracle> oracle)
      : plan_(plan),
        n_(n),
        domain_size_(domain_size),
        options_(options),
        oracle_(std::move(oracle)) {}

  PeosPlan plan_;
  uint64_t n_;
  uint64_t domain_size_;
  Options options_;
  std::unique_ptr<ldp::ScalarFrequencyOracle> oracle_;
};

}  // namespace core
}  // namespace shuffledp

#endif  // SHUFFLEDP_CORE_SHUFFLE_DP_H_

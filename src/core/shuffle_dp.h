// Public facade: one object that plans, runs, and estimates a PEOS
// histogram collection — the API a downstream user adopts.
//
// Quickstart:
//
//   core::PrivacyGoals goals;                 // ε₁=0.5, ε₂=2, ε₃=8, δ=1e-9
//   auto collector = core::ShuffleDpCollector::Create(
//       goals, /*n=*/users.size(), /*domain=*/915, /*shufflers=*/3);
//   auto result = collector->Collect(users, &secure_rng);   // full crypto
//   // or: collector->SimulateCollect(counts, n, &rng);     // fast stats
//
// Collect() executes the real protocol (secret sharing, Paillier, EOS);
// SimulateCollect() draws from the identical output distribution in O(d)
// (DESIGN.md §5) for utility studies.

#ifndef SHUFFLEDP_CORE_SHUFFLE_DP_H_
#define SHUFFLEDP_CORE_SHUFFLE_DP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/planner.h"
#include "crypto/secure_random.h"
#include "ldp/frequency_oracle.h"
#include "service/streaming_collector.h"
#include "shuffle/peos.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace core {

/// High-level PEOS histogram collector.
class ShuffleDpCollector {
 public:
  /// Protocol knobs beyond the privacy plan.
  struct Options {
    uint32_t num_shufflers = 3;
    size_t paillier_bits = 1024;
    bool use_randomizer_pool = true;
    ThreadPool* pool = nullptr;
    /// Server-side streaming ingestion knobs (batch size, queue
    /// capacity, shard count); the pool field is ignored in favor of
    /// `pool` above.
    service::StreamingOptions streaming;
  };

  /// Plans parameters for (goals, n, d) and builds the collector.
  static Result<std::unique_ptr<ShuffleDpCollector>> Create(
      const PrivacyGoals& goals, uint64_t n, uint64_t domain_size,
      const Options& options);
  static Result<std::unique_ptr<ShuffleDpCollector>> Create(
      const PrivacyGoals& goals, uint64_t n, uint64_t domain_size) {
    return Create(goals, n, domain_size, Options{});
  }

  /// The chosen plan (for logging / EXPERIMENTS.md).
  const PeosPlan& plan() const { return plan_; }

  /// The configured frequency oracle.
  const ldp::ScalarFrequencyOracle& oracle() const { return *oracle_; }

  /// Runs the full cryptographic protocol over the users' true values.
  Result<shuffle::PeosResult> Collect(const std::vector<uint64_t>& values,
                                      crypto::SecureRandom* rng) const;

  /// Statistically-exact fast path: returns frequency estimates drawn
  /// from the same distribution as Collect()'s, given the true per-value
  /// counts.
  Result<std::vector<double>> SimulateCollect(
      const std::vector<uint64_t>& value_counts, uint64_t n,
      Rng* rng) const;

  /// Crypto-free streaming collection: encodes the users' reports in
  /// deterministic fixed-size chunks, streams them — plus the plan's n_r
  /// uniform ordinal fake reports — through a service::StreamingCollector
  /// in batches, and calibrates exactly like Collect's server side.
  /// Distribution-identical to SimulateCollect while exercising the real
  /// ingestion pipeline (queue, backpressure, domain-sharded counting),
  /// so utility studies run at n = 10^6+ without the crypto cost.
  Result<service::RoundResult> CollectStreaming(
      const std::vector<uint64_t>& values, Rng* rng) const;

 private:
  ShuffleDpCollector(PeosPlan plan, uint64_t n, uint64_t domain_size,
                     Options options,
                     std::unique_ptr<ldp::ScalarFrequencyOracle> oracle)
      : plan_(plan),
        n_(n),
        domain_size_(domain_size),
        options_(options),
        oracle_(std::move(oracle)) {}

  PeosPlan plan_;
  uint64_t n_;
  uint64_t domain_size_;
  Options options_;
  std::unique_ptr<ldp::ScalarFrequencyOracle> oracle_;
};

}  // namespace core
}  // namespace shuffledp

#endif  // SHUFFLEDP_CORE_SHUFFLE_DP_H_

#include "crypto/aes.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define SHUFFLEDP_AESNI_COMPILED 1
#include <immintrin.h>
#endif

namespace shuffledp {
namespace crypto {

namespace {

constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

inline uint8_t Xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

inline uint8_t GfMul(uint8_t x, uint8_t y) {
  uint8_t r = 0;
  while (y) {
    if (y & 1) r ^= x;
    x = Xtime(x);
    y >>= 1;
  }
  return r;
}

// ---------------------------------------------------------------------------
// AES-NI backend. Key expansion is shared with the portable path (it runs
// once per key and is cheap); the per-block transforms use the hardware
// instructions. Compiled with a function-level target attribute so the
// translation unit itself needs no -maes flag, and only executed after a
// runtime CPUID check.
// ---------------------------------------------------------------------------

#ifdef SHUFFLEDP_AESNI_COMPILED

__attribute__((target("aes,sse2"))) void AesNiInvertRoundKeys(
    const uint8_t enc[176], uint8_t dec[176]) {
  // Equivalent Inverse Cipher (FIPS 197 §5.3.5): reversed round keys with
  // InvMixColumns applied to the middle nine.
  __m128i k;
  k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(enc + 160));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dec), k);
  for (int i = 1; i <= 9; ++i) {
    k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(enc + 16 * (10 - i)));
    k = _mm_aesimc_si128(k);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dec + 16 * i), k);
  }
  k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(enc));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dec + 160), k);
}

__attribute__((target("aes,sse2"))) void AesNiEncryptBlocks(
    const uint8_t rk[176], const uint8_t* in, uint8_t* out, size_t nblocks) {
  __m128i k[11];
  for (int i = 0; i < 11; ++i) {
    k[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * i));
  }
  // Four blocks in flight to cover the aesenc latency.
  while (nblocks >= 4) {
    __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
    __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16));
    __m128i b2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 32));
    __m128i b3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 48));
    b0 = _mm_xor_si128(b0, k[0]);
    b1 = _mm_xor_si128(b1, k[0]);
    b2 = _mm_xor_si128(b2, k[0]);
    b3 = _mm_xor_si128(b3, k[0]);
    for (int r = 1; r <= 9; ++r) {
      b0 = _mm_aesenc_si128(b0, k[r]);
      b1 = _mm_aesenc_si128(b1, k[r]);
      b2 = _mm_aesenc_si128(b2, k[r]);
      b3 = _mm_aesenc_si128(b3, k[r]);
    }
    b0 = _mm_aesenclast_si128(b0, k[10]);
    b1 = _mm_aesenclast_si128(b1, k[10]);
    b2 = _mm_aesenclast_si128(b2, k[10]);
    b3 = _mm_aesenclast_si128(b3, k[10]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16), b1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32), b2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 48), b3);
    in += 64;
    out += 64;
    nblocks -= 4;
  }
  while (nblocks > 0) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
    b = _mm_xor_si128(b, k[0]);
    for (int r = 1; r <= 9; ++r) b = _mm_aesenc_si128(b, k[r]);
    b = _mm_aesenclast_si128(b, k[10]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
    in += 16;
    out += 16;
    --nblocks;
  }
}

__attribute__((target("aes,sse2"))) void AesNiDecryptBlock(
    const uint8_t dk[176], const uint8_t in[16], uint8_t out[16]) {
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  b = _mm_xor_si128(b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dk)));
  for (int r = 1; r <= 9; ++r) {
    b = _mm_aesdec_si128(
        b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dk + 16 * r)));
  }
  b = _mm_aesdeclast_si128(
      b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dk + 160)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
}

bool CpuHasAesNi() { return __builtin_cpu_supports("aes"); }

#else

bool CpuHasAesNi() { return false; }

#endif  // SHUFFLEDP_AESNI_COMPILED

AesBackend& BackendOverride() {
  static AesBackend backend = BestAesBackend();
  return backend;
}

}  // namespace

AesBackend BestAesBackend() {
  return CpuHasAesNi() ? AesBackend::kAesNi : AesBackend::kPortable;
}

AesBackend ActiveAesBackend() { return BackendOverride(); }

void SetAesBackend(AesBackend backend) {
  if (backend == AesBackend::kAesNi && !CpuHasAesNi()) {
    backend = AesBackend::kPortable;
  }
  BackendOverride() = backend;
}

const char* AesBackendName(AesBackend backend) {
  return backend == AesBackend::kAesNi ? "aesni" : "portable";
}

Aes128::Aes128(const std::array<uint8_t, kKeySize>& key)
    : backend_(ActiveAesBackend()) {
  std::memcpy(round_keys_, key.data(), 16);
  for (int i = 4; i < 44; ++i) {
    uint8_t temp[4];
    std::memcpy(temp, round_keys_ + 4 * (i - 1), 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      uint8_t t = temp[0];
      temp[0] = static_cast<uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t];
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[4 * i + j] =
          static_cast<uint8_t>(round_keys_[4 * (i - 4) + j] ^ temp[j]);
    }
  }
#ifdef SHUFFLEDP_AESNI_COMPILED
  if (backend_ == AesBackend::kAesNi) {
    AesNiInvertRoundKeys(round_keys_, dec_round_keys_);
  }
#endif
}

void Aes128::EncryptBlock(const uint8_t in[16], uint8_t out[16]) const {
#ifdef SHUFFLEDP_AESNI_COMPILED
  if (backend_ == AesBackend::kAesNi) {
    AesNiEncryptBlocks(round_keys_, in, out, 1);
    return;
  }
#endif
  uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ round_keys_[i];

  for (int round = 1; round <= 10; ++round) {
    // SubBytes.
    for (auto& b : s) b = kSbox[b];
    // ShiftRows (state is column-major: s[4*c + r]).
    uint8_t t;
    t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    t = s[2]; s[2] = s[10]; s[10] = t; t = s[6]; s[6] = s[14]; s[14] = t;
    t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
    // MixColumns (skipped in the final round).
    if (round != 10) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = s + 4 * c;
        uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<uint8_t>(Xtime(a0) ^ Xtime(a1) ^ a1 ^ a2 ^ a3);
        col[1] = static_cast<uint8_t>(a0 ^ Xtime(a1) ^ Xtime(a2) ^ a2 ^ a3);
        col[2] = static_cast<uint8_t>(a0 ^ a1 ^ Xtime(a2) ^ Xtime(a3) ^ a3);
        col[3] = static_cast<uint8_t>(Xtime(a0) ^ a0 ^ a1 ^ a2 ^ Xtime(a3));
      }
    }
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[16 * round + i];
  }
  std::memcpy(out, s, 16);
}

void Aes128::EncryptBlocks(const uint8_t* in, uint8_t* out,
                           size_t nblocks) const {
#ifdef SHUFFLEDP_AESNI_COMPILED
  if (backend_ == AesBackend::kAesNi) {
    AesNiEncryptBlocks(round_keys_, in, out, nblocks);
    return;
  }
#endif
  for (size_t i = 0; i < nblocks; ++i) {
    EncryptBlock(in + 16 * i, out + 16 * i);
  }
}

void Aes128::DecryptBlock(const uint8_t in[16], uint8_t out[16]) const {
#ifdef SHUFFLEDP_AESNI_COMPILED
  if (backend_ == AesBackend::kAesNi) {
    AesNiDecryptBlock(dec_round_keys_, in, out);
    return;
  }
#endif
  uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ round_keys_[160 + i];

  for (int round = 9; round >= 0; --round) {
    // InvShiftRows.
    uint8_t t;
    t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
    t = s[2]; s[2] = s[10]; s[10] = t; t = s[6]; s[6] = s[14]; s[14] = t;
    t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
    // InvSubBytes.
    for (auto& b : s) b = kInvSbox[b];
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[16 * round + i];
    // InvMixColumns (skipped before the first round key).
    if (round != 0) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = s + 4 * c;
        uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<uint8_t>(GfMul(a0, 0x0e) ^ GfMul(a1, 0x0b) ^
                                      GfMul(a2, 0x0d) ^ GfMul(a3, 0x09));
        col[1] = static_cast<uint8_t>(GfMul(a0, 0x09) ^ GfMul(a1, 0x0e) ^
                                      GfMul(a2, 0x0b) ^ GfMul(a3, 0x0d));
        col[2] = static_cast<uint8_t>(GfMul(a0, 0x0d) ^ GfMul(a1, 0x09) ^
                                      GfMul(a2, 0x0e) ^ GfMul(a3, 0x0b));
        col[3] = static_cast<uint8_t>(GfMul(a0, 0x0b) ^ GfMul(a1, 0x0d) ^
                                      GfMul(a2, 0x09) ^ GfMul(a3, 0x0e));
      }
    }
  }
  std::memcpy(out, s, 16);
}

Bytes AesCbcEncrypt(const std::array<uint8_t, 16>& key,
                    const std::array<uint8_t, 16>& iv,
                    const Bytes& plaintext) {
  Aes128 aes(key);
  // PKCS#7 pad to a multiple of 16.
  size_t pad = 16 - plaintext.size() % 16;
  Bytes padded = plaintext;
  padded.insert(padded.end(), pad, static_cast<uint8_t>(pad));

  Bytes out;
  out.reserve(16 + padded.size());
  out.insert(out.end(), iv.begin(), iv.end());

  uint8_t chain[16];
  std::memcpy(chain, iv.data(), 16);
  uint8_t block[16];
  for (size_t off = 0; off < padded.size(); off += 16) {
    for (int i = 0; i < 16; ++i) block[i] = padded[off + i] ^ chain[i];
    aes.EncryptBlock(block, chain);
    out.insert(out.end(), chain, chain + 16);
  }
  return out;
}

Result<Bytes> AesCbcDecrypt(const std::array<uint8_t, 16>& key,
                            const Bytes& iv_and_ciphertext) {
  if (iv_and_ciphertext.size() < 32 || iv_and_ciphertext.size() % 16 != 0) {
    return Status::CryptoError("CBC ciphertext malformed");
  }
  Aes128 aes(key);
  const uint8_t* chain = iv_and_ciphertext.data();
  Bytes out;
  out.resize(iv_and_ciphertext.size() - 16);
  for (size_t off = 16; off < iv_and_ciphertext.size(); off += 16) {
    uint8_t block[16];
    aes.DecryptBlock(iv_and_ciphertext.data() + off, block);
    for (int i = 0; i < 16; ++i) out[off - 16 + i] = block[i] ^ chain[i];
    chain = iv_and_ciphertext.data() + off;
  }
  uint8_t pad = out.back();
  if (pad == 0 || pad > 16 || pad > out.size()) {
    return Status::CryptoError("CBC bad padding");
  }
  for (size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) return Status::CryptoError("CBC bad padding");
  }
  out.resize(out.size() - pad);
  return out;
}

Bytes AesCtrCrypt(const std::array<uint8_t, 16>& key,
                  const std::array<uint8_t, 12>& nonce, const Bytes& data,
                  uint32_t initial_counter) {
  Aes128 aes(key);
  Bytes out(data.size());
  uint32_t counter = initial_counter;
  // Generate keystream in batches so the AES-NI backend can pipeline.
  constexpr size_t kBatchBlocks = 16;
  uint8_t counters[16 * kBatchBlocks];
  uint8_t keystream[16 * kBatchBlocks];
  for (size_t off = 0; off < data.size(); off += 16 * kBatchBlocks) {
    size_t bytes = std::min<size_t>(16 * kBatchBlocks, data.size() - off);
    size_t blocks = (bytes + 15) / 16;
    for (size_t b = 0; b < blocks; ++b) {
      std::memcpy(counters + 16 * b, nonce.data(), 12);
      counters[16 * b + 12] = static_cast<uint8_t>(counter >> 24);
      counters[16 * b + 13] = static_cast<uint8_t>(counter >> 16);
      counters[16 * b + 14] = static_cast<uint8_t>(counter >> 8);
      counters[16 * b + 15] = static_cast<uint8_t>(counter);
      ++counter;
    }
    aes.EncryptBlocks(counters, keystream, blocks);
    for (size_t i = 0; i < bytes; ++i) {
      out[off + i] = data[off + i] ^ keystream[i];
    }
  }
  return out;
}

}  // namespace crypto
}  // namespace shuffledp

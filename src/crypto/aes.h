// AES-128 (FIPS 197) with CBC (PKCS#7) and CTR modes.
//
// Used for the symmetric layer of the sequential-shuffle (SS) onion
// encryption: the paper encrypts each report with a fresh AES-128-CBC key
// and wraps that key with elliptic-curve ElGamal (our ECIES; see ecies.h).
//
// Two block-cipher backends sit behind one interface: hardware AES-NI
// (selected at runtime via CPUID) and the original table-based portable
// code. ECIES and every other caller pick the backend up transparently
// through Aes128; tests can pin the portable backend with SetAesBackend
// so both implementations run on any host.

#ifndef SHUFFLEDP_CRYPTO_AES_H_
#define SHUFFLEDP_CRYPTO_AES_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

/// Block-cipher implementation choices.
enum class AesBackend {
  kPortable,  ///< table-based software AES (always available)
  kAesNi,     ///< x86 AES-NI instructions
};

/// The fastest backend supported by this CPU.
AesBackend BestAesBackend();

/// Backend that newly constructed Aes128 instances will use.
AesBackend ActiveAesBackend();

/// Overrides the backend for subsequently constructed instances. Requests
/// for kAesNi silently degrade to kPortable when the CPU lacks support,
/// so forced-fallback tests are safe everywhere. Not thread-safe against
/// concurrent Aes128 construction; intended for tests and benchmarks.
void SetAesBackend(AesBackend backend);

/// Human-readable backend name ("aesni" / "portable").
const char* AesBackendName(AesBackend backend);

/// AES-128 block cipher with an expanded key schedule.
class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;

  /// Expands the 16-byte `key` using the active backend.
  explicit Aes128(const std::array<uint8_t, kKeySize>& key);

  /// Encrypts one 16-byte block in place (out may alias in).
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  /// Decrypts one 16-byte block.
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  /// Encrypts `nblocks` independent 16-byte blocks (ECB layout). The
  /// AES-NI backend pipelines four blocks in flight; CTR mode is built on
  /// this. `out` may alias `in`.
  void EncryptBlocks(const uint8_t* in, uint8_t* out, size_t nblocks) const;

  /// Backend this instance was constructed with.
  AesBackend backend() const { return backend_; }

 private:
  // 11 round keys of 16 bytes.
  uint8_t round_keys_[176];
  // Equivalent Inverse Cipher round keys (AES-NI decryption only).
  uint8_t dec_round_keys_[176];
  AesBackend backend_;
};

/// CBC mode with PKCS#7 padding. Output is IV || ciphertext.
Bytes AesCbcEncrypt(const std::array<uint8_t, 16>& key,
                    const std::array<uint8_t, 16>& iv, const Bytes& plaintext);

/// Inverse of AesCbcEncrypt; input must be IV || ciphertext. Returns
/// CryptoError on bad padding or truncated input.
Result<Bytes> AesCbcDecrypt(const std::array<uint8_t, 16>& key,
                            const Bytes& iv_and_ciphertext);

/// CTR mode keystream XOR (encryption == decryption). `nonce` forms the
/// high 12 bytes of the counter block; the low 4 bytes hold the big-endian
/// block counter starting at `initial_counter`.
Bytes AesCtrCrypt(const std::array<uint8_t, 16>& key,
                  const std::array<uint8_t, 12>& nonce, const Bytes& data,
                  uint32_t initial_counter = 0);

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_AES_H_

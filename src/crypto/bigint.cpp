#include "crypto/bigint.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <memory>

#include "crypto/montgomery.h"
#include "crypto/secure_random.h"

namespace shuffledp {
namespace crypto {

namespace {

using u128 = unsigned __int128;

int CountLeadingZeros64(uint64_t x) {
  return x == 0 ? 64 : __builtin_clzll(x);
}

// Per-thread LRU cache of Montgomery contexts, so repeated ModExp/ModMul
// against the same modulus (Paillier N^2 / p^2 / q^2, Miller-Rabin rounds
// on one candidate, ...) pay the R^2-mod-m precomputation once instead of
// per call. Returns nullptr only if MontgomeryCtx::Create rejects the
// modulus (which the odd-and-multi-limb dispatch guards already exclude).
const MontgomeryCtx* CachedMontgomeryCtx(const BigInt& m) {
  constexpr size_t kCacheCapacity = 8;
  thread_local std::vector<std::unique_ptr<MontgomeryCtx>> cache;
  for (size_t i = 0; i < cache.size(); ++i) {
    if (cache[i]->modulus() == m) {
      if (i != 0) std::rotate(cache.begin(), cache.begin() + i,
                              cache.begin() + i + 1);
      return cache.front().get();
    }
  }
  auto ctx = MontgomeryCtx::Create(m);
  if (!ctx.ok()) return nullptr;
  cache.insert(cache.begin(), std::make_unique<MontgomeryCtx>(
                                  std::move(ctx).value()));
  if (cache.size() > kCacheCapacity) cache.pop_back();
  return cache.front().get();
}

// A Create failure for a modulus the dispatch believed Montgomery-capable
// is a bug, not a tolerable slow path: surface it (once) instead of
// silently degrading to the division-based reference implementation.
void WarnMontgomeryUnavailable(const BigInt& m) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "shuffledp: MontgomeryCtx::Create failed for odd modulus "
                 "0x%s; falling back to the generic division path\n",
                 m.ToHexString().c_str());
  }
}

}  // namespace

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Result<BigInt> BigInt::FromHexString(const std::string& hex) {
  BigInt out;
  if (hex.empty()) return out;
  out.limbs_.assign((hex.size() + 15) / 16, 0);
  for (size_t i = 0; i < hex.size(); ++i) {
    char c = hex[hex.size() - 1 - i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return Status::InvalidArgument("invalid hex digit in BigInt literal");
    }
    out.limbs_[i / 16] |= nibble << (4 * (i % 16));
  }
  out.Normalize();
  return out;
}

Result<BigInt> BigInt::FromDecimalString(const std::string& dec) {
  if (dec.empty()) return Status::InvalidArgument("empty decimal literal");
  BigInt out;
  const BigInt ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid decimal digit");
    }
    out = out.Mul(ten).Add(BigInt(static_cast<uint64_t>(c - '0')));
  }
  return out;
}

BigInt BigInt::FromBytesBigEndian(const Bytes& bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // bytes[0] is most significant.
    size_t bit_index = (bytes.size() - 1 - i) * 8;
    out.limbs_[bit_index / 64] |= static_cast<uint64_t>(bytes[i])
                                  << (bit_index % 64);
  }
  out.Normalize();
  return out;
}

std::string BigInt::ToHexString() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(limbs_.size() * 16);
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      out.push_back(kDigits[(limbs_[i] >> (4 * nib)) & 0xF]);
    }
  }
  size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::string BigInt::ToDecimalString() const {
  if (IsZero()) return "0";
  BigInt v = *this;
  const BigInt chunk(10000000000000000000ULL);  // 10^19
  std::vector<uint64_t> groups;
  while (!v.IsZero()) {
    BigInt q, r;
    Status st = v.DivMod(chunk, &q, &r);
    assert(st.ok());
    (void)st;
    groups.push_back(r.ToU64Saturating());
    v = q;
  }
  std::string out = std::to_string(groups.back());
  for (size_t i = groups.size() - 1; i-- > 0;) {
    std::string part = std::to_string(groups[i]);
    out += std::string(19 - part.size(), '0') + part;
  }
  return out;
}

Bytes BigInt::ToBytesBigEndian(size_t min_len) const {
  size_t nbytes = (BitLength() + 7) / 8;
  size_t len = std::max(nbytes, min_len);
  if (len == 0) len = 1;
  Bytes out(len, 0);
  for (size_t i = 0; i < nbytes; ++i) {
    size_t bit_index = i * 8;
    out[len - 1 - i] =
        static_cast<uint8_t>(limbs_[bit_index / 64] >> (bit_index % 64));
  }
  return out;
}

uint64_t BigInt::ToU64Saturating() const {
  if (IsZero()) return 0;
  if (limbs_.size() > 1) return UINT64_MAX;
  return limbs_[0];
}

size_t BigInt::BitLength() const {
  if (IsZero()) return 0;
  return limbs_.size() * 64 -
         static_cast<size_t>(CountLeadingZeros64(limbs_.back()));
}

bool BigInt::GetBit(size_t i) const {
  size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigInt::Compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& other) const {
  const BigInt& a = limbs_.size() >= other.limbs_.size() ? *this : other;
  const BigInt& b = limbs_.size() >= other.limbs_.size() ? other : *this;
  BigInt out;
  out.limbs_.resize(a.limbs_.size() + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    u128 sum = static_cast<u128>(a.limbs_[i]) + carry;
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  out.limbs_[a.limbs_.size()] = carry;
  out.Normalize();
  return out;
}

BigInt BigInt::Sub(const BigInt& other) const {
  assert(*this >= other && "BigInt::Sub underflow");
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t rhs = i < other.limbs_.size() ? other.limbs_[i] : 0;
    u128 lhs = static_cast<u128>(limbs_[i]);
    u128 need = static_cast<u128>(rhs) + borrow;
    if (lhs >= need) {
      out.limbs_[i] = static_cast<uint64_t>(lhs - need);
      borrow = 0;
    } else {
      out.limbs_[i] =
          static_cast<uint64_t>((static_cast<u128>(1) << 64) + lhs - need);
      borrow = 1;
    }
  }
  assert(borrow == 0);
  out.Normalize();
  return out;
}

BigInt BigInt::MulSchoolbook(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(ai) * b.limbs_[j] + out.limbs_[i + j] +
                 carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.Normalize();
  return out;
}

BigInt BigInt::LimbRange(size_t from, size_t to) const {
  BigInt out;
  from = std::min(from, limbs_.size());
  to = std::min(to, limbs_.size());
  if (from < to) {
    out.limbs_.assign(limbs_.begin() + static_cast<ptrdiff_t>(from),
                      limbs_.begin() + static_cast<ptrdiff_t>(to));
  }
  out.Normalize();
  return out;
}

BigInt BigInt::MulKaratsuba(const BigInt& a, const BigInt& b) {
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  if (std::min(a.limbs_.size(), b.limbs_.size()) < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  size_t half = n / 2;
  BigInt a0 = a.LimbRange(0, half), a1 = a.LimbRange(half, a.limbs_.size());
  BigInt b0 = b.LimbRange(0, half), b1 = b.LimbRange(half, b.limbs_.size());

  BigInt z0 = MulKaratsuba(a0, b0);
  BigInt z2 = MulKaratsuba(a1, b1);
  BigInt z1 = MulKaratsuba(a0.Add(a1), b0.Add(b1)).Sub(z0).Sub(z2);

  return z0.Add(z1.ShiftLeft(64 * half)).Add(z2.ShiftLeft(128 * half));
}

BigInt BigInt::Mul(const BigInt& other) const {
  return MulKaratsuba(*this, other);
}

BigInt BigInt::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::ShiftRight(size_t bits) const {
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

Status BigInt::DivMod(const BigInt& divisor, BigInt* quotient,
                      BigInt* remainder) const {
  if (divisor.IsZero()) {
    return Status::InvalidArgument("BigInt division by zero");
  }
  if (Compare(divisor) < 0) {
    if (quotient) *quotient = BigInt();
    if (remainder) *remainder = *this;
    return Status::OK();
  }
  // Single-limb divisor: simple short division.
  if (divisor.limbs_.size() == 1) {
    uint64_t d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.assign(limbs_.size(), 0);
    u128 rem = 0;
    for (size_t i = limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    if (quotient) *quotient = std::move(q);
    if (remainder) *remainder = BigInt(static_cast<uint64_t>(rem));
    return Status::OK();
  }

  // Knuth Algorithm D (TAOCP vol. 2, 4.3.1), base 2^64.
  const size_t n = divisor.limbs_.size();
  const size_t m = limbs_.size() - n;
  const int shift = CountLeadingZeros64(divisor.limbs_.back());

  // Normalized copies: v has top bit set; u gets one extra high limb.
  BigInt v = divisor.ShiftLeft(static_cast<size_t>(shift));
  BigInt u = ShiftLeft(static_cast<size_t>(shift));
  u.limbs_.resize(limbs_.size() + 1, 0);
  assert(v.limbs_.size() == n);

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  const uint64_t v_hi = v.limbs_[n - 1];
  const uint64_t v_lo = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate qhat = (u[j+n]*B + u[j+n-1]) / v_hi.
    u128 numerator =
        (static_cast<u128>(u.limbs_[j + n]) << 64) | u.limbs_[j + n - 1];
    u128 qhat = numerator / v_hi;
    u128 rhat = numerator % v_hi;
    if (qhat > UINT64_MAX) {
      qhat = UINT64_MAX;
      rhat = numerator - qhat * v_hi;
    }
    // Refine using the second-highest divisor limb.
    while (rhat <= UINT64_MAX &&
           qhat * v_lo > ((rhat << 64) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_hi;
    }

    // Multiply-subtract: u[j .. j+n] -= qhat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 prod = qhat * v.limbs_[i] + carry;
      carry = prod >> 64;
      uint64_t prod_lo = static_cast<uint64_t>(prod);
      u128 diff = static_cast<u128>(u.limbs_[j + i]) - prod_lo - borrow;
      u.limbs_[j + i] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) & 1;  // 1 if wrapped
    }
    u128 diff = static_cast<u128>(u.limbs_[j + n]) - carry - borrow;
    u.limbs_[j + n] = static_cast<uint64_t>(diff);
    bool negative = ((diff >> 64) & 1) != 0;

    if (negative) {
      // qhat was one too large: add back v.
      --qhat;
      u128 c = 0;
      for (size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u.limbs_[j + i]) + v.limbs_[i] + c;
        u.limbs_[j + i] = static_cast<uint64_t>(sum);
        c = sum >> 64;
      }
      u.limbs_[j + n] += static_cast<uint64_t>(c);
    }
    q.limbs_[j] = static_cast<uint64_t>(qhat);
  }

  q.Normalize();
  u.limbs_.resize(n);
  u.Normalize();
  BigInt r = u.ShiftRight(static_cast<size_t>(shift));
  if (quotient) *quotient = std::move(q);
  if (remainder) *remainder = std::move(r);
  return Status::OK();
}

BigInt BigInt::Mod(const BigInt& m) const {
  BigInt r;
  Status st = DivMod(m, nullptr, &r);
  assert(st.ok());
  (void)st;
  return r;
}

BigInt BigInt::ModMul(const BigInt& other, const BigInt& m) const {
  // Odd multi-limb moduli ride the cached Montgomery context: two fused
  // CIOS passes on per-thread workspace instead of a schoolbook multiply
  // plus a Knuth-D division. Single-limb moduli stay on short division,
  // and above the Karatsuba threshold the subquadratic multiply beats
  // the quadratic CIOS passes, so the division path wins again
  // (measured crossover ≈ 24 limbs).
  if (m.IsOdd() && m.limb_count() >= 2 &&
      m.limb_count() < kKaratsubaThreshold) {
    const MontgomeryCtx* ctx = CachedMontgomeryCtx(m);
    if (ctx != nullptr) return ctx->ModMul(*this, other);
    WarnMontgomeryUnavailable(m);
  }
  return Mul(other).Mod(m);
}

BigInt BigInt::ModExp(const BigInt& exponent, const BigInt& m) const {
  assert(!m.IsZero());
  if (m == BigInt(1)) return BigInt();
  if (exponent.IsZero()) return BigInt(1);

  // Odd moduli (every Paillier/RSA-style modulus) take the Montgomery
  // fast path: no per-step division. The generic path below remains for
  // even moduli and as the reference implementation.
  if (m.IsOdd() && m.limb_count() >= 2 && exponent.BitLength() >= 16) {
    const MontgomeryCtx* ctx = CachedMontgomeryCtx(m);
    if (ctx != nullptr) return ctx->ModExp(*this, exponent);
    WarnMontgomeryUnavailable(m);
  }

  // 4-bit fixed window: precompute base^0..base^15 mod m.
  const BigInt base = Mod(m);
  BigInt table[16];
  table[0] = BigInt(1);
  for (int i = 1; i < 16; ++i) table[i] = table[i - 1].ModMul(base, m);

  size_t bits = exponent.BitLength();
  size_t windows = (bits + 3) / 4;
  BigInt acc(1);
  for (size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) acc = acc.ModMul(acc, m);
    uint64_t idx = 0;
    for (int b = 3; b >= 0; --b) {
      idx = (idx << 1) | (exponent.GetBit(w * 4 + static_cast<size_t>(b)) ? 1 : 0);
    }
    if (idx != 0) acc = acc.ModMul(table[idx], m);
  }
  return acc;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a, y = b;
  while (!y.IsZero()) {
    BigInt r = x.Mod(y);
    x = y;
    y = r;
  }
  return x;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt g = Gcd(a, b);
  BigInt q;
  Status st = a.DivMod(g, &q, nullptr);
  assert(st.ok());
  (void)st;
  return q.Mul(b);
}

Result<BigInt> BigInt::ModInverse(const BigInt& m) const {
  // Extended Euclid with non-negative bookkeeping: track coefficients of
  // `this` modulo m as (sign, magnitude) pairs.
  if (m.IsZero()) return Status::InvalidArgument("ModInverse: zero modulus");
  BigInt r0 = m, r1 = Mod(m);
  if (r1.IsZero()) {
    return Status::InvalidArgument("ModInverse: not invertible (zero)");
  }
  BigInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;

  while (!r1.IsZero()) {
    BigInt q, r2;
    Status st = r0.DivMod(r1, &q, &r2);
    assert(st.ok());
    (void)st;
    // t2 = t0 - q * t1 with sign tracking.
    BigInt qt1 = q.Mul(t1);
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (t0 >= qt1) {
        t2 = t0.Sub(qt1);
        t2_neg = t0_neg;
      } else {
        t2 = qt1.Sub(t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0.Add(qt1);
      t2_neg = t0_neg;
    }
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
    r0 = std::move(r1);
    r1 = std::move(r2);
  }

  if (r0 != BigInt(1)) {
    return Status::InvalidArgument("ModInverse: gcd != 1, not invertible");
  }
  BigInt inv = t0.Mod(m);
  if (t0_neg && !inv.IsZero()) inv = m.Sub(inv);
  return inv;
}

namespace {

// n mod p for word-sized p, by Horner over the limbs — no BigInt
// division. The residue stays < p < 2^32, so r*2^64 + limb fits u128.
uint64_t ModWord(const BigInt& n, uint64_t p) {
  u128 r = 0;
  for (size_t i = n.limb_count(); i-- > 0;) {
    r = ((r << 64) | n.limb(i)) % p;
  }
  return static_cast<uint64_t>(r);
}

}  // namespace

bool BigInt::IsProbablePrime(int rounds, SecureRandom* rng) const {
  if (*this < BigInt(2)) return false;
  // Trial division by the first 100 primes via word arithmetic. The
  // 16-prime / BigInt-division sieve this replaces dominated prime
  // search: most candidates survived it only to fail the first (far more
  // expensive) Miller-Rabin round, and each BigInt::Mod cost a full long
  // division. Sieving to 541 roughly halves the Miller-Rabin attempts
  // and makes the sieve itself ~100x cheaper per candidate, which both
  // speeds Paillier keygen up and thins its worst-case tail.
  static const uint64_t kSmallPrimes[] = {
      2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,
      43,  47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101,
      103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
      173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
      241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
      317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397,
      401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467,
      479, 487, 491, 499, 503, 509, 521, 523, 541};
  for (uint64_t p : kSmallPrimes) {
    if (ModWord(*this, p) == 0) return *this == BigInt(p);
  }

  // Write this - 1 = d * 2^s with d odd.
  const BigInt n_minus_1 = Sub(BigInt(1));
  BigInt d = n_minus_1;
  size_t s = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++s;
  }

  const BigInt two(2);
  const BigInt n_minus_3 = Sub(BigInt(3));
  for (int round = 0; round < rounds; ++round) {
    // a uniform in [2, n-2].
    BigInt a = RandomBelow(n_minus_3, rng).Add(two);
    BigInt x = a.ModExp(d, *this);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (size_t i = 1; i < s; ++i) {
      x = x.ModMul(x, *this);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt BigInt::RandomWithBits(size_t bits, SecureRandom* rng) {
  assert(bits > 0);
  Bytes bytes = rng->RandomBytes((bits + 7) / 8);
  // Mask excess high bits, then force the top bit so BitLength() == bits.
  size_t excess = bytes.size() * 8 - bits;
  bytes[0] &= static_cast<uint8_t>(0xFF >> excess);
  bytes[0] |= static_cast<uint8_t>(0x80 >> excess);
  return FromBytesBigEndian(bytes);
}

BigInt BigInt::RandomBelow(const BigInt& bound, SecureRandom* rng) {
  assert(!bound.IsZero());
  size_t bits = bound.BitLength();
  size_t nbytes = (bits + 7) / 8;
  size_t excess = nbytes * 8 - bits;
  // Rejection sampling; expected <= 2 iterations.
  for (;;) {
    Bytes bytes = rng->RandomBytes(nbytes);
    bytes[0] &= static_cast<uint8_t>(0xFF >> excess);
    BigInt candidate = FromBytesBigEndian(bytes);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::GeneratePrime(size_t bits, SecureRandom* rng) {
  assert(bits >= 8);
  for (;;) {
    BigInt candidate = RandomWithBits(bits, rng);
    // Force odd.
    if (!candidate.IsOdd()) candidate = candidate.Add(BigInt(1));
    if (candidate.BitLength() != bits) continue;  // wrapped; retry
    if (candidate.IsProbablePrime(24, rng)) return candidate;
  }
}

}  // namespace crypto
}  // namespace shuffledp

// Arbitrary-precision unsigned integer arithmetic.
//
// Built from scratch as the substrate for the Paillier additively-
// homomorphic encryption used by PEOS (the paper instantiates its AHE with
// DGK at 3072-bit ciphertexts; see DESIGN.md §4 for the substitution note).
//
// Representation: little-endian vector of 64-bit limbs, normalized so the
// most significant limb is nonzero (zero is the empty vector). All values
// are non-negative; subtraction of a larger value is a checked error.
//
// Algorithms: schoolbook + Karatsuba multiplication, Knuth Algorithm D
// division, 4-bit fixed-window modular exponentiation, binary extended GCD
// for modular inverse, Miller-Rabin primality with deterministic small-prime
// sieving for candidate generation.

#ifndef SHUFFLEDP_CRYPTO_BIGINT_H_
#define SHUFFLEDP_CRYPTO_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

class SecureRandom;

/// Arbitrary-precision unsigned integer.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine word.
  explicit BigInt(uint64_t v) {
    if (v != 0) limbs_.push_back(v);
  }

  /// Parses a big-endian hex string (no 0x prefix). Empty string is zero.
  static Result<BigInt> FromHexString(const std::string& hex);

  /// Parses a decimal string.
  static Result<BigInt> FromDecimalString(const std::string& dec);

  /// From big-endian bytes.
  static BigInt FromBytesBigEndian(const Bytes& bytes);

  /// Lowercase hex, no leading zeros ("0" for zero).
  std::string ToHexString() const;

  /// Decimal string.
  std::string ToDecimalString() const;

  /// Big-endian bytes, zero-padded on the left to at least `min_len`.
  Bytes ToBytesBigEndian(size_t min_len = 0) const;

  /// Value as uint64; saturates if the value exceeds 64 bits.
  uint64_t ToU64Saturating() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }

  /// Number of significant bits (0 for zero).
  size_t BitLength() const;

  /// Bit `i` (0 = least significant).
  bool GetBit(size_t i) const;

  /// Three-way comparison: -1, 0, +1.
  int Compare(const BigInt& other) const;

  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  /// this + other.
  BigInt Add(const BigInt& other) const;

  /// this - other. Pre-condition: other <= this (checked; returns 0 and
  /// sets ok=false if provided).
  BigInt Sub(const BigInt& other) const;

  /// this * other (Karatsuba above kKaratsubaThreshold limbs).
  BigInt Mul(const BigInt& other) const;

  /// this << bits.
  BigInt ShiftLeft(size_t bits) const;

  /// this >> bits.
  BigInt ShiftRight(size_t bits) const;

  /// Quotient and remainder of this / divisor. Error if divisor is zero.
  Status DivMod(const BigInt& divisor, BigInt* quotient,
                BigInt* remainder) const;

  /// this mod m (m > 0).
  BigInt Mod(const BigInt& m) const;

  /// (this * other) mod m.
  BigInt ModMul(const BigInt& other, const BigInt& m) const;

  /// this^exponent mod m (4-bit fixed window). Pre: m > 0.
  BigInt ModExp(const BigInt& exponent, const BigInt& m) const;

  /// Greatest common divisor.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Least common multiple.
  static BigInt Lcm(const BigInt& a, const BigInt& b);

  /// Modular inverse of this mod m; error if gcd(this, m) != 1.
  Result<BigInt> ModInverse(const BigInt& m) const;

  /// Miller-Rabin with `rounds` random bases (error probability 4^-rounds).
  bool IsProbablePrime(int rounds, SecureRandom* rng) const;

  /// Uniform integer with exactly `bits` bits (top bit set).
  static BigInt RandomWithBits(size_t bits, SecureRandom* rng);

  /// Uniform integer in [0, bound).
  static BigInt RandomBelow(const BigInt& bound, SecureRandom* rng);

  /// Random probable prime with exactly `bits` bits.
  static BigInt GeneratePrime(size_t bits, SecureRandom* rng);

  /// Number of 64-bit limbs (0 for zero).
  size_t limb_count() const { return limbs_.size(); }

  /// Low-level limb access (little-endian; zero beyond limb_count()).
  /// Exposed for the Montgomery kernel; not part of the stable API.
  uint64_t limb(size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }

  /// Builds a BigInt from little-endian limbs (low-level counterpart of
  /// limb(); trailing zeros are normalized away).
  static BigInt FromLimbsLittleEndian(std::vector<uint64_t> limbs) {
    BigInt out;
    out.limbs_ = std::move(limbs);
    out.Normalize();
    return out;
  }

 private:
  static constexpr size_t kKaratsubaThreshold = 24;

  static BigInt MulSchoolbook(const BigInt& a, const BigInt& b);
  static BigInt MulKaratsuba(const BigInt& a, const BigInt& b);
  BigInt LimbRange(size_t from, size_t to) const;  // limbs [from, to)

  void Normalize();

  std::vector<uint64_t> limbs_;  // little-endian
};

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_BIGINT_H_

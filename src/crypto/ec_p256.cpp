#include "crypto/ec_p256.h"

#include <cassert>
#include <cstring>

#include "crypto/secure_random.h"

namespace shuffledp {
namespace crypto {

namespace {

using u64 = uint64_t;
using u128 = unsigned __int128;
using Fe = Scalar256;  // field element, little-endian limbs

// p = 2^256 - 2^224 + 2^192 + 2^96 - 1
constexpr Fe kP = {0xFFFFFFFFFFFFFFFFULL, 0x00000000FFFFFFFFULL,
                   0x0000000000000000ULL, 0xFFFFFFFF00000001ULL};

// Group order n.
constexpr Fe kN = {0xF3B9CAC2FC632551ULL, 0xBCE6FAADA7179E84ULL,
                   0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFF00000000ULL};

// Curve coefficient b (a = -3 is implicit in the formulas).
constexpr Fe kB = {0x3BCE3C3E27D2604BULL, 0x651D06B0CC53B0F6ULL,
                   0xB3EBBD55769886BCULL, 0x5AC635D8AA3A93E7ULL};

constexpr Fe kGx = {0xF4A13945D898C296ULL, 0x77037D812DEB33A0ULL,
                    0xF8BCE6E563A440F2ULL, 0x6B17D1F2E12C4247ULL};
constexpr Fe kGy = {0xCBB6406837BF51F5ULL, 0x2BCE33576B315ECEULL,
                    0x8EE7EB4A7C0F9E16ULL, 0x4FE342E2FE1A7F9BULL};

// mu = -p^{-1} mod 2^64.
u64 ComputeMontgomeryMu(u64 p0) {
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - p0 * inv;  // Newton: inv = p0^-1
  return ~inv + 1;                                   // -inv
}

bool IsZeroFe(const Fe& a) {
  return (a[0] | a[1] | a[2] | a[3]) == 0;
}

int CompareFe(const Fe& a, const Fe& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// out = a + b, returns carry.
u64 AddFeRaw(const Fe& a, const Fe& b, Fe* out) {
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 s = static_cast<u128>(a[i]) + b[i] + carry;
    (*out)[i] = static_cast<u64>(s);
    carry = s >> 64;
  }
  return static_cast<u64>(carry);
}

// out = a - b, returns borrow.
u64 SubFeRaw(const Fe& a, const Fe& b, Fe* out) {
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 d = static_cast<u128>(a[i]) - b[i] - borrow;
    (*out)[i] = static_cast<u64>(d);
    borrow = (d >> 64) & 1;
  }
  return static_cast<u64>(borrow);
}

/// Montgomery arithmetic context for a fixed 256-bit odd modulus.
class Mont256 {
 public:
  explicit Mont256(const Fe& modulus)
      : m_(modulus), mu_(ComputeMontgomeryMu(modulus[0])) {
    // r_mod = 2^256 mod m (m > 2^255, so a single subtraction suffices).
    Fe zero{};
    SubFeRaw(zero, m_, &r_mod_);  // 2^256 - m represented in 256 bits
    // rr_ = (2^256)^2 mod m via 256 modular doublings of r_mod.
    rr_ = r_mod_;
    for (int i = 0; i < 256; ++i) rr_ = AddMod(rr_, rr_);
    one_ = ToMont(Fe{1, 0, 0, 0});
  }

  const Fe& modulus() const { return m_; }
  const Fe& mont_one() const { return one_; }

  Fe AddMod(const Fe& a, const Fe& b) const {
    Fe sum;
    u64 carry = AddFeRaw(a, b, &sum);
    if (carry || CompareFe(sum, m_) >= 0) {
      Fe tmp;
      SubFeRaw(sum, m_, &tmp);
      return tmp;
    }
    return sum;
  }

  Fe SubMod(const Fe& a, const Fe& b) const {
    Fe diff;
    u64 borrow = SubFeRaw(a, b, &diff);
    if (borrow) {
      Fe tmp;
      AddFeRaw(diff, m_, &tmp);
      return tmp;
    }
    return diff;
  }

  // CIOS Montgomery multiplication: returns a*b*R^-1 mod m.
  Fe MontMul(const Fe& a, const Fe& b) const {
    u64 t[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      // t += a * b[i]
      u128 carry = 0;
      for (int j = 0; j < 4; ++j) {
        u128 cur = static_cast<u128>(a[j]) * b[i] + t[j] + carry;
        t[j] = static_cast<u64>(cur);
        carry = cur >> 64;
      }
      u128 cur = static_cast<u128>(t[4]) + carry;
      t[4] = static_cast<u64>(cur);
      t[5] = static_cast<u64>(cur >> 64);

      // Reduce: add m * (t[0] * mu) and shift one limb.
      u64 m = t[0] * mu_;
      carry = (static_cast<u128>(m) * m_[0] + t[0]) >> 64;
      for (int j = 1; j < 4; ++j) {
        u128 cur2 = static_cast<u128>(m) * m_[j] + t[j] + carry;
        t[j - 1] = static_cast<u64>(cur2);
        carry = cur2 >> 64;
      }
      u128 cur3 = static_cast<u128>(t[4]) + carry;
      t[3] = static_cast<u64>(cur3);
      t[4] = t[5] + static_cast<u64>(cur3 >> 64);
      t[5] = 0;
    }
    Fe out = {t[0], t[1], t[2], t[3]};
    if (t[4] != 0 || CompareFe(out, m_) >= 0) {
      Fe tmp;
      SubFeRaw(out, m_, &tmp);
      out = tmp;
    }
    return out;
  }

  Fe ToMont(const Fe& a) const { return MontMul(a, rr_); }
  Fe FromMont(const Fe& a) const { return MontMul(a, Fe{1, 0, 0, 0}); }

  // a^e mod m with a in Montgomery form; e a plain integer.
  Fe MontPow(const Fe& a, const Fe& e) const {
    Fe acc = one_;
    for (int bit = 255; bit >= 0; --bit) {
      acc = MontMul(acc, acc);
      if ((e[bit / 64] >> (bit % 64)) & 1) acc = MontMul(acc, a);
    }
    return acc;
  }

  // Inverse via Fermat (m prime): a^(m-2).
  Fe MontInverse(const Fe& a) const {
    Fe e = m_;
    // e = m - 2
    Fe two = {2, 0, 0, 0};
    Fe exp;
    SubFeRaw(e, two, &exp);
    return MontPow(a, exp);
  }

 private:
  Fe m_;
  u64 mu_;
  Fe r_mod_;
  Fe rr_;
  Fe one_;
};

const Mont256& FieldCtx() {
  static const Mont256* ctx = new Mont256(kP);
  return *ctx;
}

// Jacobian point, coordinates in Montgomery form. Infinity <=> z == 0.
struct Jacobian {
  Fe x, y, z;
};

bool JIsInfinity(const Jacobian& p) { return IsZeroFe(p.z); }

Jacobian JInfinity() { return Jacobian{Fe{}, Fe{}, Fe{}}; }

Jacobian ToJacobian(const P256Point& p) {
  if (p.infinity) return JInfinity();
  const Mont256& f = FieldCtx();
  return Jacobian{f.ToMont(p.x), f.ToMont(p.y), f.mont_one()};
}

P256Point ToAffine(const Jacobian& p) {
  if (JIsInfinity(p)) return P256Point{};
  const Mont256& f = FieldCtx();
  Fe zinv = f.MontInverse(p.z);
  Fe zinv2 = f.MontMul(zinv, zinv);
  Fe zinv3 = f.MontMul(zinv2, zinv);
  P256Point out;
  out.infinity = false;
  out.x = f.FromMont(f.MontMul(p.x, zinv2));
  out.y = f.FromMont(f.MontMul(p.y, zinv3));
  return out;
}

// Doubling with a = -3 (dbl-2001-b).
Jacobian JDouble(const Jacobian& p) {
  if (JIsInfinity(p) || IsZeroFe(p.y)) return JInfinity();
  const Mont256& f = FieldCtx();
  Fe delta = f.MontMul(p.z, p.z);
  Fe gamma = f.MontMul(p.y, p.y);
  Fe beta = f.MontMul(p.x, gamma);
  Fe t1 = f.SubMod(p.x, delta);
  Fe t2 = f.AddMod(p.x, delta);
  Fe t3 = f.MontMul(t1, t2);
  Fe alpha = f.AddMod(f.AddMod(t3, t3), t3);  // 3*(x-delta)*(x+delta)
  Fe alpha2 = f.MontMul(alpha, alpha);
  Fe beta2 = f.AddMod(beta, beta);
  Fe beta4 = f.AddMod(beta2, beta2);
  Fe beta8 = f.AddMod(beta4, beta4);
  Jacobian out;
  out.x = f.SubMod(alpha2, beta8);
  Fe yz = f.AddMod(p.y, p.z);
  Fe yz2 = f.MontMul(yz, yz);
  out.z = f.SubMod(f.SubMod(yz2, gamma), delta);
  Fe gamma2 = f.MontMul(gamma, gamma);
  Fe g2_2 = f.AddMod(gamma2, gamma2);
  Fe g2_4 = f.AddMod(g2_2, g2_2);
  Fe g2_8 = f.AddMod(g2_4, g2_4);
  Fe inner = f.SubMod(beta4, out.x);
  out.y = f.SubMod(f.MontMul(alpha, inner), g2_8);
  return out;
}

// General Jacobian addition.
Jacobian JAdd(const Jacobian& a, const Jacobian& b) {
  if (JIsInfinity(a)) return b;
  if (JIsInfinity(b)) return a;
  const Mont256& f = FieldCtx();
  Fe z1z1 = f.MontMul(a.z, a.z);
  Fe z2z2 = f.MontMul(b.z, b.z);
  Fe u1 = f.MontMul(a.x, z2z2);
  Fe u2 = f.MontMul(b.x, z1z1);
  Fe s1 = f.MontMul(f.MontMul(a.y, b.z), z2z2);
  Fe s2 = f.MontMul(f.MontMul(b.y, a.z), z1z1);
  Fe h = f.SubMod(u2, u1);
  Fe r = f.SubMod(s2, s1);
  if (IsZeroFe(h)) {
    if (IsZeroFe(r)) return JDouble(a);
    return JInfinity();
  }
  Fe hh = f.MontMul(h, h);
  Fe hhh = f.MontMul(hh, h);
  Fe v = f.MontMul(u1, hh);
  Fe r2 = f.MontMul(r, r);
  Jacobian out;
  out.x = f.SubMod(f.SubMod(r2, hhh), f.AddMod(v, v));
  out.y = f.SubMod(f.MontMul(r, f.SubMod(v, out.x)), f.MontMul(s1, hhh));
  out.z = f.MontMul(f.MontMul(a.z, b.z), h);
  return out;
}

Jacobian JScalarMult(const Scalar256& k, const Jacobian& p) {
  Jacobian acc = JInfinity();
  bool started = false;
  for (int bit = 255; bit >= 0; --bit) {
    if (started) acc = JDouble(acc);
    if ((k[bit / 64] >> (bit % 64)) & 1) {
      acc = started ? JAdd(acc, p) : p;
      started = true;
    }
  }
  return started ? acc : JInfinity();
}

}  // namespace

P256Point P256::Generator() {
  P256Point g;
  g.infinity = false;
  g.x = kGx;
  g.y = kGy;
  return g;
}

Scalar256 P256::Order() { return kN; }

P256Point P256::Add(const P256Point& a, const P256Point& b) {
  return ToAffine(JAdd(ToJacobian(a), ToJacobian(b)));
}

P256Point P256::ScalarMult(const Scalar256& k, const P256Point& p) {
  return ToAffine(JScalarMult(k, ToJacobian(p)));
}

P256Point P256::ScalarBaseMult(const Scalar256& k) {
  return ScalarMult(k, Generator());
}

bool P256::IsOnCurve(const P256Point& p) {
  if (p.infinity) return true;
  if (CompareFe(p.x, kP) >= 0 || CompareFe(p.y, kP) >= 0) return false;
  const Mont256& f = FieldCtx();
  Fe x = f.ToMont(p.x);
  Fe y = f.ToMont(p.y);
  Fe b = f.ToMont(kB);
  // y^2 == x^3 - 3x + b
  Fe y2 = f.MontMul(y, y);
  Fe x2 = f.MontMul(x, x);
  Fe x3 = f.MontMul(x2, x);
  Fe three_x = f.AddMod(f.AddMod(x, x), x);
  Fe rhs = f.AddMod(f.SubMod(x3, three_x), b);
  return CompareFe(y2, rhs) == 0;
}

Bytes P256::Serialize(const P256Point& p) {
  assert(!p.infinity);
  Bytes out;
  out.reserve(kPointBytes);
  out.push_back(0x04);
  Bytes xb = ScalarToBytes(p.x);
  Bytes yb = ScalarToBytes(p.y);
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

Result<P256Point> P256::Parse(const Bytes& bytes) {
  if (bytes.size() != kPointBytes || bytes[0] != 0x04) {
    return Status::CryptoError("P256: malformed point encoding");
  }
  P256Point p;
  p.infinity = false;
  p.x = ScalarFromBytes(bytes.data() + 1);
  p.y = ScalarFromBytes(bytes.data() + 33);
  if (!IsOnCurve(p)) {
    return Status::CryptoError("P256: point not on curve");
  }
  return p;
}

Scalar256 P256::RandomScalar(SecureRandom* rng) {
  for (;;) {
    Bytes b = rng->RandomBytes(32);
    Scalar256 k = ScalarFromBytes(b.data());
    if (IsZeroFe(k)) continue;
    if (CompareFe(k, kN) >= 0) continue;
    return k;
  }
}

Bytes ScalarToBytes(const Scalar256& s) {
  Bytes out(32);
  for (int i = 0; i < 4; ++i) {
    u64 limb = s[3 - i];  // big-endian output
    for (int b = 0; b < 8; ++b) {
      out[static_cast<size_t>(8 * i + b)] =
          static_cast<uint8_t>(limb >> (56 - 8 * b));
    }
  }
  return out;
}

Scalar256 ScalarFromBytes(const uint8_t bytes[32]) {
  Scalar256 s{};
  for (int i = 0; i < 4; ++i) {
    u64 limb = 0;
    for (int b = 0; b < 8; ++b) {
      limb = (limb << 8) | bytes[8 * i + b];
    }
    s[3 - i] = limb;
  }
  return s;
}

}  // namespace crypto
}  // namespace shuffledp

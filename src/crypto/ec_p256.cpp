#include "crypto/ec_p256.h"

#include <cassert>
#include <cstring>
#include <memory>

#include "crypto/secure_random.h"

namespace shuffledp {
namespace crypto {

namespace {

using u64 = uint64_t;
using u128 = unsigned __int128;
using Fe = Scalar256;  // field element, little-endian limbs

// p = 2^256 - 2^224 + 2^192 + 2^96 - 1
constexpr Fe kP = {0xFFFFFFFFFFFFFFFFULL, 0x00000000FFFFFFFFULL,
                   0x0000000000000000ULL, 0xFFFFFFFF00000001ULL};

// Group order n.
constexpr Fe kN = {0xF3B9CAC2FC632551ULL, 0xBCE6FAADA7179E84ULL,
                   0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFF00000000ULL};

// Curve coefficient b (a = -3 is implicit in the formulas).
constexpr Fe kB = {0x3BCE3C3E27D2604BULL, 0x651D06B0CC53B0F6ULL,
                   0xB3EBBD55769886BCULL, 0x5AC635D8AA3A93E7ULL};

constexpr Fe kGx = {0xF4A13945D898C296ULL, 0x77037D812DEB33A0ULL,
                    0xF8BCE6E563A440F2ULL, 0x6B17D1F2E12C4247ULL};
constexpr Fe kGy = {0xCBB6406837BF51F5ULL, 0x2BCE33576B315ECEULL,
                    0x8EE7EB4A7C0F9E16ULL, 0x4FE342E2FE1A7F9BULL};

// mu = -p^{-1} mod 2^64.
u64 ComputeMontgomeryMu(u64 p0) {
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - p0 * inv;  // Newton: inv = p0^-1
  return ~inv + 1;                                   // -inv
}

bool IsZeroFe(const Fe& a) {
  return (a[0] | a[1] | a[2] | a[3]) == 0;
}

int CompareFe(const Fe& a, const Fe& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// out = a + b, returns carry.
u64 AddFeRaw(const Fe& a, const Fe& b, Fe* out) {
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 s = static_cast<u128>(a[i]) + b[i] + carry;
    (*out)[i] = static_cast<u64>(s);
    carry = s >> 64;
  }
  return static_cast<u64>(carry);
}

// out = a - b, returns borrow.
u64 SubFeRaw(const Fe& a, const Fe& b, Fe* out) {
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 d = static_cast<u128>(a[i]) - b[i] - borrow;
    (*out)[i] = static_cast<u64>(d);
    borrow = (d >> 64) & 1;
  }
  return static_cast<u64>(borrow);
}

/// Montgomery arithmetic context for a fixed 256-bit odd modulus.
class Mont256 {
 public:
  explicit Mont256(const Fe& modulus)
      : m_(modulus), mu_(ComputeMontgomeryMu(modulus[0])) {
    // r_mod = 2^256 mod m (m > 2^255, so a single subtraction suffices).
    Fe zero{};
    SubFeRaw(zero, m_, &r_mod_);  // 2^256 - m represented in 256 bits
    // rr_ = (2^256)^2 mod m via 256 modular doublings of r_mod.
    rr_ = r_mod_;
    for (int i = 0; i < 256; ++i) rr_ = AddMod(rr_, rr_);
    one_ = ToMont(Fe{1, 0, 0, 0});
  }

  const Fe& modulus() const { return m_; }
  const Fe& mont_one() const { return one_; }

  Fe AddMod(const Fe& a, const Fe& b) const {
    Fe sum;
    u64 carry = AddFeRaw(a, b, &sum);
    if (carry || CompareFe(sum, m_) >= 0) {
      Fe tmp;
      SubFeRaw(sum, m_, &tmp);
      return tmp;
    }
    return sum;
  }

  Fe SubMod(const Fe& a, const Fe& b) const {
    Fe diff;
    u64 borrow = SubFeRaw(a, b, &diff);
    if (borrow) {
      Fe tmp;
      AddFeRaw(diff, m_, &tmp);
      return tmp;
    }
    return diff;
  }

  // CIOS Montgomery multiplication: returns a*b*R^-1 mod m.
  Fe MontMul(const Fe& a, const Fe& b) const {
    u64 t[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      // t += a * b[i]
      u128 carry = 0;
      for (int j = 0; j < 4; ++j) {
        u128 cur = static_cast<u128>(a[j]) * b[i] + t[j] + carry;
        t[j] = static_cast<u64>(cur);
        carry = cur >> 64;
      }
      u128 cur = static_cast<u128>(t[4]) + carry;
      t[4] = static_cast<u64>(cur);
      t[5] = static_cast<u64>(cur >> 64);

      // Reduce: add m * (t[0] * mu) and shift one limb.
      u64 m = t[0] * mu_;
      carry = (static_cast<u128>(m) * m_[0] + t[0]) >> 64;
      for (int j = 1; j < 4; ++j) {
        u128 cur2 = static_cast<u128>(m) * m_[j] + t[j] + carry;
        t[j - 1] = static_cast<u64>(cur2);
        carry = cur2 >> 64;
      }
      u128 cur3 = static_cast<u128>(t[4]) + carry;
      t[3] = static_cast<u64>(cur3);
      t[4] = t[5] + static_cast<u64>(cur3 >> 64);
      t[5] = 0;
    }
    Fe out = {t[0], t[1], t[2], t[3]};
    if (t[4] != 0 || CompareFe(out, m_) >= 0) {
      Fe tmp;
      SubFeRaw(out, m_, &tmp);
      out = tmp;
    }
    return out;
  }

  Fe ToMont(const Fe& a) const { return MontMul(a, rr_); }
  Fe FromMont(const Fe& a) const { return MontMul(a, Fe{1, 0, 0, 0}); }

  // a^e mod m with a in Montgomery form; e a plain integer.
  Fe MontPow(const Fe& a, const Fe& e) const {
    Fe acc = one_;
    for (int bit = 255; bit >= 0; --bit) {
      acc = MontMul(acc, acc);
      if ((e[bit / 64] >> (bit % 64)) & 1) acc = MontMul(acc, a);
    }
    return acc;
  }

  // Inverse via Fermat (m prime): a^(m-2).
  Fe MontInverse(const Fe& a) const {
    Fe e = m_;
    // e = m - 2
    Fe two = {2, 0, 0, 0};
    Fe exp;
    SubFeRaw(e, two, &exp);
    return MontPow(a, exp);
  }

 private:
  Fe m_;
  u64 mu_;
  Fe r_mod_;
  Fe rr_;
  Fe one_;
};

const Mont256& FieldCtx() {
  static const Mont256* ctx = new Mont256(kP);
  return *ctx;
}

// -(a) mod p, in the Montgomery domain (negation commutes with the domain).
Fe FeNeg(const Fe& a) {
  if (IsZeroFe(a)) return a;
  Fe out;
  SubFeRaw(kP, a, &out);
  return out;
}

// a^(2^n) by repeated Montgomery squaring.
Fe MontSqrN(Fe a, int n) {
  const Mont256& f = FieldCtx();
  for (int i = 0; i < n; ++i) a = f.MontMul(a, a);
  return a;
}

// a^(p-2) = a^-1 via a fixed addition chain (255 squarings, 12 multiplies;
// ~30% cheaper than square-and-multiply over p-2). Chain (addchain output
// for the P-256 field prime):
//   _111 = 7, _111111 = 2^6-1, x12 = 2^12-1, x15, x16, x32 = 2^32-1,
//   i53 = x32<<15, x47 = 2^47-1,
//   i263 = ((i53<<17 + 1)<<143 + x47)<<47,
//   result = (x47 + i263)<<2 + 1  ==  p - 2.
Fe FeInverse(const Fe& a) {
  const Mont256& f = FieldCtx();
  Fe t10 = f.MontMul(a, a);
  Fe t11 = f.MontMul(t10, a);
  Fe t110 = f.MontMul(t11, t11);
  Fe t111 = f.MontMul(t110, a);
  Fe t111111 = f.MontMul(MontSqrN(t111, 3), t111);
  Fe x12 = f.MontMul(MontSqrN(t111111, 6), t111111);
  Fe x15 = f.MontMul(MontSqrN(x12, 3), t111);
  Fe x16 = f.MontMul(MontSqrN(x15, 1), a);
  Fe x32 = f.MontMul(MontSqrN(x16, 16), x16);
  Fe i53 = MontSqrN(x32, 15);
  Fe x47 = f.MontMul(x15, i53);
  Fe i263 =
      MontSqrN(f.MontMul(MontSqrN(f.MontMul(MontSqrN(i53, 17), a), 143), x47),
               47);
  return f.MontMul(MontSqrN(f.MontMul(x47, i263), 2), a);
}

// Jacobian point, coordinates in Montgomery form. Infinity <=> z == 0.
struct Jacobian {
  Fe x, y, z;
};

// Affine point in the Montgomery domain (z == 1 implicitly). Only valid
// for non-infinite points; callers track infinity separately.
struct AffineMont {
  Fe x, y;
};

bool JIsInfinity(const Jacobian& p) { return IsZeroFe(p.z); }

Jacobian JInfinity() { return Jacobian{Fe{}, Fe{}, Fe{}}; }

Jacobian ToJacobian(const P256Point& p) {
  if (p.infinity) return JInfinity();
  const Mont256& f = FieldCtx();
  return Jacobian{f.ToMont(p.x), f.ToMont(p.y), f.mont_one()};
}

P256Point ToAffine(const Jacobian& p) {
  if (JIsInfinity(p)) return P256Point{};
  const Mont256& f = FieldCtx();
  Fe zinv = FeInverse(p.z);
  Fe zinv2 = f.MontMul(zinv, zinv);
  Fe zinv3 = f.MontMul(zinv2, zinv);
  P256Point out;
  out.infinity = false;
  out.x = f.FromMont(f.MontMul(p.x, zinv2));
  out.y = f.FromMont(f.MontMul(p.y, zinv3));
  return out;
}

// Doubling with a = -3 (dbl-2001-b).
Jacobian JDouble(const Jacobian& p) {
  if (JIsInfinity(p) || IsZeroFe(p.y)) return JInfinity();
  const Mont256& f = FieldCtx();
  Fe delta = f.MontMul(p.z, p.z);
  Fe gamma = f.MontMul(p.y, p.y);
  Fe beta = f.MontMul(p.x, gamma);
  Fe t1 = f.SubMod(p.x, delta);
  Fe t2 = f.AddMod(p.x, delta);
  Fe t3 = f.MontMul(t1, t2);
  Fe alpha = f.AddMod(f.AddMod(t3, t3), t3);  // 3*(x-delta)*(x+delta)
  Fe alpha2 = f.MontMul(alpha, alpha);
  Fe beta2 = f.AddMod(beta, beta);
  Fe beta4 = f.AddMod(beta2, beta2);
  Fe beta8 = f.AddMod(beta4, beta4);
  Jacobian out;
  out.x = f.SubMod(alpha2, beta8);
  Fe yz = f.AddMod(p.y, p.z);
  Fe yz2 = f.MontMul(yz, yz);
  out.z = f.SubMod(f.SubMod(yz2, gamma), delta);
  Fe gamma2 = f.MontMul(gamma, gamma);
  Fe g2_2 = f.AddMod(gamma2, gamma2);
  Fe g2_4 = f.AddMod(g2_2, g2_2);
  Fe g2_8 = f.AddMod(g2_4, g2_4);
  Fe inner = f.SubMod(beta4, out.x);
  out.y = f.SubMod(f.MontMul(alpha, inner), g2_8);
  return out;
}

// General Jacobian addition.
Jacobian JAdd(const Jacobian& a, const Jacobian& b) {
  if (JIsInfinity(a)) return b;
  if (JIsInfinity(b)) return a;
  const Mont256& f = FieldCtx();
  Fe z1z1 = f.MontMul(a.z, a.z);
  Fe z2z2 = f.MontMul(b.z, b.z);
  Fe u1 = f.MontMul(a.x, z2z2);
  Fe u2 = f.MontMul(b.x, z1z1);
  Fe s1 = f.MontMul(f.MontMul(a.y, b.z), z2z2);
  Fe s2 = f.MontMul(f.MontMul(b.y, a.z), z1z1);
  Fe h = f.SubMod(u2, u1);
  Fe r = f.SubMod(s2, s1);
  if (IsZeroFe(h)) {
    if (IsZeroFe(r)) return JDouble(a);
    return JInfinity();
  }
  Fe hh = f.MontMul(h, h);
  Fe hhh = f.MontMul(hh, h);
  Fe v = f.MontMul(u1, hh);
  Fe r2 = f.MontMul(r, r);
  Jacobian out;
  out.x = f.SubMod(f.SubMod(r2, hhh), f.AddMod(v, v));
  out.y = f.SubMod(f.MontMul(r, f.SubMod(v, out.x)), f.MontMul(s1, hhh));
  out.z = f.MontMul(f.MontMul(a.z, b.z), h);
  return out;
}

// Mixed addition a + b with b affine (z2 = 1): saves ~4 multiplications
// per addition versus JAdd, which is what makes precomputed affine tables
// worthwhile. `b` must not be the point at infinity.
Jacobian JAddMixed(const Jacobian& a, const AffineMont& b) {
  const Mont256& f = FieldCtx();
  if (JIsInfinity(a)) return Jacobian{b.x, b.y, f.mont_one()};
  Fe z1z1 = f.MontMul(a.z, a.z);
  Fe u2 = f.MontMul(b.x, z1z1);
  Fe s2 = f.MontMul(f.MontMul(b.y, a.z), z1z1);
  Fe h = f.SubMod(u2, a.x);
  Fe r = f.SubMod(s2, a.y);
  if (IsZeroFe(h)) {
    if (IsZeroFe(r)) return JDouble(a);
    return JInfinity();
  }
  Fe hh = f.MontMul(h, h);
  Fe hhh = f.MontMul(hh, h);
  Fe v = f.MontMul(a.x, hh);
  Fe r2 = f.MontMul(r, r);
  Jacobian out;
  out.x = f.SubMod(f.SubMod(r2, hhh), f.AddMod(v, v));
  out.y = f.SubMod(f.MontMul(r, f.SubMod(v, out.x)), f.MontMul(a.y, hhh));
  out.z = f.MontMul(a.z, h);
  return out;
}

// Montgomery's simultaneous-inversion trick: normalizes `n` Jacobian
// points to affine (Montgomery-domain) coordinates with a single field
// inversion plus 3 multiplications per point. infinity[i] is set for
// inputs with z == 0 (whose out[] entry is untouched).
void BatchNormalize(const Jacobian* in, size_t n, AffineMont* out,
                    bool* infinity) {
  const Mont256& f = FieldCtx();
  std::vector<Fe> prefix(n);
  Fe acc = f.mont_one();
  for (size_t i = 0; i < n; ++i) {
    prefix[i] = acc;
    if (!IsZeroFe(in[i].z)) acc = f.MontMul(acc, in[i].z);
  }
  Fe inv = FeInverse(acc);
  for (size_t i = n; i-- > 0;) {
    if (IsZeroFe(in[i].z)) {
      infinity[i] = true;
      continue;
    }
    infinity[i] = false;
    Fe zinv = f.MontMul(inv, prefix[i]);
    inv = f.MontMul(inv, in[i].z);
    Fe zinv2 = f.MontMul(zinv, zinv);
    Fe zinv3 = f.MontMul(zinv2, zinv);
    out[i].x = f.MontMul(in[i].x, zinv2);
    out[i].y = f.MontMul(in[i].y, zinv3);
  }
}

// Batch conversion all the way to plain-domain affine P256Points.
std::vector<P256Point> BatchToAffinePoints(const std::vector<Jacobian>& in) {
  const Mont256& f = FieldCtx();
  std::vector<AffineMont> aff(in.size());
  std::unique_ptr<bool[]> inf(new bool[in.size() + 1]);
  if (!in.empty()) {
    BatchNormalize(in.data(), in.size(), aff.data(), inf.get());
  }
  std::vector<P256Point> out(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (inf[i]) continue;  // default-constructed P256Point is infinity
    out[i].infinity = false;
    out[i].x = f.FromMont(aff[i].x);
    out[i].y = f.FromMont(aff[i].y);
  }
  return out;
}

// Reference double-and-add ladder (the seed implementation).
Jacobian JScalarMult(const Scalar256& k, const Jacobian& p) {
  Jacobian acc = JInfinity();
  bool started = false;
  for (int bit = 255; bit >= 0; --bit) {
    if (started) acc = JDouble(acc);
    if ((k[bit / 64] >> (bit % 64)) & 1) {
      acc = started ? JAdd(acc, p) : p;
      started = true;
    }
  }
  return started ? acc : JInfinity();
}

// ---------------------------------------------------------------------------
// Fixed-base comb for the generator.
//
// Write k = sum_{j=0}^{31} 2^j (D_lo(j) + 2^32 D_hi(j)) with the 4-bit
// digits D_lo(j) built from bits {j, j+64, j+128, j+192} of k and D_hi(j)
// from bits {j+32, j+96, j+160, j+224}. Precomputing
//   lo[b] = (b0 + b1 2^64 + b2 2^128 + b3 2^192) G      (b = b3b2b1b0)
//   hi[b] = 2^32 lo[b]
// reduces k*G to 31 doublings plus at most 64 mixed additions.
// ---------------------------------------------------------------------------

struct CombTable {
  AffineMont lo[16];
  AffineMont hi[16];
};

const CombTable& BaseCombTable() {
  static const CombTable* table = [] {
    auto* t = new CombTable();
    // Basis points 2^(64*tooth) G and 2^(64*tooth + 32) G.
    Jacobian basis_lo[4], basis_hi[4];
    basis_lo[0] = ToJacobian(P256::Generator());
    for (int tooth = 0; tooth < 4; ++tooth) {
      basis_hi[tooth] = basis_lo[tooth];
      for (int i = 0; i < 32; ++i) basis_hi[tooth] = JDouble(basis_hi[tooth]);
      if (tooth + 1 < 4) {
        basis_lo[tooth + 1] = basis_hi[tooth];
        for (int i = 0; i < 32; ++i) {
          basis_lo[tooth + 1] = JDouble(basis_lo[tooth + 1]);
        }
      }
    }
    Jacobian jl[16], jh[16];
    jl[0] = jh[0] = JInfinity();
    for (int b = 1; b < 16; ++b) {
      jl[b] = JInfinity();
      jh[b] = JInfinity();
      for (int tooth = 0; tooth < 4; ++tooth) {
        if (b & (1 << tooth)) {
          jl[b] = JAdd(jl[b], basis_lo[tooth]);
          jh[b] = JAdd(jh[b], basis_hi[tooth]);
        }
      }
    }
    // One batched normalization for all 30 non-trivial entries.
    Jacobian all[30];
    AffineMont aff[30];
    bool inf[30];
    for (int b = 1; b < 16; ++b) {
      all[b - 1] = jl[b];
      all[14 + b] = jh[b];
    }
    BatchNormalize(all, 30, aff, inf);
    for (int b = 1; b < 16; ++b) {
      t->lo[b] = aff[b - 1];
      t->hi[b] = aff[14 + b];
    }
    return t;
  }();
  return *table;
}

inline uint32_t ScalarBit(const Scalar256& k, int i) {
  return static_cast<uint32_t>((k[i >> 6] >> (i & 63)) & 1);
}

// Constant-time scan of a 16-entry table: every entry is read and masked
// regardless of `idx`. idx must be in [1, 15]; index 0 (infinity) is never
// selected because zero digits skip the addition entirely.
AffineMont CtSelect16(const AffineMont* table, uint32_t idx) {
  AffineMont out{};
  for (uint32_t i = 1; i < 16; ++i) {
    u64 mask = (static_cast<u64>(i ^ idx) - 1) >> 63;  // 1 iff i == idx
    mask = static_cast<u64>(0) - mask;                 // all-ones iff match
    for (int j = 0; j < 4; ++j) {
      out.x[j] |= table[i].x[j] & mask;
      out.y[j] |= table[i].y[j] & mask;
    }
  }
  return out;
}

Jacobian CombBaseMultJ(const Scalar256& k) {
  const CombTable& t = BaseCombTable();
  Jacobian acc = JInfinity();
  for (int j = 31; j >= 0; --j) {
    acc = JDouble(acc);
    uint32_t dlo = ScalarBit(k, j) | (ScalarBit(k, j + 64) << 1) |
                   (ScalarBit(k, j + 128) << 2) | (ScalarBit(k, j + 192) << 3);
    uint32_t dhi = ScalarBit(k, j + 32) | (ScalarBit(k, j + 96) << 1) |
                   (ScalarBit(k, j + 160) << 2) |
                   (ScalarBit(k, j + 224) << 3);
    if (dlo != 0) acc = JAddMixed(acc, CtSelect16(t.lo, dlo));
    if (dhi != 0) acc = JAddMixed(acc, CtSelect16(t.hi, dhi));
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Width-5 wNAF for variable points: digits are zero or odd in [-15, 15],
// with at least 4 zeros between nonzero digits (expected density 1/6).
// ---------------------------------------------------------------------------

constexpr int kWnafWidth = 5;
constexpr int kWnafMaxDigits = 260;  // 256-bit scalar + borrow headroom

// Recodes k into wNAF digits (little-endian); returns the digit count.
int WnafRecode(const Scalar256& k, int8_t* digits) {
  u64 x[5] = {k[0], k[1], k[2], k[3], 0};
  int len = 0;
  auto is_zero = [&x] { return (x[0] | x[1] | x[2] | x[3] | x[4]) == 0; };
  while (!is_zero()) {
    int8_t d = 0;
    if (x[0] & 1) {
      int v = static_cast<int>(x[0] & ((1u << kWnafWidth) - 1));
      if (v >= (1 << (kWnafWidth - 1))) v -= 1 << kWnafWidth;
      d = static_cast<int8_t>(v);
      if (v > 0) {
        // x -= v
        u64 borrow = static_cast<u64>(v);
        for (int i = 0; i < 5 && borrow; ++i) {
          u64 prev = x[i];
          x[i] -= borrow;
          borrow = x[i] > prev ? 1 : 0;
        }
      } else {
        // x += -v
        u64 carry = static_cast<u64>(-v);
        for (int i = 0; i < 5 && carry; ++i) {
          x[i] += carry;
          carry = x[i] < carry ? 1 : 0;
        }
      }
    }
    digits[len++] = d;
    for (int i = 0; i < 4; ++i) x[i] = (x[i] >> 1) | (x[i + 1] << 63);
    x[4] >>= 1;
  }
  return len;
}

// k * P with a precomputed affine odd-multiple table {1,3,...,15}P.
Jacobian WnafMultMixed(const AffineMont* odd, const Scalar256& k) {
  int8_t digits[kWnafMaxDigits];
  int len = WnafRecode(k, digits);
  Jacobian acc = JInfinity();
  for (int i = len - 1; i >= 0; --i) {
    acc = JDouble(acc);
    int d = digits[i];
    if (d > 0) {
      acc = JAddMixed(acc, odd[(d - 1) >> 1]);
    } else if (d < 0) {
      const AffineMont& e = odd[(-d - 1) >> 1];
      acc = JAddMixed(acc, AffineMont{e.x, FeNeg(e.y)});
    }
  }
  return acc;
}

// One-shot k * P: wNAF over a Jacobian odd-multiple table. Skipping the
// table normalization (one inversion) beats the cheaper mixed additions
// when the table is used for a single scalar.
Jacobian WnafMultOneShot(const Scalar256& k, const Jacobian& p) {
  if (JIsInfinity(p)) return JInfinity();
  Jacobian odd[8];
  odd[0] = p;
  Jacobian p2 = JDouble(p);
  for (int i = 1; i < 8; ++i) odd[i] = JAdd(odd[i - 1], p2);
  int8_t digits[kWnafMaxDigits];
  int len = WnafRecode(k, digits);
  Jacobian acc = JInfinity();
  for (int i = len - 1; i >= 0; --i) {
    acc = JDouble(acc);
    int d = digits[i];
    if (d > 0) {
      acc = JAdd(acc, odd[(d - 1) >> 1]);
    } else if (d < 0) {
      const Jacobian& e = odd[(-d - 1) >> 1];
      acc = JAdd(acc, Jacobian{e.x, FeNeg(e.y), e.z});
    }
  }
  return acc;
}

}  // namespace

P256Point P256::Generator() {
  P256Point g;
  g.infinity = false;
  g.x = kGx;
  g.y = kGy;
  return g;
}

Scalar256 P256::Order() { return kN; }

P256Point P256::Add(const P256Point& a, const P256Point& b) {
  return ToAffine(JAdd(ToJacobian(a), ToJacobian(b)));
}

P256Point P256::ScalarMult(const Scalar256& k, const P256Point& p) {
  return ToAffine(WnafMultOneShot(k, ToJacobian(p)));
}

P256Point P256::ScalarBaseMult(const Scalar256& k) {
  return ToAffine(CombBaseMultJ(k));
}

std::vector<P256Point> P256::ScalarBaseMultBatch(
    const std::vector<Scalar256>& ks) {
  std::vector<Jacobian> points;
  points.reserve(ks.size());
  for (const Scalar256& k : ks) points.push_back(CombBaseMultJ(k));
  return BatchToAffinePoints(points);
}

P256Point P256::ScalarMultReference(const Scalar256& k, const P256Point& p) {
  return ToAffine(JScalarMult(k, ToJacobian(p)));
}

P256Point P256::ScalarBaseMultReference(const Scalar256& k) {
  return ScalarMultReference(k, Generator());
}

P256Precomputed::P256Precomputed(const P256Point& p) : point_(p) {
  if (p.infinity) return;
  infinity_ = false;
  Jacobian jp = ToJacobian(p);
  Jacobian jodd[8];
  jodd[0] = jp;
  Jacobian p2 = JDouble(jp);
  for (int i = 1; i < 8; ++i) jodd[i] = JAdd(jodd[i - 1], p2);
  AffineMont aff[8];
  bool inf[8];
  BatchNormalize(jodd, 8, aff, inf);
  for (int i = 0; i < 8; ++i) {
    // Odd multiples of a non-infinite point of prime order are never
    // infinite, so aff[i] is always populated.
    odd_[i].x = aff[i].x;
    odd_[i].y = aff[i].y;
  }
}

namespace {

// The header-visible Entry mirrors AffineMont; rebuild the table in the
// internal type (a 512-byte copy, negligible next to the field math).
std::array<AffineMont, 8> OddTable(
    const std::array<P256Precomputed::Entry, 8>& odd) {
  std::array<AffineMont, 8> table;
  for (int i = 0; i < 8; ++i) {
    table[i].x = odd[i].x;
    table[i].y = odd[i].y;
  }
  return table;
}

}  // namespace

P256Point P256Precomputed::Mult(const Scalar256& k) const {
  if (infinity_) return P256Point{};
  return ToAffine(WnafMultMixed(OddTable(odd_).data(), k));
}

std::vector<P256Point> P256Precomputed::MultBatch(
    const std::vector<Scalar256>& ks) const {
  if (infinity_) return std::vector<P256Point>(ks.size());
  std::array<AffineMont, 8> table = OddTable(odd_);
  std::vector<Jacobian> points;
  points.reserve(ks.size());
  for (const Scalar256& k : ks) points.push_back(WnafMultMixed(table.data(), k));
  return BatchToAffinePoints(points);
}

bool P256::IsOnCurve(const P256Point& p) {
  if (p.infinity) return true;
  if (CompareFe(p.x, kP) >= 0 || CompareFe(p.y, kP) >= 0) return false;
  const Mont256& f = FieldCtx();
  Fe x = f.ToMont(p.x);
  Fe y = f.ToMont(p.y);
  Fe b = f.ToMont(kB);
  // y^2 == x^3 - 3x + b
  Fe y2 = f.MontMul(y, y);
  Fe x2 = f.MontMul(x, x);
  Fe x3 = f.MontMul(x2, x);
  Fe three_x = f.AddMod(f.AddMod(x, x), x);
  Fe rhs = f.AddMod(f.SubMod(x3, three_x), b);
  return CompareFe(y2, rhs) == 0;
}

Bytes P256::Serialize(const P256Point& p) {
  assert(!p.infinity);
  Bytes out;
  out.reserve(kPointBytes);
  out.push_back(0x04);
  Bytes xb = ScalarToBytes(p.x);
  Bytes yb = ScalarToBytes(p.y);
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

Result<P256Point> P256::Parse(const Bytes& bytes) {
  if (bytes.size() != kPointBytes || bytes[0] != 0x04) {
    return Status::CryptoError("P256: malformed point encoding");
  }
  P256Point p;
  p.infinity = false;
  p.x = ScalarFromBytes(bytes.data() + 1);
  p.y = ScalarFromBytes(bytes.data() + 33);
  if (!IsOnCurve(p)) {
    return Status::CryptoError("P256: point not on curve");
  }
  return p;
}

Scalar256 P256::RandomScalar(SecureRandom* rng) {
  for (;;) {
    Bytes b = rng->RandomBytes(32);
    Scalar256 k = ScalarFromBytes(b.data());
    if (IsZeroFe(k)) continue;
    if (CompareFe(k, kN) >= 0) continue;
    return k;
  }
}

Bytes ScalarToBytes(const Scalar256& s) {
  Bytes out(32);
  for (int i = 0; i < 4; ++i) {
    u64 limb = s[3 - i];  // big-endian output
    for (int b = 0; b < 8; ++b) {
      out[static_cast<size_t>(8 * i + b)] =
          static_cast<uint8_t>(limb >> (56 - 8 * b));
    }
  }
  return out;
}

Scalar256 ScalarFromBytes(const uint8_t bytes[32]) {
  Scalar256 s{};
  for (int i = 0; i < 4; ++i) {
    u64 limb = 0;
    for (int b = 0; b < 8; ++b) {
      limb = (limb << 8) | bytes[8 * i + b];
    }
    s[3 - i] = limb;
  }
  return s;
}

}  // namespace crypto
}  // namespace shuffledp

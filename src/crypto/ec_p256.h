// NIST P-256 (secp256r1) elliptic-curve arithmetic.
//
// The sequential-shuffle protocol (SS) wraps per-report AES keys with
// elliptic-curve ElGamal over secp256r1 (paper §VII-A "Implementation").
// This is a from-scratch implementation: a fixed 4x64-limb field with
// Montgomery (CIOS) multiplication, Jacobian point arithmetic with the
// a = -3 doubling formulas, and uncompressed SEC1 serialization.
//
// Scalar multiplication is tiered for the per-report hot path:
//
//  * ScalarBaseMult uses a fixed-base comb: the generator's multiples
//    2^(32h+64t) G are combined into two 16-entry tables (4 teeth x 64-bit
//    stride, split in halves), so k*G costs 31 doublings plus at most 64
//    mixed additions. The table lookup is a constant-time scan (every
//    entry is touched with masked selection).
//  * ScalarMult on a variable point uses width-5 wNAF with 8 precomputed
//    odd multiples {1,3,...,15}P: ~256 doublings plus ~43 signed mixed
//    additions. P256Precomputed caches the (batch-normalized) odd-multiple
//    table so repeated multiplications against one point — e.g. a batch of
//    ECIES reports to one recipient — skip the precomputation.
//  * Batch variants (ScalarBaseMultBatch, P256Precomputed::MultBatch)
//    convert all results Jacobian->affine with Montgomery's simultaneous
//    inversion: one field inversion per batch instead of one per point.
//  * ScalarMultReference / ScalarBaseMultReference keep the original
//    double-and-add ladder as an independent cross-check for tests.
//
// Aside from the fixed-base table scan, the implementation is not
// hardened against timing side channels: this library is a research
// simulation, not a TLS stack (the paper likewise assumes "no side
// channels such as timing information", §V-B).

#ifndef SHUFFLEDP_CRYPTO_EC_P256_H_
#define SHUFFLEDP_CRYPTO_EC_P256_H_

#include <array>
#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

class SecureRandom;

/// A 256-bit scalar (little-endian 64-bit limbs).
using Scalar256 = std::array<uint64_t, 4>;

/// A point on P-256 in affine coordinates, or the point at infinity.
struct P256Point {
  Scalar256 x{};
  Scalar256 y{};
  bool infinity = true;

  bool operator==(const P256Point& o) const {
    if (infinity != o.infinity) return false;
    if (infinity) return true;
    return x == o.x && y == o.y;
  }
};

/// P-256 group operations.
class P256 {
 public:
  static constexpr size_t kFieldBytes = 32;
  static constexpr size_t kPointBytes = 65;  // 0x04 || X || Y

  /// The standard base point G.
  static P256Point Generator();

  /// The group order n as little-endian limbs.
  static Scalar256 Order();

  /// Point addition (handles doubling and infinity).
  static P256Point Add(const P256Point& a, const P256Point& b);

  /// Scalar multiplication k * P (width-5 wNAF).
  static P256Point ScalarMult(const Scalar256& k, const P256Point& p);

  /// k * G via the fixed-base comb table.
  static P256Point ScalarBaseMult(const Scalar256& k);

  /// k_i * G for every scalar, sharing the comb table and batching the
  /// Jacobian->affine conversion (one inversion per call).
  static std::vector<P256Point> ScalarBaseMultBatch(
      const std::vector<Scalar256>& ks);

  /// Reference double-and-add ladder (the original implementation), kept
  /// as an independent oracle for cross-checking the comb/wNAF paths.
  static P256Point ScalarMultReference(const Scalar256& k, const P256Point& p);
  static P256Point ScalarBaseMultReference(const Scalar256& k);

  /// True iff `p` satisfies the curve equation (or is infinity).
  static bool IsOnCurve(const P256Point& p);

  /// Uncompressed SEC1 encoding (65 bytes). Pre: not infinity.
  static Bytes Serialize(const P256Point& p);

  /// Parses an uncompressed point and validates it is on the curve.
  static Result<P256Point> Parse(const Bytes& bytes);

  /// Uniform scalar in [1, n-1].
  static Scalar256 RandomScalar(SecureRandom* rng);
};

/// Reusable width-5 wNAF precomputation for one fixed point. Construction
/// builds (and batch-normalizes) the odd-multiple table once; Mult and
/// MultBatch then run with cheap mixed additions. Immutable after
/// construction and safe to share across threads.
class P256Precomputed {
 public:
  explicit P256Precomputed(const P256Point& p);

  const P256Point& point() const { return point_; }

  /// k * P.
  P256Point Mult(const Scalar256& k) const;

  /// k_i * P for every scalar, with one batched affine conversion.
  std::vector<P256Point> MultBatch(const std::vector<Scalar256>& ks) const;

  // Odd multiples {1,3,...,15}P in affine coordinates, Montgomery domain.
  // Public only so the implementation can convert to its internal field
  // type; not part of the supported API surface.
  struct Entry {
    Scalar256 x;
    Scalar256 y;
  };

 private:
  P256Point point_;
  std::array<Entry, 8> odd_{};
  bool infinity_ = true;
};

/// Converts a scalar to/from 32 big-endian bytes.
Bytes ScalarToBytes(const Scalar256& s);
Scalar256 ScalarFromBytes(const uint8_t bytes[32]);

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_EC_P256_H_

// NIST P-256 (secp256r1) elliptic-curve arithmetic.
//
// The sequential-shuffle protocol (SS) wraps per-report AES keys with
// elliptic-curve ElGamal over secp256r1 (paper §VII-A "Implementation").
// This is a from-scratch implementation: a fixed 4x64-limb field with
// Montgomery (CIOS) multiplication, Jacobian point arithmetic with the
// a = -3 doubling formulas, and uncompressed SEC1 serialization.
//
// Not constant-time: this library is a research simulation, not a TLS
// stack; timing side channels are out of scope (the paper likewise assumes
// "no side channels such as timing information", §V-B).

#ifndef SHUFFLEDP_CRYPTO_EC_P256_H_
#define SHUFFLEDP_CRYPTO_EC_P256_H_

#include <array>
#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

class SecureRandom;

/// A 256-bit scalar (little-endian 64-bit limbs).
using Scalar256 = std::array<uint64_t, 4>;

/// A point on P-256 in affine coordinates, or the point at infinity.
struct P256Point {
  Scalar256 x{};
  Scalar256 y{};
  bool infinity = true;

  bool operator==(const P256Point& o) const {
    if (infinity != o.infinity) return false;
    if (infinity) return true;
    return x == o.x && y == o.y;
  }
};

/// P-256 group operations.
class P256 {
 public:
  static constexpr size_t kFieldBytes = 32;
  static constexpr size_t kPointBytes = 65;  // 0x04 || X || Y

  /// The standard base point G.
  static P256Point Generator();

  /// The group order n as little-endian limbs.
  static Scalar256 Order();

  /// Point addition (handles doubling and infinity).
  static P256Point Add(const P256Point& a, const P256Point& b);

  /// Scalar multiplication k * P (double-and-add).
  static P256Point ScalarMult(const Scalar256& k, const P256Point& p);

  /// k * G.
  static P256Point ScalarBaseMult(const Scalar256& k);

  /// True iff `p` satisfies the curve equation (or is infinity).
  static bool IsOnCurve(const P256Point& p);

  /// Uncompressed SEC1 encoding (65 bytes). Pre: not infinity.
  static Bytes Serialize(const P256Point& p);

  /// Parses an uncompressed point and validates it is on the curve.
  static Result<P256Point> Parse(const Bytes& bytes);

  /// Uniform scalar in [1, n-1].
  static Scalar256 RandomScalar(SecureRandom* rng);
};

/// Converts a scalar to/from 32 big-endian bytes.
Bytes ScalarToBytes(const Scalar256& s);
Scalar256 ScalarFromBytes(const uint8_t bytes[32]);

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_EC_P256_H_

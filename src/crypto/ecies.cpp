#include "crypto/ecies.h"

#include <cstring>

#include "crypto/aes.h"
#include "crypto/sha256.h"

namespace shuffledp {
namespace crypto {

EciesKeyPair EciesGenerateKeyPair(SecureRandom* rng) {
  EciesKeyPair kp;
  kp.private_key = P256::RandomScalar(rng);
  kp.public_key = P256::ScalarBaseMult(kp.private_key);
  return kp;
}

namespace {

// Derives (key, iv) from the shared ECDH point.
void DeriveKeyIv(const P256Point& shared, std::array<uint8_t, 16>* key,
                 std::array<uint8_t, 16>* iv) {
  Bytes encoded = P256::Serialize(shared);
  auto digest = Sha256::Hash(encoded.data(), encoded.size());
  std::memcpy(key->data(), digest.data(), 16);
  std::memcpy(iv->data(), digest.data() + 16, 16);
}

}  // namespace

Bytes EciesEncrypt(const P256Point& recipient, const Bytes& plaintext,
                   SecureRandom* rng) {
  Scalar256 ephemeral = P256::RandomScalar(rng);
  P256Point r_point = P256::ScalarBaseMult(ephemeral);
  P256Point shared = P256::ScalarMult(ephemeral, recipient);

  std::array<uint8_t, 16> key, iv;
  DeriveKeyIv(shared, &key, &iv);

  Bytes out = P256::Serialize(r_point);
  Bytes ct = AesCbcEncrypt(key, iv, plaintext);
  out.insert(out.end(), ct.begin(), ct.end());
  return out;
}

Result<Bytes> EciesDecrypt(const Scalar256& private_key, const Bytes& blob) {
  if (blob.size() < P256::kPointBytes + 32) {
    return Status::CryptoError("ECIES: blob too short");
  }
  Bytes point_bytes(blob.begin(), blob.begin() + P256::kPointBytes);
  auto r_point = P256::Parse(point_bytes);
  if (!r_point.ok()) return r_point.status();

  P256Point shared = P256::ScalarMult(private_key, *r_point);
  if (shared.infinity) {
    return Status::CryptoError("ECIES: degenerate shared point");
  }
  std::array<uint8_t, 16> key, iv;
  DeriveKeyIv(shared, &key, &iv);

  Bytes ct(blob.begin() + P256::kPointBytes, blob.end());
  return AesCbcDecrypt(key, ct);
}

Bytes OnionEncrypt(const std::vector<P256Point>& layers, const Bytes& payload,
                   SecureRandom* rng) {
  Bytes blob = payload;
  // Innermost layer first: the last recipient peels last.
  for (size_t i = layers.size(); i-- > 0;) {
    blob = EciesEncrypt(layers[i], blob, rng);
  }
  return blob;
}

Result<Bytes> OnionPeel(const Scalar256& private_key, const Bytes& blob) {
  return EciesDecrypt(private_key, blob);
}

}  // namespace crypto
}  // namespace shuffledp

#include "crypto/ecies.h"

#include <cstring>

#include "crypto/aes.h"
#include "crypto/sha256.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace crypto {

EciesKeyPair EciesGenerateKeyPair(SecureRandom* rng) {
  EciesKeyPair kp;
  kp.private_key = P256::RandomScalar(rng);
  kp.public_key = P256::ScalarBaseMult(kp.private_key);
  return kp;
}

namespace {

// Derives (key, iv) from the shared ECDH point.
void DeriveKeyIv(const P256Point& shared, std::array<uint8_t, 16>* key,
                 std::array<uint8_t, 16>* iv) {
  Bytes encoded = P256::Serialize(shared);
  auto digest = Sha256::Hash(encoded.data(), encoded.size());
  std::memcpy(key->data(), digest.data(), 16);
  std::memcpy(iv->data(), digest.data() + 16, 16);
}

// Assembles R || IV || CBC(ciphertext) from the already-computed points.
Bytes AssembleBlob(const P256Point& r_point, const P256Point& shared,
                   const Bytes& plaintext) {
  std::array<uint8_t, 16> key, iv;
  DeriveKeyIv(shared, &key, &iv);
  Bytes out = P256::Serialize(r_point);
  Bytes ct = AesCbcEncrypt(key, iv, plaintext);
  out.insert(out.end(), ct.begin(), ct.end());
  return out;
}

}  // namespace

Bytes EciesEncrypt(const P256Point& recipient, const Bytes& plaintext,
                   SecureRandom* rng) {
  Scalar256 ephemeral = P256::RandomScalar(rng);
  P256Point r_point = P256::ScalarBaseMult(ephemeral);
  P256Point shared = P256::ScalarMult(ephemeral, recipient);
  return AssembleBlob(r_point, shared, plaintext);
}

std::vector<Bytes> EciesEncryptBatch(const P256Point& recipient,
                                     const std::vector<Bytes>& plaintexts,
                                     SecureRandom* rng, ThreadPool* pool) {
  const size_t n = plaintexts.size();
  std::vector<Bytes> out(n);
  if (n == 0) return out;

  // Ephemeral scalars come from the caller's rng serially (SecureRandom is
  // not thread-safe); all the heavy arithmetic below is embarrassingly
  // parallel over disjoint chunks.
  std::vector<Scalar256> ephemerals(n);
  for (size_t i = 0; i < n; ++i) ephemerals[i] = P256::RandomScalar(rng);

  // One wNAF table for the recipient, shared by every report in the batch.
  P256Precomputed recipient_table(recipient);

  auto encrypt_range = [&](uint64_t lo, uint64_t hi) {
    std::vector<Scalar256> ks(ephemerals.begin() + lo, ephemerals.begin() + hi);
    // Batched affine conversions: one simultaneous inversion for the
    // ephemeral public points, one for the shared secrets.
    std::vector<P256Point> r_points = P256::ScalarBaseMultBatch(ks);
    std::vector<P256Point> shared = recipient_table.MultBatch(ks);
    for (uint64_t i = lo; i < hi; ++i) {
      out[i] = AssembleBlob(r_points[i - lo], shared[i - lo], plaintexts[i]);
    }
  };

  if (pool != nullptr && pool->num_threads() > 1 && n > 1) {
    pool->ParallelFor(0, n, encrypt_range);
  } else {
    encrypt_range(0, n);
  }
  return out;
}

Result<Bytes> EciesDecrypt(const Scalar256& private_key, const Bytes& blob) {
  if (blob.size() < P256::kPointBytes + 32) {
    return Status::CryptoError("ECIES: blob too short");
  }
  Bytes point_bytes(blob.begin(), blob.begin() + P256::kPointBytes);
  auto r_point = P256::Parse(point_bytes);
  if (!r_point.ok()) return r_point.status();

  P256Point shared = P256::ScalarMult(private_key, *r_point);
  if (shared.infinity) {
    return Status::CryptoError("ECIES: degenerate shared point");
  }
  std::array<uint8_t, 16> key, iv;
  DeriveKeyIv(shared, &key, &iv);

  Bytes ct(blob.begin() + P256::kPointBytes, blob.end());
  return AesCbcDecrypt(key, ct);
}

Bytes OnionEncrypt(const std::vector<P256Point>& layers, const Bytes& payload,
                   SecureRandom* rng) {
  Bytes blob = payload;
  // Innermost layer first: the last recipient peels last.
  for (size_t i = layers.size(); i-- > 0;) {
    blob = EciesEncrypt(layers[i], blob, rng);
  }
  return blob;
}

std::vector<Bytes> OnionEncryptBatch(const std::vector<P256Point>& layers,
                                     const std::vector<Bytes>& payloads,
                                     SecureRandom* rng, ThreadPool* pool) {
  std::vector<Bytes> blobs = payloads;
  for (size_t i = layers.size(); i-- > 0;) {
    blobs = EciesEncryptBatch(layers[i], blobs, rng, pool);
  }
  return blobs;
}

Result<Bytes> OnionPeel(const Scalar256& private_key, const Bytes& blob) {
  return EciesDecrypt(private_key, blob);
}

}  // namespace crypto
}  // namespace shuffledp

// ECIES hybrid public-key encryption over P-256.
//
// Instantiates the paper's "generate a random AES key, encrypt the message
// with AES-128-CBC, and encrypt the AES key with ElGamal over secp256r1":
// an ephemeral ECDH share plays the ElGamal role, SHA-256 of the shared
// point derives the AES key and IV. Wire format:
//
//   0x04 || R.x || R.y   (65 bytes, ephemeral public point)
//   IV || CBC ciphertext (16 + padded length)
//
// The per-report hot path is the batched encryptor: EciesEncryptBatch
// reuses the generator's fixed-base comb for every ephemeral key, builds
// the recipient's wNAF table once per batch, converts all ephemeral and
// shared points to affine with one Montgomery simultaneous inversion per
// chunk, and optionally fans chunks out over a ThreadPool. OnionEncrypt /
// OnionEncryptBatch wrap layered recipients for the sequential-shuffle
// protocol. Single-shot EciesEncrypt remains byte-compatible.

#ifndef SHUFFLEDP_CRYPTO_ECIES_H_
#define SHUFFLEDP_CRYPTO_ECIES_H_

#include <vector>

#include "crypto/ec_p256.h"
#include "crypto/secure_random.h"
#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {

class ThreadPool;

namespace crypto {

/// An ECIES key pair.
struct EciesKeyPair {
  Scalar256 private_key;
  P256Point public_key;
};

/// Generates a fresh key pair.
EciesKeyPair EciesGenerateKeyPair(SecureRandom* rng);

/// Encrypts `plaintext` to `recipient`. Fresh ephemeral key per call.
Bytes EciesEncrypt(const P256Point& recipient, const Bytes& plaintext,
                   SecureRandom* rng);

/// Encrypts each plaintext to `recipient` with an independent ephemeral
/// key (output[i] decrypts exactly like EciesEncrypt(recipient,
/// plaintexts[i])), amortizing the elliptic-curve precomputation across
/// the batch. Ephemeral scalars are drawn serially from `rng`; the point
/// arithmetic and symmetric work run on `pool` when one is supplied.
std::vector<Bytes> EciesEncryptBatch(const P256Point& recipient,
                                     const std::vector<Bytes>& plaintexts,
                                     SecureRandom* rng,
                                     ThreadPool* pool = nullptr);

/// Decrypts a blob produced by EciesEncrypt.
Result<Bytes> EciesDecrypt(const Scalar256& private_key, const Bytes& blob);

/// Ciphertext expansion: bytes added on top of the padded plaintext.
/// 65 (point) + 16 (IV); CBC padding adds 1..16 more.
constexpr size_t kEciesOverhead = 65 + 16;

/// Onion encryption: encrypts `payload` under `layers` back-to-front so
/// that layers[0] peels first (the first shuffler), layers.back() last
/// (the server).
Bytes OnionEncrypt(const std::vector<P256Point>& layers, const Bytes& payload,
                   SecureRandom* rng);

/// Onion-encrypts every payload, batching each layer's ECIES pass across
/// all reports (one recipient table + batched affine conversions per
/// layer). Equivalent to mapping OnionEncrypt over `payloads`.
std::vector<Bytes> OnionEncryptBatch(const std::vector<P256Point>& layers,
                                     const std::vector<Bytes>& payloads,
                                     SecureRandom* rng,
                                     ThreadPool* pool = nullptr);

/// Removes one onion layer.
Result<Bytes> OnionPeel(const Scalar256& private_key, const Bytes& blob);

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_ECIES_H_

// ECIES hybrid public-key encryption over P-256.
//
// Instantiates the paper's "generate a random AES key, encrypt the message
// with AES-128-CBC, and encrypt the AES key with ElGamal over secp256r1":
// an ephemeral ECDH share plays the ElGamal role, SHA-256 of the shared
// point derives the AES key and IV. Wire format:
//
//   0x04 || R.x || R.y   (65 bytes, ephemeral public point)
//   IV || CBC ciphertext (16 + padded length)

#ifndef SHUFFLEDP_CRYPTO_ECIES_H_
#define SHUFFLEDP_CRYPTO_ECIES_H_

#include "crypto/ec_p256.h"
#include "crypto/secure_random.h"
#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

/// An ECIES key pair.
struct EciesKeyPair {
  Scalar256 private_key;
  P256Point public_key;
};

/// Generates a fresh key pair.
EciesKeyPair EciesGenerateKeyPair(SecureRandom* rng);

/// Encrypts `plaintext` to `recipient`. Fresh ephemeral key per call.
Bytes EciesEncrypt(const P256Point& recipient, const Bytes& plaintext,
                   SecureRandom* rng);

/// Decrypts a blob produced by EciesEncrypt.
Result<Bytes> EciesDecrypt(const Scalar256& private_key, const Bytes& blob);

/// Ciphertext expansion: bytes added on top of the padded plaintext.
/// 65 (point) + 16 (IV); CBC padding adds 1..16 more.
constexpr size_t kEciesOverhead = 65 + 16;

/// Onion encryption: encrypts `payload` under `layers` back-to-front so
/// that layers[0] peels first (the first shuffler), layers.back() last
/// (the server).
Bytes OnionEncrypt(const std::vector<P256Point>& layers, const Bytes& payload,
                   SecureRandom* rng);

/// Removes one onion layer.
Result<Bytes> OnionPeel(const Scalar256& private_key, const Bytes& blob);

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_ECIES_H_

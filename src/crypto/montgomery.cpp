#include "crypto/montgomery.h"

#include <cassert>

namespace shuffledp {
namespace crypto {

namespace {

using u128 = unsigned __int128;

uint64_t NegInverse64(uint64_t m0) {
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - m0 * inv;  // Newton: inv = m0^-1
  return ~inv + 1;
}

}  // namespace

Result<MontgomeryCtx> MontgomeryCtx::Create(const BigInt& modulus) {
  if (modulus.IsZero() || !modulus.IsOdd() || modulus == BigInt(1)) {
    return Status::InvalidArgument("Montgomery: modulus must be odd and > 1");
  }
  MontgomeryCtx ctx;
  ctx.modulus_ = modulus;
  ctx.limbs_ = modulus.limb_count();
  ctx.mod_limbs_.resize(ctx.limbs_);
  for (size_t i = 0; i < ctx.limbs_; ++i) {
    ctx.mod_limbs_[i] = modulus.limb(i);
  }
  ctx.mu_ = NegInverse64(modulus.limb(0));
  // R mod m and R^2 mod m via the generic divider (one-time cost).
  BigInt r = BigInt(1).ShiftLeft(64 * ctx.limbs_);
  ctx.one_mont_ = r.Mod(modulus);
  ctx.rr_ = ctx.one_mont_.Mul(ctx.one_mont_).Mod(modulus);
  return ctx;
}

std::vector<uint64_t> MontgomeryCtx::Pad(const BigInt& a) const {
  assert(a < modulus_);
  std::vector<uint64_t> out(limbs_);
  for (size_t i = 0; i < limbs_; ++i) out[i] = a.limb(i);
  return out;
}

BigInt MontgomeryCtx::FromLimbs(const std::vector<uint64_t>& limbs) {
  return BigInt::FromLimbsLittleEndian(limbs);
}

void MontgomeryCtx::MulInto(const std::vector<uint64_t>& a,
                            const std::vector<uint64_t>& b,
                            std::vector<uint64_t>* out) const {
  const size_t n = limbs_;
  std::vector<uint64_t> t(n + 2, 0);
  for (size_t i = 0; i < n; ++i) {
    // t += a * b[i]
    u128 carry = 0;
    const uint64_t bi = b[i];
    for (size_t j = 0; j < n; ++j) {
      u128 cur = static_cast<u128>(a[j]) * bi + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    u128 cur = static_cast<u128>(t[n]) + carry;
    t[n] = static_cast<uint64_t>(cur);
    t[n + 1] = static_cast<uint64_t>(cur >> 64);

    // Reduce one limb: t = (t + m * ((t[0] * mu) mod 2^64)) / 2^64.
    const uint64_t m = t[0] * mu_;
    carry = (static_cast<u128>(m) * mod_limbs_[0] + t[0]) >> 64;
    for (size_t j = 1; j < n; ++j) {
      u128 cur2 = static_cast<u128>(m) * mod_limbs_[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur2);
      carry = cur2 >> 64;
    }
    u128 cur3 = static_cast<u128>(t[n]) + carry;
    t[n - 1] = static_cast<uint64_t>(cur3);
    t[n] = t[n + 1] + static_cast<uint64_t>(cur3 >> 64);
    t[n + 1] = 0;
  }

  // Conditional final subtraction (result < 2m is guaranteed).
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = n; i-- > 0;) {
      if (t[i] != mod_limbs_[i]) {
        ge = t[i] > mod_limbs_[i];
        break;
      }
    }
  }
  out->assign(t.begin(), t.begin() + static_cast<ptrdiff_t>(n));
  if (ge) {
    u128 borrow = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 diff = static_cast<u128>((*out)[i]) - mod_limbs_[i] - borrow;
      (*out)[i] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) & 1;
    }
  }
}

BigInt MontgomeryCtx::MontMul(const BigInt& a, const BigInt& b) const {
  std::vector<uint64_t> out;
  MulInto(Pad(a), Pad(b), &out);
  return FromLimbs(out);
}

BigInt MontgomeryCtx::ToMont(const BigInt& a) const {
  return MontMul(a.Mod(modulus_), rr_);
}

BigInt MontgomeryCtx::FromMont(const BigInt& a) const {
  return MontMul(a, BigInt(1));
}

BigInt MontgomeryCtx::ModExp(const BigInt& base,
                             const BigInt& exponent) const {
  if (exponent.IsZero()) return BigInt(1).Mod(modulus_);
  // 4-bit fixed window over Montgomery-form limb vectors.
  std::vector<std::vector<uint64_t>> table(16);
  table[0] = Pad(one_mont_);
  std::vector<uint64_t> base_m = Pad(ToMont(base));
  table[1] = base_m;
  for (int i = 2; i < 16; ++i) {
    MulInto(table[i - 1], base_m, &table[i]);
  }

  const size_t bits = exponent.BitLength();
  const size_t windows = (bits + 3) / 4;
  std::vector<uint64_t> acc = table[0];
  std::vector<uint64_t> tmp;
  for (size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) {
      MulInto(acc, acc, &tmp);
      acc.swap(tmp);
    }
    uint64_t idx = 0;
    for (int b = 3; b >= 0; --b) {
      idx = (idx << 1) |
            (exponent.GetBit(w * 4 + static_cast<size_t>(b)) ? 1 : 0);
    }
    if (idx != 0) {
      MulInto(acc, table[idx], &tmp);
      acc.swap(tmp);
    }
  }
  return FromMont(FromLimbs(acc));
}

}  // namespace crypto
}  // namespace shuffledp

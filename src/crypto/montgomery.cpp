#include "crypto/montgomery.h"

#include <algorithm>
#include <cassert>

namespace shuffledp {
namespace crypto {

namespace {

using u128 = unsigned __int128;

uint64_t NegInverse64(uint64_t m0) {
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - m0 * inv;  // Newton: inv = m0^-1
  return ~inv + 1;
}

// Sliding-window width by exponent size: table build (2^(w-1) multiplies)
// must amortize over ~ebits/(w+1) window multiplies.
unsigned WindowWidth(size_t ebits) {
  if (ebits <= 24) return 2;
  if (ebits <= 80) return 3;
  if (ebits <= 240) return 4;
  if (ebits <= 768) return 5;
  return 6;
}

}  // namespace

Result<MontgomeryCtx> MontgomeryCtx::Create(const BigInt& modulus) {
  if (modulus.IsZero() || !modulus.IsOdd() || modulus == BigInt(1)) {
    return Status::InvalidArgument("Montgomery: modulus must be odd and > 1");
  }
  MontgomeryCtx ctx;
  ctx.modulus_ = modulus;
  ctx.limbs_ = modulus.limb_count();
  ctx.mod_limbs_.resize(ctx.limbs_);
  for (size_t i = 0; i < ctx.limbs_; ++i) {
    ctx.mod_limbs_[i] = modulus.limb(i);
  }
  ctx.mod_digits_.resize(2 * ctx.limbs_);
  for (size_t i = 0; i < ctx.limbs_; ++i) {
    ctx.mod_digits_[2 * i] = static_cast<uint32_t>(ctx.mod_limbs_[i]);
    ctx.mod_digits_[2 * i + 1] = static_cast<uint32_t>(ctx.mod_limbs_[i] >> 32);
  }
  ctx.mu_ = NegInverse64(modulus.limb(0));
  // R mod m and R^2 mod m via the generic divider (one-time cost).
  BigInt r = BigInt(1).ShiftLeft(64 * ctx.limbs_);
  ctx.one_mont_ = r.Mod(modulus);
  ctx.rr_ = ctx.one_mont_.Mul(ctx.one_mont_).Mod(modulus);
  ctx.one_mont_limbs_.resize(ctx.limbs_);
  ctx.rr_limbs_.resize(ctx.limbs_);
  for (size_t i = 0; i < ctx.limbs_; ++i) {
    ctx.one_mont_limbs_[i] = ctx.one_mont_.limb(i);
    ctx.rr_limbs_[i] = ctx.rr_.limb(i);
  }
  return ctx;
}

void MontgomeryCtx::ReduceOnce(const uint64_t* v, uint64_t hi,
                               uint64_t* out) const {
  const size_t n = limbs_;
  bool ge = hi != 0;
  if (!ge) {
    ge = true;
    for (size_t i = n; i-- > 0;) {
      if (v[i] != mod_limbs_[i]) {
        ge = v[i] > mod_limbs_[i];
        break;
      }
    }
  }
  if (!ge) {
    if (out != v) std::copy(v, v + n, out);
    return;
  }
  u128 borrow = 0;
  for (size_t i = 0; i < n; ++i) {
    u128 diff = static_cast<u128>(v[i]) - mod_limbs_[i] - borrow;
    out[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) & 1;
  }
}

void MontgomeryCtx::MulInto(const uint64_t* a, const uint64_t* b,
                            uint64_t* out, Scratch* scratch) const {
  const size_t n = limbs_;
  uint64_t* t = scratch->buf_.data();  // uses n + 1 words
  std::fill_n(t, n + 1, 0);
  const uint64_t* mod = mod_limbs_.data();

  // Fused CIOS: one inner loop carries both the a*b[i] accumulation (c1
  // chain) and the m*mod reduction (c2 chain); each outer step shifts t
  // down one word. Invariant: t[0..n] < 2m at every outer-step boundary.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bi = b[i];
    u128 x = static_cast<u128>(a[0]) * bi + t[0];
    const uint64_t m = static_cast<uint64_t>(x) * mu_;
    u128 y = static_cast<u128>(m) * mod[0] + static_cast<uint64_t>(x);
    uint64_t c1 = static_cast<uint64_t>(x >> 64);
    uint64_t c2 = static_cast<uint64_t>(y >> 64);
    for (size_t j = 1; j < n; ++j) {
      x = static_cast<u128>(a[j]) * bi + t[j] + c1;
      c1 = static_cast<uint64_t>(x >> 64);
      y = static_cast<u128>(m) * mod[j] + static_cast<uint64_t>(x) + c2;
      t[j - 1] = static_cast<uint64_t>(y);
      c2 = static_cast<uint64_t>(y >> 64);
    }
    u128 z = static_cast<u128>(t[n]) + c1 + c2;
    t[n - 1] = static_cast<uint64_t>(z);
    t[n] = static_cast<uint64_t>(z >> 64);
  }
  ReduceOnce(t, t[n], out);
}

void MontgomeryCtx::RedcInto(uint64_t* t, uint64_t* out) const {
  const size_t n = limbs_;
  const uint64_t* mod = mod_limbs_.data();
  // SOS reduction over the 2n+1-word buffer: zero the low n words one at
  // a time, folding each carry into the upper half.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t m = t[i] * mu_;
    u128 carry = 0;
    for (size_t j = 0; j < n; ++j) {
      u128 cur = static_cast<u128>(m) * mod[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    uint64_t c = static_cast<uint64_t>(carry);
    for (size_t k = i + n; c != 0 && k <= 2 * n; ++k) {
      u128 cur = static_cast<u128>(t[k]) + c;
      t[k] = static_cast<uint64_t>(cur);
      c = static_cast<uint64_t>(cur >> 64);
    }
  }
  ReduceOnce(t + n, t[2 * n], out);
}

void MontgomeryCtx::SqrInto(const uint64_t* a, uint64_t* out,
                            Scratch* scratch) const {
  const size_t n = limbs_;
  uint64_t* t = scratch->buf_.data();  // uses 2n + 1 words
  std::fill_n(t, 2 * n + 1, 0);

  // Off-diagonal products a[i]*a[j], i < j (half the schoolbook work).
  for (size_t i = 0; i + 1 < n; ++i) {
    const uint64_t ai = a[i];
    u128 carry = 0;
    for (size_t j = i + 1; j < n; ++j) {
      u128 cur = static_cast<u128>(ai) * a[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    t[i + n] = static_cast<uint64_t>(carry);
  }
  // Double, then add the diagonal squares a[i]^2 at word 2i.
  uint64_t shift_carry = 0;
  for (size_t k = 0; k < 2 * n; ++k) {
    uint64_t v = t[k];
    t[k] = (v << 1) | shift_carry;
    shift_carry = v >> 63;
  }
  t[2 * n] = shift_carry;  // a^2 < 2^(128n), so this stays 0
  uint64_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    u128 sq = static_cast<u128>(a[i]) * a[i];
    u128 lo = static_cast<u128>(t[2 * i]) + static_cast<uint64_t>(sq) + c;
    t[2 * i] = static_cast<uint64_t>(lo);
    u128 hi = static_cast<u128>(t[2 * i + 1]) +
              static_cast<uint64_t>(sq >> 64) +
              static_cast<uint64_t>(lo >> 64);
    t[2 * i + 1] = static_cast<uint64_t>(hi);
    c = static_cast<uint64_t>(hi >> 64);
  }
  t[2 * n] += c;

  RedcInto(t, out);
}

void MontgomeryCtx::ToMontInto(const BigInt& a, uint64_t* out,
                               Scratch* scratch) const {
  const size_t n = limbs_;
  const BigInt reduced = a < modulus_ ? a : a.Mod(modulus_);
  for (size_t i = 0; i < n; ++i) out[i] = reduced.limb(i);
  MulInto(out, rr_limbs_.data(), out, scratch);
}

BigInt MontgomeryCtx::FromMontLimbs(const uint64_t* a,
                                    Scratch* scratch) const {
  const size_t n = limbs_;
  // REDC([a, 0..]) = a * R^-1 mod m. The scratch buffer doubles as the
  // 2n+1-word REDC workspace, so copy a into its low half first.
  uint64_t* t = scratch->buf_.data();
  std::copy(a, a + n, t);
  std::fill_n(t + n, n + 1, 0);
  std::vector<uint64_t> out(n);
  RedcInto(t, out.data());
  return BigInt::FromLimbsLittleEndian(std::move(out));
}

MontgomeryCtx::Scratch& MontgomeryCtx::ThreadScratch() const {
  thread_local Scratch scratch;
  scratch.EnsureFor(*this);
  return scratch;
}

std::vector<uint64_t>& MontgomeryCtx::ThreadOperand(int which) const {
  thread_local std::vector<uint64_t> ops[2];
  std::vector<uint64_t>& op = ops[which];
  if (op.size() < limbs_) op.resize(limbs_);
  return op;
}

BigInt MontgomeryCtx::MontMul(const BigInt& a, const BigInt& b) const {
  const size_t n = limbs_;
  assert(a < modulus_ && b < modulus_);
  std::vector<uint64_t>& pa = ThreadOperand(0);
  std::vector<uint64_t>& pb = ThreadOperand(1);
  for (size_t i = 0; i < n; ++i) {
    pa[i] = a.limb(i);
    pb[i] = b.limb(i);
  }
  std::vector<uint64_t> out(n);
  MulInto(pa.data(), pb.data(), out.data(), &ThreadScratch());
  return BigInt::FromLimbsLittleEndian(std::move(out));
}

BigInt MontgomeryCtx::MontSqr(const BigInt& a) const {
  const size_t n = limbs_;
  assert(a < modulus_);
  std::vector<uint64_t>& pa = ThreadOperand(0);
  for (size_t i = 0; i < n; ++i) pa[i] = a.limb(i);
  std::vector<uint64_t> out(n);
  SqrInto(pa.data(), out.data(), &ThreadScratch());
  return BigInt::FromLimbsLittleEndian(std::move(out));
}

BigInt MontgomeryCtx::ToMont(const BigInt& a) const {
  std::vector<uint64_t> out(limbs_);
  ToMontInto(a, out.data(), &ThreadScratch());
  return BigInt::FromLimbsLittleEndian(std::move(out));
}

BigInt MontgomeryCtx::FromMont(const BigInt& a) const {
  const size_t n = limbs_;
  assert(a < modulus_);
  std::vector<uint64_t>& pa = ThreadOperand(0);
  for (size_t i = 0; i < n; ++i) pa[i] = a.limb(i);
  return FromMontLimbs(pa.data(), &ThreadScratch());
}

BigInt MontgomeryCtx::ModMul(const BigInt& a, const BigInt& b) const {
  const size_t n = limbs_;
  const BigInt ra = a < modulus_ ? a : a.Mod(modulus_);
  const BigInt rb = b < modulus_ ? b : b.Mod(modulus_);
  std::vector<uint64_t>& pb = ThreadOperand(1);
  for (size_t i = 0; i < n; ++i) pb[i] = rb.limb(i);
  std::vector<uint64_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = ra.limb(i);
  // a*b*R^-1, then * R^2 * R^-1: two divisions-free passes total, and
  // only the returned BigInt's storage is allocated.
  Scratch& scratch = ThreadScratch();
  MulInto(out.data(), pb.data(), out.data(), &scratch);
  MulInto(out.data(), rr_limbs_.data(), out.data(), &scratch);
  return BigInt::FromLimbsLittleEndian(std::move(out));
}

BigInt MontgomeryCtx::ModExp(const BigInt& base,
                             const BigInt& exponent) const {
  if (exponent.IsZero()) return BigInt(1).Mod(modulus_);
  const BigInt b = base < modulus_ ? base : base.Mod(modulus_);
  if (b.IsZero()) return BigInt();
  const size_t n = limbs_;
  Scratch scratch(*this);

  const size_t ebits = exponent.BitLength();
  const unsigned w = WindowWidth(ebits);
  const size_t tsize = size_t{1} << (w - 1);

  // Odd-power table in Montgomery form: tbl[k] = b^(2k+1).
  std::vector<std::vector<uint64_t>> tbl(tsize, std::vector<uint64_t>(n));
  ToMontInto(b, tbl[0].data(), &scratch);
  if (tsize > 1) {
    std::vector<uint64_t> b2(n);
    SqrInto(tbl[0].data(), b2.data(), &scratch);
    for (size_t k = 1; k < tsize; ++k) {
      MulInto(tbl[k - 1].data(), b2.data(), tbl[k].data(), &scratch);
    }
  }

  std::vector<uint64_t> acc(n);
  bool have_acc = false;
  ptrdiff_t i = static_cast<ptrdiff_t>(ebits) - 1;
  while (i >= 0) {
    if (!exponent.GetBit(static_cast<size_t>(i))) {
      SqrInto(acc.data(), acc.data(), &scratch);
      --i;
      continue;
    }
    // Longest window [j, i] of width <= w ending on a set bit.
    ptrdiff_t j = i - static_cast<ptrdiff_t>(w) + 1;
    if (j < 0) j = 0;
    while (!exponent.GetBit(static_cast<size_t>(j))) ++j;
    uint64_t val = 0;
    for (ptrdiff_t k = i; k >= j; --k) {
      val = (val << 1) |
            (exponent.GetBit(static_cast<size_t>(k)) ? 1 : 0);
    }
    if (have_acc) {
      for (ptrdiff_t k = j; k <= i; ++k) {
        SqrInto(acc.data(), acc.data(), &scratch);
      }
      MulInto(acc.data(), tbl[val >> 1].data(), acc.data(), &scratch);
    } else {
      acc = tbl[val >> 1];
      have_acc = true;
    }
    i = j - 1;
  }
  return FromMontLimbs(acc.data(), &scratch);
}

}  // namespace crypto
}  // namespace shuffledp

// Generic Montgomery (CIOS) modular arithmetic for odd BigInt moduli.
//
// Paillier encryption/decryption is modexp-bound; the schoolbook
// ModMul+DivMod reduction in BigInt::ModExp costs a full Knuth-D division
// per multiply. Montgomery's reduction replaces the division with two
// limb-level multiply-accumulate passes, a ~3-6x speedup at the 1024- to
// 3072-bit sizes PEOS uses. BigInt::ModExp dispatches here automatically
// for odd moduli; this header is public for callers that want to amortize
// the per-modulus precomputation across many exponentiations.

#ifndef SHUFFLEDP_CRYPTO_MONTGOMERY_H_
#define SHUFFLEDP_CRYPTO_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "crypto/bigint.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

/// Precomputed Montgomery context for a fixed odd modulus.
class MontgomeryCtx {
 public:
  /// Pre: `modulus` is odd and > 1 (checked by Create).
  static Result<MontgomeryCtx> Create(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  /// a * R mod m (R = 2^(64*limbs)).
  BigInt ToMont(const BigInt& a) const;

  /// a * R^-1 mod m.
  BigInt FromMont(const BigInt& a) const;

  /// Montgomery product: a * b * R^-1 mod m (both in Montgomery form).
  BigInt MontMul(const BigInt& a, const BigInt& b) const;

  /// Full modular exponentiation base^exp mod m (plain-domain inputs and
  /// output; 4-bit fixed window).
  BigInt ModExp(const BigInt& base, const BigInt& exponent) const;

 private:
  MontgomeryCtx() = default;

  // CIOS kernel over padded limb vectors of length limbs_.
  void MulInto(const std::vector<uint64_t>& a,
               const std::vector<uint64_t>& b,
               std::vector<uint64_t>* out) const;

  std::vector<uint64_t> Pad(const BigInt& a) const;
  static BigInt FromLimbs(const std::vector<uint64_t>& limbs);

  BigInt modulus_;
  std::vector<uint64_t> mod_limbs_;
  size_t limbs_ = 0;
  uint64_t mu_ = 0;     // -m^{-1} mod 2^64
  BigInt rr_;           // R^2 mod m
  BigInt one_mont_;     // R mod m
};

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_MONTGOMERY_H_

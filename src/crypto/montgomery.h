// Generic Montgomery (CIOS) modular arithmetic for odd BigInt moduli.
//
// Paillier encryption/decryption is modexp-bound; the schoolbook
// ModMul+DivMod reduction in BigInt::ModExp costs a full Knuth-D division
// per multiply. Montgomery's reduction replaces the division with two
// limb-level multiply-accumulate passes, a ~3-6x speedup at the 1024- to
// 3072-bit sizes PEOS uses. BigInt::ModExp and BigInt::ModMul dispatch
// here automatically for odd moduli (through a per-thread context cache);
// this header is public for callers that want to pin the per-modulus
// precomputation to a key object (PaillierPublicKey/PaillierPrivateKey do)
// and for hot loops that need the allocation-free kernel layer.
//
// Kernel notes:
//  * MulInto is a fused single-pass CIOS (multiply and reduce share one
//    inner loop, one store per limb per outer step).
//  * SqrInto is a dedicated squaring kernel: half the off-diagonal
//    products plus a separate SOS reduction (~1.5 n^2 vs 2 n^2 word
//    multiplies), worth ~25% on the square-dominated modexp ladder.
//  * ModExp uses a sliding window (width 2-6 chosen from the exponent
//    size) over odd-power tables, all on caller-free scratch.

#ifndef SHUFFLEDP_CRYPTO_MONTGOMERY_H_
#define SHUFFLEDP_CRYPTO_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "crypto/bigint.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

/// Precomputed Montgomery context for a fixed odd modulus. Immutable after
/// Create, so one context can be shared across threads.
class MontgomeryCtx {
 public:
  /// Pre: `modulus` is odd and > 1 (checked by Create).
  static Result<MontgomeryCtx> Create(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  /// Limb width of the kernel layer (= modulus limb count).
  size_t limbs() const { return limbs_; }

  /// a * R mod m (R = 2^(64*limbs)).
  BigInt ToMont(const BigInt& a) const;

  /// a * R^-1 mod m.
  BigInt FromMont(const BigInt& a) const;

  /// Montgomery product: a * b * R^-1 mod m (both in Montgomery form).
  BigInt MontMul(const BigInt& a, const BigInt& b) const;

  /// Montgomery square: a^2 * R^-1 mod m (a in Montgomery form).
  BigInt MontSqr(const BigInt& a) const;

  /// Plain-domain modular product a * b mod m (inputs reduced internally;
  /// two Montgomery multiplies, no division).
  BigInt ModMul(const BigInt& a, const BigInt& b) const;

  /// Full modular exponentiation base^exp mod m (plain-domain input and
  /// output; sliding-window over Montgomery-form odd powers).
  BigInt ModExp(const BigInt& base, const BigInt& exponent) const;

  // --- Allocation-free kernel layer -------------------------------------
  //
  // Operands are raw little-endian limb vectors of exactly limbs() words
  // holding Montgomery-form values < modulus. `out` may alias any input
  // (kernels accumulate into scratch and write `out` last). Not part of
  // the stable API.

  /// Caller-owned scratch shared by every kernel (reuse across calls to
  /// avoid per-multiply allocation; cheap to construct, not thread-safe).
  class Scratch {
   public:
    explicit Scratch(const MontgomeryCtx& ctx) { EnsureFor(ctx); }

    /// Empty scratch for deferred sizing (thread_local workspaces that
    /// serve contexts of several widths); call EnsureFor before use.
    Scratch() = default;

    /// Grows the buffer to ctx's kernel requirement (never shrinks).
    void EnsureFor(const MontgomeryCtx& ctx) {
      if (buf_.size() < 2 * ctx.limbs() + 2) {
        buf_.resize(2 * ctx.limbs() + 2);
      }
    }

   private:
    friend class MontgomeryCtx;
    std::vector<uint64_t> buf_;
  };

  /// out = a * b * R^-1 mod m (fused CIOS).
  void MulInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
               Scratch* scratch) const;

  /// out = a^2 * R^-1 mod m (dedicated squaring + SOS reduction).
  void SqrInto(const uint64_t* a, uint64_t* out, Scratch* scratch) const;

  /// out = a * R mod m for plain-domain a (reduced mod m internally).
  void ToMontInto(const BigInt& a, uint64_t* out, Scratch* scratch) const;

  /// Montgomery-form limb vector -> plain-domain BigInt.
  BigInt FromMontLimbs(const uint64_t* a, Scratch* scratch) const;

  /// Montgomery form of 1 (R mod m) as a limbs()-long vector.
  const std::vector<uint64_t>& one_mont_limbs() const {
    return one_mont_limbs_;
  }

 private:
  MontgomeryCtx() = default;

  // Per-thread scratch + operand workspace backing the BigInt wrappers
  // (ModMul/MontMul/...), so the convenience layer stays allocation-free
  // apart from the returned BigInt. Kernels never call wrappers, so the
  // shared buffers cannot be re-entered.
  Scratch& ThreadScratch() const;
  std::vector<uint64_t>& ThreadOperand(int which) const;

  // REDC of the 2*limbs()+1-word buffer `t` (destroyed); out = t * R^-1
  // mod m, < modulus after the final conditional subtraction.
  void RedcInto(uint64_t* t, uint64_t* out) const;

  // Conditional subtract: out = v mod m for v < 2m given as n low words
  // plus the overflow word `hi` (0 or 1).
  void ReduceOnce(const uint64_t* v, uint64_t hi, uint64_t* out) const;

  BigInt modulus_;
  std::vector<uint64_t> mod_limbs_;
  std::vector<uint64_t> one_mont_limbs_;  // R mod m
  std::vector<uint64_t> rr_limbs_;        // R^2 mod m
  size_t limbs_ = 0;
  uint64_t mu_ = 0;  // -m^{-1} mod 2^64
  BigInt rr_;        // R^2 mod m
  BigInt one_mont_;  // R mod m
};

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_MONTGOMERY_H_

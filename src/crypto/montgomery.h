// Generic Montgomery (CIOS) modular arithmetic for odd BigInt moduli.
//
// Paillier encryption/decryption is modexp-bound; the schoolbook
// ModMul+DivMod reduction in BigInt::ModExp costs a full Knuth-D division
// per multiply. Montgomery's reduction replaces the division with two
// limb-level multiply-accumulate passes, a ~3-6x speedup at the 1024- to
// 3072-bit sizes PEOS uses. BigInt::ModExp and BigInt::ModMul dispatch
// here automatically for odd moduli (through a per-thread context cache);
// this header is public for callers that want to pin the per-modulus
// precomputation to a key object (PaillierPublicKey/PaillierPrivateKey do)
// and for hot loops that need the allocation-free kernel layer.
//
// Kernel notes:
//  * MulInto is a fused single-pass CIOS (multiply and reduce share one
//    inner loop, one store per limb per outer step).
//  * SqrInto is a dedicated squaring kernel: half the off-diagonal
//    products plus a separate SOS reduction (~1.5 n^2 vs 2 n^2 word
//    multiplies), worth ~25% on the square-dominated modexp ladder.
//  * ModExp uses a sliding window (width 2-6 chosen from the exponent
//    size) over odd-power tables, all on caller-free scratch.
//  * MulManyInto/SqrManyInto process K independent operand sets per pass
//    (interleaved carry chains portably, 32-bit-digit AVX2 lanes behind
//    runtime dispatch) — the multi-ciphertext fast path for workloads
//    like packed CRT decryption that always hold a column of
//    independent values.
//  * Ct* kernels are the constant-time tier for secret exponents: fixed
//    flow, branchless reduction, fixed-window ModExp with a full table
//    scan per window. See docs/ARCHITECTURE.md ("Crypto kernels") for
//    the exact ct contract.

#ifndef SHUFFLEDP_CRYPTO_MONTGOMERY_H_
#define SHUFFLEDP_CRYPTO_MONTGOMERY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/bigint.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

/// Batch-kernel implementation tiers (MulManyInto/SqrManyInto). The
/// portable tier interleaves K scalar CIOS carry chains in one loop; the
/// AVX2 tier runs 8 ciphertext lanes as two 4-lane vectors of 32-bit
/// digits. Same dispatch shape as AesBackend/ShaBackend in aes.h/sha256.h.
enum class MontBackend {
  kPortable,  ///< interleaved scalar lanes (always available)
  kAvx2,      ///< 8-lane 32-bit-digit CIOS via AVX2
};

/// Best backend the host supports. Honors SHUFFLEDP_FORCE_PORTABLE=1.
MontBackend BestMontBackend();

/// Backend the batch kernels currently use (defaults to BestMontBackend()).
MontBackend ActiveMontBackend();

/// Overrides the active backend; silently degrades to portable when the
/// host lacks the requested ISA. Returns the backend actually selected.
MontBackend SetMontBackend(MontBackend backend);

const char* MontBackendName(MontBackend backend);

/// Precomputed Montgomery context for a fixed odd modulus. Immutable after
/// Create, so one context can be shared across threads.
class MontgomeryCtx {
 public:
  /// Pre: `modulus` is odd and > 1 (checked by Create).
  static Result<MontgomeryCtx> Create(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  /// Limb width of the kernel layer (= modulus limb count).
  size_t limbs() const { return limbs_; }

  /// a * R mod m (R = 2^(64*limbs)).
  BigInt ToMont(const BigInt& a) const;

  /// a * R^-1 mod m.
  BigInt FromMont(const BigInt& a) const;

  /// Montgomery product: a * b * R^-1 mod m (both in Montgomery form).
  BigInt MontMul(const BigInt& a, const BigInt& b) const;

  /// Montgomery square: a^2 * R^-1 mod m (a in Montgomery form).
  BigInt MontSqr(const BigInt& a) const;

  /// Plain-domain modular product a * b mod m (inputs reduced internally;
  /// two Montgomery multiplies, no division).
  BigInt ModMul(const BigInt& a, const BigInt& b) const;

  /// Full modular exponentiation base^exp mod m (plain-domain input and
  /// output; sliding-window over Montgomery-form odd powers).
  /// Variable-time in the exponent — never use with secret exponents;
  /// CtModExp is the constant-time tier.
  BigInt ModExp(const BigInt& base, const BigInt& exponent) const;

  /// Constant-time modular exponentiation for secret exponents
  /// (plain-domain input and output). Fixed-window ladder with a full
  /// table scan per window: no secret-dependent branches or memory
  /// addresses. `exp_bits` is the public exponent-width bound driving the
  /// (uniform) schedule; 0 means "use exponent.BitLength()", which leaks
  /// only the bit length — pass an explicit bound when even that must
  /// stay hidden. exp_bits may exceed BitLength (high zero windows
  /// multiply by the Montgomery one, an identity).
  BigInt CtModExp(const BigInt& base, const BigInt& exponent,
                  size_t exp_bits = 0) const;

  // --- Allocation-free kernel layer -------------------------------------
  //
  // Operands are raw little-endian limb vectors of exactly limbs() words
  // holding Montgomery-form values < modulus. `out` may alias any input
  // (kernels accumulate into scratch and write `out` last). Not part of
  // the stable API.

  /// Caller-owned scratch shared by every kernel (reuse across calls to
  /// avoid per-multiply allocation; cheap to construct, not thread-safe).
  class Scratch {
   public:
    explicit Scratch(const MontgomeryCtx& ctx) { EnsureFor(ctx); }

    /// Empty scratch for deferred sizing (thread_local workspaces that
    /// serve contexts of several widths); call EnsureFor before use.
    Scratch() = default;

    /// Grows the buffer to ctx's kernel requirement (never shrinks).
    void EnsureFor(const MontgomeryCtx& ctx) { EnsureLanes(ctx, 1); }

    /// Grows the buffer to the batch-kernel requirement for `lanes`
    /// concurrent operand sets (never shrinks). The single-operand
    /// kernels need lanes = 1.
    void EnsureLanes(const MontgomeryCtx& ctx, size_t lanes) {
      const size_t need = lanes * (2 * ctx.limbs() + 2);
      if (buf_.size() < need) buf_.resize(need);
    }

   private:
    friend class MontgomeryCtx;
    std::vector<uint64_t> buf_;
  };

  /// out = a * b * R^-1 mod m (fused CIOS).
  void MulInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
               Scratch* scratch) const;

  /// out = a^2 * R^-1 mod m (dedicated squaring + SOS reduction).
  void SqrInto(const uint64_t* a, uint64_t* out, Scratch* scratch) const;

  // --- Batch kernels ----------------------------------------------------
  //
  // K independent operand sets per pass, dispatched through
  // ActiveMontBackend(). Results are bitwise identical to K scalar calls
  // (every kernel returns the canonical representative < m). Lane count k
  // is arbitrary (internally chunked); scratch must be sized with
  // EnsureLanes(ctx, min(k, kMaxBatchLanes)). Aliasing: out[l] may alias
  // the inputs of its own lane (in-place update), and one input buffer
  // may be shared by any number of lanes, but out[l] must not alias an
  // input of a *different* lane — lanes are processed in chunks, so an
  // earlier lane's output write could clobber a later lane's input. The
  // out pointers themselves must be pairwise distinct.

  /// Preferred lane-block size for callers that chunk their own columns.
  static constexpr size_t kMaxBatchLanes = 8;

  /// out[l] = a[l] * b[l] * R^-1 mod m for l in [0, k).
  void MulManyInto(size_t k, const uint64_t* const* a,
                   const uint64_t* const* b, uint64_t* const* out,
                   Scratch* scratch) const;

  /// out[l] = a[l]^2 * R^-1 mod m for l in [0, k).
  void SqrManyInto(size_t k, const uint64_t* const* a, uint64_t* const* out,
                   Scratch* scratch) const;

  /// out[l] = ToMont(*a[l]) for plain-domain BigInts (reduced mod m
  /// internally); the R^2 multiply runs k lanes wide.
  void ToMontManyInto(size_t k, const BigInt* const* a, uint64_t* const* out,
                      Scratch* scratch) const;

  // --- Constant-time kernels --------------------------------------------
  //
  // Fixed control flow and memory-access pattern regardless of operand
  // values: the CIOS pass is inherently fixed-flow, and the final
  // correction is a branchless full-width subtract + masked select
  // instead of the early-exit compare in the variable-time tier.

  /// Constant-time out = a * b * R^-1 mod m.
  void CtMulInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                 Scratch* scratch) const;

  /// Constant-time out = a^2 * R^-1 mod m (routed through CtMulInto: the
  /// dedicated squaring kernel's carry-propagation loop is data-dependent
  /// and stays in the variable-time tier).
  void CtSqrInto(const uint64_t* a, uint64_t* out, Scratch* scratch) const;

  /// Constant-time batch ModExp with one shared secret exponent: out[l] =
  /// base_mont[l]^exponent in Montgomery form (inputs already in
  /// Montgomery form, outputs stay there). The shared exponent makes the
  /// window schedule uniform across lanes, so the whole ladder runs on
  /// the interleaved batch kernels. `exp_bits` as in CtModExp (0 = use
  /// BitLength). scratch sized via EnsureLanes(ctx, min(k,
  /// kMaxBatchLanes)). Lane pointers as in MulManyInto.
  void CtModExpManyInto(size_t k, const uint64_t* const* base_mont,
                        const BigInt& exponent, size_t exp_bits,
                        uint64_t* const* out, Scratch* scratch) const;

  /// out = a * R mod m for plain-domain a (reduced mod m internally).
  void ToMontInto(const BigInt& a, uint64_t* out, Scratch* scratch) const;

  /// Montgomery-form limb vector -> plain-domain BigInt.
  BigInt FromMontLimbs(const uint64_t* a, Scratch* scratch) const;

  /// Montgomery form of 1 (R mod m) as a limbs()-long vector.
  const std::vector<uint64_t>& one_mont_limbs() const {
    return one_mont_limbs_;
  }

 private:
  MontgomeryCtx() = default;

  // Per-thread scratch + operand workspace backing the BigInt wrappers
  // (ModMul/MontMul/...), so the convenience layer stays allocation-free
  // apart from the returned BigInt. Kernels never call wrappers, so the
  // shared buffers cannot be re-entered.
  Scratch& ThreadScratch() const;
  std::vector<uint64_t>& ThreadOperand(int which) const;

  // REDC of the 2*limbs()+1-word buffer `t` (destroyed); out = t * R^-1
  // mod m, < modulus after the final conditional subtraction.
  void RedcInto(uint64_t* t, uint64_t* out) const;

  // Conditional subtract: out = v mod m for v < 2m given as n low words
  // plus the overflow word `hi` (0 or 1).
  void ReduceOnce(const uint64_t* v, uint64_t hi, uint64_t* out) const;

  // Branchless ReduceOnce (full-width subtract + masked select).
  void CtReduceOnce(const uint64_t* v, uint64_t hi, uint64_t* out) const;

  // Portable interleaved lane kernels (montgomery_batch.cpp). CT selects
  // the branchless final reduction.
  template <size_t K, bool CT>
  void MulManyPortable(const uint64_t* const* a, const uint64_t* const* b,
                       uint64_t* const* out, Scratch* scratch) const;
  template <size_t K>
  void SqrManyPortable(const uint64_t* const* a, uint64_t* const* out,
                       Scratch* scratch) const;

  // 8-lane AVX2 tier (lane count exactly 8); no-op stub on non-x86.
  // The vector CIOS pass is fixed-flow; `ct` selects the branchless
  // final reduction, making the kernel usable from the ct ladder (the
  // dispatch choice depends only on the public CPU feature set, never
  // on operand values).
  void MulMany8Avx2(const uint64_t* const* a, const uint64_t* const* b,
                    uint64_t* const* out, bool ct) const;

  // Dedicated 8-lane AVX2 Montgomery squaring: off-diagonal product scan
  // (half the multiplies of the generic CIOS), in-register doubling, then
  // the same deferred-carry SOS reduction as the portable squaring. Flow
  // is operand-independent; `ct` selects the branchless final reduction.
  void SqrMany8Avx2(const uint64_t* const* a, uint64_t* const* out,
                    bool ct) const;

  // Batch multiply with the constant-time final reduction on every lane.
  void CtMulManyInto(size_t k, const uint64_t* const* a,
                     const uint64_t* const* b, uint64_t* const* out,
                     Scratch* scratch) const;

  BigInt modulus_;
  std::vector<uint64_t> mod_limbs_;
  std::vector<uint32_t> mod_digits_;      // mod as 2*limbs() 32-bit digits
  std::vector<uint64_t> one_mont_limbs_;  // R mod m
  std::vector<uint64_t> rr_limbs_;        // R^2 mod m
  size_t limbs_ = 0;
  uint64_t mu_ = 0;  // -m^{-1} mod 2^64
  BigInt rr_;        // R^2 mod m
  BigInt one_mont_;  // R mod m
};

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_MONTGOMERY_H_

// Batch (multi-ciphertext interleaved) and constant-time Montgomery
// kernels, plus the runtime backend dispatch.
//
// Why the batch layer exists: the scalar fused-CIOS kernel is
// latency-bound on its two carry chains (each inner step's 64x64
// multiply feeds the next step's add), so a wide out-of-order core sits
// mostly idle. The PEOS server workloads never have just one operand —
// packed CRT decryption walks a ~26-ciphertext group and the EOS
// rerandomize chain walks a whole resident column — so the fix is
// K independent operations advanced in lockstep: K separate carry
// chains in one loop body keep the multiplier pipeline full.
//
// Two tiers behind runtime dispatch (same pattern as AES-NI/SHA-NI in
// aes.cpp/sha256.cpp):
//  * portable — interleaved scalar lanes (K = 4 with a K = 2 / scalar
//    tail), plain uint64/u128 arithmetic;
//  * avx2 — 8 lanes as two 4-lane __m256i streams of 32-bit digits
//    (VPMULUDQ is the widest vector multiply AVX2 offers), with the
//    second stream interleaved purely to break the in-vector carry
//    latency chain. Squarings take a dedicated kernel (SqrMany8Avx2):
//    off-diagonal half-product scan, doubling fused with the diagonal,
//    then the same deferred-carry SOS reduction as the portable
//    squaring — ~1.5 d^2 vector multiplies vs the generic 2 d^2.
//
// The constant-time tier lives here too: the CIOS pass is already
// fixed-flow in both backends, so Ct* kernels are the same arithmetic
// with a branchless final correction (CtReduceOnce), and CtModExp* is a
// fixed-window ladder that scans the whole window table instead of
// indexing it. Backend dispatch is ct-safe: it keys on the CPU feature
// set, which is public, never on operand values.
//
// This is a separate translation unit so the target("avx2") functions
// and their workspace never perturb the scalar kernels' codegen in
// montgomery.cpp.

#include "crypto/montgomery.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SHUFFLEDP_MONT_AVX2_COMPILED 1
#else
#define SHUFFLEDP_MONT_AVX2_COMPILED 0
#endif

namespace shuffledp {
namespace crypto {

namespace {

using u128 = unsigned __int128;

bool CpuHasAvx2() {
#if SHUFFLEDP_MONT_AVX2_COMPILED
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool ForcePortable() {
  const char* v = std::getenv("SHUFFLEDP_FORCE_PORTABLE");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

MontBackend& BackendOverride() {
  static MontBackend backend = BestMontBackend();
  return backend;
}

// Fixed-window width by (public) exponent size; same tradeoff shape as
// the sliding-window schedule, minus width 6 (a 64-entry table makes the
// per-window full scan too expensive).
unsigned CtWindowWidth(size_t ebits) {
  if (ebits <= 24) return 2;
  if (ebits <= 80) return 3;
  if (ebits <= 240) return 4;
  return 5;
}

// 1 if x == y else 0, branchless.
uint64_t CtEq(uint64_t x, uint64_t y) {
  uint64_t d = x ^ y;
  return 1 ^ ((d | (0 - d)) >> 63);
}

}  // namespace

MontBackend BestMontBackend() {
  if (ForcePortable()) return MontBackend::kPortable;
  return CpuHasAvx2() ? MontBackend::kAvx2 : MontBackend::kPortable;
}

MontBackend ActiveMontBackend() { return BackendOverride(); }

MontBackend SetMontBackend(MontBackend backend) {
  if (backend == MontBackend::kAvx2 && !CpuHasAvx2()) {
    backend = MontBackend::kPortable;
  }
  BackendOverride() = backend;
  return backend;
}

const char* MontBackendName(MontBackend backend) {
  return backend == MontBackend::kAvx2 ? "avx2" : "portable";
}

void MontgomeryCtx::CtReduceOnce(const uint64_t* v, uint64_t hi,
                                 uint64_t* out) const {
  const size_t n = limbs_;
  const uint64_t* mod = mod_limbs_.data();
  // Pass 1: borrow of v - m without storing the difference.
  uint64_t borrow = 0;
  for (size_t i = 0; i < n; ++i) {
    u128 d = static_cast<u128>(v[i]) - mod[i] - borrow;
    borrow = static_cast<uint64_t>(d >> 64) & 1;
  }
  // v + hi*2^(64n) < 2m, so subtract exactly when the overflow word is
  // set or v >= m; the mask turns pass 2 into a copy otherwise.
  const uint64_t mask = 0 - (hi | (borrow ^ 1));
  borrow = 0;
  for (size_t i = 0; i < n; ++i) {
    u128 d = static_cast<u128>(v[i]) - (mod[i] & mask) - borrow;
    out[i] = static_cast<uint64_t>(d);
    borrow = static_cast<uint64_t>(d >> 64) & 1;
  }
}

template <size_t K, bool CT>
void MontgomeryCtx::MulManyPortable(const uint64_t* const* a,
                                    const uint64_t* const* b,
                                    uint64_t* const* out,
                                    Scratch* scratch) const {
  const size_t n = limbs_;
  const uint64_t* mod = mod_limbs_.data();
  uint64_t* t[K];
  for (size_t l = 0; l < K; ++l) {
    t[l] = scratch->buf_.data() + l * (n + 1);
    std::fill_n(t[l], n + 1, 0);
  }
  // K fused CIOS passes in lockstep. Each lane carries its own c1/c2
  // chains, so the K multiply->add dependency chains overlap in the
  // pipeline instead of serializing (the scalar kernel's bound).
  for (size_t i = 0; i < n; ++i) {
    uint64_t bi[K], m[K], c1[K], c2[K];
    for (size_t l = 0; l < K; ++l) {
      bi[l] = b[l][i];
      u128 x = static_cast<u128>(a[l][0]) * bi[l] + t[l][0];
      m[l] = static_cast<uint64_t>(x) * mu_;
      u128 y = static_cast<u128>(m[l]) * mod[0] + static_cast<uint64_t>(x);
      c1[l] = static_cast<uint64_t>(x >> 64);
      c2[l] = static_cast<uint64_t>(y >> 64);
    }
    for (size_t j = 1; j < n; ++j) {
      for (size_t l = 0; l < K; ++l) {
        u128 x = static_cast<u128>(a[l][j]) * bi[l] + t[l][j] + c1[l];
        c1[l] = static_cast<uint64_t>(x >> 64);
        u128 y = static_cast<u128>(m[l]) * mod[j] +
                 static_cast<uint64_t>(x) + c2[l];
        t[l][j - 1] = static_cast<uint64_t>(y);
        c2[l] = static_cast<uint64_t>(y >> 64);
      }
    }
    for (size_t l = 0; l < K; ++l) {
      u128 z = static_cast<u128>(t[l][n]) + c1[l] + c2[l];
      t[l][n - 1] = static_cast<uint64_t>(z);
      t[l][n] = static_cast<uint64_t>(z >> 64);
    }
  }
  for (size_t l = 0; l < K; ++l) {
    if constexpr (CT) {
      CtReduceOnce(t[l], t[l][n], out[l]);
    } else {
      ReduceOnce(t[l], t[l][n], out[l]);
    }
  }
}

template <size_t K>
void MontgomeryCtx::SqrManyPortable(const uint64_t* const* a,
                                    uint64_t* const* out,
                                    Scratch* scratch) const {
  const size_t n = limbs_;
  const uint64_t* mod = mod_limbs_.data();
  uint64_t* t[K];
  for (size_t l = 0; l < K; ++l) {
    t[l] = scratch->buf_.data() + l * (2 * n + 1);
    std::fill_n(t[l], 2 * n + 1, 0);
  }
  // Off-diagonal products a[i]*a[j], i < j, K lanes per inner step.
  for (size_t i = 0; i + 1 < n; ++i) {
    uint64_t ai[K];
    u128 carry[K];
    for (size_t l = 0; l < K; ++l) {
      ai[l] = a[l][i];
      carry[l] = 0;
    }
    for (size_t j = i + 1; j < n; ++j) {
      for (size_t l = 0; l < K; ++l) {
        u128 cur = static_cast<u128>(ai[l]) * a[l][j] + t[l][i + j] +
                   carry[l];
        t[l][i + j] = static_cast<uint64_t>(cur);
        carry[l] = cur >> 64;
      }
    }
    for (size_t l = 0; l < K; ++l) {
      t[l][i + n] = static_cast<uint64_t>(carry[l]);
    }
  }
  // Double, then add the diagonal squares at word 2i.
  for (size_t l = 0; l < K; ++l) {
    uint64_t shift_carry = 0;
    for (size_t k = 0; k < 2 * n; ++k) {
      uint64_t v = t[l][k];
      t[l][k] = (v << 1) | shift_carry;
      shift_carry = v >> 63;
    }
    t[l][2 * n] = shift_carry;  // a^2 < 2^(128n), stays 0
  }
  uint64_t dc[K] = {};
  for (size_t i = 0; i < n; ++i) {
    for (size_t l = 0; l < K; ++l) {
      u128 sq = static_cast<u128>(a[l][i]) * a[l][i];
      u128 lo = static_cast<u128>(t[l][2 * i]) + static_cast<uint64_t>(sq) +
                dc[l];
      t[l][2 * i] = static_cast<uint64_t>(lo);
      u128 hi = static_cast<u128>(t[l][2 * i + 1]) +
                static_cast<uint64_t>(sq >> 64) +
                static_cast<uint64_t>(lo >> 64);
      t[l][2 * i + 1] = static_cast<uint64_t>(hi);
      dc[l] = static_cast<uint64_t>(hi >> 64);
    }
  }
  for (size_t l = 0; l < K; ++l) t[l][2 * n] += dc[l];

  // Interleaved SOS reduction. Unlike RedcInto's data-dependent carry
  // ripple, the overflow out of position i+n is deferred one outer step
  // (it lands at position i+1+n, exactly where the next step adds its
  // carry), keeping every lane's flow uniform.
  uint64_t m[K], extra[K] = {};
  u128 carry[K];
  for (size_t i = 0; i < n; ++i) {
    for (size_t l = 0; l < K; ++l) {
      m[l] = t[l][i] * mu_;
      carry[l] = 0;
    }
    for (size_t j = 0; j < n; ++j) {
      for (size_t l = 0; l < K; ++l) {
        u128 cur = static_cast<u128>(m[l]) * mod[j] + t[l][i + j] +
                   carry[l];
        t[l][i + j] = static_cast<uint64_t>(cur);
        carry[l] = cur >> 64;
      }
    }
    for (size_t l = 0; l < K; ++l) {
      u128 s = static_cast<u128>(t[l][i + n]) +
               static_cast<uint64_t>(carry[l]) + extra[l];
      t[l][i + n] = static_cast<uint64_t>(s);
      extra[l] = static_cast<uint64_t>(s >> 64);
    }
  }
  for (size_t l = 0; l < K; ++l) {
    t[l][2 * n] += extra[l];
    ReduceOnce(t[l] + n, t[l][2 * n], out[l]);
  }
}

#if SHUFFLEDP_MONT_AVX2_COMPILED

__attribute__((target("avx2"))) void MontgomeryCtx::MulMany8Avx2(
    const uint64_t* const* a, const uint64_t* const* b,
    uint64_t* const* out, bool ct) const {
  const size_t n = limbs_;
  const size_t d = 2 * n;  // 32-bit digits
  // Transposed digit-major workspace: av/bv rows hold digit j of lanes
  // 0-3 (stream A) and 4-7 (stream B) in the low halves of the four
  // 64-bit elements. Thread-local so the hot loop never allocates; a
  // word buffer with a manual 32-byte round-up rather than
  // vector<__m256i>, whose default-allocator storage is not reliably
  // 32-byte aligned under this toolchain.
  thread_local std::vector<uint64_t> wsbuf;
  const size_t need = 5 * d + 2 * (d + 1);
  if (wsbuf.size() < 4 * need + 4) wsbuf.resize(4 * need + 4);
  __m256i* avA = reinterpret_cast<__m256i*>(
      (reinterpret_cast<uintptr_t>(wsbuf.data()) + 31) & ~uintptr_t{31});
  __m256i* avB = avA + d;
  __m256i* bvA = avB + d;
  __m256i* bvB = bvA + d;
  __m256i* mv = bvB + d;
  __m256i* tA = mv + d;
  __m256i* tB = tA + (d + 1);

  auto dig = [](const uint64_t* p, size_t j) -> long long {
    return static_cast<long long>((p[j >> 1] >> ((j & 1) * 32)) &
                                  0xffffffffu);
  };
  // Squarings (SqrManyInto passes b == a lane-for-lane) reuse the a
  // transpose instead of building an identical second copy.
  const bool b_is_a = std::equal(a, a + 8, b);
  const uint32_t* md = mod_digits_.data();
  for (size_t j = 0; j < d; ++j) {
    avA[j] = _mm256_set_epi64x(dig(a[3], j), dig(a[2], j), dig(a[1], j),
                               dig(a[0], j));
    avB[j] = _mm256_set_epi64x(dig(a[7], j), dig(a[6], j), dig(a[5], j),
                               dig(a[4], j));
    if (!b_is_a) {
      bvA[j] = _mm256_set_epi64x(dig(b[3], j), dig(b[2], j), dig(b[1], j),
                                 dig(b[0], j));
      bvB[j] = _mm256_set_epi64x(dig(b[7], j), dig(b[6], j), dig(b[5], j),
                                 dig(b[4], j));
    }
    // Broadcast each modulus digit once per call; the inner loop below
    // would otherwise re-broadcast it d times (once per outer step).
    mv[j] = _mm256_set1_epi64x(static_cast<long long>(md[j]));
    tA[j] = _mm256_setzero_si256();
    tB[j] = _mm256_setzero_si256();
  }
  if (b_is_a) {
    bvA = avA;
    bvB = avB;
  }
  tA[d] = _mm256_setzero_si256();
  tB[d] = _mm256_setzero_si256();

  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i muv =
      _mm256_set1_epi64x(static_cast<long long>(mu_ & 0xffffffffu));

  // 32-bit-digit fused CIOS, two independent 4-lane streams per step.
  // Every 64-bit element stays exact: a*b + t + c <= (2^32-1)^2 +
  // 2*(2^32-1) = 2^64 - 1.
  for (size_t i = 0; i < d; ++i) {
    const __m256i biA = bvA[i];
    const __m256i biB = bvB[i];
    const __m256i mod0 = mv[0];
    __m256i xA = _mm256_add_epi64(_mm256_mul_epu32(avA[0], biA), tA[0]);
    __m256i xB = _mm256_add_epi64(_mm256_mul_epu32(avB[0], biB), tB[0]);
    const __m256i mA = _mm256_and_si256(_mm256_mul_epu32(xA, muv), mask32);
    const __m256i mB = _mm256_and_si256(_mm256_mul_epu32(xB, muv), mask32);
    __m256i yA = _mm256_add_epi64(_mm256_mul_epu32(mA, mod0),
                                  _mm256_and_si256(xA, mask32));
    __m256i yB = _mm256_add_epi64(_mm256_mul_epu32(mB, mod0),
                                  _mm256_and_si256(xB, mask32));
    __m256i c1A = _mm256_srli_epi64(xA, 32);
    __m256i c1B = _mm256_srli_epi64(xB, 32);
    __m256i c2A = _mm256_srli_epi64(yA, 32);
    __m256i c2B = _mm256_srli_epi64(yB, 32);
    for (size_t j = 1; j < d; ++j) {
      const __m256i modj = mv[j];
      xA = _mm256_add_epi64(_mm256_mul_epu32(avA[j], biA),
                            _mm256_add_epi64(tA[j], c1A));
      xB = _mm256_add_epi64(_mm256_mul_epu32(avB[j], biB),
                            _mm256_add_epi64(tB[j], c1B));
      c1A = _mm256_srli_epi64(xA, 32);
      c1B = _mm256_srli_epi64(xB, 32);
      yA = _mm256_add_epi64(
          _mm256_mul_epu32(mA, modj),
          _mm256_add_epi64(_mm256_and_si256(xA, mask32), c2A));
      yB = _mm256_add_epi64(
          _mm256_mul_epu32(mB, modj),
          _mm256_add_epi64(_mm256_and_si256(xB, mask32), c2B));
      tA[j - 1] = _mm256_and_si256(yA, mask32);
      tB[j - 1] = _mm256_and_si256(yB, mask32);
      c2A = _mm256_srli_epi64(yA, 32);
      c2B = _mm256_srli_epi64(yB, 32);
    }
    __m256i zA = _mm256_add_epi64(tA[d], _mm256_add_epi64(c1A, c2A));
    __m256i zB = _mm256_add_epi64(tB[d], _mm256_add_epi64(c1B, c2B));
    tA[d - 1] = _mm256_and_si256(zA, mask32);
    tB[d - 1] = _mm256_and_si256(zB, mask32);
    tA[d] = _mm256_srli_epi64(zA, 32);
    tB[d] = _mm256_srli_epi64(zB, 32);
  }

  // De-transpose (inputs are all consumed, so out may alias them) and
  // apply the final correction per lane; t[d] lanes are 0 or 1.
  for (int g = 0; g < 2; ++g) {
    const __m256i* t = g == 0 ? tA : tB;
    uint64_t lo4[4], hi4[4], ov4[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ov4), t[d]);
    for (size_t i = 0; i < n; ++i) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo4), t[2 * i]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi4), t[2 * i + 1]);
      for (int l = 0; l < 4; ++l) {
        out[4 * g + l][i] = lo4[l] | (hi4[l] << 32);
      }
    }
    for (int l = 0; l < 4; ++l) {
      uint64_t* o = out[4 * g + l];
      if (ct) {
        CtReduceOnce(o, ov4[l], o);  // branch is on the public ct flag
      } else {
        ReduceOnce(o, ov4[l], o);
      }
    }
  }
}

// Dedicated 8-lane squaring. The generic CIOS above spends 2*d^2 vector
// multiplies; squaring needs only ~1.5*d^2: the off-diagonal half-product
// (d^2/2), the diagonal (d), and the SOS reduction (d^2). The reduction
// mirrors SqrManyPortable's deferred-overflow scheme at 32-bit-digit
// granularity, so every 64-bit element stays exact:
//   product step  p + w + c <= (2^32-1)^2 + 2*(2^32-1) = 2^64 - 1
//   deferral step w + c + extra < 3 * 2^32.
__attribute__((target("avx2"))) void MontgomeryCtx::SqrMany8Avx2(
    const uint64_t* const* a, uint64_t* const* out, bool ct) const {
  const size_t n = limbs_;
  const size_t d = 2 * n;  // 32-bit digits
  thread_local std::vector<uint64_t> wsbuf;
  const size_t need = 3 * d + 2 * (2 * d + 1);
  if (wsbuf.size() < 4 * need + 4) wsbuf.resize(4 * need + 4);
  __m256i* avA = reinterpret_cast<__m256i*>(
      (reinterpret_cast<uintptr_t>(wsbuf.data()) + 31) & ~uintptr_t{31});
  __m256i* avB = avA + d;
  __m256i* mv = avB + d;
  __m256i* wA = mv + d;
  __m256i* wB = wA + (2 * d + 1);

  auto dig = [](const uint64_t* p, size_t j) -> long long {
    return static_cast<long long>((p[j >> 1] >> ((j & 1) * 32)) &
                                  0xffffffffu);
  };
  const uint32_t* md = mod_digits_.data();
  for (size_t j = 0; j < d; ++j) {
    avA[j] = _mm256_set_epi64x(dig(a[3], j), dig(a[2], j), dig(a[1], j),
                               dig(a[0], j));
    avB[j] = _mm256_set_epi64x(dig(a[7], j), dig(a[6], j), dig(a[5], j),
                               dig(a[4], j));
    mv[j] = _mm256_set1_epi64x(static_cast<long long>(md[j]));
  }

  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i muv =
      _mm256_set1_epi64x(static_cast<long long>(mu_ & 0xffffffffu));

  // Off-diagonal products a_i * a_j, i < j, row-scanned with a running
  // carry; the carry out of row i lands in the untouched digit i+d.
  // Row 0 writes digits 1..d fresh and later rows read before writing,
  // so only the digits the scan never touches need explicit zeroing.
  wA[0] = _mm256_setzero_si256();
  wB[0] = _mm256_setzero_si256();
  wA[2 * d - 1] = _mm256_setzero_si256();
  wB[2 * d - 1] = _mm256_setzero_si256();
  {
    const __m256i a0A = avA[0];
    const __m256i a0B = avB[0];
    __m256i cA = _mm256_setzero_si256();
    __m256i cB = _mm256_setzero_si256();
    for (size_t j = 1; j < d; ++j) {
      const __m256i xA =
          _mm256_add_epi64(_mm256_mul_epu32(a0A, avA[j]), cA);
      const __m256i xB =
          _mm256_add_epi64(_mm256_mul_epu32(a0B, avB[j]), cB);
      wA[j] = _mm256_and_si256(xA, mask32);
      wB[j] = _mm256_and_si256(xB, mask32);
      cA = _mm256_srli_epi64(xA, 32);
      cB = _mm256_srli_epi64(xB, 32);
    }
    wA[d] = cA;
    wB[d] = cB;
  }
  for (size_t i = 1; i + 1 < d; ++i) {
    const __m256i aiA = avA[i];
    const __m256i aiB = avB[i];
    __m256i cA = _mm256_setzero_si256();
    __m256i cB = _mm256_setzero_si256();
    for (size_t j = i + 1; j < d; ++j) {
      const __m256i xA = _mm256_add_epi64(
          _mm256_mul_epu32(aiA, avA[j]), _mm256_add_epi64(wA[i + j], cA));
      const __m256i xB = _mm256_add_epi64(
          _mm256_mul_epu32(aiB, avB[j]), _mm256_add_epi64(wB[i + j], cB));
      wA[i + j] = _mm256_and_si256(xA, mask32);
      wB[i + j] = _mm256_and_si256(xB, mask32);
      cA = _mm256_srli_epi64(xA, 32);
      cB = _mm256_srli_epi64(xB, 32);
    }
    wA[i + d] = cA;
    wB[i + d] = cB;
  }

  // Double the off-diagonal sum (it is at most a^2 / 2, so the shift out
  // of digit 2d-1 is zero) and fold in the diagonal square at digit pair
  // (2i, 2i+1) in the same pass, with a deferred carry exactly as
  // SqrManyPortable uses on 64-bit limbs. Each digit is loaded and
  // stored once.
  __m256i scA = _mm256_setzero_si256();
  __m256i scB = _mm256_setzero_si256();
  __m256i dcA = _mm256_setzero_si256();
  __m256i dcB = _mm256_setzero_si256();
  for (size_t i = 0; i < d; ++i) {
    const __m256i v0A = wA[2 * i];
    const __m256i v0B = wB[2 * i];
    const __m256i v1A = wA[2 * i + 1];
    const __m256i v1B = wB[2 * i + 1];
    const __m256i d0A = _mm256_and_si256(
        _mm256_or_si256(_mm256_slli_epi64(v0A, 1), scA), mask32);
    const __m256i d0B = _mm256_and_si256(
        _mm256_or_si256(_mm256_slli_epi64(v0B, 1), scB), mask32);
    const __m256i s0A = _mm256_srli_epi64(v0A, 31);
    const __m256i s0B = _mm256_srli_epi64(v0B, 31);
    const __m256i d1A = _mm256_and_si256(
        _mm256_or_si256(_mm256_slli_epi64(v1A, 1), s0A), mask32);
    const __m256i d1B = _mm256_and_si256(
        _mm256_or_si256(_mm256_slli_epi64(v1B, 1), s0B), mask32);
    scA = _mm256_srli_epi64(v1A, 31);
    scB = _mm256_srli_epi64(v1B, 31);
    const __m256i sqA = _mm256_mul_epu32(avA[i], avA[i]);
    const __m256i sqB = _mm256_mul_epu32(avB[i], avB[i]);
    const __m256i loA = _mm256_add_epi64(
        d0A, _mm256_add_epi64(_mm256_and_si256(sqA, mask32), dcA));
    const __m256i loB = _mm256_add_epi64(
        d0B, _mm256_add_epi64(_mm256_and_si256(sqB, mask32), dcB));
    wA[2 * i] = _mm256_and_si256(loA, mask32);
    wB[2 * i] = _mm256_and_si256(loB, mask32);
    const __m256i hiA = _mm256_add_epi64(
        d1A, _mm256_add_epi64(_mm256_srli_epi64(sqA, 32),
                              _mm256_srli_epi64(loA, 32)));
    const __m256i hiB = _mm256_add_epi64(
        d1B, _mm256_add_epi64(_mm256_srli_epi64(sqB, 32),
                              _mm256_srli_epi64(loB, 32)));
    wA[2 * i + 1] = _mm256_and_si256(hiA, mask32);
    wB[2 * i + 1] = _mm256_and_si256(hiB, mask32);
    dcA = _mm256_srli_epi64(hiA, 32);
    dcB = _mm256_srli_epi64(hiB, 32);
  }
  wA[2 * d] = dcA;  // the doubling shift-out scA is provably zero
  wB[2 * d] = dcB;

  // Interleaved SOS reduction; the overflow out of digit i+d is deferred
  // one outer step, where the next step's carry lands on it.
  __m256i exA = _mm256_setzero_si256();
  __m256i exB = _mm256_setzero_si256();
  for (size_t i = 0; i < d; ++i) {
    // No mask needed: mul_epu32 reads only the low 32 bits of each lane.
    const __m256i mA = _mm256_mul_epu32(wA[i], muv);
    const __m256i mB = _mm256_mul_epu32(wB[i], muv);
    __m256i cA = _mm256_setzero_si256();
    __m256i cB = _mm256_setzero_si256();
    for (size_t j = 0; j < d; ++j) {
      const __m256i xA = _mm256_add_epi64(
          _mm256_mul_epu32(mA, mv[j]), _mm256_add_epi64(wA[i + j], cA));
      const __m256i xB = _mm256_add_epi64(
          _mm256_mul_epu32(mB, mv[j]), _mm256_add_epi64(wB[i + j], cB));
      wA[i + j] = _mm256_and_si256(xA, mask32);
      wB[i + j] = _mm256_and_si256(xB, mask32);
      cA = _mm256_srli_epi64(xA, 32);
      cB = _mm256_srli_epi64(xB, 32);
    }
    const __m256i sA =
        _mm256_add_epi64(wA[i + d], _mm256_add_epi64(cA, exA));
    const __m256i sB =
        _mm256_add_epi64(wB[i + d], _mm256_add_epi64(cB, exB));
    wA[i + d] = _mm256_and_si256(sA, mask32);
    wB[i + d] = _mm256_and_si256(sB, mask32);
    exA = _mm256_srli_epi64(sA, 32);
    exB = _mm256_srli_epi64(sB, 32);
  }
  wA[2 * d] = _mm256_add_epi64(wA[2 * d], exA);
  wB[2 * d] = _mm256_add_epi64(wB[2 * d], exB);

  // De-transpose digits d..2d-1 (inputs fully consumed, so out may alias
  // them) and apply the final correction; w[2d] lanes are 0 or 1.
  for (int g = 0; g < 2; ++g) {
    const __m256i* w = g == 0 ? wA : wB;
    uint64_t lo4[4], hi4[4], ov4[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ov4), w[2 * d]);
    for (size_t i = 0; i < n; ++i) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo4), w[d + 2 * i]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi4), w[d + 2 * i + 1]);
      for (int l = 0; l < 4; ++l) {
        out[4 * g + l][i] = lo4[l] | (hi4[l] << 32);
      }
    }
    for (int l = 0; l < 4; ++l) {
      uint64_t* o = out[4 * g + l];
      if (ct) {
        CtReduceOnce(o, ov4[l], o);  // branch is on the public ct flag
      } else {
        ReduceOnce(o, ov4[l], o);
      }
    }
  }
}

#else  // !SHUFFLEDP_MONT_AVX2_COMPILED

void MontgomeryCtx::MulMany8Avx2(const uint64_t* const*,
                                 const uint64_t* const*,
                                 uint64_t* const*, bool) const {
  assert(false && "AVX2 backend selected on a host without AVX2");
}

void MontgomeryCtx::SqrMany8Avx2(const uint64_t* const*, uint64_t* const*,
                                 bool) const {
  assert(false && "AVX2 backend selected on a host without AVX2");
}

#endif  // SHUFFLEDP_MONT_AVX2_COMPILED

void MontgomeryCtx::MulManyInto(size_t k, const uint64_t* const* a,
                                const uint64_t* const* b,
                                uint64_t* const* out,
                                Scratch* scratch) const {
  scratch->EnsureLanes(*this, std::min<size_t>(k, 4));
  size_t idx = 0;
  if (ActiveMontBackend() == MontBackend::kAvx2) {
    for (; k - idx >= 8; idx += 8) {
      MulMany8Avx2(a + idx, b + idx, out + idx, /*ct=*/false);
    }
  }
  for (; k - idx >= 4; idx += 4) {
    MulManyPortable<4, false>(a + idx, b + idx, out + idx, scratch);
  }
  if (k - idx >= 2) {
    MulManyPortable<2, false>(a + idx, b + idx, out + idx, scratch);
    idx += 2;
  }
  if (k - idx == 1) {
    MulInto(a[idx], b[idx], out[idx], scratch);
  }
}

void MontgomeryCtx::SqrManyInto(size_t k, const uint64_t* const* a,
                                uint64_t* const* out,
                                Scratch* scratch) const {
  scratch->EnsureLanes(*this, std::min<size_t>(k, 4));
  size_t idx = 0;
  if (ActiveMontBackend() == MontBackend::kAvx2) {
    for (; k - idx >= 8; idx += 8) {
      SqrMany8Avx2(a + idx, out + idx, /*ct=*/false);
    }
  }
  for (; k - idx >= 4; idx += 4) {
    SqrManyPortable<4>(a + idx, out + idx, scratch);
  }
  if (k - idx >= 2) {
    SqrManyPortable<2>(a + idx, out + idx, scratch);
    idx += 2;
  }
  if (k - idx == 1) {
    SqrInto(a[idx], out[idx], scratch);
  }
}

void MontgomeryCtx::ToMontManyInto(size_t k, const BigInt* const* a,
                                   uint64_t* const* out,
                                   Scratch* scratch) const {
  const size_t n = limbs_;
  const uint64_t* rr[kMaxBatchLanes];
  for (size_t done = 0; done < k; done += kMaxBatchLanes) {
    const size_t kb = std::min(kMaxBatchLanes, k - done);
    for (size_t l = 0; l < kb; ++l) {
      const BigInt& v = *a[done + l];
      if (v < modulus_) {
        for (size_t i = 0; i < n; ++i) out[done + l][i] = v.limb(i);
      } else {
        const BigInt r = v.Mod(modulus_);
        for (size_t i = 0; i < n; ++i) out[done + l][i] = r.limb(i);
      }
      rr[l] = rr_limbs_.data();
    }
    MulManyInto(kb, out + done, rr, out + done, scratch);
  }
}

void MontgomeryCtx::CtMulInto(const uint64_t* a, const uint64_t* b,
                              uint64_t* out, Scratch* scratch) const {
  scratch->EnsureLanes(*this, 1);
  MulManyPortable<1, true>(&a, &b, &out, scratch);
}

void MontgomeryCtx::CtSqrInto(const uint64_t* a, uint64_t* out,
                              Scratch* scratch) const {
  CtMulInto(a, a, out, scratch);
}

void MontgomeryCtx::CtMulManyInto(size_t k, const uint64_t* const* a,
                                  const uint64_t* const* b,
                                  uint64_t* const* out,
                                  Scratch* scratch) const {
  scratch->EnsureLanes(*this, std::min<size_t>(k, 4));
  size_t idx = 0;
  if (ActiveMontBackend() == MontBackend::kAvx2) {
    for (; k - idx >= 8; idx += 8) {
      // The ct ladder squares via CtMulManyInto(acc, acc, acc); routing
      // on pointer identity is operand-value independent, so it is safe
      // under the ct contract.
      if (std::equal(a + idx, a + idx + 8, b + idx)) {
        SqrMany8Avx2(a + idx, out + idx, /*ct=*/true);
      } else {
        MulMany8Avx2(a + idx, b + idx, out + idx, /*ct=*/true);
      }
    }
  }
  for (; k - idx >= 4; idx += 4) {
    MulManyPortable<4, true>(a + idx, b + idx, out + idx, scratch);
  }
  if (k - idx >= 2) {
    MulManyPortable<2, true>(a + idx, b + idx, out + idx, scratch);
    idx += 2;
  }
  if (k - idx == 1) {
    MulManyPortable<1, true>(a + idx, b + idx, out + idx, scratch);
  }
}

void MontgomeryCtx::CtModExpManyInto(size_t k,
                                     const uint64_t* const* base_mont,
                                     const BigInt& exponent, size_t exp_bits,
                                     uint64_t* const* out,
                                     Scratch* scratch) const {
  const size_t n = limbs_;
  if (exp_bits < exponent.BitLength()) exp_bits = exponent.BitLength();

  // Exponent digits come from a zero-padded copy so the extraction below
  // can read one word past the top without branching (BigInt::limb is
  // range-checked, but the copy fixes the access pattern to exp_bits).
  const size_t ewords = (exp_bits + 63) / 64;
  std::vector<uint64_t> e(ewords + 1, 0);
  for (size_t i = 0; i < ewords; ++i) e[i] = exponent.limb(i);

  const unsigned w = CtWindowWidth(exp_bits);
  const size_t tsize = size_t{1} << w;
  const size_t nwin = (exp_bits + w - 1) / w;

  for (size_t done = 0; done < k; done += kMaxBatchLanes) {
    const size_t kb = std::min(kMaxBatchLanes, k - done);
    const uint64_t* const* bases = base_mont + done;

    // Per-lane window table, entry 0 = Montgomery one so a zero digit
    // multiplies by the identity (the ladder multiplies every window).
    std::vector<uint64_t> tbl(kb * tsize * n);
    auto te = [&](size_t l, size_t d) {
      return tbl.data() + (l * tsize + d) * n;
    };
    const uint64_t* prev[kMaxBatchLanes];
    const uint64_t* basep[kMaxBatchLanes];
    uint64_t* next[kMaxBatchLanes];
    for (size_t l = 0; l < kb; ++l) {
      std::copy(one_mont_limbs_.begin(), one_mont_limbs_.end(), te(l, 0));
      std::copy(bases[l], bases[l] + n, te(l, 1));
      basep[l] = te(l, 1);
    }
    for (size_t d = 2; d < tsize; ++d) {
      for (size_t l = 0; l < kb; ++l) {
        prev[l] = te(l, d - 1);
        next[l] = te(l, d);
      }
      CtMulManyInto(kb, prev, basep, next, scratch);
    }

    std::vector<uint64_t> accv(kb * n), selv(kb * n);
    uint64_t* acc[kMaxBatchLanes];
    uint64_t* sel[kMaxBatchLanes];
    for (size_t l = 0; l < kb; ++l) {
      acc[l] = accv.data() + l * n;
      sel[l] = selv.data() + l * n;
      std::copy(one_mont_limbs_.begin(), one_mont_limbs_.end(), acc[l]);
    }

    // Uniform ladder: w ct squarings + one ct table scan + one ct
    // multiply per window, including the top window (squaring the
    // Montgomery one and multiplying by it are identities, so the first
    // window needs no special case — and gets none, by design).
    for (size_t win = nwin; win-- > 0;) {
      for (unsigned s = 0; s < w; ++s) {
        CtMulManyInto(kb, acc, acc, acc, scratch);
      }
      const size_t lo = win * w;
      const u128 window = (static_cast<u128>(e[lo / 64 + 1]) << 64) |
                          e[lo / 64];
      const uint64_t digit =
          static_cast<uint64_t>(window >> (lo % 64)) & (tsize - 1);
      std::fill(selv.begin(), selv.end(), 0);
      for (size_t d = 0; d < tsize; ++d) {
        const uint64_t msk = 0 - CtEq(d, digit);
        for (size_t l = 0; l < kb; ++l) {
          const uint64_t* src = te(l, d);
          for (size_t i = 0; i < n; ++i) sel[l][i] |= src[i] & msk;
        }
      }
      CtMulManyInto(kb, acc, sel, acc, scratch);
    }
    for (size_t l = 0; l < kb; ++l) {
      std::copy(acc[l], acc[l] + n, out[done + l]);
    }
  }
}

BigInt MontgomeryCtx::CtModExp(const BigInt& base, const BigInt& exponent,
                               size_t exp_bits) const {
  const size_t n = limbs_;
  Scratch scratch(*this);
  std::vector<uint64_t> bm(n);
  std::vector<uint64_t> acc(n);
  // Entry/exit conversions are variable-time in the *base* only; the ct
  // contract covers the exponent (see the header).
  ToMontInto(base < modulus_ ? base : base.Mod(modulus_), bm.data(),
             &scratch);
  const uint64_t* bmp = bm.data();
  uint64_t* accp = acc.data();
  CtModExpManyInto(1, &bmp, exponent, exp_bits, &accp, &scratch);
  // ct exit: one more ct multiply by the plain-domain 1 strips the R
  // factor without RedcInto's data-dependent carry ripple.
  std::vector<uint64_t> one(n, 0);
  one[0] = 1;
  CtMulInto(accp, one.data(), accp, &scratch);
  return BigInt::FromLimbsLittleEndian(std::move(acc));
}

}  // namespace crypto
}  // namespace shuffledp

#include "crypto/paillier.h"

#include <cassert>

namespace shuffledp {
namespace crypto {

namespace {

// Bits [lo_bit, lo_bit + width) of v as a word (width <= 64).
uint64_t ExtractBits(const BigInt& v, size_t lo_bit, unsigned width) {
  assert(width >= 1 && width <= 64);
  const size_t limb = lo_bit / 64;
  const size_t shift = lo_bit % 64;
  unsigned __int128 window =
      static_cast<unsigned __int128>(v.limb(limb)) |
      (static_cast<unsigned __int128>(v.limb(limb + 1)) << 64);
  uint64_t out = static_cast<uint64_t>(window >> shift);
  if (width == 64) return out;
  return out & ((uint64_t{1} << width) - 1);
}

std::shared_ptr<const MontgomeryCtx> MakeCtx(const BigInt& modulus) {
  auto ctx = MontgomeryCtx::Create(modulus);
  if (!ctx.ok()) return nullptr;
  return std::make_shared<const MontgomeryCtx>(std::move(ctx).value());
}

// Per-thread kernel workspace for the randomizer hot loop (one
// Rerandomize per ciphertext per EOS round): no scratch/mask allocation
// per call, only the returned BigInt's storage.
MontgomeryCtx::Scratch& TlsScratch(const MontgomeryCtx& ctx) {
  thread_local MontgomeryCtx::Scratch scratch;
  scratch.EnsureFor(ctx);
  return scratch;
}

std::vector<uint64_t>& TlsMaskBuf(size_t limbs, int which = 0) {
  thread_local std::vector<uint64_t> bufs[2];
  std::vector<uint64_t>& buf = bufs[which];
  if (buf.size() < limbs) buf.resize(limbs);
  return buf;
}

// 1 if x == y else 0, branchless (for the constant-time comb select).
uint64_t CtEq(uint64_t x, uint64_t y) {
  uint64_t d = x ^ y;
  return 1 ^ ((d | (0 - d)) >> 63);
}

// L_n(x) = (x - 1) / n. Pre: x == 1 mod n.
BigInt LFunction(const BigInt& x, const BigInt& n) {
  BigInt q;
  Status st = x.Sub(BigInt(1)).DivMod(n, &q, nullptr);
  assert(st.ok());
  (void)st;
  return q;
}

}  // namespace

PaillierPublicKey::PaillierPublicKey(BigInt n)
    : n_(std::move(n)), n_squared_(n_.Mul(n_)) {
  if (!n_.IsZero() && n_squared_.IsOdd() && n_squared_.limb_count() >= 1) {
    n2_ctx_ = MakeCtx(n_squared_);
  }
}

BigInt PaillierPublicKey::GToM(const BigInt& m_reduced) const {
  // g = N + 1: g^m = 1 + m*N mod N^2, and for m < N the integer 1 + m*N
  // is already < N^2 — no reduction needed.
  return BigInt(1).Add(m_reduced.Mul(n_));
}

Result<PaillierCiphertext> PaillierPublicKey::Encrypt(
    const BigInt& m, SecureRandom* rng) const {
  if (n_.IsZero()) {
    return Status::FailedPrecondition("Paillier public key not initialized");
  }
  if (m >= n_) {
    return Status::InvalidArgument("Paillier plaintext >= N");
  }
  // r uniform in [1, N) with gcd(r, N) = 1 (overwhelming for random r).
  BigInt r;
  do {
    r = BigInt::RandomBelow(n_, rng);
  } while (r.IsZero() || BigInt::Gcd(r, n_) != BigInt(1));

  // c = (1 + m*N) * r^N mod N^2. The final combine goes through
  // BigInt::ModMul, which picks the division path for production-size
  // N^2 (>= Karatsuba threshold) — there the short 1 + m*N operand of a
  // share-sized plaintext makes the subquadratic multiply beat a
  // fixed-width CIOS pass — and cached Montgomery below it.
  BigInt r_to_n = n2_ctx_ != nullptr ? n2_ctx_->ModExp(r, n_)
                                     : r.ModExp(n_, n_squared_);
  return PaillierCiphertext{GToM(m).ModMul(r_to_n, n_squared_)};
}

Result<PaillierCiphertext> PaillierPublicKey::EncryptU64(
    uint64_t m, SecureRandom* rng) const {
  return Encrypt(BigInt(m), rng);
}

PaillierCiphertext PaillierPublicKey::Add(const PaillierCiphertext& a,
                                          const PaillierCiphertext& b) const {
  if (n2_ctx_ != nullptr) {
    return PaillierCiphertext{n2_ctx_->ModMul(a.value, b.value)};
  }
  return PaillierCiphertext{a.value.ModMul(b.value, n_squared_)};
}

PaillierCiphertext PaillierPublicKey::AddPlain(const PaillierCiphertext& c,
                                               const BigInt& m) const {
  // Generic ModMul on purpose: g^m = 1 + m*N is a short operand for the
  // small plaintext adjustments the protocols add, which the
  // subquadratic multiply exploits and a fixed-width CIOS pass cannot.
  BigInt g_to_m = GToM(m < n_ ? m : m.Mod(n_));
  return PaillierCiphertext{c.value.ModMul(g_to_m, n_squared_)};
}

PaillierCiphertext PaillierPublicKey::ScalarMult(const PaillierCiphertext& c,
                                                 const BigInt& k) const {
  if (n2_ctx_ != nullptr) {
    return PaillierCiphertext{n2_ctx_->ModExp(c.value, k)};
  }
  return PaillierCiphertext{c.value.ModExp(k, n_squared_)};
}

PaillierCiphertext PaillierPublicKey::TrivialEncrypt(const BigInt& m) const {
  return PaillierCiphertext{GToM(m < n_ ? m : m.Mod(n_))};
}

void PaillierPublicKey::ToMontCiphertext(
    const PaillierCiphertext& c, uint64_t* out,
    MontgomeryCtx::Scratch* scratch) const {
  assert(n2_ctx_ != nullptr);
  n2_ctx_->ToMontInto(c.value, out, scratch);
}

PaillierCiphertext PaillierPublicKey::FromMontCiphertext(
    const uint64_t* limbs, MontgomeryCtx::Scratch* scratch) const {
  assert(n2_ctx_ != nullptr);
  return PaillierCiphertext{n2_ctx_->FromMontLimbs(limbs, scratch)};
}

void PaillierPublicKey::AddPlainMontInto(
    uint64_t* c_mont, const BigInt& m,
    MontgomeryCtx::Scratch* scratch) const {
  assert(n2_ctx_ != nullptr);
  const MontgomeryCtx& ctx = *n2_ctx_;
  // g^m = 1 + mN enters the domain once (one CIOS pass against R^2),
  // then multiplies in with a second — no division anywhere.
  std::vector<uint64_t>& g_mont = TlsMaskBuf(ctx.limbs());
  ctx.ToMontInto(GToM(m < n_ ? m : m.Mod(n_)), g_mont.data(), scratch);
  ctx.MulInto(c_mont, g_mont.data(), c_mont, scratch);
}

void PaillierPublicKey::AddPlainMontManyInto(
    size_t k, uint64_t* const* c_mont, const BigInt* ms,
    MontgomeryCtx::Scratch* scratch) const {
  assert(n2_ctx_ != nullptr);
  const MontgomeryCtx& ctx = *n2_ctx_;
  const size_t n = ctx.limbs();
  constexpr size_t kLanes = MontgomeryCtx::kMaxBatchLanes;
  std::vector<uint64_t>& gbuf = TlsMaskBuf(kLanes * n);
  BigInt gs[kLanes];
  const BigInt* gptr[kLanes];
  uint64_t* glane[kLanes];
  for (size_t l = 0; l < kLanes; ++l) {
    gptr[l] = &gs[l];
    glane[l] = gbuf.data() + l * n;
  }
  for (size_t done = 0; done < k; done += kLanes) {
    const size_t kb = std::min(kLanes, k - done);
    for (size_t l = 0; l < kb; ++l) {
      const BigInt& m = ms[done + l];
      gs[l] = GToM(m < n_ ? m : m.Mod(n_));
    }
    // Both CIOS passes of the scalar kernel, k lanes wide: the g^m
    // operands enter the domain together, then multiply in together.
    ctx.ToMontManyInto(kb, gptr, glane, scratch);
    ctx.MulManyInto(kb, c_mont + done, glane, c_mont + done, scratch);
  }
}

Bytes PaillierPublicKey::SerializeCiphertext(
    const PaillierCiphertext& c) const {
  return c.value.ToBytesBigEndian(CiphertextBytes());
}

Result<PaillierCiphertext> PaillierPublicKey::ParseCiphertext(
    const Bytes& bytes) const {
  if (bytes.size() != CiphertextBytes()) {
    return Status::DataLoss("Paillier ciphertext has wrong length");
  }
  BigInt v = BigInt::FromBytesBigEndian(bytes);
  if (v >= n_squared_) {
    return Status::CryptoError("Paillier ciphertext out of range");
  }
  return PaillierCiphertext{std::move(v)};
}

Result<PaillierPrivateKey> PaillierPrivateKey::FromPrimes(const BigInt& p,
                                                          const BigInt& q) {
  if (p == q) return Status::InvalidArgument("Paillier: p == q");
  PaillierPrivateKey key;
  key.p_ = p;
  key.q_ = q;
  key.p_squared_ = p.Mul(p);
  key.q_squared_ = q.Mul(q);
  key.p_minus_1_ = p.Sub(BigInt(1));
  key.q_minus_1_ = q.Sub(BigInt(1));
  BigInt n = p.Mul(q);
  key.pub_ = PaillierPublicKey(n);
  key.p2_ctx_ = MakeCtx(key.p_squared_);
  key.q2_ctx_ = MakeCtx(key.q_squared_);
  if (key.p2_ctx_ == nullptr || key.q2_ctx_ == nullptr) {
    return Status::InvalidArgument("Paillier: primes must be odd and > 1");
  }

  // With g = N + 1:  g^{p-1} mod p^2 = 1 + (p-1)*N mod p^2, so
  // hp = ( L_p(g^{p-1} mod p^2) )^{-1} mod p.
  const BigInt g = n.Add(BigInt(1));
  // Key setup exponentiates by the secret p-1 / q-1: constant-time.
  BigInt gp = key.p2_ctx_->CtModExp(g, key.p_minus_1_);
  BigInt gq = key.q2_ctx_->CtModExp(g, key.q_minus_1_);
  auto hp = LFunction(gp, p).Mod(p).ModInverse(p);
  if (!hp.ok()) return Status::CryptoError("Paillier: hp not invertible");
  auto hq = LFunction(gq, q).Mod(q).ModInverse(q);
  if (!hq.ok()) return Status::CryptoError("Paillier: hq not invertible");
  key.hp_ = *hp;
  key.hq_ = *hq;

  auto q_inv = q.ModInverse(p);
  if (!q_inv.ok()) return Status::CryptoError("Paillier: q not invertible");
  key.q_sq_inv_mod_p_sq_ = *q_inv;  // actually q^{-1} mod p for Garner CRT
  return key;
}

BigInt PaillierPrivateKey::RecoverHalf(const MontgomeryCtx& ctx,
                                       const BigInt& c_reduced,
                                       const BigInt& prime,
                                       const BigInt& prime_minus_1,
                                       const BigInt& h) const {
  // p-1 / q-1 are equivalent to the factorization: constant-time ladder.
  BigInt cx = ctx.CtModExp(c_reduced, prime_minus_1);
  return LFunction(cx, prime).ModMul(h, prime);
}

BigInt PaillierPrivateKey::CrtCombine(const BigInt& mp,
                                      const BigInt& mq) const {
  // Garner recombination: m = mq + q * ((mp - mq) * q^{-1} mod p).
  BigInt mq_mod_p = mq.Mod(p_);
  BigInt diff =
      mp >= mq_mod_p ? mp.Sub(mq_mod_p) : mp.Add(p_).Sub(mq_mod_p);
  BigInt h = diff.ModMul(q_sq_inv_mod_p_sq_, p_);
  return mq.Add(q_.Mul(h));
}

Result<BigInt> PaillierPrivateKey::Decrypt(const PaillierCiphertext& c) const {
  if (p_.IsZero()) {
    return Status::FailedPrecondition("Paillier private key not initialized");
  }
  if (c.value >= pub_.n_squared() || c.value.IsZero()) {
    return Status::CryptoError("Paillier: ciphertext out of range");
  }
  // CRT decryption: m_p = L_p(c^{p-1} mod p^2) * hp mod p, same for q.
  BigInt mp = RecoverHalf(*p2_ctx_, c.value.Mod(p_squared_), p_,
                          p_minus_1_, hp_);
  BigInt mq = RecoverHalf(*q2_ctx_, c.value.Mod(q_squared_), q_,
                          q_minus_1_, hq_);
  return CrtCombine(mp, mq);
}

Result<BigInt> PaillierPrivateKey::DecryptDirect(
    const PaillierCiphertext& c) const {
  if (p_.IsZero()) {
    return Status::FailedPrecondition("Paillier private key not initialized");
  }
  if (c.value >= pub_.n_squared() || c.value.IsZero()) {
    return Status::CryptoError("Paillier: ciphertext out of range");
  }
  // m = L_N(c^lambda mod N^2) * mu mod N with lambda = lcm(p-1, q-1) and
  // mu = L_N(g^lambda mod N^2)^{-1} mod N. Recomputed per call — this is
  // the slow reference path for cross-checking CRT decryption.
  const BigInt& n = pub_.n();
  const BigInt& n2 = pub_.n_squared();
  BigInt lambda = BigInt::Lcm(p_minus_1_, q_minus_1_);
  BigInt g = n.Add(BigInt(1));
  auto mu = LFunction(g.ModExp(lambda, n2), n).Mod(n).ModInverse(n);
  if (!mu.ok()) return Status::CryptoError("Paillier: mu not invertible");
  return LFunction(c.value.ModExp(lambda, n2), n).ModMul(*mu, n);
}

Result<uint64_t> PaillierPrivateKey::DecryptMod2Ell(
    const PaillierCiphertext& c, unsigned ell) const {
  assert(ell >= 1 && ell <= 64);
  auto m = Decrypt(c);
  if (!m.ok()) return m.status();
  // m < N, little-endian limbs: limb 0 is exactly the low 64 bits.
  uint64_t low = m->limb(0);
  if (ell == 64) return low;
  return low & ((uint64_t{1} << ell) - 1);
}

size_t PaillierPrivateKey::PackedSlotCapacity(unsigned slot_bits) const {
  const size_t n_bits = pub_.n().BitLength();
  if (slot_bits == 0 || n_bits < 2) return 1;
  // Packed plaintext must stay < 2^(n_bits - 1) <= N.
  const size_t cap = (n_bits - 1) / slot_bits;
  return cap == 0 ? 1 : cap;
}

Status PaillierPrivateKey::DecryptPackedMod2Ell(const PaillierCiphertext* cs,
                                                size_t count,
                                                unsigned slot_bits,
                                                unsigned ell,
                                                uint64_t* out) const {
  if (count == 0) return Status::OK();
  if (p_.IsZero()) {
    return Status::FailedPrecondition("Paillier private key not initialized");
  }
  if (ell < 1 || ell > 64 || slot_bits < ell) {
    return Status::InvalidArgument("Paillier: bad packed slot layout");
  }
  if (count > PackedSlotCapacity(slot_bits)) {
    return Status::InvalidArgument("Paillier: pack group exceeds capacity");
  }
  for (size_t i = 0; i < count; ++i) {
    if (cs[i].value.IsZero() || cs[i].value >= pub_.n_squared()) {
      return Status::CryptoError("Paillier: ciphertext out of range");
    }
  }

  // Horner over one CRT residue: acc = prod_i c_i^(2^(slot_bits * i)),
  // i.e. each slot's plaintext lands at bit offset slot_bits * i. Every
  // ciphertext enters the Montgomery domain once, the accumulator stays
  // there across the whole group, and one conversion exits.
  auto packed_residue = [&](const MontgomeryCtx& ctx) -> BigInt {
    const size_t n = ctx.limbs();
    MontgomeryCtx::Scratch scratch(ctx);
    std::vector<uint64_t> acc(n), ci(n);
    ctx.ToMontInto(cs[count - 1].value, acc.data(), &scratch);
    for (size_t i = count - 1; i-- > 0;) {
      for (unsigned b = 0; b < slot_bits; ++b) {
        ctx.SqrInto(acc.data(), acc.data(), &scratch);
      }
      ctx.ToMontInto(cs[i].value, ci.data(), &scratch);
      ctx.MulInto(acc.data(), ci.data(), acc.data(), &scratch);
    }
    return ctx.FromMontLimbs(acc.data(), &scratch);
  };

  BigInt mp = RecoverHalf(*p2_ctx_, packed_residue(*p2_ctx_), p_,
                          p_minus_1_, hp_);
  BigInt mq = RecoverHalf(*q2_ctx_, packed_residue(*q2_ctx_), q_,
                          q_minus_1_, hq_);
  BigInt packed = CrtCombine(mp, mq);

  // ExtractBits truncates to exactly ell bits (validated <= 64 above).
  for (size_t i = 0; i < count; ++i) {
    out[i] = ExtractBits(packed, i * static_cast<size_t>(slot_bits), ell);
  }
  return Status::OK();
}

Status PaillierPrivateKey::DecryptPackedMod2EllBatch(
    const PaillierCiphertext* cs, size_t count, unsigned slot_bits,
    unsigned ell, uint64_t* out) const {
  if (count == 0) return Status::OK();
  if (p_.IsZero()) {
    return Status::FailedPrecondition("Paillier private key not initialized");
  }
  if (ell < 1 || ell > 64 || slot_bits < ell) {
    return Status::InvalidArgument("Paillier: bad packed slot layout");
  }
  for (size_t i = 0; i < count; ++i) {
    if (cs[i].value.IsZero() || cs[i].value >= pub_.n_squared()) {
      return Status::CryptoError("Paillier: ciphertext out of range");
    }
  }
  const size_t cap = PackedSlotCapacity(slot_bits);
  const size_t nfull = count / cap;
  const size_t tail = count - nfull * cap;

  if (nfull > 0) {
    // One Horner chain per capacity-sized group, up to kMaxBatchLanes
    // chains interleaved: the squarings/multiplies that dominate a
    // packed decryption, and the secret-exponent CRT modexps behind
    // them, all run as batch-kernel lanes. Group boundaries are the
    // same multiples of the capacity the scalar loop would use, and
    // every kernel returns canonical values, so the recovered slots are
    // bitwise identical to per-group DecryptPackedMod2Ell calls.
    std::vector<BigInt> mps(nfull), mqs(nfull);
    auto halves = [&](const MontgomeryCtx& ctx, const BigInt& prime,
                      const BigInt& prime_minus_1, const BigInt& h,
                      std::vector<BigInt>* outs) {
      const size_t n = ctx.limbs();
      constexpr size_t kLanes = MontgomeryCtx::kMaxBatchLanes;
      MontgomeryCtx::Scratch scratch(ctx);
      std::vector<uint64_t> accv(kLanes * n), civ(kLanes * n);
      std::vector<uint64_t> one(n, 0);
      one[0] = 1;
      uint64_t* acc[kLanes];
      uint64_t* ci[kLanes];
      const BigInt* vs[kLanes];
      for (size_t l = 0; l < kLanes; ++l) {
        acc[l] = accv.data() + l * n;
        ci[l] = civ.data() + l * n;
      }
      for (size_t g0 = 0; g0 < nfull; g0 += kLanes) {
        const size_t kb = std::min(kLanes, nfull - g0);
        for (size_t l = 0; l < kb; ++l) {
          vs[l] = &cs[(g0 + l) * cap + cap - 1].value;
        }
        ctx.ToMontManyInto(kb, vs, acc, &scratch);
        for (size_t pos = cap - 1; pos-- > 0;) {
          for (unsigned b = 0; b < slot_bits; ++b) {
            ctx.SqrManyInto(kb, acc, acc, &scratch);
          }
          for (size_t l = 0; l < kb; ++l) {
            vs[l] = &cs[(g0 + l) * cap + pos].value;
          }
          ctx.ToMontManyInto(kb, vs, ci, &scratch);
          ctx.MulManyInto(kb, acc, ci, acc, &scratch);
        }
        // c^(m-1) with the shared secret exponent, kb ct lanes at once;
        // exit the domain through the ct multiply-by-one.
        ctx.CtModExpManyInto(kb, acc, prime_minus_1, 0, acc, &scratch);
        for (size_t l = 0; l < kb; ++l) {
          ctx.CtMulInto(acc[l], one.data(), acc[l], &scratch);
          std::vector<uint64_t> limbs(acc[l], acc[l] + n);
          BigInt cx = BigInt::FromLimbsLittleEndian(std::move(limbs));
          (*outs)[g0 + l] = LFunction(cx, prime).ModMul(h, prime);
        }
      }
    };
    halves(*p2_ctx_, p_, p_minus_1_, hp_, &mps);
    halves(*q2_ctx_, q_, q_minus_1_, hq_, &mqs);
    for (size_t g = 0; g < nfull; ++g) {
      const BigInt packed = CrtCombine(mps[g], mqs[g]);
      for (size_t i = 0; i < cap; ++i) {
        out[g * cap + i] =
            ExtractBits(packed, i * static_cast<size_t>(slot_bits), ell);
      }
    }
  }
  if (tail > 0) {
    return DecryptPackedMod2Ell(cs + nfull * cap, tail, slot_bits, ell,
                                out + nfull * cap);
  }
  return Status::OK();
}

Result<PaillierKeyPair> PaillierGenerateKeyPair(size_t modulus_bits,
                                                SecureRandom* rng) {
  if (modulus_bits < 64) {
    return Status::InvalidArgument("Paillier modulus too small");
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    BigInt p = BigInt::GeneratePrime(modulus_bits / 2, rng);
    BigInt q = BigInt::GeneratePrime(modulus_bits - modulus_bits / 2, rng);
    if (p == q) continue;
    BigInt n = p.Mul(q);
    BigInt phi = p.Sub(BigInt(1)).Mul(q.Sub(BigInt(1)));
    if (BigInt::Gcd(n, phi) != BigInt(1)) continue;
    auto priv = PaillierPrivateKey::FromPrimes(p, q);
    if (!priv.ok()) continue;
    PaillierKeyPair kp;
    kp.pub = priv->public_key();
    kp.priv = std::move(priv).value();
    return kp;
  }
  return Status::Internal("Paillier key generation failed repeatedly");
}

RandomizerPool::RandomizerPool(const PaillierPublicKey& pub, size_t size,
                               SecureRandom* rng, Mode mode,
                               unsigned short_exp_bits)
    : pub_(&pub), mode_(mode) {
  if (mode_ == Mode::kFixedBase && pub.n2_ctx() == nullptr) {
    mode_ = Mode::kPairwise;  // uninitialized key; keep the legacy path
  }
  if (mode_ == Mode::kPairwise) {
    assert(size >= 2);
    const MontgomeryCtx* ctx = pub.n2_ctx();
    std::unique_ptr<MontgomeryCtx::Scratch> scratch;
    if (ctx != nullptr) {
      pool_mont_.reserve(size);
      scratch = std::make_unique<MontgomeryCtx::Scratch>(*ctx);
    } else {
      pool_.reserve(size);
    }
    for (size_t i = 0; i < size; ++i) {
      auto enc_zero = pub.Encrypt(BigInt(), rng);
      assert(enc_zero.ok());
      if (ctx != nullptr) {
        // Montgomery form only; the plain pool_ backs the no-context
        // fallback exclusively.
        std::vector<uint64_t> mont(ctx->limbs());
        ctx->ToMontInto(enc_zero->value, mont.data(), scratch.get());
        pool_mont_.push_back(std::move(mont));
      } else {
        pool_.push_back(std::move(enc_zero)->value);
      }
    }
    return;
  }

  // kFixedBase: h = r0^N (one full-width Enc(0)), then radix-16 comb
  // tables over the short exponent width.
  short_exp_bits_ = ((short_exp_bits + 7) / 8) * 8;
  if (short_exp_bits_ < 64) short_exp_bits_ = 64;
  auto h = pub.Encrypt(BigInt(), rng);
  assert(h.ok());
  const MontgomeryCtx& ctx = *pub.n2_ctx();
  const size_t n = ctx.limbs();
  const size_t windows = (short_exp_bits_ + 3) / 4;
  fb_table_.assign(windows * 15, std::vector<uint64_t>(n));
  MontgomeryCtx::Scratch scratch(ctx);
  std::vector<uint64_t> base(n);
  ctx.ToMontInto(h->value, base.data(), &scratch);
  for (size_t w = 0; w < windows; ++w) {
    fb_table_[w * 15] = base;  // h^(1 * 16^w)
    for (unsigned d = 2; d <= 15; ++d) {
      ctx.MulInto(fb_table_[w * 15 + d - 2].data(), base.data(),
                  fb_table_[w * 15 + d - 1].data(), &scratch);
    }
    if (w + 1 < windows) {
      for (int s = 0; s < 4; ++s) {
        ctx.SqrInto(base.data(), base.data(), &scratch);  // base^16
      }
    }
  }
}

void RandomizerPool::FreshMaskMont(SecureRandom* rng, uint64_t* out,
                                   MontgomeryCtx::Scratch* scratch) const {
  assert(mode_ == Mode::kFixedBase);
  // h^r for r uniform in [0, 2^short_exp_bits): one comb pass, no
  // squarings (the tables absorb the radix shifts). The exponent is the
  // mask's secret, so every window multiplies: the operand is selected
  // branchlessly from {one_mont, table entries}, digit 0 contributing an
  // identity multiply instead of the skip that used to leak the zero-
  // digit count through timing. Values (and rng draws) are unchanged.
  const MontgomeryCtx& ctx = *pub_->n2_ctx();
  const size_t n = ctx.limbs();
  const BigInt e =
      BigInt::FromBytesBigEndian(rng->RandomBytes(short_exp_bits_ / 8));
  std::copy(ctx.one_mont_limbs().begin(), ctx.one_mont_limbs().end(), out);
  std::vector<uint64_t>& op = TlsMaskBuf(n, 1);
  const size_t windows = (short_exp_bits_ + 3) / 4;
  for (size_t w = 0; w < windows; ++w) {
    const uint64_t digit = (e.limb(w / 16) >> (4 * (w % 16))) & 0xF;
    std::fill_n(op.data(), n, 0);
    for (uint64_t d = 0; d < 16; ++d) {
      const uint64_t* src = d == 0 ? ctx.one_mont_limbs().data()
                                   : fb_table_[w * 15 + d - 1].data();
      const uint64_t msk = 0 - CtEq(d, digit);
      for (size_t i = 0; i < n; ++i) op[i] |= src[i] & msk;
    }
    ctx.CtMulInto(out, op.data(), out, scratch);
  }
}

PaillierCiphertext RandomizerPool::Rerandomize(const PaillierCiphertext& c,
                                               SecureRandom* rng) const {
  const MontgomeryCtx* ctx = pub_->n2_ctx();
  if (ctx == nullptr) {
    // No-context fallback (uninitialized key): legacy division path.
    size_t i = rng->UniformU64(pool_.size());
    size_t j = rng->UniformU64(pool_.size());
    BigInt masked = c.value.ModMul(pool_[i], pub_->n_squared());
    return PaillierCiphertext{masked.ModMul(pool_[j], pub_->n_squared())};
  }
  const size_t n = ctx->limbs();
  MontgomeryCtx::Scratch& scratch = TlsScratch(*ctx);
  std::vector<uint64_t> acc(n);  // becomes the returned BigInt's storage
  if (mode_ == Mode::kPairwise) {
    // Montgomery-form masks: each multiply into the plain-domain
    // ciphertext is a single fused CIOS pass, division- and
    // conversion-free.
    size_t i = rng->UniformU64(pool_mont_.size());
    size_t j = rng->UniformU64(pool_mont_.size());
    for (size_t k = 0; k < n; ++k) acc[k] = c.value.limb(k);
    ctx->MulInto(acc.data(), pool_mont_[i].data(), acc.data(), &scratch);
    ctx->MulInto(acc.data(), pool_mont_[j].data(), acc.data(), &scratch);
    return PaillierCiphertext{BigInt::FromLimbsLittleEndian(std::move(acc))};
  }
  std::vector<uint64_t>& mask = TlsMaskBuf(n);
  FreshMaskMont(rng, mask.data(), &scratch);
  for (size_t k = 0; k < n; ++k) acc[k] = c.value.limb(k);
  ctx->MulInto(acc.data(), mask.data(), acc.data(), &scratch);
  return PaillierCiphertext{BigInt::FromLimbsLittleEndian(std::move(acc))};
}

void RandomizerPool::RerandomizeMontInto(
    uint64_t* c_mont, SecureRandom* rng,
    MontgomeryCtx::Scratch* scratch) const {
  const MontgomeryCtx* ctx = pub_->n2_ctx();
  assert(ctx != nullptr);
  const size_t n = ctx->limbs();
  if (mode_ == Mode::kPairwise) {
    // Same index draws as Rerandomize; MontMul of two Montgomery
    // operands stays Montgomery, so the column never leaves the domain.
    size_t i = rng->UniformU64(pool_mont_.size());
    size_t j = rng->UniformU64(pool_mont_.size());
    ctx->MulInto(c_mont, pool_mont_[i].data(), c_mont, scratch);
    ctx->MulInto(c_mont, pool_mont_[j].data(), c_mont, scratch);
    return;
  }
  std::vector<uint64_t>& mask = TlsMaskBuf(n);
  FreshMaskMont(rng, mask.data(), scratch);
  ctx->MulInto(c_mont, mask.data(), c_mont, scratch);
}

void RandomizerPool::RerandomizeMontManyInto(
    size_t k, uint64_t* const* c_mont, SecureRandom* rng,
    MontgomeryCtx::Scratch* scratch) const {
  const MontgomeryCtx* ctx = pub_->n2_ctx();
  assert(ctx != nullptr);
  const size_t n = ctx->limbs();
  constexpr size_t kLanes = MontgomeryCtx::kMaxBatchLanes;
  if (mode_ == Mode::kPairwise) {
    const uint64_t* mi[kLanes];
    const uint64_t* mj[kLanes];
    for (size_t done = 0; done < k; done += kLanes) {
      const size_t kb = std::min(kLanes, k - done);
      // The scalar call draws (i, j) per ciphertext; drawing lane by
      // lane keeps the rng sequence — and thus the column — bitwise
      // identical to k scalar calls.
      for (size_t l = 0; l < kb; ++l) {
        mi[l] = pool_mont_[rng->UniformU64(pool_mont_.size())].data();
        mj[l] = pool_mont_[rng->UniformU64(pool_mont_.size())].data();
      }
      ctx->MulManyInto(kb, c_mont + done, mi, c_mont + done, scratch);
      ctx->MulManyInto(kb, c_mont + done, mj, c_mont + done, scratch);
    }
    return;
  }
  // kFixedBase: lane-distinct comb masks (sequential draws), one batch
  // multiply per lane block.
  std::vector<uint64_t>& masks = TlsMaskBuf(kLanes * n);
  const uint64_t* mp[kLanes];
  for (size_t done = 0; done < k; done += kLanes) {
    const size_t kb = std::min(kLanes, k - done);
    for (size_t l = 0; l < kb; ++l) {
      FreshMaskMont(rng, masks.data() + l * n, scratch);
      mp[l] = masks.data() + l * n;
    }
    ctx->MulManyInto(kb, c_mont + done, mp, c_mont + done, scratch);
  }
}

PaillierCiphertext RandomizerPool::EncryptFast(const BigInt& m,
                                               SecureRandom* rng) const {
  return Rerandomize(pub_->TrivialEncrypt(m), rng);
}

PaillierCiphertext RandomizerPool::EncryptFastU64(uint64_t m,
                                                  SecureRandom* rng) const {
  return EncryptFast(BigInt(m), rng);
}

}  // namespace crypto
}  // namespace shuffledp

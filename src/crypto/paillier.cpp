#include "crypto/paillier.h"

#include <cassert>

namespace shuffledp {
namespace crypto {

PaillierPublicKey::PaillierPublicKey(BigInt n)
    : n_(std::move(n)), n_squared_(n_.Mul(n_)) {}

Result<PaillierCiphertext> PaillierPublicKey::Encrypt(
    const BigInt& m, SecureRandom* rng) const {
  if (n_.IsZero()) {
    return Status::FailedPrecondition("Paillier public key not initialized");
  }
  if (m >= n_) {
    return Status::InvalidArgument("Paillier plaintext >= N");
  }
  // r uniform in [1, N) with gcd(r, N) = 1 (overwhelming for random r).
  BigInt r;
  do {
    r = BigInt::RandomBelow(n_, rng);
  } while (r.IsZero() || BigInt::Gcd(r, n_) != BigInt(1));

  // c = (1 + m*N) * r^N mod N^2.
  BigInt g_to_m = BigInt(1).Add(m.Mul(n_)).Mod(n_squared_);
  BigInt r_to_n = r.ModExp(n_, n_squared_);
  return PaillierCiphertext{g_to_m.ModMul(r_to_n, n_squared_)};
}

Result<PaillierCiphertext> PaillierPublicKey::EncryptU64(
    uint64_t m, SecureRandom* rng) const {
  return Encrypt(BigInt(m), rng);
}

PaillierCiphertext PaillierPublicKey::Add(const PaillierCiphertext& a,
                                          const PaillierCiphertext& b) const {
  return PaillierCiphertext{a.value.ModMul(b.value, n_squared_)};
}

PaillierCiphertext PaillierPublicKey::AddPlain(const PaillierCiphertext& c,
                                               const BigInt& m) const {
  BigInt g_to_m = BigInt(1).Add(m.Mod(n_).Mul(n_)).Mod(n_squared_);
  return PaillierCiphertext{c.value.ModMul(g_to_m, n_squared_)};
}

PaillierCiphertext PaillierPublicKey::ScalarMult(const PaillierCiphertext& c,
                                                 const BigInt& k) const {
  return PaillierCiphertext{c.value.ModExp(k, n_squared_)};
}

PaillierCiphertext PaillierPublicKey::TrivialEncrypt(const BigInt& m) const {
  return PaillierCiphertext{BigInt(1).Add(m.Mod(n_).Mul(n_)).Mod(n_squared_)};
}

Bytes PaillierPublicKey::SerializeCiphertext(
    const PaillierCiphertext& c) const {
  return c.value.ToBytesBigEndian(CiphertextBytes());
}

Result<PaillierCiphertext> PaillierPublicKey::ParseCiphertext(
    const Bytes& bytes) const {
  if (bytes.size() != CiphertextBytes()) {
    return Status::DataLoss("Paillier ciphertext has wrong length");
  }
  BigInt v = BigInt::FromBytesBigEndian(bytes);
  if (v >= n_squared_) {
    return Status::CryptoError("Paillier ciphertext out of range");
  }
  return PaillierCiphertext{std::move(v)};
}

namespace {

// L_n(x) = (x - 1) / n. Pre: x == 1 mod n.
BigInt LFunction(const BigInt& x, const BigInt& n) {
  BigInt q;
  Status st = x.Sub(BigInt(1)).DivMod(n, &q, nullptr);
  assert(st.ok());
  (void)st;
  return q;
}

}  // namespace

Result<PaillierPrivateKey> PaillierPrivateKey::FromPrimes(const BigInt& p,
                                                          const BigInt& q) {
  if (p == q) return Status::InvalidArgument("Paillier: p == q");
  PaillierPrivateKey key;
  key.p_ = p;
  key.q_ = q;
  key.p_squared_ = p.Mul(p);
  key.q_squared_ = q.Mul(q);
  BigInt n = p.Mul(q);
  key.pub_ = PaillierPublicKey(n);

  // With g = N + 1:  g^{p-1} mod p^2 = 1 + (p-1)*N mod p^2, so
  // hp = ( L_p(g^{p-1} mod p^2) )^{-1} mod p.
  const BigInt g = n.Add(BigInt(1));
  BigInt p_minus_1 = p.Sub(BigInt(1));
  BigInt q_minus_1 = q.Sub(BigInt(1));

  BigInt gp = g.ModExp(p_minus_1, key.p_squared_);
  BigInt gq = g.ModExp(q_minus_1, key.q_squared_);
  auto hp = LFunction(gp, p).Mod(p).ModInverse(p);
  if (!hp.ok()) return Status::CryptoError("Paillier: hp not invertible");
  auto hq = LFunction(gq, q).Mod(q).ModInverse(q);
  if (!hq.ok()) return Status::CryptoError("Paillier: hq not invertible");
  key.hp_ = *hp;
  key.hq_ = *hq;

  auto q_inv = q.ModInverse(p);
  if (!q_inv.ok()) return Status::CryptoError("Paillier: q not invertible");
  key.q_sq_inv_mod_p_sq_ = *q_inv;  // actually q^{-1} mod p for Garner CRT
  return key;
}

Result<BigInt> PaillierPrivateKey::Decrypt(const PaillierCiphertext& c) const {
  if (p_.IsZero()) {
    return Status::FailedPrecondition("Paillier private key not initialized");
  }
  if (c.value >= pub_.n_squared() || c.value.IsZero()) {
    return Status::CryptoError("Paillier: ciphertext out of range");
  }
  // CRT decryption: m_p = L_p(c^{p-1} mod p^2) * hp mod p, same for q.
  BigInt p_minus_1 = p_.Sub(BigInt(1));
  BigInt q_minus_1 = q_.Sub(BigInt(1));
  BigInt cp = c.value.Mod(p_squared_).ModExp(p_minus_1, p_squared_);
  BigInt cq = c.value.Mod(q_squared_).ModExp(q_minus_1, q_squared_);
  BigInt mp = LFunction(cp, p_).ModMul(hp_, p_);
  BigInt mq = LFunction(cq, q_).ModMul(hq_, q_);

  // Garner recombination: m = mq + q * ((mp - mq) * q^{-1} mod p).
  BigInt diff;
  if (mp >= mq.Mod(p_)) {
    diff = mp.Sub(mq.Mod(p_));
  } else {
    diff = mp.Add(p_).Sub(mq.Mod(p_));
  }
  BigInt h = diff.ModMul(q_sq_inv_mod_p_sq_, p_);
  return mq.Add(q_.Mul(h));
}

Result<uint64_t> PaillierPrivateKey::DecryptMod2Ell(
    const PaillierCiphertext& c, unsigned ell) const {
  assert(ell >= 1 && ell <= 64);
  auto m = Decrypt(c);
  if (!m.ok()) return m.status();
  uint64_t low = m->IsZero() ? 0 : m->ToBytesBigEndian(8).back();
  // Reconstruct the low 64 bits properly from big-endian bytes.
  Bytes be = m->ToBytesBigEndian(8);
  low = 0;
  for (size_t i = be.size() - 8; i < be.size(); ++i) {
    low = (low << 8) | be[i];
  }
  if (ell == 64) return low;
  return low & ((uint64_t{1} << ell) - 1);
}

Result<PaillierKeyPair> PaillierGenerateKeyPair(size_t modulus_bits,
                                                SecureRandom* rng) {
  if (modulus_bits < 64) {
    return Status::InvalidArgument("Paillier modulus too small");
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    BigInt p = BigInt::GeneratePrime(modulus_bits / 2, rng);
    BigInt q = BigInt::GeneratePrime(modulus_bits - modulus_bits / 2, rng);
    if (p == q) continue;
    BigInt n = p.Mul(q);
    BigInt phi = p.Sub(BigInt(1)).Mul(q.Sub(BigInt(1)));
    if (BigInt::Gcd(n, phi) != BigInt(1)) continue;
    auto priv = PaillierPrivateKey::FromPrimes(p, q);
    if (!priv.ok()) continue;
    PaillierKeyPair kp;
    kp.pub = priv->public_key();
    kp.priv = std::move(priv).value();
    return kp;
  }
  return Status::Internal("Paillier key generation failed repeatedly");
}

RandomizerPool::RandomizerPool(const PaillierPublicKey& pub, size_t size,
                               SecureRandom* rng)
    : pub_(&pub) {
  assert(size >= 2);
  pool_.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    auto enc_zero = pub.Encrypt(BigInt(), rng);
    assert(enc_zero.ok());
    pool_.push_back(std::move(enc_zero)->value);
  }
}

PaillierCiphertext RandomizerPool::Rerandomize(const PaillierCiphertext& c,
                                               SecureRandom* rng) const {
  size_t i = rng->UniformU64(pool_.size());
  size_t j = rng->UniformU64(pool_.size());
  BigInt masked = c.value.ModMul(pool_[i], pub_->n_squared());
  return PaillierCiphertext{masked.ModMul(pool_[j], pub_->n_squared())};
}

PaillierCiphertext RandomizerPool::EncryptFast(const BigInt& m,
                                               SecureRandom* rng) const {
  return Rerandomize(pub_->TrivialEncrypt(m), rng);
}

PaillierCiphertext RandomizerPool::EncryptFastU64(uint64_t m,
                                                  SecureRandom* rng) const {
  return EncryptFast(BigInt(m), rng);
}

}  // namespace crypto
}  // namespace shuffledp

// Paillier additively homomorphic encryption.
//
// PEOS needs an AHE scheme whose decrypted sums, reduced mod 2^ell, equal
// the Z_{2^ell} secret-shared sums (the paper instantiates DGK with
// Pohlig-Hellman full decryption for a Z_{2^ell} plaintext space; see
// DESIGN.md §4 for why Paillier-with-final-mod-2^ell is an exact behavioural
// substitute: every share is an ell-bit value, the number of summands k
// satisfies k * 2^ell << N, so the decrypted integer is the true sum over Z
// and its residue mod 2^ell is the shared value).
//
// Implementation notes:
//  * g = N + 1, so Enc(m; r) = (1 + m*N) * r^N mod N^2 — one modexp.
//  * Decryption uses CRT over p^2 and q^2 (≈4x faster than the direct
//    lambda exponentiation, which survives as DecryptDirect for
//    cross-checks).
//  * Both keys pin Montgomery contexts for their moduli (N^2 on the
//    public key, p^2/q^2 on the private key), so every Encrypt / Decrypt
//    / Add / ScalarMult runs division-free on precomputed contexts.
//  * DecryptPackedMod2Ell packs many small plaintexts into one Paillier
//    plaintext (Horner in the Montgomery domain: w squarings + 1 multiply
//    per ciphertext) and amortizes the two CRT modexps of a full
//    decryption over the whole group — the PEOS server-side fast path.
//  * A RandomizerPool can amortize the r^N modexp for simulation-scale
//    benchmarks. Two modes (documented tradeoffs; full-strength
//    PaillierPublicKey::Encrypt is the default everywhere except the
//    Table III bench):
//      - kPairwise (DESIGN.md §4 item 5): masks are products of two
//        pooled Enc(0) values — pool_size^2 distinct masks only, a
//        simulation shortcut with no formal rerandomization guarantee.
//      - kFixedBase: DJN-style randomizers h^r for h = r0^N and a short
//        uniform exponent r of 2*lambda bits evaluated from fixed-base
//        comb tables (the P256Precomputed pattern). Fresh masks per call;
//        security rests on the standard Damgård-Jurik-Nielsen short-
//        exponent indistinguishability assumption (h^r for r ~ U[0, 2^t)
//        vs a uniform N-th residue, t = 2*lambda), which is *stronger*
//        than the DCR assumption plain Paillier needs — hence full-width
//        r^N stays the default and kFixedBase is opt-in.

#ifndef SHUFFLEDP_CRYPTO_PAILLIER_H_
#define SHUFFLEDP_CRYPTO_PAILLIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/montgomery.h"
#include "crypto/secure_random.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

/// A Paillier ciphertext (value in [0, N^2)).
struct PaillierCiphertext {
  BigInt value;
};

/// Public key: modulus N (and cached N^2 + its Montgomery context).
class PaillierPublicKey {
 public:
  PaillierPublicKey() = default;
  explicit PaillierPublicKey(BigInt n);

  const BigInt& n() const { return n_; }
  const BigInt& n_squared() const { return n_squared_; }

  /// Montgomery context for N^2 (null until constructed with an odd N).
  const MontgomeryCtx* n2_ctx() const { return n2_ctx_.get(); }

  /// Ciphertext wire size in bytes (= 2 * |N| rounded up).
  size_t CiphertextBytes() const { return (n_squared_.BitLength() + 7) / 8; }

  /// Encrypts `m` (must be < N) with fresh randomness (one modexp).
  Result<PaillierCiphertext> Encrypt(const BigInt& m, SecureRandom* rng) const;

  /// Encrypts a 64-bit share value.
  Result<PaillierCiphertext> EncryptU64(uint64_t m, SecureRandom* rng) const;

  /// Homomorphic addition: Enc(a) (+) Enc(b) = Enc(a + b mod N).
  PaillierCiphertext Add(const PaillierCiphertext& a,
                         const PaillierCiphertext& b) const;

  /// Adds a plaintext constant: Enc(a) (+) m = Enc(a + m mod N). No modexp.
  PaillierCiphertext AddPlain(const PaillierCiphertext& c,
                              const BigInt& m) const;

  /// Homomorphic scalar multiplication: Enc(a) ^ k = Enc(a * k mod N).
  PaillierCiphertext ScalarMult(const PaillierCiphertext& c,
                                const BigInt& k) const;

  /// Deterministic trivial encryption of m with r = 1 (used as the identity
  /// element; NOT semantically secure on its own — always rerandomize).
  PaillierCiphertext TrivialEncrypt(const BigInt& m) const;

  // --- Montgomery-resident ciphertext column --------------------------
  //
  // The EOS rerandomize chain touches every ciphertext once per C(r, t)
  // round: homomorphically add an ell-bit mask adjustment, then re-mask.
  // Keeping the whole column in the Montgomery domain across all rounds
  // turns each round into pure fused CIOS passes — the only to/from-
  // Montgomery conversions are one per element at chain entry and exit.
  // All three kernels require n2_ctx() != nullptr (any real key) and
  // limb buffers of exactly n2_ctx()->limbs() words.

  /// c -> Montgomery form (entry into the resident chain).
  void ToMontCiphertext(const PaillierCiphertext& c, uint64_t* out,
                        MontgomeryCtx::Scratch* scratch) const;

  /// Montgomery-form limbs -> canonical ciphertext (chain exit).
  PaillierCiphertext FromMontCiphertext(const uint64_t* limbs,
                                        MontgomeryCtx::Scratch* scratch) const;

  /// In-place Montgomery-domain AddPlain: c̃ <- c̃ ⊗ ToMont(g^m), i.e.
  /// Enc(a) (+) m without leaving the domain (two fused CIOS passes:
  /// one ToMont of the short g^m = 1 + mN operand, one multiply).
  void AddPlainMontInto(uint64_t* c_mont, const BigInt& m,
                        MontgomeryCtx::Scratch* scratch) const;

  /// Batch AddPlainMontInto over k resident ciphertexts: c_mont[l] gets
  /// ms[l] added, bitwise identical to k scalar calls but routed through
  /// the interleaved batch kernels (both CIOS passes run k lanes wide).
  void AddPlainMontManyInto(size_t k, uint64_t* const* c_mont,
                            const BigInt* ms,
                            MontgomeryCtx::Scratch* scratch) const;

  /// Serialization for the simulated network channels.
  Bytes SerializeCiphertext(const PaillierCiphertext& c) const;
  Result<PaillierCiphertext> ParseCiphertext(const Bytes& bytes) const;

 private:
  // (1 + m*N) mod N^2 for m already reduced mod N.
  BigInt GToM(const BigInt& m_reduced) const;

  BigInt n_;
  BigInt n_squared_;
  std::shared_ptr<const MontgomeryCtx> n2_ctx_;
};

/// Private key holding the factorization (CRT decryption).
class PaillierPrivateKey {
 public:
  PaillierPrivateKey() = default;

  /// Builds the private key from the prime factorization N = p * q.
  static Result<PaillierPrivateKey> FromPrimes(const BigInt& p,
                                               const BigInt& q);

  /// Decrypts to the full plaintext in [0, N).
  Result<BigInt> Decrypt(const PaillierCiphertext& c) const;

  /// Reference decryption via the direct lambda exponentiation (no CRT);
  /// slow, kept for cross-checking the CRT path in tests.
  Result<BigInt> DecryptDirect(const PaillierCiphertext& c) const;

  /// Decrypts and reduces mod 2^ell (the Z_{2^ell} share recovery).
  Result<uint64_t> DecryptMod2Ell(const PaillierCiphertext& c,
                                  unsigned ell) const;

  /// How many ciphertexts DecryptPackedMod2Ell can fold into one
  /// decryption when each plaintext occupies `slot_bits` bits (>= 1).
  size_t PackedSlotCapacity(unsigned slot_bits) const;

  /// Batched share recovery: packs `count` ciphertexts (count <=
  /// PackedSlotCapacity(slot_bits)) into a single Paillier plaintext —
  /// slot i gets plaintext i at bit offset i*slot_bits via a Montgomery-
  /// domain Horner pass over both CRT residues (each ciphertext is
  /// converted into the Montgomery domain once, accumulated with
  /// MontMul/MontSqr, and converted back once per group) — then recovers
  /// every slot mod 2^ell (ell <= 64) from one CRT decryption.
  ///
  /// Pre: every plaintext is < 2^slot_bits. PEOS guarantees this by
  /// construction (shares are ell-bit values and each EOS round adds one
  /// more ell-bit mask adjustment, so slot_bits = ell +
  /// ceil(log2(rounds + 1)) + 1 bounds the integer sum). Tradeoff vs
  /// per-row decryption: a single adversarially oversized plaintext
  /// corrupts its whole pack group instead of only its own row — callers
  /// that must isolate hostile plaintexts row-by-row should keep
  /// DecryptMod2Ell.
  Status DecryptPackedMod2Ell(const PaillierCiphertext* cs, size_t count,
                              unsigned slot_bits, unsigned ell,
                              uint64_t* out) const;

  /// Multi-group DecryptPackedMod2Ell: splits `count` ciphertexts into
  /// PackedSlotCapacity(slot_bits)-sized groups and runs up to
  /// MontgomeryCtx::kMaxBatchLanes group Horner chains — and their CRT
  /// modexps — through the interleaved batch kernels at once. Results
  /// are bitwise identical to looping DecryptPackedMod2Ell over the
  /// groups; same preconditions, except count may exceed the capacity.
  Status DecryptPackedMod2EllBatch(const PaillierCiphertext* cs, size_t count,
                                   unsigned slot_bits, unsigned ell,
                                   uint64_t* out) const;

  const PaillierPublicKey& public_key() const { return pub_; }

 private:
  // mp/mq half: L_m(c^(m-1) mod m^2) * h mod m. The m-1 exponent is
  // secret, so the modexp runs on the constant-time ladder.
  BigInt RecoverHalf(const MontgomeryCtx& ctx, const BigInt& c_reduced,
                     const BigInt& prime, const BigInt& prime_minus_1,
                     const BigInt& h) const;
  // Garner recombination of the CRT halves.
  BigInt CrtCombine(const BigInt& mp, const BigInt& mq) const;

  PaillierPublicKey pub_;
  BigInt p_, q_;            // primes
  BigInt p_squared_, q_squared_;
  BigInt p_minus_1_, q_minus_1_;
  BigInt hp_, hq_;          // CRT precomputation: L_p(g^{p-1} mod p^2)^-1 etc.
  BigInt q_sq_inv_mod_p_sq_;  // for CRT recombination
  std::shared_ptr<const MontgomeryCtx> p2_ctx_, q2_ctx_;
};

/// Key pair.
struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

/// Generates a key pair with an N of `modulus_bits` bits.
Result<PaillierKeyPair> PaillierGenerateKeyPair(size_t modulus_bits,
                                                SecureRandom* rng);

/// Pool of precomputed Enc(0) randomizer material (see the header note on
/// the kPairwise / kFixedBase tradeoff). This is a *documented simulation
/// shortcut* for benchmark throughput; production deployments should use
/// fresh full-width r^N per ciphertext (`PaillierPublicKey::Encrypt`).
class RandomizerPool {
 public:
  enum class Mode {
    kPairwise,   ///< product of two pooled Enc(0) masks (legacy default)
    kFixedBase,  ///< fresh DJN short-exponent fixed-base mask per call
  };

  /// kPairwise: precomputes `size` Enc(0) values (size >= 2).
  /// kFixedBase: precomputes the comb tables for h = r0^N; `size` is
  /// ignored. `short_exp_bits` is the fixed-base exponent width t = 2λ
  /// (rounded up to a byte multiple; default 256 covers λ = 128).
  RandomizerPool(const PaillierPublicKey& pub, size_t size,
                 SecureRandom* rng, Mode mode = Mode::kPairwise,
                 unsigned short_exp_bits = 256);

  Mode mode() const { return mode_; }

  /// Returns c multiplied by a fresh Enc(0) mask (two pooled masks in
  /// kPairwise mode, one fixed-base mask in kFixedBase mode).
  PaillierCiphertext Rerandomize(const PaillierCiphertext& c,
                                 SecureRandom* rng) const;

  /// In-place Rerandomize of a Montgomery-form ciphertext (the resident
  /// EOS column): multiplies the same masks as Rerandomize — identical
  /// rng draws, identical plaintext effect — but stays in the domain
  /// (masks are pooled in Montgomery form, so each application is one
  /// fused CIOS pass and the product of two Montgomery operands is again
  /// a Montgomery operand). Pre: the key has a Montgomery context and
  /// `c_mont` holds n2_ctx()->limbs() words.
  void RerandomizeMontInto(uint64_t* c_mont, SecureRandom* rng,
                           MontgomeryCtx::Scratch* scratch) const;

  /// Batch RerandomizeMontInto over k resident ciphertexts. Draws the
  /// same rng sequence as k scalar calls (lane l's draws come l-th, in
  /// the scalar order) and produces bitwise-identical ciphertexts; the
  /// mask multiplies run k lanes wide through the batch kernels.
  void RerandomizeMontManyInto(size_t k, uint64_t* const* c_mont,
                               SecureRandom* rng,
                               MontgomeryCtx::Scratch* scratch) const;

  /// Encrypts without a full-width modexp: (1 + mN) * mask.
  PaillierCiphertext EncryptFast(const BigInt& m, SecureRandom* rng) const;
  PaillierCiphertext EncryptFastU64(uint64_t m, SecureRandom* rng) const;

 private:
  // Writes the Montgomery form of a fresh comb-evaluated h^r mask into
  // `out` (kFixedBase mode only).
  void FreshMaskMont(SecureRandom* rng, uint64_t* out,
                     MontgomeryCtx::Scratch* scratch) const;

  const PaillierPublicKey* pub_;
  Mode mode_ = Mode::kPairwise;

  // kPairwise masks, stored in Montgomery form so applying one is a
  // single fused CIOS pass (multiplying a Montgomery-form mask into a
  // plain-domain ciphertext yields the plain-domain product directly).
  // `pool_` keeps the plain values for the no-context fallback.
  std::vector<std::vector<uint64_t>> pool_mont_;
  std::vector<BigInt> pool_;

  // kFixedBase: radix-16 comb over h = r0^N in Montgomery form;
  // fb_table_[15 * w + (d - 1)] = ToMont(h^(d * 16^w)), d in [1, 15].
  unsigned short_exp_bits_ = 0;
  std::vector<std::vector<uint64_t>> fb_table_;
};

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_PAILLIER_H_

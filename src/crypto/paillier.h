// Paillier additively homomorphic encryption.
//
// PEOS needs an AHE scheme whose decrypted sums, reduced mod 2^ell, equal
// the Z_{2^ell} secret-shared sums (the paper instantiates DGK with
// Pohlig-Hellman full decryption for a Z_{2^ell} plaintext space; see
// DESIGN.md §4 for why Paillier-with-final-mod-2^ell is an exact behavioural
// substitute: every share is an ell-bit value, the number of summands k
// satisfies k * 2^ell << N, so the decrypted integer is the true sum over Z
// and its residue mod 2^ell is the shared value).
//
// Implementation notes:
//  * g = N + 1, so Enc(m; r) = (1 + m*N) * r^N mod N^2 — one modexp.
//  * Decryption uses CRT over p^2 and q^2 (≈4x faster than the direct
//    lambda exponentiation).
//  * A RandomizerPool can amortize the r^N modexp for simulation-scale
//    benchmarks (documented tradeoff; full-strength mode is the default
//    everywhere except the Table III bench).

#ifndef SHUFFLEDP_CRYPTO_PAILLIER_H_
#define SHUFFLEDP_CRYPTO_PAILLIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/secure_random.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

/// A Paillier ciphertext (value in [0, N^2)).
struct PaillierCiphertext {
  BigInt value;
};

/// Public key: modulus N (and cached N^2).
class PaillierPublicKey {
 public:
  PaillierPublicKey() = default;
  explicit PaillierPublicKey(BigInt n);

  const BigInt& n() const { return n_; }
  const BigInt& n_squared() const { return n_squared_; }

  /// Ciphertext wire size in bytes (= 2 * |N| rounded up).
  size_t CiphertextBytes() const { return (n_squared_.BitLength() + 7) / 8; }

  /// Encrypts `m` (must be < N) with fresh randomness (one modexp).
  Result<PaillierCiphertext> Encrypt(const BigInt& m, SecureRandom* rng) const;

  /// Encrypts a 64-bit share value.
  Result<PaillierCiphertext> EncryptU64(uint64_t m, SecureRandom* rng) const;

  /// Homomorphic addition: Enc(a) (+) Enc(b) = Enc(a + b mod N).
  PaillierCiphertext Add(const PaillierCiphertext& a,
                         const PaillierCiphertext& b) const;

  /// Adds a plaintext constant: Enc(a) (+) m = Enc(a + m mod N). No modexp.
  PaillierCiphertext AddPlain(const PaillierCiphertext& c,
                              const BigInt& m) const;

  /// Homomorphic scalar multiplication: Enc(a) ^ k = Enc(a * k mod N).
  PaillierCiphertext ScalarMult(const PaillierCiphertext& c,
                                const BigInt& k) const;

  /// Deterministic trivial encryption of m with r = 1 (used as the identity
  /// element; NOT semantically secure on its own — always rerandomize).
  PaillierCiphertext TrivialEncrypt(const BigInt& m) const;

  /// Serialization for the simulated network channels.
  Bytes SerializeCiphertext(const PaillierCiphertext& c) const;
  Result<PaillierCiphertext> ParseCiphertext(const Bytes& bytes) const;

 private:
  BigInt n_;
  BigInt n_squared_;
};

/// Private key holding the factorization (CRT decryption).
class PaillierPrivateKey {
 public:
  PaillierPrivateKey() = default;

  /// Builds the private key from the prime factorization N = p * q.
  static Result<PaillierPrivateKey> FromPrimes(const BigInt& p,
                                               const BigInt& q);

  /// Decrypts to the full plaintext in [0, N).
  Result<BigInt> Decrypt(const PaillierCiphertext& c) const;

  /// Decrypts and reduces mod 2^ell (the Z_{2^ell} share recovery).
  Result<uint64_t> DecryptMod2Ell(const PaillierCiphertext& c,
                                  unsigned ell) const;

  const PaillierPublicKey& public_key() const { return pub_; }

 private:
  PaillierPublicKey pub_;
  BigInt p_, q_;            // primes
  BigInt p_squared_, q_squared_;
  BigInt hp_, hq_;          // CRT precomputation: L_p(g^{p-1} mod p^2)^-1 etc.
  BigInt q_sq_inv_mod_p_sq_;  // for CRT recombination
};

/// Key pair.
struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

/// Generates a key pair with an N of `modulus_bits` bits.
Result<PaillierKeyPair> PaillierGenerateKeyPair(size_t modulus_bits,
                                                SecureRandom* rng);

/// Pool of precomputed Enc(0) randomizers.
///
/// Rerandomization multiplies by the product of two independently chosen
/// pool entries, giving pool_size^2 distinct masks per ciphertext. This is
/// a *documented simulation shortcut* for benchmark throughput (DESIGN.md
/// §4 item 5); production deployments should use fresh r^N per ciphertext
/// (`PaillierPublicKey::Encrypt`).
class RandomizerPool {
 public:
  /// Precomputes `size` Enc(0) values (size >= 2).
  RandomizerPool(const PaillierPublicKey& pub, size_t size,
                 SecureRandom* rng);

  /// Returns c * pool[i] * pool[j] mod N^2 for random i, j.
  PaillierCiphertext Rerandomize(const PaillierCiphertext& c,
                                 SecureRandom* rng) const;

  /// Encrypts without a fresh modexp: (1 + mN) * pool mask.
  PaillierCiphertext EncryptFast(const BigInt& m, SecureRandom* rng) const;
  PaillierCiphertext EncryptFastU64(uint64_t m, SecureRandom* rng) const;

 private:
  const PaillierPublicKey* pub_;
  std::vector<BigInt> pool_;
};

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_PAILLIER_H_

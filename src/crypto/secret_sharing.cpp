#include "crypto/secret_sharing.h"

#include <cassert>

namespace shuffledp {
namespace crypto {

namespace {

inline uint64_t Mask(unsigned ell) {
  return ell >= 64 ? ~uint64_t{0} : ((uint64_t{1} << ell) - 1);
}

}  // namespace

std::vector<uint64_t> SplitShares2Ell(uint64_t secret, size_t count,
                                      unsigned ell, SecureRandom* rng) {
  assert(count >= 1);
  assert(ell >= 1 && ell <= 64);
  const uint64_t mask = Mask(ell);
  std::vector<uint64_t> shares(count);
  uint64_t sum = 0;
  for (size_t i = 0; i + 1 < count; ++i) {
    shares[i] = rng->NextU64() & mask;
    sum = (sum + shares[i]) & mask;
  }
  shares[count - 1] = (secret - sum) & mask;
  return shares;
}

uint64_t ReconstructShares2Ell(const std::vector<uint64_t>& shares,
                               unsigned ell) {
  const uint64_t mask = Mask(ell);
  uint64_t sum = 0;
  for (uint64_t s : shares) sum = (sum + s) & mask;
  return sum;
}

Result<std::vector<uint64_t>> SplitSharesMod(uint64_t secret, size_t count,
                                             uint64_t modulus,
                                             SecureRandom* rng) {
  if (count < 1) return Status::InvalidArgument("share count must be >= 1");
  if (modulus == 0) return Status::InvalidArgument("modulus must be > 0");
  if (secret >= modulus) {
    return Status::InvalidArgument("secret must be < modulus");
  }
  std::vector<uint64_t> shares(count);
  // Work in unsigned 128 bits to avoid overflow for modulus near 2^64.
  unsigned __int128 sum = 0;
  for (size_t i = 0; i + 1 < count; ++i) {
    shares[i] = rng->UniformU64(modulus);
    sum += shares[i];
  }
  uint64_t sum_mod = static_cast<uint64_t>(sum % modulus);
  shares[count - 1] = (secret + modulus - sum_mod) % modulus;
  return shares;
}

uint64_t ReconstructSharesMod(const std::vector<uint64_t>& shares,
                              uint64_t modulus) {
  unsigned __int128 sum = 0;
  for (uint64_t s : shares) sum += s;
  return static_cast<uint64_t>(sum % modulus);
}

std::vector<uint64_t> AddShareVectors2Ell(const std::vector<uint64_t>& a,
                                          const std::vector<uint64_t>& b,
                                          unsigned ell) {
  assert(a.size() == b.size());
  const uint64_t mask = Mask(ell);
  std::vector<uint64_t> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = (a[i] + b[i]) & mask;
  return out;
}

}  // namespace crypto
}  // namespace shuffledp

// Additive secret sharing.
//
// PEOS users split their LDP report into r shares over Z_{2^ell}: r-1
// shares are uniform, the last makes the sum equal the secret (paper
// §II-C). The Z_{2^ell} group matches the AHE plaintext treatment (sums
// are recovered mod 2^ell; see paillier.h). A general modulus variant is
// provided for the ordinal-report mapping of GRR/SOLH outputs.

#ifndef SHUFFLEDP_CRYPTO_SECRET_SHARING_H_
#define SHUFFLEDP_CRYPTO_SECRET_SHARING_H_

#include <cstdint>
#include <vector>

#include "crypto/secure_random.h"
#include "util/status.h"

namespace shuffledp {
namespace crypto {

/// Splits `secret` into `count` additive shares over Z_{2^ell}
/// (1 <= ell <= 64). The first count-1 shares are uniform.
std::vector<uint64_t> SplitShares2Ell(uint64_t secret, size_t count,
                                      unsigned ell, SecureRandom* rng);

/// Reconstructs the secret: sum of shares mod 2^ell.
uint64_t ReconstructShares2Ell(const std::vector<uint64_t>& shares,
                               unsigned ell);

/// Splits `secret` (< modulus) into additive shares over Z_modulus.
Result<std::vector<uint64_t>> SplitSharesMod(uint64_t secret, size_t count,
                                             uint64_t modulus,
                                             SecureRandom* rng);

/// Reconstructs over Z_modulus.
uint64_t ReconstructSharesMod(const std::vector<uint64_t>& shares,
                              uint64_t modulus);

/// Adds two share vectors component-wise over Z_{2^ell}.
std::vector<uint64_t> AddShareVectors2Ell(const std::vector<uint64_t>& a,
                                          const std::vector<uint64_t>& b,
                                          unsigned ell);

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_SECRET_SHARING_H_

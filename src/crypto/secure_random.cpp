#include "crypto/secure_random.h"

#include <cstring>
#include <random>

namespace shuffledp {
namespace crypto {

namespace {

inline uint32_t Rotl32(uint32_t x, int r) { return (x << r) | (x >> (32 - r)); }

inline void QuarterRound(uint32_t* a, uint32_t* b, uint32_t* c, uint32_t* d) {
  *a += *b;
  *d ^= *a;
  *d = Rotl32(*d, 16);
  *c += *d;
  *b ^= *c;
  *b = Rotl32(*b, 12);
  *a += *b;
  *d ^= *a;
  *d = Rotl32(*d, 8);
  *c += *d;
  *b ^= *c;
  *b = Rotl32(*b, 7);
}

inline uint32_t Load32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline void Store32Le(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

void ChaCha20Block(const uint8_t key[32], const uint8_t nonce[12],
                   uint32_t counter, uint8_t out[64]) {
  // "expand 32-byte k" constants.
  uint32_t state[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
  for (int i = 0; i < 8; ++i) state[4 + i] = Load32Le(key + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = Load32Le(nonce + 4 * i);

  uint32_t w[16];
  std::memcpy(w, state, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(&w[0], &w[4], &w[8], &w[12]);
    QuarterRound(&w[1], &w[5], &w[9], &w[13]);
    QuarterRound(&w[2], &w[6], &w[10], &w[14]);
    QuarterRound(&w[3], &w[7], &w[11], &w[15]);
    QuarterRound(&w[0], &w[5], &w[10], &w[15]);
    QuarterRound(&w[1], &w[6], &w[11], &w[12]);
    QuarterRound(&w[2], &w[7], &w[8], &w[13]);
    QuarterRound(&w[3], &w[4], &w[9], &w[14]);
  }
  for (int i = 0; i < 16; ++i) Store32Le(out + 4 * i, w[i] + state[i]);
}

SecureRandom::SecureRandom() {
  std::random_device rd;
  for (size_t i = 0; i < key_.size(); i += 4) {
    uint32_t v = rd();
    std::memcpy(key_.data() + i, &v, 4);
  }
  nonce_.fill(0);
}

SecureRandom::SecureRandom(uint64_t seed) {
  // Expand the 64-bit seed into 256 bits with SplitMix64.
  uint64_t z = seed;
  for (size_t i = 0; i < 4; ++i) {
    z += 0x9E3779B97F4A7C15ULL;
    uint64_t x = z;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    std::memcpy(key_.data() + 8 * i, &x, 8);
  }
  nonce_.fill(0);
}

SecureRandom::SecureRandom(const std::array<uint8_t, 32>& key) : key_(key) {
  nonce_.fill(0);
}

void SecureRandom::Refill() {
  ChaCha20Block(key_.data(), nonce_.data(), counter_++, buffer_);
  if (counter_ == 0) {
    // Counter wrapped: bump the nonce so the keystream never repeats.
    for (auto& b : nonce_) {
      if (++b != 0) break;
    }
  }
  buffered_ = sizeof(buffer_);
}

void SecureRandom::Fill(uint8_t* out, size_t len) {
  while (len > 0) {
    if (buffered_ == 0) Refill();
    size_t take = std::min(len, buffered_);
    std::memcpy(out, buffer_ + (sizeof(buffer_) - buffered_), take);
    buffered_ -= take;
    out += take;
    len -= take;
  }
}

Bytes SecureRandom::RandomBytes(size_t len) {
  Bytes out(len);
  Fill(out.data(), len);
  return out;
}

uint64_t SecureRandom::NextU64() {
  uint64_t v;
  Fill(reinterpret_cast<uint8_t*>(&v), sizeof(v));
  return v;
}

uint64_t SecureRandom::UniformU64(uint64_t bound) {
  // Rejection sampling on the top of the range to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

SecureRandom SecureRandom::Fork() {
  std::array<uint8_t, 32> child_key;
  Fill(child_key.data(), child_key.size());
  return SecureRandom(child_key);
}

}  // namespace crypto
}  // namespace shuffledp

// ChaCha20-based deterministic random bit generator.
//
// All protocol randomness (keys, nonces, secret shares, shuffle
// permutations) flows through SecureRandom. The generator is the RFC 7539
// ChaCha20 block function run in counter mode over a 256-bit seed; when
// constructed without an explicit seed it mixes entropy from
// std::random_device. Tests construct it with fixed seeds for
// reproducibility.

#ifndef SHUFFLEDP_CRYPTO_SECURE_RANDOM_H_
#define SHUFFLEDP_CRYPTO_SECURE_RANDOM_H_

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace shuffledp {
namespace crypto {

/// Computes one 64-byte ChaCha20 block (RFC 7539 §2.3).
///
/// `key` is 32 bytes, `nonce` 12 bytes, `counter` the 32-bit block counter.
/// Exposed for the known-answer tests.
void ChaCha20Block(const uint8_t key[32], const uint8_t nonce[12],
                   uint32_t counter, uint8_t out[64]);

/// Cryptographic DRBG: ChaCha20 keystream over a 256-bit seed.
class SecureRandom {
 public:
  /// Seeds from std::random_device (non-deterministic).
  SecureRandom();

  /// Deterministic: expands `seed` into a 256-bit key via repeated hashing.
  explicit SecureRandom(uint64_t seed);

  /// Deterministic from a full 32-byte key.
  explicit SecureRandom(const std::array<uint8_t, 32>& key);

  /// Fills `out[0..len)` with keystream bytes.
  void Fill(uint8_t* out, size_t len);

  /// Returns `len` random bytes.
  Bytes RandomBytes(size_t len);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Unbiased uniform value in [0, bound); bound > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Derives an independent child generator.
  SecureRandom Fork();

 private:
  void Refill();

  std::array<uint8_t, 32> key_;
  std::array<uint8_t, 12> nonce_;
  uint32_t counter_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;  // unread bytes remaining at the tail of buffer_
};

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_SECURE_RANDOM_H_

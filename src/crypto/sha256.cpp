#include "crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define SHUFFLEDP_SHANI_COMPILED 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace shuffledp {
namespace crypto {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int r) { return (x >> r) | (x << (32 - r)); }

// ---------------------------------------------------------------------------
// SHA-NI backend: the FIPS 180-4 compression function expressed with the
// x86 SHA extensions (sha256rnds2 runs two rounds; sha256msg1/msg2 compute
// the message schedule). Compiled behind a function-level target attribute
// and only executed after a runtime CPUID check.
// ---------------------------------------------------------------------------

#ifdef SHUFFLEDP_SHANI_COMPILED

bool CpuHasShaNi() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 29)) != 0;  // CPUID.(7,0):EBX.SHA
}

__attribute__((target("sha,ssse3,sse4.1"))) void ShaNiProcessBlocks(
    uint32_t state[8], const uint8_t* data, size_t nblocks) {
  const __m128i kShuffleMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack h0..h7 into the ABEF / CDGH register layout SHA-NI expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);          // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);    // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  while (nblocks > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msgtmp;
    __m128i msg0, msg1, msg2, msg3;

    // Rounds 0-3.
    msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data)), kShuffleMask);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)),
        kShuffleMask);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)),
        kShuffleMask);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15 onward follow one template: feed the schedule with
    // msg2/msg1 and advance four message registers cyclically.
    msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)),
        kShuffleMask);
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

#define SHUFFLEDP_SHA_ROUND4(ma, mb, mc, md, k_hi, k_lo)          \
  msg = _mm_add_epi32(ma, _mm_set_epi64x(k_hi, k_lo));            \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);            \
  msgtmp = _mm_alignr_epi8(ma, md, 4);                            \
  mb = _mm_add_epi32(mb, msgtmp);                                 \
  mb = _mm_sha256msg2_epu32(mb, ma);                              \
  msg = _mm_shuffle_epi32(msg, 0x0E);                             \
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);            \
  md = _mm_sha256msg1_epu32(md, ma)

    SHUFFLEDP_SHA_ROUND4(msg0, msg1, msg2, msg3, 0x240CA1CC0FC19DC6ULL,
                         0xEFBE4786E49B69C1ULL);  // rounds 16-19
    SHUFFLEDP_SHA_ROUND4(msg1, msg2, msg3, msg0, 0x76F988DA5CB0A9DCULL,
                         0x4A7484AA2DE92C6FULL);  // rounds 20-23
    SHUFFLEDP_SHA_ROUND4(msg2, msg3, msg0, msg1, 0xBF597FC7B00327C8ULL,
                         0xA831C66D983E5152ULL);  // rounds 24-27
    SHUFFLEDP_SHA_ROUND4(msg3, msg0, msg1, msg2, 0x1429296706CA6351ULL,
                         0xD5A79147C6E00BF3ULL);  // rounds 28-31
    SHUFFLEDP_SHA_ROUND4(msg0, msg1, msg2, msg3, 0x53380D134D2C6DFCULL,
                         0x2E1B213827B70A85ULL);  // rounds 32-35
    SHUFFLEDP_SHA_ROUND4(msg1, msg2, msg3, msg0, 0x92722C8581C2C92EULL,
                         0x766A0ABB650A7354ULL);  // rounds 36-39
    SHUFFLEDP_SHA_ROUND4(msg2, msg3, msg0, msg1, 0xC76C51A3C24B8B70ULL,
                         0xA81A664BA2BFE8A1ULL);  // rounds 40-43
    SHUFFLEDP_SHA_ROUND4(msg3, msg0, msg1, msg2, 0x106AA070F40E3585ULL,
                         0xD6990624D192E819ULL);  // rounds 44-47
    SHUFFLEDP_SHA_ROUND4(msg0, msg1, msg2, msg3, 0x34B0BCB52748774CULL,
                         0x1E376C0819A4C116ULL);  // rounds 48-51
#undef SHUFFLEDP_SHA_ROUND4

    // Rounds 52-55 (schedule no longer needs msg1).
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
    --nblocks;
  }

  // Repack ABEF / CDGH back to h0..h7.
  tmp = _mm_shuffle_epi32(state0, 0x1B);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);    // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#else

bool CpuHasShaNi() { return false; }

#endif  // SHUFFLEDP_SHANI_COMPILED

ShaBackend& ShaBackendOverride() {
  static ShaBackend backend = BestShaBackend();
  return backend;
}

}  // namespace

ShaBackend BestShaBackend() {
  return CpuHasShaNi() ? ShaBackend::kShaNi : ShaBackend::kPortable;
}

ShaBackend ActiveShaBackend() { return ShaBackendOverride(); }

void SetShaBackend(ShaBackend backend) {
  if (backend == ShaBackend::kShaNi && !CpuHasShaNi()) {
    backend = ShaBackend::kPortable;
  }
  ShaBackendOverride() = backend;
}

const char* ShaBackendName(ShaBackend backend) {
  return backend == ShaBackend::kShaNi ? "shani" : "portable";
}

Sha256::Sha256() { Reset(); }

void Sha256::Reset() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
  total_len_ = 0;
  buffered_ = 0;
}

void Sha256::ProcessBlocks(const uint8_t* data, size_t nblocks) {
#ifdef SHUFFLEDP_SHANI_COMPILED
  if (ActiveShaBackend() == ShaBackend::kShaNi) {
    ShaNiProcessBlocks(h_, data, nblocks);
    return;
  }
#endif
  for (size_t i = 0; i < nblocks; ++i) ProcessBlock(data + 64 * i);
}

void Sha256::ProcessBlock(const uint8_t block[64]) {
#ifdef SHUFFLEDP_SHANI_COMPILED
  if (ActiveShaBackend() == ShaBackend::kShaNi) {
    ShaNiProcessBlocks(h_, block, 1);
    return;
  }
#endif
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];

  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += len;
  if (buffered_ > 0) {
    size_t take = std::min(len, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    len -= take;
    if (buffered_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  if (len >= 64) {
    size_t nblocks = len / 64;
    ProcessBlocks(p, nblocks);
    p += 64 * nblocks;
    len -= 64 * nblocks;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffered_ = len;
  }
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffered_ != 56) Update(&zero, 1);
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass Update for the length to keep total_len_ bookkeeping simple.
  std::memcpy(buffer_ + buffered_, len_be, 8);
  ProcessBlock(buffer_);

  std::array<uint8_t, kDigestSize> out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return out;
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::Hash(const void* data,
                                                      size_t len) {
  Sha256 h;
  h.Update(data, len);
  return h.Finish();
}

std::array<uint8_t, 32> HmacSha256(const Bytes& key, const Bytes& message) {
  uint8_t k[64] = {0};
  if (key.size() > 64) {
    auto digest = Sha256::Hash(key);
    std::memcpy(k, digest.data(), digest.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(ipad, 64);
  inner.Update(message);
  auto inner_digest = inner.Finish();
  Sha256 outer;
  outer.Update(opad, 64);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

}  // namespace crypto
}  // namespace shuffledp

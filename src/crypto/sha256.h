// SHA-256 (FIPS 180-4), used as the KDF inside ECIES onion layers.
//
// The compression function dispatches at runtime to the x86 SHA
// extensions (SHA-NI) when the CPU supports them, with the portable
// scalar rounds as fallback; tests can pin the portable path with
// SetShaBackend so both implementations run everywhere.

#ifndef SHUFFLEDP_CRYPTO_SHA256_H_
#define SHUFFLEDP_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/bytes.h"

namespace shuffledp {
namespace crypto {

/// Compression-function implementation choices.
enum class ShaBackend {
  kPortable,  ///< scalar FIPS 180-4 rounds (always available)
  kShaNi,     ///< x86 SHA extensions
};

/// The fastest backend supported by this CPU.
ShaBackend BestShaBackend();

/// Backend used by subsequent Sha256 operations.
ShaBackend ActiveShaBackend();

/// Overrides the backend; kShaNi silently degrades to kPortable when the
/// CPU lacks the SHA extensions. Intended for tests and benchmarks.
void SetShaBackend(ShaBackend backend);

/// Human-readable backend name ("shani" / "portable").
const char* ShaBackendName(ShaBackend backend);

/// Incremental SHA-256.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;

  Sha256();

  /// Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated afterwards (call Reset() to reuse).
  std::array<uint8_t, kDigestSize> Finish();

  /// Clears the state for a fresh message.
  void Reset();

  /// One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(const void* data, size_t len);
  static std::array<uint8_t, kDigestSize> Hash(const Bytes& data) {
    return Hash(data.data(), data.size());
  }

 private:
  void ProcessBlock(const uint8_t block[64]);
  void ProcessBlocks(const uint8_t* data, size_t nblocks);

  uint32_t h_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

/// HMAC-SHA256 (RFC 2104) — used for report authentication in the
/// spot-checking defense.
std::array<uint8_t, 32> HmacSha256(const Bytes& key, const Bytes& message);

}  // namespace crypto
}  // namespace shuffledp

#endif  // SHUFFLEDP_CRYPTO_SHA256_H_

#include "data/datasets.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace shuffledp {
namespace data {

std::vector<uint64_t> Dataset::ValueCounts() const {
  // Guard against materializing a histogram for huge string domains (AOL);
  // those workloads use TopK / TreeHist instead.
  assert(domain_size <= (1ULL << 26) &&
         "ValueCounts: domain too large to materialize");
  std::vector<uint64_t> counts(domain_size, 0);
  for (uint64_t v : values) {
    assert(v < domain_size);
    ++counts[v];
  }
  return counts;
}

std::vector<double> Dataset::Frequencies() const {
  auto counts = ValueCounts();
  std::vector<double> f(counts.size());
  const double n = static_cast<double>(values.size());
  for (size_t v = 0; v < counts.size(); ++v) {
    f[v] = static_cast<double>(counts[v]) / n;
  }
  return f;
}

std::vector<uint64_t> Dataset::TopK(size_t k) const {
  std::unordered_map<uint64_t, uint64_t> counts;
  counts.reserve(values.size() / 4);
  for (uint64_t v : values) ++counts[v];
  std::vector<std::pair<uint64_t, uint64_t>> items(counts.begin(),
                                                   counts.end());
  k = std::min(k, items.size());
  std::partial_sort(items.begin(), items.begin() + static_cast<ptrdiff_t>(k),
                    items.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  std::vector<uint64_t> top;
  top.reserve(k);
  for (size_t i = 0; i < k; ++i) top.push_back(items[i].first);
  return top;
}

ZipfSampler::ZipfSampler(uint64_t d, double s) {
  assert(d >= 1);
  probs_.resize(d);
  double norm = 0.0;
  for (uint64_t v = 0; v < d; ++v) {
    probs_[v] = 1.0 / std::pow(static_cast<double>(v + 1), s);
    norm += probs_[v];
  }
  for (auto& p : probs_) p /= norm;

  // Vose's alias method.
  accept_.assign(d, 0.0);
  alias_.assign(d, 0);
  std::vector<double> scaled(d);
  std::vector<uint32_t> small, large;
  for (uint64_t v = 0; v < d; ++v) {
    scaled[v] = probs_[v] * static_cast<double>(d);
    (scaled[v] < 1.0 ? small : large).push_back(static_cast<uint32_t>(v));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s_idx = small.back();
    small.pop_back();
    uint32_t l_idx = large.back();
    large.pop_back();
    accept_[s_idx] = scaled[s_idx];
    alias_[s_idx] = l_idx;
    scaled[l_idx] = (scaled[l_idx] + scaled[s_idx]) - 1.0;
    (scaled[l_idx] < 1.0 ? small : large).push_back(l_idx);
  }
  for (uint32_t idx : large) accept_[idx] = 1.0;
  for (uint32_t idx : small) accept_[idx] = 1.0;
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  uint64_t column = rng->UniformU64(probs_.size());
  return rng->UniformDouble() < accept_[column] ? column : alias_[column];
}

Dataset MakeZipfDataset(const std::string& name, uint64_t n, uint64_t d,
                        double zipf_s, uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(d, zipf_s);
  Dataset out;
  out.name = name;
  out.domain_size = d;
  out.values.resize(n);
  for (uint64_t i = 0; i < n; ++i) out.values[i] = zipf.Sample(&rng);
  return out;
}

Dataset MakeSyntheticIpums(uint64_t seed, double scale) {
  assert(scale > 0.0 && scale <= 1.0);
  uint64_t n = static_cast<uint64_t>(602325.0 * scale);
  return MakeZipfDataset("ipums-synth", n, 915, 1.0, seed);
}

Dataset MakeSyntheticKosarak(uint64_t seed, double scale) {
  assert(scale > 0.0 && scale <= 1.0);
  uint64_t n = static_cast<uint64_t>(1000000.0 * scale);
  return MakeZipfDataset("kosarak-synth", n, 42178, 1.05, seed);
}

Dataset MakeSyntheticAol(uint64_t seed, double scale) {
  assert(scale > 0.0 && scale <= 1.0);
  const uint64_t n = static_cast<uint64_t>(500000.0 * scale);
  const uint64_t distinct = static_cast<uint64_t>(120000.0 * scale) + 1;
  Rng rng(seed);

  // Draw `distinct` unique 48-bit codes (the "queries").
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> codes;
  codes.reserve(distinct);
  while (codes.size() < distinct) {
    uint64_t code = rng.NextU64() & ((1ULL << 48) - 1);
    if (seen.insert(code).second) codes.push_back(code);
  }

  // Zipf-rank the codes: code[0] most popular.
  ZipfSampler zipf(distinct, 1.0);
  Dataset out;
  out.name = "aol-synth";
  out.domain_size = 1ULL << 48;
  out.values.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    out.values[i] = codes[zipf.Sample(&rng)];
  }
  return out;
}

}  // namespace data
}  // namespace shuffledp

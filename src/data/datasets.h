// Synthetic dataset generators standing in for the paper's three real
// datasets (offline substitution; DESIGN.md §4 item 1):
//
//   IPUMS   — US Census 1940, 1% sample, city attribute:
//             n = 602,325 users, d = 915 cities.
//   Kosarak — click streams, one item per user:
//             n = 1,000,000 users, d = 42,178 items.
//   AOL     — first query per user, 6 bytes (48 bits):
//             n ~ 500,000 users, ~120,000 distinct strings.
//
// All three real datasets are heavy-tailed; we generate Zipf-distributed
// values with the published (n, d) so every estimator-variance-driven
// comparison (Figures 3/4, Table II) keeps its shape.

#ifndef SHUFFLEDP_DATA_DATASETS_H_
#define SHUFFLEDP_DATA_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace shuffledp {
namespace data {

/// A categorical dataset: n user values over domain [0, d).
struct Dataset {
  std::string name;
  uint64_t domain_size = 0;
  std::vector<uint64_t> values;  ///< one value per user

  uint64_t user_count() const { return values.size(); }

  /// Per-value counts (histogram), length domain_size.
  std::vector<uint64_t> ValueCounts() const;

  /// True frequencies f_v = count_v / n.
  std::vector<double> Frequencies() const;

  /// Indices of the k most frequent values (ties broken by value).
  std::vector<uint64_t> TopK(size_t k) const;
};

/// Zipf sampler over [0, d) with exponent s: P(v) ∝ 1/(v+1)^s.
/// Uses an alias table; O(d) setup, O(1) per sample.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t d, double s);

  uint64_t Sample(Rng* rng) const;

  const std::vector<double>& probabilities() const { return probs_; }

 private:
  std::vector<double> probs_;
  std::vector<double> accept_;
  std::vector<uint32_t> alias_;
};

/// Generic Zipf dataset.
Dataset MakeZipfDataset(const std::string& name, uint64_t n, uint64_t d,
                        double zipf_s, uint64_t seed);

/// IPUMS-shaped dataset (n = 602,325, d = 915). `scale` in (0, 1] shrinks
/// n proportionally for quick runs.
Dataset MakeSyntheticIpums(uint64_t seed, double scale = 1.0);

/// Kosarak-shaped dataset (n = 1,000,000, d = 42,178).
Dataset MakeSyntheticKosarak(uint64_t seed, double scale = 1.0);

/// AOL-shaped dataset: values are 48-bit strings (6 bytes). Returns a
/// Dataset whose `values` are the 48-bit codes; `domain_size` is 2^48 and
/// the number of distinct codes is ~0.12M at full scale.
Dataset MakeSyntheticAol(uint64_t seed, double scale = 1.0);

}  // namespace data
}  // namespace shuffledp

#endif  // SHUFFLEDP_DATA_DATASETS_H_

#include "dp/amplification.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace shuffledp {
namespace dp {

namespace {

double Ln2OverDelta(double delta) { return std::log(2.0 / delta); }
double Ln4OverDelta(double delta) { return std::log(4.0 / delta); }

}  // namespace

double BinomialMechanismEpsilon(uint64_t n, double p, double delta) {
  assert(n > 0 && p > 0.0 && delta > 0.0);
  return std::sqrt(14.0 * Ln2OverDelta(delta) /
                   (static_cast<double>(n) * p));
}

double BlanketMass(double eps_c, uint64_t n, double delta) {
  return eps_c * eps_c * static_cast<double>(n - 1) /
         (14.0 * Ln2OverDelta(delta));
}

AmplificationBound AmplifyEfmrtt19(double eps_l, uint64_t n, double delta) {
  AmplificationBound out;
  if (eps_l >= 0.5 || n == 0) {
    out.eps_c = eps_l;
    out.amplified = false;
    return out;
  }
  out.eps_c = 12.0 * eps_l * std::sqrt(std::log(1.0 / delta) /
                                       static_cast<double>(n));
  out.amplified = out.eps_c < eps_l;
  if (!out.amplified) out.eps_c = eps_l;
  return out;
}

AmplificationBound AmplifyCsuzz19(double eps_l, uint64_t n, double delta) {
  AmplificationBound out;
  double eps_c = std::sqrt(32.0 * Ln4OverDelta(delta) *
                           (std::exp(eps_l) + 1.0) / static_cast<double>(n));
  double lower = std::sqrt(192.0 / static_cast<double>(n) *
                           Ln4OverDelta(delta));
  if (eps_c <= lower || eps_c >= 1.0 || eps_c >= eps_l) {
    out.eps_c = eps_l;
    out.amplified = false;
    return out;
  }
  out.eps_c = eps_c;
  out.amplified = true;
  return out;
}

AmplificationBound AmplifyBbgn19(double eps_l, uint64_t n, uint64_t d,
                                 double delta) {
  AmplificationBound out;
  if (n < 2) {
    out.eps_c = eps_l;
    return out;
  }
  double eps_c =
      std::sqrt(14.0 * Ln2OverDelta(delta) *
                (std::exp(eps_l) + static_cast<double>(d) - 1.0) /
                static_cast<double>(n - 1));
  double lower = std::sqrt(14.0 * Ln2OverDelta(delta) *
                           static_cast<double>(d) /
                           static_cast<double>(n - 1));
  if (eps_c <= lower || eps_c > 1.0 || eps_c >= eps_l) {
    out.eps_c = eps_l;
    out.amplified = false;
    return out;
  }
  out.eps_c = eps_c;
  out.amplified = true;
  return out;
}

AmplificationBound AmplifyUnary(double eps_l, uint64_t n, double delta) {
  AmplificationBound out;
  if (n < 2) {
    out.eps_c = eps_l;
    return out;
  }
  double eps_c = 2.0 * std::sqrt(14.0 * Ln4OverDelta(delta) *
                                 (std::exp(eps_l / 2.0) + 1.0) /
                                 static_cast<double>(n - 1));
  if (eps_c >= eps_l) {
    out.eps_c = eps_l;
    out.amplified = false;
    return out;
  }
  out.eps_c = eps_c;
  out.amplified = true;
  return out;
}

AmplificationBound AmplifySolh(double eps_l, uint64_t n, uint64_t d_prime,
                               double delta) {
  AmplificationBound out;
  if (n < 2) {
    out.eps_c = eps_l;
    return out;
  }
  double eps_c =
      std::sqrt(14.0 * Ln2OverDelta(delta) *
                (std::exp(eps_l) + static_cast<double>(d_prime) - 1.0) /
                static_cast<double>(n - 1));
  if (eps_c >= eps_l) {
    out.eps_c = eps_l;
    out.amplified = false;
    return out;
  }
  out.eps_c = eps_c;
  out.amplified = true;
  return out;
}

double InverseGrrEpsLocal(double eps_c, uint64_t n, uint64_t d, double delta) {
  double m = BlanketMass(eps_c, n, delta);
  double e_eps = m - static_cast<double>(d) + 1.0;
  if (e_eps <= std::exp(eps_c)) return eps_c;  // no amplification possible
  return std::log(e_eps);
}

double InverseUnaryEpsLocal(double eps_c, uint64_t n, double delta) {
  // ε_c = 2 sqrt(14 ln(4/δ)(e^{ε_l/2}+1)/(n−1))
  //   =>  e^{ε_l/2} = ε_c²(n−1)/(56 ln(4/δ)) − 1.
  double m2 = eps_c * eps_c * static_cast<double>(n - 1) /
              (56.0 * Ln4OverDelta(delta));
  double e_half = m2 - 1.0;
  if (e_half <= std::exp(eps_c / 2.0)) return eps_c;
  return 2.0 * std::log(e_half);
}

double InverseSolhEpsLocal(double eps_c, uint64_t n, uint64_t d_prime,
                           double delta) {
  double m = BlanketMass(eps_c, n, delta);
  double e_eps = m - static_cast<double>(d_prime) + 1.0;
  if (e_eps <= std::exp(eps_c)) return eps_c;
  return std::log(e_eps);
}

uint64_t OptimalSolhDPrime(double eps_c, uint64_t n, double delta) {
  double m = BlanketMass(eps_c, n, delta);
  double d_opt = (m + 2.0) / 3.0;
  if (d_opt < 2.0) return 2;
  return static_cast<uint64_t>(d_opt);
}

double PeosEpsAgainstUsers(uint64_t n_r, uint64_t report_domain,
                           double delta) {
  assert(n_r > 0);
  return std::sqrt(14.0 * Ln2OverDelta(delta) *
                   static_cast<double>(report_domain) /
                   static_cast<double>(n_r));
}

double PeosEpsAgainstServer(double eps_l, uint64_t n, uint64_t n_r,
                            uint64_t report_domain, double delta) {
  double blanket_users =
      static_cast<double>(n - 1) /
      (std::exp(eps_l) + static_cast<double>(report_domain) - 1.0);
  double blanket_fakes =
      static_cast<double>(n_r) / static_cast<double>(report_domain);
  return std::sqrt(14.0 * Ln2OverDelta(delta) /
                   (blanket_users + blanket_fakes));
}

double PeosInverseEpsLocal(double eps_c, uint64_t n, uint64_t n_r,
                           uint64_t report_domain, double delta) {
  // (n−1)/(e^{ε_l}+d'−1) + n_r/d' = 14 ln(2/δ)/ε_c²  =: a
  double a = 14.0 * Ln2OverDelta(delta) / (eps_c * eps_c);
  double d = static_cast<double>(report_domain);
  double remaining = a - static_cast<double>(n_r) / d;
  if (remaining <= 0.0) {
    // The fake reports alone already give ε_c: local ε unconstrained by the
    // central target; cap it to something meaningful (the caller applies
    // the ε_3 ceiling).
    return std::numeric_limits<double>::infinity();
  }
  double e_eps = static_cast<double>(n - 1) / remaining - d + 1.0;
  if (e_eps <= std::exp(eps_c)) return eps_c;
  return std::log(e_eps);
}

uint64_t PeosOptimalDPrime(double eps_c, uint64_t n, uint64_t n_r,
                           double delta) {
  double a = 14.0 * Ln2OverDelta(delta) / (eps_c * eps_c);
  double b = static_cast<double>(n - 1);
  double d_opt = ((b + static_cast<double>(n_r)) / a + 2.0) / 3.0;
  if (d_opt < 2.0) return 2;
  return static_cast<uint64_t>(d_opt);
}

double GrrVarianceLocal(double eps_l, uint64_t n, uint64_t d) {
  double e = std::exp(eps_l);
  return (e + static_cast<double>(d) - 2.0) /
         (static_cast<double>(n) * (e - 1.0) * (e - 1.0));
}

double LocalHashVarianceLocal(double eps_l, uint64_t n, uint64_t d_prime) {
  double e = std::exp(eps_l);
  double dp = static_cast<double>(d_prime);
  double num = (e + dp - 1.0) * (e + dp - 1.0);
  return num / (static_cast<double>(n) * (e - 1.0) * (e - 1.0) * (dp - 1.0));
}

double UnaryVarianceLocal(double eps_l, uint64_t n) {
  double e = std::exp(eps_l / 2.0);
  return e / (static_cast<double>(n) * (e - 1.0) * (e - 1.0));
}

double ShGrrVarianceCentral(double eps_c, uint64_t n, uint64_t d,
                            double delta) {
  double eps_l = InverseGrrEpsLocal(eps_c, n, d, delta);
  return GrrVarianceLocal(eps_l, n, d);
}

double RapVarianceCentral(double eps_c, uint64_t n, double delta) {
  double eps_l = InverseUnaryEpsLocal(eps_c, n, delta);
  return UnaryVarianceLocal(eps_l, n);
}

double SolhVarianceCentral(double eps_c, uint64_t n, uint64_t d_prime,
                           double delta) {
  double eps_l = InverseSolhEpsLocal(eps_c, n, d_prime, delta);
  return LocalHashVarianceLocal(eps_l, n, d_prime);
}

double AueGamma(double eps_c, uint64_t n, double delta) {
  // Bin(n, γ) blanket noise peaks at γ = 1/2; beyond it the variance (and
  // privacy) *decrease* again, so γ is capped there. A capped γ means the
  // requested ε_c is unachievable by AUE at this n — the mechanism then
  // runs at its maximal blanket, ε = sqrt(28 ln(2/δ)/n) by Theorem 1
  // (documented deviation; [8]'s formula silently degenerates to a
  // noise-free, non-private report at γ -> 1).
  return std::min(
      0.5, 200.0 * Ln4OverDelta(delta) / (eps_c * eps_c *
                                          static_cast<double>(n)));
}

double AueVarianceCentral(double eps_c, uint64_t n, double delta) {
  double gamma = AueGamma(eps_c, n, delta);
  return gamma * (1.0 - gamma) / static_cast<double>(n);
}

double RapRemovalVarianceCentral(double eps_c, uint64_t n, double delta) {
  return RapVarianceCentral(2.0 * eps_c, n, delta);
}

double PeosSolhVarianceCentral(double eps_c, uint64_t n, uint64_t n_r,
                               uint64_t d_prime, double delta) {
  double eps_l = PeosInverseEpsLocal(eps_c, n, n_r, d_prime, delta);
  if (std::isinf(eps_l)) {
    // Fake reports alone provide the blanket; LDP noise can be minimal.
    // Variance is then dominated by the dilution factor.
    eps_l = 20.0;  // effectively no local noise
  }
  // §VI-C: variance of local hashing over n + n_r reports, scaled by the
  // dilution factor ((n+n_r)/n)².
  double diluted =
      LocalHashVarianceLocal(eps_l, n + n_r, d_prime);
  double scale = static_cast<double>(n + n_r) / static_cast<double>(n);
  return diluted * scale * scale;
}

double LaplaceVariance(double eps, uint64_t n, double sensitivity) {
  double b = sensitivity / eps;
  return 2.0 * b * b / (static_cast<double>(n) * static_cast<double>(n));
}

}  // namespace dp
}  // namespace shuffledp

// Privacy amplification by shuffling: every bound used in the paper.
//
// Forward maps take a local ε_l and return the amplified central ε_c
// (Table I plus the paper's Theorems 2/3); inverse maps take a target ε_c
// and return the largest ε_l whose shuffled execution still satisfies
// (ε_c, δ)-DP — these are what the mechanisms are configured with.
// Corollaries 8/9 extend the bounds to PEOS, where the shufflers inject
// n_r uniform fake reports.
//
// Notation follows the paper: n users, domain size d, hash range d',
//   m := ε_c² (n-1) / (14 ln(2/δ)).

#ifndef SHUFFLEDP_DP_AMPLIFICATION_H_
#define SHUFFLEDP_DP_AMPLIFICATION_H_

#include <cstdint>
#include <string>

namespace shuffledp {
namespace dp {

/// Central (ε, δ) pair.
struct CentralPrivacy {
  double epsilon = 0.0;
  double delta = 0.0;
};

/// Result of a forward amplification bound.
struct AmplificationBound {
  double eps_c = 0.0;   ///< amplified central epsilon
  bool amplified = false;  ///< false => condition failed, ε_c = ε_l
};

/// Theorem 1 (binomial mechanism): ε_c = sqrt(14 ln(2/δ) / (n p)).
double BinomialMechanismEpsilon(uint64_t n, double p, double delta);

/// m = ε_c² (n−1) / (14 ln(2/δ)) — the "blanket mass" the analysis trades
/// against (e^{ε_l} + d − 1).
double BlanketMass(double eps_c, uint64_t n, double delta);

// ---------------------------------------------------------------------------
// Table I forward bounds (ε_l -> ε_c).
// ---------------------------------------------------------------------------

/// Erlingsson et al. SODA'19: ε_c = 12 ε_l sqrt(ln(1/δ)/n), needs ε_l < 1/2.
AmplificationBound AmplifyEfmrtt19(double eps_l, uint64_t n, double delta);

/// Cheu et al. EUROCRYPT'19 (binary only):
/// ε_c = sqrt(32 ln(4/δ) (e^{ε_l}+1) / n), valid in
/// (sqrt(192 ln(4/δ)/n), 1).
AmplificationBound AmplifyCsuzz19(double eps_l, uint64_t n, double delta);

/// Balle et al. CRYPTO'19 (GRR blanket):
/// ε_c = sqrt(14 ln(2/δ) (e^{ε_l}+d−1) / (n−1)), valid when
/// sqrt(14 ln(2/δ) d/(n−1)) < ε_c <= 1.
AmplificationBound AmplifyBbgn19(double eps_l, uint64_t n, uint64_t d,
                                 double delta);

/// Paper Theorem 2 (unary encoding / RAPPOR):
/// ε_c = 2 sqrt(14 ln(4/δ) (e^{ε_l/2}+1) / (n−1)).
AmplificationBound AmplifyUnary(double eps_l, uint64_t n, double delta);

/// Paper Theorem 3 (SOLH):
/// ε_c = sqrt(14 ln(2/δ) (e^{ε_l}+d'−1) / (n−1)).
AmplificationBound AmplifySolh(double eps_l, uint64_t n, uint64_t d_prime,
                               double delta);

// ---------------------------------------------------------------------------
// Inverse maps (ε_c -> largest admissible ε_l). All return ε_l = ε_c when
// the amplification condition cannot be met (no benefit; mechanism falls
// back to plain LDP at the central target), mirroring the paper's
// treatment of SH below its threshold.
// ---------------------------------------------------------------------------

/// GRR / SH: e^{ε_l} = m − d + 1.
double InverseGrrEpsLocal(double eps_c, uint64_t n, uint64_t d, double delta);

/// Unary (RAP): e^{ε_l/2} = ε_c²(n−1)/(56 ln(4/δ)) − 1.
double InverseUnaryEpsLocal(double eps_c, uint64_t n, double delta);

/// SOLH with a given hash range: e^{ε_l} = m − d' + 1.
double InverseSolhEpsLocal(double eps_c, uint64_t n, uint64_t d_prime,
                           double delta);

/// Paper Eq. (5): variance-optimal hash range d' = (m+2)/3, floored and
/// clamped to [2, +inf).
uint64_t OptimalSolhDPrime(double eps_c, uint64_t n, double delta);

// ---------------------------------------------------------------------------
// PEOS (Corollaries 8/9): n_r uniform fake reports injected by shufflers.
// ---------------------------------------------------------------------------

/// ε_s against colluding users (fake reports are the only blanket):
/// ε_s = sqrt(14 ln(2/δ) d' / n_r)   (use d for GRR).
double PeosEpsAgainstUsers(uint64_t n_r, uint64_t report_domain, double delta);

/// ε_c against the server, Eq. (7):
/// ε_c = sqrt( 14 ln(2/δ) / ( (n−1)/(e^{ε_l}+d'−1) + n_r/d' ) ).
double PeosEpsAgainstServer(double eps_l, uint64_t n, uint64_t n_r,
                            uint64_t report_domain, double delta);

/// Inverse of Eq. (7): the largest ε_l achieving a target ε_c given n_r
/// and d'. Returns ε_c (no amplification) when infeasible.
double PeosInverseEpsLocal(double eps_c, uint64_t n, uint64_t n_r,
                           uint64_t report_domain, double delta);

/// §VI-C optimal hash range under fake reports:
/// d' = ((b + n_r)/a + 2) / 3 with a = 14 ln(2/δ)/ε_c², b = n−1.
uint64_t PeosOptimalDPrime(double eps_c, uint64_t n, uint64_t n_r,
                           double delta);

// ---------------------------------------------------------------------------
// Analytic variance formulas (Propositions 4-6, AUE, and §VI-C).
// All are per-value variances of the frequency estimate (MSE predictors).
// ---------------------------------------------------------------------------

/// GRR at a given local ε (Wang et al. '17): (e^ε + d − 2) / (n (e^ε − 1)²).
double GrrVarianceLocal(double eps_l, uint64_t n, uint64_t d);

/// Local hashing at given local ε and d' (Eq. 4):
/// (e^ε + d' − 1)² / (n (e^ε − 1)² (d' − 1)).
double LocalHashVarianceLocal(double eps_l, uint64_t n, uint64_t d_prime);

/// Unary encoding at given local ε: e^{ε/2} / (n (e^{ε/2} − 1)²).
double UnaryVarianceLocal(double eps_l, uint64_t n);

/// Proposition 4: SH (GRR + shuffle) at central ε_c.
double ShGrrVarianceCentral(double eps_c, uint64_t n, uint64_t d,
                            double delta);

/// Proposition 5: RAP (unary + shuffle) at central ε_c.
double RapVarianceCentral(double eps_c, uint64_t n, double delta);

/// Proposition 6: SOLH at central ε_c with hash range d'.
double SolhVarianceCentral(double eps_c, uint64_t n, uint64_t d_prime,
                           double delta);

/// AUE (Balcer-Cheu): blanket rate γ = 200 ln(4/δ)/(ε_c² n); per-value
/// variance γ(1−γ)/n.
double AueVarianceCentral(double eps_c, uint64_t n, double delta);
double AueGamma(double eps_c, uint64_t n, double delta);

/// RAP_R ([31], removal-LDP): equivalent to RAP at 2 ε_c.
double RapRemovalVarianceCentral(double eps_c, uint64_t n, double delta);

/// §VI-C: SOLH inside PEOS at central ε_c with n_r fakes and range d'.
double PeosSolhVarianceCentral(double eps_c, uint64_t n, uint64_t n_r,
                               uint64_t d_prime, double delta);

/// Laplace mechanism baseline (central DP): Var = (sens/(n ε))² · 2.
double LaplaceVariance(double eps, uint64_t n, double sensitivity = 2.0);

}  // namespace dp
}  // namespace shuffledp

#endif  // SHUFFLEDP_DP_AMPLIFICATION_H_

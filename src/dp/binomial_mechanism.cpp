#include "dp/binomial_mechanism.h"

#include <cmath>

namespace shuffledp {
namespace dp {

Result<std::vector<uint64_t>> BinomialNoiseCounts(
    const std::vector<uint64_t>& counts, uint64_t trials, double p,
    Rng* rng) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("binomial mechanism: p not in [0,1]");
  }
  std::vector<uint64_t> out(counts.size());
  for (size_t v = 0; v < counts.size(); ++v) {
    out[v] = counts[v] + rng->Binomial(trials, p);
  }
  return out;
}

Result<std::vector<double>> BinomialMechanismFrequencies(
    const std::vector<uint64_t>& counts, uint64_t n, uint64_t trials,
    double p, Rng* rng) {
  if (n == 0) return Status::InvalidArgument("binomial mechanism: n == 0");
  auto noisy = BinomialNoiseCounts(counts, trials, p, rng);
  if (!noisy.ok()) return noisy.status();
  const double mean_noise = static_cast<double>(trials) * p;
  std::vector<double> out(counts.size());
  for (size_t v = 0; v < counts.size(); ++v) {
    out[v] = (static_cast<double>((*noisy)[v]) - mean_noise) /
             static_cast<double>(n);
  }
  return out;
}

double BinomialNoiseProbabilityFor(double eps_c, uint64_t n, double delta) {
  return 14.0 * std::log(2.0 / delta) /
         (static_cast<double>(n) * eps_c * eps_c);
}

}  // namespace dp
}  // namespace shuffledp

// The binomial mechanism (paper Theorem 1, derived from Balle et al.'s
// privacy blanket): adding independent Bin(n, p) noise to each histogram
// component satisfies (ε_c, δ)-DP with ε_c = sqrt(14 ln(2/δ) / (n p)).
//
// The shuffled LDP mechanisms never *run* this mechanism explicitly — the
// blanket portion of the users' randomness realizes it implicitly — but it
// is the analytical core of every amplification bound, and running it
// directly is useful for validating those bounds empirically.

#ifndef SHUFFLEDP_DP_BINOMIAL_MECHANISM_H_
#define SHUFFLEDP_DP_BINOMIAL_MECHANISM_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace shuffledp {
namespace dp {

/// Adds independent Bin(trials, p) noise to each count; returns the noisy
/// counts (debiasing is the caller's business: E[noise] = trials * p).
Result<std::vector<uint64_t>> BinomialNoiseCounts(
    const std::vector<uint64_t>& counts, uint64_t trials, double p, Rng* rng);

/// Unbiased frequency estimate after binomial noise:
/// f~_v = (noisy_count_v − trials·p) / n.
Result<std::vector<double>> BinomialMechanismFrequencies(
    const std::vector<uint64_t>& counts, uint64_t n, uint64_t trials,
    double p, Rng* rng);

/// Smallest p such that Bin(n, p) noise gives (ε_c, δ)-DP (inverts
/// Theorem 1): p = 14 ln(2/δ) / (n ε_c²).
double BinomialNoiseProbabilityFor(double eps_c, uint64_t n, double delta);

}  // namespace dp
}  // namespace shuffledp

#endif  // SHUFFLEDP_DP_BINOMIAL_MECHANISM_H_

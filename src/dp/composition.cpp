#include "dp/composition.h"

#include <cmath>

namespace shuffledp {
namespace dp {

DpBudget ComposeBasic(const DpBudget& per_round, unsigned k) {
  return DpBudget{per_round.epsilon * k, per_round.delta * k};
}

DpBudget ComposeAdvanced(const DpBudget& per_round, unsigned k,
                         double delta_slack) {
  const double eps = per_round.epsilon;
  double composed = eps * std::sqrt(2.0 * k * std::log(1.0 / delta_slack)) +
                    k * eps * (std::exp(eps) - 1.0);
  return DpBudget{composed, per_round.delta * k + delta_slack};
}

Result<DpBudget> SplitBasic(const DpBudget& total, unsigned k) {
  if (k == 0) return Status::InvalidArgument("composition: k must be > 0");
  if (total.epsilon <= 0.0 || total.delta < 0.0) {
    return Status::InvalidArgument("composition: bad total budget");
  }
  return DpBudget{total.epsilon / k, total.delta / k};
}

Result<DpBudget> SplitAdvanced(const DpBudget& total, unsigned k) {
  if (k == 0) return Status::InvalidArgument("composition: k must be > 0");
  if (total.epsilon <= 0.0 || total.delta <= 0.0) {
    return Status::InvalidArgument(
        "composition: advanced split needs positive epsilon and delta");
  }
  const double delta_slack = total.delta / 2.0;
  const double delta_rounds = total.delta / 2.0 / k;

  // Binary search the largest per-round eps whose advanced composition
  // stays within total.epsilon.
  double lo = 0.0, hi = total.epsilon;
  for (int iter = 0; iter < 100; ++iter) {
    double mid = 0.5 * (lo + hi);
    DpBudget probe{mid, delta_rounds};
    if (ComposeAdvanced(probe, k, delta_slack).epsilon <= total.epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (lo <= 0.0) {
    return Status::FailedPrecondition(
        "composition: advanced split found no positive per-round budget");
  }
  return DpBudget{lo, delta_rounds};
}

Result<DpBudget> SplitBest(const DpBudget& total, unsigned k) {
  auto basic = SplitBasic(total, k);
  if (!basic.ok()) return basic;
  if (total.delta <= 0.0) return basic;  // advanced needs δ > 0
  auto advanced = SplitAdvanced(total, k);
  if (!advanced.ok()) return basic;
  return advanced->epsilon > basic->epsilon ? advanced : basic;
}

}  // namespace dp
}  // namespace shuffledp

// Composition accounting for multi-round mechanisms (TreeHist runs k = 6
// rounds; paper §VII-C divides ε_c and δ_c by the round count).
//
// Provides the two standard composition rules:
//   * Basic: k-fold (ε, δ)-DP composes to (kε, kδ).
//   * Advanced (Dwork-Rothblum-Vadhan): for any δ' > 0, k-fold (ε, δ)
//     composes to (ε√(2k ln(1/δ')) + kε(e^ε − 1), kδ + δ').
// plus the inverse "budget splitters" mechanisms actually use: given a
// total (ε_total, δ_total) and k rounds, the per-round budget.

#ifndef SHUFFLEDP_DP_COMPOSITION_H_
#define SHUFFLEDP_DP_COMPOSITION_H_

#include <cstdint>

#include "util/status.h"

namespace shuffledp {
namespace dp {

/// An (ε, δ) pair.
struct DpBudget {
  double epsilon = 0.0;
  double delta = 0.0;
};

/// Basic composition: k rounds of `per_round` give (kε, kδ).
DpBudget ComposeBasic(const DpBudget& per_round, unsigned k);

/// Advanced composition with slack δ': k rounds of `per_round` give
/// (ε√(2k ln(1/δ')) + kε(e^ε−1), kδ + δ').
DpBudget ComposeAdvanced(const DpBudget& per_round, unsigned k,
                         double delta_slack);

/// Inverse of basic composition: the per-round budget that makes k
/// rounds total (ε_total, δ_total).
Result<DpBudget> SplitBasic(const DpBudget& total, unsigned k);

/// Inverse of advanced composition (numeric): the largest per-round ε
/// such that k advanced-composed rounds stay within `total`, spending
/// half of δ_total on the slack and splitting the rest across rounds.
/// For small k (like TreeHist's 6) this typically beats SplitBasic only
/// for large k; the function lets callers pick the better of the two.
Result<DpBudget> SplitAdvanced(const DpBudget& total, unsigned k);

/// The better (larger per-round ε) of SplitBasic and SplitAdvanced.
Result<DpBudget> SplitBest(const DpBudget& total, unsigned k);

}  // namespace dp
}  // namespace shuffledp

#endif  // SHUFFLEDP_DP_COMPOSITION_H_

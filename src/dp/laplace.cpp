#include "dp/laplace.h"

namespace shuffledp {
namespace dp {

Result<std::vector<double>> LaplaceHistogram(
    const std::vector<uint64_t>& counts, uint64_t n, double epsilon, Rng* rng,
    double sensitivity) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("Laplace: epsilon must be positive");
  }
  if (n == 0) return Status::InvalidArgument("Laplace: n must be positive");
  const double scale = sensitivity / epsilon;
  std::vector<double> out(counts.size());
  for (size_t v = 0; v < counts.size(); ++v) {
    out[v] = (static_cast<double>(counts[v]) + rng->Laplace(scale)) /
             static_cast<double>(n);
  }
  return out;
}

Result<std::vector<double>> LaplaceFrequencies(
    const std::vector<double>& frequencies, uint64_t n, double epsilon,
    Rng* rng, double sensitivity) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("Laplace: epsilon must be positive");
  }
  if (n == 0) return Status::InvalidArgument("Laplace: n must be positive");
  const double scale = sensitivity / (epsilon * static_cast<double>(n));
  std::vector<double> out(frequencies.size());
  for (size_t v = 0; v < frequencies.size(); ++v) {
    out[v] = frequencies[v] + rng->Laplace(scale);
  }
  return out;
}

}  // namespace dp
}  // namespace shuffledp

// Central-DP Laplace mechanism for histograms — the paper's lower-bound
// baseline ("Lap" in Figures 3 and 4).

#ifndef SHUFFLEDP_DP_LAPLACE_H_
#define SHUFFLEDP_DP_LAPLACE_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace shuffledp {
namespace dp {

/// Adds Laplace(sensitivity/ε) noise to each count of `counts` and returns
/// the noisy frequencies (count + noise) / n.
///
/// Under the paper's replacement neighbouring relation, changing one user's
/// value moves two histogram cells by 1 each, so the L1 sensitivity is 2
/// (the default). Pass sensitivity = 1 for add/remove DP.
Result<std::vector<double>> LaplaceHistogram(
    const std::vector<uint64_t>& counts, uint64_t n, double epsilon, Rng* rng,
    double sensitivity = 2.0);

/// Central-DP estimate directly from true frequencies (convenience for the
/// utility benches): f~_v = f_v + Lap(sensitivity/(n ε)).
Result<std::vector<double>> LaplaceFrequencies(
    const std::vector<double>& frequencies, uint64_t n, double epsilon,
    Rng* rng, double sensitivity = 2.0);

}  // namespace dp
}  // namespace shuffledp

#endif  // SHUFFLEDP_DP_LAPLACE_H_

#include "hist/tree_hist.h"

#include <algorithm>
#include <unordered_map>

#include "ldp/estimator.h"

namespace shuffledp {
namespace hist {

namespace {

// Shared per-round scaffolding: candidate expansion and top-k selection.
struct Frontier {
  std::vector<uint64_t> prefixes;
  std::vector<double> estimates;
  unsigned bits = 0;
};

std::vector<uint64_t> ExpandCandidates(const Frontier& frontier,
                                       unsigned bits_per_round) {
  const uint64_t fanout = uint64_t{1} << bits_per_round;
  std::vector<uint64_t> candidates;
  candidates.reserve(frontier.prefixes.size() * fanout);
  for (uint64_t p : frontier.prefixes) {
    for (uint64_t c = 0; c < fanout; ++c) {
      candidates.push_back((p << bits_per_round) | c);
    }
  }
  return candidates;
}

Frontier SelectTopK(const std::vector<uint64_t>& candidates,
                    const std::vector<double>& estimates, size_t top_k,
                    unsigned prefix_bits) {
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  size_t keep = std::min(top_k, candidates.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<ptrdiff_t>(keep),
                    order.end(), [&](size_t a, size_t b) {
                      if (estimates[a] != estimates[b]) {
                        return estimates[a] > estimates[b];
                      }
                      return candidates[a] < candidates[b];
                    });
  Frontier out;
  out.bits = prefix_bits;
  out.prefixes.resize(keep);
  out.estimates.resize(keep);
  for (size_t i = 0; i < keep; ++i) {
    out.prefixes[i] = candidates[order[i]];
    out.estimates[i] = estimates[order[i]];
  }
  return out;
}

Status ValidateTreeHistConfig(const TreeHistConfig& config,
                              const std::vector<uint64_t>& values) {
  if (config.total_bits == 0 || config.bits_per_round == 0 ||
      config.total_bits % config.bits_per_round != 0) {
    return Status::InvalidArgument(
        "TreeHist: total_bits must be a positive multiple of bits_per_round");
  }
  if (config.total_bits > 64) {
    return Status::InvalidArgument("TreeHist: total_bits > 64");
  }
  if (config.top_k == 0) {
    return Status::InvalidArgument("TreeHist: top_k must be positive");
  }
  if (values.empty()) {
    return Status::InvalidArgument("TreeHist: empty dataset");
  }
  return Status::OK();
}

}  // namespace

Result<TreeHistResult> RunTreeHist(const std::vector<uint64_t>& values,
                                   const TreeHistConfig& config,
                                   const RoundEstimator& estimator,
                                   Rng* rng) {
  SHUFFLEDP_RETURN_NOT_OK(ValidateTreeHistConfig(config, values));

  const unsigned rounds = config.total_bits / config.bits_per_round;
  const uint64_t n = values.size();

  // User groups: strided assignment (user i reports in round i mod
  // `rounds`), which is safe even when the input happens to be sorted.
  auto in_group = [&](uint64_t user, unsigned round) {
    return !config.split_users || (user % rounds) == round;
  };
  auto group_size = [&](unsigned round) -> uint64_t {
    if (!config.split_users) return n;
    return n / rounds + ((n % rounds) > round ? 1 : 0);
  };

  // Frontier of currently-frequent prefixes; empty prefix to start.
  Frontier frontier;
  frontier.prefixes = {0};
  frontier.estimates = {1.0};
  frontier.bits = 0;

  for (unsigned round = 0; round < rounds; ++round) {
    const unsigned prefix_bits = frontier.bits + config.bits_per_round;
    auto candidates = ExpandCandidates(frontier, config.bits_per_round);
    std::unordered_map<uint64_t, size_t> index;
    index.reserve(candidates.size() * 2);
    for (size_t i = 0; i < candidates.size(); ++i) {
      index.emplace(candidates[i], i);
    }

    // True candidate counts among this round's reporting users (+dummy).
    std::vector<uint64_t> counts(candidates.size() + 1, 0);
    const unsigned shift = config.total_bits - prefix_bits;
    for (uint64_t i = 0; i < n; ++i) {
      if (!in_group(i, round)) continue;
      uint64_t prefix = values[i] >> shift;
      auto it = index.find(prefix);
      if (it != index.end()) {
        ++counts[it->second];
      } else {
        ++counts.back();
      }
    }

    // Private estimation.
    std::vector<double> estimates = estimator(counts, group_size(round), rng);
    if (estimates.size() < candidates.size()) {
      return Status::Internal("TreeHist: estimator returned too few values");
    }
    estimates.resize(candidates.size());
    frontier = SelectTopK(candidates, estimates, config.top_k, prefix_bits);
  }

  TreeHistResult result;
  result.heavy_hitters = frontier.prefixes;
  result.frequencies = frontier.estimates;
  result.rounds = rounds;
  return result;
}

Result<TreeHistResult> RunTreeHistExact(const std::vector<uint64_t>& values,
                                        const TreeHistConfig& config,
                                        const OracleFactory& factory,
                                        uint64_t fakes_per_round, Rng* rng) {
  SHUFFLEDP_RETURN_NOT_OK(ValidateTreeHistConfig(config, values));
  const unsigned rounds = config.total_bits / config.bits_per_round;
  const uint64_t n = values.size();

  auto in_group = [&](uint64_t user, unsigned round) {
    return !config.split_users || (user % rounds) == round;
  };

  Frontier frontier;
  frontier.prefixes = {0};
  frontier.estimates = {1.0};
  frontier.bits = 0;

  for (unsigned round = 0; round < rounds; ++round) {
    const unsigned prefix_bits = frontier.bits + config.bits_per_round;
    auto candidates = ExpandCandidates(frontier, config.bits_per_round);
    std::unordered_map<uint64_t, size_t> index;
    index.reserve(candidates.size() * 2);
    for (size_t i = 0; i < candidates.size(); ++i) {
      index.emplace(candidates[i], i);
    }
    const uint64_t round_domain = candidates.size() + 1;  // + dummy

    SHUFFLEDP_ASSIGN_OR_RETURN(auto oracle, factory(round_domain));
    if (oracle == nullptr || oracle->domain_size() != round_domain) {
      return Status::InvalidArgument(
          "TreeHist: factory returned an oracle for the wrong domain");
    }

    // Each reporting user maps their value onto the candidate domain and
    // encodes a real report; shufflers add uniform fakes.
    std::vector<ldp::LdpReport> reports;
    const unsigned shift = config.total_bits - prefix_bits;
    uint64_t n_round = 0;
    for (uint64_t i = 0; i < n; ++i) {
      if (!in_group(i, round)) continue;
      ++n_round;
      uint64_t prefix = values[i] >> shift;
      auto it = index.find(prefix);
      uint64_t encoded =
          it != index.end() ? it->second : candidates.size();  // dummy
      reports.push_back(oracle->Encode(encoded, rng));
    }
    for (uint64_t k = 0; k < fakes_per_round; ++k) {
      reports.push_back(oracle->MakeFakeReport(rng));
    }

    // Candidate support counts -> calibrated estimates (dummy dropped).
    std::vector<uint64_t> eval(candidates.size());
    for (size_t i = 0; i < eval.size(); ++i) eval[i] = i;
    auto supports = ldp::SupportCounts(*oracle, reports, eval);
    auto estimates =
        ldp::CalibrateEstimates(*oracle, supports, n_round, fakes_per_round);
    frontier = SelectTopK(candidates, estimates, config.top_k, prefix_bits);
  }

  TreeHistResult result;
  result.heavy_hitters = frontier.prefixes;
  result.frequencies = frontier.estimates;
  result.rounds = rounds;
  return result;
}

}  // namespace hist
}  // namespace shuffledp

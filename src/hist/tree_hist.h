// TreeHist — succinct histograms over huge string domains (Bassily et al.
// NIPS'17; paper §VII-C case study).
//
// The domain is fixed-length bit strings (48 bits for the AOL workload).
// A binary prefix tree is traversed breadth-first in `total_bits /
// bits_per_round` rounds: each round estimates the frequencies of the
// children of the currently-frequent prefixes (plus a "no match" dummy
// bucket) with a pluggable frequency estimator and keeps the top-k.
//
// In the LDP setting users are split into one group per round (the
// paper's configuration); in the shuffle setting all users report every
// round with ε_c and δ divided by the number of rounds.

#ifndef SHUFFLEDP_HIST_TREE_HIST_H_
#define SHUFFLEDP_HIST_TREE_HIST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "util/rng.h"
#include "util/status.h"

namespace shuffledp {
namespace hist {

/// Estimates candidate frequencies for one round.
///
/// `candidate_counts` holds the true number of reporting users matching
/// each candidate prefix; the final entry is the dummy ("no match")
/// bucket. `n_round` is the number of users reporting this round. The
/// estimator injects its own privacy noise and returns one estimate per
/// candidate (the dummy estimate is ignored).
using RoundEstimator = std::function<std::vector<double>(
    const std::vector<uint64_t>& candidate_counts, uint64_t n_round,
    Rng* rng)>;

/// TreeHist configuration.
struct TreeHistConfig {
  unsigned total_bits = 48;      ///< string length (AOL: 6 bytes)
  unsigned bits_per_round = 8;   ///< fan-out per level (AOL: 1 char)
  size_t top_k = 32;             ///< frontier width and final output size
  bool split_users = false;      ///< LDP mode: one user group per round
};

/// TreeHist output.
struct TreeHistResult {
  std::vector<uint64_t> heavy_hitters;  ///< up to top_k full strings
  std::vector<double> frequencies;      ///< their estimated frequencies
  unsigned rounds = 0;
};

/// Runs TreeHist over `values` (each a total_bits-bit code).
Result<TreeHistResult> RunTreeHist(const std::vector<uint64_t>& values,
                                   const TreeHistConfig& config,
                                   const RoundEstimator& estimator, Rng* rng);

/// Builds a frequency oracle for one round's candidate domain (candidate
/// count + 1 dummy bucket). Called once per round with that round's
/// domain size.
using OracleFactory =
    std::function<Result<std::unique_ptr<ldp::ScalarFrequencyOracle>>(
        uint64_t round_domain)>;

/// Exact per-user TreeHist: every reporting user *encodes a real LDP
/// report* for the round's candidate domain (plus `fakes_per_round`
/// uniform fake reports, as a PEOS deployment would inject), and the
/// round estimate comes from the actual support counts. This is the
/// protocol-grade counterpart of the fast-simulation estimators in
/// core::MakeRoundEstimator; the two agree in distribution
/// (tests/hist/tree_hist_exact_test.cpp).
Result<TreeHistResult> RunTreeHistExact(const std::vector<uint64_t>& values,
                                        const TreeHistConfig& config,
                                        const OracleFactory& factory,
                                        uint64_t fakes_per_round, Rng* rng);

}  // namespace hist
}  // namespace shuffledp

#endif  // SHUFFLEDP_HIST_TREE_HIST_H_

#include "ldp/aue.h"

#include <cassert>

#include "dp/amplification.h"

namespace shuffledp {
namespace ldp {

Aue::Aue(double eps_c, uint64_t n, uint64_t d, double delta)
    : n_(n), d_(d), gamma_(dp::AueGamma(eps_c, n, delta)) {
  assert(eps_c > 0.0);
  assert(n >= 1);
  assert(d >= 2);
}

std::vector<uint8_t> Aue::Encode(uint64_t v, Rng* rng) const {
  assert(v < d_);
  std::vector<uint8_t> counts(d_, 0);
  counts[v] = 1;
  if (gamma_ > 0.0 && gamma_ < 1.0) {
    // Geometric skipping: each location gains an increment w.p. γ.
    uint64_t pos = rng->Geometric(gamma_);
    while (pos < d_) {
      ++counts[pos];
      pos += 1 + rng->Geometric(gamma_);
    }
  } else if (gamma_ >= 1.0) {
    for (auto& c : counts) ++c;
  }
  return counts;
}

Status Aue::Accumulate(const std::vector<uint8_t>& report,
                       std::vector<uint64_t>* column_counts) const {
  if (report.size() != d_) {
    return Status::InvalidArgument("AUE report has wrong length");
  }
  if (column_counts->size() != d_) {
    return Status::InvalidArgument("column counter has wrong length");
  }
  for (uint64_t i = 0; i < d_; ++i) (*column_counts)[i] += report[i];
  return Status::OK();
}

std::vector<double> Aue::Estimate(const std::vector<uint64_t>& column_counts,
                                  uint64_t n) const {
  assert(column_counts.size() == d_);
  std::vector<double> est(d_);
  for (uint64_t v = 0; v < d_; ++v) {
    est[v] = static_cast<double>(column_counts[v]) /
                 static_cast<double>(n) -
             gamma_;
  }
  return est;
}

}  // namespace ldp
}  // namespace shuffledp

// AUE — "appended unary encoding" (Balcer & Cheu [8], paper §IV-B4).
//
// Each user reports their one-hot vector *unperturbed* and appends, for
// every location, an independent Bernoulli(γ) increment, where
// γ = 200 ln(4/δ) / (ε_c² n) is chosen so that the aggregated increments
// form the privacy blanket directly. The per-user message is therefore not
// LDP (the true bit is sent in the clear inside the shuffle), and the
// communication cost is Θ(d) — the two drawbacks the paper highlights.

#ifndef SHUFFLEDP_LDP_AUE_H_
#define SHUFFLEDP_LDP_AUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace shuffledp {
namespace ldp {

/// AUE mechanism configured for a central target (ε_c, δ).
class Aue {
 public:
  /// Pre: eps_c > 0, n >= 1, d >= 2, delta in (0,1).
  Aue(double eps_c, uint64_t n, uint64_t d, double delta);

  std::string Name() const { return "AUE"; }
  uint64_t domain_size() const { return d_; }
  double gamma() const { return gamma_; }

  /// Encodes `v`: entry v gets 1 + Bern(γ), every other entry Bern(γ).
  std::vector<uint8_t> Encode(uint64_t v, Rng* rng) const;

  /// Adds a report into per-column counters.
  Status Accumulate(const std::vector<uint8_t>& report,
                    std::vector<uint64_t>* column_counts) const;

  /// Unbiased estimate: f~_v = count_v / n − γ.
  std::vector<double> Estimate(const std::vector<uint64_t>& column_counts,
                               uint64_t n) const;

  /// Report size on the wire (one 2-bit counter per location, packed).
  size_t ReportBytes() const { return (2 * d_ + 7) / 8; }

 private:
  uint64_t n_;
  uint64_t d_;
  double gamma_;
};

}  // namespace ldp
}  // namespace shuffledp

#endif  // SHUFFLEDP_LDP_AUE_H_

#include "ldp/estimator.h"

#include <atomic>
#include <cassert>

namespace shuffledp {
namespace ldp {

std::vector<uint64_t> SupportCounts(const ScalarFrequencyOracle& oracle,
                                    const std::vector<LdpReport>& reports,
                                    const std::vector<uint64_t>& eval_values,
                                    ThreadPool* pool) {
  std::vector<uint64_t> counts(eval_values.size(), 0);
  if (pool == nullptr || reports.size() < 4096) {
    for (const LdpReport& r : reports) {
      for (size_t j = 0; j < eval_values.size(); ++j) {
        counts[j] += oracle.Supports(r, eval_values[j]);
      }
    }
    return counts;
  }
  // Parallel: partition reports, accumulate into per-chunk local counters,
  // merge under a spin-free atomic add.
  std::vector<std::atomic<uint64_t>> shared(eval_values.size());
  for (auto& c : shared) c.store(0, std::memory_order_relaxed);
  pool->ParallelFor(0, reports.size(), [&](uint64_t lo, uint64_t hi) {
    std::vector<uint64_t> local(eval_values.size(), 0);
    for (uint64_t i = lo; i < hi; ++i) {
      for (size_t j = 0; j < eval_values.size(); ++j) {
        local[j] += oracle.Supports(reports[i], eval_values[j]);
      }
    }
    for (size_t j = 0; j < local.size(); ++j) {
      shared[j].fetch_add(local[j], std::memory_order_relaxed);
    }
  });
  for (size_t j = 0; j < counts.size(); ++j) {
    counts[j] = shared[j].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<uint64_t> SupportCountsFullDomain(
    const ScalarFrequencyOracle& oracle,
    const std::vector<LdpReport>& reports, ThreadPool* pool) {
  std::vector<uint64_t> all(oracle.domain_size());
  for (uint64_t v = 0; v < oracle.domain_size(); ++v) all[v] = v;
  return SupportCounts(oracle, reports, all, pool);
}

std::vector<double> CalibrateEstimates(const ScalarFrequencyOracle& oracle,
                                       const std::vector<uint64_t>& supports,
                                       uint64_t n, uint64_t n_fake) {
  const SupportProbs sp = oracle.support_probs();
  const double nd = static_cast<double>(n);
  const double baseline = nd * sp.q_other +
                          static_cast<double>(n_fake) * sp.q_fake;
  const double denom = nd * (sp.p_true - sp.q_other);
  std::vector<double> est(supports.size());
  for (size_t j = 0; j < supports.size(); ++j) {
    est[j] = (static_cast<double>(supports[j]) - baseline) / denom;
  }
  return est;
}

std::vector<double> CalibrateEstimatesOrdinal(
    const ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& supports, uint64_t n, uint64_t n_fake) {
  const SupportProbs sp = oracle.support_probs();
  const double nd = static_cast<double>(n);
  const double baseline =
      nd * sp.q_other +
      static_cast<double>(n_fake) * oracle.OrdinalFakeSupportProb();
  const double denom = nd * (sp.p_true - sp.q_other);
  std::vector<double> est(supports.size());
  for (size_t j = 0; j < supports.size(); ++j) {
    est[j] = (static_cast<double>(supports[j]) - baseline) / denom;
  }
  return est;
}

std::vector<double> CalibrateEstimatesEq6(const ScalarFrequencyOracle& oracle,
                                          const std::vector<uint64_t>& supports,
                                          uint64_t n, uint64_t n_fake) {
  const SupportProbs sp = oracle.support_probs();
  const double total = static_cast<double>(n + n_fake);
  const double nd = static_cast<double>(n);
  const double d = static_cast<double>(oracle.domain_size());
  std::vector<double> est(supports.size());
  for (size_t j = 0; j < supports.size(); ++j) {
    // Eq. (2)/(3) over n + n_r reports.
    double f_tilde = (static_cast<double>(supports[j]) / total - sp.q_other) /
                     (sp.p_true - sp.q_other);
    // Eq. (6).
    est[j] = total / nd * f_tilde -
             static_cast<double>(n_fake) / (nd * d);
  }
  return est;
}

std::vector<double> EstimateFrequencies(const ScalarFrequencyOracle& oracle,
                                        const std::vector<LdpReport>& reports,
                                        uint64_t n, uint64_t n_fake,
                                        ThreadPool* pool) {
  assert(reports.size() == n + n_fake);
  auto supports = SupportCountsFullDomain(oracle, reports, pool);
  return CalibrateEstimates(oracle, supports, n, n_fake);
}

}  // namespace ldp
}  // namespace shuffledp

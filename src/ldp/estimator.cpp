#include "ldp/estimator.h"

#include <atomic>
#include <cassert>

namespace shuffledp {
namespace ldp {

std::vector<uint64_t> SupportCounts(const ScalarFrequencyOracle& oracle,
                                    const std::vector<LdpReport>& reports,
                                    const std::vector<uint64_t>& eval_values,
                                    ThreadPool* pool) {
  std::vector<uint64_t> counts(eval_values.size(), 0);
  if (pool == nullptr || reports.size() < 4096) {
    for (size_t j = 0; j < eval_values.size(); ++j) {
      counts[j] =
          oracle.SupportsMany(reports.data(), reports.size(), eval_values[j]);
    }
    return counts;
  }
  // Parallel: each task bulk-evaluates a disjoint slice of the report
  // vector for every eval value, then merges under an atomic add.
  std::vector<std::atomic<uint64_t>> shared(eval_values.size());
  for (auto& c : shared) c.store(0, std::memory_order_relaxed);
  pool->ParallelFor(0, reports.size(), [&](uint64_t lo, uint64_t hi) {
    for (size_t j = 0; j < eval_values.size(); ++j) {
      const uint64_t local =
          oracle.SupportsMany(reports.data() + lo, hi - lo, eval_values[j]);
      if (local != 0) {
        shared[j].fetch_add(local, std::memory_order_relaxed);
      }
    }
  });
  for (size_t j = 0; j < counts.size(); ++j) {
    counts[j] = shared[j].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<uint64_t> SupportCountsFullDomain(
    const ScalarFrequencyOracle& oracle,
    const std::vector<LdpReport>& reports, ThreadPool* pool) {
  const uint64_t d = oracle.domain_size();
  std::vector<uint64_t> counts(d, 0);
  if (pool == nullptr || reports.size() < 4096 || d < 2) {
    // One tiled bulk pass over the whole domain.
    oracle.AccumulateSupports(reports.data(), reports.size(), 0, d,
                              counts.data());
    return counts;
  }
  // Parallel: partition the *value domain* — tasks write disjoint count
  // ranges, so no atomics and the result is deterministic by
  // construction (identical per-slot arithmetic regardless of split).
  pool->ParallelFor(0, d, [&](uint64_t lo, uint64_t hi) {
    oracle.AccumulateSupports(reports.data(), reports.size(), lo, hi,
                              counts.data() + lo);
  });
  return counts;
}

std::vector<double> CalibrateEstimates(const ScalarFrequencyOracle& oracle,
                                       const std::vector<uint64_t>& supports,
                                       uint64_t n, uint64_t n_fake) {
  const SupportProbs sp = oracle.support_probs();
  const double nd = static_cast<double>(n);
  const double baseline = nd * sp.q_other +
                          static_cast<double>(n_fake) * sp.q_fake;
  const double denom = nd * (sp.p_true - sp.q_other);
  std::vector<double> est(supports.size());
  for (size_t j = 0; j < supports.size(); ++j) {
    est[j] = (static_cast<double>(supports[j]) - baseline) / denom;
  }
  return est;
}

std::vector<double> CalibrateEstimatesOrdinal(
    const ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& supports, uint64_t n, uint64_t n_fake) {
  const SupportProbs sp = oracle.support_probs();
  const double nd = static_cast<double>(n);
  const double baseline =
      nd * sp.q_other +
      static_cast<double>(n_fake) * oracle.OrdinalFakeSupportProb();
  const double denom = nd * (sp.p_true - sp.q_other);
  std::vector<double> est(supports.size());
  for (size_t j = 0; j < supports.size(); ++j) {
    est[j] = (static_cast<double>(supports[j]) - baseline) / denom;
  }
  return est;
}

std::vector<double> CalibrateEstimatesEq6(const ScalarFrequencyOracle& oracle,
                                          const std::vector<uint64_t>& supports,
                                          uint64_t n, uint64_t n_fake) {
  const SupportProbs sp = oracle.support_probs();
  const double total = static_cast<double>(n + n_fake);
  const double nd = static_cast<double>(n);
  const double d = static_cast<double>(oracle.domain_size());
  std::vector<double> est(supports.size());
  for (size_t j = 0; j < supports.size(); ++j) {
    // Eq. (2)/(3) over n + n_r reports.
    double f_tilde = (static_cast<double>(supports[j]) / total - sp.q_other) /
                     (sp.p_true - sp.q_other);
    // Eq. (6).
    est[j] = total / nd * f_tilde -
             static_cast<double>(n_fake) / (nd * d);
  }
  return est;
}

std::vector<double> EstimateFrequencies(const ScalarFrequencyOracle& oracle,
                                        const std::vector<LdpReport>& reports,
                                        uint64_t n, uint64_t n_fake,
                                        ThreadPool* pool) {
  assert(reports.size() == n + n_fake);
  auto supports = SupportCountsFullDomain(oracle, reports, pool);
  return CalibrateEstimates(oracle, supports, n, n_fake);
}

}  // namespace ldp
}  // namespace shuffledp

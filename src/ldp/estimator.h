// Server-side frequency estimation for scalar-report oracles.
//
// Two pipelines:
//  * Exact: aggregate per-report support counts (parallelized), then apply
//    the calibration of Eqs. (2)/(3), generalized to n true + n_r uniform
//    fake reports (the PEOS estimator).
//  * Paper-faithful two-step: Eq. (2)/(3) over all n + n_r reports followed
//    by the Eq. (6) de-bias. For GRR the two coincide exactly; the general
//    single-step form is unbiased for every oracle (see DESIGN.md).

#ifndef SHUFFLEDP_LDP_ESTIMATOR_H_
#define SHUFFLEDP_LDP_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace ldp {

/// Support counts for each value in `eval_values` over `reports`
/// (parallelized over reports when `pool` is non-null).
std::vector<uint64_t> SupportCounts(const ScalarFrequencyOracle& oracle,
                                    const std::vector<LdpReport>& reports,
                                    const std::vector<uint64_t>& eval_values,
                                    ThreadPool* pool = nullptr);

/// Support counts for the full domain [0, d).
std::vector<uint64_t> SupportCountsFullDomain(
    const ScalarFrequencyOracle& oracle,
    const std::vector<LdpReport>& reports, ThreadPool* pool = nullptr);

/// Generalized unbiased calibration with n true users and n_fake uniform
/// fake reports:
///   f'_v = (support_v − n·q − n_fake·q_f) / (n (p − q)).
/// With n_fake = 0 this is exactly Eq. (2)/(3).
std::vector<double> CalibrateEstimates(const ScalarFrequencyOracle& oracle,
                                       const std::vector<uint64_t>& supports,
                                       uint64_t n, uint64_t n_fake);

/// PEOS variant of the calibration: fake reports reconstruct from uniform
/// Z_{2^B} shares, so their support probability is
/// `oracle.OrdinalFakeSupportProb()` (equal to q_fake when the ordinal
/// space is padding-free).
std::vector<double> CalibrateEstimatesOrdinal(
    const ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& supports, uint64_t n, uint64_t n_fake);

/// Paper Eq. (2)/(3) + Eq. (6): calibrate over all n + n_fake reports
/// pretending they are users, then de-bias with
///   f'_v = (n+n_r)/n · f~_v − n_r/(n d).
/// Unbiased for GRR; kept for API fidelity and cross-checked in tests.
std::vector<double> CalibrateEstimatesEq6(const ScalarFrequencyOracle& oracle,
                                          const std::vector<uint64_t>& supports,
                                          uint64_t n, uint64_t n_fake);

/// Full pipeline: aggregate + calibrate over the whole domain.
std::vector<double> EstimateFrequencies(const ScalarFrequencyOracle& oracle,
                                        const std::vector<LdpReport>& reports,
                                        uint64_t n, uint64_t n_fake = 0,
                                        ThreadPool* pool = nullptr);

}  // namespace ldp
}  // namespace shuffledp

#endif  // SHUFFLEDP_LDP_ESTIMATOR_H_

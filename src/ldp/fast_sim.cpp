#include "ldp/fast_sim.h"

#include <cassert>

#include "ldp/estimator.h"

namespace shuffledp {
namespace ldp {

std::vector<uint64_t> FastSimulateSupportsAt(
    const SupportProbs& probs, const std::vector<uint64_t>& value_counts,
    uint64_t n, uint64_t n_fake, const std::vector<uint64_t>& eval_values,
    Rng* rng) {
  std::vector<uint64_t> supports(eval_values.size());
  for (size_t j = 0; j < eval_values.size(); ++j) {
    uint64_t v = eval_values[j];
    assert(v < value_counts.size());
    uint64_t n_v = value_counts[v];
    assert(n_v <= n);
    supports[j] = rng->Binomial(n_v, probs.p_true) +
                  rng->Binomial(n - n_v, probs.q_other) +
                  rng->Binomial(n_fake, probs.q_fake);
  }
  return supports;
}

std::vector<uint64_t> FastSimulateSupports(
    const SupportProbs& probs, const std::vector<uint64_t>& value_counts,
    uint64_t n, uint64_t n_fake, Rng* rng) {
  std::vector<uint64_t> all(value_counts.size());
  for (uint64_t v = 0; v < value_counts.size(); ++v) all[v] = v;
  return FastSimulateSupportsAt(probs, value_counts, n, n_fake, all, rng);
}

std::vector<double> FastSimulateEstimate(
    const ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& value_counts, uint64_t n, uint64_t n_fake,
    Rng* rng) {
  auto supports = FastSimulateSupports(oracle.support_probs(), value_counts,
                                       n, n_fake, rng);
  return CalibrateEstimates(oracle, supports, n, n_fake);
}

std::vector<double> FastSimulateEstimateAt(
    const ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& value_counts, uint64_t n, uint64_t n_fake,
    const std::vector<uint64_t>& eval_values, Rng* rng) {
  auto supports = FastSimulateSupportsAt(oracle.support_probs(), value_counts,
                                         n, n_fake, eval_values, rng);
  return CalibrateEstimates(oracle, supports, n, n_fake);
}

std::vector<uint64_t> FastSimulateUnaryColumns(
    double p, double q, const std::vector<uint64_t>& value_counts, uint64_t n,
    const std::vector<uint64_t>& eval_values, Rng* rng) {
  std::vector<uint64_t> counts(eval_values.size());
  for (size_t j = 0; j < eval_values.size(); ++j) {
    uint64_t v = eval_values[j];
    assert(v < value_counts.size());
    uint64_t n_v = value_counts[v];
    counts[j] = rng->Binomial(n_v, p) + rng->Binomial(n - n_v, q);
  }
  return counts;
}

std::vector<uint64_t> FastSimulateAueColumns(
    double gamma, const std::vector<uint64_t>& value_counts, uint64_t n,
    const std::vector<uint64_t>& eval_values, Rng* rng) {
  std::vector<uint64_t> counts(eval_values.size());
  for (size_t j = 0; j < eval_values.size(); ++j) {
    uint64_t v = eval_values[j];
    assert(v < value_counts.size());
    counts[j] = value_counts[v] + rng->Binomial(n, gamma);
  }
  return counts;
}

}  // namespace ldp
}  // namespace shuffledp

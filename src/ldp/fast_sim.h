// Fast aggregate simulation for utility experiments (DESIGN.md §5).
//
// For utility benchmarks only the server-side aggregate matters, and for
// every oracle in this library the per-value support count is a sum of
// independent Bernoullis whose rates depend only on whether the reporting
// user holds that value:
//
//   support(v) ~ Bin(n_v, p) + Bin(n − n_v, q) + Bin(n_r, q_f)
//
// Drawing these Binomials directly is statistically exact for the marginal
// distribution of each estimate — and hence for E[MSE], which only depends
// on marginals — while reducing the cost from O(n·d) hash evaluations to
// O(d) Binomial draws. Tests verify agreement with the exact per-user
// pipeline (tests/ldp/fast_sim_agreement_test.cpp).

#ifndef SHUFFLEDP_LDP_FAST_SIM_H_
#define SHUFFLEDP_LDP_FAST_SIM_H_

#include <cstdint>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "util/rng.h"

namespace shuffledp {
namespace ldp {

/// Draws simulated support counts for each value of the full domain given
/// the true per-value user counts. `n` must equal the sum of
/// `value_counts`; `n_fake` adds the PEOS blanket reports.
std::vector<uint64_t> FastSimulateSupports(
    const SupportProbs& probs, const std::vector<uint64_t>& value_counts,
    uint64_t n, uint64_t n_fake, Rng* rng);

/// Same, restricted to `eval_values` (returns one count per entry).
std::vector<uint64_t> FastSimulateSupportsAt(
    const SupportProbs& probs, const std::vector<uint64_t>& value_counts,
    uint64_t n, uint64_t n_fake, const std::vector<uint64_t>& eval_values,
    Rng* rng);

/// One-call fast estimate over the full domain: simulate supports, then
/// apply the generalized calibration (see estimator.h).
std::vector<double> FastSimulateEstimate(
    const ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& value_counts, uint64_t n, uint64_t n_fake,
    Rng* rng);

/// Fast estimate at a subset of domain points.
std::vector<double> FastSimulateEstimateAt(
    const ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& value_counts, uint64_t n, uint64_t n_fake,
    const std::vector<uint64_t>& eval_values, Rng* rng);

/// Fast column-count simulation for unary encodings:
/// count(c) ~ Bin(n_c, p) + Bin(n − n_c, q), evaluated at `eval_values`.
std::vector<uint64_t> FastSimulateUnaryColumns(
    double p, double q, const std::vector<uint64_t>& value_counts, uint64_t n,
    const std::vector<uint64_t>& eval_values, Rng* rng);

/// Fast column-count simulation for AUE: count(c) ~ n_c + Bin(n, γ).
std::vector<uint64_t> FastSimulateAueColumns(
    double gamma, const std::vector<uint64_t>& value_counts, uint64_t n,
    const std::vector<uint64_t>& eval_values, Rng* rng);

}  // namespace ldp
}  // namespace shuffledp

#endif  // SHUFFLEDP_LDP_FAST_SIM_H_

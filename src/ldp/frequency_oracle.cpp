#include "ldp/frequency_oracle.h"

namespace shuffledp {
namespace ldp {

Status ScalarFrequencyOracle::ValidateReport(const LdpReport& report) const {
  if (report.value >= report_domain()) {
    return Status::OutOfRange("report value outside the report domain");
  }
  return Status::OK();
}

void ScalarFrequencyOracle::AccumulateSupports(const LdpReport* reports,
                                               size_t count,
                                               uint64_t value_lo,
                                               uint64_t value_hi,
                                               uint64_t* counts) const {
  for (uint64_t v = value_lo; v < value_hi; ++v) {
    uint64_t c = 0;
    for (size_t i = 0; i < count; ++i) {
      c += Supports(reports[i], v);
    }
    counts[v - value_lo] += c;
  }
}

uint64_t ScalarFrequencyOracle::SupportsMany(const LdpReport* reports,
                                             size_t count, uint64_t v) const {
  uint64_t c = 0;
  for (size_t i = 0; i < count; ++i) {
    c += Supports(reports[i], v);
  }
  return c;
}

}  // namespace ldp
}  // namespace shuffledp

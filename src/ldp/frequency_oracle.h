// Frequency-oracle interface for scalar-report LDP mechanisms.
//
// A *scalar* oracle (GRR, OLH/SOLH, Hadamard response) emits one small
// report per user — optionally tagged with a hash seed — which is exactly
// the shape PEOS secret-shares ("the domain of the report can be mapped to
// an ordinal group", paper §VI-A2). Unary-encoding mechanisms (RAPPOR,
// RAP_R, AUE) emit d-length vectors and live in unary.h / aue.h.
//
// The server-side estimator needs only three numbers per oracle:
//   p  = Pr[report supports v | user's value is v]
//   q  = Pr[report supports v | user's value is not v]
//   qf = Pr[uniform fake report supports v]
// (for GRR qf = 1/d != q; for local hashing qf = q = 1/d').

#ifndef SHUFFLEDP_LDP_FREQUENCY_ORACLE_H_
#define SHUFFLEDP_LDP_FREQUENCY_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/rng.h"
#include "util/status.h"

namespace shuffledp {
namespace ldp {

/// One user's perturbed report.
struct LdpReport {
  uint32_t seed = 0;   ///< hash-family member (0 for GRR)
  uint32_t value = 0;  ///< perturbed value in [0, report_domain)

  bool operator==(const LdpReport& o) const {
    return seed == o.seed && value == o.value;
  }
};

/// Packs a report into the 64-bit integer PEOS secret-shares.
inline uint64_t PackReport(const LdpReport& r) {
  return (static_cast<uint64_t>(r.seed) << 32) | r.value;
}

/// Inverse of PackReport.
inline LdpReport UnpackReport(uint64_t packed) {
  return LdpReport{static_cast<uint32_t>(packed >> 32),
                   static_cast<uint32_t>(packed & 0xFFFFFFFFu)};
}

/// Support-probability triple used by estimators and the fast simulator.
struct SupportProbs {
  double p_true;   ///< support probability for the user's own value
  double q_other;  ///< support probability for any other value
  double q_fake;   ///< support probability of a uniform fake report
};

/// Abstract scalar-report frequency oracle.
class ScalarFrequencyOracle {
 public:
  virtual ~ScalarFrequencyOracle() = default;

  /// Mechanism name for logs and benchmark output ("GRR", "SOLH", ...).
  virtual std::string Name() const = 0;

  /// Input domain size d.
  virtual uint64_t domain_size() const = 0;

  /// Size of the report value space (d for GRR, d' for local hashing, 2
  /// for Hadamard response).
  virtual uint64_t report_domain() const = 0;

  /// The local ε this oracle was configured with.
  virtual double epsilon_local() const = 0;

  /// Client side: encodes and perturbs `v` (< domain_size()).
  virtual LdpReport Encode(uint64_t v, Rng* rng) const = 0;

  /// Server side: does `report` support value `v`?
  virtual bool Supports(const LdpReport& report, uint64_t v) const = 0;

  /// Bulk aggregation: for every v in [value_lo, value_hi) adds
  /// |{ i : Supports(reports[i], v) }| to counts[v − value_lo]. Counts are
  /// accumulated, never assigned, so shard slices can share one buffer.
  /// The default is the per-pair scalar loop — semantics identical by
  /// construction; LocalHash overrides it with the tiled kernels in
  /// support_kernels.h (bitwise-identical, pinned by tests).
  virtual void AccumulateSupports(const LdpReport* reports, size_t count,
                                  uint64_t value_lo, uint64_t value_hi,
                                  uint64_t* counts) const;

  /// Bulk single-value form: |{ i : Supports(reports[i], v) }|.
  virtual uint64_t SupportsMany(const LdpReport* reports, size_t count,
                                uint64_t v) const;

  /// Samples a report uniformly from the output space (the PEOS fake
  /// report distribution, Algorithm 1).
  virtual LdpReport MakeFakeReport(Rng* rng) const = 0;

  /// The calibration triple.
  virtual SupportProbs support_probs() const = 0;

  /// Validates a report that arrived over the network / out of a share
  /// reconstruction (range checks).
  virtual Status ValidateReport(const LdpReport& report) const;

  /// Wire size of one report in bytes (seed + value, packed).
  virtual size_t ReportBytes() const { return 8; }

  /// True when Supports(report, v) reduces to report.value == v (GRR):
  /// lets aggregators count supports with one histogram increment per
  /// report instead of a full domain scan.
  virtual bool SupportIsValueEquality() const { return false; }

  // --- Ordinal codec for PEOS secret sharing ------------------------------
  //
  // PEOS shares reports over Z_{2^B}: uniform B-bit fake *shares*
  // reconstruct to a uniform value over Z_{2^B}, so the report space must
  // be padded to a power of two (paper §VI-A2 maps reports to "an ordinal
  // group"; the power-of-two padding makes that group match the AHE
  // plaintext group exactly). Values decoding into the padding region are
  // discarded by the server; OrdinalFakeSupportProb() gives the exact
  // support probability of a uniform Z_{2^B} fake so calibration stays
  // unbiased.

  /// Number of bits B of the padded ordinal report space (B <= 64).
  virtual unsigned PackedBits() const = 0;

  /// Maps a report to its ordinal index in [0, 2^B).
  virtual uint64_t PackOrdinal(const LdpReport& report) const = 0;

  /// Inverse of PackOrdinal; OutOfRange for padding indices.
  virtual Result<LdpReport> UnpackOrdinal(uint64_t ordinal) const = 0;

  /// Pr[a uniform Z_{2^B} fake report supports v] (any v).
  virtual double OrdinalFakeSupportProb() const = 0;
};

}  // namespace ldp
}  // namespace shuffledp

#endif  // SHUFFLEDP_LDP_FREQUENCY_ORACLE_H_

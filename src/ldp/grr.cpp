#include "ldp/grr.h"

#include <cassert>
#include <cmath>

#include "util/math.h"

namespace shuffledp {
namespace ldp {

Grr::Grr(double eps_l, uint64_t d) : eps_l_(eps_l), d_(d) {
  assert(eps_l > 0.0);
  assert(d >= 2);
  double e = std::exp(eps_l);
  p_ = e / (e + static_cast<double>(d) - 1.0);
  q_ = 1.0 / (e + static_cast<double>(d) - 1.0);
  packed_bits_ = static_cast<unsigned>(Log2Exact(NextPow2(d)));
  if (packed_bits_ == 0) packed_bits_ = 1;
}

Result<LdpReport> Grr::UnpackOrdinal(uint64_t ordinal) const {
  if (ordinal >= d_) {
    return Status::OutOfRange("GRR ordinal in padding region");
  }
  LdpReport r;
  r.value = static_cast<uint32_t>(ordinal);
  return r;
}

LdpReport Grr::Encode(uint64_t v, Rng* rng) const {
  assert(v < d_);
  LdpReport r;
  if (rng->Bernoulli(p_)) {
    r.value = static_cast<uint32_t>(v);
  } else {
    // Uniform over the d−1 values other than v.
    uint64_t other = rng->UniformU64(d_ - 1);
    if (other >= v) ++other;
    r.value = static_cast<uint32_t>(other);
  }
  return r;
}

bool Grr::Supports(const LdpReport& report, uint64_t v) const {
  return report.value == v;
}

LdpReport Grr::MakeFakeReport(Rng* rng) const {
  LdpReport r;
  r.value = static_cast<uint32_t>(rng->UniformU64(d_));
  return r;
}

SupportProbs Grr::support_probs() const {
  return SupportProbs{p_, q_, 1.0 / static_cast<double>(d_)};
}

}  // namespace ldp
}  // namespace shuffledp

// Generalized randomized response (GRR), paper §II-B Eq. (1).

#ifndef SHUFFLEDP_LDP_GRR_H_
#define SHUFFLEDP_LDP_GRR_H_

#include "ldp/frequency_oracle.h"

namespace shuffledp {
namespace ldp {

/// GRR: report the true value with probability p = e^ε/(e^ε+d−1), any
/// other fixed value with probability q = 1/(e^ε+d−1).
class Grr : public ScalarFrequencyOracle {
 public:
  /// Pre: eps_l > 0, d >= 2.
  Grr(double eps_l, uint64_t d);

  std::string Name() const override { return "GRR"; }
  uint64_t domain_size() const override { return d_; }
  uint64_t report_domain() const override { return d_; }
  double epsilon_local() const override { return eps_l_; }

  LdpReport Encode(uint64_t v, Rng* rng) const override;
  bool Supports(const LdpReport& report, uint64_t v) const override;
  LdpReport MakeFakeReport(Rng* rng) const override;
  SupportProbs support_probs() const override;
  bool SupportIsValueEquality() const override { return true; }

  unsigned PackedBits() const override { return packed_bits_; }
  uint64_t PackOrdinal(const LdpReport& report) const override {
    return report.value;
  }
  Result<LdpReport> UnpackOrdinal(uint64_t ordinal) const override;
  double OrdinalFakeSupportProb() const override {
    return 1.0 / static_cast<double>(uint64_t{1} << packed_bits_);
  }

  double p() const { return p_; }
  double q() const { return q_; }

 private:
  double eps_l_;
  uint64_t d_;
  unsigned packed_bits_;  // ceil(log2 d)
  double p_;  // e^ε / (e^ε + d − 1)
  double q_;  // 1 / (e^ε + d − 1)
};

}  // namespace ldp
}  // namespace shuffledp

#endif  // SHUFFLEDP_LDP_GRR_H_

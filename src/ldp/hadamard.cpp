#include "ldp/hadamard.h"

#include <cassert>
#include <cmath>

#include "util/math.h"

namespace shuffledp {
namespace ldp {

HadamardResponse::HadamardResponse(double eps_l, uint64_t d)
    : eps_l_(eps_l), d_(d) {
  assert(eps_l > 0.0);
  assert(d >= 2);
  // Column 0 of the Hadamard matrix is constant; map value v to column
  // v + 1, so we need D > d.
  dim_ = NextPow2(d + 1);
  dim_bits_ = static_cast<unsigned>(Log2Exact(dim_));
  double e = std::exp(eps_l);
  p_ = e / (e + 1.0);
}

LdpReport HadamardResponse::Encode(uint64_t v, Rng* rng) const {
  assert(v < d_);
  LdpReport r;
  r.seed = static_cast<uint32_t>(rng->UniformU64(dim_));
  uint32_t bit = HadamardBit(r.seed, static_cast<uint32_t>(v + 1));
  r.value = rng->Bernoulli(p_) ? bit : (1u - bit);
  return r;
}

bool HadamardResponse::Supports(const LdpReport& report, uint64_t v) const {
  return HadamardBit(report.seed, static_cast<uint32_t>(v + 1)) ==
         report.value;
}

LdpReport HadamardResponse::MakeFakeReport(Rng* rng) const {
  LdpReport r;
  r.seed = static_cast<uint32_t>(rng->UniformU64(dim_));
  r.value = static_cast<uint32_t>(rng->UniformU64(2));
  return r;
}

SupportProbs HadamardResponse::support_probs() const {
  return SupportProbs{p_, 0.5, 0.5};
}

void Fwht(std::vector<double>* data) {
  const size_t n = data->size();
  assert((n & (n - 1)) == 0 && "FWHT length must be a power of two");
  for (size_t len = 1; len < n; len <<= 1) {
    for (size_t i = 0; i < n; i += len << 1) {
      for (size_t j = i; j < i + len; ++j) {
        double u = (*data)[j];
        double v = (*data)[j + len];
        (*data)[j] = u + v;
        (*data)[j + len] = u - v;
      }
    }
  }
}

std::vector<double> HadamardResponse::EstimateFwht(
    const std::vector<LdpReport>& reports, uint64_t n) const {
  // Support count: S_v = n/2 + (1/2) (H a)[v+1] where
  // a[r] = #(reports with seed r, value 0) − #(value 1). The calibrated
  // estimate reduces to f~_v = (H a)[v+1] / (n (2p − 1)).
  std::vector<double> a(dim_, 0.0);
  for (const LdpReport& r : reports) {
    a[r.seed % dim_] += (r.value == 0) ? 1.0 : -1.0;
  }
  Fwht(&a);
  std::vector<double> est(d_);
  const double denom = static_cast<double>(n) * (2.0 * p_ - 1.0);
  for (uint64_t v = 0; v < d_; ++v) {
    est[v] = a[v + 1] / denom;
  }
  return est;
}

}  // namespace ldp
}  // namespace shuffledp

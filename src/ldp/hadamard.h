// Hadamard response ("Had" in the paper's evaluation, Acharya et al. '19).
//
// Treated as local hashing with d' = 2 where the hash family is the rows
// of a Hadamard matrix: the user samples a uniform row index r of the
// D x D Sylvester Hadamard matrix (D = next power of two > d), computes
// the bit H[r, v+1] (column 0 is skipped — it is constant +1), and
// perturbs it with binary randomized response. Its utility matches OLH
// with d' = 2, but the server aggregate can be evaluated with a fast
// Walsh–Hadamard transform in O(n + D log D).

#ifndef SHUFFLEDP_LDP_HADAMARD_H_
#define SHUFFLEDP_LDP_HADAMARD_H_

#include <vector>

#include "ldp/frequency_oracle.h"

namespace shuffledp {
namespace ldp {

/// Parity bit of the Sylvester Hadamard matrix entry H[row, col]:
/// 0 <=> +1, 1 <=> −1. H[row, col] = (−1)^{popcount(row & col)}.
inline uint32_t HadamardBit(uint32_t row, uint32_t col) {
  return static_cast<uint32_t>(__builtin_popcount(row & col) & 1);
}

/// Hadamard response oracle.
class HadamardResponse : public ScalarFrequencyOracle {
 public:
  /// Pre: eps_l > 0, d >= 2.
  HadamardResponse(double eps_l, uint64_t d);

  std::string Name() const override { return "Had"; }
  uint64_t domain_size() const override { return d_; }
  uint64_t report_domain() const override { return 2; }
  double epsilon_local() const override { return eps_l_; }

  LdpReport Encode(uint64_t v, Rng* rng) const override;
  bool Supports(const LdpReport& report, uint64_t v) const override;
  LdpReport MakeFakeReport(Rng* rng) const override;
  SupportProbs support_probs() const override;

  unsigned PackedBits() const override { return dim_bits_ + 1; }
  uint64_t PackOrdinal(const LdpReport& report) const override {
    return (static_cast<uint64_t>(report.seed) << 1) | report.value;
  }
  Result<LdpReport> UnpackOrdinal(uint64_t ordinal) const override {
    // The Hadamard report space (row, bit) is exactly a power of two:
    // every ordinal is a valid report.
    LdpReport r;
    r.value = static_cast<uint32_t>(ordinal & 1);
    r.seed = static_cast<uint32_t>(ordinal >> 1);
    return r;
  }
  double OrdinalFakeSupportProb() const override { return 0.5; }

  /// Padded Hadamard dimension D (power of two > d).
  uint64_t padded_dim() const { return dim_; }

  /// O(n + D log D) exact estimation via the fast Walsh–Hadamard
  /// transform; numerically identical (up to fp error) to the generic
  /// support-count path but ~d times faster server-side.
  std::vector<double> EstimateFwht(const std::vector<LdpReport>& reports,
                                   uint64_t n) const;

 private:
  double eps_l_;
  uint64_t d_;
  uint64_t dim_;       // padded power-of-two dimension
  unsigned dim_bits_;  // log2(dim_)
  double p_;           // e^ε / (e^ε + 1)
};

/// In-place fast Walsh–Hadamard transform (unnormalized).
void Fwht(std::vector<double>* data);

}  // namespace ldp
}  // namespace shuffledp

#endif  // SHUFFLEDP_LDP_HADAMARD_H_

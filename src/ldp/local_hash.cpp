#include "ldp/local_hash.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dp/amplification.h"
#include "ldp/support_kernels.h"
#include "util/hash.h"
#include "util/math.h"

namespace shuffledp {
namespace ldp {

LocalHash::LocalHash(double eps_l, uint64_t d, uint64_t d_prime,
                     std::string name)
    : name_(std::move(name)), eps_l_(eps_l), d_(d), d_prime_(d_prime) {
  assert(eps_l > 0.0);
  assert(d >= 2);
  assert(d_prime >= 2);
  assert(d_prime <= (uint64_t{1} << 32));
  double e = std::exp(eps_l);
  p_ = e / (e + static_cast<double>(d_prime) - 1.0);
  value_bits_ = static_cast<unsigned>(Log2Exact(NextPow2(d_prime)));
}

Result<LdpReport> LocalHash::UnpackOrdinal(uint64_t ordinal) const {
  LdpReport r;
  r.value = static_cast<uint32_t>(ordinal &
                                  ((uint64_t{1} << value_bits_) - 1));
  r.seed = static_cast<uint32_t>(ordinal >> value_bits_);
  if (r.value >= d_prime_) {
    return Status::OutOfRange("local-hash ordinal in padding region");
  }
  return r;
}

LdpReport LocalHash::Encode(uint64_t v, Rng* rng) const {
  assert(v < d_);
  LdpReport r;
  r.seed = static_cast<uint32_t>(rng->NextU64());
  uint32_t hashed =
      UniversalHash(v, r.seed, static_cast<uint32_t>(d_prime_));
  if (rng->Bernoulli(p_)) {
    r.value = hashed;
  } else {
    uint64_t other = rng->UniformU64(d_prime_ - 1);
    if (other >= hashed) ++other;
    r.value = static_cast<uint32_t>(other);
  }
  return r;
}

bool LocalHash::Supports(const LdpReport& report, uint64_t v) const {
  return UniversalHash(v, report.seed, static_cast<uint32_t>(d_prime_)) ==
         report.value;
}

void LocalHash::AccumulateSupports(const LdpReport* reports, size_t count,
                                   uint64_t value_lo, uint64_t value_hi,
                                   uint64_t* counts) const {
  if (ActiveSupportBackend() == SupportBackend::kScalar) {
    ScalarFrequencyOracle::AccumulateSupports(reports, count, value_lo,
                                              value_hi, counts);
    return;
  }
  AccumulateLocalHashSupports(reports, count, value_lo, value_hi,
                              static_cast<uint32_t>(d_prime_), counts);
}

uint64_t LocalHash::SupportsMany(const LdpReport* reports, size_t count,
                                 uint64_t v) const {
  if (ActiveSupportBackend() == SupportBackend::kScalar) {
    return ScalarFrequencyOracle::SupportsMany(reports, count, v);
  }
  return CountLocalHashSupports(reports, count, v,
                                static_cast<uint32_t>(d_prime_));
}

LdpReport LocalHash::MakeFakeReport(Rng* rng) const {
  LdpReport r;
  r.seed = static_cast<uint32_t>(rng->NextU64());
  r.value = static_cast<uint32_t>(rng->UniformU64(d_prime_));
  return r;
}

SupportProbs LocalHash::support_probs() const {
  double q = 1.0 / static_cast<double>(d_prime_);
  return SupportProbs{p_, q, q};
}

std::unique_ptr<LocalHash> MakeOlh(double eps_l, uint64_t d) {
  uint64_t d_prime =
      std::max<uint64_t>(2, static_cast<uint64_t>(std::lround(
                                std::exp(eps_l) + 1.0)));
  d_prime = std::min(d_prime, d);  // hashing beyond d wastes budget
  d_prime = std::max<uint64_t>(d_prime, 2);
  return std::make_unique<LocalHash>(eps_l, d, d_prime, "OLH");
}

Result<std::unique_ptr<LocalHash>> MakeSolh(double eps_c, uint64_t n,
                                            uint64_t d, double delta) {
  if (eps_c <= 0.0 || delta <= 0.0) {
    return Status::InvalidArgument("SOLH: eps_c and delta must be positive");
  }
  if (n < 2) return Status::InvalidArgument("SOLH: need n >= 2");
  uint64_t d_prime = dp::OptimalSolhDPrime(eps_c, n, delta);
  return MakeSolhFixedDPrime(eps_c, n, d, d_prime, delta);
}

Result<std::unique_ptr<LocalHash>> MakeSolhFixedDPrime(double eps_c,
                                                       uint64_t n, uint64_t d,
                                                       uint64_t d_prime,
                                                       double delta) {
  if (d_prime < 2) {
    return Status::InvalidArgument("SOLH: d' must be >= 2");
  }
  double eps_l = dp::InverseSolhEpsLocal(eps_c, n, d_prime, delta);
  if (eps_l <= eps_c) {
    // No amplification possible at this d'; run plain LDP at ε_c with the
    // smallest range (the paper's SH fallback behaviour).
    return std::make_unique<LocalHash>(eps_c, d, std::min<uint64_t>(d_prime, 2),
                                       "SOLH");
  }
  return std::make_unique<LocalHash>(eps_l, d, d_prime, "SOLH");
}

Result<std::unique_ptr<LocalHash>> MakePeosSolh(double eps_c, uint64_t n,
                                                uint64_t n_r, uint64_t d,
                                                double delta,
                                                double eps_l_cap) {
  if (n_r == 0) return MakeSolh(eps_c, n, d, delta);
  uint64_t d_prime = dp::PeosOptimalDPrime(eps_c, n, n_r, delta);
  d_prime = std::max<uint64_t>(d_prime, 2);
  // Round up to a power of two so the PEOS ordinal report space is
  // padding-free: a uniform Z_{2^B} fake share then reconstructs to a
  // uniform *valid* report, making the fake blanket exactly Bin(n_r, 1/d')
  // as Corollary 8 assumes (see frequency_oracle.h ordinal codec notes).
  d_prime = NextPow2(d_prime);
  double eps_l = dp::PeosInverseEpsLocal(eps_c, n, n_r, d_prime, delta);
  if (std::isinf(eps_l)) eps_l = eps_l_cap;
  if (eps_l <= eps_c) {
    return std::make_unique<LocalHash>(eps_c, d, 2, "PEOS-SOLH");
  }
  eps_l = std::min(eps_l, eps_l_cap);
  return std::make_unique<LocalHash>(eps_l, d, d_prime, "PEOS-SOLH");
}

}  // namespace ldp
}  // namespace shuffledp

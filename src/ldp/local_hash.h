// Local hashing frequency oracles: OLH (LDP-optimal d' = e^ε + 1, Wang et
// al. '17) and SOLH (shuffler-optimal d', paper §IV-B).
//
// Each user draws a random hash seed, hashes the value into [0, d'), and
// perturbs the hashed value with GRR over [0, d'). The report is the pair
// <seed, perturbed hash>.

#ifndef SHUFFLEDP_LDP_LOCAL_HASH_H_
#define SHUFFLEDP_LDP_LOCAL_HASH_H_

#include <memory>

#include "ldp/frequency_oracle.h"
#include "util/status.h"

namespace shuffledp {
namespace ldp {

/// Local hashing with an explicit hash range d'.
class LocalHash : public ScalarFrequencyOracle {
 public:
  /// Pre: eps_l > 0, d >= 2, 2 <= d_prime.
  LocalHash(double eps_l, uint64_t d, uint64_t d_prime,
            std::string name = "LH");

  std::string Name() const override { return name_; }
  uint64_t domain_size() const override { return d_; }
  uint64_t report_domain() const override { return d_prime_; }
  double epsilon_local() const override { return eps_l_; }

  LdpReport Encode(uint64_t v, Rng* rng) const override;
  bool Supports(const LdpReport& report, uint64_t v) const override;
  /// Bulk forms routed through the tiled support kernels
  /// (ldp/support_kernels.h) — bitwise identical to the per-pair loop;
  /// SupportBackend::kScalar forces the base-class reference path.
  void AccumulateSupports(const LdpReport* reports, size_t count,
                          uint64_t value_lo, uint64_t value_hi,
                          uint64_t* counts) const override;
  uint64_t SupportsMany(const LdpReport* reports, size_t count,
                        uint64_t v) const override;
  LdpReport MakeFakeReport(Rng* rng) const override;
  SupportProbs support_probs() const override;

  unsigned PackedBits() const override { return 32 + value_bits_; }
  uint64_t PackOrdinal(const LdpReport& report) const override {
    return (static_cast<uint64_t>(report.seed) << value_bits_) |
           report.value;
  }
  Result<LdpReport> UnpackOrdinal(uint64_t ordinal) const override;
  double OrdinalFakeSupportProb() const override {
    // Uniform seed; uniform value over [0, 2^value_bits): matches
    // H_seed(v) (< d') with probability 1/2^value_bits.
    return 1.0 / static_cast<double>(uint64_t{1} << value_bits_);
  }

  double p() const { return p_; }

 private:
  std::string name_;
  double eps_l_;
  uint64_t d_;
  uint64_t d_prime_;
  unsigned value_bits_;  // ceil(log2 d')
  double p_;  // e^ε / (e^ε + d' − 1)
};

/// OLH: local hashing with the LDP-optimal range d' = round(e^ε) + 1
/// (Wang et al. '17). `name` defaults to "OLH".
std::unique_ptr<LocalHash> MakeOlh(double eps_l, uint64_t d);

/// SOLH for the plain shuffler model: given the central target ε_c, picks
/// the variance-optimal d' (Eq. 5) and the matching ε_l (Theorem 3
/// inverse). Falls back to ε_l = ε_c with d' = 2 when amplification is
/// impossible at this (n, d', δ).
Result<std::unique_ptr<LocalHash>> MakeSolh(double eps_c, uint64_t n,
                                            uint64_t d, double delta);

/// SOLH with a caller-fixed d' (used by the Table II d'-sensitivity rows).
Result<std::unique_ptr<LocalHash>> MakeSolhFixedDPrime(double eps_c,
                                                       uint64_t n, uint64_t d,
                                                       uint64_t d_prime,
                                                       double delta);

/// SOLH inside PEOS: n_r fake reports shift blanket mass away from the
/// users, raising both the optimal d' and the admissible local ε
/// (Corollary 8 + §VI-C).
Result<std::unique_ptr<LocalHash>> MakePeosSolh(double eps_c, uint64_t n,
                                                uint64_t n_r, uint64_t d,
                                                double delta,
                                                double eps_l_cap = 20.0);

}  // namespace ldp
}  // namespace shuffledp

#endif  // SHUFFLEDP_LDP_LOCAL_HASH_H_

// Bulk support-evaluation kernels — see support_kernels.h for the design.
//
// Layout notes shared by both backends:
//
//  * The per-pair predicate is
//      XxHash64Key8(v, seed) % d' == report.value
//    and the first hash round k1(v) = rotl(v·P2, 31)·P1 depends only on
//    the domain value, so a value tile computes k1 once and reuses it
//    across every report in the report tile (≈40% of the multiplies
//    hoisted out of the O(batch × d) inner loop).
//
//  * Tiling: report tiles of 2048 (16 KiB of LdpReports) stay L1-resident
//    while the value loop walks over them; value tiles of 512 keep the
//    k1 cache + the touched counter slice another ~8 KiB. One batch is
//    streamed once per value tile — all from L1 after the first pass.
//
//  * `% d'` must be bitwise the `%` operator (protocol semantics shared
//    with the client Encode) — powers of two reduce with a mask, general
//    d' through the branch-free Granlund–Montgomery magic in
//    SupportModulus. tests/ldp/support_kernel_test.cpp pins Reduce()
//    against `%` and the whole kernel against the per-pair loop.
//
// This is a separate translation unit so the target("avx2") functions can
// be compiled with vector codegen while the rest of the library keeps the
// project-wide baseline flags (same idiom as crypto/montgomery_batch.cpp).

#include "ldp/support_kernels.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "util/hash.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SHUFFLEDP_SUPPORT_AVX2_COMPILED 1
#if defined(__GNUC__) && !defined(__clang__)
// GCC's AVX-512 masked-intrinsic headers trip -Wmaybe-uninitialized on
// the undefined pass-through operand of the _maskz_ forms; there is no
// real read of uninitialized data (gcc bugzilla 105593).
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
#else
#define SHUFFLEDP_SUPPORT_AVX2_COMPILED 0
#endif

namespace shuffledp {
namespace ldp {

namespace {

constexpr uint64_t kP1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kP3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kP4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kP5 = 0x27D4EB2F165667C5ULL;
// seed + P5 + len(8): the whole seed-dependent hash prologue.
constexpr uint64_t kSeedBias = kP5 + 8;

constexpr size_t kReportTile = 2048;
constexpr size_t kValueTile = 512;

inline uint64_t Rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

/// k1(v): the seed-independent first round of the 8-byte-key hash.
inline uint64_t KeyRound(uint64_t v) { return Rotl64(v * kP2, 31) * kP1; }

/// Finishes the hash given h0 = seed + kSeedBias and k1 = KeyRound(v).
/// Identical tail to XxHash64Key8 (util/hash.h).
inline uint64_t FinishHash(uint64_t h0, uint64_t k1) {
  uint64_t h = h0 ^ k1;
  h = Rotl64(h, 27) * kP1 + kP4;
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

bool CpuHasAvx2() {
#if SHUFFLEDP_SUPPORT_AVX2_COMPILED
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if SHUFFLEDP_SUPPORT_AVX2_COMPILED
  // F for the 512-bit integer base ops, DQ for VPMULLQ.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

bool ForcePortable() {
  const char* v = std::getenv("SHUFFLEDP_FORCE_PORTABLE");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

SupportBackend& BackendOverride() {
  static SupportBackend backend = BestSupportBackend();
  return backend;
}

// ---------------------------------------------------------------------------
// Portable backend: scalar straight-line hash, 4-value unroll so the four
// independent dependency chains fill the scalar multiplier, magic modulo
// instead of a hardware divide.
// ---------------------------------------------------------------------------

template <bool kPow2>
void AccumulatePortable(const LdpReport* reports, size_t count,
                        uint64_t value_lo, uint64_t value_hi,
                        const SupportModulus& mod, uint64_t* counts) {
  uint64_t k1[kValueTile];
  for (size_t rlo = 0; rlo < count; rlo += kReportTile) {
    const size_t rhi = rlo + std::min(kReportTile, count - rlo);
    for (uint64_t vlo = value_lo; vlo < value_hi; vlo += kValueTile) {
      const uint64_t vhi =
          vlo + std::min<uint64_t>(kValueTile, value_hi - vlo);
      const size_t vn = vhi - vlo;
      for (size_t j = 0; j < vn; ++j) k1[j] = KeyRound(vlo + j);

      size_t j = 0;
      for (; j + 4 <= vn; j += 4) {
        uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
        for (size_t r = rlo; r < rhi; ++r) {
          const uint64_t h0 = reports[r].seed + kSeedBias;
          const uint64_t target = reports[r].value;
          uint64_t m0, m1, m2, m3;
          if (kPow2) {
            m0 = FinishHash(h0, k1[j + 0]) & mod.mask;
            m1 = FinishHash(h0, k1[j + 1]) & mod.mask;
            m2 = FinishHash(h0, k1[j + 2]) & mod.mask;
            m3 = FinishHash(h0, k1[j + 3]) & mod.mask;
          } else {
            m0 = mod.Reduce(FinishHash(h0, k1[j + 0]));
            m1 = mod.Reduce(FinishHash(h0, k1[j + 1]));
            m2 = mod.Reduce(FinishHash(h0, k1[j + 2]));
            m3 = mod.Reduce(FinishHash(h0, k1[j + 3]));
          }
          c0 += m0 == target;
          c1 += m1 == target;
          c2 += m2 == target;
          c3 += m3 == target;
        }
        counts[vlo - value_lo + j + 0] += c0;
        counts[vlo - value_lo + j + 1] += c1;
        counts[vlo - value_lo + j + 2] += c2;
        counts[vlo - value_lo + j + 3] += c3;
      }
      for (; j < vn; ++j) {
        uint64_t c = 0;
        for (size_t r = rlo; r < rhi; ++r) {
          const uint64_t h = FinishHash(reports[r].seed + kSeedBias, k1[j]);
          c += (kPow2 ? (h & mod.mask) : mod.Reduce(h)) == reports[r].value;
        }
        counts[vlo - value_lo + j] += c;
      }
    }
  }
}

template <bool kPow2>
uint64_t CountPortable(const LdpReport* reports, size_t count, uint64_t value,
                       const SupportModulus& mod) {
  const uint64_t k1 = KeyRound(value);
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    uint64_t h0 = FinishHash(reports[r + 0].seed + kSeedBias, k1);
    uint64_t h1 = FinishHash(reports[r + 1].seed + kSeedBias, k1);
    uint64_t h2 = FinishHash(reports[r + 2].seed + kSeedBias, k1);
    uint64_t h3 = FinishHash(reports[r + 3].seed + kSeedBias, k1);
    if (kPow2) {
      c0 += (h0 & mod.mask) == reports[r + 0].value;
      c1 += (h1 & mod.mask) == reports[r + 1].value;
      c2 += (h2 & mod.mask) == reports[r + 2].value;
      c3 += (h3 & mod.mask) == reports[r + 3].value;
    } else {
      c0 += mod.Reduce(h0) == reports[r + 0].value;
      c1 += mod.Reduce(h1) == reports[r + 1].value;
      c2 += mod.Reduce(h2) == reports[r + 2].value;
      c3 += mod.Reduce(h3) == reports[r + 3].value;
    }
  }
  for (; r < count; ++r) {
    const uint64_t h = FinishHash(reports[r].seed + kSeedBias, k1);
    c0 += (kPow2 ? (h & mod.mask) : mod.Reduce(h)) == reports[r].value;
  }
  return c0 + c1 + c2 + c3;
}

// ---------------------------------------------------------------------------
// AVX2 backend: 4 × 64-bit hash lanes per vector. 64-bit lane multiplies
// are synthesized from VPMULUDQ (32×32→64) — the widest vector multiply
// AVX2 offers — exactly as in the Montgomery batch kernels.
// ---------------------------------------------------------------------------

#if SHUFFLEDP_SUPPORT_AVX2_COMPILED

// mullo64(a, b) for a constant b handed in as (b, b >> 32) splats.
__attribute__((target("avx2"))) inline __m256i MulLo64Const(
    __m256i a, __m256i b, __m256i b_hi) {
  __m256i lo = _mm256_mul_epu32(a, b);                        // a_lo · b_lo
  __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// high 64 bits of a · m for a constant multiplier m = (m, m >> 32) splats.
__attribute__((target("avx2"))) inline __m256i MulHi64Const(
    __m256i a, __m256i m, __m256i m_hi, __m256i mask32) {
  __m256i a_hi = _mm256_srli_epi64(a, 32);
  __m256i lolo = _mm256_mul_epu32(a, m);
  __m256i hilo = _mm256_mul_epu32(a_hi, m);
  __m256i lohi = _mm256_mul_epu32(a, m_hi);
  __m256i hihi = _mm256_mul_epu32(a_hi, m_hi);
  __m256i cross = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(lolo, 32),
                       _mm256_and_si256(hilo, mask32)),
      _mm256_and_si256(lohi, mask32));
  return _mm256_add_epi64(
      _mm256_add_epi64(hihi, _mm256_srli_epi64(hilo, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(lohi, 32),
                       _mm256_srli_epi64(cross, 32)));
}

/// Vector constants one kernel invocation needs; built once per call.
struct Avx2Ctx {
  __m256i p1, p1_hi, p2, p2_hi, p3, p3_hi, p4;
  __m256i mask32;
  // modulo plumbing
  bool pow2;
  __m256i mod_mask;                  // pow2: d' − 1
  __m256i magic, magic_hi, d, one;   // general: branch-free magic divide
  int shift;
};

__attribute__((target("avx2"))) Avx2Ctx MakeAvx2Ctx(
    const SupportModulus& mod) {
  Avx2Ctx c;
  c.p1 = _mm256_set1_epi64x(static_cast<long long>(kP1));
  c.p1_hi = _mm256_set1_epi64x(static_cast<long long>(kP1 >> 32));
  c.p2 = _mm256_set1_epi64x(static_cast<long long>(kP2));
  c.p2_hi = _mm256_set1_epi64x(static_cast<long long>(kP2 >> 32));
  c.p3 = _mm256_set1_epi64x(static_cast<long long>(kP3));
  c.p3_hi = _mm256_set1_epi64x(static_cast<long long>(kP3 >> 32));
  c.p4 = _mm256_set1_epi64x(static_cast<long long>(kP4));
  c.mask32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  c.pow2 = mod.mask != 0;
  c.mod_mask = _mm256_set1_epi64x(static_cast<long long>(mod.mask));
  c.magic = _mm256_set1_epi64x(static_cast<long long>(mod.magic));
  c.magic_hi = _mm256_set1_epi64x(static_cast<long long>(mod.magic >> 32));
  c.d = _mm256_set1_epi64x(static_cast<long long>(mod.d));
  c.one = _mm256_set1_epi64x(1);
  c.shift = static_cast<int>(mod.shift);
  return c;
}

/// FinishHash over 4 lanes: h0 is the seed-dependent prologue splat, k1
/// the per-value first rounds. Bitwise lane-equal to the scalar tail.
__attribute__((target("avx2"))) inline __m256i FinishHash4(
    __m256i h0, __m256i k1, const Avx2Ctx& c) {
  __m256i h = _mm256_xor_si256(h0, k1);
  // rotl(h, 27) · P1 + P4
  h = _mm256_or_si256(_mm256_slli_epi64(h, 27), _mm256_srli_epi64(h, 37));
  h = _mm256_add_epi64(MulLo64Const(h, c.p1, c.p1_hi), c.p4);
  // avalanche
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
  h = MulLo64Const(h, c.p2, c.p2_hi);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 29));
  h = MulLo64Const(h, c.p3, c.p3_hi);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 32));
  return h;
}

/// x % d' over 4 lanes (x & mask for powers of two, else the same
/// branch-free magic sequence as SupportModulus::Reduce).
__attribute__((target("avx2"))) inline __m256i Mod4(__m256i x,
                                                    const Avx2Ctx& c) {
  if (c.pow2) return _mm256_and_si256(x, c.mod_mask);
  __m256i q = MulHi64Const(x, c.magic, c.magic_hi, c.mask32);
  __m256i t = _mm256_add_epi64(
      _mm256_srli_epi64(_mm256_sub_epi64(x, q), 1), q);
  q = _mm256_srli_epi64(t, c.shift);
  // q · d with d < 2^32: two VPMULUDQ halves.
  __m256i prod = _mm256_add_epi64(
      _mm256_mul_epu32(q, c.d),
      _mm256_slli_epi64(_mm256_mul_epu32(_mm256_srli_epi64(q, 32), c.d),
                        32));
  return _mm256_sub_epi64(x, prod);
}

__attribute__((target("avx2"))) void AccumulateAvx2(
    const LdpReport* reports, size_t count, uint64_t value_lo,
    uint64_t value_hi, const SupportModulus& mod, uint64_t* counts) {
  const Avx2Ctx ctx = MakeAvx2Ctx(mod);
  alignas(32) uint64_t k1[kValueTile];
  for (size_t rlo = 0; rlo < count; rlo += kReportTile) {
    const size_t rhi = rlo + std::min(kReportTile, count - rlo);
    for (uint64_t vlo = value_lo; vlo < value_hi; vlo += kValueTile) {
      const uint64_t vhi =
          vlo + std::min<uint64_t>(kValueTile, value_hi - vlo);
      const size_t vn = vhi - vlo;
      for (size_t j = 0; j < vn; ++j) k1[j] = KeyRound(vlo + j);

      size_t j = 0;
      // 8 values per pass: two independent 4-lane chains hide the
      // multiply latency; per-value support counts accumulate in vector
      // registers across the whole report tile (≤ 2048 < 2^63, no
      // overflow) and flush once.
      for (; j + 8 <= vn; j += 8) {
        const __m256i k1a =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(k1 + j));
        const __m256i k1b =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(k1 + j + 4));
        __m256i acc_a = _mm256_setzero_si256();
        __m256i acc_b = _mm256_setzero_si256();
        for (size_t r = rlo; r < rhi; ++r) {
          const __m256i h0 = _mm256_set1_epi64x(
              static_cast<long long>(reports[r].seed + kSeedBias));
          const __m256i target = _mm256_set1_epi64x(
              static_cast<long long>(reports[r].value));
          const __m256i ma = Mod4(FinishHash4(h0, k1a, ctx), ctx);
          const __m256i mb = Mod4(FinishHash4(h0, k1b, ctx), ctx);
          // cmpeq lanes are 0 / −1: subtracting adds 0 / 1.
          acc_a = _mm256_sub_epi64(acc_a, _mm256_cmpeq_epi64(ma, target));
          acc_b = _mm256_sub_epi64(acc_b, _mm256_cmpeq_epi64(mb, target));
        }
        uint64_t* out = counts + (vlo - value_lo) + j;
        __m256i cur_a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out));
        __m256i cur_b =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + 4));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                            _mm256_add_epi64(cur_a, acc_a));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4),
                            _mm256_add_epi64(cur_b, acc_b));
      }
      // Scalar tail values (< 8): same math, bitwise identical.
      for (; j < vn; ++j) {
        uint64_t c = 0;
        for (size_t r = rlo; r < rhi; ++r) {
          const uint64_t h = FinishHash(reports[r].seed + kSeedBias, k1[j]);
          c += mod.Reduce(h) == reports[r].value;
        }
        counts[vlo - value_lo + j] += c;
      }
    }
  }
}

__attribute__((target("avx2"))) uint64_t CountAvx2(
    const LdpReport* reports, size_t count, uint64_t value,
    const SupportModulus& mod) {
  const Avx2Ctx ctx = MakeAvx2Ctx(mod);
  const uint64_t k1 = KeyRound(value);
  const __m256i k1v = _mm256_set1_epi64x(static_cast<long long>(k1));
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(kSeedBias));
  __m256i acc = _mm256_setzero_si256();
  size_t r = 0;
  // Reports are (seed, value) u32 pairs: each 64-bit lane of an unaligned
  // load is seed | value << 32.
  for (; r + 4 <= count; r += 4) {
    const __m256i rep = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(reports + r));
    const __m256i seeds = _mm256_and_si256(rep, ctx.mask32);
    const __m256i targets = _mm256_srli_epi64(rep, 32);
    const __m256i h0 = _mm256_add_epi64(seeds, bias);
    const __m256i m = Mod4(FinishHash4(h0, k1v, ctx), ctx);
    acc = _mm256_sub_epi64(acc, _mm256_cmpeq_epi64(m, targets));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t c = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; r < count; ++r) {
    const uint64_t h = FinishHash(reports[r].seed + kSeedBias, k1);
    c += mod.Reduce(h) == reports[r].value;
  }
  return c;
}

// ---------------------------------------------------------------------------
// AVX-512 backend: 8 × 64-bit lanes with the instructions AVX2 lacks —
// native 64-bit multiply (VPMULLQ, AVX-512DQ) and rotate (VPROLQ), plus
// compare-to-mask feeding a masked subtract for the accumulators. The
// whole avalanche is ~12 instructions per 8 pairs.
// ---------------------------------------------------------------------------

/// Vector constants for the 512-bit kernels.
struct Avx512Ctx {
  __m512i p1, p2, p3, p4;
  __m512i mask32;
  bool pow2;
  __m512i mod_mask;
  __m512i magic, magic_hi, d;
  int shift;
};

__attribute__((target("avx512f,avx512dq"))) Avx512Ctx MakeAvx512Ctx(
    const SupportModulus& mod) {
  Avx512Ctx c;
  c.p1 = _mm512_set1_epi64(static_cast<long long>(kP1));
  c.p2 = _mm512_set1_epi64(static_cast<long long>(kP2));
  c.p3 = _mm512_set1_epi64(static_cast<long long>(kP3));
  c.p4 = _mm512_set1_epi64(static_cast<long long>(kP4));
  c.mask32 = _mm512_set1_epi64(0xFFFFFFFFll);
  c.pow2 = mod.mask != 0;
  c.mod_mask = _mm512_set1_epi64(static_cast<long long>(mod.mask));
  c.magic = _mm512_set1_epi64(static_cast<long long>(mod.magic));
  c.magic_hi = _mm512_set1_epi64(static_cast<long long>(mod.magic >> 32));
  c.d = _mm512_set1_epi64(static_cast<long long>(mod.d));
  c.shift = static_cast<int>(mod.shift);
  return c;
}

__attribute__((target("avx512f,avx512dq"))) inline __m512i FinishHash8(
    __m512i h0, __m512i k1, const Avx512Ctx& c) {
  __m512i h = _mm512_xor_si512(h0, k1);
  h = _mm512_rol_epi64(h, 27);
  h = _mm512_add_epi64(_mm512_mullo_epi64(h, c.p1), c.p4);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 33));
  h = _mm512_mullo_epi64(h, c.p2);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 29));
  h = _mm512_mullo_epi64(h, c.p3);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 32));
  return h;
}

/// x % d' over 8 lanes. AVX-512 still has no 64-bit mulhi, so the magic
/// divide keeps the VPMULUDQ cross-term synthesis.
__attribute__((target("avx512f,avx512dq"))) inline __m512i Mod8(
    __m512i x, const Avx512Ctx& c) {
  if (c.pow2) return _mm512_and_si512(x, c.mod_mask);
  __m512i x_hi = _mm512_srli_epi64(x, 32);
  __m512i lolo = _mm512_mul_epu32(x, c.magic);
  __m512i hilo = _mm512_mul_epu32(x_hi, c.magic);
  __m512i lohi = _mm512_mul_epu32(x, c.magic_hi);
  __m512i hihi = _mm512_mul_epu32(x_hi, c.magic_hi);
  __m512i cross = _mm512_add_epi64(
      _mm512_add_epi64(_mm512_srli_epi64(lolo, 32),
                       _mm512_and_si512(hilo, c.mask32)),
      _mm512_and_si512(lohi, c.mask32));
  __m512i q = _mm512_add_epi64(
      _mm512_add_epi64(hihi, _mm512_srli_epi64(hilo, 32)),
      _mm512_add_epi64(_mm512_srli_epi64(lohi, 32),
                       _mm512_srli_epi64(cross, 32)));
  __m512i t = _mm512_add_epi64(
      _mm512_srli_epi64(_mm512_sub_epi64(x, q), 1), q);
  q = _mm512_srli_epi64(t, c.shift);
  return _mm512_sub_epi64(x, _mm512_mullo_epi64(q, c.d));
}

__attribute__((target("avx512f,avx512dq"))) void AccumulateAvx512(
    const LdpReport* reports, size_t count, uint64_t value_lo,
    uint64_t value_hi, const SupportModulus& mod, uint64_t* counts) {
  const Avx512Ctx ctx = MakeAvx512Ctx(mod);
  const __m512i neg1 = _mm512_set1_epi64(-1);
  alignas(64) uint64_t k1[kValueTile];
  for (size_t rlo = 0; rlo < count; rlo += kReportTile) {
    const size_t rhi = rlo + std::min(kReportTile, count - rlo);
    for (uint64_t vlo = value_lo; vlo < value_hi; vlo += kValueTile) {
      const uint64_t vhi =
          vlo + std::min<uint64_t>(kValueTile, value_hi - vlo);
      const size_t vn = vhi - vlo;
      for (size_t j = 0; j < vn; ++j) k1[j] = KeyRound(vlo + j);

      size_t j = 0;
      // 16 values per pass (two independent 8-lane chains); per-value
      // counts ride in vector accumulators across the report tile
      // (≤ 2048, no overflow) and flush once. acc − (−1) adds 1 in the
      // lanes the compare mask selects.
      for (; j + 16 <= vn; j += 16) {
        const __m512i k1a = _mm512_load_si512(k1 + j);
        const __m512i k1b = _mm512_load_si512(k1 + j + 8);
        __m512i acc_a = _mm512_setzero_si512();
        __m512i acc_b = _mm512_setzero_si512();
        for (size_t r = rlo; r < rhi; ++r) {
          const __m512i h0 = _mm512_set1_epi64(
              static_cast<long long>(reports[r].seed + kSeedBias));
          const __m512i target = _mm512_set1_epi64(
              static_cast<long long>(reports[r].value));
          const __mmask8 ma = _mm512_cmpeq_epu64_mask(
              Mod8(FinishHash8(h0, k1a, ctx), ctx), target);
          const __mmask8 mb = _mm512_cmpeq_epu64_mask(
              Mod8(FinishHash8(h0, k1b, ctx), ctx), target);
          acc_a = _mm512_mask_sub_epi64(acc_a, ma, acc_a, neg1);
          acc_b = _mm512_mask_sub_epi64(acc_b, mb, acc_b, neg1);
        }
        uint64_t* out = counts + (vlo - value_lo) + j;
        _mm512_storeu_si512(
            out, _mm512_add_epi64(_mm512_loadu_si512(out), acc_a));
        _mm512_storeu_si512(
            out + 8, _mm512_add_epi64(_mm512_loadu_si512(out + 8), acc_b));
      }
      for (; j + 8 <= vn; j += 8) {
        const __m512i k1a = _mm512_load_si512(k1 + j);
        __m512i acc = _mm512_setzero_si512();
        for (size_t r = rlo; r < rhi; ++r) {
          const __m512i h0 = _mm512_set1_epi64(
              static_cast<long long>(reports[r].seed + kSeedBias));
          const __m512i target = _mm512_set1_epi64(
              static_cast<long long>(reports[r].value));
          const __mmask8 m = _mm512_cmpeq_epu64_mask(
              Mod8(FinishHash8(h0, k1a, ctx), ctx), target);
          acc = _mm512_mask_sub_epi64(acc, m, acc, neg1);
        }
        uint64_t* out = counts + (vlo - value_lo) + j;
        _mm512_storeu_si512(
            out, _mm512_add_epi64(_mm512_loadu_si512(out), acc));
      }
      // Scalar tail values (< 8): same math, bitwise identical.
      for (; j < vn; ++j) {
        uint64_t c = 0;
        for (size_t r = rlo; r < rhi; ++r) {
          const uint64_t h = FinishHash(reports[r].seed + kSeedBias, k1[j]);
          c += mod.Reduce(h) == reports[r].value;
        }
        counts[vlo - value_lo + j] += c;
      }
    }
  }
}

__attribute__((target("avx512f,avx512dq"))) uint64_t CountAvx512(
    const LdpReport* reports, size_t count, uint64_t value,
    const SupportModulus& mod) {
  const Avx512Ctx ctx = MakeAvx512Ctx(mod);
  const __m512i neg1 = _mm512_set1_epi64(-1);
  const uint64_t k1 = KeyRound(value);
  const __m512i k1v = _mm512_set1_epi64(static_cast<long long>(k1));
  const __m512i bias = _mm512_set1_epi64(static_cast<long long>(kSeedBias));
  __m512i acc = _mm512_setzero_si512();
  size_t r = 0;
  for (; r + 8 <= count; r += 8) {
    const __m512i rep = _mm512_loadu_si512(reports + r);
    const __m512i seeds = _mm512_and_si512(rep, ctx.mask32);
    const __m512i targets = _mm512_srli_epi64(rep, 32);
    const __m512i h0 = _mm512_add_epi64(seeds, bias);
    const __mmask8 m = _mm512_cmpeq_epu64_mask(
        Mod8(FinishHash8(h0, k1v, ctx), ctx), targets);
    acc = _mm512_mask_sub_epi64(acc, m, acc, neg1);
  }
  uint64_t c = _mm512_reduce_add_epi64(acc);
  for (; r < count; ++r) {
    const uint64_t h = FinishHash(reports[r].seed + kSeedBias, k1);
    c += mod.Reduce(h) == reports[r].value;
  }
  return c;
}

#else  // !SHUFFLEDP_SUPPORT_AVX2_COMPILED

void AccumulateAvx2(const LdpReport*, size_t, uint64_t, uint64_t,
                    const SupportModulus&, uint64_t*) {
  assert(false && "AVX2 support backend selected on a host without AVX2");
}

uint64_t CountAvx2(const LdpReport*, size_t, uint64_t,
                   const SupportModulus&) {
  assert(false && "AVX2 support backend selected on a host without AVX2");
  return 0;
}

void AccumulateAvx512(const LdpReport*, size_t, uint64_t, uint64_t,
                      const SupportModulus&, uint64_t*) {
  assert(false && "AVX-512 support backend selected on a non-x86 host");
}

uint64_t CountAvx512(const LdpReport*, size_t, uint64_t,
                     const SupportModulus&) {
  assert(false && "AVX-512 support backend selected on a non-x86 host");
  return 0;
}

#endif  // SHUFFLEDP_SUPPORT_AVX2_COMPILED

}  // namespace

SupportModulus::SupportModulus(uint32_t d_in) {
  assert(d_in >= 2);
  d = d_in;
  shift = 63u - static_cast<unsigned>(__builtin_clzll(d));
  if ((d & (d - 1)) == 0) {
    mask = d - 1;
    return;
  }
  // Branch-free round-up magic (libdivide's u64 scheme): the true
  // multiplier M = 2·⌊2^(64+s)/d⌋ + 1 (+1 when 2·rem ≥ d) lives in
  // (2^64, 2^65); `magic` stores M − 2^64 and Reduce() recovers the
  // missing high bit with the ((x − q) >> 1) + q step.
  const unsigned __int128 num = static_cast<unsigned __int128>(1)
                                << (64 + shift);
  const uint64_t m0 = static_cast<uint64_t>(num / d);
  const uint64_t rem = static_cast<uint64_t>(num % d);
  magic = 2 * m0 + 1 + (2 * rem >= d ? 1 : 0);
}

SupportBackend BestSupportBackend() {
  if (const char* v = std::getenv("SHUFFLEDP_SUPPORT_BACKEND")) {
    if (std::strcmp(v, "scalar") == 0) return SupportBackend::kScalar;
    if (std::strcmp(v, "portable") == 0) return SupportBackend::kPortable;
    if (std::strcmp(v, "avx2") == 0) {
      return CpuHasAvx2() ? SupportBackend::kAvx2
                          : SupportBackend::kPortable;
    }
    if (std::strcmp(v, "avx512") == 0) {
      if (CpuHasAvx512()) return SupportBackend::kAvx512;
      return CpuHasAvx2() ? SupportBackend::kAvx2
                          : SupportBackend::kPortable;
    }
    // Unrecognized values fall through to auto-detection.
  }
  if (ForcePortable()) return SupportBackend::kPortable;
  if (CpuHasAvx512()) return SupportBackend::kAvx512;
  return CpuHasAvx2() ? SupportBackend::kAvx2 : SupportBackend::kPortable;
}

SupportBackend ActiveSupportBackend() { return BackendOverride(); }

SupportBackend SetSupportBackend(SupportBackend backend) {
  if (backend == SupportBackend::kAvx512 && !CpuHasAvx512()) {
    backend = SupportBackend::kAvx2;
  }
  if (backend == SupportBackend::kAvx2 && !CpuHasAvx2()) {
    backend = SupportBackend::kPortable;
  }
  BackendOverride() = backend;
  return backend;
}

const char* SupportBackendName(SupportBackend backend) {
  switch (backend) {
    case SupportBackend::kScalar:
      return "scalar";
    case SupportBackend::kPortable:
      return "portable";
    case SupportBackend::kAvx2:
      return "avx2";
    case SupportBackend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void AccumulateLocalHashSupports(const LdpReport* reports, size_t count,
                                 uint64_t value_lo, uint64_t value_hi,
                                 uint32_t d_prime, uint64_t* counts) {
  if (count == 0 || value_lo >= value_hi) return;
  const SupportModulus mod(d_prime);
  if (ActiveSupportBackend() == SupportBackend::kAvx512) {
    AccumulateAvx512(reports, count, value_lo, value_hi, mod, counts);
  } else if (ActiveSupportBackend() == SupportBackend::kAvx2) {
    AccumulateAvx2(reports, count, value_lo, value_hi, mod, counts);
  } else if (mod.mask != 0) {
    AccumulatePortable<true>(reports, count, value_lo, value_hi, mod,
                             counts);
  } else {
    AccumulatePortable<false>(reports, count, value_lo, value_hi, mod,
                              counts);
  }
}

uint64_t CountLocalHashSupports(const LdpReport* reports, size_t count,
                                uint64_t value, uint32_t d_prime) {
  if (count == 0) return 0;
  const SupportModulus mod(d_prime);
  if (ActiveSupportBackend() == SupportBackend::kAvx512) {
    return CountAvx512(reports, count, value, mod);
  }
  if (ActiveSupportBackend() == SupportBackend::kAvx2) {
    return CountAvx2(reports, count, value, mod);
  }
  return mod.mask != 0 ? CountPortable<true>(reports, count, value, mod)
                       : CountPortable<false>(reports, count, value, mod);
}

}  // namespace ldp
}  // namespace shuffledp

// Bulk support-evaluation kernels for the local-hashing oracles.
//
// The server-side aggregation cost of OLH/SOLH is O(batch × d) evaluations
// of `XxHash64(v, seed) % d' == report.value` — one short-key hash per
// (report, domain value) pair (paper §IV-B fixes the per-pair work to
// exactly this). The kernels here evaluate that predicate in bulk:
//
//  * the generic length-dispatching XxHash64 collapses to a straight-line
//    ~dozen-op sequence for an 8-byte key (util/hash.h XxHash64Key8);
//  * the per-value first hash round `rotl(v · P2, 31) · P1` is
//    seed-independent, so a value tile hoists it out of the report loop;
//  * `% d'` is computed exactly (bitwise identical to the `%` operator —
//    the hash mapping is protocol semantics shared with the client's
//    Encode, so no range-map substitution is allowed) via a power-of-two
//    mask or a precomputed magic-multiply divider (SupportModulus);
//  * reports × values are tiled so each pass streams cache-resident
//    blocks, with three backends behind runtime dispatch: a portable
//    4-value-unrolled scalar loop, an AVX2 backend running 4 64-bit
//    hash lanes per vector (VPMULUDQ-synthesized 64-bit multiplies),
//    and an AVX-512 backend running 8 lanes with native VPMULLQ/VPROLQ.
//
// Both backends are bitwise identical to the per-pair scalar path; the
// cross-check matrix in tests/ldp/support_kernel_test.cpp pins it.
// Dispatch mirrors the Montgomery batch kernels (crypto/montgomery.h):
// auto-detect once, `SHUFFLEDP_FORCE_PORTABLE=1` pins portable,
// `SHUFFLEDP_SUPPORT_BACKEND=scalar|portable|avx2` overrides explicitly,
// and SetSupportBackend() is the per-process programmatic switch.

#ifndef SHUFFLEDP_LDP_SUPPORT_KERNELS_H_
#define SHUFFLEDP_LDP_SUPPORT_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "ldp/frequency_oracle.h"

namespace shuffledp {
namespace ldp {

/// Which implementation the bulk support evaluations run on.
enum class SupportBackend {
  kScalar,    ///< per-pair generic-hash reference loop (cross-check baseline)
  kPortable,  ///< straight-line 8-byte-key hash, 4-value unroll, magic mod
  kAvx2,      ///< 4 × 64-bit hash lanes per vector (x86-64 AVX2)
  kAvx512,    ///< 8 × 64-bit lanes, native VPMULLQ/VPROLQ (AVX-512F+DQ)
};

/// Best backend the host supports. Honors SHUFFLEDP_SUPPORT_BACKEND
/// (scalar|portable|avx2|avx512) first, then SHUFFLEDP_FORCE_PORTABLE=1.
SupportBackend BestSupportBackend();

/// Backend the kernels currently use (defaults to BestSupportBackend()).
SupportBackend ActiveSupportBackend();

/// Overrides the backend (tests/benchmarks). A SIMD request on a host
/// without that instruction set falls down the chain
/// (avx512 → avx2 → portable). Returns the backend actually installed.
SupportBackend SetSupportBackend(SupportBackend backend);

const char* SupportBackendName(SupportBackend backend);

/// Exact `x % d` by precomputed multiply-shift (Granlund–Montgomery
/// branch-free round-up magic, the libdivide u64 scheme): one mulhi, two
/// shifts, one mullo, one subtract — no hardware divide. `Reduce(x)` is
/// bitwise equal to `x % d` for every uint64 x (pinned exhaustively-ish
/// in tests); powers of two reduce with a mask. d must be >= 2.
struct SupportModulus {
  explicit SupportModulus(uint32_t d);

  uint64_t Reduce(uint64_t x) const {
    if (mask != 0) return x & mask;
    uint64_t q = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(x) * magic) >> 64);
    uint64_t t = ((x - q) >> 1) + q;
    return x - (t >> shift) * d;
  }

  uint64_t d = 0;
  uint64_t magic = 0;   ///< branch-free magic multiplier (non-pow2 only)
  unsigned shift = 0;   ///< floor(log2 d)
  uint64_t mask = 0;    ///< d − 1 when d is a power of two, else 0
};

/// Bulk OLH/SOLH support aggregation:
///   counts[v − value_lo] += |{ i : XxHash64(v, reports[i].seed) % d_prime
///                                  == reports[i].value }|
/// for every v in [value_lo, value_hi). Counts are added, never assigned.
/// Runs on ActiveSupportBackend() (kScalar behaves like kPortable here —
/// the reference loop lives in ScalarFrequencyOracle::AccumulateSupports).
void AccumulateLocalHashSupports(const LdpReport* reports, size_t count,
                                 uint64_t value_lo, uint64_t value_hi,
                                 uint32_t d_prime, uint64_t* counts);

/// Bulk single-value form: how many of `reports` support `value`?
/// Lane-parallel across reports (the attack-matrix / sparse-eval shape).
uint64_t CountLocalHashSupports(const LdpReport* reports, size_t count,
                                uint64_t value, uint32_t d_prime);

}  // namespace ldp
}  // namespace shuffledp

#endif  // SHUFFLEDP_LDP_SUPPORT_KERNELS_H_

#include "ldp/unary.h"

#include <cassert>
#include <cmath>

namespace shuffledp {
namespace ldp {

UnaryEncoding::UnaryEncoding(double eps_l, uint64_t d, Semantics semantics)
    : eps_l_(eps_l), d_(d), semantics_(semantics) {
  assert(eps_l > 0.0);
  assert(d >= 2);
  double per_bit =
      semantics == Semantics::kReplacement ? eps_l / 2.0 : eps_l;
  double e = std::exp(per_bit);
  p_ = e / (e + 1.0);
}

std::vector<uint8_t> UnaryEncoding::Encode(uint64_t v, Rng* rng) const {
  assert(v < d_);
  std::vector<uint8_t> bits(d_, 0);
  const double q = 1.0 - p_;
  // Perturb the one-hot encoding: position v keeps its 1 w.p. p; every
  // other position flips on w.p. q. Sampling flip positions via geometric
  // skipping keeps this O(d q) instead of O(d) RNG draws.
  bits[v] = rng->Bernoulli(p_) ? 1 : 0;
  if (q > 0.0) {
    uint64_t pos = rng->Geometric(q);
    while (pos < d_) {
      if (pos != v) bits[pos] = 1;
      pos += 1 + rng->Geometric(q);
    }
  }
  return bits;
}

Status UnaryEncoding::Accumulate(const std::vector<uint8_t>& report,
                                 std::vector<uint64_t>* column_counts) const {
  if (report.size() != d_) {
    return Status::InvalidArgument("unary report has wrong length");
  }
  if (column_counts->size() != d_) {
    return Status::InvalidArgument("column counter has wrong length");
  }
  for (uint64_t i = 0; i < d_; ++i) {
    (*column_counts)[i] += report[i];
  }
  return Status::OK();
}

std::vector<double> UnaryEncoding::Estimate(
    const std::vector<uint64_t>& column_counts, uint64_t n) const {
  assert(column_counts.size() == d_);
  const double q = 1.0 - p_;
  std::vector<double> est(d_);
  const double nd = static_cast<double>(n);
  for (uint64_t v = 0; v < d_; ++v) {
    est[v] = (static_cast<double>(column_counts[v]) / nd - q) / (p_ - q);
  }
  return est;
}

}  // namespace ldp
}  // namespace shuffledp

// Unary-encoding (one-hot) frequency oracles.
//
// Two privacy semantics, matching the paper §IV-B1 and §IV-B4:
//  * kReplacement — basic RAPPOR ("RAP"): two bits differ between any two
//    encodings, so each bit is perturbed with budget ε/2.
//  * kRemoval — the removal-LDP variant of [31] ("RAP_R"): neighbouring
//    datasets replace a value with the empty input, only one bit differs,
//    each bit gets the full ε. Any ε-removal mechanism is 2ε-replacement.

#ifndef SHUFFLEDP_LDP_UNARY_H_
#define SHUFFLEDP_LDP_UNARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "util/rng.h"
#include "util/status.h"

namespace shuffledp {
namespace ldp {

/// Symmetric unary encoding with per-bit randomized response.
class UnaryEncoding {
 public:
  enum class Semantics {
    kReplacement,  ///< RAPPOR: per-bit budget ε/2
    kRemoval,      ///< RAP_R:  per-bit budget ε
  };

  /// Pre: eps_l > 0, d >= 2.
  UnaryEncoding(double eps_l, uint64_t d, Semantics semantics);

  std::string Name() const {
    return semantics_ == Semantics::kReplacement ? "RAP" : "RAP_R";
  }
  uint64_t domain_size() const { return d_; }
  double epsilon_local() const { return eps_l_; }
  Semantics semantics() const { return semantics_; }

  /// Probability a true 1-bit stays 1.
  double p() const { return p_; }
  /// Probability a true 0-bit flips to 1.
  double q() const { return 1.0 - p_; }

  /// Encodes `v` into a perturbed d-bit vector.
  std::vector<uint8_t> Encode(uint64_t v, Rng* rng) const;

  /// Adds a report's bits into per-column counters.
  Status Accumulate(const std::vector<uint8_t>& report,
                    std::vector<uint64_t>* column_counts) const;

  /// Unbiased estimate from column counts over n users:
  /// f~_v = (count_v / n − q) / (p − q).
  std::vector<double> Estimate(const std::vector<uint64_t>& column_counts,
                               uint64_t n) const;

  /// Report size on the wire (d bits, rounded up to bytes).
  size_t ReportBytes() const { return (d_ + 7) / 8; }

 private:
  double eps_l_;
  uint64_t d_;
  Semantics semantics_;
  double p_;
};

}  // namespace ldp
}  // namespace shuffledp

#endif  // SHUFFLEDP_LDP_UNARY_H_

#include "ldp/wire.h"

namespace shuffledp {
namespace ldp {

size_t WireReportBytes(const ScalarFrequencyOracle& oracle) {
  return (oracle.PackedBits() + 7) / 8;
}

Bytes SerializeOrdinals(const ScalarFrequencyOracle& oracle,
                        const std::vector<uint64_t>& ordinals) {
  const size_t width = WireReportBytes(oracle);
  ByteWriter w(ordinals.size() * width + 10);
  w.PutVarint(ordinals.size());
  for (uint64_t ordinal : ordinals) {
    for (size_t b = width; b-- > 0;) {
      w.PutU8(static_cast<uint8_t>(ordinal >> (8 * b)));
    }
  }
  return w.Release();
}

Result<std::vector<uint64_t>> ParseOrdinals(
    const ScalarFrequencyOracle& oracle, const Bytes& wire) {
  return ParseOrdinalsValidated(oracle, wire, nullptr);
}

Result<std::vector<uint64_t>> ParseOrdinalsValidated(
    const ScalarFrequencyOracle& oracle, const Bytes& wire,
    const std::function<Status(uint64_t ordinal)>& check) {
  return ParseOrdinalsValidated(oracle, wire.data(), wire.size(), check);
}

Result<std::vector<uint64_t>> ParseOrdinalsValidated(
    const ScalarFrequencyOracle& oracle, const uint8_t* data, size_t len,
    const std::function<Status(uint64_t ordinal)>& check) {
  const size_t width = WireReportBytes(oracle);
  const unsigned bits = oracle.PackedBits();
  ByteReader reader(data, len);
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  // Divide instead of multiplying: a hostile count (e.g. 2^61 with an
  // 8-byte width) would overflow count * width to a small value, slip
  // past the length check, and drive a huge reserve() below.
  if (count > reader.Remaining() / width ||
      count * width != reader.Remaining()) {
    return Status::DataLoss("report payload has wrong length");
  }
  std::vector<uint64_t> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t ordinal = 0;
    for (size_t b = 0; b < width; ++b) {
      SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t byte, reader.GetU8());
      ordinal = (ordinal << 8) | byte;
    }
    // The width rounds PackedBits up to whole bytes; bits smuggled into
    // the rounding slack are rejected, padding-region ordinals are not.
    if (bits < 64 && ordinal >= (uint64_t{1} << bits)) {
      return Status::DataLoss("ordinal exceeds the packed report space");
    }
    if (check) {
      SHUFFLEDP_RETURN_NOT_OK(check(ordinal));
    }
    out.push_back(ordinal);
  }
  return out;
}

Bytes SerializeReports(const ScalarFrequencyOracle& oracle,
                       const std::vector<LdpReport>& reports) {
  std::vector<uint64_t> ordinals;
  ordinals.reserve(reports.size());
  for (const LdpReport& r : reports) ordinals.push_back(oracle.PackOrdinal(r));
  return SerializeOrdinals(oracle, ordinals);
}

Result<std::vector<LdpReport>> ParseReports(
    const ScalarFrequencyOracle& oracle, const Bytes& wire) {
  SHUFFLEDP_ASSIGN_OR_RETURN(std::vector<uint64_t> ordinals,
                             ParseOrdinals(oracle, wire));
  std::vector<LdpReport> out;
  out.reserve(ordinals.size());
  for (uint64_t ordinal : ordinals) {
    SHUFFLEDP_ASSIGN_OR_RETURN(LdpReport rep, oracle.UnpackOrdinal(ordinal));
    SHUFFLEDP_RETURN_NOT_OK(oracle.ValidateReport(rep));
    out.push_back(rep);
  }
  return out;
}

Bytes PackUnaryBits(const std::vector<uint8_t>& bits) {
  Bytes out((bits.size() + 7) / 8, 0);
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  return out;
}

Result<std::vector<uint8_t>> UnpackUnaryBits(const Bytes& packed,
                                             uint64_t d) {
  if (packed.size() != (d + 7) / 8) {
    return Status::DataLoss("unary payload has wrong length");
  }
  // Padding bits beyond d must be zero (reject smuggled data).
  for (uint64_t i = d; i < packed.size() * 8; ++i) {
    if (packed[i / 8] & (1u << (i % 8))) {
      return Status::DataLoss("unary payload has nonzero padding");
    }
  }
  std::vector<uint8_t> bits(d);
  for (uint64_t i = 0; i < d; ++i) {
    bits[i] = (packed[i / 8] >> (i % 8)) & 1;
  }
  return bits;
}

}  // namespace ldp
}  // namespace shuffledp

// Wire formats for LDP reports.
//
// The communication numbers in Table III and §VII-B rest on concrete
// encodings: scalar reports ship as fixed-width packed ordinals
// (ceil(B/8) bytes each — 8 B for SOLH with 32-bit seeds), unary reports
// as bit-packed vectors (d/8 bytes — the ~5 KB per Kosarak report the
// paper contrasts against). These helpers are the single source of truth
// for those sizes and are exercised by the protocol tests.

#ifndef SHUFFLEDP_LDP_WIRE_H_
#define SHUFFLEDP_LDP_WIRE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {
namespace ldp {

/// Bytes per serialized scalar report for `oracle`: ceil(PackedBits/8).
size_t WireReportBytes(const ScalarFrequencyOracle& oracle);

/// Serializes reports as fixed-width big-endian packed ordinals,
/// prefixed with a varint count.
Bytes SerializeReports(const ScalarFrequencyOracle& oracle,
                       const std::vector<LdpReport>& reports);

/// Parses a SerializeReports payload; every report is validated.
Result<std::vector<LdpReport>> ParseReports(
    const ScalarFrequencyOracle& oracle, const Bytes& wire);

/// Serializes raw ordinals in [0, 2^PackedBits) with the exact layout of
/// SerializeReports (varint count + fixed-width big-endian values). This
/// is the batch payload of the collection transport (service/transport.h):
/// unlike SerializeReports it admits padding-region ordinals, which the
/// endpoint must accept — PEOS fake blankets are uniform over the padded
/// ordinal space, and the server drops padding decodes as invalid rows
/// rather than rejecting the batch.
Bytes SerializeOrdinals(const ScalarFrequencyOracle& oracle,
                        const std::vector<uint64_t>& ordinals);

/// Parses a SerializeOrdinals payload. Length and range (< 2^PackedBits)
/// are validated; report validity is not — decode each ordinal with
/// `oracle.UnpackOrdinal` and drop padding hits.
Result<std::vector<uint64_t>> ParseOrdinals(
    const ScalarFrequencyOracle& oracle, const Bytes& wire);

/// ParseOrdinals with a caller-supplied per-ordinal admission check run
/// inline during the decode scan (the partitioned collection endpoint
/// rejects ordinals another partition owns this way — one pass instead
/// of parse-then-rescan). A non-OK `check` fails the whole parse.
Result<std::vector<uint64_t>> ParseOrdinalsValidated(
    const ScalarFrequencyOracle& oracle, const Bytes& wire,
    const std::function<Status(uint64_t ordinal)>& check);

/// Same, over a raw byte range — for payloads where the ordinal block
/// follows a caller-parsed prefix (the transport's indexed batch frames)
/// and a subrange copy would be waste.
Result<std::vector<uint64_t>> ParseOrdinalsValidated(
    const ScalarFrequencyOracle& oracle, const uint8_t* data, size_t len,
    const std::function<Status(uint64_t ordinal)>& check);

/// Packs a 0/1 unary report into bits (LSB-first within each byte).
Bytes PackUnaryBits(const std::vector<uint8_t>& bits);

/// Inverse of PackUnaryBits for a d-bit report.
Result<std::vector<uint8_t>> UnpackUnaryBits(const Bytes& packed,
                                             uint64_t d);

}  // namespace ldp
}  // namespace shuffledp

#endif  // SHUFFLEDP_LDP_WIRE_H_

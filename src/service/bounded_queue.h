// Bounded MPMC queue — the backpressure primitive of the streaming
// collection service.
//
// Producers (report ingestion threads) block in Push() when `capacity`
// items are already buffered, which throttles upstream generation to the
// rate the server-side workers can sustain; consumers block in Pop()
// until an item arrives or the queue is closed and drained. Close() wakes
// everyone: pending Push() calls fail (the round is over) and Pop()
// returns false once the buffer is empty.

#ifndef SHUFFLEDP_SERVICE_BOUNDED_QUEUE_H_
#define SHUFFLEDP_SERVICE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace shuffledp {
namespace service {

/// Fixed-capacity multi-producer/multi-consumer queue with blocking
/// push/pop and close semantics. Thread-safe; not copyable.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full; returns false (dropping `item`) if
  /// the queue was closed before space became available.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) ++producer_waits_;
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    high_water_ = items_.size() > high_water_ ? items_.size() : high_water_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// Returns false only in the latter case.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Closes the queue: future Push() calls fail, Pop() drains what is
  /// buffered then returns false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Reopens a drained queue for the next collection round.
  void Reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
  }

  /// Restarts the high-water tracking (per-round stats; producer_waits
  /// is cumulative and delta-corrected by the caller instead).
  void ResetHighWaterMark() {
    std::lock_guard<std::mutex> lock(mu_);
    high_water_ = items_.size();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Number of Push() calls that had to wait for space (backpressure
  /// events) since construction.
  uint64_t producer_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return producer_waits_;
  }

  /// Largest buffered depth observed.
  size_t high_water_mark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  uint64_t producer_waits_ = 0;
  size_t high_water_ = 0;
};

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_BOUNDED_QUEUE_H_

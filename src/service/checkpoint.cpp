#include "service/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/bytes.h"
#include "util/hash.h"

namespace shuffledp {
namespace service {

namespace {

constexpr size_t kHeaderBytes = 16;

Bytes SerializeState(const CheckpointState& state) {
  ByteWriter w(64 + state.supports.size() * 4 +
               state.dummies_remaining.size() * 20);
  w.PutU64(state.round_id);
  w.PutVarint(state.batches_consumed);
  w.PutVarint(state.rows_seen);
  w.PutVarint(state.reports_decoded);
  w.PutVarint(state.reports_invalid);
  w.PutVarint(state.dummies_recognized);
  w.PutVarint(state.dummies_expected);
  w.PutVarint(state.supports.size());
  for (uint64_t s : state.supports) w.PutVarint(s);
  w.PutVarint(state.dummies_remaining.size());
  for (const auto& [key, count] : state.dummies_remaining) {
    w.PutU64(key.first);
    w.PutU64(key.second);
    w.PutVarint(count);
  }
  return w.Release();
}

Result<CheckpointState> DeserializeState(const Bytes& payload) {
  ByteReader r(payload);
  CheckpointState state;
  SHUFFLEDP_ASSIGN_OR_RETURN(state.round_id, r.GetU64());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.batches_consumed, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.rows_seen, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.reports_decoded, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.reports_invalid, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.dummies_recognized, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.dummies_expected, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t d, r.GetVarint());
  // Each support needs at least one payload byte; a hostile length field
  // cannot drive the reserve below past the file size.
  if (d > r.Remaining()) {
    return Status::DataLoss("checkpoint supports length exceeds payload");
  }
  state.supports.reserve(d);
  for (uint64_t i = 0; i < d; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t s, r.GetVarint());
    state.supports.push_back(s);
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t n_dummies, r.GetVarint());
  if (n_dummies > r.Remaining() / 17) {  // 8 + 8 + >=1 bytes per entry
    return Status::DataLoss("checkpoint dummy count exceeds payload");
  }
  for (uint64_t i = 0; i < n_dummies; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t packed, r.GetU64());
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t tag, r.GetU64());
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
    state.dummies_remaining[{packed, tag}] = count;
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("checkpoint payload has trailing bytes");
  }
  return state;
}

}  // namespace

Status WriteCheckpoint(const std::string& path,
                       const CheckpointState& state) {
  if (path.empty()) {
    return Status::InvalidArgument("checkpoint path is empty");
  }
  Bytes payload = SerializeState(state);

  ByteWriter file(kHeaderBytes + payload.size());
  file.PutBytes(kCheckpointMagic, sizeof(kCheckpointMagic));
  file.PutU8(kCheckpointVersion);
  file.PutU8(0);
  file.PutU8(0);
  file.PutU8(0);
  file.PutU32(static_cast<uint32_t>(payload.size()));
  file.PutU32(Crc32(payload.data(), payload.size()));
  file.PutBytes(payload);
  const Bytes& bytes = file.data();

  // Stage + fsync + rename: a crash at any point leaves either the old
  // checkpoint or the new one at `path`, never a torn file.
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("checkpoint: cannot open " + tmp + ": " +
                            std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t wrote = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      Status st = Status::Internal(std::string("checkpoint write failed: ") +
                                   std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    off += static_cast<size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    Status st = Status::Internal(std::string("checkpoint fsync failed: ") +
                                 std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::Internal(std::string("checkpoint rename failed: ") +
                                 std::strerror(errno));
    ::unlink(tmp.c_str());
    return st;
  }
  return Status::OK();
}

Result<CheckpointState> ReadCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint at " + path);
  }
  Bytes bytes;
  uint8_t buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);

  if (bytes.size() < kHeaderBytes) {
    return Status::DataLoss("checkpoint file shorter than its header");
  }
  ByteReader r(bytes);
  SHUFFLEDP_ASSIGN_OR_RETURN(Bytes magic, r.GetBytes(4));
  if (std::memcmp(magic.data(), kCheckpointMagic, 4) != 0) {
    return Status::DataLoss("checkpoint magic mismatch");
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kCheckpointVersion) {
    return Status::DataLoss("unsupported checkpoint version " +
                            std::to_string(version));
  }
  for (int i = 0; i < 3; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t reserved, r.GetU8());
    if (reserved != 0) {
      return Status::DataLoss("checkpoint reserved bytes are nonzero");
    }
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(uint32_t payload_len, r.GetU32());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint32_t expected_crc, r.GetU32());
  if (payload_len != r.Remaining()) {
    return Status::DataLoss("checkpoint length field does not match file");
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(Bytes payload, r.GetBytes(payload_len));
  if (Crc32(payload.data(), payload.size()) != expected_crc) {
    return Status::DataLoss("checkpoint CRC mismatch (torn or corrupt)");
  }
  return DeserializeState(payload);
}

void RemoveCheckpoint(const std::string& path) {
  if (!path.empty()) std::remove(path.c_str());
}

}  // namespace service
}  // namespace shuffledp

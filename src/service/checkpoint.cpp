#include "service/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "service/wal.h"
#include "util/bytes.h"
#include "util/hash.h"

namespace shuffledp {
namespace service {

namespace {

constexpr size_t kHeaderBytes = 16;

}  // namespace

Bytes SerializeCheckpointPayload(const CheckpointState& state) {
  ByteWriter w(64 + state.supports.size() * 4 +
               state.dummies_remaining.size() * 20);
  w.PutU64(state.round_id);
  w.PutVarint(state.partition_index);
  w.PutVarint(state.partition_count);
  w.PutVarint(state.slice_lo);
  w.PutVarint(state.batches_consumed);
  w.PutVarint(state.rows_seen);
  w.PutVarint(state.reports_decoded);
  w.PutVarint(state.reports_invalid);
  w.PutVarint(state.dummies_recognized);
  w.PutVarint(state.dummies_expected);
  w.PutVarint(state.supports.size());
  for (uint64_t s : state.supports) w.PutVarint(s);
  w.PutVarint(state.dummies_remaining.size());
  for (const auto& [key, count] : state.dummies_remaining) {
    w.PutU64(key.first);
    w.PutU64(key.second);
    w.PutVarint(count);
  }
  return w.Release();
}

Result<CheckpointState> ParseCheckpointPayload(const Bytes& payload) {
  ByteReader r(payload);
  CheckpointState state;
  SHUFFLEDP_ASSIGN_OR_RETURN(state.round_id, r.GetU64());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t part_index, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t part_count, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.slice_lo, r.GetVarint());
  if (part_count == 0 || part_count > 0xFFFF || part_index >= part_count) {
    return Status::DataLoss("checkpoint partition fields out of range");
  }
  state.partition_index = static_cast<uint32_t>(part_index);
  state.partition_count = static_cast<uint32_t>(part_count);
  SHUFFLEDP_ASSIGN_OR_RETURN(state.batches_consumed, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.rows_seen, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.reports_decoded, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.reports_invalid, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.dummies_recognized, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(state.dummies_expected, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t d, r.GetVarint());
  // Each support needs at least one payload byte; a hostile length field
  // cannot drive the reserve below past the file size.
  if (d > r.Remaining()) {
    return Status::DataLoss("checkpoint supports length exceeds payload");
  }
  state.supports.reserve(d);
  for (uint64_t i = 0; i < d; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t s, r.GetVarint());
    state.supports.push_back(s);
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t n_dummies, r.GetVarint());
  if (n_dummies > r.Remaining() / 17) {  // 8 + 8 + >=1 bytes per entry
    return Status::DataLoss("checkpoint dummy count exceeds payload");
  }
  for (uint64_t i = 0; i < n_dummies; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t packed, r.GetU64());
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t tag, r.GetU64());
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
    state.dummies_remaining[{packed, tag}] = count;
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("checkpoint payload has trailing bytes");
  }
  return state;
}

Bytes SerializeJournalPayload(const RoundJournal& journal) {
  ByteWriter w(64 + journal.supports.size() * 4);
  w.PutU64(journal.round_id);
  w.PutVarint(journal.partition_index);
  w.PutVarint(journal.partition_count);
  w.PutVarint(journal.slice_lo);
  w.PutVarint(journal.n);
  w.PutVarint(journal.n_fake);
  w.PutU8(journal.calibration);
  w.PutVarint(journal.reports_decoded);
  w.PutVarint(journal.reports_invalid);
  w.PutVarint(journal.dummies_recognized);
  w.PutVarint(journal.dummies_expected);
  w.PutVarint(journal.supports.size());
  for (uint64_t s : journal.supports) w.PutVarint(s);
  return w.Release();
}

Result<RoundJournal> ParseJournalPayload(const Bytes& payload) {
  ByteReader r(payload);
  RoundJournal journal;
  SHUFFLEDP_ASSIGN_OR_RETURN(journal.round_id, r.GetU64());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t part_index, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t part_count, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(journal.slice_lo, r.GetVarint());
  if (part_count == 0 || part_count > 0xFFFF || part_index >= part_count) {
    return Status::DataLoss("journal partition fields out of range");
  }
  journal.partition_index = static_cast<uint32_t>(part_index);
  journal.partition_count = static_cast<uint32_t>(part_count);
  SHUFFLEDP_ASSIGN_OR_RETURN(journal.n, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(journal.n_fake, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(journal.calibration, r.GetU8());
  SHUFFLEDP_ASSIGN_OR_RETURN(journal.reports_decoded, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(journal.reports_invalid, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(journal.dummies_recognized, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(journal.dummies_expected, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t d, r.GetVarint());
  if (d > r.Remaining()) {
    return Status::DataLoss("journal supports length exceeds payload");
  }
  journal.supports.reserve(d);
  for (uint64_t i = 0; i < d; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t s, r.GetVarint());
    journal.supports.push_back(s);
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("journal payload has trailing bytes");
  }
  return journal;
}

Status WriteFramedFile(const std::string& path, const uint8_t magic[4],
                       const Bytes& payload, const char* what) {
  if (path.empty()) {
    return Status::InvalidArgument(std::string(what) + " path is empty");
  }
  ByteWriter file(kHeaderBytes + payload.size());
  file.PutBytes(magic, 4);
  file.PutU8(kCheckpointVersion);
  file.PutU8(0);
  file.PutU8(0);
  file.PutU8(0);
  file.PutU32(static_cast<uint32_t>(payload.size()));
  file.PutU32(Crc32(payload.data(), payload.size()));
  file.PutBytes(payload);
  const Bytes& bytes = file.data();

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return MapStorageErrno(what, tmp, "open", errno);
  }
  Status st = StorageWriteAll(fd, bytes.data(), bytes.size(), what, tmp);
  if (st.ok()) st = StorageFsync(fd, what, tmp);
  ::close(fd);
  if (st.ok()) st = StorageRename(tmp, path, what);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  return Status::OK();
}

Result<Bytes> ReadFramedFile(const std::string& path, const uint8_t magic[4],
                             const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(std::string("no ") + what + " at " + path);
  }
  Bytes bytes;
  uint8_t buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);

  if (bytes.size() < kHeaderBytes) {
    return Status::DataLoss(std::string(what) + " file shorter than header");
  }
  ByteReader r(bytes);
  SHUFFLEDP_ASSIGN_OR_RETURN(Bytes file_magic, r.GetBytes(4));
  if (std::memcmp(file_magic.data(), magic, 4) != 0) {
    return Status::DataLoss(std::string(what) + " magic mismatch");
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kCheckpointVersion) {
    return Status::DataLoss(std::string("unsupported ") + what +
                            " version " + std::to_string(version));
  }
  for (int i = 0; i < 3; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t reserved, r.GetU8());
    if (reserved != 0) {
      return Status::DataLoss(std::string(what) +
                              " reserved bytes are nonzero");
    }
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(uint32_t payload_len, r.GetU32());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint32_t expected_crc, r.GetU32());
  if (payload_len != r.Remaining()) {
    return Status::DataLoss(std::string(what) +
                            " length field does not match file");
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(Bytes payload, r.GetBytes(payload_len));
  if (Crc32(payload.data(), payload.size()) != expected_crc) {
    return Status::DataLoss(std::string(what) +
                            " CRC mismatch (torn or corrupt)");
  }
  return payload;
}

Status WriteCheckpoint(const std::string& path,
                       const CheckpointState& state) {
  return WriteFramedFile(path, kCheckpointMagic,
                         SerializeCheckpointPayload(state), "checkpoint");
}

Result<CheckpointState> ReadCheckpoint(const std::string& path) {
  SHUFFLEDP_ASSIGN_OR_RETURN(
      Bytes payload, ReadFramedFile(path, kCheckpointMagic, "checkpoint"));
  return ParseCheckpointPayload(payload);
}

void RemoveCheckpoint(const std::string& path) {
  if (!path.empty()) std::remove(path.c_str());
}

std::string RoundJournalPath(const std::string& checkpoint_path) {
  return checkpoint_path + ".result";
}

Status WriteRoundJournal(const std::string& path,
                         const RoundJournal& journal) {
  return WriteFramedFile(path, kJournalMagic,
                         SerializeJournalPayload(journal), "round journal");
}

Result<RoundJournal> ReadRoundJournal(const std::string& path) {
  SHUFFLEDP_ASSIGN_OR_RETURN(
      Bytes payload, ReadFramedFile(path, kJournalMagic, "round journal"));
  return ParseJournalPayload(payload);
}

}  // namespace service
}  // namespace shuffledp

// Crash-safe round checkpoints for the streaming collection service.
//
// A collection round at n = 10^6+ reports is minutes of ingest; a server
// crash mid-round used to lose every partial shard aggregate. The
// collector's consumer thread periodically snapshots its round state —
// merged shard supports, consumed-batch watermark, running tallies, the
// remaining spot-check dummy multiset — into a CRC-guarded file that is
// written atomically (temp file + fsync + rename), so the file on disk
// is always either the previous complete checkpoint or the new one,
// never a torn mix. On restart, StreamingCollector::RecoverRound()
// restores the snapshot and returns the watermark; the feeder replays
// batches from that index (protocol encode phases are deterministic in
// fixed-size chunks, so replayed batches are bit-identical) and the
// finished round matches an uninterrupted run exactly.
//
// A second artifact closes the post-round crash window: the checkpoint
// is removed at the round-close sentinel, so a crash between that
// sentinel and the drained result being read used to lose the round.
// Before the unlink, the worker journals the *finalized* round state
// (supports fully accumulated, tallies final) into a sibling file
// (`path + ".result"`, same CRC + atomic-rename discipline). Recovery
// replays the journal through the deterministic finalize/calibrate step
// and reproduces the round result bitwise — see RoundJournal below.
//
// File layout (all integers little-endian; see docs/WIRE_FORMAT.md):
//
//   offset size field
//   0      4    magic "SDPK" (0x53 0x44 0x50 0x4B) / "SDPJ" for journals
//   4      1    version (kCheckpointVersion)
//   5      3    reserved, zero
//   8      4    payload length (u32)
//   12     4    CRC-32 of the payload bytes
//   16     ..   payload (serialized CheckpointState / RoundJournal)
//
// Checkpoint payload: u64 round_id, varint partition index, varint
// partition count, varint slice lo, varint batches_consumed, varint
// rows_seen, varint reports_decoded, varint reports_invalid, varint
// dummies_recognized, varint dummies_expected, varint slice length,
// that many varint supports, varint dummy-entry count, then per entry
// u64 packed report, u64 tag, varint remaining count.

#ifndef SHUFFLEDP_SERVICE_CHECKPOINT_H_
#define SHUFFLEDP_SERVICE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {
namespace service {

inline constexpr uint8_t kCheckpointMagic[4] = {'S', 'D', 'P', 'K'};
inline constexpr uint8_t kJournalMagic[4] = {'S', 'D', 'P', 'J'};
inline constexpr uint8_t kCheckpointVersion = 2;

/// Checkpointing knobs (part of StreamingOptions).
struct CheckpointOptions {
  /// Checkpoint file path; empty disables checkpointing. The writer also
  /// uses `path + ".tmp"` as the atomic-rename staging file.
  std::string path;
  /// Consumed-batch interval between snapshots.
  uint64_t every_batches = 64;
};

/// One consistent snapshot of a partially drained round, as of the
/// moment `batches_consumed` batches had been fully accumulated.
struct CheckpointState {
  uint64_t round_id = 0;
  /// Partition identity of the worker that wrote the snapshot. A
  /// recovered worker refuses a snapshot for a different partition — a
  /// misrouted checkpoint file must not resurrect another slice's counts.
  uint32_t partition_index = 0;
  uint32_t partition_count = 1;
  uint64_t slice_lo = 0;          ///< first owned value (0 for full domain)
  uint64_t batches_consumed = 0;  ///< replay watermark
  uint64_t rows_seen = 0;
  uint64_t reports_decoded = 0;
  uint64_t reports_invalid = 0;
  uint64_t dummies_recognized = 0;
  uint64_t dummies_expected = 0;
  /// Merged shard aggregates over the owned slice (length = slice size;
  /// the full domain for single-node / kByClient workers).
  std::vector<uint64_t> supports;
  /// Spot-check dummies not yet matched: (packed report, tag) -> count.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> dummies_remaining;
};

/// Serializes `state` and writes it to `path` atomically: the payload is
/// staged in `path + ".tmp"`, fsynced, then renamed over `path`.
Status WriteCheckpoint(const std::string& path, const CheckpointState& state);

/// Reads and validates a checkpoint file: magic, version, length, and
/// CRC must all match or the read fails (DataLoss) without returning a
/// partial state.
Result<CheckpointState> ReadCheckpoint(const std::string& path);

/// Deletes a checkpoint file if present (round completed). Missing files
/// are not an error.
void RemoveCheckpoint(const std::string& path);

/// Finalized state of a *closed* round, journaled before the round
/// checkpoint is unlinked. Everything downstream of these fields —
/// Finalize-order merge and estimator calibration — is a deterministic
/// pure function, so replaying the journal reproduces the RoundResult
/// bitwise.
///
/// Journal payload ("SDPJ"): u64 round_id, varint partition index,
/// varint partition count, varint slice lo, varint n, varint n_fake,
/// u8 calibration, varint reports_decoded, varint reports_invalid,
/// varint dummies_recognized, varint dummies_expected, varint slice
/// length, that many varint supports.
struct RoundJournal {
  uint64_t round_id = 0;
  uint32_t partition_index = 0;
  uint32_t partition_count = 1;
  uint64_t slice_lo = 0;
  uint64_t n = 0;
  uint64_t n_fake = 0;
  uint8_t calibration = 0;  ///< service::Calibration wire value
  uint64_t reports_decoded = 0;
  uint64_t reports_invalid = 0;
  uint64_t dummies_recognized = 0;
  uint64_t dummies_expected = 0;
  std::vector<uint64_t> supports;  ///< finalized, length = slice size
};

/// The journal lives next to its checkpoint: `path + ".result"`.
std::string RoundJournalPath(const std::string& checkpoint_path);

/// Atomic CRC-guarded write/read of a finalized-round journal, same
/// staging discipline as the checkpoint itself.
Status WriteRoundJournal(const std::string& path, const RoundJournal& journal);
Result<RoundJournal> ReadRoundJournal(const std::string& path);

/// Payload codecs, exported for the durable round store (round_store.h):
/// its segment files and WAL finalize records embed the exact same
/// checkpoint/journal payload bytes behind different framing, so legacy
/// files and store segments stay mutually convertible.
Bytes SerializeCheckpointPayload(const CheckpointState& state);
Result<CheckpointState> ParseCheckpointPayload(const Bytes& payload);
Bytes SerializeJournalPayload(const RoundJournal& journal);
Result<RoundJournal> ParseJournalPayload(const Bytes& payload);

/// Stage + fsync + rename a magic/version/CRC-framed payload (the
/// 16-byte header documented above): a crash at any point leaves either
/// the old file or the new one at `path`, never a torn mix. Shared by
/// checkpoints, round journals, and the round store's segment files.
/// All storage syscalls go through the fault-injectable wrappers in
/// wal.h, so ENOSPC surfaces as kResourceExhausted.
Status WriteFramedFile(const std::string& path, const uint8_t magic[4],
                       const Bytes& payload, const char* what);
Result<Bytes> ReadFramedFile(const std::string& path, const uint8_t magic[4],
                             const char* what);

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_CHECKPOINT_H_

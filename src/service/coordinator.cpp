#include "service/coordinator.h"

#include <algorithm>
#include <limits>

namespace shuffledp {
namespace service {

namespace {

/// Replay bound meaning "everything the round has logged" — what the
/// round-close path passes to RecoverPartition, where every logged
/// batch must reach the endpoint before kFinish can mean anything.
constexpr uint64_t kReplayAll = std::numeric_limits<uint64_t>::max();

}  // namespace

std::string PartitionHealth::ToString() const {
  std::string s = "p" + std::to_string(partition);
  if (healthy) {
    s += " ok";
    if (recoveries > 0 || connection_drops > 0) {
      s += " (" + std::to_string(connection_drops) +
           (connection_drops == 1 ? " drop/eviction, " : " drops/evictions, ") +
           std::to_string(recoveries) +
           (recoveries == 1 ? " recovery, " : " recoveries, ") +
           std::to_string(attempts) + " attempts)";
    }
  } else {
    s += " DEAD after " + std::to_string(attempts) + " attempts (" +
         std::to_string(connection_drops) + " drops/evictions, watermark " +
         std::to_string(watermark_at_death) +
         ", last error: " + last_error.ToString() + ")";
  }
  return s;
}

bool RoundHealth::all_healthy() const {
  for (const PartitionHealth& h : partitions) {
    if (!h.healthy) return false;
  }
  return true;
}

std::string RoundHealth::ToString() const {
  std::string s = "round " + std::to_string(round_id) + ":";
  for (const PartitionHealth& h : partitions) {
    s += " " + h.ToString() + ";";
  }
  if (!s.empty() && s.back() == ';') s.pop_back();
  return s;
}

Result<std::unique_ptr<PartitionRoutingClient>> PartitionRoutingClient::Connect(
    const ldp::ScalarFrequencyOracle& oracle, const PartitionMap& map,
    const std::vector<EndpointAddress>& endpoints,
    const RoutingOptions& options) {
  if (endpoints.size() != map.partitions()) {
    return Status::InvalidArgument(
        "partition routing: " + std::to_string(endpoints.size()) +
        " endpoints for a " + map.ToString() + " layout");
  }
  if (map.domain_size() != oracle.domain_size() ||
      map.packed_bits() != oracle.PackedBits()) {
    return Status::InvalidArgument(
        "partition routing: map " + map.ToString() +
        " does not describe this oracle's domain");
  }
  std::unique_ptr<PartitionRoutingClient> routing(
      new PartitionRoutingClient(oracle, map, endpoints, options));
  routing->clients_.resize(map.partitions());
  routing->round_ids_.assign(map.partitions(), 0);
  routing->skip_batches_.assign(map.partitions(), 0);
  routing->replay_log_.resize(map.partitions());
  routing->health_.resize(map.partitions());
  for (uint32_t p = 0; p < map.partitions(); ++p) {
    routing->health_[p].partition = p;
    SHUFFLEDP_RETURN_NOT_OK(routing->ReconnectPartition(p));
  }
  return routing;
}

Status PartitionRoutingClient::ReconnectPartition(uint32_t p) {
  if (p >= clients_.size()) {
    return Status::InvalidArgument("partition index out of range");
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(
      clients_[p], CollectorClient::Connect(endpoints_[p].host,
                                            endpoints_[p].port,
                                            options_.client));
  SHUFFLEDP_ASSIGN_OR_RETURN(round_ids_[p], clients_[p]->Hello(map_, p));
  return Status::OK();
}

void PartitionRoutingClient::ResetRoundState(uint64_t round_id) {
  for (uint32_t p = 0; p < map_.partitions(); ++p) {
    replay_log_[p].clear();
    health_[p] = PartitionHealth{};
    health_[p].partition = p;
  }
  logged_round_ = round_id;
  round_state_valid_ = true;
}

RoundHealth PartitionRoutingClient::SnapshotHealth(uint64_t round_id) const {
  RoundHealth report;
  report.round_id = round_id;
  report.partitions = health_;
  return report;
}

void PartitionRoutingClient::LogRoutedBatch(uint32_t p, uint64_t batch_index,
                                            std::vector<uint64_t> owned) {
  LoggedBatch entry;
  entry.batch_index = batch_index;
  entry.ordinals = std::move(owned);
  replay_log_[p].push_back(std::move(entry));
}

Status PartitionRoutingClient::SendRoutedBatch(
    uint32_t p, uint64_t round_id, uint64_t batch_index,
    const std::vector<uint64_t>& owned) {
  if (clients_[p] == nullptr) {
    return Status::Unavailable("partition " + std::to_string(p) +
                               " has no live connection");
  }
  // Indexed send: the endpoint's batch-index gate accepts each producer
  // batch exactly once, so a recovery replay can race stragglers the
  // replaced connection still delivers without double-ingesting.
  return clients_[p]->SendOrdinals(round_id, batch_index, oracle_, owned);
}

Status PartitionRoutingClient::SendBatch(
    uint64_t round_id, uint64_t batch_index,
    const std::vector<uint64_t>& ordinals) {
  if (!round_state_valid_ || logged_round_ != round_id) {
    ResetRoundState(round_id);
  }
  std::vector<std::vector<uint64_t>> groups =
      map_.Route(batch_index, ordinals);
  for (uint32_t p = 0; p < map_.partitions(); ++p) {
    if (batch_index < skip_batches_[p]) continue;  // already consumed
    // Log before sending: a frame that dies on the wire is exactly the
    // one recovery must replay.
    if (options_.auto_recover) LogRoutedBatch(p, batch_index, groups[p]);
    Status sent = SendRoutedBatch(p, round_id, batch_index, groups[p]);
    if (sent.ok()) continue;
    if (!options_.auto_recover || !IsRetryableTransportError(sent)) {
      return sent;
    }
    health_[p].last_error = sent;
    SHUFFLEDP_RETURN_NOT_OK(
        RecoverPartition(p, round_id, batch_index + 1));
  }
  return Status::OK();
}

Result<uint64_t> PartitionRoutingClient::QueryWatermark(
    uint32_t p, uint64_t* round_id_out) {
  if (p >= clients_.size()) {
    return Status::InvalidArgument("partition index out of range");
  }
  if (clients_[p] == nullptr) {
    return Status::Unavailable("partition " + std::to_string(p) +
                               " has no live connection");
  }
  return clients_[p]->QueryWatermark(round_id_out);
}

Status PartitionRoutingClient::RecoverPartition(uint32_t p,
                                                uint64_t round_id,
                                                uint64_t replay_until) {
  if (p >= clients_.size()) {
    return Status::InvalidArgument("partition index out of range");
  }
  if (!round_state_valid_ || logged_round_ != round_id) {
    ResetRoundState(round_id);
  }
  PartitionHealth& h = health_[p];
  h.healthy = false;
  // Entering recovery means an established connection just failed under
  // us — the client-side face of a server eviction (idle / slow-writer /
  // write-queue overflow), a reset, or an endpoint death. Count it so
  // RoundHealth surfaces evictions even when recovery succeeds.
  if (clients_[p] != nullptr) ++h.connection_drops;
  // Drop the dead connection before the first backoff sleep. This does
  // NOT guarantee the endpoint has finished with it: kernel-buffered
  // frames sit ahead of our FIN, so the old reader thread may still be
  // ingesting batches while (and after) the fresh connection's watermark
  // is answered. That race is why routed batches ship as kBatchIndexed:
  // the endpoint's index gate accepts each batch index exactly once and
  // silently drops the straggler/replay duplicate, whichever connection
  // delivers second. The watermark is therefore a safe (possibly stale-
  // low) replay floor, never a dedup mechanism by itself.
  clients_[p].reset();
  BackoffSchedule backoff(options_.retry,
                          (static_cast<uint64_t>(p) << 32) ^ round_id);
  Status last = h.last_error.ok()
                    ? Status::Unavailable("endpoint for partition " +
                                          std::to_string(p) + " lost")
                    : h.last_error;
  const uint32_t budget = std::max<uint32_t>(1, options_.retry.max_attempts);
  for (uint32_t attempt = 0; attempt < budget; ++attempt) {
    SleepForMs(backoff.NextDelayMs());
    ++h.attempts;
    Status step = ReconnectPartition(p);
    if (!step.ok()) {
      last = step;
      h.last_error = step;
      if (!IsRetryableTransportError(step)) return step;
      continue;
    }
    uint64_t server_round = 0;
    Result<uint64_t> mark = QueryWatermark(p, &server_round);
    if (!mark.ok()) {
      last = mark.status();
      h.last_error = last;
      if (!IsRetryableTransportError(last)) return last;
      continue;
    }
    if (server_round == round_id + 1) {
      // The endpoint already closed this round — the failure hit the
      // close-to-read window. Nothing to replay; a re-sent kFinish is
      // served from the endpoint's result stash.
      ++h.recoveries;
      h.healthy = true;
      return Status::OK();
    }
    if (server_round != round_id) {
      Status fatal = Status::Internal(
          "partition " + std::to_string(p) + " endpoint resumed round " +
          std::to_string(server_round) + "; cannot replay round " +
          std::to_string(round_id) +
          " into it (restarted without its checkpoint?)");
      h.last_error = fatal;
      return fatal;
    }
    h.watermark_at_death = *mark;
    // Replay the unconsumed suffix [watermark, replay_until) from the
    // round's routed-frame log.
    Status replay = Status::OK();
    for (const LoggedBatch& entry : replay_log_[p]) {
      if (entry.batch_index < *mark || entry.batch_index >= replay_until) {
        continue;
      }
      replay = SendRoutedBatch(p, round_id, entry.batch_index,
                               entry.ordinals);
      if (!replay.ok()) break;
    }
    if (replay.ok()) {
      ++h.recoveries;
      h.healthy = true;
      return Status::OK();
    }
    last = replay;
    h.last_error = replay;
    if (!IsRetryableTransportError(replay)) return replay;
    ++h.connection_drops;
    clients_[p].reset();  // the replay connection died too
  }
  h.healthy = false;
  return Status(last.code(),
                "partition " + std::to_string(p) +
                    " recovery exhausted after " +
                    std::to_string(h.attempts) + " attempts: " +
                    last.message());
}

Result<RoundResult> MergeCoordinator::FinishRound(uint64_t round_id,
                                                  uint64_t n,
                                                  uint64_t n_fake,
                                                  Calibration calibration) {
  const uint32_t partitions = client_->partitions();
  const bool recover = client_->options().auto_recover;
  const uint32_t budget =
      std::max<uint32_t>(1, client_->options().retry.max_attempts);

  // On every exit, last_health_ reflects this round — which partitions
  // recovered, which died, and a failure Status embeds the report.
  auto fail = [&](const Status& s) -> Status {
    last_health_ = client_->SnapshotHealth(round_id);
    return Status(s.code(), s.message() + " [" + last_health_.ToString() +
                                "]");
  };

  auto send_finish = [&](uint32_t p) -> Status {
    CollectorClient* c = client_->client(p);
    if (c == nullptr) {
      return Status::Unavailable("partition " + std::to_string(p) +
                                 " has no live connection");
    }
    return c->SendFinish(round_id, n, n_fake, Calibration::kNone);
  };

  // Pipelined close: every endpoint starts draining its slice before the
  // first result is read — the round-close latency is the slowest
  // endpoint's, not the sum. A send that dies retryably triggers the
  // recovery dance (reconnect → handshake → watermark → replay) and a
  // re-send, bounded by the retry budget per failure cycle.
  for (uint32_t p = 0; p < partitions; ++p) {
    Status sent = send_finish(p);
    for (uint32_t cycle = 0; !sent.ok(); ++cycle) {
      if (!recover || !IsRetryableTransportError(sent) || cycle >= budget) {
        return fail(sent);
      }
      Status recovered = client_->RecoverPartition(p, round_id, kReplayAll);
      if (!recovered.ok()) return fail(recovered);
      sent = send_finish(p);
    }
  }
  std::vector<std::vector<uint64_t>> parts(partitions);
  uint64_t reports_decoded = 0;
  uint64_t reports_invalid = 0;
  uint64_t dummies_recognized = 0;
  uint64_t dummies_expected = 0;
  bool spot_check_passed = true;
  uint64_t rows = 0;
  for (uint32_t p = 0; p < partitions; ++p) {
    Result<RemoteRoundResult> part =
        client_->client(p) == nullptr
            ? Result<RemoteRoundResult>(Status::Unavailable(
                  "partition " + std::to_string(p) +
                  " has no live connection"))
            : client_->client(p)->ReadRoundResult();
    // A result read that dies retryably (connection reset between the
    // finish and the reply, endpoint restart mid-drain) recovers the
    // endpoint and re-sends the finish on the fresh connection; the
    // endpoint answers a re-finish for an already-closed round from its
    // result stash, so this converges without re-running the round.
    for (uint32_t cycle = 0; !part.ok(); ++cycle) {
      if (!recover || !IsRetryableTransportError(part.status()) ||
          cycle >= budget) {
        return fail(part.status());
      }
      Status recovered = client_->RecoverPartition(p, round_id, kReplayAll);
      if (!recovered.ok()) return fail(recovered);
      Status resent = send_finish(p);
      if (!resent.ok()) {
        part = resent;
        continue;
      }
      part = client_->client(p)->ReadRoundResult();
    }
    reports_decoded += part->reports_decoded;
    reports_invalid += part->reports_invalid;
    dummies_recognized += part->dummies_recognized;
    dummies_expected += part->dummies_expected;
    spot_check_passed = spot_check_passed && part->spot_check_passed;
    rows += part->reports_decoded + part->reports_invalid +
            part->dummies_recognized;
    parts[p] = std::move(part->supports);
  }
  // Best-effort durability probe: a partition that shed durability
  // mid-round (ENOSPC) still answered with a complete result, but the
  // operator must learn that a crash right now would lose it. kQuery is
  // advisory — a probe failure never fails a round that already has its
  // numbers.
  std::vector<uint32_t> degraded_partitions;
  for (uint32_t p = 0; p < partitions; ++p) {
    CollectorClient* c = client_->client(p);
    if (c == nullptr) continue;
    Result<RoundQuery> q = c->QueryRound(round_id);
    if (q.ok() && q->durability_degraded) degraded_partitions.push_back(p);
  }
  last_health_ = client_->SnapshotHealth(round_id);
  for (uint32_t p : degraded_partitions) {
    for (PartitionHealth& h : last_health_.partitions) {
      if (h.partition == p) {
        // Degraded, not dead: the partition stays healthy (its result
        // is complete and correct) but the warning rides the report.
        h.last_error = Status::ResourceExhausted(
            "round " + std::to_string(round_id) +
            " finished with durability degraded (results not crash-safe)");
      }
    }
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(std::vector<uint64_t> merged,
                             client_->map().MergeSupports(parts));

  // Merge first, calibrate once: the estimator is a function of the
  // whole population's supports (see the header note), and running it
  // here on the merged vector is the exact computation the single-node
  // drain task performs — bitwise, which the distributed e2e pins.
  RoundResult result = FinalizeRoundResult(
      oracle_, std::move(merged), n, n_fake, calibration, reports_decoded,
      reports_invalid, dummies_recognized, dummies_expected);
  // Cross-partition spot-check: each endpoint already compared its own
  // recognized/expected counts; the merged verdict must also fail if any
  // single partition's did (a per-partition miss can hide in the sums
  // when another partition over-recognizes).
  result.spot_check_passed = result.spot_check_passed && spot_check_passed;
  result.stats.rows = rows;
  if (!degraded_partitions.empty()) {
    result.durability_degraded = true;
    std::string warning = "durability degraded on partition(s)";
    for (uint32_t p : degraded_partitions) {
      warning += " " + std::to_string(p);
    }
    result.durability_warning = std::move(warning);
  }
  return result;
}

}  // namespace service
}  // namespace shuffledp

#include "service/coordinator.h"

namespace shuffledp {
namespace service {

Result<std::unique_ptr<PartitionRoutingClient>> PartitionRoutingClient::Connect(
    const ldp::ScalarFrequencyOracle& oracle, const PartitionMap& map,
    const std::vector<EndpointAddress>& endpoints) {
  if (endpoints.size() != map.partitions()) {
    return Status::InvalidArgument(
        "partition routing: " + std::to_string(endpoints.size()) +
        " endpoints for a " + map.ToString() + " layout");
  }
  if (map.domain_size() != oracle.domain_size() ||
      map.packed_bits() != oracle.PackedBits()) {
    return Status::InvalidArgument(
        "partition routing: map " + map.ToString() +
        " does not describe this oracle's domain");
  }
  std::unique_ptr<PartitionRoutingClient> routing(
      new PartitionRoutingClient(oracle, map, endpoints));
  routing->clients_.resize(map.partitions());
  routing->round_ids_.assign(map.partitions(), 0);
  routing->skip_batches_.assign(map.partitions(), 0);
  for (uint32_t p = 0; p < map.partitions(); ++p) {
    SHUFFLEDP_RETURN_NOT_OK(routing->ReconnectPartition(p));
  }
  return routing;
}

Status PartitionRoutingClient::ReconnectPartition(uint32_t p) {
  if (p >= clients_.size()) {
    return Status::InvalidArgument("partition index out of range");
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(
      clients_[p], CollectorClient::Connect(endpoints_[p].host,
                                            endpoints_[p].port));
  SHUFFLEDP_ASSIGN_OR_RETURN(round_ids_[p], clients_[p]->Hello(map_, p));
  return Status::OK();
}

Status PartitionRoutingClient::SendBatch(
    uint64_t round_id, uint64_t batch_index,
    const std::vector<uint64_t>& ordinals) {
  std::vector<std::vector<uint64_t>> groups =
      map_.Route(batch_index, ordinals);
  for (uint32_t p = 0; p < map_.partitions(); ++p) {
    if (batch_index < skip_batches_[p]) continue;  // already consumed
    SHUFFLEDP_RETURN_NOT_OK(
        clients_[p]->SendOrdinals(round_id, oracle_, groups[p]));
  }
  return Status::OK();
}

Result<uint64_t> PartitionRoutingClient::QueryWatermark(
    uint32_t p, uint64_t* round_id_out) {
  if (p >= clients_.size()) {
    return Status::InvalidArgument("partition index out of range");
  }
  return clients_[p]->QueryWatermark(round_id_out);
}

Result<RoundResult> MergeCoordinator::FinishRound(uint64_t round_id,
                                                  uint64_t n,
                                                  uint64_t n_fake,
                                                  Calibration calibration) {
  const uint32_t partitions = client_->partitions();
  // Pipelined close: every endpoint starts draining its slice before the
  // first result is read — the round-close latency is the slowest
  // endpoint's, not the sum.
  for (uint32_t p = 0; p < partitions; ++p) {
    SHUFFLEDP_RETURN_NOT_OK(client_->client(p)->SendFinish(
        round_id, n, n_fake, Calibration::kNone));
  }
  std::vector<std::vector<uint64_t>> parts(partitions);
  uint64_t reports_decoded = 0;
  uint64_t reports_invalid = 0;
  uint64_t dummies_recognized = 0;
  uint64_t dummies_expected = 0;
  bool spot_check_passed = true;
  uint64_t rows = 0;
  for (uint32_t p = 0; p < partitions; ++p) {
    SHUFFLEDP_ASSIGN_OR_RETURN(RemoteRoundResult part,
                               client_->client(p)->ReadRoundResult());
    reports_decoded += part.reports_decoded;
    reports_invalid += part.reports_invalid;
    dummies_recognized += part.dummies_recognized;
    dummies_expected += part.dummies_expected;
    spot_check_passed = spot_check_passed && part.spot_check_passed;
    rows += part.reports_decoded + part.reports_invalid +
            part.dummies_recognized;
    parts[p] = std::move(part.supports);
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(std::vector<uint64_t> merged,
                             client_->map().MergeSupports(parts));

  // Merge first, calibrate once: the estimator is a function of the
  // whole population's supports (see the header note), and running it
  // here on the merged vector is the exact computation the single-node
  // drain task performs — bitwise, which the distributed e2e pins.
  RoundResult result = FinalizeRoundResult(
      oracle_, std::move(merged), n, n_fake, calibration, reports_decoded,
      reports_invalid, dummies_recognized, dummies_expected);
  // Cross-partition spot-check: each endpoint already compared its own
  // recognized/expected counts; the merged verdict must also fail if any
  // single partition's did (a per-partition miss can hide in the sums
  // when another partition over-recognizes).
  result.spot_check_passed = result.spot_check_passed && spot_check_passed;
  result.stats.rows = rows;
  return result;
}

}  // namespace service
}  // namespace shuffledp

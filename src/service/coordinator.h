// Multi-endpoint collection: partition-routing client + merge-of-supports
// coordinator.
//
// A distributed round has two client-side roles:
//
//   PartitionRoutingClient  fans a producer's batches out to the owning
//       endpoints. Every producer batch yields exactly one kBatch frame
//       per endpoint — the frame carries the subset of ordinals the
//       endpoint owns (kByValue) or the whole batch / nothing (kByClient
//       round-robin) — so per-endpoint batch indices always equal
//       producer batch indices. That alignment is what crash recovery
//       replays against: an endpoint's consumed-batch watermark is
//       directly a producer batch index, and SetSkipBatches() replays
//       any single endpoint's suffix without re-sending (and
//       double-counting) the others'.
//
//   MergeCoordinator  closes the round: it sends kFinish with
//       Calibration::kNone to every endpoint (pipelined — all sends
//       first, then reads in partition order), collects the raw
//       per-partition supports, tallies, and dummy accounting, performs
//       the deterministic merge-of-supports in partition order
//       (PartitionMap::MergeSupports), and only then calibrates.
//
// Merge before calibrate is a correctness requirement, not a
// convenience: the estimator's de-bias and the shuffle-DP amplification
// analysis are both properties of the *whole* population of n + n_r
// reports (Wang et al.), and integer support counts are the only
// aggregate that composes losslessly across partitions. Averaging
// per-node estimates would weight partitions wrongly the moment their
// loads differ — and could never be bitwise-identical to the
// single-node path, which is the bar the distributed e2e test pins.

#ifndef SHUFFLEDP_SERVICE_COORDINATOR_H_
#define SHUFFLEDP_SERVICE_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "service/partition.h"
#include "service/partition_worker.h"
#include "service/transport.h"
#include "util/status.h"

namespace shuffledp {
namespace service {

/// One collection endpoint's address (loopback/IPv4, see
/// CollectorClient::Connect).
struct EndpointAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Client-side fan-out: one handshaken connection per partition.
/// Synchronous and single-threaded like CollectorClient; a producer
/// streams batches through SendBatch and the coordinator closes the
/// round over the same connections (per-connection FIFO makes every
/// batch precede the finish without any extra barrier).
class PartitionRoutingClient {
 public:
  /// Dials endpoints[p] for partition p (one per map partition) and
  /// performs the kHello handshake on each — a misconfigured endpoint
  /// (different layout, different owned partition) fails here, before
  /// any data flows.
  static Result<std::unique_ptr<PartitionRoutingClient>> Connect(
      const ldp::ScalarFrequencyOracle& oracle, const PartitionMap& map,
      const std::vector<EndpointAddress>& endpoints);

  const PartitionMap& map() const { return map_; }
  uint32_t partitions() const { return map_.partitions(); }

  /// The round endpoint `p` reported at handshake / reconnect.
  uint64_t round_id(uint32_t p) const { return round_ids_[p]; }

  /// Raw per-partition connection (round control, watermark queries).
  CollectorClient* client(uint32_t p) { return clients_[p].get(); }

  /// Routes producer batch `batch_index` and ships one frame per
  /// endpoint (ordinals it owns; possibly empty). Partitions whose
  /// skip-batch floor exceeds `batch_index` are skipped — their endpoint
  /// already consumed that batch before a crash.
  Status SendBatch(uint64_t round_id, uint64_t batch_index,
                   const std::vector<uint64_t>& ordinals);

  /// Replay floor for one endpoint (crash recovery): batches below
  /// `batches` are not re-sent to partition `p`. Pair with
  /// ReconnectPartition + QueryWatermark; reset it to 0 after the round.
  void SetSkipBatches(uint32_t p, uint64_t batches) {
    skip_batches_[p] = batches;
  }

  /// Re-dials and re-handshakes one endpoint after it restarted; the
  /// other connections (and the batches their endpoints already
  /// consumed) are left untouched.
  Status ReconnectPartition(uint32_t p);

  /// Consumed-batch watermark of endpoint `p` (see
  /// CollectorClient::QueryWatermark; also a flush barrier for this
  /// connection).
  Result<uint64_t> QueryWatermark(uint32_t p,
                                  uint64_t* round_id_out = nullptr);

 private:
  PartitionRoutingClient(const ldp::ScalarFrequencyOracle& oracle,
                         PartitionMap map,
                         std::vector<EndpointAddress> endpoints)
      : oracle_(oracle),
        map_(std::move(map)),
        endpoints_(std::move(endpoints)) {}

  const ldp::ScalarFrequencyOracle& oracle_;
  PartitionMap map_;
  std::vector<EndpointAddress> endpoints_;
  std::vector<std::unique_ptr<CollectorClient>> clients_;
  std::vector<uint64_t> round_ids_;
  std::vector<uint64_t> skip_batches_;
};

/// Round-close coordinator: collect raw per-partition results, merge in
/// partition order, calibrate once over the merged supports.
class MergeCoordinator {
 public:
  /// Borrows `client` (not owned); one coordinator per routing client.
  MergeCoordinator(const ldp::ScalarFrequencyOracle& oracle,
                   PartitionRoutingClient* client)
      : oracle_(oracle), client_(client) {}

  /// Closes `round_id` on every endpoint and returns the merged,
  /// calibrated round result. `calibration` is applied *after* the merge
  /// (endpoints always close with Calibration::kNone); kNone returns the
  /// merged raw supports. Tallies and dummy accounting sum across
  /// partitions; the spot check passes only if every partition's does.
  /// The merged stats keep only the row/batch totals — per-endpoint
  /// timing lives on the endpoints.
  Result<RoundResult> FinishRound(uint64_t round_id, uint64_t n,
                                  uint64_t n_fake, Calibration calibration);

 private:
  const ldp::ScalarFrequencyOracle& oracle_;
  PartitionRoutingClient* client_;
};

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_COORDINATOR_H_

// Multi-endpoint collection: partition-routing client + merge-of-supports
// coordinator.
//
// A distributed round has two client-side roles:
//
//   PartitionRoutingClient  fans a producer's batches out to the owning
//       endpoints. Every producer batch yields exactly one kBatchIndexed
//       frame per endpoint — the frame carries the producer batch index
//       plus the subset of ordinals the endpoint owns (kByValue) or the
//       whole batch / nothing (kByClient round-robin) — so per-endpoint
//       batch indices always equal producer batch indices. That
//       alignment is what crash recovery replays against: an endpoint's
//       consumed-batch watermark is directly a producer batch index, and
//       SetSkipBatches() replays any single endpoint's suffix without
//       re-sending the others'. The explicit index also makes replay
//       idempotent: the endpoint accepts each index exactly once, so a
//       replayed batch that races a straggler the replaced connection
//       still delivers is dropped, not double-counted.
//
//   MergeCoordinator  closes the round: it sends kFinish with
//       Calibration::kNone to every endpoint (pipelined — all sends
//       first, then reads in partition order), collects the raw
//       per-partition supports, tallies, and dummy accounting, performs
//       the deterministic merge-of-supports in partition order
//       (PartitionMap::MergeSupports), and only then calibrates.
//
// Merge before calibrate is a correctness requirement, not a
// convenience: the estimator's de-bias and the shuffle-DP amplification
// analysis are both properties of the *whole* population of n + n_r
// reports (Wang et al.), and integer support counts are the only
// aggregate that composes losslessly across partitions. Averaging
// per-node estimates would weight partitions wrongly the moment their
// loads differ — and could never be bitwise-identical to the
// single-node path, which is the bar the distributed e2e test pins.

#ifndef SHUFFLEDP_SERVICE_COORDINATOR_H_
#define SHUFFLEDP_SERVICE_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "service/partition.h"
#include "service/partition_worker.h"
#include "service/retry.h"
#include "service/transport.h"
#include "util/status.h"

namespace shuffledp {
namespace service {

/// One collection endpoint's address (loopback/IPv4, see
/// CollectorClient::Connect).
struct EndpointAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Fault-tolerance knobs for the fleet client tier.
struct RoutingOptions {
  /// Per-operation deadlines on every endpoint connection.
  CollectorClientOptions client;
  /// Retry budget for the automatic reconnect → handshake → watermark →
  /// replay recovery dance (per failure event, per partition).
  RetryPolicy retry;
  /// When true (default) the routing client records every routed frame
  /// for the current round and, on a retryable send/finish failure,
  /// recovers the endpoint itself: reconnect with backoff, re-handshake,
  /// query the consumed-batch watermark, and replay the unconsumed
  /// suffix. When false, failures surface immediately and the caller
  /// drives ReconnectPartition/SetSkipBatches by hand (the pre-recovery
  /// behavior; also skips the replay log's memory).
  bool auto_recover = true;
};

/// Per-partition liveness/outcome of one round's fleet I/O (ISSUE:
/// "attempts, last errno, watermark at death"). `attempts` counts
/// connection attempts spent on recovery for this partition this round;
/// `recoveries` successful recovery dances; `watermark_at_death` the
/// last consumed-batch watermark learned before giving up (0 when the
/// endpoint was never reachable again). `connection_drops` counts
/// established connections lost mid-round — each drop is the client
/// face of a server-side event (an idle/slow/overflow eviction, a
/// reset, an endpoint restart) and each one started a recovery dance,
/// so an operator reading RoundHealth sees evictions as drops even
/// when recovery ultimately succeeded.
struct PartitionHealth {
  uint32_t partition = 0;
  bool healthy = true;
  uint64_t attempts = 0;
  uint64_t recoveries = 0;
  uint64_t connection_drops = 0;
  uint64_t watermark_at_death = 0;
  Status last_error = Status::OK();

  std::string ToString() const;
};

/// The per-partition health report a failed (or recovered) round
/// returns instead of a bare error.
struct RoundHealth {
  uint64_t round_id = 0;
  std::vector<PartitionHealth> partitions;

  bool all_healthy() const;
  /// "round 3: p0 ok (1 recovery), p1 DEAD after 4 attempts ..." —
  /// embedded in the failure Status message so even callers that only
  /// see the Status learn which partition died and why.
  std::string ToString() const;
};

/// Client-side fan-out: one handshaken connection per partition.
/// Synchronous and single-threaded like CollectorClient; a producer
/// streams batches through SendBatch and the coordinator closes the
/// round over the same connections (per-connection FIFO makes every
/// batch precede the finish without any extra barrier).
class PartitionRoutingClient {
 public:
  /// Dials endpoints[p] for partition p (one per map partition) and
  /// performs the kHello handshake on each — a misconfigured endpoint
  /// (different layout, different owned partition) fails here, before
  /// any data flows. `options` sets the per-connection deadlines and the
  /// automatic-recovery budget for the fleet.
  static Result<std::unique_ptr<PartitionRoutingClient>> Connect(
      const ldp::ScalarFrequencyOracle& oracle, const PartitionMap& map,
      const std::vector<EndpointAddress>& endpoints,
      const RoutingOptions& options = RoutingOptions());

  const PartitionMap& map() const { return map_; }
  uint32_t partitions() const { return map_.partitions(); }
  const RoutingOptions& options() const { return options_; }

  /// The round endpoint `p` reported at handshake / reconnect.
  uint64_t round_id(uint32_t p) const { return round_ids_[p]; }

  /// Raw per-partition connection (round control, watermark queries).
  CollectorClient* client(uint32_t p) { return clients_[p].get(); }

  /// Routes producer batch `batch_index` and ships one frame per
  /// endpoint (ordinals it owns; possibly empty). Partitions whose
  /// skip-batch floor exceeds `batch_index` are skipped — their endpoint
  /// already consumed that batch before a crash.
  ///
  /// With auto_recover on, a retryable transport failure (peer reset,
  /// refused reconnect, deadline) triggers the recovery dance for that
  /// partition — reconnect with backoff, re-handshake, query the
  /// endpoint's consumed-batch watermark, replay the round's unconsumed
  /// suffix from the replay log — transparently, bounded by the retry
  /// budget. Only budget exhaustion (or a fatal error: CRC mismatch,
  /// version skew, partition mismatch) surfaces to the caller.
  Status SendBatch(uint64_t round_id, uint64_t batch_index,
                   const std::vector<uint64_t>& ordinals);

  /// Replay floor for one endpoint (crash recovery): batches below
  /// `batches` are not re-sent to partition `p`. Pair with
  /// ReconnectPartition + QueryWatermark; reset it to 0 after the round.
  void SetSkipBatches(uint32_t p, uint64_t batches) {
    skip_batches_[p] = batches;
  }

  /// Re-dials and re-handshakes one endpoint after it restarted; the
  /// other connections (and the batches their endpoints already
  /// consumed) are left untouched.
  Status ReconnectPartition(uint32_t p);

  /// Consumed-batch watermark of endpoint `p` (see
  /// CollectorClient::QueryWatermark; also a flush barrier for this
  /// connection).
  Result<uint64_t> QueryWatermark(uint32_t p,
                                  uint64_t* round_id_out = nullptr);

  /// Runs the bounded recovery dance for partition `p` right now:
  /// backoff → reconnect → kHello handshake → QueryWatermark → replay
  /// the replay-log suffix [watermark, replay_until) for `round_id`.
  /// `replay_until` is the producer batch index the round has reached
  /// (exclusive). The watermark may lag what the endpoint ultimately
  /// ingests from the replaced connection's kernel buffers; replayed
  /// batches that duplicate such stragglers are dropped by the
  /// endpoint's batch-index gate, so over-replaying is safe. Health
  /// accounting (attempts, recoveries, last error, watermark at death)
  /// accumulates into this round's PartitionHealth.
  /// Public so the coordinator (and tests) can drive it; SendBatch and
  /// FinishRound call it automatically when auto_recover is on.
  Status RecoverPartition(uint32_t p, uint64_t round_id,
                          uint64_t replay_until);

  /// Health accumulated for partition `p` since the last round change.
  const PartitionHealth& health(uint32_t p) const { return health_[p]; }
  /// Snapshot of all partitions' health for `round_id`.
  RoundHealth SnapshotHealth(uint64_t round_id) const;
  /// Clears the replay log and health records (a new round started).
  void ResetRoundState(uint64_t round_id);

 private:
  /// One routed frame the endpoint must have consumed for the round to
  /// close — what RecoverPartition replays above the watermark.
  struct LoggedBatch {
    uint64_t batch_index = 0;
    std::vector<uint64_t> ordinals;  ///< already routed for partition p
  };

  PartitionRoutingClient(const ldp::ScalarFrequencyOracle& oracle,
                         PartitionMap map,
                         std::vector<EndpointAddress> endpoints,
                         RoutingOptions options)
      : oracle_(oracle),
        map_(std::move(map)),
        endpoints_(std::move(endpoints)),
        options_(std::move(options)) {}

  /// Sends one routed frame to partition `p` without recovery.
  Status SendRoutedBatch(uint32_t p, uint64_t round_id, uint64_t batch_index,
                         const std::vector<uint64_t>& owned);
  /// Appends to partition `p`'s replay log (auto_recover only).
  void LogRoutedBatch(uint32_t p, uint64_t batch_index,
                      std::vector<uint64_t> owned);

  const ldp::ScalarFrequencyOracle& oracle_;
  PartitionMap map_;
  std::vector<EndpointAddress> endpoints_;
  RoutingOptions options_;
  std::vector<std::unique_ptr<CollectorClient>> clients_;
  std::vector<uint64_t> round_ids_;
  std::vector<uint64_t> skip_batches_;
  /// Per-partition routed-frame log for the current round; cleared when
  /// the round id changes (ResetRoundState).
  std::vector<std::vector<LoggedBatch>> replay_log_;
  std::vector<PartitionHealth> health_;
  uint64_t logged_round_ = 0;
  bool round_state_valid_ = false;
};

/// Round-close coordinator: collect raw per-partition results, merge in
/// partition order, calibrate once over the merged supports.
class MergeCoordinator {
 public:
  /// Borrows `client` (not owned); one coordinator per routing client.
  MergeCoordinator(const ldp::ScalarFrequencyOracle& oracle,
                   PartitionRoutingClient* client)
      : oracle_(oracle), client_(client) {}

  /// Closes `round_id` on every endpoint and returns the merged,
  /// calibrated round result. `calibration` is applied *after* the merge
  /// (endpoints always close with Calibration::kNone); kNone returns the
  /// merged raw supports. Tallies and dummy accounting sum across
  /// partitions; the spot check passes only if every partition's does.
  /// The merged stats keep only the row/batch totals — per-endpoint
  /// timing lives on the endpoints.
  ///
  /// With the routing client's auto_recover on, a retryable failure
  /// while closing any partition (send, read, or a connection that died
  /// between the last batch and the finish) triggers the same recovery
  /// dance as SendBatch, then re-sends kFinish — the endpoint serves a
  /// re-finish for an already-closed round from its result stash, so a
  /// coordinator that crashed mid-read still converges. On budget
  /// exhaustion the round fails cleanly: the error message embeds the
  /// RoundHealth report and last_round_health() returns it structured.
  Result<RoundResult> FinishRound(uint64_t round_id, uint64_t n,
                                  uint64_t n_fake, Calibration calibration);

  /// Health report of the most recent FinishRound call (success or
  /// failure) — which partitions recovered, which died, attempts spent,
  /// and the watermark each dead endpoint had reached.
  const RoundHealth& last_round_health() const { return last_health_; }

 private:
  const ldp::ScalarFrequencyOracle& oracle_;
  PartitionRoutingClient* client_;
  RoundHealth last_health_;
};

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_COORDINATOR_H_

#include "service/fault_injection.h"

namespace shuffledp {
namespace service {

namespace {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kConnect:
      return "connect";
    case FaultOp::kAccept:
      return "accept";
    case FaultOp::kSend:
      return "send";
    case FaultOp::kRecv:
      return "recv";
  }
  return "?";
}

void FaultInjector::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(RuleState{rule, 0});
}

FaultAction FaultInjector::Evaluate(FaultOp op, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultAction chosen = FaultAction::None();
  for (RuleState& state : rules_) {
    const FaultRule& rule = state.rule;
    if (rule.op != op) continue;
    if (rule.port != 0 && rule.port != port) continue;
    const uint64_t ordinal = state.matched++;
    if (ordinal < rule.skip || ordinal - rule.skip >= rule.count) continue;
    // The probability draw happens for every eligible call — even when
    // an earlier rule already armed — so adding a rule never perturbs
    // another rule's deterministic firing pattern.
    const bool fires = rule.probability >= 1.0 ||
                       rng_.UniformDouble() < rule.probability;
    if (fires && chosen.kind == FaultAction::Kind::kNone) {
      chosen = rule.action;
    }
  }
  if (chosen.kind != FaultAction::Kind::kNone) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    injected_by_op_[static_cast<size_t>(op)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return chosen;
}

FaultInjector* SetFaultInjector(FaultInjector* injector) {
  return g_injector.exchange(injector, std::memory_order_acq_rel);
}

FaultInjector* GetFaultInjector() {
  return g_injector.load(std::memory_order_acquire);
}

}  // namespace service
}  // namespace shuffledp

#include "service/fault_injection.h"

#include <thread>

namespace shuffledp {
namespace service {

namespace {
std::atomic<FaultInjector*> g_injector{nullptr};
/// In-flight EvaluateInstalledFault calls. SetFaultInjector waits for
/// this to drain after swapping the hook, so a test that uninstalls can
/// immediately destroy its injector even while transport threads are
/// mid-syscall — without the wait, a reader thread that loaded the hook
/// just before the swap would race the destructor. seq_cst on both
/// sides closes the store/load reordering window (Dekker pattern);
/// these are test-only paths, the production fast path below is
/// untouched.
std::atomic<int64_t> g_evaluating{0};
}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kConnect:
      return "connect";
    case FaultOp::kAccept:
      return "accept";
    case FaultOp::kSend:
      return "send";
    case FaultOp::kRecv:
      return "recv";
    case FaultOp::kFileWrite:
      return "file-write";
    case FaultOp::kFileSync:
      return "fsync";
    case FaultOp::kFileRename:
      return "rename";
    case FaultOp::kFileUnlink:
      return "unlink";
  }
  return "?";
}

void FaultInjector::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(RuleState{rule, 0});
}

void FaultInjector::ArmStorageKill(uint64_t after_ops, int err) {
  std::lock_guard<std::mutex> lock(mu_);
  kill_armed_ = true;
  kill_after_ops_ = after_ops;
  kill_err_ = err;
}

FaultAction FaultInjector::Evaluate(FaultOp op, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (IsStorageFaultOp(op)) {
    const uint64_t ordinal =
        storage_calls_.fetch_add(1, std::memory_order_relaxed);
    if (kill_armed_ && ordinal >= kill_after_ops_) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      injected_by_op_[static_cast<size_t>(op)].fetch_add(
          1, std::memory_order_relaxed);
      return FaultAction::FailErrno(kill_err_);
    }
  }
  FaultAction chosen = FaultAction::None();
  for (RuleState& state : rules_) {
    const FaultRule& rule = state.rule;
    if (rule.op != op) continue;
    if (rule.port != 0 && rule.port != port) continue;
    const uint64_t ordinal = state.matched++;
    if (ordinal < rule.skip || ordinal - rule.skip >= rule.count) continue;
    // The probability draw happens for every eligible call — even when
    // an earlier rule already armed — so adding a rule never perturbs
    // another rule's deterministic firing pattern.
    const bool fires = rule.probability >= 1.0 ||
                       rng_.UniformDouble() < rule.probability;
    if (fires && chosen.kind == FaultAction::Kind::kNone) {
      chosen = rule.action;
    }
  }
  if (chosen.kind != FaultAction::Kind::kNone) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    injected_by_op_[static_cast<size_t>(op)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return chosen;
}

FaultAction EvaluateInstalledFault(FaultOp op, uint16_t port) {
  // Production fast path: one atomic load, no pin traffic.
  if (g_injector.load(std::memory_order_acquire) == nullptr) {
    return FaultAction::None();
  }
  g_evaluating.fetch_add(1, std::memory_order_seq_cst);
  FaultInjector* injector = g_injector.load(std::memory_order_seq_cst);
  FaultAction action =
      injector ? injector->Evaluate(op, port) : FaultAction::None();
  g_evaluating.fetch_sub(1, std::memory_order_seq_cst);
  return action;
}

FaultInjector* SetFaultInjector(FaultInjector* injector) {
  FaultInjector* previous =
      g_injector.exchange(injector, std::memory_order_seq_cst);
  // Drain evaluations that pinned before the swap: once this returns,
  // no thread can still be inside the previous injector.
  while (g_evaluating.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  return previous;
}

FaultInjector* GetFaultInjector() {
  return g_injector.load(std::memory_order_acquire);
}

}  // namespace service
}  // namespace shuffledp

// Deterministic scripted fault injection for the transport tier.
//
// The chaos tests need to prove statements like "a fleet round survives
// one endpoint dying mid-round and another running slow, bitwise" and
// "a permanently dead endpoint fails the round inside its deadline" —
// and they need those runs to be *reproducible*, because a flaky chaos
// test is worse than none. So faults are not random monkey-patching:
// they are a scripted schedule of rules evaluated at the four transport
// syscall sites (connect / accept / send / recv), each rule matched by
// operation + TCP port + call ordinal, with any probabilistic firing
// drawn from a seeded Rng so the same seed replays the same schedule.
//
// The hook is a process-global pointer that is null in production: the
// fast path is one relaxed atomic load per syscall. Tests install an
// injector (ScopedFaultInjector), drive the scenario, and uninstall it;
// the transport never behaves differently unless something was
// installed.
//
// What rules can do:
//   kFailErrno      the syscall fails with the scripted errno without
//                   running (refused connects, resets, EPIPE).
//   kDelayMs        sleep before the syscall (slow peers, congested
//                   links); the per-operation deadline keeps ticking,
//                   so a large-enough delay exercises the timeout path.
//   kTruncateSend   cap one send() at N bytes (torn writes: the peer's
//                   frame decoder must reassemble or the CRC must
//                   catch it). Chain with a kFailErrno rule to model
//                   "close after N bytes".
//
// Rules fire on the Nth..(N+count)th matching call (skip/count), so a
// schedule like "partition 1's sends succeed 3 times, then the
// connection resets, then the restarted endpoint accepts" is three
// rules, not a coin flip.

#ifndef SHUFFLEDP_SERVICE_FAULT_INJECTION_H_
#define SHUFFLEDP_SERVICE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "util/rng.h"

namespace shuffledp {
namespace service {

/// Syscall sites that consult the injector: the four transport sites
/// plus the four storage sites the durable round store writes through
/// (WAL appends, checkpoint/segment staging, fsync barriers, atomic
/// renames, segment unlinks). Storage sites pass port 0; rules
/// targeting them should leave `port` at 0 (match any).
enum class FaultOp : uint8_t {
  kConnect = 0,
  kAccept = 1,
  kSend = 2,
  kRecv = 3,
  kFileWrite = 4,
  kFileSync = 5,
  kFileRename = 6,
  kFileUnlink = 7,
};

inline constexpr size_t kNumFaultOps = 8;

/// True for the storage sites (kFileWrite/kFileSync/kFileRename/
/// kFileUnlink).
inline bool IsStorageFaultOp(FaultOp op) {
  return op == FaultOp::kFileWrite || op == FaultOp::kFileSync ||
         op == FaultOp::kFileRename || op == FaultOp::kFileUnlink;
}

const char* FaultOpName(FaultOp op);

/// What an armed rule does to the matched call.
struct FaultAction {
  enum class Kind : uint8_t {
    kNone = 0,          ///< pass through untouched
    kFailErrno = 1,     ///< fail with `err` before the syscall runs
    kDelayMs = 2,       ///< sleep `delay_ms`, then run normally
    kTruncateSend = 3,  ///< cap this send() at `max_bytes` bytes
  };
  Kind kind = Kind::kNone;
  int err = 0;
  uint64_t delay_ms = 0;
  uint64_t max_bytes = 0;

  static FaultAction None() { return {}; }
  static FaultAction FailErrno(int err) {
    FaultAction a;
    a.kind = Kind::kFailErrno;
    a.err = err;
    return a;
  }
  static FaultAction DelayMs(uint64_t ms) {
    FaultAction a;
    a.kind = Kind::kDelayMs;
    a.delay_ms = ms;
    return a;
  }
  static FaultAction TruncateSend(uint64_t max_bytes) {
    FaultAction a;
    a.kind = Kind::kTruncateSend;
    // Clamp to >= 1: a 0-byte cap would make the transport call
    // ::send(fd, p, 0), whose 0 return is indistinguishable from a
    // send failure and would be mislabeled with a stale errno. The
    // smallest expressible torn write is 1 byte.
    a.max_bytes = max_bytes == 0 ? 1 : max_bytes;
    return a;
  }
};

/// One scripted fault: fires on matching (op, port) calls numbered
/// [skip, skip + count) — the match counter is per rule — with
/// probability `probability` per eligible call (sampled from the
/// injector's seeded stream, so a fixed seed replays the exact firing
/// pattern).
struct FaultRule {
  FaultOp op = FaultOp::kSend;
  /// TCP port the operation targets: the server's listening port for
  /// every site (clients match the port they dial; server-side accept/
  /// recv/send match the endpoint's own port). 0 matches any port.
  uint16_t port = 0;
  uint64_t skip = 0;
  uint64_t count = std::numeric_limits<uint64_t>::max();
  double probability = 1.0;
  FaultAction action;
};

/// Scripted, seeded fault schedule. Thread-safe: transport threads
/// evaluate concurrently; rule matching and the jitter stream are
/// serialized under one mutex (these are test paths — determinism
/// outranks contention).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0xFA17ULL) : rng_(seed) {}

  /// Appends a rule; earlier rules win when several match one call.
  void AddRule(const FaultRule& rule);

  /// Consults the schedule for one syscall. Every matching rule's
  /// counter advances; the first armed one supplies the action.
  FaultAction Evaluate(FaultOp op, uint16_t port);

  /// Arms the storage kill switch: the `after_ops`-th and every later
  /// storage-site evaluation (kFileWrite/kFileSync/kFileRename share
  /// one global counter) fails with `err`, overriding the rule list.
  /// This is how the crash-point harness simulates a process dying at
  /// one exact point in the fsync-barrier timeline — after the kill
  /// point, *nothing* reaches disk, exactly as after a real crash.
  void ArmStorageKill(uint64_t after_ops, int err);

  /// Total actions injected (diagnostics / test assertions).
  uint64_t injected() const { return injected_.load(std::memory_order_relaxed); }
  /// Injected actions at one site.
  uint64_t injected(FaultOp op) const {
    return injected_by_op_[static_cast<size_t>(op)].load(
        std::memory_order_relaxed);
  }
  /// Total storage-site evaluations (fault-free counting runs use this
  /// to enumerate the crash points ArmStorageKill can target).
  uint64_t storage_evaluations() const {
    return storage_calls_.load(std::memory_order_relaxed);
  }

 private:
  struct RuleState {
    FaultRule rule;
    uint64_t matched = 0;  ///< matching calls seen so far
  };

  std::mutex mu_;
  Rng rng_;
  std::vector<RuleState> rules_;
  bool kill_armed_ = false;
  uint64_t kill_after_ops_ = 0;
  int kill_err_ = 0;
  std::atomic<uint64_t> injected_{0};
  std::atomic<uint64_t> storage_calls_{0};
  std::atomic<uint64_t> injected_by_op_[kNumFaultOps] = {{0}, {0}, {0}, {0},
                                                         {0}, {0}, {0}, {0}};
};

/// Evaluates the installed hook for one syscall site — what the
/// transport calls on every connect/accept/send/recv. Returns None when
/// no hook is installed (the production state: one atomic load). The
/// evaluation is pinned against SetFaultInjector, so the injector
/// cannot be swapped out (and destroyed) mid-evaluate.
FaultAction EvaluateInstalledFault(FaultOp op, uint16_t port);

/// Installs `injector` as the process-global transport hook (null
/// uninstalls). Blocks until every in-flight EvaluateInstalledFault on
/// the previous hook has drained: after uninstalling, the caller may
/// destroy the injector immediately, even with transport threads still
/// running. Returns the previous hook.
FaultInjector* SetFaultInjector(FaultInjector* injector);

/// The installed hook, or null (the production state) — for tests that
/// assert install state; the transport goes through
/// EvaluateInstalledFault.
FaultInjector* GetFaultInjector();

/// RAII install/uninstall for tests.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector)
      : previous_(SetFaultInjector(injector)) {}
  ~ScopedFaultInjector() { SetFaultInjector(previous_); }

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_FAULT_INJECTION_H_

#include "service/partition.h"

#include <algorithm>

namespace shuffledp {
namespace service {

Result<PartitionMap> PartitionMap::Create(
    const ldp::ScalarFrequencyOracle& oracle, PartitionMode mode,
    uint32_t partitions) {
  if (partitions == 0) {
    return Status::InvalidArgument("partition map: need >= 1 partition");
  }
  if (partitions > 0xFFFF) {
    // The frame header carries the partition id as a u16; a map the wire
    // cannot express must fail here, not as a garbled handshake later.
    return Status::InvalidArgument(
        "partition map: " + std::to_string(partitions) +
        " partitions exceeds the u16 wire field");
  }
  const uint64_t d = oracle.domain_size();
  if (mode == PartitionMode::kByValue) {
    if (!oracle.SupportIsValueEquality()) {
      return Status::InvalidArgument(
          "kByValue partitioning requires a value-equality oracle (" +
          oracle.Name() +
          " reports support values across the whole domain; use kByClient)");
    }
    if (partitions > d) {
      return Status::InvalidArgument(
          "partition map: more partitions than domain values");
    }
  }
  PartitionMap map;
  map.mode_ = mode;
  map.partitions_ = partitions;
  map.domain_size_ = d;
  map.packed_bits_ = oracle.PackedBits();
  return map;
}

PartitionSlice PartitionMap::SliceOf(uint32_t p) const {
  PartitionSlice slice;
  slice.index = p;
  slice.count = partitions_;
  if (mode_ == PartitionMode::kByValue && domain_size_ > 0) {
    slice.lo = domain_size_ * p / partitions_;
    slice.hi = domain_size_ * (p + 1) / partitions_;
  }
  return slice;
}

uint32_t PartitionMap::OwnerOfOrdinal(uint64_t ordinal) const {
  if (partitions_ <= 1) return 0;
  if (mode_ == PartitionMode::kByValue && ordinal < domain_size_) {
    // Inverse of the floor(d·p/P) range formula, corrected by at most one
    // boundary step (same idiom as ShardedSupportCounter's histogram path).
    uint64_t p = ordinal * partitions_ / domain_size_;
    while (ordinal < domain_size_ * p / partitions_) --p;
    while (ordinal >= domain_size_ * (p + 1) / partitions_) ++p;
    return static_cast<uint32_t>(p);
  }
  // Padding-region ordinals (and every ordinal under kByClient routing —
  // though kByClient batches route whole) spread by residue.
  return static_cast<uint32_t>(ordinal % partitions_);
}

uint32_t PartitionMap::OwnerOfBatch(uint64_t batch_index) const {
  return partitions_ <= 1
             ? 0
             : static_cast<uint32_t>(batch_index % partitions_);
}

std::vector<std::vector<uint64_t>> PartitionMap::Route(
    uint64_t batch_index, const std::vector<uint64_t>& ordinals) const {
  std::vector<std::vector<uint64_t>> groups(partitions_);
  if (partitions_ <= 1) {
    groups[0] = ordinals;
    return groups;
  }
  if (mode_ == PartitionMode::kByClient) {
    groups[OwnerOfBatch(batch_index)] = ordinals;
    return groups;
  }
  for (uint64_t ordinal : ordinals) {
    groups[OwnerOfOrdinal(ordinal)].push_back(ordinal);
  }
  return groups;
}

Result<std::vector<uint64_t>> PartitionMap::MergeSupports(
    const std::vector<std::vector<uint64_t>>& parts) const {
  if (parts.size() != partitions_) {
    return Status::InvalidArgument(
        "merge-of-supports: expected " + std::to_string(partitions_) +
        " parts, got " + std::to_string(parts.size()));
  }
  std::vector<uint64_t> merged;
  if (mode_ == PartitionMode::kByValue) {
    merged.reserve(domain_size_);
    for (uint32_t p = 0; p < partitions_; ++p) {
      const PartitionSlice slice = SliceOf(p);
      if (parts[p].size() != slice.hi - slice.lo) {
        return Status::InvalidArgument(
            "merge-of-supports: partition " + std::to_string(p) +
            " returned " + std::to_string(parts[p].size()) +
            " supports for a slice of " +
            std::to_string(slice.hi - slice.lo));
      }
      merged.insert(merged.end(), parts[p].begin(), parts[p].end());
    }
    return merged;
  }
  merged.assign(domain_size_, 0);
  for (uint32_t p = 0; p < partitions_; ++p) {
    if (parts[p].size() != domain_size_) {
      return Status::InvalidArgument(
          "merge-of-supports: partition " + std::to_string(p) +
          " returned " + std::to_string(parts[p].size()) +
          " supports for a domain of " + std::to_string(domain_size_));
    }
    for (uint64_t v = 0; v < domain_size_; ++v) merged[v] += parts[p][v];
  }
  return merged;
}

std::string PartitionMap::ToString() const {
  return std::string(mode_ == PartitionMode::kByValue ? "by-value"
                                                      : "by-client") +
         "/" + std::to_string(partitions_) + " over d=" +
         std::to_string(domain_size_);
}

Bytes SerializePartitionMap(const PartitionMap& map) {
  ByteWriter w(16);
  w.PutU8(static_cast<uint8_t>(map.mode_));
  w.PutVarint(map.partitions_);
  w.PutVarint(map.domain_size_);
  w.PutU8(static_cast<uint8_t>(map.packed_bits_));
  return w.Release();
}

Result<PartitionMap> ParsePartitionMap(const Bytes& payload) {
  ByteReader r(payload);
  return ParsePartitionMap(&r);
}

Result<PartitionMap> ParsePartitionMap(ByteReader* reader) {
  ByteReader& r = *reader;
  SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t mode, r.GetU8());
  if (mode > static_cast<uint8_t>(PartitionMode::kByClient)) {
    return Status::ProtocolViolation("unknown partition mode " +
                                     std::to_string(mode));
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t partitions, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t domain, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t bits, r.GetU8());
  if (partitions == 0 || partitions > 0xFFFF) {
    return Status::ProtocolViolation("partition count out of range");
  }
  if (bits > 64) {
    return Status::ProtocolViolation("packed bits out of range");
  }
  PartitionMap map;
  map.mode_ = static_cast<PartitionMode>(mode);
  map.partitions_ = static_cast<uint32_t>(partitions);
  map.domain_size_ = domain;
  map.packed_bits_ = bits;
  return map;
}

}  // namespace service
}  // namespace shuffledp

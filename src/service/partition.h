// Partition-aware collection: the value-domain / client partitioning
// shared by clients, endpoints, and the merge coordinator.
//
// The shuffler-side aggregates of both protocols are per-value integer
// tallies — associative and order-independent — so a single collector
// scales out by partitioning the work across endpoint instances and
// merging supports deterministically afterwards. A PartitionMap is the
// contract every party agrees on:
//
//   kByValue   the ordinal space is cut into contiguous value ranges
//              (the same floor(d·p/P) formula ShardedSupportCounter
//              uses); endpoint p owns values [lo_p, hi_p) and counts
//              supports only over its slice. Requires an oracle whose
//              support test is value equality (GRR): a report touches
//              exactly one partition's counters. Merge = concatenate
//              the P slices in partition order.
//   kByClient  whole producer batches are assigned round-robin
//              (batch_index mod P); every endpoint counts supports over
//              the full domain from its subset of clients. Works for
//              every oracle (SOLH reports support values across the
//              whole domain, so value ranges cannot route them).
//              Merge = element-wise sum in partition order.
//
// Either way the merged supports equal the single-node supports over the
// union multiset of reports — integer addition commutes — which is why
// the coordinator can demand bitwise identity with the single-node path.
// Calibration/estimation runs only *after* the merge: the privacy
// guarantee (and the unbiased estimator) is a property of the whole
// shuffled population, not of any one partition (Wang et al.'s unified
// amplification analysis), so averaging per-node estimates would be both
// statistically and semantically wrong.
//
// The map travels in the kHello handshake frame (transport.h) so an
// endpoint can reject clients configured with a different layout, and
// every data frame carries its target partition id in the header — a
// batch for a partition the endpoint does not own is a protocol
// violation, not a silent miscount.

#ifndef SHUFFLEDP_SERVICE_PARTITION_H_
#define SHUFFLEDP_SERVICE_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {
namespace service {

enum class PartitionMode : uint8_t {
  kByValue = 0,   ///< contiguous ordinal-value ranges (value-equality oracles)
  kByClient = 1,  ///< round-robin batch assignment, full-domain counters
};

/// The domain slice one partition worker owns. `lo == hi == 0` means the
/// full domain (the single-node default).
struct PartitionSlice {
  uint32_t index = 0;  ///< partition id in [0, count)
  uint32_t count = 1;  ///< total partitions
  uint64_t lo = 0;     ///< first owned value (kByValue); 0 otherwise
  uint64_t hi = 0;     ///< one past the last owned value; 0 = full domain

  bool full_domain() const { return lo == 0 && hi == 0; }
};

/// The partition layout every party must agree on. Immutable value type;
/// compare with == before trusting a peer's frames.
class PartitionMap {
 public:
  /// Single-node layout: one partition owning everything.
  PartitionMap() = default;

  /// Splits `oracle`'s collection across `partitions` endpoints.
  /// kByValue requires oracle.SupportIsValueEquality() (the routing
  /// invariant "a report touches one partition" fails otherwise — use
  /// kByClient for SOLH and friends).
  static Result<PartitionMap> Create(const ldp::ScalarFrequencyOracle& oracle,
                                     PartitionMode mode, uint32_t partitions);

  PartitionMode mode() const { return mode_; }
  uint32_t partitions() const { return partitions_; }
  uint64_t domain_size() const { return domain_size_; }
  unsigned packed_bits() const { return packed_bits_; }

  /// The slice partition `p` owns: kByValue gives [floor(d·p/P),
  /// floor(d·(p+1)/P)); kByClient gives the full domain.
  PartitionSlice SliceOf(uint32_t p) const;

  /// Owner of a packed ordinal (kByValue maps). Real values route to
  /// their range owner; padding-region ordinals (>= d) route to
  /// `ordinal mod P` so the fake blanket spreads deterministically and
  /// every ordinal has exactly one home.
  uint32_t OwnerOfOrdinal(uint64_t ordinal) const;

  /// Owner of producer batch `batch_index` (kByClient maps).
  uint32_t OwnerOfBatch(uint64_t batch_index) const;

  /// Splits one producer batch into `partitions()` per-endpoint ordinal
  /// groups, order-preserving: kByValue scatters by OwnerOfOrdinal,
  /// kByClient hands the whole batch to OwnerOfBatch(batch_index) and
  /// leaves the other groups empty. Every endpoint receives a (possibly
  /// empty) group for every producer batch, so per-endpoint batch
  /// indices stay equal to producer batch indices — the alignment crash
  /// recovery replays against.
  std::vector<std::vector<uint64_t>> Route(
      uint64_t batch_index, const std::vector<uint64_t>& ordinals) const;

  /// Deterministic merge-of-supports in partition order: kByValue
  /// concatenates the slices, kByClient sums element-wise. Fails when a
  /// part's length does not match its slice.
  Result<std::vector<uint64_t>> MergeSupports(
      const std::vector<std::vector<uint64_t>>& parts) const;

  bool operator==(const PartitionMap& o) const {
    return mode_ == o.mode_ && partitions_ == o.partitions_ &&
           domain_size_ == o.domain_size_ && packed_bits_ == o.packed_bits_;
  }
  bool operator!=(const PartitionMap& o) const { return !(*this == o); }

  std::string ToString() const;

 private:
  PartitionMode mode_ = PartitionMode::kByValue;
  uint32_t partitions_ = 1;
  uint64_t domain_size_ = 0;  ///< 0 = unbound single-node default
  unsigned packed_bits_ = 0;

  friend Bytes SerializePartitionMap(const PartitionMap& map);
  friend Result<PartitionMap> ParsePartitionMap(ByteReader* r);
};

/// kHello payload codec: u8 mode, varint partitions, varint domain size,
/// u8 packed bits (spec in docs/WIRE_FORMAT.md §2). The reader overload
/// leaves trailing payload bytes (the handshake's partition id) unread.
Bytes SerializePartitionMap(const PartitionMap& map);
Result<PartitionMap> ParsePartitionMap(ByteReader* r);
Result<PartitionMap> ParsePartitionMap(const Bytes& payload);

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_PARTITION_H_

#include "service/partition_worker.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

#include "ldp/estimator.h"
#include "service/retry.h"

namespace shuffledp {
namespace service {

std::string StreamingStats::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "batches=%llu rows=%llu rows_aggregated=%llu "
                "backpressure_waits=%llu queue_high_water=%llu busy=%.3fs "
                "decode=%.3fs support_eval=%.3fs wall=%.3fs rate=%.0f rows/s",
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(rows),
                static_cast<unsigned long long>(rows_aggregated),
                static_cast<unsigned long long>(backpressure_waits),
                static_cast<unsigned long long>(queue_high_water),
                busy_seconds, decode_seconds, support_eval_seconds,
                wall_seconds, rows_per_second);
  return buf;
}

ReportBatch MakePlainBatch(std::vector<ldp::LdpReport> reports) {
  auto shared =
      std::make_shared<std::vector<ldp::LdpReport>>(std::move(reports));
  ReportBatch batch;
  batch.count = shared->size();
  batch.decode = [shared](uint64_t i) -> Result<DecodedRow> {
    DecodedRow row;
    row.valid = true;
    row.report = (*shared)[i];
    return row;
  };
  return batch;
}

RoundResult FinalizeRoundResult(const ldp::ScalarFrequencyOracle& oracle,
                                std::vector<uint64_t> supports,
                                uint64_t n, uint64_t n_fake,
                                Calibration calibration,
                                uint64_t reports_decoded,
                                uint64_t reports_invalid,
                                uint64_t dummies_recognized,
                                uint64_t dummies_expected) {
  RoundResult result;
  result.supports = std::move(supports);
  switch (calibration) {
    case Calibration::kStandard:
      result.estimates = ldp::CalibrateEstimates(oracle, result.supports, n,
                                                 n_fake);
      break;
    case Calibration::kOrdinal:
      result.estimates = ldp::CalibrateEstimatesOrdinal(
          oracle, result.supports, n, n_fake);
      break;
    case Calibration::kNone:
      break;  // raw supports for the merge coordinator
  }
  result.reports_decoded = reports_decoded;
  result.reports_invalid = reports_invalid;
  result.dummies_recognized = dummies_recognized;
  result.dummies_expected = dummies_expected;
  result.spot_check_passed = dummies_recognized == dummies_expected;
  return result;
}

PartitionWorker::PartitionWorker(const ldp::ScalarFrequencyOracle& oracle,
                                 StreamingOptions options)
    : oracle_(oracle),
      options_(options),
      queue_(options.queue_capacity) {
  if (options_.pool != nullptr && options_.pool->InWorkerThread()) {
    // Constructed from one of the pool's own workers (a protocol run
    // nested inside a pool task): the consumer's decode/count fan-out
    // would wait on pool slots the blocked caller occupies — a deadlock
    // once the caller parks in Push()/FinishRound(). Degrade to serial
    // processing on the consumer thread, which always makes progress.
    options_.pool = nullptr;
  }
  slice_ = options_.partition;
  if (slice_.full_domain()) {
    slice_.lo = 0;
    slice_.hi = oracle_.domain_size();
  }
  counter_ = std::make_unique<ShardedSupportCounter>(
      oracle_, options_.num_shards, slice_.lo, slice_.hi);
  drain_counter_ = std::make_unique<ShardedSupportCounter>(
      oracle_, options_.num_shards, slice_.lo, slice_.hi);
  if (options_.store != nullptr) {
    store_ = options_.store;
  } else {
    RoundStoreOptions store_options = options_.round_store;
    store_options.partition_index = slice_.index;
    store_options.partition_count = slice_.count;
    store_options.slice_lo = slice_.lo;
    store_options.slice_width = slice_.hi - slice_.lo;
    Result<std::shared_ptr<RoundStore>> store =
        OpenRoundStore(store_options, options_.checkpoint);
    if (store.ok()) {
      store_ = std::move(*store);
    } else {
      // The operator asked for durability and the store refused to open
      // (corrupt WAL, wrong slice identity, unreachable directory):
      // poison the pipeline now so the first Offer reports it, instead
      // of ingesting a round that silently cannot persist.
      round_status_ = store.status();
      queue_.Close();
    }
  }
  track_support_shadow_ =
      store_ != nullptr && store_->WantsDeltas() && !counter_->value_equality();
  ResetRoundTallies();
  // The consumer spawns lazily on the first Offer (EnsureConsumer), so a
  // constructed-but-unused worker does not park an idle thread.
}

PartitionWorker::~PartitionWorker() {
  queue_.Close();
  if (consumer_.joinable()) consumer_.join();
  // The last round's finalize task may still run on the pool; it touches
  // the drain counter and its promise, so wait it out before members die.
  if (drain_done_.valid()) drain_done_.wait();
}

void PartitionWorker::ResetRoundTallies() {
  rows_seen_ = 0;
  batches_seen_ = 0;
  reports_decoded_ = 0;
  reports_invalid_ = 0;
  dummies_recognized_ = 0;
  rows_aggregated_ = 0;
  busy_seconds_ = 0.0;
  decode_seconds_ = 0.0;
  support_eval_seconds_ = 0.0;
  dummies_expected_ = 0;
  dummy_multiset_.clear();
  durability_degraded_ = false;
  durability_warning_.clear();
  degraded_flag_.store(false, std::memory_order_relaxed);
  if (track_support_shadow_) {
    persisted_supports_.assign(slice_.hi - slice_.lo, 0);
  }
  waits_at_round_start_ = queue_.producer_waits();
  queue_.ResetHighWaterMark();
  round_timer_.Reset();
}

void PartitionWorker::EnsureConsumer() {
  std::lock_guard<std::mutex> lock(consumer_mu_);
  if (!consumer_.joinable()) {
    consumer_ = std::thread([this] { ConsumerLoop(); });
  }
}

void PartitionWorker::ExpectDummy(const ldp::LdpReport& report,
                                  uint64_t tag) {
  ExpectDummies({{report, tag}});
}

void PartitionWorker::ExpectDummies(
    const std::vector<std::pair<ldp::LdpReport, uint64_t>>& dummies) {
  if (dummies.empty()) return;
  EnsureConsumer();
  WorkItem item;
  item.dummies.reserve(dummies.size());
  for (const auto& [report, tag] : dummies) {
    item.dummies.emplace_back(ldp::PackReport(report), tag);
  }
  queue_.Push(std::move(item));  // a closed (failed) pipeline drops it;
                                 // the next Offer reports the error
}

Status PartitionWorker::Offer(ReportBatch batch) {
  EnsureConsumer();
  WorkItem item;
  item.batch = std::move(batch);
  if (!queue_.Push(std::move(item))) {
    // The queue only rejects after Close(): a processing failure shut the
    // pipeline down (or the worker is being destroyed).
    Status error = PipelineError();
    if (!error.ok()) return error;
    return Status::FailedPrecondition(
        "partition worker: pipeline is shut down");
  }
  return Status::OK();
}

Status PartitionWorker::OfferReports(
    const std::vector<ldp::LdpReport>& reports) {
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);
  for (size_t lo = 0; lo < reports.size(); lo += batch_size) {
    size_t hi = std::min(reports.size(), lo + batch_size);
    SHUFFLEDP_RETURN_NOT_OK(
        Offer(MakePlainBatch({reports.begin() + lo, reports.begin() + hi})));
  }
  return Status::OK();
}

Status PartitionWorker::OfferIndexed(
    uint64_t total, std::function<Result<DecodedRow>(uint64_t row)> decode) {
  return OfferIndexedPrepared(total, nullptr, std::move(decode));
}

Status PartitionWorker::OfferIndexedPrepared(
    uint64_t total,
    std::function<Status(uint64_t lo, uint64_t hi, ThreadPool* pool)>
        prepare,
    std::function<Result<DecodedRow>(uint64_t row)> decode) {
  const uint64_t batch_size = std::max<size_t>(1, options_.batch_size);
  for (uint64_t lo = 0; lo < total; lo += batch_size) {
    const uint64_t hi = std::min(total, lo + batch_size);
    ReportBatch batch;
    batch.count = hi - lo;
    if (prepare) {
      batch.prepare = [prepare, lo, hi](ThreadPool* pool) {
        return prepare(lo, hi, pool);
      };
    }
    batch.decode = [decode, lo](uint64_t i) { return decode(lo + i); };
    SHUFFLEDP_RETURN_NOT_OK(Offer(std::move(batch)));
  }
  return Status::OK();
}

std::future<Result<RoundResult>> PartitionWorker::CloseRound(
    uint64_t n, uint64_t n_fake, Calibration calibration) {
  EnsureConsumer();
  auto close = std::make_shared<RoundClose>();
  close->n = n;
  close->n_fake = n_fake;
  close->calibration = calibration;
  std::future<Result<RoundResult>> future = close->promise.get_future();
  WorkItem item;
  item.close = close;
  if (!queue_.Push(std::move(item))) {
    Status error = PipelineError();
    close->promise.set_value(
        error.ok() ? Status::FailedPrecondition(
                         "partition worker: pipeline is shut down")
                   : error);
  }
  return future;
}

Result<RoundResult> PartitionWorker::FinishRound(uint64_t n,
                                                 uint64_t n_fake,
                                                 Calibration calibration) {
  Result<RoundResult> result = CloseRound(n, n_fake, calibration).get();
  if (!result.ok()) ResetAfterError();
  return result;
}

Result<uint64_t> PartitionWorker::RecoverRound(
    const CheckpointState& state) {
  {
    std::lock_guard<std::mutex> lock(consumer_mu_);
    if (consumer_.joinable()) {
      return Status::FailedPrecondition(
          "RecoverRound requires a fresh worker (nothing offered yet)");
    }
  }
  if (state.partition_index != slice_.index ||
      state.partition_count != slice_.count || state.slice_lo != slice_.lo) {
    return Status::FailedPrecondition(
        "checkpoint belongs to partition " +
        std::to_string(state.partition_index) + "/" +
        std::to_string(state.partition_count) + " (slice lo " +
        std::to_string(state.slice_lo) + "), not this worker's " +
        std::to_string(slice_.index) + "/" + std::to_string(slice_.count));
  }
  SHUFFLEDP_RETURN_NOT_OK(counter_->Restore(state.supports));
  if (track_support_shadow_) persisted_supports_ = state.supports;
  rows_seen_ = state.rows_seen;
  batches_seen_ = state.batches_consumed;
  reports_decoded_ = state.reports_decoded;
  reports_invalid_ = state.reports_invalid;
  dummies_recognized_ = state.dummies_recognized;
  dummies_expected_ = state.dummies_expected;
  dummy_multiset_ = state.dummies_remaining;
  round_id_.store(state.round_id, std::memory_order_relaxed);
  return state.batches_consumed;
}

Result<RoundResult> PartitionWorker::RecoverFinalizedRound(
    const RoundJournal& journal) {
  {
    std::lock_guard<std::mutex> lock(consumer_mu_);
    if (consumer_.joinable()) {
      return Status::FailedPrecondition(
          "RecoverFinalizedRound requires a fresh worker");
    }
  }
  if (journal.partition_index != slice_.index ||
      journal.partition_count != slice_.count ||
      journal.slice_lo != slice_.lo) {
    return Status::FailedPrecondition(
        "round journal belongs to a different partition");
  }
  if (journal.supports.size() != slice_.hi - slice_.lo) {
    return Status::InvalidArgument(
        "round journal supports do not match the owned slice");
  }
  if (journal.calibration > static_cast<uint8_t>(Calibration::kNone)) {
    return Status::InvalidArgument("round journal calibration out of range");
  }
  // The journaled round is closed; the worker resumes feeding the next
  // one. Replay = the same deterministic finalize/calibrate the drain
  // task would have run.
  round_id_.store(journal.round_id + 1, std::memory_order_relaxed);
  return FinalizeRoundResult(
      oracle_, journal.supports, journal.n, journal.n_fake,
      static_cast<Calibration>(journal.calibration), journal.reports_decoded,
      journal.reports_invalid, journal.dummies_recognized,
      journal.dummies_expected);
}

void PartitionWorker::ConsumerLoop() {
  WorkItem item;
  while (queue_.Pop(&item)) {
    if (item.close != nullptr) {
      ProcessRoundClose(item.close);
    } else if (!item.dummies.empty()) {
      if (!round_status_.ok()) continue;
      for (const auto& entry : item.dummies) {
        ++dummy_multiset_[entry];
        ++dummies_expected_;
      }
      if (store_ != nullptr && store_->WantsDeltas() &&
          !durability_degraded_) {
        // Registrations mutate the round's dummy multiset between
        // batches, so they are durable state too: one batch-free delta
        // record per registration item (batch_lo == batch_hi).
        RoundDelta delta;
        delta.round_id = round_id_.load(std::memory_order_relaxed);
        delta.batch_lo = batches_seen_;
        delta.batch_hi = batches_seen_;
        std::map<std::pair<uint64_t, uint64_t>, uint64_t> grouped;
        for (const auto& entry : item.dummies) ++grouped[entry];
        delta.dummies_registered.reserve(grouped.size());
        for (const auto& [key, count] : grouped) {
          delta.dummies_registered.emplace_back(key.first, key.second,
                                                count);
        }
        if (!PersistDelta(delta)) continue;
      }
    } else {
      if (!round_status_.ok()) continue;  // drain without processing
      ProcessBatch(item.batch);
    }
    item = WorkItem();  // release batch captures before blocking in Pop
  }
}

void PartitionWorker::FailRound(Status status) {
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    round_status_ = std::move(status);
  }
  // Unblock any producer stuck in Push; their Offer reports the error.
  queue_.Close();
}

Status PartitionWorker::PipelineError() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return round_status_;
}

CheckpointState PartitionWorker::BuildCheckpointState() {
  CheckpointState state;
  state.round_id = round_id_.load(std::memory_order_relaxed);
  state.partition_index = slice_.index;
  state.partition_count = slice_.count;
  state.slice_lo = slice_.lo;
  state.batches_consumed = batches_seen_;
  state.rows_seen = rows_seen_;
  state.reports_decoded = reports_decoded_;
  state.reports_invalid = reports_invalid_;
  state.dummies_recognized = dummies_recognized_;
  state.dummies_expected = dummies_expected_;
  state.supports = counter_->Finalize();
  for (const auto& [key, count] : dummy_multiset_) {
    if (count > 0) state.dummies_remaining.emplace(key, count);
  }
  return state;
}

void PartitionWorker::DegradeDurability(const Status& status) {
  durability_degraded_ = true;
  durability_warning_ = status.ToString();
  degraded_flag_.store(true, std::memory_order_relaxed);
}

bool PartitionWorker::PersistDelta(const RoundDelta& delta) {
  Status st = store_->AppendDelta(
      delta, [this] { return BuildCheckpointState(); });
  if (st.ok()) return true;
  if (IsDegradableStorageError(st)) {
    // Out of disk is not a reason to drop the round: finish it in
    // memory and let the result carry the durability warning.
    DegradeDurability(st);
    return true;
  }
  // Every other storage failure is a hard error — the operator asked
  // for durability, so continuing would be a silent downgrade.
  FailRound(st);
  return false;
}

void PartitionWorker::ProcessBatch(const ReportBatch& batch) {
  WallTimer timer;
  const uint64_t batch_lo = batches_seen_;
  const uint64_t invalid_before = reports_invalid_;
  ++batches_seen_;
  rows_seen_ += batch.count;

  if (batch.prepare) {
    Status prep_status = batch.prepare(options_.pool);
    if (!prep_status.ok()) {
      FailRound(prep_status);
      return;
    }
  }

  std::vector<DecodedRow> rows(batch.count);
  std::mutex status_mu;
  Status decode_status = Status::OK();
  std::atomic<bool> failed{false};
  ForChunks(options_.pool, 0, batch.count, options_.decode_chunk,
            [&](uint64_t lo, uint64_t hi) {
              for (uint64_t i = lo; i < hi; ++i) {
                // Stop burning crypto on rows whose batch already failed.
                if (failed.load(std::memory_order_relaxed)) return;
                auto row = batch.decode(i);
                if (!row.ok()) {
                  failed.store(true, std::memory_order_relaxed);
                  std::lock_guard<std::mutex> lock(status_mu);
                  if (decode_status.ok()) decode_status = row.status();
                  return;
                }
                rows[i] = std::move(row).value();
              }
            });
  if (!decode_status.ok()) {
    FailRound(decode_status);
    return;
  }

  const bool want_deltas = store_ != nullptr && store_->WantsDeltas() &&
                           !durability_degraded_;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> consumed_dummies;
  std::vector<ldp::LdpReport> kept;
  kept.reserve(rows.size());
  for (const DecodedRow& row : rows) {
    if (!row.valid || !oracle_.ValidateReport(row.report).ok()) {
      ++reports_invalid_;
      continue;
    }
    if (!dummy_multiset_.empty()) {
      auto it =
          dummy_multiset_.find({ldp::PackReport(row.report), row.tag});
      if (it != dummy_multiset_.end() && it->second > 0) {
        --it->second;
        ++dummies_recognized_;
        if (want_deltas) ++consumed_dummies[it->first];
        continue;  // server-planted dummy: strip before estimation
      }
    }
    kept.push_back(row.report);
  }
  reports_decoded_ += kept.size();
  // Split visibility: everything up to here (prepare, decode fan-out,
  // validation, dummy stripping) is decode cost; the AccumulateBatch
  // call is pure support accumulation — the two dominate SOLH and GRR
  // rounds respectively, and the bench reports them separately.
  const double decode_done = timer.ElapsedSeconds();
  counter_->AccumulateBatch(kept, options_.pool);
  const double batch_done = timer.ElapsedSeconds();
  decode_seconds_ += decode_done;
  support_eval_seconds_ += batch_done - decode_done;
  rows_aggregated_ += kept.size();
  busy_seconds_ += batch_done;

  if (store_ != nullptr && !durability_degraded_) {
    RoundDelta delta;
    delta.round_id = round_id_.load(std::memory_order_relaxed);
    delta.batch_lo = batch_lo;
    delta.batch_hi = batches_seen_;
    delta.rows_delta = batch.count;
    delta.decoded_delta = kept.size();
    delta.invalid_delta = reports_invalid_ - invalid_before;
    if (want_deltas) {
      if (counter_->value_equality()) {
        // Equality oracles support exactly the reported value: the
        // sparse delta is a histogram of the kept in-slice values,
        // mirroring the counter's own fast path.
        std::map<uint64_t, uint64_t> histogram;
        for (const ldp::LdpReport& report : kept) {
          if (report.value >= slice_.lo && report.value < slice_.hi) {
            ++histogram[report.value - slice_.lo];
          }
        }
        delta.support_deltas.assign(histogram.begin(), histogram.end());
      } else {
        // General oracles (hash-based) support many values per report:
        // diff the counter's contiguous counts view against the shadow
        // of what the store has already seen, updating the shadow in
        // place at the changed slots — no per-batch snapshot allocation.
        const std::vector<uint64_t>& current = counter_->counts();
        for (size_t i = 0; i < current.size(); ++i) {
          if (current[i] != persisted_supports_[i]) {
            delta.support_deltas.emplace_back(
                i, current[i] - persisted_supports_[i]);
            persisted_supports_[i] = current[i];
          }
        }
      }
      delta.dummies_consumed.reserve(consumed_dummies.size());
      for (const auto& [key, count] : consumed_dummies) {
        delta.dummies_consumed.emplace_back(key.first, key.second, count);
      }
    }
    PersistDelta(delta);
  }
}

void PartitionWorker::ProcessRoundClose(
    const std::shared_ptr<RoundClose>& close) {
  if (!round_status_.ok()) {
    close->promise.set_value(round_status_);
    return;
  }

  StreamingStats stats;
  stats.batches = batches_seen_;
  stats.rows = rows_seen_;
  stats.backpressure_waits =
      queue_.producer_waits() - waits_at_round_start_;
  stats.queue_high_water = queue_.high_water_mark();
  stats.busy_seconds = busy_seconds_;
  stats.rows_aggregated = rows_aggregated_;
  stats.decode_seconds = decode_seconds_;
  stats.support_eval_seconds = support_eval_seconds_;
  stats.wall_seconds = round_timer_.ElapsedSeconds();
  stats.rows_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(rows_seen_) / stats.wall_seconds
          : 0.0;

  // With persistence on, make the *finalized* round durable before
  // dropping the mid-round state: everything downstream (Finalize merge
  // + calibration) is deterministic, so the journal alone can reproduce
  // the round result bitwise after a crash in the close/read window. The
  // journaled supports feed the drain task too — finalizing once keeps
  // the two observers trivially identical.
  const uint64_t closed_round = round_id_.load(std::memory_order_relaxed);
  std::vector<uint64_t> finalized;
  bool prefinalized = false;
  if (store_ != nullptr && !durability_degraded_) {
    finalized = counter_->Finalize();
    prefinalized = true;
    RoundJournal journal;
    journal.round_id = closed_round;
    journal.partition_index = slice_.index;
    journal.partition_count = slice_.count;
    journal.slice_lo = slice_.lo;
    journal.n = close->n;
    journal.n_fake = close->n_fake;
    journal.calibration = static_cast<uint8_t>(close->calibration);
    journal.reports_decoded = reports_decoded_;
    journal.reports_invalid = reports_invalid_;
    journal.dummies_recognized = dummies_recognized_;
    journal.dummies_expected = dummies_expected_;
    journal.supports = finalized;
    Status st = store_->FinalizeRound(journal, batches_seen_);
    if (!st.ok()) {
      if (IsDegradableStorageError(st)) {
        // Same degrade contract as a mid-round ENOSPC: the result is
        // complete in memory, so hand it out with the warning instead
        // of poisoning the round.
        DegradeDurability(st);
      } else {
        FailRound(st);
        close->promise.set_value(st);
        return;
      }
    }
  }

  // Double-buffer swap: wait until the previous round's finalize task has
  // released the back buffer, then hand it the counter we just filled and
  // keep ingesting the next round into the freshly reset one.
  if (drain_done_.valid()) drain_done_.wait();
  std::swap(counter_, drain_counter_);

  // This round is fully accumulated (and, when durable, finalized in the
  // store); its mid-round state is stale. The close happens here
  // (synchronously) rather than in the drain task so retention GC and
  // the legacy checkpoint unlink can never race the *next* round's
  // writes. A close failure is deliberately ignored: the result is
  // already durable (or the round already degraded), and a resurrected
  // closed round is re-collected at the next compaction.
  if (store_ != nullptr) {
    (void)store_->CloseRound(closed_round);
  }

  struct DrainJob {
    std::shared_ptr<RoundClose> close;
    ShardedSupportCounter* drained;
    const ldp::ScalarFrequencyOracle* oracle;
    uint64_t reports_decoded, reports_invalid, dummies_recognized;
    uint64_t dummies_expected;
    std::vector<uint64_t> finalized;  // pre-merged when journaled
    bool prefinalized = false;
    bool durability_degraded = false;
    std::string durability_warning;
    StreamingStats stats;

    void Run() {
      RoundResult result = FinalizeRoundResult(
          *oracle, prefinalized ? std::move(finalized) : drained->Finalize(),
          close->n, close->n_fake, close->calibration, reports_decoded,
          reports_invalid, dummies_recognized, dummies_expected);
      result.durability_degraded = durability_degraded;
      result.durability_warning = std::move(durability_warning);
      result.stats = stats;
      drained->Reset();  // back buffer ready for the next swap
      close->promise.set_value(std::move(result));
    }
  };
  auto job = std::make_shared<DrainJob>();
  job->close = close;
  job->drained = drain_counter_.get();
  job->oracle = &oracle_;
  job->reports_decoded = reports_decoded_;
  job->reports_invalid = reports_invalid_;
  job->dummies_recognized = dummies_recognized_;
  job->dummies_expected = dummies_expected_;
  job->finalized = std::move(finalized);
  job->prefinalized = prefinalized;
  job->durability_degraded = durability_degraded_;
  job->durability_warning = durability_warning_;
  job->stats = stats;

  // Advance the round *before* the drain can fulfill the promise, so a
  // caller that observed the round result never sees the old round id.
  ResetRoundTallies();
  round_id_.fetch_add(1, std::memory_order_relaxed);

  if (options_.pool != nullptr) {
    auto done = std::make_shared<std::promise<void>>();
    drain_done_ = done->get_future();
    options_.pool->Submit([job, done] {
      job->Run();
      done->set_value();
    });
  } else {
    job->Run();
    drain_done_ = std::future<void>();
  }
}

void PartitionWorker::ResetAfterError() {
  // FailRound closed the queue, so the consumer drains and exits; join
  // it, flush any pending drain, and rebuild a clean pipeline.
  {
    std::lock_guard<std::mutex> lock(consumer_mu_);
    if (consumer_.joinable()) consumer_.join();
    consumer_ = std::thread();
  }
  if (drain_done_.valid()) {
    drain_done_.wait();
    drain_done_ = std::future<void>();
  }
  counter_->Reset();
  drain_counter_->Reset();
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    round_status_ = Status::OK();
  }
  // The aborted round's durable state is poison: recovering from it
  // would resurrect half-aggregated state for a round already reported
  // failed. (Previously *finalized* rounds stay — they are still the
  // durable record of their results.)
  if (store_ != nullptr) {
    (void)store_->AbandonRound(round_id_.load(std::memory_order_relaxed));
  }
  ResetRoundTallies();
  round_id_.fetch_add(1, std::memory_order_relaxed);
  queue_.Reopen();
}

}  // namespace service
}  // namespace shuffledp

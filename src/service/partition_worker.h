// Partition-scoped ingest/checkpoint/drain worker — the machinery behind
// the streaming collection service.
//
// A PartitionWorker owns one slice of a collection round (partition.h):
// the single-node StreamingCollector is the 1-of-1 full-domain special
// case, and a distributed deployment runs N workers — in one process or
// one per endpoint — each with its own queue, consumer thread, counters
// over its slice, per-partition checkpoints, and per-partition
// spot-check dummy multiset. Raw per-partition supports flow to a
// MergeCoordinator (coordinator.h), which merges in partition order and
// only then calibrates — estimates are a property of the whole shuffled
// population, never of one slice.
//
// The pipeline (unchanged from the pre-partition StreamingCollector):
//
//   producers ──ReportBatch──▶ BoundedQueue ──▶ consumer thread
//                (backpressure)                   │ decode batch   (pool)
//                                                 │ validate + strip dummies
//                                                 ▼ count supports (pool,
//                                                   domain-sharded)
//
// Producers enqueue fixed-size batches of reports and block when the
// bounded queue fills (backpressure). A dedicated consumer drains batches
// in FIFO order; for each batch it fans the per-report decode step
// (ECIES peel, Paillier share reconstruction, …) out across the
// ThreadPool, then fans support counting out across domain shards
// (sharded_counter.h). Because every aggregate is an integer counter and
// shard slices merge in shard order, the finalized supports — and hence
// the estimates — are bitwise identical for any pool size, including no
// pool at all. Spot-check dummies (sequential shuffle §VI-A1) are
// registered up front and stripped before counting.
//
// Rounds are pipelined: CloseRound() enqueues a round-close sentinel and
// returns a future immediately, so producers start offering round k+1
// batches while round k's tail is still decoding. At the sentinel the
// consumer swaps to the second of two double-buffered
// ShardedSupportCounters and hands the drained one to a finalize/
// calibrate task, so even the merge of round k overlaps round k+1
// ingest. FinishRound() is the synchronous wrapper (close + wait).
//
// Crash safety: round persistence goes through a RoundStore
// (round_store.h). With StreamingOptions::round_store.dir set, the
// consumer appends one incremental delta record per batch group to a
// per-worker WAL, periodically compacted into immutable segment files —
// any number of rounds (finalized history + the live one) recover
// together. With only checkpoint.path set, the LegacyCheckpointStore
// keeps the original behavior: a full CRC-guarded snapshot every
// `every_batches` batches, plus the finalized-round journal
// (path + ".result") written before the snapshot is unlinked. Either
// way, RecoverRound() restores a mid-round state and returns the
// consumed-batch watermark (the feeder replays from there,
// bit-identically), and RecoverFinalizedRound() replays a journal
// through the deterministic finalize/calibrate step.
//
// Storage failure taxonomy: an out-of-space write (kResourceExhausted —
// ENOSPC/EDQUOT) does *not* poison the round. The worker degrades to
// in-memory-only for the rest of the round and reports it via
// RoundResult::durability_degraded — operators asked for the data more
// than for the durability of one round. Every other storage error stays
// a hard round failure.

#ifndef SHUFFLEDP_SERVICE_PARTITION_WORKER_H_
#define SHUFFLEDP_SERVICE_PARTITION_WORKER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "service/bounded_queue.h"
#include "service/checkpoint.h"
#include "service/partition.h"
#include "service/round_store.h"
#include "service/sharded_counter.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace shuffledp {
namespace service {

/// One decoded ingestion row. `valid = false` rows (failed share
/// reconstruction, ordinal padding, …) are dropped and counted, matching
/// the protocols' treatment of malformed reports.
struct DecodedRow {
  bool valid = false;
  ldp::LdpReport report;
  uint64_t tag = 0;  ///< payload tag (spot-check matching); 0 when unused
};

/// A batch of reports flowing through the queue. `decode` is invoked for
/// i in [0, count) from pool workers (concurrently, each index once); it
/// owns whatever per-batch data it needs via its captures. A non-OK
/// result is a hard protocol failure that aborts the round.
struct ReportBatch {
  uint64_t count = 0;
  /// Optional batch-level stage run once on the consumer thread before
  /// the per-row decode fan-out — e.g. the PEOS packed Paillier
  /// decryption, which amortizes one CRT decryption over a whole group
  /// of rows. Receives the fan-out pool (null = serial); its time counts
  /// toward busy_seconds. A non-OK status aborts the round like a decode
  /// failure.
  std::function<Status(ThreadPool* pool)> prepare;
  std::function<Result<DecodedRow>(uint64_t i)> decode;
};

/// Builds a decode-free batch from already-decoded reports.
ReportBatch MakePlainBatch(std::vector<ldp::LdpReport> reports);

/// Which estimator calibration the round close applies. Partition
/// workers behind a coordinator use kNone: raw supports cross to the
/// coordinator, which merges all partitions *before* calibrating.
enum class Calibration : uint8_t {
  kStandard = 0,  ///< uniform fake reports at q_fake (sequential shuffle)
  kOrdinal = 1,   ///< uniform Z_{2^B} fakes at OrdinalFakeSupportProb (PEOS)
  kNone = 2,      ///< raw supports only (merge-before-calibrate workers)
};

/// Pipeline knobs.
struct StreamingOptions {
  size_t batch_size = 4096;     ///< reports per batch (producer helpers)
  size_t queue_capacity = 64;   ///< buffered batches before backpressure
  uint32_t num_shards = 0;      ///< domain shards; 0 = min(64, slice width)
  uint64_t decode_chunk = 512;  ///< reports per decode task
  ThreadPool* pool = nullptr;   ///< decode/count fan-out; null = serial
  /// The domain slice this worker owns (default: full domain, 1-of-1).
  PartitionSlice partition;
  /// Legacy crash-safe persistence (path empty = disabled); selects the
  /// LegacyCheckpointStore when round_store.dir is unset. See checkpoint.h.
  CheckpointOptions checkpoint;
  /// Durable round store (round_store.h): `round_store.dir` non-empty
  /// selects the WAL + segment engine. Slice identity fields are filled
  /// from the worker's resolved partition; `checkpoint.path` doubles as
  /// the legacy migration source on first open.
  RoundStoreOptions round_store;
  /// Pre-opened store (wins over the options above). The transport
  /// server shares its store with the worker through this — a WAL must
  /// have exactly one writer handle.
  std::shared_ptr<RoundStore> store;
};

/// Pipeline health/throughput counters for one round.
struct StreamingStats {
  uint64_t batches = 0;
  uint64_t rows = 0;                 ///< rows offered (incl. invalid/dummy)
  uint64_t rows_aggregated = 0;      ///< rows that reached support counting
  uint64_t backpressure_waits = 0;   ///< producer pushes that blocked
  uint64_t queue_high_water = 0;     ///< deepest buffered batch count
  double busy_seconds = 0.0;         ///< consumer time decoding + counting
  double decode_seconds = 0.0;       ///< prepare + decode fan-out + validate
  double support_eval_seconds = 0.0; ///< support accumulation (kernel) time
  double wall_seconds = 0.0;         ///< round open -> close sentinel drained
  double rows_per_second = 0.0;      ///< rows / wall_seconds

  std::string ToString() const;
};

/// Result of one collection round (one partition's slice of it when the
/// worker is partition-scoped; `estimates` is empty under kNone).
struct RoundResult {
  std::vector<uint64_t> supports;   ///< per-value counts over the slice
  std::vector<double> estimates;    ///< calibrated frequencies (not kNone)
  uint64_t reports_decoded = 0;     ///< valid rows counted (dummies excl.)
  uint64_t reports_invalid = 0;     ///< dropped rows
  uint64_t dummies_recognized = 0;  ///< spot-check dummies stripped
  uint64_t dummies_expected = 0;    ///< spot-check dummies registered
  bool spot_check_passed = true;    ///< every expected dummy arrived
  /// The round finished in memory but its durability was downgraded
  /// mid-round by an out-of-space store (kResourceExhausted): the result
  /// is correct, but a crash before the coordinator read it would have
  /// lost the round. `durability_warning` carries the triggering error.
  bool durability_degraded = false;
  std::string durability_warning;
  StreamingStats stats;
};

/// Sharded streaming ingest worker; one instance per partition (or per
/// single-node collection endpoint via the StreamingCollector facade).
///
/// Thread-safety: Offer*/ExpectDummy/CloseRound may be called from any
/// thread *except* workers of `options.pool` (a blocked producer on a
/// pool worker could starve the consumer's decode tasks and deadlock the
/// pipeline). A worker *constructed* on a pool worker — a protocol run
/// nested inside a pool task — detects this and degrades to serial
/// processing. ExpectDummy must precede the rows it matches; it applies
/// to the round being fed at the time it is called (registrations travel
/// through the queue, so they order with batches and round closes).
class PartitionWorker {
 public:
  PartitionWorker(const ldp::ScalarFrequencyOracle& oracle,
                  StreamingOptions options);
  ~PartitionWorker();

  PartitionWorker(const PartitionWorker&) = delete;
  PartitionWorker& operator=(const PartitionWorker&) = delete;

  /// Registers a server-planted spot-check dummy; matching rows are
  /// stripped before estimation and counted in dummies_recognized.
  void ExpectDummy(const ldp::LdpReport& report, uint64_t tag);

  /// Bulk ExpectDummy: registers every (report, tag) pair with a single
  /// queue operation — the SS server plants hundreds of dummies per
  /// round, and one WorkItem beats one queue push (mutex + condvar +
  /// possible backpressure wait) per dummy.
  void ExpectDummies(
      const std::vector<std::pair<ldp::LdpReport, uint64_t>>& dummies);

  /// Enqueues one batch; blocks under backpressure. Fails once a decode
  /// error aborted the pipeline.
  Status Offer(ReportBatch batch);

  /// Splits pre-decoded reports into batch_size batches and offers them.
  Status OfferReports(const std::vector<ldp::LdpReport>& reports);

  /// Slices rows [0, total) into batch_size batches and offers each;
  /// `decode` receives the absolute row index and must be safe to call
  /// concurrently (it is shared across the batches' pool tasks).
  Status OfferIndexed(uint64_t total,
                      std::function<Result<DecodedRow>(uint64_t row)> decode);

  /// Like OfferIndexed, but each batch first runs `prepare(lo, hi, pool)`
  /// once on the consumer thread (absolute row range [lo, hi); the pool
  /// is the decode fan-out pool, null = serial) before its rows decode —
  /// the hook for batch-level crypto such as packed AHE decryption.
  Status OfferIndexedPrepared(
      uint64_t total,
      std::function<Status(uint64_t lo, uint64_t hi, ThreadPool* pool)>
          prepare,
      std::function<Result<DecodedRow>(uint64_t row)> decode);

  /// Closes the current round *asynchronously*: enqueues a round-close
  /// sentinel behind everything offered so far and returns a future that
  /// resolves once the round's batches have drained and its counter has
  /// been finalized and calibrated (n users, n_fake fake reports).
  /// Batches offered after CloseRound belong to the next round and start
  /// decoding while the previous round drains. After a failed round,
  /// call FinishRound (or destroy the worker) to reset the pipeline
  /// before reusing it.
  std::future<Result<RoundResult>> CloseRound(uint64_t n, uint64_t n_fake,
                                              Calibration calibration);

  /// Synchronous CloseRound: blocks until the round result is ready and
  /// resets the pipeline after a failure, ready for the next round.
  Result<RoundResult> FinishRound(uint64_t n, uint64_t n_fake,
                                  Calibration calibration);

  /// Restores a partially drained round from a checkpoint snapshot.
  /// Precondition: a fresh worker (nothing offered yet); fails with
  /// FailedPrecondition otherwise, with InvalidArgument when the
  /// snapshot's supports do not match the owned slice, and with
  /// FailedPrecondition when the snapshot belongs to a different
  /// partition. Returns the consumed-batch watermark: the feeder must
  /// replay batches from that batch index (batch boundaries must match
  /// the original run, which fixed-size batch slicing guarantees).
  Result<uint64_t> RecoverRound(const CheckpointState& state);

  /// Replays a finalized-round journal (the crash-between-close-and-read
  /// window): re-runs the deterministic finalize/calibrate step over the
  /// journaled supports and returns the bitwise-identical RoundResult.
  /// Advances round_id past the journaled round. Same fresh-worker
  /// precondition as RecoverRound; the two compose (a checkpoint for
  /// round k+1 may be recovered after replaying round k's journal).
  Result<RoundResult> RecoverFinalizedRound(const RoundJournal& journal);

  /// Rebuilds a clean pipeline after a failed round (a CloseRound future
  /// that resolved to an error): joins the drained consumer, resets all
  /// counters and tallies, bumps the round id, and reopens the queue.
  /// FinishRound calls this automatically; CloseRound users (e.g. the
  /// transport endpoint) call it before reusing the worker.
  void ResetAfterError();

  /// Id of the round currently being fed (increments at each CloseRound
  /// sentinel; RecoverRound restores it).
  uint64_t round_id() const {
    return round_id_.load(std::memory_order_relaxed);
  }

  /// The owned slice with lo/hi resolved against the oracle's domain.
  const PartitionSlice& partition() const { return slice_; }

  /// True once the *current* round's durability was downgraded by an
  /// out-of-space store (cleared at each round boundary). Safe from any
  /// thread — the kQuery handler reads it live.
  bool durability_degraded() const {
    return degraded_flag_.load(std::memory_order_relaxed);
  }

  /// The round store backing this worker (null when persistence is off).
  const std::shared_ptr<RoundStore>& store() const { return store_; }

  const StreamingOptions& options() const { return options_; }
  const ldp::ScalarFrequencyOracle& oracle() const { return oracle_; }

 private:
  /// Round-close request traveling through the queue as a sentinel.
  struct RoundClose {
    uint64_t n = 0;
    uint64_t n_fake = 0;
    Calibration calibration = Calibration::kStandard;
    std::promise<Result<RoundResult>> promise;
  };

  /// One queue element: a batch, a round-close sentinel, or a spot-check
  /// dummy registration (routing registrations through the queue keeps
  /// them ordered against batches and round boundaries).
  struct WorkItem {
    ReportBatch batch;
    std::shared_ptr<RoundClose> close;
    std::vector<std::pair<uint64_t, uint64_t>> dummies;  ///< (packed, tag)
  };

  void ConsumerLoop();
  void ProcessBatch(const ReportBatch& batch);
  void ProcessRoundClose(const std::shared_ptr<RoundClose>& close);
  void ResetRoundTallies();
  void EnsureConsumer();
  CheckpointState BuildCheckpointState();
  /// Routes a batch-group delta to the store, downgrading durability on
  /// kResourceExhausted and failing the round on anything else. Returns
  /// false when the round was failed (the caller must stop).
  bool PersistDelta(const RoundDelta& delta);
  void DegradeDurability(const Status& status);
  void FailRound(Status status);
  Status PipelineError() const;  // status_mu_-guarded snapshot

  const ldp::ScalarFrequencyOracle& oracle_;
  StreamingOptions options_;
  PartitionSlice slice_;  // lo/hi resolved (full domain -> [0, d))
  BoundedQueue<WorkItem> queue_;
  std::mutex consumer_mu_;  // guards the lazy consumer spawn
  std::thread consumer_;

  // Consumer-owned state (the single consumer thread writes; other
  // threads read only after joining it, except the atomic round id).
  std::unique_ptr<ShardedSupportCounter> counter_;        // active round
  std::unique_ptr<ShardedSupportCounter> drain_counter_;  // back buffer
  std::future<void> drain_done_;  // pending finalize of the previous round
  std::atomic<uint64_t> round_id_{0};
  uint64_t rows_seen_ = 0;
  uint64_t batches_seen_ = 0;
  uint64_t reports_decoded_ = 0;
  uint64_t reports_invalid_ = 0;
  uint64_t dummies_recognized_ = 0;
  uint64_t rows_aggregated_ = 0;
  double busy_seconds_ = 0.0;
  double decode_seconds_ = 0.0;
  double support_eval_seconds_ = 0.0;
  // The pipeline failure status. The consumer reads it freely (it is
  // the only live writer, via FailRound); producers read it after a
  // failed Push and ResetAfterError rewrites it after joining the
  // consumer, so those cross-thread accesses go through status_mu_.
  mutable std::mutex status_mu_;
  Status round_status_ = Status::OK();

  uint64_t dummies_expected_ = 0;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> dummy_multiset_;
  WallTimer round_timer_;
  uint64_t waits_at_round_start_ = 0;

  // Durable round store plumbing. store_ is set once in the constructor;
  // the degrade fields are consumer-owned with an atomic mirror for the
  // kQuery handler.
  std::shared_ptr<RoundStore> store_;
  bool durability_degraded_ = false;
  std::string durability_warning_;
  std::atomic<bool> degraded_flag_{false};
  /// Shadow of the supports the store has seen — only maintained for
  /// non-value-equality oracles on a delta-wanting store, where per-batch
  /// deltas come from diffing Finalize() snapshots instead of a kept-row
  /// histogram.
  bool track_support_shadow_ = false;
  std::vector<uint64_t> persisted_supports_;
};

/// Finalize/calibrate step shared by the live drain path, journal
/// replay, and the merge coordinator: turns finalized supports + tallies
/// into a RoundResult. Deterministic pure function — the reason journal
/// replay and merge-then-calibrate reproduce live results bitwise.
RoundResult FinalizeRoundResult(const ldp::ScalarFrequencyOracle& oracle,
                                std::vector<uint64_t> supports,
                                uint64_t n, uint64_t n_fake,
                                Calibration calibration,
                                uint64_t reports_decoded,
                                uint64_t reports_invalid,
                                uint64_t dummies_recognized,
                                uint64_t dummies_expected);

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_PARTITION_WORKER_H_

#include "service/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace shuffledp {
namespace service {

bool IsRetryableTransportError(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

bool IsDegradableStorageError(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted;
}

BackoffSchedule::BackoffSchedule(const RetryPolicy& policy, uint64_t salt)
    : policy_(policy), rng_(policy.seed ^ salt) {}

uint64_t BackoffSchedule::NextDelayMs() {
  // Exponential growth computed in double (the cap bites long before
  // precision does), then jittered by a uniform factor in [1-j, 1+j].
  double base = static_cast<double>(policy_.initial_backoff_ms) *
                std::pow(policy_.multiplier, static_cast<double>(retries_));
  base = std::min(base, static_cast<double>(policy_.max_backoff_ms));
  const double j = std::clamp(policy_.jitter, 0.0, 1.0);
  const double factor = 1.0 + j * (2.0 * rng_.UniformDouble() - 1.0);
  ++retries_;
  return static_cast<uint64_t>(base * factor);
}

void SleepForMs(uint64_t ms) {
  if (ms == 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace service
}  // namespace shuffledp

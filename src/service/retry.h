// Retry policy + transport error taxonomy for the collection fleet.
//
// Every fleet I/O operation can fail in one of two fundamentally
// different ways, and conflating them is how retry storms corrupt
// protocols:
//
//   *Retryable* failures are environmental: the peer is down, mid
//   restart, or slow (ECONNREFUSED / ECONNRESET / EPIPE surface as
//   kUnavailable; an expired per-operation deadline as
//   kDeadlineExceeded). Retrying — reconnect, handshake, replay — is
//   safe because the failure says nothing about the bytes exchanged.
//
//   *Fatal* failures are semantic: a CRC mismatch (kDataLoss), wire
//   version skew or a partition-layout disagreement
//   (kProtocolViolation), a malformed argument (kInvalidArgument). The
//   peer answered and the answer was wrong; retrying into a protocol
//   violation can only miscount reports or mask corruption, so these
//   abort immediately.
//
//   A third kind sits between the two: *resource exhaustion*
//   (kResourceExhausted — ENOSPC/EDQUOT from the durable round store).
//   It is not retryable — the disk will not un-fill between attempts,
//   and re-running the write would duplicate a WAL record — but it is
//   not fatal to the round either: the worker sheds durability (keeps
//   collecting in memory, flags the result degraded) instead of
//   poisoning a round whose data is perfectly intact. See
//   IsDegradableStorageError.
//
// Backoff is exponential with deterministically seeded jitter: the
// schedule is a pure function of (policy, salt), so a test can pin the
// exact delay sequence and a fleet-wide retry wave still decorrelates
// because every (partition, round) pair salts its own stream.

#ifndef SHUFFLEDP_SERVICE_RETRY_H_
#define SHUFFLEDP_SERVICE_RETRY_H_

#include <cstdint>

#include "util/rng.h"
#include "util/status.h"

namespace shuffledp {
namespace service {

/// Bounded exponential backoff with deterministic jitter.
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  uint32_t max_attempts = 4;
  /// Delay before retry k (k >= 1): min(max_backoff_ms,
  /// initial_backoff_ms * multiplier^(k-1)), jittered.
  uint64_t initial_backoff_ms = 20;
  uint64_t max_backoff_ms = 2000;
  double multiplier = 2.0;
  /// Fractional jitter j in [0, 1]: each delay is scaled by a uniform
  /// factor in [1 - j, 1 + j] drawn from the seeded stream.
  double jitter = 0.2;
  /// Seed for the jitter stream (xor'd with the caller's salt).
  uint64_t seed = 0xB0FF5EEDULL;
};

/// True for failures a reconnect/replay can fix (kUnavailable,
/// kDeadlineExceeded); false for everything semantic — protocol
/// violations must never be retried into.
bool IsRetryableTransportError(const Status& status);

/// True for storage failures the worker answers by shedding durability
/// rather than failing the round (kResourceExhausted: ENOSPC/EDQUOT,
/// including a short write that hit the disk-full wall mid-record).
/// Deliberately NOT retryable: a full disk stays full, and replaying
/// the append could land a duplicate WAL record.
bool IsDegradableStorageError(const Status& status);

/// One deterministic backoff delay sequence. Two schedules built from
/// the same (policy, salt) produce identical delays; different salts
/// (one per partition × round, say) decorrelate.
class BackoffSchedule {
 public:
  BackoffSchedule(const RetryPolicy& policy, uint64_t salt);

  /// Delay in ms before the next retry; advances the schedule.
  uint64_t NextDelayMs();

  /// Retries produced so far (== NextDelayMs() calls).
  uint32_t retries() const { return retries_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  uint32_t retries_ = 0;
};

/// Blocking sleep helper used between retry attempts (ms granularity;
/// a no-op for 0).
void SleepForMs(uint64_t ms);

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_RETRY_H_

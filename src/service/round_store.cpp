#include "service/round_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace shuffledp {
namespace service {

namespace {

constexpr char kWalFileName[] = "wal.log";
constexpr char kSegmentPrefix[] = "round-";
constexpr char kSegmentSuffix[] = ".seg";

/// Parses "round-<digits>.seg" into the round id; anything else (tmp
/// staging files, the WAL, stray entries) is not a segment.
bool ParseSegmentName(const std::string& name, uint64_t* round_id) {
  const size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  const size_t suffix_len = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kSegmentPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSegmentSuffix) !=
      0) {
    return false;
  }
  uint64_t id = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    if (id > (UINT64_MAX - (c - '0')) / 10) return false;
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  *round_id = id;
  return true;
}

void PutDummyEntries(
    ByteWriter& w,
    const std::vector<std::tuple<uint64_t, uint64_t, uint64_t>>& entries) {
  w.PutVarint(entries.size());
  for (const auto& [packed, tag, count] : entries) {
    w.PutU64(packed);
    w.PutU64(tag);
    w.PutVarint(count);
  }
}

Status GetDummyEntries(
    ByteReader& r, const char* what,
    std::vector<std::tuple<uint64_t, uint64_t, uint64_t>>* out) {
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > r.Remaining() / 17) {  // 8 + 8 + >=1 bytes per entry
    return Status::DataLoss(std::string("delta ") + what +
                            " count exceeds payload");
  }
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t packed, r.GetU64());
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t tag, r.GetU64());
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
    out->emplace_back(packed, tag, count);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// RoundDelta codec
// ---------------------------------------------------------------------------

Bytes SerializeRoundDelta(const RoundDelta& delta) {
  ByteWriter w(48 + delta.support_deltas.size() * 4 +
               (delta.dummies_registered.size() +
                delta.dummies_consumed.size()) *
                   20);
  w.PutVarint(delta.round_id);
  w.PutVarint(delta.batch_lo);
  w.PutVarint(delta.batch_hi);
  w.PutVarint(delta.rows_delta);
  w.PutVarint(delta.decoded_delta);
  w.PutVarint(delta.invalid_delta);
  w.PutVarint(delta.support_deltas.size());
  for (const auto& [index, count] : delta.support_deltas) {
    w.PutVarint(index);
    w.PutVarint(count);
  }
  PutDummyEntries(w, delta.dummies_registered);
  PutDummyEntries(w, delta.dummies_consumed);
  return w.Release();
}

Result<RoundDelta> ParseRoundDelta(const Bytes& payload) {
  ByteReader r(payload);
  RoundDelta delta;
  SHUFFLEDP_ASSIGN_OR_RETURN(delta.round_id, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(delta.batch_lo, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(delta.batch_hi, r.GetVarint());
  if (delta.batch_hi < delta.batch_lo) {
    return Status::DataLoss("delta batch range is inverted");
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(delta.rows_delta, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(delta.decoded_delta, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(delta.invalid_delta, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t n_supports, r.GetVarint());
  if (n_supports > r.Remaining() / 2) {  // >= 2 varint bytes per entry
    return Status::DataLoss("delta support count exceeds payload");
  }
  delta.support_deltas.reserve(n_supports);
  uint64_t prev_index = 0;
  bool first = true;
  for (uint64_t i = 0; i < n_supports; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t index, r.GetVarint());
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
    if (!first && index <= prev_index) {
      return Status::DataLoss("delta support indices not ascending");
    }
    first = false;
    prev_index = index;
    delta.support_deltas.emplace_back(index, count);
  }
  SHUFFLEDP_RETURN_NOT_OK(
      GetDummyEntries(r, "registered", &delta.dummies_registered));
  SHUFFLEDP_RETURN_NOT_OK(
      GetDummyEntries(r, "consumed", &delta.dummies_consumed));
  if (!r.AtEnd()) {
    return Status::DataLoss("delta payload has trailing bytes");
  }
  return delta;
}

// ---------------------------------------------------------------------------
// LegacyCheckpointStore
// ---------------------------------------------------------------------------

Status LegacyCheckpointStore::AppendDelta(const RoundDelta& delta,
                                          const SnapshotFn& snapshot) {
  // Preserve the exact legacy cadence: one full snapshot whenever a real
  // batch lands on the every_batches boundary (delta.batch_hi equals the
  // worker's consumed-batch count). Registration-only deltas never wrote
  // a checkpoint before and still do not.
  const uint64_t every = std::max<uint64_t>(1, options_.every_batches);
  const bool snapshot_due =
      delta.batch_hi > delta.batch_lo && delta.batch_hi % every == 0;
  if (snapshot_due) {
    SHUFFLEDP_RETURN_NOT_OK(WriteCheckpoint(options_.path, snapshot()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  live_ = true;
  live_round_ = delta.round_id;
  if (snapshot_due) live_watermark_ = delta.batch_hi;
  return Status::OK();
}

Status LegacyCheckpointStore::FinalizeRound(const RoundJournal& journal,
                                            uint64_t batches_consumed) {
  SHUFFLEDP_RETURN_NOT_OK(
      WriteRoundJournal(RoundJournalPath(options_.path), journal));
  std::lock_guard<std::mutex> lock(mu_);
  have_journal_ = true;
  journal_ = journal;
  journal_batches_ = batches_consumed;
  if (live_ && live_round_ == journal.round_id) live_ = false;
  return Status::OK();
}

Status LegacyCheckpointStore::CloseRound(uint64_t round_id) {
  RemoveCheckpoint(options_.path);
  std::lock_guard<std::mutex> lock(mu_);
  if (live_ && live_round_ == round_id) {
    live_ = false;
    live_watermark_ = 0;
  }
  return Status::OK();
}

Status LegacyCheckpointStore::AbandonRound(uint64_t round_id) {
  return CloseRound(round_id);
}

Result<std::vector<StoredRound>> LegacyCheckpointStore::LoadAll() {
  std::vector<StoredRound> rounds;
  Result<RoundJournal> journal = ReadRoundJournal(RoundJournalPath(
      options_.path));
  if (journal.ok()) {
    StoredRound round;
    round.finalized = true;
    round.journal = *journal;
    rounds.push_back(std::move(round));
  } else if (journal.status().code() != StatusCode::kNotFound) {
    return journal.status();
  }
  Result<CheckpointState> state = ReadCheckpoint(options_.path);
  if (state.ok()) {
    StoredRound round;
    round.finalized = false;
    round.batches_consumed = state->batches_consumed;
    round.state = std::move(*state);
    rounds.push_back(std::move(round));
  } else if (state.status().code() != StatusCode::kNotFound) {
    return state.status();
  }
  std::sort(rounds.begin(), rounds.end(),
            [](const StoredRound& a, const StoredRound& b) {
              return a.round_id() < b.round_id();
            });
  {
    // Seed the Query mirror so history works after recovery too.
    std::lock_guard<std::mutex> lock(mu_);
    for (const StoredRound& round : rounds) {
      if (round.finalized) {
        have_journal_ = true;
        journal_ = round.journal;
        journal_batches_ = 0;  // the legacy journal carries no watermark
      } else {
        live_ = true;
        live_round_ = round.state.round_id;
        live_watermark_ = round.state.batches_consumed;
      }
    }
  }
  return rounds;
}

Result<RoundLookup> LegacyCheckpointStore::Query(uint64_t round_id) {
  std::lock_guard<std::mutex> lock(mu_);
  RoundLookup lookup;
  if (have_journal_ && journal_.round_id == round_id) {
    lookup.status = RoundStatus::kFinalized;
    lookup.watermark = journal_batches_;
    lookup.journal = journal_;
  } else if (live_ && live_round_ == round_id) {
    lookup.status = RoundStatus::kActive;
    lookup.watermark = live_watermark_;
  }
  return lookup;
}

// ---------------------------------------------------------------------------
// SegmentedRoundStore
// ---------------------------------------------------------------------------

std::string SegmentedRoundStore::SegmentPath(uint64_t round_id) const {
  return options_.dir + "/" + kSegmentPrefix + std::to_string(round_id) +
         kSegmentSuffix;
}

Result<std::unique_ptr<SegmentedRoundStore>> SegmentedRoundStore::Open(
    const RoundStoreOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("round store directory is empty");
  }
  if (options.slice_width == 0) {
    return Status::InvalidArgument("round store slice width is zero");
  }
  if (options.partition_count == 0 || options.partition_count > 0xFFFF ||
      options.partition_index >= options.partition_count) {
    return Status::InvalidArgument(
        "round store partition identity out of range");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return MapStorageErrno("round store", options.dir, "mkdir", errno);
  }

  std::unique_ptr<SegmentedRoundStore> store(
      new SegmentedRoundStore(options));
  WriteAheadLog::Options wal_options;
  wal_options.path = options.dir + "/" + kWalFileName;
  wal_options.partition_index = options.partition_index;
  wal_options.partition_count = options.partition_count;
  SHUFFLEDP_ASSIGN_OR_RETURN(store->wal_, WriteAheadLog::Open(wal_options));
  store->wal_truncated_bytes_ = store->wal_->truncated_bytes();

  std::lock_guard<std::mutex> lock(store->mu_);
  SHUFFLEDP_RETURN_NOT_OK(store->LoadSegmentsLocked());
  std::vector<WriteAheadLog::Record> records =
      store->wal_->TakeRecovered();
  if (store->rounds_.empty() && records.empty()) {
    SHUFFLEDP_RETURN_NOT_OK(store->ImportLegacyLocked());
    if (!store->rounds_.empty()) {
      // Make the imported base durable as segments *now*: the worker's
      // next deltas continue from the legacy watermark, so a crash
      // before the first cadence compaction would otherwise leave a WAL
      // whose first delta has batch_lo > 0 and no base to chain to —
      // replay would fail the continuity check forever. (The legacy
      // files themselves stay untouched: import is read-only.)
      SHUFFLEDP_RETURN_NOT_OK(store->CompactLocked());
    }
  }
  SHUFFLEDP_RETURN_NOT_OK(store->ReplayLocked(std::move(records)));
  return store;
}

Status SegmentedRoundStore::LoadSegmentsLocked() {
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) {
    return MapStorageErrno("round store", options_.dir, "opendir", errno);
  }
  std::vector<uint64_t> segment_ids;
  while (struct dirent* entry = ::readdir(dir)) {
    uint64_t round_id = 0;
    if (ParseSegmentName(entry->d_name, &round_id)) {
      segment_ids.push_back(round_id);
    }
  }
  ::closedir(dir);
  std::sort(segment_ids.begin(), segment_ids.end());

  for (uint64_t round_id : segment_ids) {
    // A corrupt segment is a hard error: segments are written with the
    // atomic-rename discipline, so a bad one means real media damage —
    // refuse to guess rather than silently drop a round.
    SHUFFLEDP_ASSIGN_OR_RETURN(
        Bytes payload,
        ReadFramedFile(SegmentPath(round_id), kSegmentMagic,
                       "round segment"));
    ByteReader r(payload);
    RoundEntry entry;
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t stored_id, r.GetU64());
    if (stored_id != round_id) {
      return Status::DataLoss("round segment id does not match filename: " +
                              SegmentPath(round_id));
    }
    SHUFFLEDP_ASSIGN_OR_RETURN(entry.last_lsn, r.GetU64());
    SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t finalized, r.GetU8());
    if (finalized > 1) {
      return Status::DataLoss("round segment finalized flag out of range");
    }
    entry.finalized = finalized == 1;
    SHUFFLEDP_ASSIGN_OR_RETURN(entry.batches_consumed, r.GetVarint());
    SHUFFLEDP_ASSIGN_OR_RETURN(Bytes inner, r.GetBytes(r.Remaining()));
    if (entry.finalized) {
      SHUFFLEDP_ASSIGN_OR_RETURN(entry.journal, ParseJournalPayload(inner));
      if (entry.journal.round_id != round_id) {
        return Status::DataLoss("round segment journal id mismatch");
      }
      entry.closed = true;  // only closed rounds survive long enough to
                            // be compacted as finalized history
    } else {
      SHUFFLEDP_ASSIGN_OR_RETURN(entry.state, ParseCheckpointPayload(inner));
      if (entry.state.round_id != round_id) {
        return Status::DataLoss("round segment state id mismatch");
      }
      if (entry.state.partition_index != options_.partition_index ||
          entry.state.partition_count != options_.partition_count ||
          entry.state.slice_lo != options_.slice_lo ||
          entry.state.supports.size() != options_.slice_width) {
        return Status::FailedPrecondition(
            "round segment belongs to a different slice: " +
            SegmentPath(round_id));
      }
      entry.batches_consumed = entry.state.batches_consumed;
    }
    next_lsn_ = std::max(next_lsn_, entry.last_lsn + 1);
    rounds_.emplace(round_id, std::move(entry));
  }
  return Status::OK();
}

Status SegmentedRoundStore::ImportLegacyLocked() {
  if (options_.legacy_checkpoint_path.empty()) return Status::OK();

  Result<CheckpointState> state =
      ReadCheckpoint(options_.legacy_checkpoint_path);
  if (state.ok()) {
    if (state->partition_index != options_.partition_index ||
        state->partition_count != options_.partition_count ||
        state->slice_lo != options_.slice_lo ||
        state->supports.size() != options_.slice_width) {
      return Status::FailedPrecondition(
          "legacy checkpoint belongs to a different slice: " +
          options_.legacy_checkpoint_path);
    }
    RoundEntry entry;
    entry.finalized = false;
    entry.batches_consumed = state->batches_consumed;
    entry.state = std::move(*state);
    entry.dirty = true;  // next compaction converts it into a segment
    rounds_.emplace(entry.state.round_id, std::move(entry));
  } else if (state.status().code() != StatusCode::kNotFound) {
    return state.status();
  }

  Result<RoundJournal> journal = ReadRoundJournal(
      RoundJournalPath(options_.legacy_checkpoint_path));
  if (journal.ok()) {
    RoundEntry entry;
    entry.finalized = true;
    entry.closed = true;
    entry.journal = std::move(*journal);
    entry.dirty = true;
    rounds_.emplace(entry.journal.round_id, std::move(entry));
  } else if (journal.status().code() != StatusCode::kNotFound) {
    return journal.status();
  }
  return Status::OK();
}

Status SegmentedRoundStore::ReplayLocked(
    std::vector<WriteAheadLog::Record> records) {
  // Pre-scan for abandons: AbandonRound unlinks the round's segment as
  // soon as the abandon record is durable, so a crash before the next
  // compaction leaves earlier deltas for that round in the log with no
  // base segment to chain to (their batch_lo is the vanished segment's
  // watermark). Those deltas are dead — the abandon wipes the round
  // regardless — so replay skips any record a later abandon supersedes
  // instead of failing the continuity check and bricking recovery.
  std::map<uint64_t, uint64_t> abandoned_at;  // round id -> newest lsn
  for (const WriteAheadLog::Record& record : records) {
    if (record.type != WalRecordType::kAbandon) continue;
    ByteReader r(record.payload);
    Result<uint64_t> round_id = r.GetVarint();
    if (round_id.ok()) {
      uint64_t& lsn = abandoned_at[*round_id];
      lsn = std::max(lsn, record.lsn);
    }
  }
  for (WriteAheadLog::Record& record : records) {
    next_lsn_ = std::max(next_lsn_, record.lsn + 1);
    switch (record.type) {
      case WalRecordType::kDelta: {
        SHUFFLEDP_ASSIGN_OR_RETURN(RoundDelta delta,
                                   ParseRoundDelta(record.payload));
        auto abandoned = abandoned_at.find(delta.round_id);
        if (abandoned != abandoned_at.end() &&
            record.lsn < abandoned->second) {
          break;  // a later abandon wipes this round — dead delta
        }
        auto it = rounds_.find(delta.round_id);
        if (it != rounds_.end() && record.lsn <= it->second.last_lsn) {
          break;  // already folded into a segment — idempotent replay
        }
        SHUFFLEDP_RETURN_NOT_OK(ApplyDeltaLocked(delta, record.lsn));
        break;
      }
      case WalRecordType::kFinalize: {
        ByteReader r(record.payload);
        SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t batches, r.GetVarint());
        SHUFFLEDP_ASSIGN_OR_RETURN(Bytes inner, r.GetBytes(r.Remaining()));
        SHUFFLEDP_ASSIGN_OR_RETURN(RoundJournal journal,
                                   ParseJournalPayload(inner));
        auto it = rounds_.find(journal.round_id);
        if (it != rounds_.end() && record.lsn <= it->second.last_lsn) {
          break;
        }
        SHUFFLEDP_RETURN_NOT_OK(
            ApplyFinalizeLocked(journal, batches, record.lsn));
        break;
      }
      case WalRecordType::kAbandon: {
        ByteReader r(record.payload);
        SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t round_id, r.GetVarint());
        auto it = rounds_.find(round_id);
        if (it != rounds_.end() && record.lsn <= it->second.last_lsn) {
          // The round's segment already folded state *past* this
          // abandon (a crash landed between compaction's segment
          // publish and the WAL truncate) — replaying it would unlink
          // the newer segment and lose the round.
          break;
        }
        ApplyAbandonLocked(round_id);
        break;
      }
    }
  }
  return Status::OK();
}

SegmentedRoundStore::RoundEntry& SegmentedRoundStore::EntryForLocked(
    uint64_t round_id) {
  auto it = rounds_.find(round_id);
  if (it != rounds_.end()) return it->second;
  RoundEntry entry;
  entry.state.round_id = round_id;
  entry.state.partition_index = options_.partition_index;
  entry.state.partition_count = options_.partition_count;
  entry.state.slice_lo = options_.slice_lo;
  entry.state.supports.assign(options_.slice_width, 0);
  return rounds_.emplace(round_id, std::move(entry)).first->second;
}

Status SegmentedRoundStore::ApplyDeltaLocked(const RoundDelta& delta,
                                             uint64_t lsn) {
  RoundEntry& entry = EntryForLocked(delta.round_id);
  if (entry.finalized) {
    return Status::Internal("delta for finalized round " +
                            std::to_string(delta.round_id));
  }
  CheckpointState& state = entry.state;
  if (delta.batch_lo != state.batches_consumed) {
    return Status::Internal(
        "delta batch range [" + std::to_string(delta.batch_lo) + ", " +
        std::to_string(delta.batch_hi) + ") does not continue watermark " +
        std::to_string(state.batches_consumed) + " for round " +
        std::to_string(delta.round_id));
  }
  for (const auto& [index, count] : delta.support_deltas) {
    if (index >= state.supports.size()) {
      return Status::DataLoss("delta support index outside slice");
    }
    state.supports[index] += count;
  }
  for (const auto& [packed, tag, count] : delta.dummies_registered) {
    state.dummies_remaining[{packed, tag}] += count;
    state.dummies_expected += count;
  }
  for (const auto& [packed, tag, count] : delta.dummies_consumed) {
    auto it = state.dummies_remaining.find({packed, tag});
    if (it == state.dummies_remaining.end() || it->second < count) {
      return Status::DataLoss(
          "delta consumes more dummies than are registered");
    }
    it->second -= count;
    if (it->second == 0) state.dummies_remaining.erase(it);
    state.dummies_recognized += count;
  }
  state.rows_seen += delta.rows_delta;
  state.reports_decoded += delta.decoded_delta;
  state.reports_invalid += delta.invalid_delta;
  state.batches_consumed = delta.batch_hi;
  entry.batches_consumed = delta.batch_hi;
  entry.last_lsn = lsn;
  entry.dirty = true;
  return Status::OK();
}

Status SegmentedRoundStore::ApplyFinalizeLocked(const RoundJournal& journal,
                                                uint64_t batches_consumed,
                                                uint64_t lsn) {
  RoundEntry& entry = EntryForLocked(journal.round_id);
  entry.finalized = true;
  entry.journal = journal;
  entry.batches_consumed = batches_consumed;
  entry.last_lsn = lsn;
  entry.dirty = true;
  // The journal carries the finalized supports; drop the live mirror.
  entry.state.supports.clear();
  entry.state.supports.shrink_to_fit();
  entry.state.dummies_remaining.clear();
  return Status::OK();
}

void SegmentedRoundStore::ApplyAbandonLocked(uint64_t round_id) {
  auto it = rounds_.find(round_id);
  if (it != rounds_.end() && !it->second.finalized) {
    rounds_.erase(it);
  }
  // Also drop any live segment so a later recovery (after the WAL is
  // truncated) cannot resurrect the abandoned round from it. Runs only
  // once the abandon record is durable, so a crash anywhere around the
  // unlink is covered: ReplayLocked skips deltas a later abandon
  // supersedes, whether or not their base segment still exists.
  // Best-effort — a surviving segment is re-unlinked on abandon replay.
  (void)StorageUnlink(SegmentPath(round_id), "round segment");
}

Status SegmentedRoundStore::AppendRecordLocked(WalRecordType type,
                                               const Bytes& payload,
                                               bool force_sync) {
  SHUFFLEDP_RETURN_NOT_OK(wal_->Append(type, next_lsn_, payload));
  ++next_lsn_;
  ++appended_since_sync_;
  ++appended_since_compact_;
  const uint64_t sync_every = std::max<uint64_t>(1, options_.sync_every_records);
  if (force_sync || appended_since_sync_ >= sync_every) {
    SHUFFLEDP_RETURN_NOT_OK(wal_->Sync());
    appended_since_sync_ = 0;
  }
  return Status::OK();
}

Status SegmentedRoundStore::MaybeCompactLocked() {
  // Callers run this only *after* applying the just-appended record to
  // the mirror. Compacting from inside AppendRecordLocked would fold a
  // mirror that does not yet include the record — and then truncate
  // that record out of the WAL, silently losing it for recovery.
  const uint64_t compact_every =
      std::max<uint64_t>(1, options_.compact_every_records);
  if (appended_since_compact_ < compact_every) return Status::OK();
  return CompactLocked();
}

Status SegmentedRoundStore::AppendDelta(const RoundDelta& delta,
                                        const SnapshotFn& snapshot) {
  (void)snapshot;  // deltas make the full-snapshot path unnecessary
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t lsn = next_lsn_;
  SHUFFLEDP_RETURN_NOT_OK(
      AppendRecordLocked(WalRecordType::kDelta, SerializeRoundDelta(delta),
                         /*force_sync=*/false));
  SHUFFLEDP_RETURN_NOT_OK(ApplyDeltaLocked(delta, lsn));
  return MaybeCompactLocked();
}

Status SegmentedRoundStore::FinalizeRound(const RoundJournal& journal,
                                          uint64_t batches_consumed) {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w(16 + journal.supports.size() * 2);
  w.PutVarint(batches_consumed);
  Bytes inner = SerializeJournalPayload(journal);
  w.PutBytes(inner);
  const uint64_t lsn = next_lsn_;
  // Finalize is always an fsync barrier: the result is handed to the
  // coordinator right after this returns, so it must already be durable.
  SHUFFLEDP_RETURN_NOT_OK(AppendRecordLocked(WalRecordType::kFinalize,
                                             w.Release(),
                                             /*force_sync=*/true));
  SHUFFLEDP_RETURN_NOT_OK(ApplyFinalizeLocked(journal, batches_consumed, lsn));
  return MaybeCompactLocked();
}

Status SegmentedRoundStore::CloseRound(uint64_t round_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rounds_.find(round_id);
  if (it == rounds_.end()) return Status::OK();
  it->second.closed = true;
  if (!it->second.finalized) {
    // A round closed without a durable finalize (degraded durability):
    // drop it like an abandon so recovery does not replay a round whose
    // result already left the building. The segment unlink is gated on
    // the abandon record being durable — unlinking on a failed append
    // would fabricate a disk state (segment gone, no abandon record) no
    // real crash can reach, and the WAL suffix would then reference a
    // round whose base state vanished.
    ByteWriter w(10);
    w.PutVarint(round_id);
    Status st = AppendRecordLocked(WalRecordType::kAbandon, w.Release(),
                                   /*force_sync=*/true);
    if (st.ok()) {
      ApplyAbandonLocked(round_id);
      return MaybeCompactLocked();
    }
    rounds_.erase(round_id);  // mirror only; disk stays crash-consistent
    return st;
  }
  RetentionGcLocked();
  return Status::OK();
}

Status SegmentedRoundStore::AbandonRound(uint64_t round_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rounds_.find(round_id);
  if (it == rounds_.end() || it->second.finalized) return Status::OK();
  ByteWriter w(10);
  w.PutVarint(round_id);
  Status st = AppendRecordLocked(WalRecordType::kAbandon, w.Release(),
                                 /*force_sync=*/true);
  if (st.ok()) {
    // Durable first, then visible: the unlink mirrors what replaying
    // the abandon record would do. On a failed append the disk stays
    // untouched (recovery resurrects the round — true crash semantics);
    // only the in-memory mirror drops it, since the pipeline is done
    // with the round either way.
    ApplyAbandonLocked(round_id);
    return MaybeCompactLocked();
  }
  rounds_.erase(round_id);
  return st;
}

void SegmentedRoundStore::RetentionGcLocked() {
  const uint64_t retain = std::max<uint64_t>(1, options_.retain_rounds);
  // rounds_ is ordered ascending by id; walk finalized+closed rounds
  // newest-first and expire everything past the retention horizon.
  std::vector<uint64_t> finalized_ids;
  for (const auto& [round_id, entry] : rounds_) {
    if (entry.finalized && entry.closed) finalized_ids.push_back(round_id);
  }
  if (finalized_ids.size() <= retain) return;
  const size_t expire = finalized_ids.size() - retain;
  for (size_t i = 0; i < expire; ++i) {
    const uint64_t round_id = finalized_ids[i];
    rounds_.erase(round_id);
    // The segment is NOT unlinked here: the WAL may still hold records
    // for this round (deltas chaining to the segment's watermark), and
    // removing their base would brick replay after a crash. The next
    // compaction unlinks it right after the WAL truncate, when nothing
    // can reference it. Until then the expired round is merely
    // invisible; a crash resurrects it and the next close re-expires
    // it — benign.
    pending_segment_unlinks_.push_back(round_id);
  }
}

Status SegmentedRoundStore::CompactLocked() {
  for (auto& [round_id, entry] : rounds_) {
    if (!entry.dirty) continue;
    ByteWriter w(64);
    w.PutU64(round_id);
    w.PutU64(entry.last_lsn);
    w.PutU8(entry.finalized ? 1 : 0);
    w.PutVarint(entry.batches_consumed);
    if (entry.finalized) {
      Bytes inner = SerializeJournalPayload(entry.journal);
      w.PutBytes(inner);
    } else {
      Bytes inner = SerializeCheckpointPayload(entry.state);
      w.PutBytes(inner);
    }
    SHUFFLEDP_RETURN_NOT_OK(WriteFramedFile(SegmentPath(round_id),
                                            kSegmentMagic, w.Release(),
                                            "round segment"));
    entry.dirty = false;
  }
  SHUFFLEDP_RETURN_NOT_OK(wal_->TruncateAll());
  // Retention-expired segments go only now, after the truncate: no WAL
  // record can reference them anymore. A crash before this point leaves
  // the segment in place (the round resurrects and re-expires — benign);
  // a crash mid-unlink leaves orphan segments the next GC re-collects.
  for (uint64_t round_id : pending_segment_unlinks_) {
    if (rounds_.count(round_id) != 0) continue;  // round id re-appeared
    (void)StorageUnlink(SegmentPath(round_id), "round segment");
  }
  pending_segment_unlinks_.clear();
  appended_since_compact_ = 0;
  appended_since_sync_ = 0;
  return Status::OK();
}

Status SegmentedRoundStore::CompactNow() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactLocked();
}

Result<std::vector<StoredRound>> SegmentedRoundStore::LoadAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StoredRound> rounds;
  rounds.reserve(rounds_.size());
  for (const auto& [round_id, entry] : rounds_) {
    StoredRound round;
    round.finalized = entry.finalized;
    round.batches_consumed = entry.batches_consumed;
    if (entry.finalized) {
      round.journal = entry.journal;
    } else {
      round.state = entry.state;
    }
    rounds.push_back(std::move(round));
  }
  return rounds;
}

Result<RoundLookup> SegmentedRoundStore::Query(uint64_t round_id) {
  std::lock_guard<std::mutex> lock(mu_);
  RoundLookup lookup;
  auto it = rounds_.find(round_id);
  if (it == rounds_.end()) return lookup;
  lookup.watermark = it->second.batches_consumed;
  if (it->second.finalized) {
    lookup.status = RoundStatus::kFinalized;
    lookup.journal = it->second.journal;
  } else {
    lookup.status = RoundStatus::kActive;
  }
  return lookup;
}

uint64_t SegmentedRoundStore::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

Result<std::shared_ptr<RoundStore>> OpenRoundStore(
    const RoundStoreOptions& options, const CheckpointOptions& legacy) {
  if (!options.dir.empty()) {
    RoundStoreOptions resolved = options;
    if (resolved.legacy_checkpoint_path.empty()) {
      resolved.legacy_checkpoint_path = legacy.path;
    }
    SHUFFLEDP_ASSIGN_OR_RETURN(std::unique_ptr<SegmentedRoundStore> store,
                               SegmentedRoundStore::Open(resolved));
    return std::shared_ptr<RoundStore>(std::move(store));
  }
  if (!legacy.path.empty()) {
    return std::shared_ptr<RoundStore>(
        std::make_shared<LegacyCheckpointStore>(legacy));
  }
  return std::shared_ptr<RoundStore>();
}

}  // namespace service
}  // namespace shuffledp

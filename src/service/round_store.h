// Durable multi-round storage engine for partition workers.
//
// The one-file-per-round checkpoint path (checkpoint.h) rewrites the
// entire counter snapshot every N batches and protects exactly one
// in-flight round. The RoundStore interface replaces it with a
// crash-consistent engine sized for many concurrent rounds:
//
//   ingest      consumer thread appends one incremental RoundDelta per
//               batch group to a per-worker WAL (wal.h) — sparse slice
//               deltas + tally deltas + dummy-multiset deltas, O(batch)
//               bytes instead of O(slice) — with a configurable fsync
//               barrier cadence;
//   compaction  the WAL is periodically folded into immutable
//               CRC-guarded segment files (one per round, "SDPS"
//               framing, atomic-rename discipline), then truncated;
//   recovery    segments load first, then the WAL suffix replays on
//               top. Records carry monotonic LSNs and each segment
//               records the last LSN folded into it, so replay is
//               idempotent: a crash between segment publish and WAL
//               truncation — or a duplicated record — applies as a
//               no-op. Any number of rounds (finalized history + the
//               live round) recover together;
//   queries     Query() serves round history (status, watermark,
//               finalized journal) — the storage side of the kQuery
//               wire frame (transport.h);
//   retention   CloseRound() garbage-collects finalized rounds beyond
//               the keep-last-K knob.
//
// Two backends sit behind the interface: SegmentedRoundStore (the WAL +
// segment engine above) and LegacyCheckpointStore, which adapts the
// existing SDPK/SDPJ one-file-per-round format — same write cadence,
// same files — so existing deployments recover through the same
// interface unchanged, and the segmented store imports those files as a
// read-only migration source on first open.
//
// Concurrency: the worker's consumer thread is the only writer
// (AppendDelta / FinalizeRound / CloseRound / AbandonRound); Query and
// LoadAll may run from any thread. Both backends serialize internally.

#ifndef SHUFFLEDP_SERVICE_ROUND_STORE_H_
#define SHUFFLEDP_SERVICE_ROUND_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "service/checkpoint.h"
#include "service/wal.h"
#include "util/status.h"

namespace shuffledp {
namespace service {

/// Segment file magic ("SDPS"); framing is checkpoint.h's 16-byte
/// header via WriteFramedFile/ReadFramedFile.
inline constexpr uint8_t kSegmentMagic[4] = {'S', 'D', 'P', 'S'};

/// Round store knobs (part of StreamingOptions). `dir` empty disables
/// the segmented engine; the worker then falls back to the legacy
/// checkpoint path when that is configured.
struct RoundStoreOptions {
  /// Store directory (created if missing): holds `wal.log` and one
  /// `round-<id>.seg` segment per stored round.
  std::string dir;
  /// Finalized rounds retained for history queries; older rounds are
  /// garbage-collected at CloseRound. Clamped to >= 1 — the newest
  /// finalized round always survives so a crashed coordinator can
  /// re-fetch its result after a restart.
  uint64_t retain_rounds = 4;
  /// WAL records between compactions (segment rewrite + log truncate).
  uint64_t compact_every_records = 256;
  /// WAL records between fsync barriers. 1 = every record durable
  /// before ingest proceeds (the default; the crash-point tests assume
  /// it). Larger values trade the barrier cost for a bounded window of
  /// re-replayed batches after a crash.
  uint64_t sync_every_records = 1;
  /// Slice identity (filled by the worker from its resolved partition).
  uint32_t partition_index = 0;
  uint32_t partition_count = 1;
  uint64_t slice_lo = 0;
  uint64_t slice_width = 0;  ///< supports length; required when dir set
  /// Legacy SDPK checkpoint path imported (read-only, together with its
  /// `.result` journal) when the store directory holds no state yet.
  std::string legacy_checkpoint_path;
};

/// One batch group's incremental effect on round state — what the WAL
/// persists instead of a full snapshot. Batch-free records (spot-check
/// dummy registrations, which mutate the multiset between batches) use
/// an empty range `batch_lo == batch_hi`.
struct RoundDelta {
  uint64_t round_id = 0;
  uint64_t batch_lo = 0;  ///< consumed-batch watermark before this group
  uint64_t batch_hi = 0;  ///< watermark after ([lo, hi) consumed)
  uint64_t rows_delta = 0;
  uint64_t decoded_delta = 0;
  uint64_t invalid_delta = 0;
  /// Sparse support increments: (slice-relative index, +count),
  /// ascending by index.
  std::vector<std::pair<uint64_t, uint64_t>> support_deltas;
  /// Spot-check dummy registrations / consumptions: (packed, tag, count).
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> dummies_registered;
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> dummies_consumed;
};

/// Delta payload codec (WAL kDelta record payload; golden-pinned in
/// docs/WIRE_FORMAT.md §6).
Bytes SerializeRoundDelta(const RoundDelta& delta);
Result<RoundDelta> ParseRoundDelta(const Bytes& payload);

/// One recovered round. Live rounds carry the mid-round CheckpointState
/// (feed it to PartitionWorker::RecoverRound and replay from the
/// watermark); finalized rounds carry the RoundJournal (feed it to
/// RecoverFinalizedRound / FinalizeRoundResult).
struct StoredRound {
  bool finalized = false;
  CheckpointState state;  ///< valid when !finalized
  RoundJournal journal;   ///< valid when finalized
  uint64_t batches_consumed = 0;  ///< watermark (both kinds)

  uint64_t round_id() const {
    return finalized ? journal.round_id : state.round_id;
  }
};

enum class RoundStatus : uint8_t {
  kUnknown = 0,
  kActive = 1,
  kFinalized = 2,
};

/// Query() answer — the storage side of the kQuery wire frame.
struct RoundLookup {
  RoundStatus status = RoundStatus::kUnknown;
  uint64_t watermark = 0;  ///< durably consumed batches
  RoundJournal journal;    ///< valid when status == kFinalized
};

/// Crash-consistent round persistence. See the file comment for the
/// engine; LegacyCheckpointStore for the SDPK/SDPJ adapter.
class RoundStore {
 public:
  /// Lazily materializes a full CheckpointState snapshot — only the
  /// legacy backend calls it (on its checkpoint cadence), so the
  /// segmented engine never pays the O(slice) Finalize cost per batch.
  using SnapshotFn = std::function<CheckpointState()>;

  virtual ~RoundStore() = default;

  /// True when the backend persists incremental deltas — the worker
  /// only computes sparse per-batch support deltas when it does.
  virtual bool WantsDeltas() const = 0;

  /// Records one batch group's deltas for the round (consumer thread).
  virtual Status AppendDelta(const RoundDelta& delta,
                             const SnapshotFn& snapshot) = 0;

  /// Durably records the finalized round (called before the result is
  /// handed out; always an fsync barrier). `batches_consumed` is the
  /// round's final watermark — the journal itself does not carry one.
  virtual Status FinalizeRound(const RoundJournal& journal,
                               uint64_t batches_consumed) = 0;

  /// The round's result has been delivered: run retention GC. The round
  /// stays queryable until retention expires it.
  virtual Status CloseRound(uint64_t round_id) = 0;

  /// Drops a failed round's state so recovery does not resurrect a
  /// round the pipeline abandoned.
  virtual Status AbandonRound(uint64_t round_id) = 0;

  /// Every stored round, ascending by round id (recovery entry point).
  virtual Result<std::vector<StoredRound>> LoadAll() = 0;

  /// Round history lookup (any thread).
  virtual Result<RoundLookup> Query(uint64_t round_id) = 0;
};

/// Adapter keeping the existing one-file-per-round SDPK checkpoint +
/// SDPJ journal behind the RoundStore interface: identical write
/// cadence (full snapshot every `every_batches` consumed batches),
/// identical files, identical recovery semantics — the journal is a
/// keep-exactly-1 overwrite, so retention does not apply.
class LegacyCheckpointStore : public RoundStore {
 public:
  explicit LegacyCheckpointStore(CheckpointOptions options)
      : options_(std::move(options)) {}

  bool WantsDeltas() const override { return false; }
  Status AppendDelta(const RoundDelta& delta,
                     const SnapshotFn& snapshot) override;
  Status FinalizeRound(const RoundJournal& journal,
                       uint64_t batches_consumed) override;
  Status CloseRound(uint64_t round_id) override;
  Status AbandonRound(uint64_t round_id) override;
  Result<std::vector<StoredRound>> LoadAll() override;
  Result<RoundLookup> Query(uint64_t round_id) override;

 private:
  CheckpointOptions options_;
  std::mutex mu_;
  // In-memory mirror for Query (the files stay authoritative).
  bool live_ = false;
  uint64_t live_round_ = 0;
  uint64_t live_watermark_ = 0;  ///< durable (checkpointed) watermark
  bool have_journal_ = false;
  RoundJournal journal_;
  uint64_t journal_batches_ = 0;
};

/// The WAL + segment engine (file comment above).
class SegmentedRoundStore : public RoundStore {
 public:
  /// Opens the store: creates `options.dir` if missing, validates and
  /// scans the WAL (truncating a torn tail), loads every segment,
  /// replays the WAL suffix, and — when the directory holds no state —
  /// imports `options.legacy_checkpoint_path` (+ `.result`). A corrupt
  /// segment or WAL header is a hard error: refuse to guess.
  static Result<std::unique_ptr<SegmentedRoundStore>> Open(
      const RoundStoreOptions& options);

  bool WantsDeltas() const override { return true; }
  Status AppendDelta(const RoundDelta& delta,
                     const SnapshotFn& snapshot) override;
  Status FinalizeRound(const RoundJournal& journal,
                       uint64_t batches_consumed) override;
  Status CloseRound(uint64_t round_id) override;
  Status AbandonRound(uint64_t round_id) override;
  Result<std::vector<StoredRound>> LoadAll() override;
  Result<RoundLookup> Query(uint64_t round_id) override;

  /// Forces a compaction (segment rewrite + WAL truncate) now — the
  /// shutdown hook and tests; AppendDelta triggers it automatically
  /// every `compact_every_records` records.
  Status CompactNow();

  /// Diagnostics / tests.
  uint64_t next_lsn() const;
  uint64_t wal_truncated_bytes() const { return wal_truncated_bytes_; }
  std::string SegmentPath(uint64_t round_id) const;

 private:
  struct RoundEntry {
    CheckpointState state;  ///< live mirror (empty once finalized)
    bool finalized = false;
    RoundJournal journal;
    uint64_t batches_consumed = 0;
    uint64_t last_lsn = 0;  ///< newest LSN folded into this entry
    bool dirty = false;     ///< has WAL records no segment covers
    bool closed = false;    ///< result delivered (retention-eligible)
  };

  explicit SegmentedRoundStore(RoundStoreOptions options)
      : options_(std::move(options)) {}

  RoundEntry& EntryForLocked(uint64_t round_id);
  Status ApplyDeltaLocked(const RoundDelta& delta, uint64_t lsn);
  Status ApplyFinalizeLocked(const RoundJournal& journal,
                             uint64_t batches_consumed, uint64_t lsn);
  void ApplyAbandonLocked(uint64_t round_id);
  Status AppendRecordLocked(WalRecordType type, const Bytes& payload,
                            bool force_sync);
  /// Compacts when the record cadence is due. Must run only after the
  /// just-appended record was applied to the mirror — compaction folds
  /// the mirror into segments and then drops the WAL, so an unapplied
  /// record would be truncated without ever being folded.
  Status MaybeCompactLocked();
  Status CompactLocked();
  void RetentionGcLocked();
  Status LoadSegmentsLocked();
  Status ImportLegacyLocked();
  Status ReplayLocked(std::vector<WriteAheadLog::Record> records);

  RoundStoreOptions options_;
  mutable std::mutex mu_;
  std::map<uint64_t, RoundEntry> rounds_;
  /// Segments of retention-expired rounds, unlinked only by the next
  /// compaction *after* the WAL truncate: while any WAL record can
  /// still reference a round, its base segment must stay on disk or a
  /// crash makes replay see a delta that no longer chains to anything.
  std::vector<uint64_t> pending_segment_unlinks_;
  std::unique_ptr<WriteAheadLog> wal_;
  uint64_t next_lsn_ = 1;
  uint64_t appended_since_sync_ = 0;
  uint64_t appended_since_compact_ = 0;
  uint64_t wal_truncated_bytes_ = 0;
};

/// Opens the configured backend: SegmentedRoundStore when
/// `options.dir` is set (importing `legacy.path` as migration source if
/// the directory is empty), LegacyCheckpointStore when only
/// `legacy.path` is set, and a null store when neither (durability
/// disabled — the returned shared_ptr is empty but the Result is OK).
Result<std::shared_ptr<RoundStore>> OpenRoundStore(
    const RoundStoreOptions& options, const CheckpointOptions& legacy);

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_ROUND_STORE_H_

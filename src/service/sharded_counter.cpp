#include "service/sharded_counter.h"

#include <algorithm>
#include <cassert>

namespace shuffledp {
namespace service {

ShardedSupportCounter::ShardedSupportCounter(
    const ldp::ScalarFrequencyOracle& oracle, uint32_t num_shards)
    : ShardedSupportCounter(oracle, num_shards, 0, 0) {}

ShardedSupportCounter::ShardedSupportCounter(
    const ldp::ScalarFrequencyOracle& oracle, uint32_t num_shards,
    uint64_t lo, uint64_t hi)
    : oracle_(oracle), value_equality_(oracle.SupportIsValueEquality()) {
  if (lo == 0 && hi == 0) hi = oracle.domain_size();  // full domain
  assert(lo < hi && hi <= oracle.domain_size());
  range_lo_ = lo;
  range_hi_ = hi;
  const uint64_t width = hi - lo;
  uint64_t shards = num_shards;
  if (shards == 0) shards = std::min<uint64_t>(64, width);
  shards = std::max<uint64_t>(1, std::min<uint64_t>(shards, width));
  shards_.resize(shards);
  for (uint64_t s = 0; s < shards; ++s) {
    shards_[s].lo = lo + width * s / shards;
    shards_[s].hi = lo + width * (s + 1) / shards;
    shards_[s].counts.assign(shards_[s].hi - shards_[s].lo, 0);
  }
}

void ShardedSupportCounter::AccumulateShard(
    Shard* shard, const std::vector<ldp::LdpReport>& reports) const {
  for (const ldp::LdpReport& r : reports) {
    for (uint64_t v = shard->lo; v < shard->hi; ++v) {
      shard->counts[v - shard->lo] += oracle_.Supports(r, v);
    }
  }
}

void ShardedSupportCounter::AccumulateBatch(
    const std::vector<ldp::LdpReport>& reports, ThreadPool* pool) {
  if (reports.empty()) return;
  if (value_equality_) {
    // Equality-support oracles (GRR): one histogram increment per report
    // beats any fan-out — a per-shard scan would redo the batch
    // num_shards times for no gain. Shard ranges are floor(w·s/S)
    // partitions of the counted range, so s = floor((v-lo)·S/w) lands on
    // the right shard up to one boundary step. Values outside the
    // counted range are no-ops (a partition worker only ever sees its
    // own slice; anything else was already rejected upstream).
    const uint64_t width = range_hi_ - range_lo_;
    const uint64_t s_count = shards_.size();
    for (const ldp::LdpReport& r : reports) {
      if (r.value < range_lo_ || r.value >= range_hi_) continue;
      uint64_t s = (r.value - range_lo_) * s_count / width;
      while (r.value < shards_[s].lo) --s;
      while (r.value >= shards_[s].hi) ++s;
      ++shards_[s].counts[r.value - shards_[s].lo];
    }
    return;
  }
  if (pool == nullptr || shards_.size() == 1) {
    for (Shard& shard : shards_) AccumulateShard(&shard, reports);
    return;
  }
  pool->ParallelFor(0, shards_.size(), [&](uint64_t lo, uint64_t hi) {
    for (uint64_t s = lo; s < hi; ++s) {
      AccumulateShard(&shards_[s], reports);
    }
  });
}

std::vector<uint64_t> ShardedSupportCounter::Finalize() const {
  std::vector<uint64_t> merged;
  merged.reserve(range_hi_ - range_lo_);
  for (const Shard& shard : shards_) {
    merged.insert(merged.end(), shard.counts.begin(), shard.counts.end());
  }
  return merged;
}

Status ShardedSupportCounter::Restore(const std::vector<uint64_t>& merged) {
  if (merged.size() != range_hi_ - range_lo_) {
    return Status::InvalidArgument(
        "restore vector does not match the counted value range");
  }
  for (Shard& shard : shards_) {
    std::copy(merged.begin() + (shard.lo - range_lo_),
              merged.begin() + (shard.hi - range_lo_),
              shard.counts.begin());
  }
  return Status::OK();
}

void ShardedSupportCounter::Reset() {
  for (Shard& shard : shards_) {
    std::fill(shard.counts.begin(), shard.counts.end(), 0);
  }
}

}  // namespace service
}  // namespace shuffledp

#include "service/sharded_counter.h"

#include <algorithm>
#include <cassert>

namespace shuffledp {
namespace service {

ShardedSupportCounter::ShardedSupportCounter(
    const ldp::ScalarFrequencyOracle& oracle, uint32_t num_shards)
    : ShardedSupportCounter(oracle, num_shards, 0, 0) {}

ShardedSupportCounter::ShardedSupportCounter(
    const ldp::ScalarFrequencyOracle& oracle, uint32_t num_shards,
    uint64_t lo, uint64_t hi)
    : oracle_(oracle), value_equality_(oracle.SupportIsValueEquality()) {
  if (lo == 0 && hi == 0) hi = oracle.domain_size();  // full domain
  assert(lo < hi && hi <= oracle.domain_size());
  range_lo_ = lo;
  range_hi_ = hi;
  const uint64_t width = hi - lo;
  uint64_t shards = num_shards;
  if (shards == 0) shards = std::min<uint64_t>(64, width);
  shards = std::max<uint64_t>(1, std::min<uint64_t>(shards, width));
  shards_.resize(shards);
  for (uint64_t s = 0; s < shards; ++s) {
    shards_[s].lo = lo + width * s / shards;
    shards_[s].hi = lo + width * (s + 1) / shards;
  }
  counts_.assign(width, 0);
}

void ShardedSupportCounter::AccumulateBatch(
    const std::vector<ldp::LdpReport>& reports, ThreadPool* pool) {
  if (reports.empty()) return;
  if (value_equality_) {
    // Equality-support oracles (GRR): one histogram increment per report
    // beats any fan-out. Values outside the counted range are no-ops (a
    // partition worker only ever sees its own slice; anything else was
    // already rejected upstream).
    for (const ldp::LdpReport& r : reports) {
      if (r.value < range_lo_ || r.value >= range_hi_) continue;
      ++counts_[r.value - range_lo_];
    }
    return;
  }
  if (pool == nullptr || shards_.size() == 1) {
    // No fan-out to amortize: one tiled kernel pass over the whole
    // counted range instead of num_shards batch re-walks.
    oracle_.AccumulateSupports(reports.data(), reports.size(), range_lo_,
                               range_hi_, counts_.data());
    return;
  }
  // Shards write disjoint slices of counts_, so the tasks share the
  // vector without synchronization; integer addition makes the result
  // independent of task scheduling.
  pool->ParallelFor(0, shards_.size(), [&](uint64_t lo, uint64_t hi) {
    for (uint64_t s = lo; s < hi; ++s) {
      oracle_.AccumulateSupports(reports.data(), reports.size(),
                                 shards_[s].lo, shards_[s].hi,
                                 counts_.data() + (shards_[s].lo - range_lo_));
    }
  });
}

std::vector<uint64_t> ShardedSupportCounter::Finalize() const {
  return counts_;
}

Status ShardedSupportCounter::Restore(const std::vector<uint64_t>& merged) {
  if (merged.size() != range_hi_ - range_lo_) {
    return Status::InvalidArgument(
        "restore vector does not match the counted value range");
  }
  counts_ = merged;
  return Status::OK();
}

void ShardedSupportCounter::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
}

}  // namespace service
}  // namespace shuffledp

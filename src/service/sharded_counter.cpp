#include "service/sharded_counter.h"

#include <algorithm>

namespace shuffledp {
namespace service {

ShardedSupportCounter::ShardedSupportCounter(
    const ldp::ScalarFrequencyOracle& oracle, uint32_t num_shards)
    : oracle_(oracle), value_equality_(oracle.SupportIsValueEquality()) {
  const uint64_t d = oracle.domain_size();
  uint64_t shards = num_shards;
  if (shards == 0) shards = std::min<uint64_t>(64, d);
  shards = std::max<uint64_t>(1, std::min<uint64_t>(shards, d));
  shards_.resize(shards);
  for (uint64_t s = 0; s < shards; ++s) {
    shards_[s].lo = d * s / shards;
    shards_[s].hi = d * (s + 1) / shards;
    shards_[s].counts.assign(shards_[s].hi - shards_[s].lo, 0);
  }
}

void ShardedSupportCounter::AccumulateShard(
    Shard* shard, const std::vector<ldp::LdpReport>& reports) const {
  for (const ldp::LdpReport& r : reports) {
    for (uint64_t v = shard->lo; v < shard->hi; ++v) {
      shard->counts[v - shard->lo] += oracle_.Supports(r, v);
    }
  }
}

void ShardedSupportCounter::AccumulateBatch(
    const std::vector<ldp::LdpReport>& reports, ThreadPool* pool) {
  if (reports.empty()) return;
  if (value_equality_) {
    // Equality-support oracles (GRR): one histogram increment per report
    // beats any fan-out — a per-shard scan would redo the batch
    // num_shards times for no gain. Shard ranges are floor(d·s/S)
    // partitions, so s = floor(v·S/d) lands on the right shard up to one
    // boundary step.
    const uint64_t d = oracle_.domain_size();
    const uint64_t s_count = shards_.size();
    for (const ldp::LdpReport& r : reports) {
      if (r.value >= d) continue;
      uint64_t s = static_cast<uint64_t>(r.value) * s_count / d;
      while (r.value < shards_[s].lo) --s;
      while (r.value >= shards_[s].hi) ++s;
      ++shards_[s].counts[r.value - shards_[s].lo];
    }
    return;
  }
  if (pool == nullptr || shards_.size() == 1) {
    for (Shard& shard : shards_) AccumulateShard(&shard, reports);
    return;
  }
  pool->ParallelFor(0, shards_.size(), [&](uint64_t lo, uint64_t hi) {
    for (uint64_t s = lo; s < hi; ++s) {
      AccumulateShard(&shards_[s], reports);
    }
  });
}

std::vector<uint64_t> ShardedSupportCounter::Finalize() const {
  std::vector<uint64_t> merged;
  merged.reserve(oracle_.domain_size());
  for (const Shard& shard : shards_) {
    merged.insert(merged.end(), shard.counts.begin(), shard.counts.end());
  }
  return merged;
}

Status ShardedSupportCounter::Restore(const std::vector<uint64_t>& merged) {
  if (merged.size() != oracle_.domain_size()) {
    return Status::InvalidArgument(
        "restore vector does not match the oracle domain size");
  }
  for (Shard& shard : shards_) {
    std::copy(merged.begin() + shard.lo, merged.begin() + shard.hi,
              shard.counts.begin());
  }
  return Status::OK();
}

void ShardedSupportCounter::Reset() {
  for (Shard& shard : shards_) {
    std::fill(shard.counts.begin(), shard.counts.end(), 0);
  }
}

}  // namespace service
}  // namespace shuffledp

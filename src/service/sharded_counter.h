// Domain-sharded support aggregation.
//
// The value domain [0, d) is partitioned into contiguous shards over one
// shared, contiguous counter vector; each shard owns the [lo, hi) slice
// of its value range. A batch of decoded reports is fanned out with one
// task per shard group — every task streams the batch through the
// oracle's bulk AccumulateSupports kernel restricted to its own slice,
// so accumulation is lock-free, race-free, and (being integer addition)
// independent of both task scheduling and report order. With no pool (or
// a single shard) the fan-out is skipped entirely and the tiled kernel
// runs once over the whole counted range — same O(batch × d) pair count,
// none of the per-shard batch re-walks or task overhead.
//
// Oracles whose support test is plain value equality (GRR — see
// ScalarFrequencyOracle::SupportIsValueEquality) skip everything: one
// histogram increment per report straight into the contiguous counts,
// turning the O(batch × d) aggregation into O(batch).
//
// The counts being one contiguous vector also gives the round-store
// delta capture a zero-copy view (counts()) to diff against, instead of
// materializing a merged snapshot per batch.

#ifndef SHUFFLEDP_SERVICE_SHARDED_COUNTER_H_
#define SHUFFLEDP_SERVICE_SHARDED_COUNTER_H_

#include <cstdint>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace service {

/// Per-shard partial support aggregates over the oracle's full domain —
/// or, for a partition-scoped worker, over one contiguous value slice
/// [lo, hi) of it (the shard fan-out then divides the slice instead).
class ShardedSupportCounter {
 public:
  /// Full-domain counter. `num_shards` = 0 picks min(64, domain_size).
  ShardedSupportCounter(const ldp::ScalarFrequencyOracle& oracle,
                        uint32_t num_shards);

  /// Slice-restricted counter over values [lo, hi): supports are counted
  /// (and Finalize/Restore sized) for that range only. Pre: lo < hi <=
  /// domain_size. `lo == hi == 0` means the full domain.
  ShardedSupportCounter(const ldp::ScalarFrequencyOracle& oracle,
                        uint32_t num_shards, uint64_t lo, uint64_t hi);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// The counted value range (full domain unless slice-restricted).
  uint64_t range_lo() const { return range_lo_; }
  uint64_t range_hi() const { return range_hi_; }

  /// True when the oracle supports exactly the reported value (GRR-style)
  /// — the counter takes its histogram fast path, and the round store's
  /// delta capture can mirror it (one sparse increment per kept report)
  /// instead of diffing full snapshots.
  bool value_equality() const { return value_equality_; }

  /// Adds one batch of reports into every shard's partial aggregate,
  /// one task per shard on `pool` (one bulk kernel pass over the whole
  /// range when `pool` is null). Not safe to call concurrently with
  /// itself — batches are accumulated one at a time by the collector's
  /// consumer.
  void AccumulateBatch(const std::vector<ldp::LdpReport>& reports,
                       ThreadPool* pool);

  /// Zero-copy view of the counts, indexed by value − range_lo() —
  /// already in deterministic merged order (shards are slices of this
  /// vector). Only valid to read between AccumulateBatch calls.
  const std::vector<uint64_t>& counts() const { return counts_; }

  /// Deterministic merge: a copy of counts() (length = range_hi() −
  /// range_lo()).
  std::vector<uint64_t> Finalize() const;

  /// Inverse of Finalize for checkpoint recovery: restores a merged
  /// supports vector (length = counted range). The layout depends only
  /// on the counted range, so a snapshot taken by Finalize restores
  /// exactly (num_shards may even differ).
  Status Restore(const std::vector<uint64_t>& merged);

  /// Clears all partial aggregates (next collection round/window).
  void Reset();

 private:
  struct Shard {
    uint64_t lo = 0;  // first owned value
    uint64_t hi = 0;  // one past the last owned value
  };

  const ldp::ScalarFrequencyOracle& oracle_;
  bool value_equality_;
  uint64_t range_lo_ = 0;
  uint64_t range_hi_ = 0;
  std::vector<Shard> shards_;
  std::vector<uint64_t> counts_;  // contiguous, one slot per counted value
};

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_SHARDED_COUNTER_H_

// Domain-sharded support aggregation.
//
// The value domain [0, d) is partitioned into contiguous shards; each
// shard owns the support counters of its value range. A batch of decoded
// reports is fanned out with one task per shard group — every task scans
// the whole batch but only touches its own counters, so accumulation is
// lock-free, race-free, and (being integer addition) independent of both
// task scheduling and report order. Finalize() concatenates the shard
// slices in shard order, which makes the merged vector deterministic by
// construction.
//
// Oracles whose support test is plain value equality (GRR — see
// ScalarFrequencyOracle::SupportIsValueEquality) skip the fan-out
// entirely: one histogram increment per report into the owning shard's
// slice, turning the O(batch × d) aggregation into O(batch).

#ifndef SHUFFLEDP_SERVICE_SHARDED_COUNTER_H_
#define SHUFFLEDP_SERVICE_SHARDED_COUNTER_H_

#include <cstdint>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace service {

/// Per-shard partial support aggregates over the oracle's full domain —
/// or, for a partition-scoped worker, over one contiguous value slice
/// [lo, hi) of it (the shard fan-out then divides the slice instead).
class ShardedSupportCounter {
 public:
  /// Full-domain counter. `num_shards` = 0 picks min(64, domain_size).
  ShardedSupportCounter(const ldp::ScalarFrequencyOracle& oracle,
                        uint32_t num_shards);

  /// Slice-restricted counter over values [lo, hi): supports are counted
  /// (and Finalize/Restore sized) for that range only. Pre: lo < hi <=
  /// domain_size. `lo == hi == 0` means the full domain.
  ShardedSupportCounter(const ldp::ScalarFrequencyOracle& oracle,
                        uint32_t num_shards, uint64_t lo, uint64_t hi);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// The counted value range (full domain unless slice-restricted).
  uint64_t range_lo() const { return range_lo_; }
  uint64_t range_hi() const { return range_hi_; }

  /// True when the oracle supports exactly the reported value (GRR-style)
  /// — the counter takes its histogram fast path, and the round store's
  /// delta capture can mirror it (one sparse increment per kept report)
  /// instead of diffing full snapshots.
  bool value_equality() const { return value_equality_; }

  /// Adds one batch of reports into every shard's partial aggregate,
  /// one task per shard on `pool` (serially when `pool` is null). Not
  /// safe to call concurrently with itself — batches are accumulated one
  /// at a time by the collector's consumer.
  void AccumulateBatch(const std::vector<ldp::LdpReport>& reports,
                       ThreadPool* pool);

  /// Deterministic merge: shard slices concatenated in shard order
  /// (length = range_hi() - range_lo()).
  std::vector<uint64_t> Finalize() const;

  /// Inverse of Finalize for checkpoint recovery: scatters a merged
  /// supports vector (length = counted range) back into the shard
  /// slices. The shard partition depends only on (range, num_shards),
  /// so a snapshot taken by Finalize restores exactly.
  Status Restore(const std::vector<uint64_t>& merged);

  /// Clears all partial aggregates (next collection round/window).
  void Reset();

 private:
  struct Shard {
    uint64_t lo = 0;  // first owned value
    uint64_t hi = 0;  // one past the last owned value
    std::vector<uint64_t> counts;
  };

  void AccumulateShard(Shard* shard,
                       const std::vector<ldp::LdpReport>& reports) const;

  const ldp::ScalarFrequencyOracle& oracle_;
  bool value_equality_;
  uint64_t range_lo_ = 0;
  uint64_t range_hi_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_SHARDED_COUNTER_H_

#include "service/streaming_collector.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

#include "ldp/estimator.h"

namespace shuffledp {
namespace service {

std::string StreamingStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "batches=%llu rows=%llu backpressure_waits=%llu "
                "queue_high_water=%llu busy=%.3fs wall=%.3fs rate=%.0f rows/s",
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(rows),
                static_cast<unsigned long long>(backpressure_waits),
                static_cast<unsigned long long>(queue_high_water),
                busy_seconds, wall_seconds, rows_per_second);
  return buf;
}

ReportBatch MakePlainBatch(std::vector<ldp::LdpReport> reports) {
  auto shared =
      std::make_shared<std::vector<ldp::LdpReport>>(std::move(reports));
  ReportBatch batch;
  batch.count = shared->size();
  batch.decode = [shared](uint64_t i) -> Result<DecodedRow> {
    DecodedRow row;
    row.valid = true;
    row.report = (*shared)[i];
    return row;
  };
  return batch;
}

StreamingCollector::StreamingCollector(
    const ldp::ScalarFrequencyOracle& oracle, StreamingOptions options)
    : oracle_(oracle),
      options_(options),
      counter_(oracle, options.num_shards),
      queue_(options.queue_capacity) {
  if (options_.pool != nullptr && options_.pool->InWorkerThread()) {
    // Constructed from one of the pool's own workers (a protocol run
    // nested inside a pool task): the consumer's decode/count fan-out
    // would wait on pool slots the blocked caller occupies — a deadlock
    // once the caller parks in Push()/FinishRound(). Degrade to serial
    // processing on the consumer thread, which always makes progress.
    options_.pool = nullptr;
  }
  StartRound();
}

StreamingCollector::~StreamingCollector() {
  queue_.Close();
  if (consumer_.joinable()) consumer_.join();
}

void StreamingCollector::StartRound() {
  rows_seen_ = 0;
  batches_seen_ = 0;
  reports_decoded_ = 0;
  reports_invalid_ = 0;
  dummies_recognized_ = 0;
  busy_seconds_ = 0.0;
  round_status_ = Status::OK();
  dummies_expected_ = 0;
  dummy_multiset_.clear();
  counter_.Reset();
  waits_at_round_start_ = queue_.producer_waits();
  queue_.ResetHighWaterMark();
  round_timer_.Reset();
  queue_.Reopen();
  // The consumer spawns lazily on the first Offer (EnsureConsumer), so a
  // finished collector does not park an idle thread between rounds.
}

void StreamingCollector::EnsureConsumer() {
  std::lock_guard<std::mutex> lock(consumer_mu_);
  if (!consumer_.joinable()) {
    consumer_ = std::thread([this] { ConsumerLoop(); });
  }
}

void StreamingCollector::ExpectDummy(const ldp::LdpReport& report,
                                     uint64_t tag) {
  ++dummy_multiset_[{ldp::PackReport(report), tag}];
  ++dummies_expected_;
}

Status StreamingCollector::Offer(ReportBatch batch) {
  EnsureConsumer();
  if (!queue_.Push(std::move(batch))) {
    // The queue only rejects after Close(): either the round was already
    // finished or a decode failure shut the pipeline down.
    if (!round_status_.ok()) return round_status_;
    return Status::FailedPrecondition(
        "streaming collector: round already closed");
  }
  return Status::OK();
}

Status StreamingCollector::OfferReports(
    const std::vector<ldp::LdpReport>& reports) {
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);
  for (size_t lo = 0; lo < reports.size(); lo += batch_size) {
    size_t hi = std::min(reports.size(), lo + batch_size);
    SHUFFLEDP_RETURN_NOT_OK(
        Offer(MakePlainBatch({reports.begin() + lo, reports.begin() + hi})));
  }
  return Status::OK();
}

Status StreamingCollector::OfferIndexed(
    uint64_t total, std::function<Result<DecodedRow>(uint64_t row)> decode) {
  return OfferIndexedPrepared(total, nullptr, std::move(decode));
}

Status StreamingCollector::OfferIndexedPrepared(
    uint64_t total,
    std::function<Status(uint64_t lo, uint64_t hi, ThreadPool* pool)>
        prepare,
    std::function<Result<DecodedRow>(uint64_t row)> decode) {
  const uint64_t batch_size = std::max<size_t>(1, options_.batch_size);
  for (uint64_t lo = 0; lo < total; lo += batch_size) {
    const uint64_t hi = std::min(total, lo + batch_size);
    ReportBatch batch;
    batch.count = hi - lo;
    if (prepare) {
      batch.prepare = [prepare, lo, hi](ThreadPool* pool) {
        return prepare(lo, hi, pool);
      };
    }
    batch.decode = [decode, lo](uint64_t i) { return decode(lo + i); };
    SHUFFLEDP_RETURN_NOT_OK(Offer(std::move(batch)));
  }
  return Status::OK();
}

void StreamingCollector::ConsumerLoop() {
  ReportBatch batch;
  while (queue_.Pop(&batch)) {
    if (!round_status_.ok()) continue;  // drain without processing
    ProcessBatch(batch);
  }
}

void StreamingCollector::ProcessBatch(const ReportBatch& batch) {
  WallTimer timer;
  ++batches_seen_;
  rows_seen_ += batch.count;

  if (batch.prepare) {
    Status prep_status = batch.prepare(options_.pool);
    if (!prep_status.ok()) {
      round_status_ = prep_status;
      queue_.Close();  // unblock producers; their Offer reports the error
      return;
    }
  }

  std::vector<DecodedRow> rows(batch.count);
  std::mutex status_mu;
  Status decode_status = Status::OK();
  std::atomic<bool> failed{false};
  ForChunks(options_.pool, 0, batch.count, options_.decode_chunk,
            [&](uint64_t lo, uint64_t hi) {
              for (uint64_t i = lo; i < hi; ++i) {
                // Stop burning crypto on rows whose batch already failed.
                if (failed.load(std::memory_order_relaxed)) return;
                auto row = batch.decode(i);
                if (!row.ok()) {
                  failed.store(true, std::memory_order_relaxed);
                  std::lock_guard<std::mutex> lock(status_mu);
                  if (decode_status.ok()) decode_status = row.status();
                  return;
                }
                rows[i] = std::move(row).value();
              }
            });
  if (!decode_status.ok()) {
    round_status_ = decode_status;
    // Unblock any producer stuck in Push; their Offer reports the error.
    queue_.Close();
    return;
  }

  std::vector<ldp::LdpReport> kept;
  kept.reserve(rows.size());
  for (const DecodedRow& row : rows) {
    if (!row.valid || !oracle_.ValidateReport(row.report).ok()) {
      ++reports_invalid_;
      continue;
    }
    if (!dummy_multiset_.empty()) {
      auto it =
          dummy_multiset_.find({ldp::PackReport(row.report), row.tag});
      if (it != dummy_multiset_.end() && it->second > 0) {
        --it->second;
        ++dummies_recognized_;
        continue;  // server-planted dummy: strip before estimation
      }
    }
    kept.push_back(row.report);
  }
  reports_decoded_ += kept.size();
  counter_.AccumulateBatch(kept, options_.pool);
  busy_seconds_ += timer.ElapsedSeconds();
}

Result<RoundResult> StreamingCollector::FinishRound(uint64_t n,
                                                    uint64_t n_fake,
                                                    Calibration calibration) {
  queue_.Close();
  if (consumer_.joinable()) consumer_.join();
  const double wall = round_timer_.ElapsedSeconds();

  if (!round_status_.ok()) {
    Status failed = round_status_;
    StartRound();
    return failed;
  }

  RoundResult result;
  result.supports = counter_.Finalize();
  result.estimates =
      calibration == Calibration::kOrdinal
          ? ldp::CalibrateEstimatesOrdinal(oracle_, result.supports, n,
                                           n_fake)
          : ldp::CalibrateEstimates(oracle_, result.supports, n, n_fake);
  result.reports_decoded = reports_decoded_;
  result.reports_invalid = reports_invalid_;
  result.dummies_recognized = dummies_recognized_;
  result.spot_check_passed = dummies_recognized_ == dummies_expected_;

  result.stats.batches = batches_seen_;
  result.stats.rows = rows_seen_;
  result.stats.backpressure_waits =
      queue_.producer_waits() - waits_at_round_start_;
  result.stats.queue_high_water = queue_.high_water_mark();
  result.stats.busy_seconds = busy_seconds_;
  result.stats.wall_seconds = wall;
  result.stats.rows_per_second =
      wall > 0.0 ? static_cast<double>(rows_seen_) / wall : 0.0;

  StartRound();
  return result;
}

}  // namespace service
}  // namespace shuffledp

// Streaming server-side collection pipeline.
//
// The paper costs the protocols per user at IPUMS scale (n ≈ 602k,
// d = 915), but a server that materializes every report before touching
// the first one cannot keep up with "heavy traffic from millions of
// users". StreamingCollector replaces the monolithic collect-then-count
// pass with a pipeline:
//
//   producers ──ReportBatch──▶ BoundedQueue ──▶ consumer thread
//                (backpressure)                   │ decode batch   (pool)
//                                                 │ validate + strip dummies
//                                                 ▼ count supports (pool,
//                                                   domain-sharded)
//
// Producers enqueue fixed-size batches of reports and block when the
// bounded queue fills (backpressure). A dedicated consumer drains batches
// in FIFO order; for each batch it fans the per-report decode step
// (ECIES peel, Paillier share reconstruction, …) out across the
// ThreadPool, then fans support counting out across domain shards
// (sharded_counter.h). Because every aggregate is an integer counter and
// shard slices merge in shard order, the finalized supports — and hence
// the estimates — are bitwise identical for any pool size, including no
// pool at all. Spot-check dummies (sequential shuffle §VI-A1) are
// registered up front and stripped before counting.
//
// FinishRound() closes the window, drains, merges, calibrates, and
// resets the collector for the next round, enabling multi-round/windowed
// collection over one set of knobs (batch_size, queue_capacity,
// num_shards).

#ifndef SHUFFLEDP_SERVICE_STREAMING_COLLECTOR_H_
#define SHUFFLEDP_SERVICE_STREAMING_COLLECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "service/bounded_queue.h"
#include "service/sharded_counter.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace shuffledp {
namespace service {

/// One decoded ingestion row. `valid = false` rows (failed share
/// reconstruction, ordinal padding, …) are dropped and counted, matching
/// the protocols' treatment of malformed reports.
struct DecodedRow {
  bool valid = false;
  ldp::LdpReport report;
  uint64_t tag = 0;  ///< payload tag (spot-check matching); 0 when unused
};

/// A batch of reports flowing through the queue. `decode` is invoked for
/// i in [0, count) from pool workers (concurrently, each index once); it
/// owns whatever per-batch data it needs via its captures. A non-OK
/// result is a hard protocol failure that aborts the round.
struct ReportBatch {
  uint64_t count = 0;
  /// Optional batch-level stage run once on the consumer thread before
  /// the per-row decode fan-out — e.g. the PEOS packed Paillier
  /// decryption, which amortizes one CRT decryption over a whole group
  /// of rows. Receives the fan-out pool (null = serial); its time counts
  /// toward busy_seconds. A non-OK status aborts the round like a decode
  /// failure.
  std::function<Status(ThreadPool* pool)> prepare;
  std::function<Result<DecodedRow>(uint64_t i)> decode;
};

/// Builds a decode-free batch from already-decoded reports.
ReportBatch MakePlainBatch(std::vector<ldp::LdpReport> reports);

/// Which estimator calibration FinishRound applies.
enum class Calibration {
  kStandard,  ///< uniform fake reports at q_fake (sequential shuffle)
  kOrdinal,   ///< uniform Z_{2^B} fakes at OrdinalFakeSupportProb (PEOS)
};

/// Pipeline knobs.
struct StreamingOptions {
  size_t batch_size = 4096;     ///< reports per batch (producer helpers)
  size_t queue_capacity = 64;   ///< buffered batches before backpressure
  uint32_t num_shards = 0;      ///< domain shards; 0 = min(64, d)
  uint64_t decode_chunk = 512;  ///< reports per decode task
  ThreadPool* pool = nullptr;   ///< decode/count fan-out; null = serial
};

/// Pipeline health/throughput counters for one round.
struct StreamingStats {
  uint64_t batches = 0;
  uint64_t rows = 0;                 ///< rows offered (incl. invalid/dummy)
  uint64_t backpressure_waits = 0;   ///< producer pushes that blocked
  uint64_t queue_high_water = 0;     ///< deepest buffered batch count
  double busy_seconds = 0.0;         ///< consumer time decoding + counting
  double wall_seconds = 0.0;         ///< round open -> drain complete
  double rows_per_second = 0.0;      ///< rows / wall_seconds

  std::string ToString() const;
};

/// Result of one collection round.
struct RoundResult {
  std::vector<uint64_t> supports;   ///< per-value counts over [0, d)
  std::vector<double> estimates;    ///< calibrated frequencies
  uint64_t reports_decoded = 0;     ///< valid rows counted (dummies excl.)
  uint64_t reports_invalid = 0;     ///< dropped rows
  uint64_t dummies_recognized = 0;  ///< spot-check dummies stripped
  bool spot_check_passed = true;    ///< every expected dummy arrived
  StreamingStats stats;
};

/// Sharded streaming collector; one instance per collection endpoint.
///
/// Thread-safety: Offer* may be called from any thread *except* workers
/// of `options.pool` (a blocked producer on a pool worker could starve
/// the consumer's decode tasks and deadlock the pipeline). A collector
/// *constructed* on a pool worker — a protocol run nested inside a pool
/// task — detects this and degrades to serial processing. ExpectDummy
/// must precede the rows it matches. FinishRound is not reentrant.
class StreamingCollector {
 public:
  StreamingCollector(const ldp::ScalarFrequencyOracle& oracle,
                     StreamingOptions options);
  ~StreamingCollector();

  StreamingCollector(const StreamingCollector&) = delete;
  StreamingCollector& operator=(const StreamingCollector&) = delete;

  /// Registers a server-planted spot-check dummy; matching rows are
  /// stripped before estimation and counted in dummies_recognized.
  void ExpectDummy(const ldp::LdpReport& report, uint64_t tag);

  /// Enqueues one batch; blocks under backpressure. Fails once the round
  /// is closed or a decode error aborted it.
  Status Offer(ReportBatch batch);

  /// Splits pre-decoded reports into batch_size batches and offers them.
  Status OfferReports(const std::vector<ldp::LdpReport>& reports);

  /// Slices rows [0, total) into batch_size batches and offers each;
  /// `decode` receives the absolute row index and must be safe to call
  /// concurrently (it is shared across the batches' pool tasks).
  Status OfferIndexed(uint64_t total,
                      std::function<Result<DecodedRow>(uint64_t row)> decode);

  /// Like OfferIndexed, but each batch first runs `prepare(lo, hi, pool)`
  /// once on the consumer thread (absolute row range [lo, hi); the pool
  /// is the decode fan-out pool, null = serial) before its rows decode —
  /// the hook for batch-level crypto such as packed AHE decryption.
  Status OfferIndexedPrepared(
      uint64_t total,
      std::function<Status(uint64_t lo, uint64_t hi, ThreadPool* pool)>
          prepare,
      std::function<Result<DecodedRow>(uint64_t row)> decode);

  /// Closes the window, drains the queue, merges the shard aggregates in
  /// shard order, and calibrates with n users and n_fake fake reports.
  /// Resets the collector afterwards, ready for the next round.
  Result<RoundResult> FinishRound(uint64_t n, uint64_t n_fake,
                                  Calibration calibration);

  const StreamingOptions& options() const { return options_; }
  const ldp::ScalarFrequencyOracle& oracle() const { return oracle_; }

 private:
  void ConsumerLoop();
  void ProcessBatch(const ReportBatch& batch);
  void StartRound();
  void EnsureConsumer();

  const ldp::ScalarFrequencyOracle& oracle_;
  StreamingOptions options_;
  ShardedSupportCounter counter_;
  BoundedQueue<ReportBatch> queue_;
  std::mutex consumer_mu_;  // guards the lazy consumer spawn
  std::thread consumer_;

  // Consumer-owned state (the single consumer thread writes; readers wait
  // for it to join in FinishRound).
  uint64_t rows_seen_ = 0;
  uint64_t batches_seen_ = 0;
  uint64_t reports_decoded_ = 0;
  uint64_t reports_invalid_ = 0;
  uint64_t dummies_recognized_ = 0;
  double busy_seconds_ = 0.0;
  Status round_status_ = Status::OK();

  uint64_t dummies_expected_ = 0;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> dummy_multiset_;
  WallTimer round_timer_;
  uint64_t waits_at_round_start_ = 0;
};

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_STREAMING_COLLECTOR_H_

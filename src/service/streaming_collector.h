// Single-node streaming collection — the 1-of-1 partition special case.
//
// All of the ingest/checkpoint/drain machinery lives in
// partition_worker.h (PartitionWorker): a worker owns one slice of a
// collection round, and a distributed deployment runs many of them
// behind a MergeCoordinator (coordinator.h). StreamingCollector is the
// name the single-node world keeps: one worker owning the full value
// domain, calibrating its own estimates at round close. Every type the
// pipeline speaks (ReportBatch, StreamingOptions, RoundResult, …) is
// defined in partition_worker.h and re-exported through this header.

#ifndef SHUFFLEDP_SERVICE_STREAMING_COLLECTOR_H_
#define SHUFFLEDP_SERVICE_STREAMING_COLLECTOR_H_

#include "service/partition_worker.h"

namespace shuffledp {
namespace service {

/// Full-domain streaming collector; one instance per single-node
/// collection endpoint. Exactly a PartitionWorker whose slice is the
/// whole domain (any partition slice passed in options is overridden) —
/// see partition_worker.h for the pipeline contract.
class StreamingCollector : public PartitionWorker {
 public:
  StreamingCollector(const ldp::ScalarFrequencyOracle& oracle,
                     StreamingOptions options)
      : PartitionWorker(oracle, FullDomain(std::move(options))) {}

 private:
  static StreamingOptions FullDomain(StreamingOptions options) {
    options.partition = PartitionSlice{};
    return options;
  }
};

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_STREAMING_COLLECTOR_H_

#include "service/transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <unordered_map>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ldp/wire.h"
#include "service/fault_injection.h"
#include "service/retry.h"
#include "util/hash.h"

namespace shuffledp {
namespace service {

namespace {

/// Errno taxonomy (service/retry.h): failures that say "the peer is
/// down / unreachable / mid-restart" are transient and map to
/// kUnavailable, so the retry layer reconnects through them. Anything
/// else is an Internal error — not retried, because it signals a bug or
/// a local-resource problem a reconnect will not fix.
bool TransientErrno(int err) {
  switch (err) {
    case ECONNREFUSED:
    case ECONNRESET:
    case ECONNABORTED:
    case EPIPE:
    case ETIMEDOUT:
    case EHOSTUNREACH:
    case ENETUNREACH:
    case ENETDOWN:
      return true;
    default:
      return false;
  }
}

Status MapSocketErrno(const char* what, int err, const std::string& peer) {
  std::string msg = std::string(what) + " " + peer + ": " +
                    std::strerror(err);
  return TransientErrno(err) ? Status::Unavailable(std::move(msg))
                             : Status::Internal(std::move(msg));
}

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Monotonic per-operation deadline; ms <= 0 means "no deadline".
class DeadlineTimer {
 public:
  static DeadlineTimer After(int ms) {
    DeadlineTimer t;
    if (ms > 0) {
      t.infinite_ = false;
      t.at_ = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(ms);
    }
    return t;
  }

  /// poll() timeout argument: -1 = wait forever, else clamped >= 0.
  int PollTimeoutMs() const {
    if (infinite_) return -1;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    at_ - std::chrono::steady_clock::now())
                    .count();
    if (left < 0) return 0;
    if (left > 3600 * 1000) return 3600 * 1000;
    return static_cast<int>(left);
  }

  bool Expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool infinite_ = true;
  std::chrono::steady_clock::time_point at_;
};

/// Waits for `events` readiness on `fd` within the deadline.
/// kDeadlineExceeded names the operation and peer; POLLERR/POLLHUP are
/// left for the subsequent syscall to diagnose precisely.
Status PollWait(int fd, short events, const DeadlineTimer& deadline,
                const char* what, const std::string& peer) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    int rc = ::poll(&pfd, 1, deadline.PollTimeoutMs());
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) + " " + peer +
                                      ": deadline exceeded");
    }
    if (errno == EINTR) continue;
    return MapSocketErrno(what, errno, peer);
  }
}

/// Applies an injected fault for one syscall site. Returns non-OK for
/// kFailErrno (mapped through the errno taxonomy); fills
/// `truncate_send` (when non-null) for kTruncateSend.
Status ApplyFault(FaultOp op, uint16_t port, const std::string& peer,
                  size_t* truncate_send = nullptr) {
  FaultAction action = EvaluateInstalledFault(op, port);
  switch (action.kind) {
    case FaultAction::Kind::kNone:
      break;
    case FaultAction::Kind::kFailErrno:
      return MapSocketErrno(FaultOpName(op), action.err,
                            peer + " [injected]");
    case FaultAction::Kind::kDelayMs:
      SleepForMs(action.delay_ms);
      break;
    case FaultAction::Kind::kTruncateSend:
      if (truncate_send != nullptr) {
        *truncate_send = static_cast<size_t>(action.max_bytes);
      }
      break;
  }
  return Status::OK();
}

/// Full-buffer send over a nonblocking socket with a deadline:
/// poll(POLLOUT) whenever the kernel buffer is full, fail with
/// kDeadlineExceeded when the peer stops draining. MSG_NOSIGNAL so a
/// dropped peer surfaces as EPIPE instead of killing the process.
Status SendAllDeadline(int fd, const uint8_t* data, size_t len,
                       const DeadlineTimer& deadline, uint16_t fault_port,
                       const std::string& peer) {
  size_t off = 0;
  while (off < len) {
    size_t truncate = 0;
    SHUFFLEDP_RETURN_NOT_OK(
        ApplyFault(FaultOp::kSend, fault_port, peer, &truncate));
    size_t want = len - off;
    if (truncate > 0) want = std::min(want, truncate);  // torn write
    ssize_t sent = ::send(fd, data + off, want, MSG_NOSIGNAL);
    if (sent > 0) {
      off += static_cast<size_t>(sent);
      continue;
    }
    if (sent == 0) {
      // A stream send never legitimately returns 0 for a nonzero
      // length (and `want` is always >= 1 here: the loop guard keeps
      // len - off positive and injected truncations clamp to >= 1).
      // errno is unspecified in this case — report the fact itself
      // instead of mislabeling the failure with a stale errno.
      return Status::Internal("send " + peer +
                              ": returned 0 for a nonzero-length write");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SHUFFLEDP_RETURN_NOT_OK(PollWait(fd, POLLOUT, deadline, "send", peer));
      continue;
    }
    if (errno == EINTR) continue;
    return MapSocketErrno("send", errno, peer);
  }
  return Status::OK();
}

/// One deadline-bounded read. `*got` = 0 signals a clean EOF; transient
/// socket errors map to kUnavailable, an expired deadline to
/// kDeadlineExceeded.
Status RecvSomeDeadline(int fd, uint8_t* buf, size_t cap,
                        const DeadlineTimer& deadline, uint16_t fault_port,
                        const std::string& peer, size_t* got) {
  for (;;) {
    SHUFFLEDP_RETURN_NOT_OK(ApplyFault(FaultOp::kRecv, fault_port, peer));
    ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) {
      *got = static_cast<size_t>(n);
      return Status::OK();
    }
    if (n == 0) {
      *got = 0;
      return Status::OK();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SHUFFLEDP_RETURN_NOT_OK(PollWait(fd, POLLIN, deadline, "recv", peer));
      continue;
    }
    if (errno == EINTR) continue;
    return MapSocketErrno("recv", errno, peer);
  }
}

/// Nonblocking connect with a deadline: EINPROGRESS + poll(POLLOUT) +
/// SO_ERROR, so a blackholed address fails with kDeadlineExceeded
/// naming the endpoint instead of hanging ::connect forever. The socket
/// stays nonblocking — every later operation is poll-driven too.
Status ConnectDeadline(int fd, const sockaddr_in& addr,
                       const DeadlineTimer& deadline,
                       const std::string& peer) {
  for (;;) {
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
    if (rc == 0) return Status::OK();
    if (errno == EINTR) continue;
    if (errno != EINPROGRESS) return MapSocketErrno("connect", errno, peer);
    break;
  }
  SHUFFLEDP_RETURN_NOT_OK(PollWait(fd, POLLOUT, deadline, "connect", peer));
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
    return Errno("getsockopt(SO_ERROR)");
  }
  if (err != 0) return MapSocketErrno("connect", err, peer);
  return Status::OK();
}

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kBatch) &&
         type <= static_cast<uint8_t>(FrameType::kQuery);
}

/// Cap-checked frame write shared by both endpoints: a payload beyond
/// kMaxFramePayload must fail fast here — encoding it would poison the
/// peer's decoder mid-stream (and a >4 GiB payload would silently
/// truncate in the u32 length field).
Status WriteFrameTo(int fd, const Frame& frame, const DeadlineTimer& deadline,
                    uint16_t fault_port, const std::string& peer) {
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte transport cap");
  }
  Bytes wire = EncodeFrame(frame);
  return SendAllDeadline(fd, wire.data(), wire.size(), deadline, fault_port,
                         peer);
}

uint64_t MonotonicMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Hashed timing wheel for the event loop's idle/write deadlines: O(1)
/// arm/cancel (intrusive entries, swap-remove), one coarse tick sweep
/// per loop iteration instead of a per-operation poll() timeout. Timers
/// here are eviction hygiene, not precision clocks — firing up to one
/// tick (8 ms) late is fine, firing early is never allowed (the sweep
/// re-checks each entry's absolute deadline, so an entry hashed into a
/// revisited slot a full revolution early just stays put).
class TimerWheel {
 public:
  struct Entry {
    uint64_t deadline_ms = 0;
    int slot = -1;  ///< -1 = unarmed
    size_t pos = 0;
    void* owner = nullptr;
    uint8_t kind = 0;

    bool armed() const { return slot >= 0; }
  };

  static constexpr uint64_t kTickMs = 8;
  static constexpr size_t kSlots = 512;

  TimerWheel() : slots_(kSlots) {}

  void Arm(Entry* e, uint64_t now_ms, uint64_t delay_ms) {
    Cancel(e);
    e->deadline_ms = now_ms + delay_ms;
    // Hash into the first tick boundary strictly past the deadline: the
    // sweep reaching that tick carries now >= tick*kTickMs > deadline,
    // so the due check below always passes. Hashing into deadline's own
    // tick instead would let a sweep arrive in the sub-tick window
    // before the deadline, pass the entry over, and not revisit the
    // slot for a full revolution (~4 s) — a busy loop crosses ticks
    // right at their boundary, making that near-certain.
    uint64_t tick = e->deadline_ms / kTickMs + 1;
    // Never hash into a slot the sweep already passed this revolution —
    // the entry would sleep a full lap.
    if (tick <= last_tick_) tick = last_tick_ + 1;
    const size_t slot = static_cast<size_t>(tick % kSlots);
    e->slot = static_cast<int>(slot);
    e->pos = slots_[slot].size();
    slots_[slot].push_back(e);
    ++armed_;
  }

  void Cancel(Entry* e) {
    if (e->slot < 0) return;
    std::vector<Entry*>& v = slots_[e->slot];
    v[e->pos] = v.back();
    v[e->pos]->pos = e->pos;
    v.pop_back();
    e->slot = -1;
    --armed_;
  }

  /// epoll_wait timeout: tick granularity while anything is armed, block
  /// forever otherwise (a coordinator fleet with deadlines disabled
  /// never wakes on timers at all).
  int TimeoutMs() const { return armed_ == 0 ? -1 : static_cast<int>(kTickMs); }

  /// Detaches every entry due at `now_ms` into `out`. Two-phase on
  /// purpose: the caller runs eviction callbacks only after the sweep,
  /// so a callback cancelling a sibling timer never mutates a slot this
  /// loop is iterating.
  void ExpireInto(uint64_t now_ms, std::vector<Entry*>* out) {
    const uint64_t tick = now_ms / kTickMs;
    if (tick <= last_tick_) return;
    if (armed_ == 0) {
      last_tick_ = tick;
      return;
    }
    uint64_t from = last_tick_ + 1;
    if (tick - from >= kSlots) from = tick - kSlots + 1;  // >= one lap: each slot once
    for (uint64_t t = from; t <= tick; ++t) {
      std::vector<Entry*>& v = slots_[t % kSlots];
      for (size_t i = 0; i < v.size();) {
        Entry* e = v[i];
        if (e->deadline_ms <= now_ms) {
          v[i] = v.back();
          v[i]->pos = i;
          v.pop_back();
          e->slot = -1;
          --armed_;
          out->push_back(e);
        } else {
          ++i;  // a later revolution's entry sharing the slot
        }
      }
    }
    last_tick_ = tick;
  }

 private:
  std::vector<std::vector<Entry*>> slots_;
  uint64_t last_tick_ = 0;
  size_t armed_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Framing codec
// ---------------------------------------------------------------------------

Bytes EncodeFrame(const Frame& frame) {
  ByteWriter w(kFrameHeaderBytes + frame.payload.size());
  w.PutBytes(kFrameMagic, sizeof(kFrameMagic));
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(frame.type));
  w.PutU16(frame.partition);
  w.PutU64(frame.round_id);
  w.PutU32(static_cast<uint32_t>(frame.payload.size()));
  // The CRC covers the 20 header bytes before it *and* the payload, so a
  // corrupted round id or length cannot slip through just because the
  // payload survived intact.
  uint32_t crc = Crc32(w.data().data(), kFrameHeaderBytes - 4);
  crc = Crc32(frame.payload.data(), frame.payload.size(), crc);
  w.PutU32(crc);
  w.PutBytes(frame.payload);
  return w.Release();
}

Status FrameDecoder::Feed(const uint8_t* data, size_t len) {
  if (!error_.ok()) return error_;
  buf_.insert(buf_.end(), data, data + len);
  while (buf_.size() >= kFrameHeaderBytes) {
    ByteReader r(buf_);
    Bytes magic = *r.GetBytes(4);
    if (std::memcmp(magic.data(), kFrameMagic, 4) != 0) {
      error_ = Status::ProtocolViolation("frame magic mismatch");
      return error_;
    }
    uint8_t version = *r.GetU8();
    if (version != kWireVersion) {
      error_ = Status::ProtocolViolation(
          "unsupported wire version " + std::to_string(version) +
          " (this endpoint speaks " + std::to_string(kWireVersion) + ")");
      return error_;
    }
    uint8_t type = *r.GetU8();
    if (!ValidFrameType(type)) {
      error_ = Status::ProtocolViolation("unknown frame type " +
                                         std::to_string(type));
      return error_;
    }
    uint16_t partition = *r.GetU16();
    uint64_t round_id = *r.GetU64();
    uint32_t payload_len = *r.GetU32();
    uint32_t expected_crc = *r.GetU32();
    if (payload_len > kMaxFramePayload) {
      // Reject the length lie before buffering or allocating anything
      // near that size.
      error_ = Status::ProtocolViolation(
          "frame payload length " + std::to_string(payload_len) +
          " exceeds the " + std::to_string(kMaxFramePayload) + " cap");
      return error_;
    }
    if (buf_.size() < kFrameHeaderBytes + payload_len) break;  // torn: wait

    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.partition = partition;
    frame.round_id = round_id;
    frame.payload.assign(buf_.begin() + kFrameHeaderBytes,
                         buf_.begin() + kFrameHeaderBytes + payload_len);
    uint32_t crc = Crc32(buf_.data(), kFrameHeaderBytes - 4);
    crc = Crc32(frame.payload.data(), frame.payload.size(), crc);
    if (crc != expected_crc) {
      error_ = Status::DataLoss("frame CRC mismatch");
      return error_;
    }
    buf_.erase(buf_.begin(), buf_.begin() + kFrameHeaderBytes + payload_len);
    ready_.push_back(std::move(frame));
  }
  return Status::OK();
}

bool FrameDecoder::Next(Frame* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

// ---------------------------------------------------------------------------
// kResult payload codec
// ---------------------------------------------------------------------------

Bytes SerializeRoundResult(const RemoteRoundResult& result) {
  ByteWriter w(32 + result.supports.size() * 12);
  w.PutVarint(result.reports_decoded);
  w.PutVarint(result.reports_invalid);
  w.PutVarint(result.dummies_recognized);
  w.PutVarint(result.dummies_expected);
  w.PutU8(result.spot_check_passed ? 1 : 0);
  w.PutVarint(result.supports.size());
  for (uint64_t s : result.supports) w.PutVarint(s);
  // Estimates carry their own count: a Calibration::kNone round (raw
  // supports for the merge coordinator) ships zero of them.
  w.PutVarint(result.estimates.size());
  for (double e : result.estimates) w.PutDouble(e);
  return w.Release();
}

Result<RemoteRoundResult> ParseRoundResult(const Bytes& payload) {
  ByteReader r(payload);
  RemoteRoundResult result;
  SHUFFLEDP_ASSIGN_OR_RETURN(result.reports_decoded, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(result.reports_invalid, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(result.dummies_recognized, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(result.dummies_expected, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t spot, r.GetU8());
  result.spot_check_passed = spot != 0;
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t d, r.GetVarint());
  // Every support costs >= 1 byte and every estimate 8, so d is bounded
  // by the payload size; a lying d cannot drive a huge reserve.
  if (d > r.Remaining()) {
    return Status::DataLoss("result domain size exceeds payload");
  }
  result.supports.reserve(d);
  for (uint64_t i = 0; i < d; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t s, r.GetVarint());
    result.supports.push_back(s);
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t e_count, r.GetVarint());
  if (e_count != 0 && e_count != d) {
    return Status::DataLoss("result estimate count is neither 0 nor d");
  }
  if (e_count > r.Remaining() / 8) {
    return Status::DataLoss("result estimate count exceeds payload");
  }
  result.estimates.reserve(e_count);
  for (uint64_t i = 0; i < e_count; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(double e, r.GetDouble());
    result.estimates.push_back(e);
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("result payload has trailing bytes");
  }
  return result;
}

// ---------------------------------------------------------------------------
// CollectionServer
// ---------------------------------------------------------------------------

CollectionServer::CollectionServer(const ldp::ScalarFrequencyOracle& oracle,
                                   CollectionServerOptions options)
    : oracle_(oracle), options_(std::move(options)) {}

// One epoll readiness loop. Every connection is pinned to exactly one
// loop for its whole life, so connection state (decoder, write queue,
// timers) is single-threaded by construction — cross-thread work
// arrives only through Post(), and the finisher threads refer to
// connections by id, never by pointer. Level-triggered epoll keeps the
// state machine simple: missing an edge is impossible, and interest is
// dropped (EPOLL_CTL_DEL) whenever the loop genuinely wants nothing
// from the socket (a paused connection with an empty write queue), so
// a hung-up peer cannot spin the loop on EPOLLHUP.
class CollectionServer::EventLoop {
 public:
  explicit EventLoop(CollectionServer* server)
      : server_(server),
        peer_("client@:" + std::to_string(server->port_)),
        accept_peer_("listener@:" + std::to_string(server->port_)) {}

  ~EventLoop() {
    if (event_fd_ >= 0) ::close(event_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll set and wakeup eventfd; `listen_fd` >= 0 makes
  /// this the accepting loop (loop 0).
  Status Init(int listen_fd) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return Errno("epoll_create1");
    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (event_fd_ < 0) return Errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeupKey;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
      return Errno("epoll_ctl(eventfd)");
    }
    if (listen_fd >= 0) {
      listen_fd_ = listen_fd;
      ev.events = EPOLLIN;
      ev.data.u64 = kListenKey;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd, &ev) != 0) {
        return Errno("epoll_ctl(listener)");
      }
    }
    return Status::OK();
  }

  void StartThread() {
    thread_ = std::thread([this] { Run(); });
  }

  void RequestStop() {
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      stop_requested_ = true;
    }
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Queues `task` onto the loop thread. False (task dropped) once the
  /// loop is stopping — the caller still owns whatever the task would
  /// have taken over.
  bool Post(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      if (stop_requested_) return false;
      tasks_.push_back(std::move(task));
    }
    Wake();
    return true;
  }

  /// Pins an accepted socket to this loop (thread-safe — called from
  /// the accepting loop). Closed-and-counted when the loop is already
  /// stopping, so accepted/closed stay balanced through shutdown races.
  void AdoptSocket(int fd) {
    if (!Post([this, fd] { RegisterConn(fd); })) {
      ::close(fd);
      server_->stat_closed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Finisher-thread completion, run as a posted task: deliver the
  /// kFinish reply (or fail the connection) and resume reading.
  void CompleteFinish(uint64_t conn_id, const Status& fail, Frame reply) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    Conn* c = it->second.get();
    if (c->dead) return;
    c->reads_paused = false;
    if (!fail.ok()) {
      FailConn(c, fail);
      return;
    }
    Status sent = EnqueueReply(c, reply);
    if (c->dead) return;
    if (!sent.ok()) {
      FailConn(c, sent);
      return;
    }
    ArmIdle(c);
    UpdateInterest(c);
    // Frames that decoded behind the kFinish resume here, in order;
    // level-triggered epoll re-delivers whatever else the kernel
    // buffered once EPOLLIN interest is back.
    ProcessDecodedFrames(c);
  }

 private:
  /// Per-connection state, touched only by the owning loop thread.
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    /// Encoded reply frames awaiting the socket; out_off bytes of the
    /// front one are already sent. out_bytes is the queued total the
    /// write_queue_max_bytes bound meters.
    std::deque<Bytes> out;
    size_t out_off = 0;
    size_t out_bytes = 0;
    uint32_t events = 0;  ///< epoll interest currently registered
    bool registered = false;
    bool reads_paused = false;  ///< a kFinish wait is in flight
    bool close_after_flush = false;
    bool dead = false;
    TimerWheel::Entry idle_timer;
    TimerWheel::Entry write_timer;
  };

  static constexpr uint64_t kWakeupKey = 0;
  static constexpr uint64_t kListenKey = 1;
  static constexpr uint64_t kFirstConnId = 2;
  static constexpr uint8_t kIdleKind = 0;
  static constexpr uint8_t kWriteKind = 1;
  /// Read-burst bound per readiness event: one connection with a deep
  /// kernel buffer cannot monopolize the loop while others wait.
  static constexpr size_t kReadBurst = 256 * 1024;

  void Wake() {
    uint64_t one = 1;
    ssize_t rc = ::write(event_fd_, &one, sizeof(one));
    (void)rc;  // EAGAIN means a wakeup is already pending — good enough
  }

  void Run() {
    std::vector<epoll_event> events(128);
    std::vector<TimerWheel::Entry*> expired;
    std::vector<std::function<void()>> tasks;
    for (;;) {
      int rc = ::epoll_wait(epoll_fd_, events.data(),
                            static_cast<int>(events.size()),
                            wheel_.TimeoutMs());
      if (rc < 0 && errno != EINTR) break;
      if (rc < 0) rc = 0;
      bool stop = false;
      tasks.clear();
      {
        std::lock_guard<std::mutex> lock(tasks_mu_);
        tasks.swap(tasks_);
        stop = stop_requested_;
      }
      for (auto& task : tasks) task();
      if (stop) break;
      for (int i = 0; i < rc; ++i) {
        const uint64_t key = events[i].data.u64;
        const uint32_t ev = events[i].events;
        if (key == kWakeupKey) {
          uint64_t drained = 0;
          while (::read(event_fd_, &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        if (key == kListenKey) {
          OnAccept();
          continue;
        }
        auto it = conns_.find(key);
        if (it == conns_.end()) continue;  // closed earlier this batch
        Conn* c = it->second.get();
        if (c->dead) continue;
        if (ev & EPOLLERR) {
          CloseConn(c);
          continue;
        }
        if (ev & EPOLLOUT) {
          FlushWrites(c);
          if (c->dead) continue;
        }
        if (ev & (EPOLLIN | EPOLLHUP)) OnReadable(c);
      }
      expired.clear();
      wheel_.ExpireInto(MonotonicMs(), &expired);
      for (TimerWheel::Entry* e : expired) {
        Conn* c = static_cast<Conn*>(e->owner);
        if (c->dead) continue;
        if (e->kind == kIdleKind) {
          server_->stat_evicted_idle_.fetch_add(1, std::memory_order_relaxed);
        } else {
          server_->stat_evicted_slow_.fetch_add(1, std::memory_order_relaxed);
        }
        CloseConn(c);
      }
      ReapDead();
    }
    // Stop: every surviving connection closes here, counted like any
    // other close.
    for (auto& entry : conns_) {
      if (!entry.second->dead) CloseConn(entry.second.get());
    }
    conns_.clear();
    dead_ids_.clear();
  }

  void OnAccept() {
    for (;;) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        // The peer aborting between SYN and accept is its problem, not
        // ours; anything else (EMFILE under fd pressure) backs off a
        // beat instead of spinning on a still-readable listener.
        if (errno == ECONNABORTED || errno == EPROTO) continue;
        SleepForMs(10);
        return;
      }
      // Scripted accept faults: a kFailErrno rule models "the endpoint
      // is up but sheds this connection", a delay a wedged acceptor.
      Status admitted =
          ApplyFault(FaultOp::kAccept, server_->port_, accept_peer_);
      if (!admitted.ok()) {
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (!SetNonBlocking(fd).ok()) {
        ::close(fd);
        continue;
      }
      server_->stat_accepted_.fetch_add(1, std::memory_order_relaxed);
      const size_t n = server_->loops_.size();
      const size_t target =
          server_->next_loop_.fetch_add(1, std::memory_order_relaxed) % n;
      server_->loops_[target]->AdoptSocket(fd);
    }
  }

  void RegisterConn(int fd) {
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->idle_timer.owner = conn.get();
    conn->idle_timer.kind = kIdleKind;
    conn->write_timer.owner = conn.get();
    conn->write_timer.kind = kWriteKind;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      server_->stat_closed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    conn->registered = true;
    conn->events = EPOLLIN;
    Conn* c = conn.get();
    conns_.emplace(conn->id, std::move(conn));
    ArmIdle(c);
  }

  /// Marks the connection dead, cancels its timers, deregisters and
  /// closes the socket, and counts the close. The Conn object survives
  /// until ReapDead() at the end of the loop iteration so callers up
  /// the stack can still test c->dead.
  void CloseConn(Conn* c) {
    if (c->dead) return;
    c->dead = true;
    wheel_.Cancel(&c->idle_timer);
    wheel_.Cancel(&c->write_timer);
    if (c->registered) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
      c->registered = false;
    }
    ::close(c->fd);
    c->fd = -1;
    server_->stat_closed_.fetch_add(1, std::memory_order_relaxed);
    dead_ids_.push_back(c->id);
  }

  void ReapDead() {
    for (uint64_t id : dead_ids_) conns_.erase(id);
    dead_ids_.clear();
  }

  void ArmIdle(Conn* c) {
    if (server_->options_.idle_timeout_ms <= 0) return;
    wheel_.Arm(&c->idle_timer, MonotonicMs(),
               static_cast<uint64_t>(server_->options_.idle_timeout_ms));
  }

  /// Recomputes epoll interest from the connection's state. Interest of
  /// nothing deregisters the fd entirely (EPOLLHUP/EPOLLERR are
  /// unmaskable, and a paused connection must not spin on them).
  void UpdateInterest(Conn* c) {
    if (c->dead) return;
    uint32_t want = 0;
    if (!c->reads_paused && !c->close_after_flush) want |= EPOLLIN;
    if (!c->out.empty()) want |= EPOLLOUT;
    if (want == 0) {
      if (c->registered) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
        c->registered = false;
      }
      return;
    }
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = c->id;
    if (!c->registered) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c->fd, &ev);
      c->registered = true;
      c->events = want;
      return;
    }
    if (want != c->events) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
      c->events = want;
    }
  }

  void OnReadable(Conn* c) {
    if (c->dead || c->reads_paused || c->close_after_flush) return;
    uint8_t buf[65536];
    size_t budget = kReadBurst;
    while (budget > 0) {
      Status fault = ApplyFault(FaultOp::kRecv, server_->port_, peer_);
      if (!fault.ok()) {
        // An injected recv failure models a reset: same exit as the
        // real syscall failing.
        CloseConn(c);
        return;
      }
      const size_t want = std::min(sizeof(buf), budget);
      ssize_t got = ::recv(c->fd, buf, want, 0);
      if (got == 0) {
        CloseConn(c);  // peer closed
        return;
      }
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        CloseConn(c);  // reset / injected-equivalent failure
        return;
      }
      budget -= static_cast<size_t>(got);
      Status fed = c->decoder.Feed(buf, static_cast<size_t>(got));
      if (!fed.ok()) {
        // Malformed bytes poison the decoder; frames that decoded
        // earlier in this same chunk are dropped with the connection —
        // exactly the per-thread reader's semantics.
        FailConn(c, fed);
        return;
      }
      ProcessDecodedFrames(c);
      if (c->dead || c->reads_paused || c->close_after_flush) return;
      if (static_cast<size_t>(got) < want) return;  // socket drained
    }
  }

  void ProcessDecodedFrames(Conn* c) {
    Status status = Status::OK();
    bool handled = false;
    Frame frame;
    while (status.ok() && !c->dead && !c->reads_paused &&
           !c->close_after_flush && c->decoder.Next(&frame)) {
      status = HandleFrameEvent(c, std::move(frame));
      if (c->dead) return;
      if (status.ok()) {
        server_->stat_frames_.fetch_add(1, std::memory_order_relaxed);
        handled = true;
      }
      frame = Frame();
    }
    if (!status.ok()) {
      FailConn(c, status);
      return;
    }
    // The idle clock counts time between *completed* frames: any frame
    // handled here pushes the eviction deadline out, a byte trickle
    // that never completes one does not.
    if (handled && !c->reads_paused) ArmIdle(c);
  }

  /// Protocol-failure exit: count it, best-effort kError frame, then
  /// close once the error flushes — the old reader's write-then-drop,
  /// minus the blocking write (the write deadline bounds the flush).
  void FailConn(Conn* c, const Status& status) {
    server_->stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    ByteWriter w;
    w.PutU8(static_cast<uint8_t>(status.code()));
    w.PutLengthPrefixed(status.message());
    Frame error;
    error.type = FrameType::kError;
    error.partition = static_cast<uint16_t>(server_->options_.partition_id);
    error.payload = w.Release();
    c->close_after_flush = true;
    wheel_.Cancel(&c->idle_timer);
    EnqueueReply(c, error);  // flush-complete closes via close_after_flush
    if (c->dead) return;
    if (c->out.empty()) {
      CloseConn(c);
      return;
    }
    UpdateInterest(c);
  }

  /// Queues one reply frame and flushes as much as the socket takes
  /// right now. kInvalidArgument for an over-cap payload (the caller
  /// surfaces it as a kError); a backlog past write_queue_max_bytes
  /// evicts the connection instead (drop-slowest — check c->dead).
  Status EnqueueReply(Conn* c, const Frame& frame) {
    if (frame.payload.size() > kMaxFramePayload) {
      return Status::InvalidArgument(
          "frame payload of " + std::to_string(frame.payload.size()) +
          " bytes exceeds the " + std::to_string(kMaxFramePayload) +
          "-byte transport cap");
    }
    Bytes wire = EncodeFrame(frame);
    if (!c->out.empty() &&
        c->out_bytes + wire.size() > server_->options_.write_queue_max_bytes) {
      // Drop-slowest: the peer requests replies faster than it drains
      // them. (A single reply into an empty queue is always admitted —
      // the bound meters backlog, not frame size.)
      server_->stat_evicted_overflow_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(c);
      return Status::OK();
    }
    c->out_bytes += wire.size();
    c->out.push_back(std::move(wire));
    FlushWrites(c);
    return Status::OK();
  }

  void FlushWrites(Conn* c) {
    bool progress = false;
    while (!c->out.empty()) {
      size_t truncate = 0;
      Status fault =
          ApplyFault(FaultOp::kSend, server_->port_, peer_, &truncate);
      if (!fault.ok()) {
        CloseConn(c);  // injected send failure: the peer is "gone"
        return;
      }
      const Bytes& front = c->out.front();
      size_t want = front.size() - c->out_off;
      if (truncate > 0) want = std::min(want, truncate);  // torn write
      ssize_t sent =
          ::send(c->fd, front.data() + c->out_off, want, MSG_NOSIGNAL);
      if (sent > 0) {
        progress = true;
        c->out_off += static_cast<size_t>(sent);
        c->out_bytes -= static_cast<size_t>(sent);
        if (c->out_off == front.size()) {
          c->out.pop_front();
          c->out_off = 0;
        }
        continue;
      }
      if (sent == 0) {
        // See SendAllDeadline: a 0 return for a nonzero-length write is
        // never valid.
        CloseConn(c);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(c);
      return;
    }
    if (c->out.empty()) {
      wheel_.Cancel(&c->write_timer);
      if (c->close_after_flush) {
        CloseConn(c);
        return;
      }
    } else if (server_->options_.write_timeout_ms > 0 &&
               (progress || !c->write_timer.armed())) {
      // The write deadline measures *lack of progress*: each drained
      // byte re-arms it, a peer that stops draining runs it out.
      wheel_.Arm(&c->write_timer, MonotonicMs(),
                 static_cast<uint64_t>(server_->options_.write_timeout_ms));
    }
    UpdateInterest(c);
  }

  Status HandleFrameEvent(Conn* c, Frame frame);

  CollectionServer* const server_;
  const std::string peer_;
  const std::string accept_peer_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  int listen_fd_ = -1;  ///< the accepting loop only
  std::thread thread_;
  TimerWheel wheel_;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<uint64_t> dead_ids_;
  uint64_t next_conn_id_ = kFirstConnId;
  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;
  bool stop_requested_ = false;
};

Result<std::unique_ptr<CollectionServer>> CollectionServer::Start(
    const ldp::ScalarFrequencyOracle& oracle,
    CollectionServerOptions options) {
  std::unique_ptr<CollectionServer> server(
      new CollectionServer(oracle, std::move(options)));
  if (server->options_.partition_id >=
      server->options_.partition_map.partitions()) {
    return Status::InvalidArgument(
        "endpoint partition id " +
        std::to_string(server->options_.partition_id) +
        " out of range for map " + server->options_.partition_map.ToString());
  }
  // The streaming worker owns exactly the slice this endpoint was
  // assigned; a single-node default map resolves to the full domain.
  server->options_.streaming.partition =
      server->options_.partition_map.SliceOf(server->options_.partition_id);

  // Open the durable round store *before* constructing the worker and
  // share one handle: a WAL must have exactly one writer, and the
  // server needs the store itself for recovery and kQuery. A store that
  // refuses to open (corrupt WAL, wrong slice identity) fails Start —
  // refusing traffic beats silently dropping durability.
  if (server->options_.streaming.store == nullptr) {
    PartitionSlice slice = server->options_.streaming.partition;
    if (slice.full_domain()) {
      slice.lo = 0;
      slice.hi = oracle.domain_size();
    }
    RoundStoreOptions store_options = server->options_.streaming.round_store;
    store_options.partition_index = slice.index;
    store_options.partition_count = slice.count;
    store_options.slice_lo = slice.lo;
    store_options.slice_width = slice.hi - slice.lo;
    SHUFFLEDP_ASSIGN_OR_RETURN(
        server->options_.streaming.store,
        OpenRoundStore(store_options, server->options_.streaming.checkpoint));
  }
  server->store_ = server->options_.streaming.store;
  server->collector_ = std::make_unique<PartitionWorker>(
      oracle, server->options_.streaming);

  // Crash recovery before the first byte of traffic: every stored round
  // loads through the store — the newest finalized round replays into
  // the result stash (so a kFinish re-request for it is answered
  // instead of rejected) and a live mid-round state restores into the
  // collector so the watermark answer is exact.
  if (server->options_.recover && server->store_ != nullptr) {
    SHUFFLEDP_ASSIGN_OR_RETURN(std::vector<StoredRound> rounds,
                               server->store_->LoadAll());
    const StoredRound* live = nullptr;
    const StoredRound* newest_finalized = nullptr;
    for (const StoredRound& round : rounds) {
      if (round.finalized) {
        if (newest_finalized == nullptr ||
            round.round_id() > newest_finalized->round_id()) {
          newest_finalized = &round;
        }
      } else if (live == nullptr || round.round_id() > live->round_id()) {
        live = &round;  // the consumer serializes rounds, so at most one
      }
    }
    if (newest_finalized != nullptr) {
      // Replay through a throwaway worker when a live mid-round state
      // also exists (the live collector must restore *that* round);
      // otherwise through the live collector so its round id advances
      // past the finalized round. The throwaway shares the already-open
      // store handle via streaming.store, so no second WAL opens.
      const RoundJournal& journal = newest_finalized->journal;
      Result<RoundResult> replay =
          live != nullptr
              ? PartitionWorker(oracle, server->options_.streaming)
                    .RecoverFinalizedRound(journal)
              : server->collector_->RecoverFinalizedRound(journal);
      SHUFFLEDP_RETURN_NOT_OK(replay.status());
      RemoteRoundResult replayed;
      replayed.supports = std::move(replay->supports);
      replayed.estimates = std::move(replay->estimates);
      replayed.reports_decoded = replay->reports_decoded;
      replayed.reports_invalid = replay->reports_invalid;
      replayed.dummies_recognized = replay->dummies_recognized;
      replayed.dummies_expected = replay->dummies_expected;
      replayed.spot_check_passed = replay->spot_check_passed;
      server->StashRoundResult(journal.round_id, journal.n, journal.n_fake,
                               journal.calibration, std::move(replayed),
                               /*durability_degraded=*/false);
    }
    if (live != nullptr) {
      SHUFFLEDP_ASSIGN_OR_RETURN(
          server->recovered_watermark_,
          server->collector_->RecoverRound(live->state));
      server->recovered_round_ = live->state.round_id;
      // Resuming clients replay from the restored consumed-batch count.
      server->ingest_offered_.store(server->recovered_watermark_,
                                    std::memory_order_release);
    }
  }
  server->ingest_round_ = server->collector_->round_id();
  if (server->options_.partition_map.mode() == PartitionMode::kByValue &&
      server->options_.partition_map.partitions() > 1) {
    // Built once: the kBatch path runs this per ordinal.
    CollectionServer* s = server.get();
    server->ordinal_owner_check_ = [s](uint64_t ordinal) -> Status {
      const uint32_t owner = s->options_.partition_map.OwnerOfOrdinal(ordinal);
      if (owner != s->options_.partition_id) {
        return Status::ProtocolViolation(
            "batch contains ordinal " + std::to_string(ordinal) +
            " owned by partition " + std::to_string(owner) +
            ", not this endpoint's " +
            std::to_string(s->options_.partition_id));
      }
      return Status::OK();
    };
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server->options_.port);
  // Port 0 cannot collide (the kernel assigns); a fixed port can lose a
  // close/rebind race against a parallel test that just released it, so
  // retry briefly and, if the port is genuinely taken, say EADDRINUSE in
  // a distinct status instead of a generic bind failure.
  int bind_rc = -1;
  for (int attempt = 0; attempt < 5; ++attempt) {
    bind_rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (bind_rc == 0 || errno != EADDRINUSE || server->options_.port == 0) {
      break;
    }
    struct timespec backoff = {0, 20 * 1000 * 1000};  // 20 ms
    ::nanosleep(&backoff, nullptr);
  }
  if (bind_rc != 0) {
    Status st = errno == EADDRINUSE
                    ? Status::AlreadyExists(
                          "bind: port " +
                          std::to_string(server->options_.port) +
                          " is EADDRINUSE (pass port 0 to let the kernel "
                          "pick a free one)")
                    : Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, server->options_.listen_backlog) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  // The chosen port is published before the event loops exist: a caller
  // can read port() and connect the moment Start() returns (the kernel
  // queues the connection against the listening socket even if the
  // accepting loop has not reached accept() yet).
  server->port_ = ntohs(bound.sin_port);
  // The accept path is epoll-driven like everything else.
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  server->listen_fd_ = fd;
  int threads = server->options_.event_threads;
  if (threads <= 0) {
    threads = 1;
    if (const char* env = std::getenv("SHUFFLEDP_EVENT_THREADS")) {
      threads = std::atoi(env);
      if (threads <= 0) threads = 1;
    }
  }
  threads = std::min(threads, 64);
  for (int i = 0; i < threads; ++i) {
    server->loops_.push_back(std::make_unique<EventLoop>(server.get()));
    // An Init failure destroys the half-built server (its destructor
    // tolerates never-started loops) and closes the listener with it.
    SHUFFLEDP_RETURN_NOT_OK(server->loops_.back()->Init(i == 0 ? fd : -1));
  }
  for (auto& loop : server->loops_) loop->StartThread();
  return server;
}

CollectionServer::~CollectionServer() { Shutdown(); }

uint64_t CollectionServer::round_id() const {
  return collector_->round_id();
}

CollectionServerStats CollectionServer::stats() const {
  CollectionServerStats s;
  s.connections_accepted = stat_accepted_.load(std::memory_order_relaxed);
  s.connections_closed = stat_closed_.load(std::memory_order_relaxed);
  s.evicted_idle = stat_evicted_idle_.load(std::memory_order_relaxed);
  s.evicted_slow = stat_evicted_slow_.load(std::memory_order_relaxed);
  s.evicted_overflow = stat_evicted_overflow_.load(std::memory_order_relaxed);
  s.protocol_errors = stat_protocol_errors_.load(std::memory_order_relaxed);
  s.frames_handled = stat_frames_.load(std::memory_order_relaxed);
  s.batches_deduped = stat_deduped_.load(std::memory_order_relaxed);
  return s;
}

void CollectionServer::StashRoundResult(uint64_t round_id, uint64_t n,
                                        uint64_t n_fake, uint8_t calibration,
                                        RemoteRoundResult result,
                                        bool durability_degraded) {
  {
    std::lock_guard<std::mutex> lock(result_mu_);
    have_last_result_ = true;
    last_round_ = round_id;
    last_n_ = n;
    last_n_fake_ = n_fake;
    last_calibration_ = calibration;
    last_durability_degraded_ = durability_degraded;
    last_result_ = std::move(result);
  }
  result_cv_.notify_all();
}

void CollectionServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Wake any re-finish stash waiter out of its rewait window first: a
  // finisher blocked there would otherwise hold shutdown for up to
  // result_rewait_ms.
  {
    std::lock_guard<std::mutex> lock(result_mu_);
    result_waiters_stop_ = true;
  }
  result_cv_.notify_all();
  for (auto& loop : loops_) loop->RequestStop();
  for (auto& loop : loops_) loop->Join();
  // Finishers post their completions to the (now stopped) loops, where
  // they are dropped; the connections they would answer are closed.
  std::vector<std::unique_ptr<FinishWorker>> workers;
  {
    std::lock_guard<std::mutex> lock(finish_mu_);
    workers.swap(finish_workers_);
  }
  for (auto& worker : workers) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void CollectionServer::ReapFinishWorkersLocked() {
  // A worker flips `done` as its last action, so joining a done worker
  // cannot block on finish work.
  for (auto it = finish_workers_.begin(); it != finish_workers_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = finish_workers_.erase(it);
    } else {
      ++it;
    }
  }
}

void CollectionServer::DispatchFinish(EventLoop* loop, uint64_t conn_id,
                                      bool closing,
                                      std::future<Result<RoundResult>> future,
                                      uint64_t round_id, uint64_t n,
                                      uint64_t n_fake, uint8_t calibration,
                                      uint16_t reply_partition) {
  std::lock_guard<std::mutex> lock(finish_mu_);
  ReapFinishWorkersLocked();  // long-lived endpoints shed dead threads
  finish_workers_.push_back(std::make_unique<FinishWorker>());
  FinishWorker* worker = finish_workers_.back().get();
  worker->thread = std::thread(
      [this, loop, conn_id, closing, round_id, n, n_fake, calibration,
       reply_partition, worker, fut = std::move(future)]() mutable {
        RunFinish(loop, conn_id, closing, std::move(fut), round_id, n, n_fake,
                  calibration, reply_partition);
        worker->done.store(true, std::memory_order_release);
      });
}

void CollectionServer::RunFinish(EventLoop* loop, uint64_t conn_id,
                                 bool closing,
                                 std::future<Result<RoundResult>> future,
                                 uint64_t round_id, uint64_t n,
                                 uint64_t n_fake, uint8_t calibration,
                                 uint16_t reply_partition) {
  Status fail = Status::OK();
  Frame reply;
  reply.type = FrameType::kResult;
  reply.partition = reply_partition;
  reply.round_id = round_id;
  if (closing) {
    // The drain this waits on is the whole reason kFinish leaves the
    // loop thread: it can take seconds, and the loop must keep serving
    // every other connection meanwhile.
    Result<RoundResult> round = future.get();
    if (!round.ok()) {
      // Reset under the ingest gate so no concurrent batch can slide
      // into the half-reset pipeline between Reopen and the round-id
      // resync.
      std::lock_guard<std::mutex> lock(ingest_mu_);
      collector_->ResetAfterError();
      ingest_round_ = collector_->round_id();
      ingest_offered_.store(0, std::memory_order_release);
      fail = round.status();
    } else {
      RemoteRoundResult remote;
      remote.supports = std::move(round->supports);
      remote.estimates = std::move(round->estimates);
      remote.reports_decoded = round->reports_decoded;
      remote.reports_invalid = round->reports_invalid;
      remote.dummies_recognized = round->dummies_recognized;
      remote.dummies_expected = round->dummies_expected;
      remote.spot_check_passed = round->spot_check_passed;
      reply.payload = SerializeRoundResult(remote);
      // Stash *before* the reply travels: if the connection died while
      // the round drained, the write fails but a reconnecting
      // coordinator can still re-request the result (the close-to-read
      // window, live-server edition of the journal replay).
      StashRoundResult(round_id, n, n_fake, calibration, std::move(remote),
                       round->durability_degraded);
    }
  } else {
    // Not the live round. A kFinish for the *last closed* round means
    // the requester never read the original kResult — a coordinator
    // whose connection died in the close-to-read window
    // (reconnect-and-refinish), or one resuming after an endpoint
    // crash (journal replay stocked the stash at Start). Serve the
    // stashed result; wait briefly first, because the original close
    // may still be draining on a finisher thread. The request must
    // restate the parameters the round actually closed with —
    // re-serving a result for different (n, n_fake, calibration) would
    // hand the caller numbers it never asked for.
    std::unique_lock<std::mutex> lock(result_mu_);
    auto stashed = [&] {
      return have_last_result_ && last_round_ == round_id;
    };
    bool ready = stashed();
    if (!ready &&
        round_id + 1 == ingest_round_.load(std::memory_order_acquire)) {
      // Only the round *just* closed can still be draining; any other
      // id is garbage and rejects immediately.
      result_cv_.wait_for(
          lock,
          std::chrono::milliseconds(std::max(options_.result_rewait_ms, 0)),
          [&] { return stashed() || result_waiters_stop_; });
      ready = stashed();
    }
    if (!ready) {
      fail = Status::ProtocolViolation(
          "finish for round " + std::to_string(round_id) +
          " but the endpoint is ingesting round " +
          std::to_string(ingest_round_.load(std::memory_order_acquire)));
    } else if (n != last_n_ || n_fake != last_n_fake_ ||
               calibration != last_calibration_) {
      fail = Status::ProtocolViolation(
          "finish for closed round " + std::to_string(round_id) +
          " does not match the parameters it closed with (n=" +
          std::to_string(last_n_) + ", n_fake=" +
          std::to_string(last_n_fake_) + ", calibration=" +
          std::to_string(last_calibration_) + ")");
    } else {
      reply.payload = SerializeRoundResult(last_result_);
    }
  }
  // Deliver on the owning loop; dropped (with the connection already
  // closed) when the loop has stopped.
  loop->Post([loop, conn_id, fail, reply = std::move(reply)]() mutable {
    loop->CompleteFinish(conn_id, fail, std::move(reply));
  });
}

Status CollectionServer::EventLoop::HandleFrameEvent(Conn* c, Frame frame) {
  // Misrouted traffic fails loudly: every data/control frame must name
  // the partition this endpoint owns (kWatermark and kQuery are pure
  // queries and may come from anyone, e.g. a prober that has not
  // handshaken).
  if (frame.type != FrameType::kWatermark &&
      frame.type != FrameType::kQuery &&
      frame.partition != server_->options_.partition_id) {
    return Status::ProtocolViolation(
        "frame targets partition " + std::to_string(frame.partition) +
        " but this endpoint owns partition " +
        std::to_string(server_->options_.partition_id));
  }
  switch (frame.type) {
    case FrameType::kHello: {
      ByteReader r(frame.payload);
      SHUFFLEDP_ASSIGN_OR_RETURN(PartitionMap peer_map,
                                 ParsePartitionMap(&r));
      SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t peer_partition, r.GetVarint());
      if (!r.AtEnd()) {
        return Status::ProtocolViolation("malformed hello payload");
      }
      if (peer_map != server_->options_.partition_map) {
        return Status::ProtocolViolation(
            "partition map mismatch: client speaks " + peer_map.ToString() +
            ", endpoint is " + server_->options_.partition_map.ToString());
      }
      if (peer_partition != server_->options_.partition_id) {
        return Status::ProtocolViolation(
            "client expects this endpoint to own partition " +
            std::to_string(peer_partition) + " but it owns " +
            std::to_string(server_->options_.partition_id));
      }
      Frame reply;
      reply.type = FrameType::kHello;
      reply.partition = static_cast<uint16_t>(server_->options_.partition_id);
      reply.round_id = server_->ingest_round_.load(std::memory_order_acquire);
      ByteWriter w;
      w.PutBytes(SerializePartitionMap(server_->options_.partition_map));
      w.PutVarint(server_->options_.partition_id);
      reply.payload = w.Release();
      return EnqueueReply(c, reply);
    }
    case FrameType::kBatch:
    case FrameType::kBatchIndexed: {
      const bool indexed = frame.type == FrameType::kBatchIndexed;
      uint64_t batch_index = 0;
      const uint8_t* ordinal_bytes = frame.payload.data();
      size_t ordinal_len = frame.payload.size();
      if (indexed) {
        ByteReader prefix(frame.payload);
        SHUFFLEDP_ASSIGN_OR_RETURN(batch_index, prefix.GetVarint());
        ordinal_bytes = frame.payload.data() +
                        (frame.payload.size() - prefix.Remaining());
        ordinal_len = prefix.Remaining();
      }
      // Under value partitioning the frame header alone cannot prove
      // routing: every contained ordinal must belong to the owned
      // slice, or another partition's counts are silently wrong. The
      // check runs inline with the decode scan (one pass).
      SHUFFLEDP_ASSIGN_OR_RETURN(
          std::vector<uint64_t> parsed,
          ldp::ParseOrdinalsValidated(server_->oracle_, ordinal_bytes,
                                      ordinal_len,
                                      server_->ordinal_owner_check_));
      auto ordinals =
          std::make_shared<std::vector<uint64_t>>(std::move(parsed));
      ReportBatch batch;
      batch.count = ordinals->size();
      const ldp::ScalarFrequencyOracle* oracle = &server_->oracle_;
      batch.decode = [ordinals, oracle](uint64_t i) -> Result<DecodedRow> {
        DecodedRow row;
        auto rep = oracle->UnpackOrdinal((*ordinals)[i]);
        if (!rep.ok()) return row;  // padding ordinal: drop, don't abort
        row.report = *rep;
        row.valid = true;
        return row;
      };
      // Round check, index gate, and Offer are one atomic step under
      // the ingest gate: checking first and offering later would let
      // another connection's kFinish slip its close sentinel in between
      // (silently counting this batch into the next round), or let two
      // connections racing the same batch index both pass the gate.
      // Offer may block the loop under collector backpressure — that is
      // the flush-barrier/backpressure contract, shared by every
      // connection on this loop by design (the queue bounds memory, the
      // kernel socket buffers absorb the stall).
      std::lock_guard<std::mutex> lock(server_->ingest_mu_);
      if (frame.round_id != server_->ingest_round_) {
        return Status::ProtocolViolation(
            "batch for round " + std::to_string(frame.round_id) +
            " but the endpoint is ingesting round " +
            std::to_string(server_->ingest_round_));
      }
      if (indexed) {
        // Exactly-once gate for the single indexed producer stream:
        // the consumed-batch count is the next index the round admits.
        // A stale index is a duplicate — a replaced connection's
        // kernel-buffered stragglers draining concurrently with the
        // recovery replay on the fresh connection — and is dropped
        // silently, because both copies carry identical bytes and one
        // was already counted. A future index means a batch was lost
        // in between: fail loudly, a replay cannot fill the hole.
        const uint64_t expected =
            server_->ingest_offered_.load(std::memory_order_relaxed);
        if (batch_index < expected) {
          server_->stat_deduped_.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        }
        if (batch_index > expected) {
          return Status::ProtocolViolation(
              "indexed batch " + std::to_string(batch_index) +
              " for round " + std::to_string(frame.round_id) +
              " but the endpoint expects batch " +
              std::to_string(expected) + " next (a batch was lost)");
        }
      }
      SHUFFLEDP_RETURN_NOT_OK(server_->collector_->Offer(std::move(batch)));
      // Advance the watermark only after the queue accepted the batch:
      // a reconnecting sender replays everything at or above the
      // answered value, so over-advancing would lose batches while
      // under-advancing merely replays (which the index gate absorbs).
      server_->ingest_offered_.fetch_add(1, std::memory_order_release);
      return Status::OK();
    }
    case FrameType::kFinish: {
      ByteReader r(frame.payload);
      SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
      SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t n_fake, r.GetVarint());
      SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t cal, r.GetU8());
      if (!r.AtEnd() || cal > static_cast<uint8_t>(Calibration::kNone)) {
        return Status::ProtocolViolation("malformed finish payload");
      }
      std::future<Result<RoundResult>> future;
      bool closing = false;
      {
        std::lock_guard<std::mutex> lock(server_->ingest_mu_);
        if (frame.round_id == server_->ingest_round_) {
          future = server_->collector_->CloseRound(
              n, n_fake, static_cast<Calibration>(cal));
          ++server_->ingest_round_;
          server_->ingest_offered_.store(0, std::memory_order_release);
          closing = true;
        }
      }
      // The wait — for the drain (live close) or for the re-finish
      // stash — leaves the loop thread: a finisher thread blocks on it
      // and posts the reply back. This connection pauses until then
      // (nothing after the kFinish is processed or even read — exactly
      // the old blocked-reader timing, so a pipelined client's next
      // round of batches sits in the kernel buffer), while every other
      // connection keeps streaming through the loop. The idle timer
      // stops with the pause: the server owes the reply, the peer is
      // not idle.
      c->reads_paused = true;
      wheel_.Cancel(&c->idle_timer);
      UpdateInterest(c);
      server_->DispatchFinish(this, c->id, closing, std::move(future),
                              frame.round_id, n, n_fake, cal,
                              frame.partition);
      // A domain so large its result frame blows the cap surfaces as a
      // clean kError (via the connection error path), not a poisoned
      // client decoder mid-frame.
      return Status::OK();
    }
    case FrameType::kWatermark: {
      if (!frame.payload.empty()) {
        return Status::ProtocolViolation("watermark query carries a payload");
      }
      Frame reply;
      reply.type = FrameType::kWatermark;
      reply.partition = static_cast<uint16_t>(server_->options_.partition_id);
      uint64_t reply_round = 0;
      uint64_t offered = 0;
      {
        // Both values under the ingest gate: two bare atomic loads
        // could straddle a concurrent kFinish and pair one round's id
        // with another round's count — and a recovery acting on that
        // torn pair replays into the wrong round, which the round-id
        // check rejects *fatally* (kProtocolViolation is not
        // retryable). The wait this can add behind an in-flight Offer
        // is the flush barrier the watermark already promises; queries
        // are rare, so contention is irrelevant.
        std::lock_guard<std::mutex> lock(server_->ingest_mu_);
        reply_round = server_->ingest_round_.load(std::memory_order_relaxed);
        offered = server_->ingest_offered_.load(std::memory_order_relaxed);
      }
      reply.round_id = reply_round;
      ByteWriter w;
      w.PutVarint(offered);
      reply.payload = w.Release();
      return EnqueueReply(c, reply);
    }
    case FrameType::kQuery: {
      if (!frame.payload.empty()) {
        return Status::ProtocolViolation("round query carries a payload");
      }
      Frame reply;
      reply.type = FrameType::kQuery;
      reply.partition = static_cast<uint16_t>(server_->options_.partition_id);
      reply.round_id = frame.round_id;
      RoundStatus status = RoundStatus::kUnknown;
      bool degraded = false;
      uint64_t watermark = 0;
      bool answered = false;
      {
        // The live round answers from the ingest gate (same torn-pair
        // reasoning as kWatermark); anything else answers from the
        // durable store, so the reply reflects exactly what a crash
        // would preserve.
        std::lock_guard<std::mutex> lock(server_->ingest_mu_);
        if (frame.round_id ==
            server_->ingest_round_.load(std::memory_order_relaxed)) {
          status = RoundStatus::kActive;
          watermark = server_->ingest_offered_.load(std::memory_order_relaxed);
          degraded = server_->collector_->durability_degraded();
          answered = true;
        }
      }
      ByteWriter w;
      if (!answered && server_->store_ != nullptr) {
        SHUFFLEDP_ASSIGN_OR_RETURN(RoundLookup lookup,
                                   server_->store_->Query(frame.round_id));
        if (lookup.status != RoundStatus::kUnknown) {
          status = lookup.status;
          watermark = lookup.watermark;
          answered = true;
          if (status == RoundStatus::kFinalized) {
            // The journal persists supports only; estimates and the
            // spot-check verdict re-derive through the same pure
            // function live finalization uses, so the reply is bitwise
            // the result the round originally produced.
            const RoundJournal& journal = lookup.journal;
            RoundResult replay = FinalizeRoundResult(
                server_->oracle_, journal.supports, journal.n, journal.n_fake,
                static_cast<Calibration>(journal.calibration),
                journal.reports_decoded, journal.reports_invalid,
                journal.dummies_recognized, journal.dummies_expected);
            RemoteRoundResult remote;
            remote.supports = std::move(replay.supports);
            remote.estimates = std::move(replay.estimates);
            remote.reports_decoded = replay.reports_decoded;
            remote.reports_invalid = replay.reports_invalid;
            remote.dummies_recognized = replay.dummies_recognized;
            remote.dummies_expected = replay.dummies_expected;
            remote.spot_check_passed = replay.spot_check_passed;
            w.PutU8(static_cast<uint8_t>(status));
            w.PutU8(0);
            w.PutVarint(watermark);
            w.PutVarint(journal.n);
            w.PutVarint(journal.n_fake);
            w.PutU8(journal.calibration);
            w.PutBytes(SerializeRoundResult(remote));
            reply.payload = w.Release();
            return EnqueueReply(c, reply);
          }
        }
      }
      if (!answered) {
        // Stash fallback: a round finalized this process lifetime but
        // already garbage-collected from the store (or served by a
        // legacy store that only journals the newest round) still
        // answers from the in-memory stash. Watermark 0 — the durable
        // consumed count is gone with the segment.
        std::lock_guard<std::mutex> lock(server_->result_mu_);
        if (server_->have_last_result_ &&
            server_->last_round_ == frame.round_id) {
          w.PutU8(static_cast<uint8_t>(RoundStatus::kFinalized));
          w.PutU8(server_->last_durability_degraded_ ? 1 : 0);
          w.PutVarint(0);
          w.PutVarint(server_->last_n_);
          w.PutVarint(server_->last_n_fake_);
          w.PutU8(server_->last_calibration_);
          w.PutBytes(SerializeRoundResult(server_->last_result_));
          reply.payload = w.Release();
          answered = true;
        }
      }
      if (!reply.payload.empty()) return EnqueueReply(c, reply);
      w.PutU8(static_cast<uint8_t>(status));
      w.PutU8(degraded ? 1 : 0);
      w.PutVarint(watermark);
      reply.payload = w.Release();
      return EnqueueReply(c, reply);
    }
    case FrameType::kResult:
    case FrameType::kError:
      return Status::ProtocolViolation(
          "client sent a server-to-client frame type");
  }
  return Status::ProtocolViolation("unhandled frame type");
}

// ---------------------------------------------------------------------------
// CollectorClient
// ---------------------------------------------------------------------------

Result<std::unique_ptr<CollectorClient>> CollectorClient::Connect(
    const std::string& host, uint16_t port,
    const CollectorClientOptions& options) {
  const std::string peer = host + ":" + std::to_string(port);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address: " + host);
  }
  SHUFFLEDP_RETURN_NOT_OK(ApplyFault(FaultOp::kConnect, port, peer));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  Status connected = ConnectDeadline(
      fd, addr, DeadlineTimer::After(options.connect_timeout_ms), peer);
  if (!connected.ok()) {
    ::close(fd);
    return connected;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<CollectorClient>(
      new CollectorClient(fd, port, peer, options));
}

CollectorClient::~CollectorClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status CollectorClient::WriteFrame(const Frame& frame) {
  Frame stamped = frame;
  stamped.partition = partition_;
  return WriteFrameTo(fd_, stamped,
                      DeadlineTimer::After(options_.write_timeout_ms), port_,
                      peer_);
}

Result<uint64_t> CollectorClient::Hello(const PartitionMap& map,
                                        uint32_t partition_id) {
  Frame hello;
  hello.type = FrameType::kHello;
  ByteWriter w;
  w.PutBytes(SerializePartitionMap(map));
  w.PutVarint(partition_id);
  hello.payload = w.Release();
  const uint16_t previous = partition_;
  partition_ = static_cast<uint16_t>(partition_id);
  Status sent = WriteFrame(hello);
  if (!sent.ok()) {
    partition_ = previous;
    return sent;
  }
  auto reply = ReadFrame();
  if (!reply.ok()) {
    partition_ = previous;
    return reply.status();
  }
  if (reply->type != FrameType::kHello) {
    partition_ = previous;
    return Status::ProtocolViolation("expected a hello reply");
  }
  ByteReader r(reply->payload);
  auto echo_map = ParsePartitionMap(&r);
  auto echo_partition = r.GetVarint();
  if (!echo_map.ok() || !echo_partition.ok() || !r.AtEnd()) {
    partition_ = previous;
    return Status::ProtocolViolation("malformed hello reply");
  }
  if (*echo_map != map || *echo_partition != partition_id) {
    partition_ = previous;
    return Status::ProtocolViolation(
        "endpoint disagrees with the partition layout: speaks " +
        echo_map->ToString() + " owning partition " +
        std::to_string(*echo_partition));
  }
  return reply->round_id;
}

Result<Frame> CollectorClient::ReadFrame() {
  Frame frame;
  uint8_t buf[65536];
  // One deadline for the whole frame (it may arrive across many reads):
  // a reply that cannot complete inside read_timeout_ms means the peer
  // is wedged or the link is blackholed — kDeadlineExceeded, retryable.
  DeadlineTimer deadline = DeadlineTimer::After(options_.read_timeout_ms);
  while (!decoder_.Next(&frame)) {
    size_t got = 0;
    SHUFFLEDP_RETURN_NOT_OK(
        RecvSomeDeadline(fd_, buf, sizeof(buf), deadline, port_, peer_,
                         &got));
    if (got == 0) {
      // A peer that vanished mid-conversation is a transient fleet
      // event (endpoint crash/restart), not corrupt data: kUnavailable
      // so the recovery layer reconnects and replays.
      return Status::Unavailable("server " + peer_ +
                                 " closed the connection mid-frame");
    }
    SHUFFLEDP_RETURN_NOT_OK(decoder_.Feed(buf, got));
  }
  if (frame.type == FrameType::kError) {
    ByteReader r(frame.payload);
    auto code = r.GetU8();
    auto message = r.GetLengthPrefixed();
    if (code.ok() && message.ok()) {
      return Status(static_cast<StatusCode>(*code),
                    "endpoint error: " +
                        std::string(message->begin(), message->end()));
    }
    return Status::ProtocolViolation("endpoint sent a malformed error frame");
  }
  return frame;
}

Status CollectorClient::SendOrdinals(
    uint64_t round_id, const ldp::ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& ordinals) {
  // One producer batch must stay one frame: the server's checkpoint
  // watermark counts consumed frames, and crash recovery replays by
  // *producer* batch index — silently splitting an oversized batch here
  // would desynchronize those units and corrupt a recovered round. So a
  // batch that cannot fit one frame is an actionable configuration
  // error, not something to paper over.
  const size_t width = ldp::WireReportBytes(oracle);
  if (ordinals.size() > (kMaxFramePayload - 10) / width) {  // 10: varint
    return Status::InvalidArgument(
        "batch of " + std::to_string(ordinals.size()) + " reports (" +
        std::to_string(width) + " B each) cannot fit one transport frame; "
        "lower StreamingOptions::batch_size below " +
        std::to_string((kMaxFramePayload - 10) / width));
  }
  Frame frame;
  frame.type = FrameType::kBatch;
  frame.round_id = round_id;
  frame.payload = ldp::SerializeOrdinals(oracle, ordinals);
  return WriteFrame(frame);
}

Status CollectorClient::SendOrdinals(
    uint64_t round_id, uint64_t batch_index,
    const ldp::ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& ordinals) {
  const size_t width = ldp::WireReportBytes(oracle);
  // 20: the batch-index and report-count varints (<= 10 bytes each).
  if (ordinals.size() > (kMaxFramePayload - 20) / width) {
    return Status::InvalidArgument(
        "batch of " + std::to_string(ordinals.size()) + " reports (" +
        std::to_string(width) + " B each) cannot fit one transport frame; "
        "lower StreamingOptions::batch_size below " +
        std::to_string((kMaxFramePayload - 20) / width));
  }
  Frame frame;
  frame.type = FrameType::kBatchIndexed;
  frame.round_id = round_id;
  Bytes reports = ldp::SerializeOrdinals(oracle, ordinals);
  ByteWriter w(reports.size() + 10);
  w.PutVarint(batch_index);
  w.PutBytes(reports);
  frame.payload = w.Release();
  return WriteFrame(frame);
}

Status CollectorClient::SendReports(
    uint64_t round_id, const ldp::ScalarFrequencyOracle& oracle,
    const std::vector<ldp::LdpReport>& reports) {
  std::vector<uint64_t> ordinals;
  ordinals.reserve(reports.size());
  for (const ldp::LdpReport& r : reports) {
    ordinals.push_back(oracle.PackOrdinal(r));
  }
  return SendOrdinals(round_id, oracle, ordinals);
}

Status CollectorClient::SendFinish(uint64_t round_id, uint64_t n,
                                   uint64_t n_fake, Calibration calibration) {
  Frame frame;
  frame.type = FrameType::kFinish;
  frame.round_id = round_id;
  ByteWriter w;
  w.PutVarint(n);
  w.PutVarint(n_fake);
  w.PutU8(static_cast<uint8_t>(calibration));
  frame.payload = w.Release();
  return WriteFrame(frame);
}

Result<RemoteRoundResult> CollectorClient::ReadRoundResult() {
  SHUFFLEDP_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != FrameType::kResult) {
    return Status::ProtocolViolation("expected a result frame");
  }
  return ParseRoundResult(frame.payload);
}

Result<RemoteRoundResult> CollectorClient::FinishRound(
    uint64_t round_id, uint64_t n, uint64_t n_fake, Calibration calibration) {
  SHUFFLEDP_RETURN_NOT_OK(SendFinish(round_id, n, n_fake, calibration));
  return ReadRoundResult();
}

Result<uint64_t> CollectorClient::QueryWatermark(uint64_t* round_id_out) {
  Frame query;
  query.type = FrameType::kWatermark;
  SHUFFLEDP_RETURN_NOT_OK(WriteFrame(query));
  SHUFFLEDP_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
  if (reply.type != FrameType::kWatermark) {
    return Status::ProtocolViolation("expected a watermark reply");
  }
  ByteReader r(reply.payload);
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t watermark, r.GetVarint());
  if (!r.AtEnd()) {
    return Status::ProtocolViolation("watermark reply has trailing bytes");
  }
  if (round_id_out != nullptr) *round_id_out = reply.round_id;
  return watermark;
}

Result<RoundQuery> CollectorClient::QueryRound(uint64_t round_id) {
  Frame query;
  query.type = FrameType::kQuery;
  query.round_id = round_id;
  SHUFFLEDP_RETURN_NOT_OK(WriteFrame(query));
  SHUFFLEDP_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
  if (reply.type != FrameType::kQuery) {
    return Status::ProtocolViolation("expected a round-query reply");
  }
  ByteReader r(reply.payload);
  RoundQuery out;
  SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t status, r.GetU8());
  if (status > static_cast<uint8_t>(RoundStatus::kFinalized)) {
    return Status::ProtocolViolation("round-query reply has unknown status");
  }
  out.status = static_cast<RoundStatus>(status);
  SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t flags, r.GetU8());
  if ((flags & ~uint8_t{1}) != 0) {
    return Status::ProtocolViolation("round-query reply has unknown flags");
  }
  out.durability_degraded = (flags & 1) != 0;
  SHUFFLEDP_ASSIGN_OR_RETURN(out.watermark, r.GetVarint());
  if (out.status == RoundStatus::kFinalized) {
    SHUFFLEDP_ASSIGN_OR_RETURN(out.n, r.GetVarint());
    SHUFFLEDP_ASSIGN_OR_RETURN(out.n_fake, r.GetVarint());
    SHUFFLEDP_ASSIGN_OR_RETURN(out.calibration, r.GetU8());
    if (out.calibration > static_cast<uint8_t>(Calibration::kNone)) {
      return Status::ProtocolViolation(
          "round-query reply has unknown calibration");
    }
    SHUFFLEDP_ASSIGN_OR_RETURN(Bytes rest, r.GetBytes(r.Remaining()));
    SHUFFLEDP_ASSIGN_OR_RETURN(out.result, ParseRoundResult(rest));
  } else if (!r.AtEnd()) {
    return Status::ProtocolViolation("round-query reply has trailing bytes");
  }
  return out;
}

}  // namespace service
}  // namespace shuffledp

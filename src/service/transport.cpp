#include "service/transport.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ldp/wire.h"
#include "util/hash.h"

namespace shuffledp {
namespace service {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

/// Full-buffer send; MSG_NOSIGNAL so a dropped peer surfaces as EPIPE
/// instead of killing the process.
Status SendAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t sent = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(sent);
  }
  return Status::OK();
}

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kBatch) &&
         type <= static_cast<uint8_t>(FrameType::kHello);
}

/// Cap-checked frame write shared by both endpoints: a payload beyond
/// kMaxFramePayload must fail fast here — encoding it would poison the
/// peer's decoder mid-stream (and a >4 GiB payload would silently
/// truncate in the u32 length field).
Status WriteFrameTo(int fd, const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte transport cap");
  }
  Bytes wire = EncodeFrame(frame);
  return SendAll(fd, wire.data(), wire.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing codec
// ---------------------------------------------------------------------------

Bytes EncodeFrame(const Frame& frame) {
  ByteWriter w(kFrameHeaderBytes + frame.payload.size());
  w.PutBytes(kFrameMagic, sizeof(kFrameMagic));
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(frame.type));
  w.PutU16(frame.partition);
  w.PutU64(frame.round_id);
  w.PutU32(static_cast<uint32_t>(frame.payload.size()));
  // The CRC covers the 20 header bytes before it *and* the payload, so a
  // corrupted round id or length cannot slip through just because the
  // payload survived intact.
  uint32_t crc = Crc32(w.data().data(), kFrameHeaderBytes - 4);
  crc = Crc32(frame.payload.data(), frame.payload.size(), crc);
  w.PutU32(crc);
  w.PutBytes(frame.payload);
  return w.Release();
}

Status FrameDecoder::Feed(const uint8_t* data, size_t len) {
  if (!error_.ok()) return error_;
  buf_.insert(buf_.end(), data, data + len);
  while (buf_.size() >= kFrameHeaderBytes) {
    ByteReader r(buf_);
    Bytes magic = *r.GetBytes(4);
    if (std::memcmp(magic.data(), kFrameMagic, 4) != 0) {
      error_ = Status::ProtocolViolation("frame magic mismatch");
      return error_;
    }
    uint8_t version = *r.GetU8();
    if (version != kWireVersion) {
      error_ = Status::ProtocolViolation(
          "unsupported wire version " + std::to_string(version) +
          " (this endpoint speaks " + std::to_string(kWireVersion) + ")");
      return error_;
    }
    uint8_t type = *r.GetU8();
    if (!ValidFrameType(type)) {
      error_ = Status::ProtocolViolation("unknown frame type " +
                                         std::to_string(type));
      return error_;
    }
    uint16_t partition = *r.GetU16();
    uint64_t round_id = *r.GetU64();
    uint32_t payload_len = *r.GetU32();
    uint32_t expected_crc = *r.GetU32();
    if (payload_len > kMaxFramePayload) {
      // Reject the length lie before buffering or allocating anything
      // near that size.
      error_ = Status::ProtocolViolation(
          "frame payload length " + std::to_string(payload_len) +
          " exceeds the " + std::to_string(kMaxFramePayload) + " cap");
      return error_;
    }
    if (buf_.size() < kFrameHeaderBytes + payload_len) break;  // torn: wait

    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.partition = partition;
    frame.round_id = round_id;
    frame.payload.assign(buf_.begin() + kFrameHeaderBytes,
                         buf_.begin() + kFrameHeaderBytes + payload_len);
    uint32_t crc = Crc32(buf_.data(), kFrameHeaderBytes - 4);
    crc = Crc32(frame.payload.data(), frame.payload.size(), crc);
    if (crc != expected_crc) {
      error_ = Status::DataLoss("frame CRC mismatch");
      return error_;
    }
    buf_.erase(buf_.begin(), buf_.begin() + kFrameHeaderBytes + payload_len);
    ready_.push_back(std::move(frame));
  }
  return Status::OK();
}

bool FrameDecoder::Next(Frame* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

// ---------------------------------------------------------------------------
// kResult payload codec
// ---------------------------------------------------------------------------

Bytes SerializeRoundResult(const RemoteRoundResult& result) {
  ByteWriter w(32 + result.supports.size() * 12);
  w.PutVarint(result.reports_decoded);
  w.PutVarint(result.reports_invalid);
  w.PutVarint(result.dummies_recognized);
  w.PutVarint(result.dummies_expected);
  w.PutU8(result.spot_check_passed ? 1 : 0);
  w.PutVarint(result.supports.size());
  for (uint64_t s : result.supports) w.PutVarint(s);
  // Estimates carry their own count: a Calibration::kNone round (raw
  // supports for the merge coordinator) ships zero of them.
  w.PutVarint(result.estimates.size());
  for (double e : result.estimates) w.PutDouble(e);
  return w.Release();
}

Result<RemoteRoundResult> ParseRoundResult(const Bytes& payload) {
  ByteReader r(payload);
  RemoteRoundResult result;
  SHUFFLEDP_ASSIGN_OR_RETURN(result.reports_decoded, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(result.reports_invalid, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(result.dummies_recognized, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(result.dummies_expected, r.GetVarint());
  SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t spot, r.GetU8());
  result.spot_check_passed = spot != 0;
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t d, r.GetVarint());
  // Every support costs >= 1 byte and every estimate 8, so d is bounded
  // by the payload size; a lying d cannot drive a huge reserve.
  if (d > r.Remaining()) {
    return Status::DataLoss("result domain size exceeds payload");
  }
  result.supports.reserve(d);
  for (uint64_t i = 0; i < d; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t s, r.GetVarint());
    result.supports.push_back(s);
  }
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t e_count, r.GetVarint());
  if (e_count != 0 && e_count != d) {
    return Status::DataLoss("result estimate count is neither 0 nor d");
  }
  if (e_count > r.Remaining() / 8) {
    return Status::DataLoss("result estimate count exceeds payload");
  }
  result.estimates.reserve(e_count);
  for (uint64_t i = 0; i < e_count; ++i) {
    SHUFFLEDP_ASSIGN_OR_RETURN(double e, r.GetDouble());
    result.estimates.push_back(e);
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("result payload has trailing bytes");
  }
  return result;
}

// ---------------------------------------------------------------------------
// CollectionServer
// ---------------------------------------------------------------------------

CollectionServer::CollectionServer(const ldp::ScalarFrequencyOracle& oracle,
                                   CollectionServerOptions options)
    : oracle_(oracle), options_(std::move(options)) {}

Result<std::unique_ptr<CollectionServer>> CollectionServer::Start(
    const ldp::ScalarFrequencyOracle& oracle,
    CollectionServerOptions options) {
  std::unique_ptr<CollectionServer> server(
      new CollectionServer(oracle, std::move(options)));
  if (server->options_.partition_id >=
      server->options_.partition_map.partitions()) {
    return Status::InvalidArgument(
        "endpoint partition id " +
        std::to_string(server->options_.partition_id) +
        " out of range for map " + server->options_.partition_map.ToString());
  }
  // The streaming worker owns exactly the slice this endpoint was
  // assigned; a single-node default map resolves to the full domain.
  server->options_.streaming.partition =
      server->options_.partition_map.SliceOf(server->options_.partition_id);
  server->collector_ = std::make_unique<PartitionWorker>(
      oracle, server->options_.streaming);

  // Crash recovery before the first byte of traffic: restore the
  // interrupted round so the watermark answer is exact, and replay any
  // finalized-round journal so a kFinish for the round that closed just
  // before the crash is answered instead of rejected.
  const std::string& ckpt_path = server->options_.streaming.checkpoint.path;
  if (server->options_.recover && !ckpt_path.empty()) {
    Result<CheckpointState> state = ReadCheckpoint(ckpt_path);
    if (!state.ok() && state.status().code() != StatusCode::kNotFound) {
      return state.status();  // present but unreadable: refuse to guess
    }
    Result<RoundJournal> journal =
        ReadRoundJournal(RoundJournalPath(ckpt_path));
    if (journal.ok()) {
      // Replay through a throwaway worker when a newer mid-round
      // checkpoint also exists (the live collector must restore *that*
      // round); otherwise through the live collector so its round id
      // advances past the journaled round.
      Result<RoundResult> replay =
          state.ok() ? PartitionWorker(oracle, server->options_.streaming)
                           .RecoverFinalizedRound(*journal)
                     : server->collector_->RecoverFinalizedRound(*journal);
      SHUFFLEDP_RETURN_NOT_OK(replay.status());
      server->have_journaled_result_ = true;
      server->journaled_round_ = journal->round_id;
      server->journaled_n_ = journal->n;
      server->journaled_n_fake_ = journal->n_fake;
      server->journaled_calibration_ = journal->calibration;
      server->journaled_result_.supports = std::move(replay->supports);
      server->journaled_result_.estimates = std::move(replay->estimates);
      server->journaled_result_.reports_decoded = replay->reports_decoded;
      server->journaled_result_.reports_invalid = replay->reports_invalid;
      server->journaled_result_.dummies_recognized =
          replay->dummies_recognized;
      server->journaled_result_.dummies_expected = replay->dummies_expected;
      server->journaled_result_.spot_check_passed = replay->spot_check_passed;
    } else if (journal.status().code() != StatusCode::kNotFound) {
      return journal.status();  // present but unreadable: refuse to guess
    }
    if (state.ok()) {
      SHUFFLEDP_ASSIGN_OR_RETURN(server->recovered_watermark_,
                                 server->collector_->RecoverRound(*state));
      server->recovered_round_ = state->round_id;
    }
  }
  server->ingest_round_ = server->collector_->round_id();
  if (server->options_.partition_map.mode() == PartitionMode::kByValue &&
      server->options_.partition_map.partitions() > 1) {
    // Built once: the kBatch path runs this per ordinal.
    CollectionServer* s = server.get();
    server->ordinal_owner_check_ = [s](uint64_t ordinal) -> Status {
      const uint32_t owner = s->options_.partition_map.OwnerOfOrdinal(ordinal);
      if (owner != s->options_.partition_id) {
        return Status::ProtocolViolation(
            "batch contains ordinal " + std::to_string(ordinal) +
            " owned by partition " + std::to_string(owner) +
            ", not this endpoint's " +
            std::to_string(s->options_.partition_id));
      }
      return Status::OK();
    };
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server->options_.port);
  // Port 0 cannot collide (the kernel assigns); a fixed port can lose a
  // close/rebind race against a parallel test that just released it, so
  // retry briefly and, if the port is genuinely taken, say EADDRINUSE in
  // a distinct status instead of a generic bind failure.
  int bind_rc = -1;
  for (int attempt = 0; attempt < 5; ++attempt) {
    bind_rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (bind_rc == 0 || errno != EADDRINUSE || server->options_.port == 0) {
      break;
    }
    struct timespec backoff = {0, 20 * 1000 * 1000};  // 20 ms
    ::nanosleep(&backoff, nullptr);
  }
  if (bind_rc != 0) {
    Status st = errno == EADDRINUSE
                    ? Status::AlreadyExists(
                          "bind: port " +
                          std::to_string(server->options_.port) +
                          " is EADDRINUSE (pass port 0 to let the kernel "
                          "pick a free one)")
                    : Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, server->options_.listen_backlog) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  // The chosen port is published before the accept thread exists: a
  // caller can read port() and connect the moment Start() returns (the
  // kernel queues the connection against the listening socket even if
  // the accept loop has not reached accept() yet).
  server->port_ = ntohs(bound.sin_port);
  server->listen_fd_ = fd;
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

CollectionServer::~CollectionServer() { Shutdown(); }

uint64_t CollectionServer::round_id() const {
  return collector_->round_id();
}

void CollectionServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Unblock accept() and every connection read; the owning threads see
    // EOF/EBADF and exit. Connection fds are closed by their threads.
    ::shutdown(listen_fd_, SHUT_RDWR);
    for (const auto& conn : connections_) {
      if (!conn->done) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (const auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void CollectionServer::ReapFinishedLocked() {
  // A finished connection marked `done` as its final action under mu_,
  // so its thread is at (or within instructions of) return: joining
  // here cannot block on connection work.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void CollectionServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatal): stop accepting
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    ReapFinishedLocked();  // long-lived endpoints shed dead threads
    connections_.push_back(std::make_unique<Connection>());
    Connection* conn = connections_.back().get();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { ConnectionLoop(conn); });
  }
}

void CollectionServer::ConnectionLoop(Connection* conn) {
  const int fd = conn->fd;
  FrameDecoder decoder;
  uint8_t buf[65536];
  Status status = Status::OK();
  for (;;) {
    ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // peer closed (or shutdown)
    status = decoder.Feed(buf, static_cast<size_t>(got));
    Frame frame;
    while (status.ok() && decoder.Next(&frame)) {
      status = HandleFrame(fd, std::move(frame));
      frame = Frame();
    }
    if (!status.ok()) {
      // Best-effort diagnostic, then drop the connection — a client that
      // sent a malformed or out-of-protocol frame cannot be resynced.
      ByteWriter w;
      w.PutU8(static_cast<uint8_t>(status.code()));
      w.PutLengthPrefixed(status.message());
      Frame error;
      error.type = FrameType::kError;
      error.partition = static_cast<uint16_t>(options_.partition_id);
      error.payload = w.Release();
      Bytes wire = EncodeFrame(error);
      SendAll(fd, wire.data(), wire.size());
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ::close(fd);
  conn->done = true;
}

Status CollectionServer::HandleFrame(int fd, Frame frame) {
  // Misrouted traffic fails loudly: every data/control frame must name
  // the partition this endpoint owns (kWatermark is a pure query and may
  // come from anyone, e.g. a prober that has not handshaken).
  if (frame.type != FrameType::kWatermark &&
      frame.partition != options_.partition_id) {
    return Status::ProtocolViolation(
        "frame targets partition " + std::to_string(frame.partition) +
        " but this endpoint owns partition " +
        std::to_string(options_.partition_id));
  }
  switch (frame.type) {
    case FrameType::kHello: {
      ByteReader r(frame.payload);
      SHUFFLEDP_ASSIGN_OR_RETURN(PartitionMap peer_map,
                                 ParsePartitionMap(&r));
      SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t peer_partition, r.GetVarint());
      if (!r.AtEnd()) {
        return Status::ProtocolViolation("malformed hello payload");
      }
      if (peer_map != options_.partition_map) {
        return Status::ProtocolViolation(
            "partition map mismatch: client speaks " + peer_map.ToString() +
            ", endpoint is " + options_.partition_map.ToString());
      }
      if (peer_partition != options_.partition_id) {
        return Status::ProtocolViolation(
            "client expects this endpoint to own partition " +
            std::to_string(peer_partition) + " but it owns " +
            std::to_string(options_.partition_id));
      }
      Frame reply;
      reply.type = FrameType::kHello;
      reply.partition = static_cast<uint16_t>(options_.partition_id);
      reply.round_id = ingest_round_.load(std::memory_order_acquire);
      ByteWriter w;
      w.PutBytes(SerializePartitionMap(options_.partition_map));
      w.PutVarint(options_.partition_id);
      reply.payload = w.Release();
      return WriteFrameTo(fd, reply);
    }
    case FrameType::kBatch: {
      // Under value partitioning the frame header alone cannot prove
      // routing: every contained ordinal must belong to the owned
      // slice, or another partition's counts are silently wrong. The
      // check runs inline with the decode scan (one pass).
      SHUFFLEDP_ASSIGN_OR_RETURN(
          std::vector<uint64_t> parsed,
          ldp::ParseOrdinalsValidated(oracle_, frame.payload,
                                      ordinal_owner_check_));
      auto ordinals =
          std::make_shared<std::vector<uint64_t>>(std::move(parsed));
      ReportBatch batch;
      batch.count = ordinals->size();
      const ldp::ScalarFrequencyOracle* oracle = &oracle_;
      batch.decode = [ordinals, oracle](uint64_t i) -> Result<DecodedRow> {
        DecodedRow row;
        auto rep = oracle->UnpackOrdinal((*ordinals)[i]);
        if (!rep.ok()) return row;  // padding ordinal: drop, don't abort
        row.report = *rep;
        row.valid = true;
        return row;
      };
      // Round check and Offer are one atomic step under the ingest gate:
      // checking first and offering later would let another connection's
      // kFinish slip its close sentinel in between, silently counting
      // this batch into the next round.
      std::lock_guard<std::mutex> lock(ingest_mu_);
      if (frame.round_id != ingest_round_) {
        return Status::ProtocolViolation(
            "batch for round " + std::to_string(frame.round_id) +
            " but the endpoint is ingesting round " +
            std::to_string(ingest_round_));
      }
      return collector_->Offer(std::move(batch));
    }
    case FrameType::kFinish: {
      ByteReader r(frame.payload);
      SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
      SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t n_fake, r.GetVarint());
      SHUFFLEDP_ASSIGN_OR_RETURN(uint8_t cal, r.GetU8());
      if (!r.AtEnd() || cal > static_cast<uint8_t>(Calibration::kNone)) {
        return Status::ProtocolViolation("malformed finish payload");
      }
      // A kFinish for the journaled round means the client never read
      // the original kResult (crash in the close/read window): answer it
      // from the replayed journal instead of failing the round-id check.
      // The request must restate the parameters the round actually
      // closed with — replaying a result for different (n, n_fake,
      // calibration) would hand the caller numbers it never asked for.
      if (have_journaled_result_ && frame.round_id == journaled_round_ &&
          frame.round_id !=
              ingest_round_.load(std::memory_order_acquire)) {
        if (n != journaled_n_ || n_fake != journaled_n_fake_ ||
            cal != journaled_calibration_) {
          return Status::ProtocolViolation(
              "finish for journaled round " + std::to_string(frame.round_id) +
              " does not match the parameters it closed with (n=" +
              std::to_string(journaled_n_) + ", n_fake=" +
              std::to_string(journaled_n_fake_) + ", calibration=" +
              std::to_string(journaled_calibration_) + ")");
        }
        Frame reply;
        reply.type = FrameType::kResult;
        reply.partition = frame.partition;
        reply.round_id = frame.round_id;
        reply.payload = SerializeRoundResult(journaled_result_);
        return WriteFrameTo(fd, reply);
      }
      std::future<Result<RoundResult>> future;
      {
        std::lock_guard<std::mutex> lock(ingest_mu_);
        if (frame.round_id != ingest_round_) {
          return Status::ProtocolViolation(
              "finish for round " + std::to_string(frame.round_id) +
              " but the endpoint is ingesting round " +
              std::to_string(ingest_round_));
        }
        future = collector_->CloseRound(n, n_fake,
                                        static_cast<Calibration>(cal));
        ++ingest_round_;
      }
      // Blocks this connection's reader only; the kernel socket buffer
      // and the collector queue keep absorbing the next round's batches
      // (from this or other connections) while the round drains.
      Result<RoundResult> round = future.get();
      if (!round.ok()) {
        // Reset under the ingest gate so no concurrent batch can slide
        // into the half-reset pipeline between Reopen and the round-id
        // resync.
        std::lock_guard<std::mutex> lock(ingest_mu_);
        collector_->ResetAfterError();
        ingest_round_ = collector_->round_id();
        return round.status();
      }
      RemoteRoundResult remote;
      remote.supports = std::move(round->supports);
      remote.estimates = std::move(round->estimates);
      remote.reports_decoded = round->reports_decoded;
      remote.reports_invalid = round->reports_invalid;
      remote.dummies_recognized = round->dummies_recognized;
      remote.dummies_expected = round->dummies_expected;
      remote.spot_check_passed = round->spot_check_passed;
      Frame reply;
      reply.type = FrameType::kResult;
      reply.partition = frame.partition;
      reply.round_id = frame.round_id;
      reply.payload = SerializeRoundResult(remote);
      // A domain so large its result frame blows the cap surfaces as a
      // clean kError (via the connection error path), not a poisoned
      // client decoder mid-frame.
      return WriteFrameTo(fd, reply);
    }
    case FrameType::kWatermark: {
      if (!frame.payload.empty()) {
        return Status::ProtocolViolation("watermark query carries a payload");
      }
      Frame reply;
      reply.type = FrameType::kWatermark;
      reply.partition = static_cast<uint16_t>(options_.partition_id);
      ByteWriter w;
      // Atomic read, not the ingest gate: a pure query must not wait
      // behind a backpressured Offer.
      const uint64_t round = ingest_round_.load(std::memory_order_acquire);
      reply.round_id = round;
      // The recovered watermark is meaningful only while the recovered
      // round is still the one being ingested; pairing a stale watermark
      // with a later round would make a resuming client skip that
      // round's first batches. Everywhere else the answer is "start from
      // batch 0".
      const bool recovering =
          recovered_watermark_ > 0 && round == recovered_round_;
      w.PutVarint(recovering ? recovered_watermark_ : 0);
      reply.payload = w.Release();
      return WriteFrameTo(fd, reply);
    }
    case FrameType::kResult:
    case FrameType::kError:
      return Status::ProtocolViolation(
          "client sent a server-to-client frame type");
  }
  return Status::ProtocolViolation("unhandled frame type");
}

// ---------------------------------------------------------------------------
// CollectorClient
// ---------------------------------------------------------------------------

Result<std::unique_ptr<CollectorClient>> CollectorClient::Connect(
    const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<CollectorClient>(new CollectorClient(fd));
}

CollectorClient::~CollectorClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status CollectorClient::WriteFrame(const Frame& frame) {
  Frame stamped = frame;
  stamped.partition = partition_;
  return WriteFrameTo(fd_, stamped);
}

Result<uint64_t> CollectorClient::Hello(const PartitionMap& map,
                                        uint32_t partition_id) {
  Frame hello;
  hello.type = FrameType::kHello;
  ByteWriter w;
  w.PutBytes(SerializePartitionMap(map));
  w.PutVarint(partition_id);
  hello.payload = w.Release();
  const uint16_t previous = partition_;
  partition_ = static_cast<uint16_t>(partition_id);
  Status sent = WriteFrame(hello);
  if (!sent.ok()) {
    partition_ = previous;
    return sent;
  }
  auto reply = ReadFrame();
  if (!reply.ok()) {
    partition_ = previous;
    return reply.status();
  }
  if (reply->type != FrameType::kHello) {
    partition_ = previous;
    return Status::ProtocolViolation("expected a hello reply");
  }
  ByteReader r(reply->payload);
  auto echo_map = ParsePartitionMap(&r);
  auto echo_partition = r.GetVarint();
  if (!echo_map.ok() || !echo_partition.ok() || !r.AtEnd()) {
    partition_ = previous;
    return Status::ProtocolViolation("malformed hello reply");
  }
  if (*echo_map != map || *echo_partition != partition_id) {
    partition_ = previous;
    return Status::ProtocolViolation(
        "endpoint disagrees with the partition layout: speaks " +
        echo_map->ToString() + " owning partition " +
        std::to_string(*echo_partition));
  }
  return reply->round_id;
}

Result<Frame> CollectorClient::ReadFrame() {
  Frame frame;
  uint8_t buf[65536];
  while (!decoder_.Next(&frame)) {
    ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got < 0) return Errno("recv");
    if (got == 0) {
      return Status::DataLoss("server closed the connection mid-frame");
    }
    SHUFFLEDP_RETURN_NOT_OK(decoder_.Feed(buf, static_cast<size_t>(got)));
  }
  if (frame.type == FrameType::kError) {
    ByteReader r(frame.payload);
    auto code = r.GetU8();
    auto message = r.GetLengthPrefixed();
    if (code.ok() && message.ok()) {
      return Status(static_cast<StatusCode>(*code),
                    "endpoint error: " +
                        std::string(message->begin(), message->end()));
    }
    return Status::ProtocolViolation("endpoint sent a malformed error frame");
  }
  return frame;
}

Status CollectorClient::SendOrdinals(
    uint64_t round_id, const ldp::ScalarFrequencyOracle& oracle,
    const std::vector<uint64_t>& ordinals) {
  // One producer batch must stay one frame: the server's checkpoint
  // watermark counts consumed frames, and crash recovery replays by
  // *producer* batch index — silently splitting an oversized batch here
  // would desynchronize those units and corrupt a recovered round. So a
  // batch that cannot fit one frame is an actionable configuration
  // error, not something to paper over.
  const size_t width = ldp::WireReportBytes(oracle);
  if (ordinals.size() > (kMaxFramePayload - 10) / width) {  // 10: varint
    return Status::InvalidArgument(
        "batch of " + std::to_string(ordinals.size()) + " reports (" +
        std::to_string(width) + " B each) cannot fit one transport frame; "
        "lower StreamingOptions::batch_size below " +
        std::to_string((kMaxFramePayload - 10) / width));
  }
  Frame frame;
  frame.type = FrameType::kBatch;
  frame.round_id = round_id;
  frame.payload = ldp::SerializeOrdinals(oracle, ordinals);
  return WriteFrame(frame);
}

Status CollectorClient::SendReports(
    uint64_t round_id, const ldp::ScalarFrequencyOracle& oracle,
    const std::vector<ldp::LdpReport>& reports) {
  std::vector<uint64_t> ordinals;
  ordinals.reserve(reports.size());
  for (const ldp::LdpReport& r : reports) {
    ordinals.push_back(oracle.PackOrdinal(r));
  }
  return SendOrdinals(round_id, oracle, ordinals);
}

Status CollectorClient::SendFinish(uint64_t round_id, uint64_t n,
                                   uint64_t n_fake, Calibration calibration) {
  Frame frame;
  frame.type = FrameType::kFinish;
  frame.round_id = round_id;
  ByteWriter w;
  w.PutVarint(n);
  w.PutVarint(n_fake);
  w.PutU8(static_cast<uint8_t>(calibration));
  frame.payload = w.Release();
  return WriteFrame(frame);
}

Result<RemoteRoundResult> CollectorClient::ReadRoundResult() {
  SHUFFLEDP_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != FrameType::kResult) {
    return Status::ProtocolViolation("expected a result frame");
  }
  return ParseRoundResult(frame.payload);
}

Result<RemoteRoundResult> CollectorClient::FinishRound(
    uint64_t round_id, uint64_t n, uint64_t n_fake, Calibration calibration) {
  SHUFFLEDP_RETURN_NOT_OK(SendFinish(round_id, n, n_fake, calibration));
  return ReadRoundResult();
}

Result<uint64_t> CollectorClient::QueryWatermark(uint64_t* round_id_out) {
  Frame query;
  query.type = FrameType::kWatermark;
  SHUFFLEDP_RETURN_NOT_OK(WriteFrame(query));
  SHUFFLEDP_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
  if (reply.type != FrameType::kWatermark) {
    return Status::ProtocolViolation("expected a watermark reply");
  }
  ByteReader r(reply.payload);
  SHUFFLEDP_ASSIGN_OR_RETURN(uint64_t watermark, r.GetVarint());
  if (!r.AtEnd()) {
    return Status::ProtocolViolation("watermark reply has trailing bytes");
  }
  if (round_id_out != nullptr) *round_id_out = reply.round_id;
  return watermark;
}

}  // namespace service
}  // namespace shuffledp

// Networked collection endpoint: framing protocol + TCP server/client.
//
// The paper's deployment story is an auxiliary-server *service*: millions
// of users submit reports to a collection endpoint across EOS/SS rounds.
// This header turns src/service/ into that endpoint. Reports travel in
// length-prefixed, CRC-guarded binary frames over plain TCP (a gRPC/TLS
// front end is a ROADMAP follow-up); the server multiplexes every
// connection over an epoll readiness loop (a small fixed pool of event
// threads, default 1) and feeds every decoded batch straight into a
// StreamingCollector, so the wire path and the in-process path share
// one aggregation pipeline — the loopback e2e test asserts the two
// produce bitwise-identical estimates.
//
// Frame layout (fixed 24-byte header, integers little-endian; the full
// spec with worked byte-level examples is docs/WIRE_FORMAT.md):
//
//   offset size field
//   0      4    magic "SDPC" (0x53 0x44 0x50 0x43)
//   4      1    version (kWireVersion)
//   5      1    frame type (FrameType)
//   6      2    partition id (u16) — which endpoint slice the frame
//               targets; 0 for single-node deployments (wire v1 called
//               these bytes reserved-zero, so v1 traffic is v2 traffic
//               for partition 0 apart from the version byte)
//   8      8    round id (u64)
//   16     4    payload length (u32, <= kMaxFramePayload)
//   20     4    CRC-32 over header bytes 0–19 then the payload
//   24     ..   payload
//
// Frame types and payloads:
//   kBatch     client→server  ldp::SerializeOrdinals bytes (varint count
//                             + fixed-width big-endian ordinals; padding
//                             ordinals allowed — the server drops them as
//                             invalid rows, PEOS-fake style)
//   kBatchIndexed
//              client→server  varint producer batch index, then the same
//                             SerializeOrdinals bytes as kBatch. The
//                             endpoint accepts the frame only when the
//                             index equals its consumed-batch count:
//                             a stale index (a duplicate — e.g. frames a
//                             replaced connection was still draining
//                             while recovery replayed them on a fresh
//                             one) is dropped silently, a future index
//                             (a gap: a batch was lost) is a protocol
//                             violation. This is what makes the
//                             reconnect-and-replay recovery dance
//                             exactly-once; the index gate assumes ONE
//                             indexed producer stream per endpoint per
//                             round, indices contiguous from 0 (the
//                             partition-routing client's topology).
//   kFinish    client→server  varint n, varint n_fake, u8 calibration
//   kResult    server→client  varint decoded, varint invalid, varint
//                             dummies recognized, varint dummies
//                             expected, u8 spot_check, varint d,
//                             d × varint supports, varint e (0 or d),
//                             e × f64 estimates (e = 0 for the raw
//                             merge-before-calibrate supports a
//                             partition worker returns under
//                             Calibration::kNone)
//   kError     server→client  u8 status code, varint-length message
//   kWatermark both           query: empty payload; reply: varint
//                             consumed-batch watermark — how many of
//                             the ingesting round's batch frames this
//                             endpoint has accepted into its collector
//                             queue (crash recovery seeds it from the
//                             restored checkpoint), with the header
//                             round id naming the round it counts; the
//                             pair is read atomically under the ingest
//                             gate, so a reply can never pair one
//                             round's id with another round's count. A
//                             resuming or reconnecting client replays
//                             from exactly this batch index; 0 = send
//                             from the beginning. As a *replay floor*
//                             the watermark is only meaningful under
//                             the kBatchIndexed single-producer
//                             contract above — with plain kBatch
//                             traffic from several connections it is a
//                             global count no single producer can
//                             replay against. Doubles as a flush
//                             barrier either way: the reply is sent
//                             only after every earlier frame on the
//                             connection has been handed to the
//                             collector queue.
//   kQuery     both           round status query against the durable
//                             round store (round_store.h), with the
//                             header round id naming the queried round.
//                             Request: empty payload. Reply: u8 status
//                             (RoundStatus wire value), u8 flags (bit 0
//                             = durability degraded), varint watermark
//                             (accepted batches for the live round,
//                             durably consumed batches for stored
//                             rounds), then — only when status is
//                             kFinalized — varint n, varint n_fake,
//                             u8 calibration, and the same result bytes
//                             as kResult. Like kWatermark it is a pure
//                             query and skips the partition check, so a
//                             prober can ask without a handshake.
//   kHello     both           partition handshake: SerializePartitionMap
//                             bytes + varint partition id. The client
//                             states the layout it was configured with
//                             and the partition it believes this
//                             endpoint owns; a mismatch is a protocol
//                             violation (kError + drop). The server
//                             echoes its own map + id, with the header
//                             round id set to the round it is currently
//                             ingesting.
//
// Every frame is validated before use: bad magic, version skew, a length
// field beyond kMaxFramePayload, or a CRC mismatch is a hard error and
// the server drops the connection (after a best-effort kError frame). A
// batch for a partition the endpoint does not own — by header id, or
// under kByValue maps by any contained ordinal — is rejected the same
// way: misrouted reports must never be silently miscounted.

#ifndef SHUFFLEDP_SERVICE_TRANSPORT_H_
#define SHUFFLEDP_SERVICE_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "service/partition.h"
#include "service/round_store.h"
#include "service/streaming_collector.h"
#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {
namespace service {

inline constexpr uint8_t kFrameMagic[4] = {'S', 'D', 'P', 'C'};
inline constexpr uint8_t kWireVersion = 2;
inline constexpr size_t kFrameHeaderBytes = 24;
/// Upper bound on a frame payload: rejects length lies before any
/// allocation. 16 MiB fits ~2M 8-byte reports per batch frame.
inline constexpr uint32_t kMaxFramePayload = 1u << 24;

enum class FrameType : uint8_t {
  kBatch = 1,
  kFinish = 2,
  kResult = 3,
  kError = 4,
  kWatermark = 5,
  kHello = 6,
  kBatchIndexed = 7,
  kQuery = 8,  ///< round status/history query (round_store.h)
};

/// One protocol frame (header fields + payload).
struct Frame {
  FrameType type = FrameType::kBatch;
  uint16_t partition = 0;
  uint64_t round_id = 0;
  Bytes payload;
};

/// Serializes a frame (header + CRC + payload) into wire bytes.
Bytes EncodeFrame(const Frame& frame);

/// Incremental frame parser over an arbitrarily chunked byte stream
/// (frames may arrive torn across reads). Feed() buffers bytes and
/// validates each completed header and payload CRC; decoded frames queue
/// up for Next(). The first malformed byte poisons the decoder — every
/// later Feed() returns the same error, matching drop-the-connection
/// semantics.
class FrameDecoder {
 public:
  /// Appends stream bytes and parses as many complete frames as they
  /// finish. Errors (bad magic, version skew, oversized length, CRC
  /// mismatch) are sticky.
  Status Feed(const uint8_t* data, size_t len);
  Status Feed(const Bytes& data) { return Feed(data.data(), data.size()); }

  /// Pops the next completed frame; false when none is pending.
  bool Next(Frame* out);

  /// Bytes buffered but not yet forming a complete frame.
  size_t buffered_bytes() const { return buf_.size(); }

 private:
  Bytes buf_;
  std::deque<Frame> ready_;
  Status error_ = Status::OK();
};

/// The subset of RoundResult that crosses the wire in a kResult frame
/// (pipeline stats stay server-side). `estimates` is empty when the
/// round closed with Calibration::kNone — raw supports for the merge
/// coordinator.
struct RemoteRoundResult {
  std::vector<uint64_t> supports;
  std::vector<double> estimates;
  uint64_t reports_decoded = 0;
  uint64_t reports_invalid = 0;
  uint64_t dummies_recognized = 0;
  uint64_t dummies_expected = 0;
  bool spot_check_passed = true;
};

/// kResult payload codec (also reused by the tests' golden vectors).
Bytes SerializeRoundResult(const RemoteRoundResult& result);
Result<RemoteRoundResult> ParseRoundResult(const Bytes& payload);

/// Decoded kQuery reply: the endpoint's durable view of one round.
struct RoundQuery {
  RoundStatus status = RoundStatus::kUnknown;
  /// The round's durability was downgraded by an out-of-space store —
  /// the result (when finalized) is correct but would not have survived
  /// a crash before it was read.
  bool durability_degraded = false;
  /// Accepted batches for the live round; durably consumed batches for
  /// stored rounds (0 when served from the in-memory result stash).
  uint64_t watermark = 0;
  // Populated only when status == kFinalized:
  uint64_t n = 0;
  uint64_t n_fake = 0;
  uint8_t calibration = 0;  ///< Calibration wire value
  RemoteRoundResult result;
};

/// Per-operation deadlines for the client side of the endpoint. Every
/// value is milliseconds; <= 0 disables that deadline (the seed's
/// block-forever behavior, kept available for debugging but not the
/// default — a blackholed peer must surface as kDeadlineExceeded, never
/// as a hang). Deadlines are per operation: each Send*/ReadFrame call
/// gets a fresh one.
struct CollectorClientOptions {
  /// Nonblocking connect + poll bound; a blackholed address fails with
  /// kDeadlineExceeded naming the endpoint instead of hanging in
  /// ::connect.
  int connect_timeout_ms = 10000;
  /// Whole-frame read bound (covers every recv a frame needs). Must
  /// exceed the worst-case server round-drain for FinishRound reads.
  int read_timeout_ms = 120000;
  /// Full-buffer write bound: a stalled peer that stops draining its
  /// socket fails the send instead of wedging the producer.
  int write_timeout_ms = 60000;
};

/// Per-connection lifecycle counters for a collection endpoint
/// (monotonic over the server's lifetime; read via
/// CollectionServer::stats()).
struct CollectionServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;   ///< all closes, any cause
  uint64_t evicted_idle = 0;         ///< idle-timeout evictions
  uint64_t evicted_slow = 0;         ///< write-deadline evictions
  /// Write-queue overflow evictions (the drop-slowest policy): the
  /// connection's pending reply backlog exceeded write_queue_max_bytes
  /// because the peer would not drain its socket.
  uint64_t evicted_overflow = 0;
  uint64_t protocol_errors = 0;      ///< connections dropped on bad frames
  uint64_t frames_handled = 0;       ///< frames fully processed
  /// kBatchIndexed frames dropped as already-consumed duplicates (a
  /// replaced connection's stragglers racing a recovery replay).
  uint64_t batches_deduped = 0;
};

/// Collection endpoint configuration.
struct CollectionServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back via
  /// port(), which is valid as soon as Start() returns and before the
  /// accept loop admits its first connection — the race-free pattern the
  /// loopback tests and examples rely on). A fixed port that is already
  /// taken fails with AlreadyExists naming EADDRINUSE after a bounded
  /// retry; prefer port 0 anywhere tests run in parallel. The listener
  /// binds 127.0.0.1 only: the endpoint speaks unauthenticated
  /// cleartext, so exposure beyond the host belongs behind the gRPC/TLS
  /// front end tracked in ROADMAP.md.
  uint16_t port = 0;
  /// Ingestion pipeline knobs, including checkpoint persistence.
  StreamingOptions streaming;
  /// The partition layout this endpoint participates in and the slice it
  /// owns. Defaults to the single-node 1-of-1 layout (partition id 0),
  /// which every pre-partition client speaks implicitly. The streaming
  /// worker's slice is derived from these — any partition slice set in
  /// `streaming.partition` is overridden.
  PartitionMap partition_map;
  uint32_t partition_id = 0;
  /// When true and the configured round store (streaming.round_store /
  /// streaming.checkpoint) holds state, Start() recovers before
  /// accepting traffic: every stored round loads through
  /// RoundStore::LoadAll — a live mid-round state restores into the
  /// collector (clients query the consumed-batch watermark and resume
  /// from it), and the newest finalized round replays into the result
  /// stash, so a kFinish re-request for it is answered instead of
  /// rejected. Legacy SDPK/SDPJ files recover through the same
  /// interface unchanged.
  bool recover = false;
  int listen_backlog = 16;
  /// Event-loop threads multiplexing the accepted connections. <= 0 (the
  /// default) reads SHUFFLEDP_EVENT_THREADS from the environment, falling
  /// back to 1; clamped to [1, 64]. One loop saturates loopback ingest on
  /// small hosts — the pool exists for many-core endpoints where decode
  /// work on one loop would serialize unrelated connections.
  int event_threads = 0;
  /// Bounded per-connection write queue (encoded reply bytes awaiting the
  /// socket). A peer that requests replies faster than it drains them
  /// grows this backlog; past the bound the connection is dropped (the
  /// drop-slowest policy, counted in stats().evicted_overflow) instead of
  /// growing server memory without limit. A single reply larger than the
  /// bound is always admitted to an empty queue — the bound limits
  /// *backlog*, not frame size.
  size_t write_queue_max_bytes = 4u << 20;
  /// Slow-client eviction: a connection whose pending server→client
  /// write (result, watermark, error frames) makes no progress for this
  /// long is dropped and counted in stats().evicted_slow. <= 0 disables.
  int write_timeout_ms = 60000;
  /// Idle-connection eviction: a connection that completes no frame for
  /// this long is dropped and counted in stats().evicted_idle. The clock
  /// resets on each *completed* frame, not each received byte, so a
  /// byte-at-a-time slowloris sender is evicted on schedule. <= 0
  /// disables (the default — coordinator connections legitimately sit
  /// idle between rounds; fleets that hold thousands of client
  /// connections set this).
  int idle_timeout_ms = 0;
  /// How long a kFinish for the *previous* round waits for that round's
  /// in-flight drain before being rejected. This is the reconnect-and-
  /// refinish window: a coordinator whose connection died between
  /// SendFinish and the result reply re-sends the finish on a fresh
  /// connection, which may land while the original close is still
  /// draining.
  int result_rewait_ms = 15000;
};

/// TCP collection endpoint: an epoll readiness loop (event_threads
/// event-loop threads; connections are assigned round-robin and pinned
/// to one loop for life) multiplexing every accepted socket, all
/// feeding one partition-scoped streaming worker. Each connection is
/// nonblocking and carries its own FrameDecoder; idle and write
/// deadlines ride a hashed timer wheel instead of per-operation
/// poll(). Round closes (kFinish) hand their drain wait to a detached
/// finisher thread so one coordinator's multi-second drain never
/// stalls the loop — the requesting connection pauses (exactly the
/// old one-reader-blocked semantics, per connection) while every
/// other connection keeps streaming.
/// Plain kBatch frames from multiple connections interleave safely
/// (integer-counter aggregation is order-independent); kBatchIndexed
/// frames additionally pass the exactly-once index gate, which assumes
/// a single indexed producer stream per round (its reconnects may
/// overlap — stragglers a dying connection is still draining are
/// deduplicated against the replay). Round control (kFinish) is
/// expected from a single coordinator connection at a time. Senders on
/// other connections synchronize with a kWatermark flush barrier before
/// the coordinator closes the round.
class CollectionServer {
 public:
  /// Binds, listens, recovers (when configured), and starts accepting.
  static Result<std::unique_ptr<CollectionServer>> Start(
      const ldp::ScalarFrequencyOracle& oracle,
      CollectionServerOptions options);

  ~CollectionServer();

  CollectionServer(const CollectionServer&) = delete;
  CollectionServer& operator=(const CollectionServer&) = delete;

  /// The bound port (resolves ephemeral port 0).
  uint16_t port() const { return port_; }

  /// Watermark restored by crash recovery (0 on a fresh start).
  uint64_t recovered_watermark() const { return recovered_watermark_; }

  /// The durable round store backing this endpoint (shared with the
  /// streaming worker; null when persistence is off).
  const std::shared_ptr<RoundStore>& store() const { return store_; }

  /// Id of the round currently ingesting.
  uint64_t round_id() const;

  /// Snapshot of the per-connection lifecycle counters.
  CollectionServerStats stats() const;

  /// Stops accepting, drops every connection, and joins all threads.
  /// Idempotent; the destructor calls it. In-flight checkpoint state on
  /// disk is left untouched (that is the crash-recovery artifact).
  void Shutdown();

 private:
  CollectionServer(const ldp::ScalarFrequencyOracle& oracle,
                   CollectionServerOptions options);

  /// One epoll readiness loop: owns its epoll fd, a wakeup eventfd, a
  /// timer wheel, and the connections pinned to it. Defined in the .cpp
  /// — connection state never leaves the loop thread that owns it.
  class EventLoop;

  /// One in-flight kFinish wait, offloaded from the loop thread (the
  /// round drain can take seconds). `done` flips as the thread's last
  /// action so DispatchFinish can reap completed workers promptly
  /// instead of accumulating joinable threads until shutdown.
  struct FinishWorker {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// Hands a kFinish wait to a fresh finisher thread. `closing` says the
  /// ingest gate already swung (live close; `future` carries the drain);
  /// otherwise the worker waits on the re-finish result stash. The reply
  /// (or failure) is posted back to `loop` against `conn_id`.
  void DispatchFinish(EventLoop* loop, uint64_t conn_id, bool closing,
                      std::future<Result<RoundResult>> future,
                      uint64_t round_id, uint64_t n, uint64_t n_fake,
                      uint8_t calibration, uint16_t reply_partition);
  void RunFinish(EventLoop* loop, uint64_t conn_id, bool closing,
                 std::future<Result<RoundResult>> future, uint64_t round_id,
                 uint64_t n, uint64_t n_fake, uint8_t calibration,
                 uint16_t reply_partition);
  void ReapFinishWorkersLocked();
  void StashRoundResult(uint64_t round_id, uint64_t n, uint64_t n_fake,
                        uint8_t calibration, RemoteRoundResult result,
                        bool durability_degraded);

  const ldp::ScalarFrequencyOracle& oracle_;
  CollectionServerOptions options_;
  std::shared_ptr<RoundStore> store_;  ///< shared with collector_
  std::unique_ptr<PartitionWorker> collector_;
  uint16_t port_ = 0;
  uint64_t recovered_watermark_ = 0;
  uint64_t recovered_round_ = 0;
  // The last finalized round result, kept so a coordinator whose
  // connection died in the close-to-read window can reconnect and
  // re-send the kFinish: the re-request is served from this stash
  // instead of failing the round-id check — but only when its close
  // parameters match the stashed ones, so a caller can never receive a
  // result computed under parameters it did not ask for. Populated by
  // every live round close and by finalized-round journal replay at
  // recovery; guarded by result_mu_ (multiple reader threads), with
  // result_cv_ waking re-finish waiters when a drain completes.
  mutable std::mutex result_mu_;
  std::condition_variable result_cv_;
  bool have_last_result_ = false;
  uint64_t last_round_ = 0;
  uint64_t last_n_ = 0;
  uint64_t last_n_fake_ = 0;
  uint8_t last_calibration_ = 0;
  bool last_durability_degraded_ = false;
  RemoteRoundResult last_result_;
  // Lifecycle counters behind stats().
  std::atomic<uint64_t> stat_accepted_{0};
  std::atomic<uint64_t> stat_closed_{0};
  std::atomic<uint64_t> stat_evicted_idle_{0};
  std::atomic<uint64_t> stat_evicted_slow_{0};
  std::atomic<uint64_t> stat_evicted_overflow_{0};
  std::atomic<uint64_t> stat_protocol_errors_{0};
  std::atomic<uint64_t> stat_frames_{0};
  std::atomic<uint64_t> stat_deduped_{0};
  // Per-ordinal slice-ownership predicate for kByValue maps (built once
  // at Start; null otherwise) — the kBatch ingest path runs it inline
  // with the decode scan, so it must not be rebuilt per frame.
  std::function<Status(uint64_t)> ordinal_owner_check_;
  int listen_fd_ = -1;

  // The readiness loops (fixed at Start; loop 0 owns the listening
  // socket and assigns accepted connections round-robin).
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<size_t> next_loop_{0};

  // In-flight kFinish waits; completed workers are reaped on the next
  // dispatch, the rest joined at Shutdown. `result_waiters_stop_`
  // (guarded by result_mu_) wakes stash waiters out of their rewait so
  // shutdown never sits out a result_rewait_ms window.
  std::mutex finish_mu_;
  std::vector<std::unique_ptr<FinishWorker>> finish_workers_;
  bool result_waiters_stop_ = false;

  std::mutex mu_;  // guards stopping_
  bool stopping_ = false;

  // Round-ingest gate: the batch round check (+ index gate for
  // kBatchIndexed) + Offer and the finish round check +
  // CloseRound-sentinel push are each atomic under this mutex, so a
  // batch validated for round k can never land behind round k's close
  // sentinel (its Offer would count it into round k+1), and two
  // connections racing the same batch index can never both pass the
  // duplicate gate. This serializes the enqueue step across connections
  // (decode/parse stays parallel; the queue would serialize the push
  // anyway). The kWatermark reply also reads the (round, count) pair
  // under this mutex — a reply must never pair one round's id with
  // another round's count, and the wait behind an in-flight Offer is
  // exactly the flush-barrier semantics the watermark promises.
  std::mutex ingest_mu_;
  // Atomic so lock-free readers (the kHello reply, error messages
  // composed outside the gate) stay race-free; every write is under
  // ingest_mu_.
  std::atomic<uint64_t> ingest_round_{0};
  // Batches accepted into the collector queue for the ingesting round —
  // the watermark a reconnecting sender resumes from, and the next
  // batch index the kBatchIndexed gate admits. Advances under
  // ingest_mu_ with each accepted batch, resets when the round closes,
  // and is seeded from the restored checkpoint at recovery.
  std::atomic<uint64_t> ingest_offered_{0};
};

/// Client side of the endpoint. Synchronous; not thread-safe (one
/// in-flight protocol conversation per client). Every operation is
/// deadline-bounded per CollectorClientOptions; transient failures
/// (peer down, reset, deadline) come back as kUnavailable /
/// kDeadlineExceeded so the retry layer (service/retry.h) can tell
/// them from protocol violations.
class CollectorClient {
 public:
  /// Connects to `host:port` within options.connect_timeout_ms. `host`
  /// is a numeric IPv4 address or "localhost". A blackholed address
  /// fails with kDeadlineExceeded naming the endpoint; a refused one
  /// with kUnavailable.
  static Result<std::unique_ptr<CollectorClient>> Connect(
      const std::string& host, uint16_t port,
      const CollectorClientOptions& options = CollectorClientOptions());

  ~CollectorClient();

  CollectorClient(const CollectorClient&) = delete;
  CollectorClient& operator=(const CollectorClient&) = delete;

  /// Partition id stamped into every outgoing frame header (default 0,
  /// the single-node layout). The partition-routing client sets this to
  /// the endpoint's owned partition after the kHello handshake.
  void set_partition(uint16_t partition) { partition_ = partition; }
  uint16_t partition() const { return partition_; }

  /// Partition handshake: states `map` + `partition_id` to the endpoint
  /// and verifies the echo matches. Returns the round id the endpoint is
  /// currently ingesting (the natural round to start streaming into).
  /// On success the client stamps `partition_id` into later frames.
  Result<uint64_t> Hello(const PartitionMap& map, uint32_t partition_id);

  /// Ships one batch of packed ordinals for `round_id` as a plain
  /// (unindexed) kBatch frame — the endpoint accepts it
  /// unconditionally. Use this for unordered producers that never
  /// replay (multi-connection fan-in, the watermark as a flush barrier
  /// only); anything that may reconnect and replay must use the indexed
  /// overload so the endpoint can deduplicate.
  Status SendOrdinals(uint64_t round_id,
                      const ldp::ScalarFrequencyOracle& oracle,
                      const std::vector<uint64_t>& ordinals);

  /// Ships one batch as a kBatchIndexed frame carrying the producer
  /// batch index. The endpoint accepts it only when `batch_index`
  /// equals its consumed-batch count: a replayed duplicate is dropped
  /// silently (exactly-once under reconnect-and-replay recovery), a
  /// gap is a protocol violation. Requires the single-indexed-producer
  /// topology: one producer stream per endpoint per round, indices
  /// contiguous from 0 (or from the queried watermark after recovery).
  Status SendOrdinals(uint64_t round_id, uint64_t batch_index,
                      const ldp::ScalarFrequencyOracle& oracle,
                      const std::vector<uint64_t>& ordinals);

  /// Ships one batch of reports (PackOrdinal'd) for `round_id`.
  Status SendReports(uint64_t round_id,
                     const ldp::ScalarFrequencyOracle& oracle,
                     const std::vector<ldp::LdpReport>& reports);

  /// Sends the round-close frame without waiting for the result, so the
  /// caller can pipeline the next round's batches behind it.
  Status SendFinish(uint64_t round_id, uint64_t n, uint64_t n_fake,
                    Calibration calibration);

  /// Blocks until the server's kResult (or kError) for the oldest
  /// unanswered SendFinish arrives.
  Result<RemoteRoundResult> ReadRoundResult();

  /// SendFinish + ReadRoundResult.
  Result<RemoteRoundResult> FinishRound(uint64_t round_id, uint64_t n,
                                        uint64_t n_fake,
                                        Calibration calibration);

  /// Asks the server for its consumed-batch watermark: how many of the
  /// ingesting round's batches the endpoint has accepted so far, i.e.
  /// the batch index a resuming (crash recovery) or reconnecting
  /// (endpoint recovery) sender replays from — 0 means "send from the
  /// beginning". The count resets when a round closes and is seeded
  /// from the restored checkpoint after a crash. `round_id_out`, when
  /// non-null, receives the round id the server is currently ingesting;
  /// the (round, watermark) pair is consistent — the server reads both
  /// under its ingest gate. As a replay floor the watermark assumes the
  /// single-indexed-producer topology (see the indexed SendOrdinals
  /// overload); replayed batches at stale indices are deduplicated
  /// server-side, so a floor that raced an in-flight batch is safe.
  /// Because the server answers queries in connection order, a reply
  /// also certifies that every batch this client sent earlier has been
  /// handed to the collector queue — the flush barrier
  /// multi-connection rounds use before a coordinator's kFinish.
  Result<uint64_t> QueryWatermark(uint64_t* round_id_out = nullptr);

  /// Asks the endpoint for its durable view of `round_id` (the kQuery
  /// frame): live/finalized/unknown status, watermark, durability flag,
  /// and — for finalized rounds — the full result with the parameters
  /// it closed with, served from the round store's history. A round
  /// older than the store's retention horizon answers kUnknown.
  Result<RoundQuery> QueryRound(uint64_t round_id);

  /// The endpoint this client dialed, as "host:port" (error messages).
  const std::string& peer() const { return peer_; }

 private:
  CollectorClient(int fd, uint16_t port, std::string peer,
                  const CollectorClientOptions& options)
      : fd_(fd), port_(port), peer_(std::move(peer)), options_(options) {}

  Status WriteFrame(const Frame& frame);
  Result<Frame> ReadFrame();

  int fd_ = -1;
  uint16_t port_ = 0;      ///< dialed TCP port (fault-injection match key)
  std::string peer_;       ///< "host:port" for error messages
  CollectorClientOptions options_;
  uint16_t partition_ = 0;
  FrameDecoder decoder_;
};

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_TRANSPORT_H_

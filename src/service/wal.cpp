#include "service/wal.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "service/fault_injection.h"
#include "util/hash.h"

namespace shuffledp {
namespace service {

Status MapStorageErrno(const char* what, const std::string& path,
                       const char* verb, int err) {
  std::string msg = std::string(what) + " " + verb + " failed";
  if (!path.empty()) msg += " (" + path + ")";
  msg += ": ";
  msg += std::strerror(err);
#ifdef EDQUOT
  const bool exhausted = err == ENOSPC || err == EDQUOT;
#else
  const bool exhausted = err == ENOSPC;
#endif
  return exhausted ? Status::ResourceExhausted(std::move(msg))
                   : Status::Internal(std::move(msg));
}

namespace {

/// Applies the scripted action for one storage site. Returns a non-OK
/// status when the action fails the call; `cap` (when non-null) limits
/// the bytes a following write may put on disk (short-write modeling).
Status ApplyStorageFault(FaultOp op, const char* what,
                         const std::string& path, const char* verb,
                         size_t* cap) {
  FaultAction action = EvaluateInstalledFault(op, /*port=*/0);
  switch (action.kind) {
    case FaultAction::Kind::kNone:
      return Status::OK();
    case FaultAction::Kind::kFailErrno:
      return MapStorageErrno(what, path, verb, action.err);
    case FaultAction::Kind::kDelayMs:
      std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
      return Status::OK();
    case FaultAction::Kind::kTruncateSend:
      // Short write: the capped prefix reaches the file (a torn tail on
      // disk), then the call reports ENOSPC — the classic out-of-space
      // partial write.
      if (cap != nullptr && action.max_bytes < *cap) {
        *cap = static_cast<size_t>(action.max_bytes);
      }
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace

Status StorageWriteAll(int fd, const uint8_t* data, size_t len,
                       const char* what, const std::string& path) {
  size_t cap = len;
  SHUFFLEDP_RETURN_NOT_OK(
      ApplyStorageFault(FaultOp::kFileWrite, what, path, "write", &cap));
  size_t off = 0;
  while (off < cap) {
    ssize_t wrote = ::write(fd, data + off, cap - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return MapStorageErrno(what, path, "write", errno);
    }
    off += static_cast<size_t>(wrote);
  }
  if (cap < len) {
    return MapStorageErrno(what, path, "write (short)", ENOSPC);
  }
  return Status::OK();
}

Status StorageFsync(int fd, const char* what, const std::string& path) {
  SHUFFLEDP_RETURN_NOT_OK(
      ApplyStorageFault(FaultOp::kFileSync, what, path, "fsync", nullptr));
  if (::fsync(fd) != 0) {
    return MapStorageErrno(what, path, "fsync", errno);
  }
  return Status::OK();
}

Status StorageRename(const std::string& from, const std::string& to,
                     const char* what) {
  SHUFFLEDP_RETURN_NOT_OK(
      ApplyStorageFault(FaultOp::kFileRename, what, to, "rename", nullptr));
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return MapStorageErrno(what, to, "rename", errno);
  }
  return Status::OK();
}

Status StorageTruncate(int fd, uint64_t len, const char* what,
                       const std::string& path) {
  SHUFFLEDP_RETURN_NOT_OK(
      ApplyStorageFault(FaultOp::kFileWrite, what, path, "truncate", nullptr));
  if (::ftruncate(fd, static_cast<off_t>(len)) != 0) {
    return MapStorageErrno(what, path, "truncate", errno);
  }
  return Status::OK();
}

Status StorageUnlink(const std::string& path, const char* what) {
  SHUFFLEDP_RETURN_NOT_OK(
      ApplyStorageFault(FaultOp::kFileUnlink, what, path, "unlink", nullptr));
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return MapStorageErrno(what, path, "unlink", errno);
  }
  return Status::OK();
}

namespace {

Bytes BuildWalHeader(uint32_t partition_index, uint32_t partition_count) {
  ByteWriter w(kWalHeaderBytes);
  w.PutBytes(kWalMagic, 4);
  w.PutU8(kWalVersion);
  w.PutU8(0);
  w.PutU16(static_cast<uint16_t>(partition_index));
  w.PutU16(static_cast<uint16_t>(partition_count));
  w.PutU16(0);
  Bytes header = w.Release();
  ByteWriter crc(4);
  crc.PutU32(Crc32(header.data(), header.size()));
  const Bytes& crc_bytes = crc.data();
  Bytes out = std::move(header);
  out.insert(out.end(), crc_bytes.begin(), crc_bytes.end());
  return out;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const Options& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("WAL path is empty");
  }
  if (options.partition_count == 0 || options.partition_count > 0xFFFF ||
      options.partition_index >= options.partition_count) {
    return Status::InvalidArgument("WAL partition identity out of range");
  }
  int fd = ::open(options.path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return MapStorageErrno("WAL", options.path, "open", errno);
  }
  std::unique_ptr<WriteAheadLog> log(new WriteAheadLog(options.path, fd));

  // Slurp the whole file: WALs are bounded by the compaction cadence,
  // and recovery needs every record anyway.
  Bytes bytes;
  uint8_t buf[1 << 16];
  ssize_t got;
  while ((got = ::read(fd, buf, sizeof(buf))) > 0) {
    bytes.insert(bytes.end(), buf, buf + static_cast<size_t>(got));
  }
  if (got < 0) {
    return MapStorageErrno("WAL", options.path, "read", errno);
  }

  if (bytes.empty()) {
    // Fresh log: publish the header. No rename discipline here — a torn
    // header write leaves a short file, which the branch below restarts
    // as fresh, and a log with no records carries no state to lose.
    Bytes header = BuildWalHeader(options.partition_index,
                                  options.partition_count);
    SHUFFLEDP_RETURN_NOT_OK(StorageWriteAll(fd, header.data(), header.size(),
                                            "WAL", options.path));
    SHUFFLEDP_RETURN_NOT_OK(StorageFsync(fd, "WAL", options.path));
    return log;
  }

  if (bytes.size() < kWalHeaderBytes) {
    // Torn *initial* header publish: the first 16-byte write has no
    // rename discipline, so a crash can leave a prefix of it. Such a
    // file cannot hold any record — there is no state to lose — so
    // restart it as a fresh log instead of bricking every later Open.
    // (A full-length header that fails its CRC stays DataLoss below: a
    // torn write of a fresh file can only produce a short prefix, so
    // that is post-publish media corruption — refuse to guess.)
    SHUFFLEDP_RETURN_NOT_OK(StorageTruncate(fd, 0, "WAL", options.path));
    if (::lseek(fd, 0, SEEK_SET) < 0) {
      return MapStorageErrno("WAL", options.path, "seek", errno);
    }
    Bytes header = BuildWalHeader(options.partition_index,
                                  options.partition_count);
    SHUFFLEDP_RETURN_NOT_OK(StorageWriteAll(fd, header.data(), header.size(),
                                            "WAL", options.path));
    SHUFFLEDP_RETURN_NOT_OK(StorageFsync(fd, "WAL", options.path));
    return log;
  }
  if (std::memcmp(bytes.data(), kWalMagic, 4) != 0) {
    return Status::DataLoss("WAL magic mismatch: " + options.path);
  }
  if (bytes[4] != kWalVersion) {
    return Status::DataLoss("unsupported WAL version " +
                            std::to_string(bytes[4]) + ": " + options.path);
  }
  {
    ByteReader r(bytes);
    (void)r.GetBytes(6);  // magic + version + reserved, checked above
    uint16_t part_index = r.GetU16().value_or(0xFFFF);
    uint16_t part_count = r.GetU16().value_or(0);
    (void)r.GetU16();  // reserved
    uint32_t crc = r.GetU32().value_or(0);
    if (crc != Crc32(bytes.data(), 12)) {
      return Status::DataLoss("WAL header CRC mismatch: " + options.path);
    }
    if (part_index != options.partition_index ||
        part_count != options.partition_count) {
      return Status::FailedPrecondition(
          "WAL belongs to partition " + std::to_string(part_index) + "/" +
          std::to_string(part_count) + ", not " +
          std::to_string(options.partition_index) + "/" +
          std::to_string(options.partition_count) + ": " + options.path);
    }
  }

  // Scan records; the first invalid one ends the log (torn tail).
  size_t off = kWalHeaderBytes;
  while (off < bytes.size()) {
    if (bytes.size() - off < kWalRecordHeaderBytes) break;
    uint32_t body_len, crc;
    std::memcpy(&body_len, bytes.data() + off, 4);
    std::memcpy(&crc, bytes.data() + off + 4, 4);
    if (body_len < 9 || body_len > kMaxWalRecordBody) break;
    if (bytes.size() - off - kWalRecordHeaderBytes < body_len) break;
    const uint8_t* body = bytes.data() + off + kWalRecordHeaderBytes;
    if (Crc32(body, body_len) != crc) break;
    const uint8_t type = body[0];
    if (type < static_cast<uint8_t>(WalRecordType::kDelta) ||
        type > static_cast<uint8_t>(WalRecordType::kAbandon)) {
      break;
    }
    Record record;
    record.type = static_cast<WalRecordType>(type);
    std::memcpy(&record.lsn, body + 1, 8);
    record.payload.assign(body + 9, body + body_len);
    log->recovered_.push_back(std::move(record));
    off += kWalRecordHeaderBytes + body_len;
  }

  if (off < bytes.size()) {
    // Truncate-on-recovery: drop the torn tail so the next append
    // starts at a clean record boundary.
    log->truncated_bytes_ = bytes.size() - off;
    SHUFFLEDP_RETURN_NOT_OK(StorageTruncate(fd, off, "WAL", options.path));
    SHUFFLEDP_RETURN_NOT_OK(StorageFsync(fd, "WAL", options.path));
    if (::lseek(fd, static_cast<off_t>(off), SEEK_SET) < 0) {
      return MapStorageErrno("WAL", options.path, "seek", errno);
    }
  }
  return log;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::Append(WalRecordType type, uint64_t lsn,
                             const Bytes& payload) {
  if (payload.size() > kMaxWalRecordBody - 9) {
    return Status::InvalidArgument("WAL record payload too large");
  }
  const uint32_t body_len = static_cast<uint32_t>(9 + payload.size());
  ByteWriter w(kWalRecordHeaderBytes + body_len);
  w.PutU32(body_len);
  w.PutU32(0);  // CRC patched below
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(lsn);
  w.PutBytes(payload);
  Bytes frame = w.Release();
  const uint32_t crc =
      Crc32(frame.data() + kWalRecordHeaderBytes, body_len);
  std::memcpy(frame.data() + 4, &crc, 4);
  return StorageWriteAll(fd_, frame.data(), frame.size(), "WAL", path_);
}

Status WriteAheadLog::Sync() { return StorageFsync(fd_, "WAL", path_); }

Status WriteAheadLog::TruncateAll() {
  SHUFFLEDP_RETURN_NOT_OK(
      StorageTruncate(fd_, kWalHeaderBytes, "WAL", path_));
  SHUFFLEDP_RETURN_NOT_OK(StorageFsync(fd_, "WAL", path_));
  if (::lseek(fd_, static_cast<off_t>(kWalHeaderBytes), SEEK_SET) < 0) {
    return MapStorageErrno("WAL", path_, "seek", errno);
  }
  return Status::OK();
}

}  // namespace service
}  // namespace shuffledp

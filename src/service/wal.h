// Per-worker write-ahead log for the durable round store.
//
// The full-snapshot checkpoint path (checkpoint.h) rewrites the whole
// counter state every N batches — O(slice) bytes per snapshot, one
// in-flight round per worker. The WAL inverts that cost model: the
// consumer appends one small CRC-framed record per ingested batch group
// (sparse support deltas, tally deltas, dummy-multiset deltas), with
// explicit fsync barriers, and the round store periodically compacts
// the log into immutable segment files (round_store.h). Crash recovery
// is a scan: records are validated front-to-back, the first invalid
// record ends the log (a torn tail from a crash mid-append), and the
// file is truncated back to the last valid record so the next append
// starts from a clean boundary.
//
// On-disk layout (all integers little-endian; see docs/WIRE_FORMAT.md
// §6 for the golden-pinned worked example):
//
//   file header (16 bytes)
//   0   4   magic "SDPW" (0x53 0x44 0x50 0x57)
//   4   1   version (kWalVersion)
//   5   1   reserved, zero
//   6   2   partition index (u16) — the slice identity of the writer; a
//   8   2   partition count (u16)   recovering store refuses another
//                                   slice's log
//   10  2   reserved, zero
//   12  4   CRC-32 of bytes [0, 12)
//
//   record frame (repeated; body = type byte .. payload end)
//   0   4   body length (u32) = 9 + payload length
//   4   4   CRC-32 of the body bytes
//   8   1   record type (WalRecordType)
//   9   8   LSN (u64) — monotonically increasing across truncations
//   17  ..  payload (round_store.h owns the per-type payload codecs)
//
// LSNs are what make replay idempotent: segment files record the last
// LSN folded into them, so a crash *between* writing segments and
// truncating the log (or a duplicated record from a torn append retry)
// replays as a no-op — the store skips any record whose LSN it has
// already applied.
//
// This header also exports the storage syscall wrappers shared with the
// legacy checkpoint writer: write / fsync / rename / ftruncate with the
// storage fault-injection hooks (fault_injection.h kFileWrite/kFileSync/
// kFileRename) and the ENOSPC → kResourceExhausted taxonomy mapping
// that lets the worker degrade instead of poisoning a round.

#ifndef SHUFFLEDP_SERVICE_WAL_H_
#define SHUFFLEDP_SERVICE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace shuffledp {
namespace service {

inline constexpr uint8_t kWalMagic[4] = {'S', 'D', 'P', 'W'};
inline constexpr uint8_t kWalVersion = 1;
inline constexpr size_t kWalHeaderBytes = 16;
inline constexpr size_t kWalRecordHeaderBytes = 8;  ///< length + CRC
/// Body length sanity cap: a record larger than this fails validation
/// before any allocation (a torn length field cannot balloon memory).
inline constexpr uint32_t kMaxWalRecordBody = 1u << 26;

/// What a WAL record means to the round store.
enum class WalRecordType : uint8_t {
  kDelta = 1,     ///< incremental RoundDelta (round_store.h codec)
  kFinalize = 2,  ///< round finalized: batches_consumed + journal payload
  kAbandon = 3,   ///< round abandoned (failed): varint round id
};

// ---------------------------------------------------------------------------
// Fault-injectable storage syscall wrappers (shared with checkpoint.cpp)
// ---------------------------------------------------------------------------

/// Maps a storage errno to the retry taxonomy: ENOSPC/EDQUOT become
/// kResourceExhausted (degrade-eligible, see retry.h), everything else
/// kInternal. `verb` names the failed operation for the message.
Status MapStorageErrno(const char* what, const std::string& path,
                       const char* verb, int err);

/// write(2) loop writing all `len` bytes. Consults the kFileWrite fault
/// hook first: a scripted errno fails without writing, a short-write
/// action writes only the capped prefix (a torn tail on disk) and then
/// fails — both mapped through MapStorageErrno.
Status StorageWriteAll(int fd, const uint8_t* data, size_t len,
                       const char* what, const std::string& path);

/// fsync(2) behind the kFileSync hook.
Status StorageFsync(int fd, const char* what, const std::string& path);

/// rename(2) behind the kFileRename hook (the atomic-publish step of
/// every framed-file write).
Status StorageRename(const std::string& from, const std::string& to,
                     const char* what);

/// ftruncate(2) behind the kFileWrite hook (a log truncation is a
/// mutation of durable bytes, so it counts as a crash point too).
Status StorageTruncate(int fd, uint64_t len, const char* what,
                       const std::string& path);

/// unlink(2) behind the kFileUnlink hook. An already-absent file is
/// success — the caller wants it gone either way.
Status StorageUnlink(const std::string& path, const char* what);

// ---------------------------------------------------------------------------
// WriteAheadLog
// ---------------------------------------------------------------------------

/// Append-only CRC-framed record log with torn-tail recovery. Not
/// thread-safe: the round store serializes access under its own mutex.
class WriteAheadLog {
 public:
  struct Options {
    std::string path;
    uint32_t partition_index = 0;
    uint32_t partition_count = 1;
  };

  struct Record {
    WalRecordType type = WalRecordType::kDelta;
    uint64_t lsn = 0;
    Bytes payload;
  };

  /// Opens (creating if absent) and scans the log. An existing log must
  /// carry this slice's identity. A torn or corrupt tail is truncated
  /// in place (and fsynced) before Open returns; the valid prefix is
  /// available from TakeRecovered(). A file shorter than the 16-byte
  /// header is a torn *initial* header publish — it cannot hold any
  /// record, so it reopens as a fresh log. A corrupt full-length
  /// header is DataLoss — refuse to guess.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const Options& options);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Records recovered by Open, in log order (moved out; call once).
  std::vector<Record> TakeRecovered() { return std::move(recovered_); }

  /// Bytes dropped by torn-tail truncation at Open (diagnostics).
  uint64_t truncated_bytes() const { return truncated_bytes_; }

  /// Appends one record (no implicit sync — the store owns the fsync
  /// barrier cadence).
  Status Append(WalRecordType type, uint64_t lsn, const Bytes& payload);

  /// fsync barrier: everything appended so far is durable after this.
  Status Sync();

  /// Drops every record (keeps the header) after compaction has made
  /// them redundant, then fsyncs.
  Status TruncateAll();

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  std::vector<Record> recovered_;
  uint64_t truncated_bytes_ = 0;
};

}  // namespace service
}  // namespace shuffledp

#endif  // SHUFFLEDP_SERVICE_WAL_H_

#include "shuffle/attacks.h"

#include <algorithm>
#include <cmath>

namespace shuffledp {
namespace shuffle {

AdversaryView SampleAdversaryView(const ldp::ScalarFrequencyOracle& oracle,
                                  Adversary adversary, uint64_t victim_value,
                                  const std::vector<uint64_t>& others,
                                  uint64_t n_fake, uint64_t probe_value,
                                  Rng* rng) {
  AdversaryView view;

  // The victim's report is part of every view.
  ldp::LdpReport victim_report = oracle.Encode(victim_value, rng);

  switch (adversary) {
    case Adversary::kServerAndShufflers: {
      // Shuffle undone: the adversary sees the victim's raw LDP report.
      view.residual_reports = 1;
      view.probe_support = oracle.Supports(victim_report, probe_value);
      return view;
    }
    case Adversary::kServerAndUsers: {
      // All other users' reports are known and subtracted; the blanket
      // protecting the victim is only the n_fake uniform fake reports.
      // Generate first (RNG call order unchanged), then bulk-count
      // supports through the oracle's lane-parallel kernel.
      view.residual_reports = 1 + n_fake;
      std::vector<ldp::LdpReport> blanket;
      blanket.reserve(n_fake);
      for (uint64_t k = 0; k < n_fake; ++k) {
        blanket.push_back(oracle.MakeFakeReport(rng));
      }
      view.probe_support =
          oracle.Supports(victim_report, probe_value) +
          oracle.SupportsMany(blanket.data(), blanket.size(), probe_value);
      return view;
    }
    case Adversary::kServer: {
      // The full shuffled multiset: the adversary knows the other users'
      // *values* (worst case) but not their reports; the blanket is the
      // other users' randomness plus the fakes. The shuffled multiset is
      // summarized by its per-value support counts (sufficient statistic
      // for a symmetric mechanism). Same buffer-then-bulk-count shape:
      // others' encodes then fakes, in the original RNG call order.
      view.residual_reports = 1 + others.size() + n_fake;
      std::vector<ldp::LdpReport> blanket;
      blanket.reserve(others.size() + n_fake);
      for (uint64_t v : others) {
        blanket.push_back(oracle.Encode(v, rng));
      }
      for (uint64_t k = 0; k < n_fake; ++k) {
        blanket.push_back(oracle.MakeFakeReport(rng));
      }
      view.probe_support =
          oracle.Supports(victim_report, probe_value) +
          oracle.SupportsMany(blanket.data(), blanket.size(), probe_value);
      return view;
    }
  }
  return view;
}

Result<PrivacyAudit> AuditAdversary(const ldp::ScalarFrequencyOracle& oracle,
                                    Adversary adversary, uint64_t value_a,
                                    uint64_t value_b,
                                    const std::vector<uint64_t>& others,
                                    uint64_t n_fake, uint64_t trials,
                                    Rng* rng) {
  if (value_a == value_b) {
    return Status::InvalidArgument("audit needs distinct neighbour values");
  }
  if (value_a >= oracle.domain_size() || value_b >= oracle.domain_size()) {
    return Status::InvalidArgument("audit values out of domain");
  }
  if (trials < 100) {
    return Status::InvalidArgument("audit needs >= 100 trials");
  }

  const uint64_t probe = value_a;
  const uint64_t max_support = 2 + others.size() + n_fake;
  std::vector<uint64_t> hist_a(max_support + 1, 0);
  std::vector<uint64_t> hist_b(max_support + 1, 0);
  for (uint64_t t = 0; t < trials; ++t) {
    auto va = SampleAdversaryView(oracle, adversary, value_a, others, n_fake,
                                  probe, rng);
    auto vb = SampleAdversaryView(oracle, adversary, value_b, others, n_fake,
                                  probe, rng);
    ++hist_a[std::min<uint64_t>(va.probe_support, max_support)];
    ++hist_b[std::min<uint64_t>(vb.probe_support, max_support)];
  }

  // Upper-tail likelihood ratios: Pr[T >= t | a] / Pr[T >= t | b].
  // Only thresholds with enough mass on both sides are trusted (plug-in
  // estimates of tiny tails explode); require >= 10 observations each.
  double best = 0.0;
  uint64_t tail_a = 0, tail_b = 0;
  for (size_t t = hist_a.size(); t-- > 0;) {
    tail_a += hist_a[t];
    tail_b += hist_b[t];
    if (tail_a >= 10 && tail_b >= 10) {
      double ratio = std::log(static_cast<double>(tail_a) /
                              static_cast<double>(tail_b));
      best = std::max(best, std::fabs(ratio));
    }
  }

  PrivacyAudit audit;
  audit.empirical_eps = best;
  audit.trials = trials;
  return audit;
}

}  // namespace shuffle
}  // namespace shuffledp

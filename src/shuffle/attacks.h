// Adversary views and empirical privacy auditing (paper §V, §VI-B).
//
// The paper's security argument models each adversary's observation as an
// algorithm and proves a DP bound for it:
//   * Adv   — the server: sees the shuffled multiset of all reports.
//   * Adv_u — server + all users but the victim: subtracts the known
//             reports; what remains is the victim's report hidden in the
//             blanket (other users' random reports, or PEOS fakes).
//   * Adv_a — server + >⌊r/2⌋ shufflers: the shuffle is undone, the view
//             degrades to the victim's raw LDP report.
//
// This module constructs those views explicitly and estimates the
// *empirical* ε they leak via a likelihood-ratio audit over repeated
// runs — the standard "DP auditing" methodology: run the view generator
// on two neighbouring datasets, and lower-bound ε by
// max_t ln(Pr[T >= t | D] / Pr[T >= t | D']) for the victim-value
// support-count statistic T.

#ifndef SHUFFLEDP_SHUFFLE_ATTACKS_H_
#define SHUFFLEDP_SHUFFLE_ATTACKS_H_

#include <cstdint>
#include <vector>

#include "ldp/frequency_oracle.h"
#include "util/rng.h"
#include "util/status.h"

namespace shuffledp {
namespace shuffle {

/// Which adversary's view to generate.
enum class Adversary {
  kServer,          ///< Adv: shuffled multiset of n user reports (+fakes)
  kServerAndUsers,  ///< Adv_u: victim's report + fake reports only
  kServerAndShufflers,  ///< Adv_a: victim's raw LDP report (no shuffle)
};

/// One sampled adversary view, reduced to the audit statistic: the
/// support count of a probe value among the reports the adversary cannot
/// explain away.
struct AdversaryView {
  uint64_t residual_reports = 0;  ///< number of unexplained reports
  uint64_t probe_support = 0;     ///< how many of them support the probe
};

/// Samples the adversary's view for a dataset where the victim holds
/// `victim_value` and the n−1 other users hold `others` (ignored for
/// kServerAndUsers, where their reports are subtracted anyway).
/// `n_fake` PEOS fake reports are included for the server/users views.
AdversaryView SampleAdversaryView(const ldp::ScalarFrequencyOracle& oracle,
                                  Adversary adversary, uint64_t victim_value,
                                  const std::vector<uint64_t>& others,
                                  uint64_t n_fake, uint64_t probe_value,
                                  Rng* rng);

/// Result of a likelihood-ratio privacy audit.
struct PrivacyAudit {
  double empirical_eps = 0.0;  ///< lower bound on the leaked ε
  uint64_t trials = 0;
};

/// Audits `adversary`'s view: runs `trials` samples of the view for the
/// victim holding `value_a` vs `value_b` (a neighbouring-dataset pair)
/// and reports the largest log-likelihood ratio over thresholds of the
/// probe-support statistic, Clopper-Pearson-free (plug-in) estimate.
/// `probe_value` defaults to value_a (the most distinguishing probe).
Result<PrivacyAudit> AuditAdversary(const ldp::ScalarFrequencyOracle& oracle,
                                    Adversary adversary, uint64_t value_a,
                                    uint64_t value_b,
                                    const std::vector<uint64_t>& others,
                                    uint64_t n_fake, uint64_t trials,
                                    Rng* rng);

}  // namespace shuffle
}  // namespace shuffledp

#endif  // SHUFFLEDP_SHUFFLE_ATTACKS_H_

#include "shuffle/cost_model.h"

#include <cstdio>

namespace shuffledp {
namespace shuffle {

const char* RoleName(Role role) {
  switch (role) {
    case Role::kUser:
      return "user";
    case Role::kShuffler:
      return "shuffler";
    case Role::kServer:
      return "server";
  }
  return "unknown";
}

CostReport SummarizeCosts(const CostLedger& ledger, uint64_t n, uint32_t r) {
  CostReport out;
  out.n = n;
  out.r = r;
  if (n > 0) {
    out.user_comp_ms_per_user =
        ledger.compute_seconds(Role::kUser) * 1e3 / static_cast<double>(n);
    out.user_comm_bytes_per_user =
        ledger.bytes_sent(Role::kUser) / n;
  }
  if (r > 0) {
    out.aux_comp_seconds =
        ledger.compute_seconds(Role::kShuffler) / static_cast<double>(r);
    out.aux_comm_mb_per_shuffler =
        static_cast<double>(ledger.bytes_sent(Role::kShuffler)) /
        (1024.0 * 1024.0) / static_cast<double>(r);
  }
  out.server_comp_seconds = ledger.compute_seconds(Role::kServer);
  out.server_comm_mb =
      static_cast<double>(ledger.bytes_received(Role::kServer)) /
      (1024.0 * 1024.0);
  return out;
}

std::string CostReport::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "n=%llu r=%u | user: %.3f ms, %llu B | aux: %.3f s, %.1f MB "
                "| server: %.3f s, %.1f MB",
                static_cast<unsigned long long>(n), r, user_comp_ms_per_user,
                static_cast<unsigned long long>(user_comm_bytes_per_user),
                aux_comp_seconds, aux_comm_mb_per_shuffler,
                server_comp_seconds, server_comm_mb);
  return buf;
}

}  // namespace shuffledp
}  // namespace shuffledp

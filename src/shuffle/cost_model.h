// Cost accounting for the simulated multi-party protocols.
//
// Table III reports, per party role, the computation time and the number
// of bytes moved over the (secure) channels. Every protocol message in
// this library is serialized to real wire bytes and recorded in a
// CostLedger; computation is measured with wall-clock scopes attributed to
// the role doing the work. Because all protocol costs scale linearly in
// the number of reports, the ledger can also extrapolate to the paper's
// n = 10^6 (see DESIGN.md §4 item 4).

#ifndef SHUFFLEDP_SHUFFLE_COST_MODEL_H_
#define SHUFFLEDP_SHUFFLE_COST_MODEL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/timer.h"

namespace shuffledp {
namespace shuffle {

/// Protocol party roles.
enum class Role : int {
  kUser = 0,
  kShuffler = 1,
  kServer = 2,
};

constexpr int kNumRoles = 3;

/// Returns "user" / "shuffler" / "server".
const char* RoleName(Role role);

/// Thread-safe accumulator of per-role communication and computation.
class CostLedger {
 public:
  /// Records `bytes` sent from `from` to `to`.
  void RecordSend(Role from, Role to, uint64_t bytes) {
    sent_[static_cast<int>(from)].fetch_add(bytes,
                                            std::memory_order_relaxed);
    received_[static_cast<int>(to)].fetch_add(bytes,
                                              std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Adds `seconds` of computation attributed to `role`.
  void RecordCompute(Role role, double seconds) {
    // Atomic add on doubles via compare-exchange.
    auto& slot = compute_ns_[static_cast<int>(role)];
    slot.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                   std::memory_order_relaxed);
  }

  uint64_t bytes_sent(Role role) const {
    return sent_[static_cast<int>(role)].load(std::memory_order_relaxed);
  }
  uint64_t bytes_received(Role role) const {
    return received_[static_cast<int>(role)].load(std::memory_order_relaxed);
  }
  double compute_seconds(Role role) const {
    return static_cast<double>(
               compute_ns_[static_cast<int>(role)].load(
                   std::memory_order_relaxed)) /
           1e9;
  }
  uint64_t message_count() const {
    return messages_.load(std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& s : sent_) s.store(0);
    for (auto& r : received_) r.store(0);
    for (auto& c : compute_ns_) c.store(0);
    messages_.store(0);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumRoles> sent_{};
  std::array<std::atomic<uint64_t>, kNumRoles> received_{};
  std::array<std::atomic<uint64_t>, kNumRoles> compute_ns_{};
  std::atomic<uint64_t> messages_{0};
};

/// RAII compute-time scope: attributes its lifetime to a role.
class ComputeScope {
 public:
  ComputeScope(CostLedger* ledger, Role role)
      : ledger_(ledger), role_(role) {}
  ~ComputeScope() {
    if (ledger_ != nullptr) {
      ledger_->RecordCompute(role_, timer_.ElapsedSeconds());
    }
  }
  ComputeScope(const ComputeScope&) = delete;
  ComputeScope& operator=(const ComputeScope&) = delete;

 private:
  CostLedger* ledger_;
  Role role_;
  WallTimer timer_;
};

/// A per-role cost summary row (what the Table III bench prints).
struct CostReport {
  uint64_t n = 0;           ///< number of real users in the run
  uint32_t r = 0;           ///< number of shufflers
  double user_comp_ms_per_user = 0.0;
  uint64_t user_comm_bytes_per_user = 0;
  double aux_comp_seconds = 0.0;        ///< total across shufflers / r
  double aux_comm_mb_per_shuffler = 0.0;
  double server_comp_seconds = 0.0;
  double server_comm_mb = 0.0;          ///< bytes received by the server

  std::string ToString() const;
};

/// Builds a CostReport from a ledger.
CostReport SummarizeCosts(const CostLedger& ledger, uint64_t n, uint32_t r);

}  // namespace shuffle
}  // namespace shuffledp

#endif  // SHUFFLEDP_SHUFFLE_COST_MODEL_H_

#include "shuffle/oblivious_shuffle.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "util/rng.h"

namespace shuffledp {
namespace shuffle {

namespace {

inline uint64_t Mask(unsigned ell) {
  return ell >= 64 ? ~uint64_t{0} : ((uint64_t{1} << ell) - 1);
}

// Applies `perm` to `column` in place: new[i] = old[perm[i]].
template <typename T>
void ApplyPermutation(const std::vector<uint32_t>& perm,
                      std::vector<T>* column) {
  std::vector<T> out(column->size());
  for (size_t i = 0; i < perm.size(); ++i) {
    out[i] = std::move((*column)[perm[i]]);
  }
  *column = std::move(out);
}

}  // namespace

std::vector<std::vector<uint32_t>> AllSubsets(uint32_t r, uint32_t t) {
  std::vector<std::vector<uint32_t>> out;
  std::vector<uint32_t> subset(t);
  // Lexicographic enumeration of t-combinations of {0..r-1}.
  for (uint32_t i = 0; i < t; ++i) subset[i] = i;
  for (;;) {
    out.push_back(subset);
    // Advance.
    int pos = static_cast<int>(t) - 1;
    while (pos >= 0 &&
           subset[static_cast<size_t>(pos)] ==
               r - t + static_cast<uint32_t>(pos)) {
      --pos;
    }
    if (pos < 0) break;
    ++subset[static_cast<size_t>(pos)];
    for (uint32_t i = static_cast<uint32_t>(pos) + 1; i < t; ++i) {
      subset[i] = subset[i - 1] + 1;
    }
  }
  return out;
}

uint64_t EosRounds(uint32_t r) {
  const uint32_t t = r / 2 + 1;  // must match RunEncryptedObliviousShuffle
  uint64_t count = 1;
  for (uint32_t i = 1; i <= t; ++i) {
    count = count * (r - t + i) / i;  // exact: C(k, i) divides the product
  }
  return count;
}

std::vector<uint64_t> ShareMatrix::Reconstruct() const {
  const uint64_t mask = Mask(ell);
  std::vector<uint64_t> secrets(num_secrets(), 0);
  for (const auto& column : columns) {
    for (size_t i = 0; i < column.size(); ++i) {
      secrets[i] = (secrets[i] + column[i]) & mask;
    }
  }
  return secrets;
}

Status RunObliviousShuffle(ShareMatrix* shares, crypto::SecureRandom* rng,
                           CostLedger* ledger,
                           std::vector<uint32_t>* composed_perm) {
  const uint32_t r = shares->num_shufflers();
  const uint64_t n = shares->num_secrets();
  if (r < 2) return Status::InvalidArgument("oblivious shuffle: need r >= 2");
  const uint32_t t = r / 2 + 1;
  const uint64_t mask = Mask(shares->ell);

  if (composed_perm != nullptr) {
    composed_perm->resize(n);
    for (uint64_t i = 0; i < n; ++i) (*composed_perm)[i] = static_cast<uint32_t>(i);
  }

  for (const auto& hiders : AllSubsets(r, t)) {
    ComputeScope scope(ledger, Role::kShuffler);
    std::vector<bool> is_hider(r, false);
    for (uint32_t h : hiders) is_hider[h] = true;

    // 1. Seekers re-share their columns to the hiders.
    for (uint32_t s = 0; s < r; ++s) {
      if (is_hider[s]) continue;
      auto& col = shares->columns[s];
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t remaining = col[i];
        for (uint32_t k = 0; k + 1 < t; ++k) {
          uint64_t part = rng->NextU64() & mask;
          shares->columns[hiders[k]][i] =
              (shares->columns[hiders[k]][i] + part) & mask;
          remaining = (remaining - part) & mask;
        }
        shares->columns[hiders[t - 1]][i] =
            (shares->columns[hiders[t - 1]][i] + remaining) & mask;
        col[i] = 0;
      }
      if (ledger != nullptr) {
        ledger->RecordSend(Role::kShuffler, Role::kShuffler, t * n * 8);
      }
    }

    // 2. Hiders apply an agreed permutation.
    Rng perm_rng(rng->NextU64());
    std::vector<uint32_t> perm =
        perm_rng.Permutation(static_cast<uint32_t>(n));
    for (uint32_t h : hiders) {
      ApplyPermutation(perm, &shares->columns[h]);
    }
    if (composed_perm != nullptr) {
      ApplyPermutation(perm, composed_perm);
    }

    // 3. Hiders re-share everything back to all r shufflers.
    std::vector<std::vector<uint64_t>> next(r,
                                            std::vector<uint64_t>(n, 0));
    for (uint32_t h : hiders) {
      const auto& col = shares->columns[h];
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t remaining = col[i];
        for (uint32_t j = 0; j + 1 < r; ++j) {
          uint64_t part = rng->NextU64() & mask;
          next[j][i] = (next[j][i] + part) & mask;
          remaining = (remaining - part) & mask;
        }
        next[r - 1][i] = (next[r - 1][i] + remaining) & mask;
      }
      if (ledger != nullptr) {
        // r - 1 outgoing columns (the self-share stays local).
        ledger->RecordSend(Role::kShuffler, Role::kShuffler,
                           (r - 1) * n * 8);
      }
    }
    shares->columns = std::move(next);
  }
  return Status::OK();
}

Status RunEncryptedObliviousShuffle(EosState* state, const EosOptions& opts,
                                    crypto::SecureRandom* rng,
                                    CostLedger* ledger) {
  if (opts.public_key == nullptr) {
    return Status::InvalidArgument("EOS: missing Paillier public key");
  }
  ShareMatrix* shares = &state->plain;
  const uint32_t r = shares->num_shufflers();
  const uint64_t n = shares->num_secrets();
  if (r < 2) return Status::InvalidArgument("EOS: need r >= 2");
  if (state->cipher_column.size() != n) {
    return Status::InvalidArgument("EOS: cipher column has wrong length");
  }
  if (state->e_holder >= r) {
    return Status::InvalidArgument("EOS: e_holder out of range");
  }
  const uint32_t t = r / 2 + 1;
  const uint64_t mask = Mask(shares->ell);
  const crypto::PaillierPublicKey& pub = *opts.public_key;
  const uint64_t cipher_bytes = pub.CiphertextBytes();

  // Montgomery-resident ciphertext column: every C(r, t) round multiplies
  // each ciphertext by g^adjust and a re-randomization mask — both
  // available in Montgomery form — so the column enters the domain once
  // here, stays resident across all rounds (permutations just move limb
  // vectors), and exits once after the loop. The per-round work becomes
  // pure fused CIOS passes; the old per-round generic ModMul (a full
  // division-path multiply per ciphertext) disappears. Bitwise identical
  // to the plain-domain path: the same masks multiply mod N^2 and the
  // same rng draws happen in the same order (paillier_test pins this).
  // An uninitialized key (no context) keeps the legacy plain path.
  const crypto::MontgomeryCtx* mont_ctx = pub.n2_ctx();
  const size_t limbs = mont_ctx != nullptr ? mont_ctx->limbs() : 0;
  std::vector<std::vector<uint64_t>> mont_column;
  if (mont_ctx != nullptr) {
    mont_column.assign(n, std::vector<uint64_t>(limbs));
    auto enter = [&](uint64_t lo, uint64_t hi) {
      crypto::MontgomeryCtx::Scratch scratch(*mont_ctx);
      for (uint64_t i = lo; i < hi; ++i) {
        pub.ToMontCiphertext(state->cipher_column[i],
                             mont_column[i].data(), &scratch);
      }
    };
    if (opts.thread_pool != nullptr) {
      opts.thread_pool->ParallelFor(0, n, enter);
    } else {
      enter(0, n);
    }
  }

  for (const auto& hiders : AllSubsets(r, t)) {
    ComputeScope scope(ledger, Role::kShuffler);
    std::vector<bool> is_hider(r, false);
    for (uint32_t h : hiders) is_hider[h] = true;

    // 1a. Seekers re-share plaintext columns to the hiders.
    for (uint32_t s = 0; s < r; ++s) {
      if (is_hider[s]) continue;
      auto& col = shares->columns[s];
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t remaining = col[i];
        for (uint32_t k = 0; k + 1 < t; ++k) {
          uint64_t part = rng->NextU64() & mask;
          shares->columns[hiders[k]][i] =
              (shares->columns[hiders[k]][i] + part) & mask;
          remaining = (remaining - part) & mask;
        }
        shares->columns[hiders[t - 1]][i] =
            (shares->columns[hiders[t - 1]][i] + remaining) & mask;
        col[i] = 0;
      }
      if (ledger != nullptr) {
        ledger->RecordSend(Role::kShuffler, Role::kShuffler, t * n * 8);
      }
    }

    // 1b. The ciphertext holder E re-splits its column: t − 1 uniform
    // plaintext mask vectors go to hiders, the homomorphically-adjusted
    // ciphertext vector goes to the new E (uniform among hiders).
    const uint32_t new_e = hiders[rng->UniformU64(t)];
    {
      std::vector<uint64_t> mask_sum(n, 0);
      uint32_t masks_sent = 0;
      for (uint32_t k = 0; k < t && masks_sent + 1 < t; ++k) {
        uint32_t h = hiders[k];
        if (h == new_e) continue;
        ++masks_sent;
        for (uint64_t i = 0; i < n; ++i) {
          uint64_t m = rng->NextU64() & mask;
          shares->columns[h][i] = (shares->columns[h][i] + m) & mask;
          mask_sum[i] = (mask_sum[i] + m) & mask;
        }
        if (ledger != nullptr) {
          ledger->RecordSend(Role::kShuffler, Role::kShuffler, n * 8);
        }
      }
      // c'_i = c_i + (2^ell − mask_sum_i): the subtraction wraps to 0
      // mod 2^ell after decryption (DESIGN.md §4 item 2).
      auto transform = [&](uint64_t lo, uint64_t hi,
                           crypto::SecureRandom* local) {
        if (mont_ctx != nullptr) {
          // Resident path: AddPlain + re-mask without ever leaving the
          // Montgomery domain (3–4 fused CIOS passes per ciphertext).
          crypto::MontgomeryCtx::Scratch scratch(*mont_ctx);
          if (opts.pool != nullptr) {
            // Lane-blocked: the AddPlain conversions/multiplies and the
            // pool masks run through the interleaved batch kernels. The
            // pool draws stay in scalar row order (lane l draws l-th),
            // so the column is bitwise identical to the per-row loop.
            constexpr size_t kLanes = crypto::MontgomeryCtx::kMaxBatchLanes;
            uint64_t* rows[kLanes];
            crypto::BigInt adjusts[kLanes];
            for (uint64_t i = lo; i < hi; i += kLanes) {
              const size_t kb =
                  static_cast<size_t>(std::min<uint64_t>(kLanes, hi - i));
              for (size_t l = 0; l < kb; ++l) {
                rows[l] = mont_column[i + l].data();
                adjusts[l] = crypto::BigInt((0 - mask_sum[i + l]) & mask);
              }
              pub.AddPlainMontManyInto(kb, rows, adjusts, &scratch);
              opts.pool->RerandomizeMontManyInto(kb, rows, local, &scratch);
            }
            return;
          }
          std::vector<uint64_t> fresh(limbs);
          for (uint64_t i = lo; i < hi; ++i) {
            uint64_t neg = (0 - mask_sum[i]) & mask;
            pub.AddPlainMontInto(mont_column[i].data(),
                                 crypto::BigInt(neg), &scratch);
            auto enc_zero = pub.Encrypt(crypto::BigInt(), local);
            assert(enc_zero.ok());
            mont_ctx->ToMontInto(enc_zero->value, fresh.data(), &scratch);
            mont_ctx->MulInto(mont_column[i].data(), fresh.data(),
                              mont_column[i].data(), &scratch);
          }
          return;
        }
        for (uint64_t i = lo; i < hi; ++i) {
          // (2^ell − s) mod 2^ell via unsigned wrap-around; adding it to
          // the ciphertext cancels the masks mod 2^ell after decryption.
          uint64_t neg = (0 - mask_sum[i]) & mask;
          crypto::BigInt adjust(neg);
          auto c = pub.AddPlain(state->cipher_column[i], adjust);
          if (opts.pool != nullptr) {
            c = opts.pool->Rerandomize(c, local);
          } else {
            auto enc_zero = pub.Encrypt(crypto::BigInt(), local);
            assert(enc_zero.ok());
            c = pub.Add(c, *enc_zero);
          }
          state->cipher_column[i] = std::move(c);
        }
      };
      if (opts.thread_pool != nullptr) {
        std::vector<crypto::SecureRandom> locals;
        const unsigned workers = opts.thread_pool->num_threads();
        locals.reserve(workers * 4);
        for (unsigned w = 0; w < workers * 4; ++w) {
          locals.push_back(rng->Fork());
        }
        std::atomic<size_t> next_local{0};
        opts.thread_pool->ParallelFor(0, n, [&](uint64_t lo, uint64_t hi) {
          size_t idx = next_local.fetch_add(1) % locals.size();
          transform(lo, hi, &locals[idx]);
        });
      } else {
        transform(0, n, rng);
      }
      if (ledger != nullptr) {
        ledger->RecordSend(Role::kShuffler, Role::kShuffler,
                           n * cipher_bytes);
      }
    }
    state->e_holder = new_e;

    // 2. Hiders (and the new E) apply the agreed permutation.
    Rng perm_rng(rng->NextU64());
    std::vector<uint32_t> perm =
        perm_rng.Permutation(static_cast<uint32_t>(n));
    for (uint32_t h : hiders) {
      ApplyPermutation(perm, &shares->columns[h]);
    }
    if (mont_ctx != nullptr) {
      ApplyPermutation(perm, &mont_column);  // resident limbs just move
    } else {
      ApplyPermutation(perm, &state->cipher_column);
    }

    // 3. Hiders re-share plaintext columns back to all r shufflers.
    std::vector<std::vector<uint64_t>> next(r,
                                            std::vector<uint64_t>(n, 0));
    for (uint32_t h : hiders) {
      const auto& col = shares->columns[h];
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t remaining = col[i];
        for (uint32_t j = 0; j + 1 < r; ++j) {
          uint64_t part = rng->NextU64() & mask;
          next[j][i] = (next[j][i] + part) & mask;
          remaining = (remaining - part) & mask;
        }
        next[r - 1][i] = (next[r - 1][i] + remaining) & mask;
      }
      if (ledger != nullptr) {
        ledger->RecordSend(Role::kShuffler, Role::kShuffler,
                           (r - 1) * n * 8);
      }
    }
    shares->columns = std::move(next);
  }

  // Chain exit: one conversion per element, the only FromMont of the
  // whole shuffle.
  if (mont_ctx != nullptr) {
    auto leave = [&](uint64_t lo, uint64_t hi) {
      crypto::MontgomeryCtx::Scratch scratch(*mont_ctx);
      for (uint64_t i = lo; i < hi; ++i) {
        state->cipher_column[i] =
            pub.FromMontCiphertext(mont_column[i].data(), &scratch);
      }
    };
    if (opts.thread_pool != nullptr) {
      opts.thread_pool->ParallelFor(0, n, leave);
    } else {
      leave(0, n);
    }
  }
  return Status::OK();
}

}  // namespace shuffle
}  // namespace shuffledp

// Resharing-based oblivious shuffle (Laur, Willemson & Zhang '11; paper
// §II-C) and its AHE-carrying extension EOS (paper §VI-A3, Figure 2).
//
// State: r shufflers each hold one additive-share column of the n secrets
// over Z_{2^ell}. With t = floor(r/2) + 1 "hiders", the protocol runs one
// round per t-subset of shufflers (C(r, t) rounds, the "hide and seek"
// game): the r − t seekers re-share their columns to the hiders, the
// hiders permute with an agreed permutation, then re-share everything
// back to all r shufflers. After all rounds, no coalition of r − t
// shufflers knows the composed permutation.
//
// EOS additionally threads one AHE-encrypted column (held by a designated
// shuffler E) through the rounds, so that even all r shufflers together
// cannot reconstruct the secrets.

#ifndef SHUFFLEDP_SHUFFLE_OBLIVIOUS_SHUFFLE_H_
#define SHUFFLEDP_SHUFFLE_OBLIVIOUS_SHUFFLE_H_

#include <cstdint>
#include <vector>

#include "crypto/paillier.h"
#include "crypto/secure_random.h"
#include "shuffle/cost_model.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shuffledp {
namespace shuffle {

/// Enumerates all t-subsets of {0, ..., r-1} in lexicographic order.
std::vector<std::vector<uint32_t>> AllSubsets(uint32_t r, uint32_t t);

/// Number of EOS rounds for r shufflers: C(r, r/2 + 1) hider subsets,
/// the count RunEncryptedObliviousShuffle enumerates. Each round
/// homomorphically adds exactly one ell-bit mask adjustment to every
/// ciphertext (step 1b), so this also bounds the integer growth of a
/// ciphertext's plaintext — the invariant the PEOS packed-decryption
/// slot sizing depends on.
uint64_t EosRounds(uint32_t r);

/// Share state for the plain oblivious shuffle: columns[j][i] is shuffler
/// j's share of secret i.
struct ShareMatrix {
  std::vector<std::vector<uint64_t>> columns;  // r columns of length n
  unsigned ell = 64;

  uint32_t num_shufflers() const {
    return static_cast<uint32_t>(columns.size());
  }
  uint64_t num_secrets() const {
    return columns.empty() ? 0 : columns[0].size();
  }

  /// Reconstructs all secrets (test / server-side helper).
  std::vector<uint64_t> Reconstruct() const;
};

/// Runs the plain resharing-based oblivious shuffle in place.
/// The composed permutation is returned for test inspection only (a real
/// deployment has no single party that knows it).
Status RunObliviousShuffle(ShareMatrix* shares, crypto::SecureRandom* rng,
                           CostLedger* ledger,
                           std::vector<uint32_t>* composed_perm = nullptr);

/// EOS state: r plaintext columns plus one AHE ciphertext column held by
/// shuffler `e_holder`. Sum of plaintext columns + Dec(cipher column)
/// (mod 2^ell) reconstructs the secrets.
struct EosState {
  ShareMatrix plain;
  std::vector<crypto::PaillierCiphertext> cipher_column;
  uint32_t e_holder = 0;
};

/// EOS options.
struct EosOptions {
  const crypto::PaillierPublicKey* public_key = nullptr;
  /// Optional Enc(0) pool; when null, every re-mask uses a fresh modexp.
  const crypto::RandomizerPool* pool = nullptr;
  ThreadPool* thread_pool = nullptr;
};

/// Runs EOS in place: after the call, the permutation of the secrets is
/// unknown to any coalition of <= r − t shufflers, and the secrets are
/// unknown even to all r shufflers jointly (one column stays encrypted).
Status RunEncryptedObliviousShuffle(EosState* state, const EosOptions& opts,
                                    crypto::SecureRandom* rng,
                                    CostLedger* ledger);

}  // namespace shuffle
}  // namespace shuffledp

#endif  // SHUFFLEDP_SHUFFLE_OBLIVIOUS_SHUFFLE_H_
